package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"hpm/internal/faultinject"
)

// Degraded read-only mode. A durable store whose WAL stops accepting
// writes — the disk fills, fsync starts erroring, a write tears a segment
// — must not wedge every writer on a dead device, and must not keep
// acknowledging observations it cannot make durable. Instead the store
// runs a small state machine:
//
//	healthy ──persistent WAL failure──▶ degraded ──probe succeeds──▶ recovering ──▶ healthy
//	                                       ▲                             │
//	                                       └────────reset/checkpoint fails
//
// Degraded: writes (ObserveBatch, ObserveAll, Remove, Checkpoint) fail
// fast with ErrDegraded; queries, predictions and the fleet index keep
// serving from memory untouched. A background probe writes and fsyncs a
// sentinel file in the data directory with exponential backoff; once the
// disk answers again, recovery rotates the WAL to a fresh segment
// (repairing any torn tail first), re-opens writes, and checkpoints so
// the backlog of segments compacts.
//
// What flips the state: a failed segment *write* (short write / ENOSPC)
// degrades immediately — the segment tail is now untrusted; a failed
// *fsync* counts toward Options.DegradeAfter consecutive failures before
// degrading, since a lone EINTR-ish hiccup is retriable in place. Every
// failure path preserves the acknowledgment barrier: an observation whose
// commit failed was never applied to the track, so "no acknowledged write
// is ever lost across a degrade/recover cycle" holds by construction.

// ErrDegraded is returned by write paths while the store is degraded
// (read-only) after persistent WAL failure. Callers can errors.Is against
// it; the HTTP layer maps it to 503 + Retry-After.
var ErrDegraded = errors.New("store: degraded, writes disabled")

// Store health states. Stored in Store.state as an atomic so the hot
// write path checks them with one load.
const (
	stateHealthy int32 = iota
	stateDegraded
	stateRecovering
)

// stateNames maps states to their wire names (Health.State, /metrics).
var stateNames = [...]string{"healthy", "degraded", "recovering"}

// probe sentinel file name inside the data directory.
const probeFile = ".hpm-probe"

// maxProbeInterval caps the recovery probe's exponential backoff.
const maxProbeInterval = 15 * time.Second

// Degraded reports whether the store is currently refusing writes.
func (s *Store) Degraded() bool { return s.state.Load() != stateHealthy }

// State returns the health state's wire name: "healthy", "degraded" or
// "recovering".
func (s *Store) State() string { return stateNames[s.state.Load()] }

// writable fails fast with ErrDegraded (carrying the causing WAL error)
// when the store is refusing writes. In-memory stores never degrade.
func (s *Store) writable() error {
	if s.state.Load() == stateHealthy {
		return nil
	}
	if cause := s.lastWALError(); cause != nil {
		return fmt.Errorf("%w (%w)", ErrDegraded, cause)
	}
	return ErrDegraded
}

// degradedErr wraps a WAL commit failure as ErrDegraded when the store
// has flipped read-only: noteWALFlush runs before a commit's waiters are
// released, so the appender whose flush triggered the degrade — and every
// appender failed behind it — observes the final state here.
func (s *Store) degradedErr(err error) error {
	if err == nil || s.state.Load() == stateHealthy || errors.Is(err, ErrDegraded) {
		return err
	}
	return fmt.Errorf("%w (%w)", ErrDegraded, err)
}

// lastWALError returns the most recent WAL failure, nil if none.
func (s *Store) lastWALError() error {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	return s.lastWALErr
}

// noteWALFlush observes every WAL group commit's outcome; the wal calls
// it (without holding wal.mu) before releasing the commit's waiters, so a
// failing appender finds the store already flipped. broke marks a failed
// segment write — the tail is torn and appends to it are unsafe — which
// degrades immediately, as does ENOSPC anywhere. Plain fsync failures
// degrade after Options.DegradeAfter in a row; any success resets the
// run.
func (s *Store) noteWALFlush(err error, broke bool) {
	if err == nil {
		s.syncFails.Store(0)
		return
	}
	s.walErrors.Add(1)
	s.degradeMu.Lock()
	s.lastWALErr = err
	s.degradeMu.Unlock()
	if broke || errors.Is(err, syscall.ENOSPC) {
		s.degrade()
		return
	}
	if s.syncFails.Add(1) >= int64(s.opts.DegradeAfter) {
		s.degrade()
	}
}

// degrade flips healthy → degraded and starts the recovery probe. Already
// degraded or recovering stores are left alone: the probe (or the
// recovery attempt that is about to fail back to degraded) owns the state
// from here.
func (s *Store) degrade() {
	if !s.state.CompareAndSwap(stateHealthy, stateDegraded) {
		return
	}
	s.degrades.Add(1)
	s.degradeMu.Lock()
	if !s.stopped {
		s.probeWG.Add(1)
		go func() {
			defer s.probeWG.Done()
			s.probeLoop()
		}()
	}
	s.degradeMu.Unlock()
}

// probeLoop retries the disk with exponential backoff until a sentinel
// write+fsync round-trips, then runs recovery. It exits when recovery
// completes or the store closes; a recovery that fails midway drops the
// state back to degraded and keeps probing.
func (s *Store) probeLoop() {
	backoff := s.opts.ProbeInterval
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		if s.probeOnce() == nil && s.recoverWAL() == nil {
			return
		}
		if backoff < maxProbeInterval {
			backoff *= 2
			if backoff > maxProbeInterval {
				backoff = maxProbeInterval
			}
		}
		timer.Reset(backoff)
	}
}

// probeOnce checks whether the data directory accepts a durable write:
// create, write, fsync and remove a sentinel file. It consults the same
// fault points as the WAL flush so injected persistent failures hold the
// store degraded deterministically in tests.
func (s *Store) probeOnce() error {
	if err := s.fault(faultinject.OpDiskFull); err != nil {
		return err
	}
	if err := s.fault(faultinject.OpWALSyncError); err != nil {
		return err
	}
	path := filepath.Join(s.dir, probeFile)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("ok"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	os.Remove(path)
	return err
}

// recoverWAL is the degraded → recovering → healthy transition: repair
// and retire the damaged segment, open a fresh one, re-admit writes, then
// checkpoint so the segment backlog compacts. Nothing acknowledged is at
// stake anywhere here — records in the damaged tail were never
// acknowledged, records before it replay from the repaired frozen segment
// — so a failure at any step just returns the store to degraded for the
// next probe round.
func (s *Store) recoverWAL() error {
	if !s.state.CompareAndSwap(stateDegraded, stateRecovering) {
		return nil // closed store, or lost a race; nothing to do
	}
	if err := s.wal.reset(); err != nil {
		s.state.Store(stateDegraded)
		return err
	}
	if err := s.checkpoint(true); err != nil {
		s.state.Store(stateDegraded)
		return err
	}
	s.syncFails.Store(0)
	s.recoveries.Add(1)
	s.state.Store(stateHealthy)
	return nil
}
