package store

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hpm"
)

// incrementalOpts is the standard configuration for the incremental-
// retrain tests: inline initial train, extends keeping the model fresh.
func incrementalOpts() Options {
	return Options{
		Config:              hpm.Config{Period: period},
		MinTrainPeriods:     3,
		IncrementalRetrain:  true,
		SynchronousTraining: true,
	}
}

// streamPeriods feeds periods [from, to) of a dataset into the store in
// per-period batches, so every completed period triggers the update
// policy exactly as a live stream would.
func streamPeriods(t testing.TB, s *Store, id string, seed int64, from, to int) {
	t.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, seed)
	spec.Period = s.Period()
	spec.SubTrajectories = to
	pts := hpm.GenerateDataset(spec).Points()
	for p := from; p < to; p++ {
		if err := s.ObserveBatch(id, pts[p*period:(p+1)*period]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRetrainPolicy: under IncrementalRetrain the model is
// kept current by Extends alone — RetrainEvery is ignored, the predictor
// value survives every update, and the fleet counters attribute the work
// to the extend path.
func TestIncrementalRetrainPolicy(t *testing.T) {
	opts := incrementalOpts()
	opts.RetrainEvery = 2 // must be ignored
	s := testStore(t, opts)
	streamPeriods(t, s, "bike", 9, 0, 3)
	p1, err := s.Predictor("bike")
	if err != nil || p1 == nil {
		t.Fatal("no predictor after initial train")
	}
	streamPeriods(t, s, "bike", 9, 3, 9)
	p2, _ := s.Predictor("bike")
	if p1 != p2 {
		t.Error("incremental updates replaced the predictor value")
	}
	st, _ := s.Stats("bike")
	if st.Modeled != 9 {
		t.Errorf("modeled %d, want 9", st.Modeled)
	}
	fs := s.FleetStats()
	if fs.Trains != 1 {
		t.Errorf("trains = %d, want exactly the initial one", fs.Trains)
	}
	if fs.Extends != 6 {
		t.Errorf("extends = %d, want 6", fs.Extends)
	}
	if fs.ExtendSeconds <= 0 {
		t.Errorf("extend seconds not accumulated: %v", fs.ExtendSeconds)
	}
	now, _ := s.Now("bike")
	if preds, err := s.Predict("bike", now+10, 1); err != nil || len(preds) != 1 {
		t.Fatalf("predict after extends: %v, %d preds", err, len(preds))
	}
}

// TestRebuildEveryBackstop: RebuildEvery forces an occasional full batch
// retrain under IncrementalRetrain, visible as a fresh predictor value.
func TestRebuildEveryBackstop(t *testing.T) {
	opts := incrementalOpts()
	opts.RebuildEvery = 4
	s := testStore(t, opts)
	streamPeriods(t, s, "bike", 11, 0, 3)
	p1, _ := s.Predictor("bike")
	streamPeriods(t, s, "bike", 11, 3, 6) // 3 new periods: extends only
	if p2, _ := s.Predictor("bike"); p1 != p2 {
		t.Fatal("rebuilt before RebuildEvery periods accumulated")
	}
	streamPeriods(t, s, "bike", 11, 6, 7) // 4th new period: rebuild
	p3, _ := s.Predictor("bike")
	if p1 == p3 {
		t.Error("RebuildEvery did not rebuild the model")
	}
	fs := s.FleetStats()
	if fs.Trains != 2 {
		t.Errorf("trains = %d, want initial + rebuild", fs.Trains)
	}
}

// TestRetainPeriodsTrimsTrack: a retention window keeps per-object memory
// flat — the track is trimmed behind the model while every externally
// visible timestamp stays absolute.
func TestRetainPeriodsTrimsTrack(t *testing.T) {
	opts := incrementalOpts()
	opts.RetainPeriods = 4
	opts.MaxRecent = 50
	s := testStore(t, opts)
	const periods = 12
	streamPeriods(t, s, "bike", 13, 0, periods)

	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != periods*period {
		t.Errorf("Points = %d, want absolute %d", st.Points, periods*period)
	}
	if st.RetainedPoints != opts.RetainPeriods*period {
		t.Errorf("RetainedPoints = %d, want window %d", st.RetainedPoints, opts.RetainPeriods*period)
	}
	if st.Periods != periods || st.Modeled != periods {
		t.Errorf("periods %d modeled %d, want %d", st.Periods, st.Modeled, periods)
	}
	now, err := s.Now("bike")
	if err != nil || now != periods*period-1 {
		t.Fatalf("Now = %d, %v; want absolute %d", now, err, periods*period-1)
	}
	if preds, err := s.Predict("bike", now+10, 1); err != nil || len(preds) != 1 {
		t.Fatalf("predict on trimmed track: %v, %d preds", err, len(preds))
	}
	if _, err := s.PredictRange("bike", now+1, now+5); err != nil {
		t.Fatalf("range predict on trimmed track: %v", err)
	}
}

// TestSnapshotRoundTripTrimmedBase: a snapshot of a trimmed object must
// restore its absolute timeline (v2 carries the per-object base), not
// restart it at zero.
func TestSnapshotRoundTripTrimmedBase(t *testing.T) {
	opts := incrementalOpts()
	opts.RetainPeriods = 3
	opts.MaxRecent = 40
	s := testStore(t, opts)
	const periods = 10
	streamPeriods(t, s, "bike", 17, 0, periods)
	before, _ := s.Stats("bike")
	if before.RetainedPoints >= before.Points {
		t.Fatalf("track not trimmed: %+v", before)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := back.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if after.Points != before.Points || after.RetainedPoints != before.RetainedPoints ||
		after.Periods != before.Periods || after.Modeled != before.Modeled {
		t.Errorf("stats changed across snapshot:\nbefore %+v\nafter  %+v", before, after)
	}
	now, err := back.Now("bike")
	if err != nil || now != periods*period-1 {
		t.Fatalf("restored Now = %d, %v; want %d", now, err, periods*period-1)
	}
	if _, err := back.Predict("bike", now+10, 1); err != nil {
		t.Fatalf("predict on restored trimmed object: %v", err)
	}
	// The restored object keeps extending on its absolute timeline.
	streamPeriods(t, back, "bike", 17, periods, periods+2)
	st, _ := back.Stats("bike")
	if st.Points != (periods+2)*period || st.Modeled != periods+2 {
		t.Errorf("post-restore extend: %+v", st)
	}
}

// TestDurableReplayTrimmedBase: WAL offsets are absolute timestamps, so
// records written after a retention trim replay correctly onto the
// shorter restored track.
func TestDurableReplayTrimmedBase(t *testing.T) {
	dir := t.TempDir()
	opts := incrementalOpts()
	opts.RetainPeriods = 3
	opts.MaxRecent = 40
	opts.WALNoSync = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const snapAt = 8
	streamPeriods(t, s, "bike", 21, 0, snapAt)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two more periods land only in the WAL, then the process dies.
	streamPeriods(t, s, "bike", 21, snapAt, snapAt+2)
	crash(s)

	back, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	st, err := back.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != (snapAt+2)*period {
		t.Errorf("recovered Points = %d, want %d", st.Points, (snapAt+2)*period)
	}
	if st.Modeled != snapAt+2 {
		t.Errorf("recovered Modeled = %d, want %d", st.Modeled, snapAt+2)
	}
	now, _ := back.Now("bike")
	if now != (snapAt+2)*period-1 {
		t.Errorf("recovered Now = %d, want %d", now, (snapAt+2)*period-1)
	}
	if _, err := back.Predict("bike", now+10, 1); err != nil {
		t.Fatalf("predict after replay onto trimmed base: %v", err)
	}
}

// stale reports whether a query failed only because the writer advanced
// the track between the reader's Now and its query.
func stale(err error) bool {
	return err == ErrUntrained ||
		strings.Contains(err.Error(), "not after current time") ||
		strings.Contains(err.Error(), "invalid for current time")
}

// TestExtendPredictHammer interleaves extend-triggering observes with
// concurrent predictions on the same object — the incremental update
// path mutates the live model under the object lock, and this (under
// -race) is the proof queries never see it mid-surgery.
func TestExtendPredictHammer(t *testing.T) {
	opts := incrementalOpts()
	opts.RetainPeriods = 4
	s := testStore(t, opts)
	streamPeriods(t, s, "bike", 25, 0, 3) // trained

	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 25)
	spec.Period = period
	spec.SubTrajectories = 12
	pts := hpm.GenerateDataset(spec).Points()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	done := make(chan struct{})
	// Writer: stream the rest in small batches so several period
	// boundaries (and therefore inline Extends) happen mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for off := 3 * period; off < len(pts); off += 17 {
			end := off + 17
			if end > len(pts) {
				end = len(pts)
			}
			if err := s.ObserveBatch("bike", pts[off:end]); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				now, err := s.Now("bike")
				if err != nil {
					errs <- err
					return
				}
				// The writer may advance the track between Now and the
				// query, invalidating the query time; that is an input
				// error, not a race.
				if _, err := s.Predict("bike", now+10, 1); err != nil && !stale(err) {
					errs <- err
					return
				}
				if _, err := s.PredictBatch("bike", []int{now + 5, now + 15}, 1); err != nil && !stale(err) {
					errs <- err
					return
				}
				if _, err := s.Stats("bike"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, _ := s.Stats("bike")
	if st.Modeled != 12 {
		t.Errorf("modeled %d after hammer, want 12", st.Modeled)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
