package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"hpm/internal/faultinject"
	"hpm/internal/parallel"
)

// Sharded snapshot format (v3). A durable store's directory holds a small
// manifest (snapshotFile, the same name v1/v2 used for the whole fleet)
// plus one segment file per non-empty shard:
//
//	manifest := "HPMS" 0x03 options-json uvarint(epoch)
//	            uvarint(nsegments) nsegments×segment-entry  crc32c
//	entry    := uvarint(shard) uvarint(objects) name uvarint(size) uint32(crc)
//	segment  := "HPMG" 0x02 uvarint(shard) uvarint(count)
//	            count×object-record  crc32c
//
// (options-json and name are uvarint-length-prefixed; object records are
// the same encoding inline streams use — segment v2 records carry the
// v4 Markov-chain blob, v1 records the pre-markov v2 layout, and v1
// segments still load with the chain re-folded from each track; every
// file carries a whole-file CRC32-C trailer like SaveFile.)
//
// Segment files are written to their final, epoch-stamped names and are
// invisible until a manifest referencing them is renamed into place — the
// manifest commit is the checkpoint's atomic point. An incremental
// checkpoint rewrites only dirty shards' segments and chains the previous
// epoch's segments for clean shards, so its cost is O(changed objects),
// not O(fleet). Segments no longer referenced are deleted after the
// commit; leftovers from a crashed checkpoint are swept at Open.

const (
	// manifestVersion is the snapshot version byte that marks a sharded
	// manifest instead of an inline v1/v2 object stream.
	manifestVersion = 3

	segmentMagic   = "HPMG"
	// segmentVersion 2 appends the Markov chain blob to each trained
	// object's record (the snapshot-v4 record layout); v1 segments hold
	// v2-layout records and upgrade cleanly at load.
	segmentVersion = 2
	// segmentFormat names a segment file by shard and epoch; the glob
	// pattern matches all of them for the orphan sweep at Open.
	segmentFormat  = "seg-%05d-%010d.hpms"
	segmentPattern = "seg-*.hpms"

	// maxManifestSegments bounds a decoded manifest against corruption
	// (shard counts are capped at maxShards).
	maxManifestSegments = maxShards
)

// snapSegment is one segment's manifest entry: which shard it holds, how
// many objects it encodes, and the size and checksum that pin the file's
// exact bytes — a missing or mismatched segment fails recovery loudly
// instead of silently dropping a shard's objects.
type snapSegment struct {
	shard   int
	objects int
	name    string
	size    int64
	crc     uint32
}

// snapManifest is the decoded manifest: the snapshot epoch (bumped by
// every checkpoint) and the live segments, ascending by shard.
type snapManifest struct {
	epoch    uint64
	segments []snapSegment
}

// bytes is the total on-disk footprint of the manifest's segments.
func (m *snapManifest) segmentBytes() int64 {
	var n int64
	for _, sg := range m.segments {
		n += sg.size
	}
	return n
}

// writeShardSegment encodes one shard's objects into an epoch-stamped
// segment file: header, one record per object (captured under each
// object's read lock, encoded outside it), CRC trailer, fsync. Empty
// shards produce no file and a nil entry. The file sits at its final name
// but stays invisible to recovery until a manifest references it.
func (s *Store) writeShardSegment(shardIdx int, epoch uint64) (*snapSegment, error) {
	if err := s.fault(faultinject.OpSnapshotShard); err != nil {
		return nil, fmt.Errorf("store: snapshot shard %d: %w", shardIdx, err)
	}
	sh := &s.shards[shardIdx]
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.objects))
	for id := range sh.objects {
		ids = append(ids, id)
	}
	sh.mu.RUnlock()
	if len(ids) == 0 {
		return nil, nil
	}
	sort.Strings(ids) // deterministic segment bytes for a given fleet state

	name := fmt.Sprintf(segmentFormat, shardIdx, epoch)
	path := filepath.Join(s.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	cw := &crcWriter{w: f}
	bw := bufio.NewWriter(cw)
	// Disk-full fault point, like SaveFile's: a failure anywhere in the
	// segment write aborts the checkpoint before the manifest commit, so
	// the previous snapshot and every WAL segment stay authoritative.
	err = s.fault(faultinject.OpDiskFull)
	if err == nil {
		bw.WriteString(segmentMagic)
		bw.WriteByte(segmentVersion)
		writeUvarint(bw, uint64(shardIdx))
		writeUvarint(bw, uint64(len(ids)))
		err = s.writeSegmentObjects(bw, sh, ids)
	}
	if err == nil {
		err = bw.Flush()
	}
	crc := cw.crc
	if err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crc)
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", name, err)
	}
	return &snapSegment{shard: shardIdx, objects: len(ids), name: name, size: fi.Size(), crc: crc}, nil
}

// writeSegmentObjects captures and encodes each listed object that still
// lives in the shard. An object removed after the listing is skipped —
// its tombstone re-marked the shard dirty under the snapshot gate, so a
// later checkpoint re-encodes without it; writing one extra object here
// would merely be erased again by tombstone replay.
func (s *Store) writeSegmentObjects(bw *bufio.Writer, sh *shard, ids []string) error {
	for _, id := range ids {
		sh.mu.RLock()
		obj := sh.objects[id]
		sh.mu.RUnlock()
		if obj == nil {
			continue
		}
		snap, err := snapshotObject(id, obj)
		if err != nil {
			return err
		}
		if err := snap.write(bw); err != nil {
			return err
		}
	}
	return nil
}

// writeManifest atomically commits a manifest: temp file, CRC trailer,
// fsync, rename over snapshotFile, directory sync. Returns the manifest
// file's size for the snapshot-footprint gauge. Consults the manifest and
// disk-full fault points before writing anything.
func (s *Store) writeManifest(m *snapManifest) (int64, error) {
	if err := s.fault(faultinject.OpManifest); err != nil {
		return 0, fmt.Errorf("store: manifest: %w", err)
	}
	if err := s.fault(faultinject.OpDiskFull); err != nil {
		return 0, fmt.Errorf("store: manifest: %w", err)
	}
	oj, err := json.Marshal(s.opts)
	if err != nil {
		return 0, fmt.Errorf("store: encode options: %w", err)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(snapshotMagic)
	bw.WriteByte(manifestVersion)
	writeBytes(bw, oj)
	writeUvarint(bw, m.epoch)
	writeUvarint(bw, uint64(len(m.segments)))
	for _, sg := range m.segments {
		writeUvarint(bw, uint64(sg.shard))
		writeUvarint(bw, uint64(sg.objects))
		writeBytes(bw, []byte(sg.name))
		writeUvarint(bw, uint64(sg.size))
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], sg.crc)
		bw.Write(cb[:])
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(buf.Bytes(), walCRC))
	buf.Write(trailer[:])

	path := filepath.Join(s.dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: manifest %s: %w", path, err)
	}
	syncDir(s.dir)
	return int64(buf.Len()), nil
}

// parseManifest decodes a v3 manifest payload (CRC already verified and
// stripped, header already consumed) into the options JSON and the
// segment list.
func parseManifest(payload []byte) (optsJSON []byte, m *snapManifest, err error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	oj, err := readBytes(br, 1<<20)
	if err != nil {
		return nil, nil, fmt.Errorf("store: read options: %w", err)
	}
	m = &snapManifest{}
	if m.epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, nil, fmt.Errorf("store: read epoch: %w", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("store: read segment count: %w", err)
	}
	if n > maxManifestSegments {
		return nil, nil, fmt.Errorf("store: implausible segment count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var sg snapSegment
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, fmt.Errorf("store: read segment shard: %w", err)
		}
		sg.shard = int(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, nil, fmt.Errorf("store: read segment objects: %w", err)
		}
		sg.objects = int(v)
		name, err := readBytes(br, 4096)
		if err != nil {
			return nil, nil, fmt.Errorf("store: read segment name: %w", err)
		}
		// Segment names resolve relative to the manifest's directory; a
		// path separator in one would escape it.
		if filepath.Base(string(name)) != string(name) {
			return nil, nil, fmt.Errorf("store: segment name %q is not a bare file name", name)
		}
		sg.name = string(name)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, nil, fmt.Errorf("store: read segment size: %w", err)
		}
		sg.size = int64(v)
		var cb [4]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return nil, nil, fmt.Errorf("store: read segment crc: %w", err)
		}
		sg.crc = binary.LittleEndian.Uint32(cb[:])
		m.segments = append(m.segments, sg)
	}
	return oj, m, nil
}

// loadSegments restores every manifest segment into s, in parallel across
// workers. Each segment maps to exactly one shard, so workers insert into
// disjoint shard maps. Any missing, truncated or corrupt segment is a
// loud error — recovery never silently drops a shard's objects.
func (s *Store) loadSegments(dir string, m *snapManifest, workers int) error {
	errs := make([]error, len(m.segments))
	parallel.For(len(m.segments), workers, func(i int) {
		errs[i] = s.loadSegment(dir, m.segments[i])
	})
	return errors.Join(errs...)
}

// loadSegment verifies one segment file against its manifest entry (size,
// whole-file CRC) and decodes its objects into the store.
func (s *Store) loadSegment(dir string, sg snapSegment) error {
	path := filepath.Join(dir, sg.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", sg.name, err)
	}
	if int64(len(data)) != sg.size {
		return fmt.Errorf("store: segment %s: size %d, manifest says %d (corrupt or truncated)", sg.name, len(data), sg.size)
	}
	if len(data) < len(segmentMagic)+1+4 {
		return fmt.Errorf("store: segment %s: too short", sg.name)
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	crc := crc32.Checksum(payload, walCRC)
	if crc != binary.LittleEndian.Uint32(trailer) || crc != sg.crc {
		return fmt.Errorf("store: segment %s: checksum mismatch (corrupt or truncated)", sg.name)
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	head := make([]byte, len(segmentMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("store: segment %s: read header: %w", sg.name, err)
	}
	if string(head[:len(segmentMagic)]) != segmentMagic {
		return fmt.Errorf("store: segment %s: not a segment (magic %q)", sg.name, head[:len(segmentMagic)])
	}
	// Map the segment version to the object-record layout it carries: v1
	// segments predate the Markov chain (v2-layout records), v2 segments
	// hold v4-layout records with the chain blob.
	streamVersion := 0
	switch v := int(head[len(segmentMagic)]); v {
	case 1:
		streamVersion = 2
	case segmentVersion:
		streamVersion = snapshotVersion
	default:
		return fmt.Errorf("store: segment %s: unsupported version %d", sg.name, v)
	}
	shardIdx, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: segment %s: read shard: %w", sg.name, err)
	}
	if int(shardIdx) != sg.shard {
		return fmt.Errorf("store: segment %s: holds shard %d, manifest says %d", sg.name, shardIdx, sg.shard)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: segment %s: read object count: %w", sg.name, err)
	}
	if int(count) != sg.objects {
		return fmt.Errorf("store: segment %s: holds %d objects, manifest says %d", sg.name, count, sg.objects)
	}
	for i := uint64(0); i < count; i++ {
		if err := readObject(br, s, streamVersion); err != nil {
			return fmt.Errorf("store: segment %s: %w", sg.name, err)
		}
	}
	return nil
}

// sweepSegments deletes segment files the manifest does not reference:
// leftovers of a checkpoint that crashed after writing segments but
// before committing its manifest, or of a failed post-commit cleanup.
// With a nil manifest (fresh store, or a v1/v2 single-file snapshot)
// every segment file is an orphan.
func sweepSegments(dir string, m *snapManifest) {
	matches, err := filepath.Glob(filepath.Join(dir, segmentPattern))
	if err != nil || len(matches) == 0 {
		return
	}
	live := make(map[string]bool)
	if m != nil {
		for _, sg := range m.segments {
			live[sg.name] = true
		}
	}
	for _, p := range matches {
		if !live[filepath.Base(p)] {
			os.Remove(p)
		}
	}
}
