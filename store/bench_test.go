package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hpm"
	"hpm/internal/spatial"
)

// BenchmarkObserveParallel measures durable ingest under concurrent
// writers, the workload group commit exists for. Three modes:
//
//   - sync: fsync-per-acknowledgement (the default). With one writer
//     every op pays a full fsync; with several, concurrent appends
//     coalesce into one group write + fsync, so the reported fsyncs/op
//     drops below 1 and throughput climbs past the fsync rate.
//   - nosync: no fsyncs — isolates the in-memory path (shard map, WAL
//     encode, group buffer) from disk latency.
//   - nosync-1shard: same with a single-shard object table, the
//     pre-sharding layout; the gap to nosync is shard-lock contention.
//   - nosync-index: nosync plus the fleet spatial index, so the gap to
//     nosync is the incremental index maintenance each acknowledged
//     observe pays (budgeted at a few percent).
//
// Writers get distinct ids so the benchmark measures fleet ingest, not
// one object's ingestMu serialization.
func BenchmarkObserveParallel(b *testing.B) {
	maxWriters := runtime.GOMAXPROCS(0)
	if maxWriters < 4 {
		// Group commit amortizes fsyncs even on one CPU (the syscall
		// blocks, releasing the P), so sweep past GOMAXPROCS.
		maxWriters = 4
	}
	modes := []struct {
		name   string
		noSync bool
		shards int
		index  *spatial.Config
	}{
		{"sync", false, 0, nil},
		{"nosync", true, 0, nil},
		{"nosync-1shard", true, 1, nil},
		{"nosync-index", true, 0, &spatial.Config{CellSize: 50}},
	}
	pts := walPoints(0, 4)
	for _, m := range modes {
		for w := 1; w <= maxWriters; w *= 2 {
			b.Run(fmt.Sprintf("%s/writers=%d", m.name, w), func(b *testing.B) {
				s, err := Open(b.TempDir(), Options{
					Config:          hpm.Config{Period: period},
					MinTrainPeriods: 1 << 20, // never train: measure ingest alone
					WALNoSync:       m.noSync,
					Shards:          m.shards,
					FleetIndex:      m.index,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				before := s.WALStats()
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < w; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						id := fmt.Sprintf("writer-%d", i)
						for next.Add(1) <= int64(b.N) {
							if err := s.ObserveBatch(id, pts); err != nil {
								b.Error(err)
								return
							}
						}
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				after := s.WALStats()
				b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(b.N), "fsyncs/op")
				b.ReportMetric(float64(after.Batches-before.Batches)/float64(b.N), "batches/op")
			})
		}
	}
}

// benchFleet opens a durable store with training disabled and fills it
// with n objects of a few points each — enough to make segment encoding
// the dominant checkpoint cost without paying model fits.
func benchFleet(b *testing.B, dir string, n int) *Store {
	b.Helper()
	s, err := Open(dir, Options{
		Config:          hpm.Config{Period: period},
		MinTrainPeriods: 1 << 20,
		WALNoSync:       true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pts := walPoints(0, 4)
	const batch = 2048
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		obs := make([]Observation, 0, end-off)
		for i := off; i < end; i++ {
			obs = append(obs, Observation{ID: fmt.Sprintf("obj-%06d", i), Points: pts})
		}
		if err := s.ObserveAll(obs); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkCheckpoint measures the checkpoint pause at a fixed fleet
// size. "full" dirties every object before each checkpoint (every shard
// rewrites, the v2 worst case); "incremental" dirties one object, so
// only that object's shard re-encodes and the rest chain from the
// previous epoch — the O(dirty) contract as a number.
func BenchmarkCheckpoint(b *testing.B) {
	const fleet = 5000
	pts := walPoints(4, 1)
	for _, mode := range []string{"full", "incremental"} {
		b.Run(fmt.Sprintf("%s/objects=%d", mode, fleet), func(b *testing.B) {
			s := benchFleet(b, b.TempDir(), fleet)
			defer s.Close()
			if err := s.Checkpoint(); err != nil { // baseline epoch every run chains from
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if mode == "full" {
					for sh := range s.shards {
						s.shards[sh].dirty.Store(true)
					}
				} else if err := s.ObserveBatch("obj-000000", pts); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := s.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpen measures recovery latency from a checkpointed store with
// a short WAL tail, serial (workers=1) vs parallel (GOMAXPROCS). On a
// single-CPU host the two coincide; the spread is the recovery
// parallelism the format buys on real hardware.
func BenchmarkOpen(b *testing.B) {
	const fleet = 5000
	dir := b.TempDir()
	s := benchFleet(b, dir, fleet)
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	if err := s.ObserveBatch("obj-000000", walPoints(4, 1)); err != nil {
		b.Fatal(err)
	}
	crash(s) // leave a WAL tail for replay
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d/objects=%d", workers, fleet), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				re, err := Open(dir, Options{
					Config:          hpm.Config{Period: period},
					MinTrainPeriods: 1 << 20,
					WALNoSync:       true,
					PersistWorkers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				crash(re) // no checkpoint: keep the on-disk state identical
				// Each Open leaves one fresh empty WAL segment; drop them so
				// the replayed state doesn't grow with b.N.
				segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
				for _, seg := range segs {
					if fi, err := os.Stat(seg); err == nil && fi.Size() == 0 {
						os.Remove(seg)
					}
				}
				b.StartTimer()
			}
		})
	}
}
