package store

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hpm"
	"hpm/internal/spatial"
)

// BenchmarkObserveParallel measures durable ingest under concurrent
// writers, the workload group commit exists for. Three modes:
//
//   - sync: fsync-per-acknowledgement (the default). With one writer
//     every op pays a full fsync; with several, concurrent appends
//     coalesce into one group write + fsync, so the reported fsyncs/op
//     drops below 1 and throughput climbs past the fsync rate.
//   - nosync: no fsyncs — isolates the in-memory path (shard map, WAL
//     encode, group buffer) from disk latency.
//   - nosync-1shard: same with a single-shard object table, the
//     pre-sharding layout; the gap to nosync is shard-lock contention.
//   - nosync-index: nosync plus the fleet spatial index, so the gap to
//     nosync is the incremental index maintenance each acknowledged
//     observe pays (budgeted at a few percent).
//
// Writers get distinct ids so the benchmark measures fleet ingest, not
// one object's ingestMu serialization.
func BenchmarkObserveParallel(b *testing.B) {
	maxWriters := runtime.GOMAXPROCS(0)
	if maxWriters < 4 {
		// Group commit amortizes fsyncs even on one CPU (the syscall
		// blocks, releasing the P), so sweep past GOMAXPROCS.
		maxWriters = 4
	}
	modes := []struct {
		name   string
		noSync bool
		shards int
		index  *spatial.Config
	}{
		{"sync", false, 0, nil},
		{"nosync", true, 0, nil},
		{"nosync-1shard", true, 1, nil},
		{"nosync-index", true, 0, &spatial.Config{CellSize: 50}},
	}
	pts := walPoints(0, 4)
	for _, m := range modes {
		for w := 1; w <= maxWriters; w *= 2 {
			b.Run(fmt.Sprintf("%s/writers=%d", m.name, w), func(b *testing.B) {
				s, err := Open(b.TempDir(), Options{
					Config:          hpm.Config{Period: period},
					MinTrainPeriods: 1 << 20, // never train: measure ingest alone
					WALNoSync:       m.noSync,
					Shards:          m.shards,
					FleetIndex:      m.index,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				before := s.WALStats()
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < w; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						id := fmt.Sprintf("writer-%d", i)
						for next.Add(1) <= int64(b.N) {
							if err := s.ObserveBatch(id, pts); err != nil {
								b.Error(err)
								return
							}
						}
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				after := s.WALStats()
				b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(b.N), "fsyncs/op")
				b.ReportMetric(float64(after.Batches-before.Batches)/float64(b.N), "batches/op")
			})
		}
	}
}
