package store

import (
	"errors"
	"fmt"
	"sort"

	"hpm"
	"hpm/internal/parallel"
	"hpm/internal/spatial"
)

// Fleet-wide predictive queries: the store maintains a uniform-grid index
// (internal/spatial) over every object's *predicted* positions at a fixed
// set of horizon buckets, refreshed incrementally — on every acknowledged
// observe, on every predictor swap, and on restart recovery — so
// QueryRange/QueryNearest answer "which objects will be inside R / nearest P
// at horizon h?" from cached predictions without fitting a single model.
// ScanRange/ScanNearest are the O(N) brute-force oracles the experiments
// and property tests compare against: they recompute every object's
// prediction on the spot, quantized to the same horizon bucket, so with
// aging disabled (TickHz = 0) the indexed answers are identical.

// ErrNoFleetIndex is returned by fleet query methods when the store was
// built without Options.FleetIndex.
var ErrNoFleetIndex = errors.New("store: fleet index not enabled")

// pathExtrapolation tags index entries for objects that cannot answer from
// a model (untrained, or a horizon the predictor left unanswered): the
// position is the last observation extrapolated by the recent velocity.
const pathExtrapolation = "extrapolation"

// indexVelWindow is how many trailing deltas the per-tick velocity estimate
// averages over.
const indexVelWindow = 4

// initFleetIndex (re)builds s.index from s.opts.FleetIndex; nil disables.
// Horizons default to the evaluator's buckets so fleet queries quantize to
// the same grid the accuracy matrix is scored on.
func (s *Store) initFleetIndex() error {
	s.index = nil
	fc := s.opts.FleetIndex
	if fc == nil {
		return nil
	}
	cfg := *fc
	if cfg.CellSize <= 0 {
		return errors.New("store: FleetIndex.CellSize must be positive")
	}
	if len(cfg.Horizons) == 0 {
		cfg.Horizons = append([]int(nil), s.opts.Eval.Buckets...)
	}
	s.index = spatial.New(cfg)
	return nil
}

// velLocked estimates the object's per-tick velocity from the track tail.
// Called with obj.mu at least read-locked.
func (s *Store) velLocked(obj *object) hpm.Point {
	n := len(obj.track)
	if n < 2 {
		return hpm.Point{}
	}
	w := indexVelWindow
	if w > n-1 {
		w = n - 1
	}
	return obj.track[n-1].Sub(obj.track[n-1-w]).Scale(1 / float64(w))
}

// indexEntryFor shapes one index entry from a prediction (or, when the
// model had no answer or produced a non-finite location, from velocity
// extrapolation of the last observation). Shared by the incremental index
// refresh and the brute-force scans so both compute byte-identical entries.
func indexEntryFor(h int, preds []hpm.Prediction, last, vel hpm.Point) spatial.Entry {
	e := spatial.Entry{Horizon: h, Vel: vel}
	if len(preds) > 0 && preds[0].Location.IsFinite() {
		e.Pos, e.Path = preds[0].Location, preds[0].Path.String()
		return e
	}
	e.Pos, e.Path = last.Add(vel.Scale(float64(h))), pathExtrapolation
	return e
}

// indexUpdateLocked recomputes the object's cached prediction entries at
// every configured horizon and re-bins them — one PredictBatch against the
// live predictor (at most one fallback fit, thanks to the engine's fit
// cache), or pure velocity extrapolation while untrained. Called with
// obj.mu held for writing on every acknowledged observe, after a predictor
// swap, and during restart recovery; queries therefore never fit models.
func (s *Store) indexUpdateLocked(obj *object) {
	if s.index == nil || len(obj.track) == 0 {
		return
	}
	n := len(obj.track)
	last := obj.track[n-1]
	vel := s.velLocked(obj)
	// Untrained entries are a pure function of (last, vel): when neither
	// changed and no timestamps are in play, the stored entries are
	// already exact, so skip before building anything. Trained objects
	// never take this path — their predictions move with the query time
	// even when the object does not.
	if obj.predictor == nil && obj.idxClean && !s.index.Timed() &&
		last == obj.idxLast && vel == obj.idxVel {
		return
	}
	horizons := s.index.Horizons()
	now := obj.base + n - 1
	var preds [][]hpm.Prediction
	if obj.predictor != nil {
		if recent, err := s.recentLocked(obj); err == nil {
			tqs := obj.idxTqs[:0]
			for _, h := range horizons {
				tqs = append(tqs, now+h)
			}
			obj.idxTqs = tqs
			// The predictor is queried directly — not via Store.Predict —
			// so index refreshes are never parked in the evaluator ring.
			preds, _ = obj.predictor.PredictBatch(recent, tqs, 1)
		}
	}
	entries := obj.idxEntries[:0]
	for i, h := range horizons {
		var p []hpm.Prediction
		if preds != nil {
			p = preds[i]
		}
		entries = append(entries, indexEntryFor(h, p, last, vel))
	}
	obj.idxEntries = entries
	obj.idxLast, obj.idxVel, obj.idxClean = last, vel, true
	s.index.Update(obj.id, entries)
}

// rebuildIndex recomputes every object's entries — restart recovery, where
// tracks were restored without passing through the observe path. Objects
// are independent (spatial.Index is safe for arbitrary interleaving), so
// the work fans out across the persistence workers.
func (s *Store) rebuildIndex() {
	if s.index == nil {
		return
	}
	var objs []*object
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.objects {
			objs = append(objs, obj)
		}
		sh.mu.RUnlock()
	}
	parallel.For(len(objs), s.persistWorkers(), func(i int) {
		obj := objs[i]
		obj.mu.Lock()
		s.indexUpdateLocked(obj)
		obj.mu.Unlock()
	})
}

// forEachObject visits every tracked object, one shard at a time. Objects
// added or removed mid-walk may or may not be visited.
func (s *Store) forEachObject(fn func(id string, obj *object)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.objects))
		objs := make([]*object, 0, len(sh.objects))
		for id, obj := range sh.objects {
			ids = append(ids, id)
			objs = append(objs, obj)
		}
		sh.mu.RUnlock()
		for j, obj := range objs {
			fn(ids[j], obj)
		}
	}
}

func validateFleetQuery(horizon int) error {
	if horizon <= 0 {
		return fmt.Errorf("store: horizon must be positive, got %d", horizon)
	}
	return nil
}

// QueryRange returns every object whose cached predicted position at the
// bucket covering `horizon` (ticks after each object's latest observation)
// lies inside r, sorted by id. Answered entirely from the index: no model
// is fitted, no track is locked.
func (s *Store) QueryRange(r hpm.Rect, horizon int) ([]spatial.Result, error) {
	if s.index == nil {
		return nil, ErrNoFleetIndex
	}
	if err := validateFleetQuery(horizon); err != nil {
		return nil, err
	}
	if !r.IsValid() {
		return nil, fmt.Errorf("store: invalid rect %v", r)
	}
	return s.index.Range(r, horizon), nil
}

// QueryNearest returns the k objects whose cached predicted positions at
// the bucket covering `horizon` are closest to p, ascending by distance.
func (s *Store) QueryNearest(p hpm.Point, k, horizon int) ([]spatial.Result, error) {
	if s.index == nil {
		return nil, ErrNoFleetIndex
	}
	if err := validateFleetQuery(horizon); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("store: k must be positive, got %d", k)
	}
	if !p.IsFinite() {
		return nil, fmt.Errorf("store: non-finite query point")
	}
	return s.index.Nearest(p, k, horizon), nil
}

// ScanRange answers a range query by brute force: every object's prediction
// at the same quantized horizon is recomputed on the spot. It is the oracle
// the index is validated against and the baseline the fleetquery experiment
// measures; production traffic should use QueryRange.
func (s *Store) ScanRange(r hpm.Rect, horizon int) ([]spatial.Result, error) {
	if s.index == nil {
		return nil, ErrNoFleetIndex
	}
	if err := validateFleetQuery(horizon); err != nil {
		return nil, err
	}
	if !r.IsValid() {
		return nil, fmt.Errorf("store: invalid rect %v", r)
	}
	bh := s.index.BucketHorizon(horizon)
	var out []spatial.Result
	s.forEachObject(func(id string, obj *object) {
		e, ok := s.scanEntry(obj, bh)
		if ok && r.Contains(e.Pos) {
			out = append(out, spatial.Result{ID: id, Pos: e.Pos, Path: e.Path, Horizon: bh})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ScanNearest answers a kNN query by brute force over every object.
func (s *Store) ScanNearest(p hpm.Point, k, horizon int) ([]spatial.Result, error) {
	if s.index == nil {
		return nil, ErrNoFleetIndex
	}
	if err := validateFleetQuery(horizon); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("store: k must be positive, got %d", k)
	}
	if !p.IsFinite() {
		return nil, fmt.Errorf("store: non-finite query point")
	}
	bh := s.index.BucketHorizon(horizon)
	var out []spatial.Result
	s.forEachObject(func(id string, obj *object) {
		e, ok := s.scanEntry(obj, bh)
		if !ok {
			return
		}
		out = append(out, spatial.Result{ID: id, Pos: e.Pos, Path: e.Path, Horizon: bh, Dist: e.Pos.Dist(p)})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// scanEntry recomputes one object's entry at the (already quantized)
// horizon, mirroring indexUpdateLocked exactly — same batch query path,
// same extrapolation — under the object's read lock.
func (s *Store) scanEntry(obj *object, bh int) (spatial.Entry, bool) {
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	n := len(obj.track)
	if n == 0 {
		return spatial.Entry{}, false
	}
	now := obj.base + n - 1
	vel := s.velLocked(obj)
	var preds []hpm.Prediction
	if obj.predictor != nil {
		if recent, err := s.recentLocked(obj); err == nil {
			if batch, err := obj.predictor.PredictBatch(recent, []int{now + bh}, 1); err == nil {
				preds = batch[0]
			}
		}
	}
	return indexEntryFor(bh, preds, obj.track[n-1], vel), true
}

// SpatialStats reports the fleet index's shape and traffic counters; the
// zero value when no index is configured.
func (s *Store) SpatialStats() spatial.Stats {
	if s.index == nil {
		return spatial.Stats{}
	}
	return s.index.Stats()
}

// FleetIndexEnabled reports whether the store maintains a fleet index.
func (s *Store) FleetIndexEnabled() bool { return s.index != nil }

// FleetBucketHorizon reports which bucket a query horizon is answered from
// (0 when no index is configured).
func (s *Store) FleetBucketHorizon(h int) int {
	if s.index == nil {
		return 0
	}
	return s.index.BucketHorizon(h)
}

// FleetHorizons returns the index's horizon buckets (nil when disabled).
func (s *Store) FleetHorizons() []int {
	if s.index == nil {
		return nil
	}
	return s.index.Horizons()
}
