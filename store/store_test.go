package store

import (
	"sync"
	"testing"

	"hpm"
)

const period = 60

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Config.Period == 0 {
		opts.Config.Period = period
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// feed pushes n periods of a dataset trajectory into the store.
func feed(t *testing.T, s *Store, id string, seed int64, periods int) *hpm.Trajectory {
	t.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, seed)
	spec.Period = s.Period()
	spec.SubTrajectories = periods
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch(id, tr.Points()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestTrainAfterMinPeriods(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 4})
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 6
	tr := hpm.GenerateDataset(spec)

	// Feed three periods: still untrained.
	if err := s.ObserveBatch("bike", tr.Slice(0, 3*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict("bike", 3*period+10, 1); err != ErrUntrained {
		t.Errorf("expected ErrUntrained, got %v", err)
	}
	st, err := s.Stats("bike")
	if err != nil || st.Trained {
		t.Errorf("premature training: %+v, %v", st, err)
	}

	// One more period crosses the threshold; the train runs in the
	// background, so Flush before asserting on the model.
	if err := s.ObserveBatch("bike", tr.Slice(3*period, 4*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats("bike")
	if !st.Trained || st.Modeled != 4 {
		t.Fatalf("not trained after 4 periods: %+v", st)
	}
	if st.Patterns == 0 || st.Regions == 0 || st.IndexBytes == 0 {
		t.Errorf("empty model stats: %+v", st)
	}
}

func TestPredictOnStream(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 5})
	tr := feed(t, s, "bike", 2, 10)
	now, err := s.Now("bike")
	if err != nil || now != tr.Len()-1 {
		t.Fatalf("Now = %d, %v; want %d", now, err, tr.Len()-1)
	}
	preds, err := s.Predict("bike", now+20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions", len(preds))
	}
	rng, err := s.PredictRange("bike", now+1, now+5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rng) != 5 {
		t.Fatalf("range returned %d predictions", len(rng))
	}
}

func TestExtendOnNewPeriods(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 5})
	feed(t, s, "bike", 3, 5)
	st, _ := s.Stats("bike")
	if st.Modeled != 5 {
		t.Fatalf("modeled %d, want 5", st.Modeled)
	}
	// Two more periods: incremental extends keep the model current.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 3)
	spec.Period = period
	spec.SubTrajectories = 8
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Slice(5*period, 7*period)); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats("bike")
	if st.Modeled != 7 {
		t.Errorf("modeled %d after extend, want 7", st.Modeled)
	}
	if st.Periods != 7 {
		t.Errorf("periods %d, want 7", st.Periods)
	}
}

func TestRetrainPolicy(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 2})
	feed(t, s, "bike", 4, 3)
	p1, err := s.Predictor("bike")
	if err != nil || p1 == nil {
		t.Fatal("no predictor after initial train")
	}
	// Two more periods trigger a full retrain: a fresh predictor value.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 4)
	spec.Period = period
	spec.SubTrajectories = 5
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Slice(3*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Predictor("bike")
	if p1 == p2 {
		t.Error("RetrainEvery did not rebuild the model")
	}
	st, _ := s.Stats("bike")
	if st.Modeled != 5 {
		t.Errorf("modeled %d after retrain, want 5", st.Modeled)
	}
}

func TestMultipleObjectsIsolated(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 5})
	feed(t, s, "a", 10, 6)
	feed(t, s, "b", 20, 6)
	ids := s.Objects()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("Objects = %v", ids)
	}
	sa, _ := s.Stats("a")
	sb, _ := s.Stats("b")
	if sa.Patterns == sb.Patterns && sa.Regions == sb.Regions && sa.IndexBytes == sb.IndexBytes {
		t.Error("two different objects produced identical models (suspicious)")
	}
	s.Remove("a")
	if _, err := s.Stats("a"); err == nil {
		t.Error("removed object still present")
	}
	if _, err := s.Predict("never-seen", 10, 1); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	s := testStore(t, Options{})
	if err := s.ObserveBatch("x", nil); err != nil {
		t.Fatal(err)
	}
	if len(s.Objects()) != 0 {
		t.Error("empty batch created an object")
	}
}

func TestConcurrentObserveAndPredict(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	tr := feed(t, s, "bike", 6, 4) // trained
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers: keep streaming one more period in small batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 6)
		spec.Period = period
		spec.SubTrajectories = 6
		more := hpm.GenerateDataset(spec).Slice(4*period, 6*period)
		for i := 0; i < len(more); i += 10 {
			end := i + 10
			if end > len(more) {
				end = len(more)
			}
			if err := s.ObserveBatch("bike", more[i:end]); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Readers: concurrent predictions.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				now, err := s.Now("bike")
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Predict("bike", now+10, 1); err != nil && err != ErrUntrained {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	_ = tr
}

func TestStatsIncludeQueryCounters(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike", 8, 5)
	now, _ := s.Now("bike")
	for i := 0; i < 3; i++ {
		if _, err := s.Predict("bike", now+10+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Queries != 3 {
		t.Errorf("query counter = %d, want 3", st.Queries.Queries)
	}
	if st.Queries.Forward+st.Queries.Backward+st.Queries.Fallback+st.Queries.Unanswered != 3 {
		t.Errorf("query paths don't sum: %+v", st.Queries)
	}
}
