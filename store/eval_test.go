package store

import (
	"sync"
	"testing"

	"hpm"
	"hpm/internal/evalq"
)

// evalStore returns a trained store with the evaluator on (the default)
// and the dataset trajectory that fed it.
func evalStore(t *testing.T, opts Options) (*Store, *hpm.Trajectory) {
	t.Helper()
	if opts.MinTrainPeriods == 0 {
		opts.MinTrainPeriods = 3
	}
	s := testStore(t, opts)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 8
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Slice(0, 4*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s, tr
}

func TestEvalScoresServedPredictions(t *testing.T) {
	s, tr := evalStore(t, Options{})
	now := 4*period - 1
	if _, err := s.Predict("bike", now+5, 1); err != nil { // near: FQP bucket
		t.Fatal(err)
	}
	if _, err := s.Predict("bike", now+60, 1); err != nil { // distant: BQP bucket
		t.Fatal(err)
	}
	sum, err := s.EvalStats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recorded != 2 || sum.Outstanding != 2 || sum.Scored != 0 {
		t.Fatalf("before truth: %+v", sum.Totals)
	}

	// The next period's observations are the ground truth for both.
	if err := s.ObserveBatch("bike", tr.Slice(4*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	sum, err = s.EvalStats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scored != 2 || sum.Outstanding != 0 {
		t.Fatalf("after truth: %+v", sum.Totals)
	}
	var attempts uint64
	for _, c := range sum.Cells {
		attempts += c.Attempts
	}
	if attempts != 2 {
		t.Errorf("cell attempts = %d, want 2", attempts)
	}

	fs := s.FleetStats()
	if fs.Objects != 1 || fs.Trained != 1 {
		t.Errorf("fleet shape: %+v", fs)
	}
	if fs.Eval.Scored != 2 {
		t.Errorf("fleet eval scored = %d, want 2", fs.Eval.Scored)
	}
	if fs.Queries.Queries < 2 {
		t.Errorf("fleet queries = %+v", fs.Queries)
	}
}

func TestEvalDisabled(t *testing.T) {
	s, tr := evalStore(t, Options{EvalDisabled: true})
	now := 4*period - 1
	if _, err := s.Predict("bike", now+5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch("bike", tr.Slice(4*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	sum, err := s.EvalStats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recorded != 0 || sum.Scored != 0 {
		t.Errorf("disabled evaluator counted: %+v", sum.Totals)
	}
	if len(sum.Cells) == 0 {
		t.Error("disabled evaluator should still report stable zero cells")
	}
}

func TestEvalPredictBatchRecorded(t *testing.T) {
	s, tr := evalStore(t, Options{})
	now := 4*period - 1
	if _, err := s.PredictBatch("bike", []int{now + 1, now + 2, now + 60}, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch("bike", tr.Slice(4*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	sum, err := s.EvalStats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scored != 3 {
		t.Errorf("scored = %d, want 3", sum.Scored)
	}
}

func TestEvalPredictFallbackShadowScores(t *testing.T) {
	s, tr := evalStore(t, Options{})
	now := 4*period - 1
	if _, err := s.Predict("bike", now+60, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictFallback("bike", now+60); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch("bike", tr.Slice(4*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	sum, err := s.EvalStats("bike")
	if err != nil {
		t.Fatal(err)
	}
	var fallback uint64
	for _, c := range sum.Cells {
		if c.Path == "fallback" {
			fallback += c.Attempts
		}
	}
	if fallback == 0 {
		t.Error("shadow fallback query left no fallback attempts")
	}
	if sum.Scored != 2 {
		t.Errorf("scored = %d, want 2", sum.Scored)
	}
}

func TestDriftTriggersEarlyRetrain(t *testing.T) {
	s, _ := evalStore(t, Options{
		SynchronousTraining: true,
		DriftThreshold:      50,
		DriftMinScores:      3,
	})
	// Serve a prediction, then contradict it hard: truth teleports far
	// from anything the model learned, so every scored error is huge and
	// the EWMA blows through the threshold once enough samples land.
	for i := 0; i < 8; i++ {
		now, err := s.Now("bike")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Predict("bike", now+1, 1); err != nil {
			t.Fatal(err)
		}
		far := hpm.Pt(50000+float64(i), 50000)
		if err := s.Observe("bike", far); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.DriftRetrains == 0 {
		t.Error("drift EWMA never triggered a retrain")
	}
	if fs := s.FleetStats(); fs.DriftRetrains == 0 {
		t.Error("fleet drift counter did not move")
	}
}

func TestAdaptiveRoutingPrefersMeasuredWinner(t *testing.T) {
	s, _ := evalStore(t, Options{AdaptiveRouting: true, AdaptiveMinSamples: 3})
	obj, err := s.get("bike", false)
	if err != nil {
		t.Fatal(err)
	}
	now, _ := s.Now("bike")
	tq := now + 2 // near horizon: the forward path would answer
	obj.mu.RLock()
	routed := s.routePath(obj, now, tq)
	obj.mu.RUnlock()
	if routed == evalq.PathFallback {
		t.Fatal("routed to fallback with no measurements")
	}

	// Seed the evaluator with a losing forward path and a winning
	// fallback at this horizon (synthetic timestamps far past the track
	// keep these entries from colliding with real scoring).
	for i := 0; i < 5; i++ {
		base := 100000 * (i + 1)
		obj.eval.Record(base, base+2, evalq.PathForward, hpm.Pt(9999, 9999))
		obj.eval.Record(base, base+2, evalq.PathFallback, hpm.Pt(0, 0))
		obj.eval.Observe(base+1, []hpm.Point{hpm.Pt(0, 0), hpm.Pt(0, 0)})
	}
	obj.mu.RLock()
	routed = s.routePath(obj, now, tq)
	obj.mu.RUnlock()
	if routed != evalq.PathFallback {
		t.Fatal("measured losing forward path not routed to fallback")
	}
	preds, err := s.Predict("bike", tq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 || preds[0].Path != hpm.PathFallback {
		t.Errorf("adaptive Predict did not answer via fallback: %+v", preds)
	}
}

// TestEvalHammerConcurrent drives concurrent ingest (which scores),
// queries (which record) and metric scrapes against one store — the
// -race workout for the eval path's locking.
func TestEvalHammerConcurrent(t *testing.T) {
	s, tr := evalStore(t, Options{})
	pts := tr.Slice(4*period, 8*period)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now, err := s.Now("bike")
				if err != nil {
					continue
				}
				// Errors are expected here: the track can grow between Now
				// and Predict, pushing tq behind the current time. The
				// hammer is about locking, not query outcomes.
				s.Predict("bike", now+1+i%100, 1)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.FleetStats()
			if _, err := s.EvalStats("bike"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for off := 0; off < len(pts); off += 7 {
		// Predict from the ingest goroutine too, so at least these
		// predictions deterministically mature against the next batch
		// regardless of how the racing readers get scheduled.
		if now, err := s.Now("bike"); err == nil {
			if _, err := s.Predict("bike", now+3, 1); err != nil {
				t.Fatal(err)
			}
		}
		end := off + 7
		if end > len(pts) {
			end = len(pts)
		}
		if err := s.ObserveBatch("bike", pts[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fs := s.FleetStats()
	if fs.Eval.Scored == 0 {
		t.Error("hammer scored nothing")
	}
}
