package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpm"
)

// fixtureOpts is the configuration the committed golden snapshots were
// generated with. Every field that lands in the persisted options JSON
// must stay identical between generation and the compat tests, or the
// byte-equivalence checks compare different fleets.
func fixtureOpts() Options {
	return Options{
		Config:          hpm.Config{Period: period},
		MinTrainPeriods: 3,
		RetrainEvery:    50,
	}
}

// fixtureFleet ingests the golden fleet: one trained object and two
// untrained ones (a short track and a single observation).
func fixtureFleet(t *testing.T, s *Store) {
	t.Helper()
	feed(t, s, "fixture-trained", 1, 4)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 2)
	spec.Period = period
	spec.SubTrajectories = 1
	if err := s.ObserveBatch("fixture-short", hpm.GenerateDataset(spec).Points()[:period/2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("fixture-single", hpm.Pt(10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateCompatFixtures regenerates the golden v1/v2 snapshot files.
// Skipped unless HPM_UPDATE_FIXTURES is set: the whole point of the
// committed fixtures is that they do NOT change when the code does, so
// old snapshots keep loading.
func TestUpdateCompatFixtures(t *testing.T) {
	if os.Getenv("HPM_UPDATE_FIXTURES") == "" {
		t.Skip("set HPM_UPDATE_FIXTURES=1 to regenerate store/testdata golden snapshots")
	}
	s := testStore(t, fixtureOpts())
	defer s.Close()
	fixtureFleet(t, s)
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(filepath.Join("testdata", "snapshot_v2.hpms")); err != nil {
		t.Fatal(err)
	}
	if err := writeV1Fixture(s, filepath.Join("testdata", "snapshot_v1.hpms")); err != nil {
		t.Fatal(err)
	}
}

// writeV1Fixture encodes the store in the version-1 single-file format —
// no per-object track base — wrapped in SaveFile's CRC container. Kept in
// the tests because production code only ever reads v1.
func writeV1Fixture(s *Store, path string) error {
	var buf bytes.Buffer
	cw := &crcWriter{w: &buf}
	bw := bufio.NewWriter(cw)
	bw.WriteString(snapshotMagic)
	bw.WriteByte(1)
	oj, err := jsonOptions(s)
	if err != nil {
		return err
	}
	writeBytes(bw, oj)
	ids := s.Objects()
	writeUvarint(bw, uint64(len(ids)))
	for _, id := range ids {
		obj, err := s.get(id, false)
		if err != nil {
			return err
		}
		snap, err := snapshotObject(id, obj)
		if err != nil {
			return err
		}
		if snap.base != 0 {
			return fmt.Errorf("fixture object %q has base %d; v1 cannot express it", id, snap.base)
		}
		writeBytes(bw, []byte(snap.id))
		writeUvarint(bw, uint64(len(snap.track)))
		var fb [8]byte
		for _, p := range snap.track {
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(p.X))
			bw.Write(fb[:])
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(p.Y))
			bw.Write(fb[:])
		}
		writeUvarint(bw, uint64(snap.modeled))
		writeUvarint(bw, uint64(snap.sinceRetrain))
		if snap.model == nil {
			bw.WriteByte(0)
		} else {
			bw.WriteByte(1)
			bw.Write(snap.model)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	buf.Write(trailer[:])
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// TestCompatFixturesLoad loads the committed v1 and v2 golden snapshots
// and requires them to describe the same fleet, byte for byte, once
// re-encoded: compatibility means an old snapshot restores to exactly the
// state a current one would.
func TestCompatFixturesLoad(t *testing.T) {
	v1, err := LoadFile(filepath.Join("testdata", "snapshot_v1.hpms"))
	if err != nil {
		t.Fatalf("load v1 fixture: %v", err)
	}
	defer v1.Close()
	v2, err := LoadFile(filepath.Join("testdata", "snapshot_v2.hpms"))
	if err != nil {
		t.Fatalf("load v2 fixture: %v", err)
	}
	defer v2.Close()

	for _, s := range []*Store{v1, v2} {
		if got := s.Objects(); len(got) != 3 {
			t.Fatalf("fixture restored %d objects: %v", len(got), got)
		}
		st, err := s.Stats("fixture-trained")
		if err != nil || !st.Trained {
			t.Fatalf("fixture-trained not trained after restore: %+v (err %v)", st, err)
		}
		now, _ := s.Now("fixture-trained")
		if _, err := s.Predict("fixture-trained", now+10, 1); err != nil {
			t.Fatalf("predict from restored fixture: %v", err)
		}
	}

	var a, b bytes.Buffer
	if err := v1.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := v2.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("v1 and v2 fixtures re-encode differently: version upgrade is lossy")
	}
}

// TestCompatV2UpgradesToV3 opens a durable store seeded with the v2
// single-file fixture, checkpoints it into the sharded v3 layout, and
// requires the reopened fleet to re-encode byte-identically to the v2
// restore: the upgrade path loses nothing.
func TestCompatV2UpgradesToV3(t *testing.T) {
	fix, err := os.ReadFile(filepath.Join("testdata", "snapshot_v2.hpms"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), fix, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over v2 snapshot: %v", err)
	}
	if h := s.Health(); !h.SnapshotRestored || h.Objects != 3 {
		t.Fatalf("v2 snapshot not restored: %+v", h)
	}
	var want bytes.Buffer
	if err := s.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // rewrites as manifest + segments
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after v3 upgrade: %v", err)
	}
	defer back.Close()
	var got bytes.Buffer
	if err := back.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("fleet differs after v2 -> v3 upgrade round trip")
	}
}

// TestOpenRejectsMissingSegment deletes one segment file out from under a
// v3 snapshot: Open must fail loudly, naming the segment, rather than
// silently dropping that shard's objects.
func TestOpenRejectsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus", 13, 3, 60)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segmentPattern))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files after close (err %v)", err)
	}
	orig, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, durableOpts()); err == nil {
		t.Fatal("missing segment accepted")
	} else if !strings.Contains(err.Error(), filepath.Base(segs[0])) {
		t.Errorf("error does not name the missing segment: %v", err)
	}

	// Corruption (same size, flipped bit) is caught by the checksum...
	bad := append([]byte(nil), orig...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(segs[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, durableOpts()); err == nil {
		t.Fatal("corrupt segment accepted")
	}
	// ...and truncation by the manifest's recorded size.
	if err := os.WriteFile(segs[0], orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, durableOpts()); err == nil {
		t.Fatal("truncated segment accepted")
	}

	if err := os.WriteFile(segs[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatalf("pristine segment restored but open fails: %v", err)
	}
	back.Close()
}

// TestIncrementalCheckpointRewritesOnlyDirty is the O(dirty) contract:
// after a full checkpoint, touching one object makes the next checkpoint
// rewrite exactly one shard — and an untouched fleet checkpoints as a
// pure WAL reclaim that re-encodes nothing at all.
func TestIncrementalCheckpointRewritesOnlyDirty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const fleet = 100
	for i := 0; i < fleet; i++ {
		if err := s.Observe(fmt.Sprintf("obj-%03d", i), hpm.Pt(float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first := s.Health().LastCheckpoint
	if first == nil || !first.Full || first.Objects != fleet || first.Epoch != 1 {
		t.Fatalf("first checkpoint not a full epoch-1 snapshot: %+v", first)
	}

	if err := s.Observe("obj-000", hpm.Pt(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	second := s.Health().LastCheckpoint
	if second == nil || second.Full || second.Shards != 1 || second.Epoch != 2 {
		t.Fatalf("second checkpoint should rewrite exactly the dirty shard: %+v", second)
	}
	if second.Objects >= fleet {
		t.Fatalf("incremental checkpoint re-encoded the whole fleet: %+v", second)
	}

	// Nothing changed: the checkpoint is a no-op reclaim.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	third := s.Health().LastCheckpoint
	if third == nil || third.Objects != 0 || third.Shards != 0 || third.Epoch != 2 {
		t.Fatalf("clean checkpoint should write nothing: %+v", third)
	}

	crash(s)
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := len(back.Objects()); got != fleet {
		t.Fatalf("recovered %d objects, want %d", got, fleet)
	}
	if st, _ := back.Stats("obj-000"); st.Points != 2 {
		t.Fatalf("obj-000 recovered %d points, want 2", st.Points)
	}
	if st, _ := back.Stats("obj-099"); st.Points != 1 {
		t.Fatalf("obj-099 recovered %d points, want 1", st.Points)
	}
}

// TestCompactEveryForcesFullRewrite checks the compaction valve: with
// CompactEvery=2, every second checkpoint rewrites the whole fleet even
// though only one shard is dirty, re-keying old epochs' segments so the
// directory never accumulates unboundedly stale files.
func TestCompactEveryForcesFullRewrite(t *testing.T) {
	opts := durableOpts()
	opts.CompactEvery = 2
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const fleet = 20
	for i := 0; i < fleet; i++ {
		if err := s.Observe(fmt.Sprintf("obj-%02d", i), hpm.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	dirtyOne := func(i int) {
		t.Helper()
		if err := s.Observe(fmt.Sprintf("obj-%02d", i%fleet), hpm.Pt(float64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil { // 1: full (first ever)
		t.Fatal(err)
	}
	dirtyOne(1)
	if err := s.Checkpoint(); err != nil { // 2: incremental
		t.Fatal(err)
	}
	if info := s.Health().LastCheckpoint; info.Full {
		t.Fatalf("second checkpoint should be incremental: %+v", info)
	}
	dirtyOne(2)
	if err := s.Checkpoint(); err != nil { // 3: forced full
		t.Fatal(err)
	}
	info := s.Health().LastCheckpoint
	if !info.Full || info.Objects != fleet {
		t.Fatalf("CompactEvery=2 did not force a full rewrite on the third checkpoint: %+v", info)
	}
}

// TestOrphanSegmentsSwept plants segment files no manifest references —
// the debris of a checkpoint that died between segment writes and its
// manifest commit — and requires Open to delete them while keeping every
// live segment.
func TestOrphanSegmentsSwept(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus", 7, 3, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := filepath.Glob(filepath.Join(dir, segmentPattern))
	if err != nil || len(live) == 0 {
		t.Fatalf("no live segments (err %v)", err)
	}
	orphan := filepath.Join(dir, fmt.Sprintf(segmentFormat, 63, uint64(999)))
	if err := os.WriteFile(orphan, []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan segment survived Open")
	}
	for _, p := range live {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("live segment %s swept: %v", filepath.Base(p), err)
		}
	}
}

// TestRemoveSurvivesIncrementalCheckpoint: a removal after a checkpoint
// dirties its shard, so the next incremental checkpoint re-encodes the
// shard without the object and the removal sticks across a crash even
// after the tombstone's WAL segment is reclaimed.
func TestRemoveSurvivesIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Observe(fmt.Sprintf("obj-%d", i), hpm.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("obj-3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // incremental: obj-3's shard only
		t.Fatal(err)
	}
	if info := s.Health().LastCheckpoint; info.Full {
		t.Fatalf("expected an incremental checkpoint: %+v", info)
	}
	crash(s)
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, err := back.Stats("obj-3"); err == nil {
		t.Error("removed object resurrected by incremental checkpoint")
	}
	if got := len(back.Objects()); got != 9 {
		t.Errorf("recovered %d objects, want 9", got)
	}
}

// jsonOptions exposes the store's persisted options encoding to the
// fixture writer.
func jsonOptions(s *Store) ([]byte, error) {
	return json.Marshal(s.opts)
}
