package store

import (
	"context"
	"fmt"

	"hpm"
	"hpm/internal/spatial"
)

// Context-aware entry points. The serve layer threads each request's
// context here, so client disconnects and per-request deadlines cancel
// work instead of computing answers nobody reads.
//
// Cancellation semantics differ by path. Queries are side-effect free and
// may be abandoned at any check. Observes have a point of no return: once
// a record is staged into a WAL group commit it WILL be written, and a
// record that is durable but not applied in memory would collide with a
// later write at the same track offset on replay. So observe paths check
// the context only before staging; a nil return always means the
// observation is durable and applied, and a ctx error always means it is
// neither.

// ObserveBatchContext is ObserveBatch with request-scoped cancellation,
// honored only up to the WAL commit (see above).
func (s *Store) ObserveBatchContext(ctx context.Context, id string, locs []hpm.Point) error {
	if len(locs) == 0 {
		return nil
	}
	for _, p := range locs {
		if !isFinite(p) {
			return fmt.Errorf("%w: (%v, %v)", ErrInvalidPoint, p.X, p.Y)
		}
	}
	if err := s.writable(); err != nil {
		return err // degraded: fail fast before touching any lock
	}
	for {
		obj, err := s.get(id, true)
		if err != nil {
			return err
		}
		obj.ingestMu.Lock()
		if obj.removed {
			// Raced Remove: this pointer is tombstoned, so its WAL records
			// would land after the tombstone with stale offsets. Re-create
			// through the shard map.
			obj.ingestMu.Unlock()
			continue
		}
		err = s.observeLocked(ctx, obj, id, locs)
		obj.ingestMu.Unlock()
		return err
	}
}

// QueryRangeContext is QueryRange with request-scoped cancellation.
func (s *Store) QueryRangeContext(ctx context.Context, r hpm.Rect, horizon int) ([]spatial.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.QueryRange(r, horizon)
}

// QueryNearestContext is QueryNearest with request-scoped cancellation.
func (s *Store) QueryNearestContext(ctx context.Context, p hpm.Point, k, horizon int) ([]spatial.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.QueryNearest(p, k, horizon)
}
