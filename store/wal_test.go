package store

import (
	"os"
	"path/filepath"
	"testing"

	"hpm"
)

// walPoints builds a recognizable point run: (base, base+1), (base+1, base+2), ...
func walPoints(base, n int) []hpm.Point {
	pts := make([]hpm.Point, n)
	for i := range pts {
		pts[i] = hpm.Pt(float64(base+i), float64(base+i+1))
	}
	return pts
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []walRecord{
		{id: "bus-1", offset: 0, pts: walPoints(0, 3)},
		{id: "bus-2", offset: 0, pts: walPoints(100, 1)},
		{id: "bus-1", offset: 3, pts: walPoints(3, 5)},
	}
	for _, rec := range want {
		if err := w.append(rec.id, rec.offset, rec.pts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	segs, _, err := walSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, %v", segs, err)
	}
	var got []walRecord
	n, err := replaySegment(segs[0], true, func(r walRecord) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != len(want) {
		t.Fatalf("replayed %d records, err %v", n, err)
	}
	for i, rec := range got {
		if rec.id != want[i].id || rec.offset != want[i].offset || len(rec.pts) != len(want[i].pts) {
			t.Fatalf("record %d: %+v != %+v", i, rec, want[i])
		}
		for j, p := range rec.pts {
			if p != want[i].pts[j] {
				t.Fatalf("record %d point %d: %v != %v", i, j, p, want[i].pts[j])
			}
		}
	}
}

func TestWALTornTailToleratedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append("bus", i*4, walPoints(i*4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := walSegments(dir)
	path := segs[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the file at every byte length inside the final record: replay
	// must keep the first two records and never error.
	recLen := len(data) / 3
	for cut := 2*recLen + 1; cut < len(data); cut++ {
		p := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := replaySegment(p, true, func(walRecord) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, n)
		}
		// The tear was truncated away: a second replay of the same file as
		// a frozen (non-final) segment must now succeed cleanly.
		if _, err := replaySegment(p, false, func(walRecord) error { return nil }); err != nil {
			t.Fatalf("cut %d not repaired: %v", cut, err)
		}
	}
}

func TestWALCorruptionInFrozenSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append("bus", 0, walPoints(0, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := walSegments(dir)
	data, _ := os.ReadFile(segs[0])
	data[len(data)/2] ^= 0xFF // flip a payload bit: checksum must catch it
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replaySegment(segs[0], false, func(walRecord) error { return nil }); err == nil {
		t.Fatal("corrupt frozen segment replayed without error")
	}
}

func TestWALRotateReclaim(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append("a", 0, walPoints(0, 1)); err != nil {
		t.Fatal(err)
	}
	frozen, err := w.rotate()
	if err != nil || len(frozen) != 1 {
		t.Fatalf("rotate: %v, %v", frozen, err)
	}
	if err := w.append("a", 1, walPoints(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Both the frozen and the live segment exist until reclaim.
	if segs, _, _ := walSegments(dir); len(segs) != 2 {
		t.Fatalf("segments before reclaim: %v", segs)
	}
	w.reclaim(frozen)
	segs, _, _ := walSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments after reclaim: %v", segs)
	}
	if segs[0] == frozen[0] {
		t.Fatal("reclaim removed the live segment")
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALSegmentsResumeNumbering(t *testing.T) {
	dir := t.TempDir()
	w, _ := openWAL(dir, false)
	w.append("a", 0, walPoints(0, 1))
	w.close()
	// A second process start must not reuse (and clobber) segment 1.
	w2, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(w2.frozen) != 1 {
		t.Fatalf("prior segment not frozen: %v", w2.frozen)
	}
	segs, last, _ := walSegments(dir)
	if len(segs) != 2 || last != 2 {
		t.Fatalf("segments %v, last %d", segs, last)
	}
}
