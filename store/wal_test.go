package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hpm"
)

// walPoints builds a recognizable point run: (base, base+1), (base+1, base+2), ...
func walPoints(base, n int) []hpm.Point {
	pts := make([]hpm.Point, n)
	for i := range pts {
		pts[i] = hpm.Pt(float64(base+i), float64(base+i+1))
	}
	return pts
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []walRecord{
		{id: "bus-1", offset: 0, pts: walPoints(0, 3)},
		{id: "bus-2", offset: 0, pts: walPoints(100, 1)},
		{id: "bus-1", offset: 3, pts: walPoints(3, 5)},
	}
	for _, rec := range want {
		if err := w.append(rec.id, rec.offset, rec.pts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	segs, _, err := walSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, %v", segs, err)
	}
	var got []walRecord
	n, err := replaySegment(segs[0], true, func(r walRecord) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != len(want) {
		t.Fatalf("replayed %d records, err %v", n, err)
	}
	for i, rec := range got {
		if rec.id != want[i].id || rec.offset != want[i].offset || len(rec.pts) != len(want[i].pts) {
			t.Fatalf("record %d: %+v != %+v", i, rec, want[i])
		}
		for j, p := range rec.pts {
			if p != want[i].pts[j] {
				t.Fatalf("record %d point %d: %v != %v", i, j, p, want[i].pts[j])
			}
		}
	}
}

func TestWALTornTailToleratedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append("bus", i*4, walPoints(i*4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := walSegments(dir)
	path := segs[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the file at every byte length inside the final record: replay
	// must keep the first two records and never error.
	recLen := len(data) / 3
	for cut := 2*recLen + 1; cut < len(data); cut++ {
		p := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := replaySegment(p, true, func(walRecord) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, n)
		}
		// The tear was truncated away: a second replay of the same file as
		// a frozen (non-final) segment must now succeed cleanly.
		if _, err := replaySegment(p, false, func(walRecord) error { return nil }); err != nil {
			t.Fatalf("cut %d not repaired: %v", cut, err)
		}
	}
}

func TestWALCorruptionInFrozenSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append("bus", 0, walPoints(0, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := walSegments(dir)
	data, _ := os.ReadFile(segs[0])
	data[len(data)/2] ^= 0xFF // flip a payload bit: checksum must catch it
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replaySegment(segs[0], false, func(walRecord) error { return nil }); err == nil {
		t.Fatal("corrupt frozen segment replayed without error")
	}
}

func TestWALRotateReclaim(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append("a", 0, walPoints(0, 1)); err != nil {
		t.Fatal(err)
	}
	frozen, err := w.rotate()
	if err != nil || len(frozen) != 1 {
		t.Fatalf("rotate: %v, %v", frozen, err)
	}
	if err := w.append("a", 1, walPoints(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Both the frozen and the live segment exist until reclaim.
	if segs, _, _ := walSegments(dir); len(segs) != 2 {
		t.Fatalf("segments before reclaim: %v", segs)
	}
	w.reclaim(frozen)
	segs, _, _ := walSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments after reclaim: %v", segs)
	}
	if segs[0] == frozen[0] {
		t.Fatal("reclaim removed the live segment")
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALSegmentsResumeNumbering(t *testing.T) {
	dir := t.TempDir()
	w, _ := openWAL(dir, false)
	w.append("a", 0, walPoints(0, 1))
	w.close()
	// A second process start must not reuse (and clobber) segment 1.
	w2, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(w2.frozen) != 1 {
		t.Fatalf("prior segment not frozen: %v", w2.frozen)
	}
	segs, last, _ := walSegments(dir)
	if len(segs) != 2 || last != 2 {
		t.Fatalf("segments %v, last %d", segs, last)
	}
}

// TestWALGroupBatchTornTailEveryByte writes one multi-record group batch
// (a fleet appendAll: one file write carries three records), then chops
// the segment at every byte inside the batch. Replay must recover every
// record wholly before the cut, repair the tear in place, and never error
// — a torn group write behaves exactly like a torn single record.
func TestWALGroupBatchTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := []walRecord{
		{id: "bus-1", offset: 0, pts: walPoints(0, 3)},
		{id: "bus-2", offset: 0, pts: walPoints(50, 2)},
		{id: "bus-3", offset: 0, pts: walPoints(90, 4)},
	}
	if err := w.appendAll(recs); err != nil {
		t.Fatal(err)
	}
	if _, batches, _ := w.stats(); batches != 1 {
		t.Fatalf("appendAll used %d writes, want 1 group commit", batches)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := walSegments(dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, for computing how many records survive each cut.
	var bounds []int
	off := 0
	for off < len(data) {
		_, n, derr := decodeWALRecord(data[off:])
		if derr != nil {
			t.Fatal(derr)
		}
		off += n
		bounds = append(bounds, off)
	}
	for cut := 1; cut < len(data); cut++ {
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		p := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := replaySegment(p, true, func(walRecord) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, want)
		}
		// Repaired: a frozen-segment replay of the same file is now clean.
		if _, err := replaySegment(p, false, func(walRecord) error { return nil }); err != nil {
			t.Fatalf("cut %d not repaired: %v", cut, err)
		}
	}
}

// TestWALGroupCommitConcurrentAppends drives many concurrent appenders
// and verifies every record lands durably and decodes intact, that the
// stats counters account for every record, and that commits coalesced
// (batches never exceed records). Run with -race.
func TestWALGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("w-%d", i)
			for j := 0; j < perWriter; j++ {
				if err := w.append(id, j, walPoints(j, 1)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	records, batches, fsyncs := w.stats()
	if records != writers*perWriter {
		t.Fatalf("staged %d records, want %d", records, writers*perWriter)
	}
	if batches == 0 || batches > records {
		t.Fatalf("batches = %d out of range (records %d)", batches, records)
	}
	if fsyncs != batches {
		t.Fatalf("fsyncs = %d, want one per batch (%d)", fsyncs, batches)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Every writer's records replay complete and in per-writer order.
	segs, _, _ := walSegments(dir)
	next := make(map[string]int)
	for _, seg := range segs {
		if _, err := replaySegment(seg, true, func(r walRecord) error {
			if r.offset != next[r.id] {
				t.Errorf("%s: record at offset %d, want %d (reordered)", r.id, r.offset, next[r.id])
			}
			next[r.id] = r.offset + len(r.pts)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < writers; i++ {
		if id := fmt.Sprintf("w-%d", i); next[id] != perWriter {
			t.Errorf("%s: replayed %d points, want %d", id, next[id], perWriter)
		}
	}
}
