package store

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"hpm"
	"hpm/internal/spatial"
)

func rct(x0, y0, x1, y1 float64) hpm.Rect {
	return hpm.Rect{Min: hpm.Pt(x0, y0), Max: hpm.Pt(x1, y1)}
}

func fleetStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.FleetIndex == nil {
		opts.FleetIndex = &spatial.Config{CellSize: 50}
	}
	return testStore(t, opts)
}

func TestFleetQueryDisabled(t *testing.T) {
	s := testStore(t, Options{})
	if _, err := s.QueryRange(rct(0, 0, 1, 1), 5); err != ErrNoFleetIndex {
		t.Errorf("QueryRange without index: %v, want ErrNoFleetIndex", err)
	}
	if _, err := s.QueryNearest(hpm.Pt(0, 0), 3, 5); err != ErrNoFleetIndex {
		t.Errorf("QueryNearest without index: %v, want ErrNoFleetIndex", err)
	}
	if s.FleetIndexEnabled() || s.FleetHorizons() != nil {
		t.Error("disabled store reports an index")
	}
	if fs := s.FleetStats(); fs.FleetIndex {
		t.Error("FleetStats.FleetIndex true without index")
	}
}

func TestFleetQueryValidation(t *testing.T) {
	s := fleetStore(t, Options{})
	if _, err := s.QueryRange(rct(0, 0, 1, 1), 0); err == nil {
		t.Error("horizon 0 accepted")
	}
	if _, err := s.QueryRange(rct(5, 5, 1, 1), 10); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := s.QueryNearest(hpm.Pt(0, 0), 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := s.QueryNearest(hpm.Pt(math.NaN(), 0), 3, 10); err == nil {
		t.Error("NaN query point accepted")
	}
	if _, err := New(Options{
		Config:     hpm.Config{Period: period},
		FleetIndex: &spatial.Config{},
	}); err == nil {
		t.Error("FleetIndex without CellSize accepted")
	}
}

// TestIndexMatchesScanAllDatasets is the identity property the whole design
// rests on: with aging disabled (the default), range and kNN answers from
// the incrementally maintained index are exactly the brute-force answers
// recomputed from live models — across all four paper datasets, with
// trained and untrained objects mixed.
func TestIndexMatchesScanAllDatasets(t *testing.T) {
	for _, kind := range []hpm.Dataset{hpm.DatasetBike, hpm.DatasetCow, hpm.DatasetCar, hpm.DatasetAirplane} {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			s := fleetStore(t, Options{MinTrainPeriods: 3})
			const objects = 12
			for i := 0; i < objects; i++ {
				spec := hpm.DefaultDatasetSpec(kind, int64(100*i+7))
				spec.Period = s.Period()
				// Every third object stays below MinTrainPeriods so the
				// extrapolation path is exercised alongside the models.
				spec.SubTrajectories = 5
				if i%3 == 2 {
					spec.SubTrajectories = 1
				}
				tr := hpm.GenerateDataset(spec)
				id := fmt.Sprintf("%s-%d", kind, i)
				if err := s.ObserveBatch(id, tr.Points()); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(int64(kind) + 1))
			horizons := []int{1, 5, 17, 50, 120, 500}
			for trial := 0; trial < 40; trial++ {
				h := horizons[trial%len(horizons)]
				cx, cy := rng.Float64()*900-200, rng.Float64()*900-200
				w, ht := rng.Float64()*600, rng.Float64()*600
				r := rct(cx, cy, cx+w, cy+ht)
				got, err := s.QueryRange(r, h)
				if err != nil {
					t.Fatal(err)
				}
				want, err := s.ScanRange(r, h)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d h=%d rect=%v:\nindex: %v\nscan:  %v", trial, h, r, got, want)
				}

				k := 1 + rng.Intn(objects+3)
				p := hpm.Pt(cx, cy)
				gotK, err := s.QueryNearest(p, k, h)
				if err != nil {
					t.Fatal(err)
				}
				wantK, err := s.ScanNearest(p, k, h)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotK, wantK) {
					t.Fatalf("trial %d h=%d k=%d p=%v:\nindex: %v\nscan:  %v", trial, h, k, p, gotK, wantK)
				}
			}
		})
	}
}

func TestIndexDropsRemovedObject(t *testing.T) {
	s := fleetStore(t, Options{MinTrainPeriods: 1 << 20})
	feed(t, s, "gone", 5, 2)
	feed(t, s, "stays", 6, 2)
	all := rct(-1e6, -1e6, 1e6, 1e6)
	res, err := s.QueryRange(all, 10)
	if err != nil || len(res) != 2 {
		t.Fatalf("before remove: %v, %v", res, err)
	}
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	res, err = s.QueryRange(all, 10)
	if err != nil || len(res) != 1 || res[0].ID != "stays" {
		t.Fatalf("after remove: %v, %v", res, err)
	}
}

// TestIndexSurvivesRestart checks both recovery paths: the snapshot restore
// and a WAL tail replayed on top, with the index enabled via the process
// options on reopen.
func TestIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Config:          hpm.Config{Period: period},
		MinTrainPeriods: 3,
		WALNoSync:       true,
		FleetIndex:      &spatial.Config{CellSize: 50},
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, "bike", 9, 5)
	all := rct(-1e6, -1e6, 1e6, 1e6)
	before, err := s.QueryRange(all, 20)
	if err != nil || len(before) != 1 {
		t.Fatalf("pre-restart query: %v, %v", before, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := s2.QueryRange(all, 20)
	if err != nil || len(after) != 1 || after[0].ID != "bike" {
		t.Fatalf("post-restart query: %v, %v", after, err)
	}
	want, err := s2.ScanRange(all, 20)
	if err != nil || !reflect.DeepEqual(after, want) {
		t.Fatalf("post-restart index != scan:\nindex: %v\nscan:  %v (%v)", after, want, err)
	}
}

func TestFleetStatsSpatial(t *testing.T) {
	s := fleetStore(t, Options{MinTrainPeriods: 1 << 20})
	feed(t, s, "a", 1, 2)
	if _, err := s.QueryRange(rct(-1e6, -1e6, 1e6, 1e6), 10); err != nil {
		t.Fatal(err)
	}
	fs := s.FleetStats()
	if !fs.FleetIndex {
		t.Fatal("FleetStats.FleetIndex false")
	}
	if fs.Spatial.Objects != 1 || fs.Spatial.Updates == 0 || fs.Spatial.RangeQueries != 1 {
		t.Errorf("spatial stats = %+v", fs.Spatial)
	}
	if fs.Spatial.Entries != int64(len(s.FleetHorizons())) {
		t.Errorf("entries = %d, want %d", fs.Spatial.Entries, len(s.FleetHorizons()))
	}
}

// TestFleetQueryHammer races ingest, removal, and retrain-driven swaps
// against concurrent range and kNN queries. Run under -race it pins the
// locking design; assertions are minimal because the interleavings are
// nondeterministic.
func TestFleetQueryHammer(t *testing.T) {
	s := fleetStore(t, Options{MinTrainPeriods: 2, RetrainEvery: 1})
	stop := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := hpm.DefaultDatasetSpec(hpm.DatasetCar, int64(w))
			spec.Period = period
			spec.SubTrajectories = 8
			pts := hpm.GenerateDataset(spec).Points()
			id := fmt.Sprintf("obj-%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := (i * 7) % (len(pts) - 7)
				if err := s.ObserveBatch(id, pts[off:off+7]); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 49 {
					if err := s.Remove(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := hpm.Pt(rng.Float64()*500, rng.Float64()*500)
				if _, err := s.QueryRange(rct(c.X-100, c.Y-100, c.X+100, c.Y+100), 10); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.QueryNearest(c, 2, 50); err != nil {
					t.Error(err)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}
