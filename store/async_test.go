package store

import (
	"testing"
	"time"

	"hpm"
)

// TestQueriesServeDuringBackgroundRetrain pins the async-retrain contract:
// while an object's retrain is provably in flight (the trainer goroutine is
// parked on the beforeTrain hook), queries against other objects AND the
// retraining object itself keep answering from the old predictor, and
// ObserveBatch returns without waiting for the trainer. Flush makes the
// final assertions deterministic.
func TestQueriesServeDuringBackgroundRetrain(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 2})
	feed(t, s, "a", 31, 3)
	feed(t, s, "b", 32, 3)
	pBefore, err := s.Predictor("b")
	if err != nil || pBefore == nil {
		t.Fatalf("b untrained after feed: %v", err)
	}

	// Park the next trainer until released.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.beforeTrain = func() {
		entered <- struct{}{}
		<-release
	}
	defer close(release)

	// Two more periods on b trip RetrainEvery; the retrain must be handed
	// off, not run on this goroutine.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 32)
	spec.Period = period
	spec.SubTrajectories = 6
	tr := hpm.GenerateDataset(spec)
	start := time.Now()
	if err := s.ObserveBatch("b", tr.Slice(3*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("ObserveBatch took %v with training backgrounded", d)
	}
	<-entered // the retrain is now provably in flight (and parked)

	st, err := s.Stats("b")
	if err != nil || !st.Training {
		t.Fatalf("no in-flight train visible: %+v, %v", st, err)
	}

	// Object a is untouched by b's retrain.
	nowA, _ := s.Now("a")
	if _, err := s.Predict("a", nowA+10, 1); err != nil {
		t.Errorf("Predict(a) blocked or failed during b's retrain: %v", err)
	}
	// Object b itself keeps serving from the old predictor.
	nowB, _ := s.Now("b")
	if _, err := s.Predict("b", nowB+10, 1); err != nil {
		t.Errorf("Predict(b) failed during its own retrain: %v", err)
	}
	if p, _ := s.Predictor("b"); p != pBefore {
		t.Error("predictor swapped before the trainer finished")
	}
	// Ingest on b stays cheap while its trainer is parked.
	start = time.Now()
	if err := s.ObserveBatch("b", tr.Slice(5*period, 5*period+30)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("ObserveBatch blocked on in-flight train: %v", d)
	}

	release <- struct{}{} // let the trainer finish
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	pAfter, _ := s.Predictor("b")
	if pAfter == pBefore {
		t.Error("retrain did not produce a fresh predictor")
	}
	st, _ = s.Stats("b")
	if st.Training || st.Modeled != 5 {
		t.Errorf("post-flush state: %+v", st)
	}
}

// TestCloseStopsScheduling: after Close, crossing the training threshold
// must not spawn trainers, and Flush/Close stay safe to call.
func TestCloseStopsScheduling(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 2})
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 33)
	spec.Period = period
	spec.SubTrajectories = 3
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Slice(0, period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch("bike", tr.Slice(period, 3*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.Trained || st.Training {
		t.Errorf("train scheduled after Close: %+v", st)
	}
}

// TestSynchronousTrainingMode: the opt-out keeps the old inline behavior —
// the model is ready the moment ObserveBatch returns, no Flush needed.
func TestSynchronousTrainingMode(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, SynchronousTraining: true})
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 34)
	spec.Period = period
	spec.SubTrajectories = 3
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Points()); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats("bike")
	if err != nil || !st.Trained {
		t.Fatalf("synchronous mode not trained on return: %+v, %v", st, err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestCatchUpAfterRetrain: periods that complete while a retrain is in
// flight are absorbed by the post-swap catch-up, so Flush leaves the model
// fully current.
func TestCatchUpAfterRetrain(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 2})
	feed(t, s, "bike", 35, 3)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.beforeTrain = func() {
		entered <- struct{}{}
		<-release
	}

	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 35)
	spec.Period = period
	spec.SubTrajectories = 6
	tr := hpm.GenerateDataset(spec)
	// Trip the retrain (snapshot covers 5 periods)...
	if err := s.ObserveBatch("bike", tr.Slice(3*period, 5*period)); err != nil {
		t.Fatal(err)
	}
	<-entered
	// ...then complete one more period while the trainer is parked. Only
	// the catch-up can absorb it.
	if err := s.ObserveBatch("bike", tr.Slice(5*period, 6*period)); err != nil {
		t.Fatal(err)
	}
	s.beforeTrain = nil // a catch-up retrain must not park
	close(release)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stats("bike")
	if st.Modeled != 6 {
		t.Errorf("catch-up missed a period: modeled %d, want 6", st.Modeled)
	}
}
