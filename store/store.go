// Package store manages Hybrid Prediction Models for a fleet of moving
// objects: it ingests location streams, trains a per-object model once
// enough periods accumulate, keeps each model fresh with incremental
// updates (and optional periodic retrains), and answers predictive queries
// concurrently.
//
// The paper models a single object per model — patterns are personal
// habits, so a shared model would blur them. This package is the thin
// systems layer that makes the single-object core usable as a moving-
// objects database: one model per tracked object, safe for concurrent
// Observe and Predict calls.
package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpm"
	"hpm/internal/evalq"
	"hpm/internal/faultinject"
	"hpm/internal/spatial"
)

// Options configures a Store.
type Options struct {
	// Config is the model configuration shared by every object; its
	// Period is required. Config.SubTrajectories is ignored — the store
	// manages training windows itself.
	Config hpm.Config
	// MinTrainPeriods is how many full periods an object must accumulate
	// before its first model is trained. Values <= 0 default to
	// DefaultMinTrainPeriods.
	MinTrainPeriods int
	// ExtendEvery incrementally extends a trained model after this many
	// newly completed periods. Values <= 0 default to 1 (every period).
	ExtendEvery int
	// RetrainEvery fully retrains a model after this many newly completed
	// periods, refreshing regions and key tables. 0 disables periodic
	// retraining (incremental updates only). Ignored under
	// IncrementalRetrain, where Extend keeps the model fresh and
	// RebuildEvery is the batch backstop.
	RetrainEvery int
	// IncrementalRetrain makes the incremental path the retrain mechanism:
	// instead of periodically re-mining the whole history, every update
	// flows through Extend — delta mining re-evaluates only the patterns
	// the new periods touch, mints regions from unmatched points, and
	// retires expired history — so per-update cost tracks the new data,
	// not the track length. RetrainEvery is ignored; set RebuildEvery to
	// keep an occasional full rebuild as a divergence backstop.
	IncrementalRetrain bool
	// RebuildEvery, under IncrementalRetrain, fully retrains a model
	// after this many newly completed periods — a batch backstop that
	// restores index packing and refreshes region geometry. 0 disables
	// periodic rebuilds.
	RebuildEvery int
	// RetainPeriods bounds per-object history to a sliding window: the
	// model retires periods older than the window (Config.RetainPeriods)
	// and the store trims the object's track to match, so memory stays
	// flat on endless streams. Trims are period-aligned, never pass the
	// modeled boundary, and always keep at least MaxRecent points. 0
	// keeps everything.
	RetainPeriods int
	// MaxRecent is the recent-movement window handed to queries. Values
	// <= 0 default to DefaultMaxRecent.
	MaxRecent int
	// TrainWorkers bounds how many full (re)trains may run concurrently
	// across all objects. Values <= 0 default to runtime.NumCPU().
	TrainWorkers int
	// SynchronousTraining runs full (re)trains inline on the observing
	// goroutine, as the store did before background training existed.
	// Useful for benchmark baselines and for callers that want train
	// errors returned directly from ObserveBatch. Synchronous trains are
	// not retried; the error goes straight back to the caller.
	SynchronousTraining bool
	// TrainMaxRetries is how many times a failed or panicked background
	// train is retried (with exponential backoff) before the store gives
	// up and waits for the next completed period to reschedule. 0 defaults
	// to DefaultTrainMaxRetries; negative disables retries.
	TrainMaxRetries int
	// TrainRetryBackoff is the delay before the first train retry; it
	// doubles per attempt up to a 5s cap. Values <= 0 default to
	// DefaultTrainRetryBackoff.
	TrainRetryBackoff time.Duration
	// WALNoSync skips the per-commit fsync of a durable store's
	// write-ahead log, trading the zero-acknowledged-loss crash guarantee
	// for ingest throughput (a crash may lose records the OS had not yet
	// flushed; replay still recovers everything older). Open applies this
	// field from its opts argument even when the rest of the Options come
	// from a restored snapshot — sync policy belongs to the process.
	WALNoSync bool
	// Shards is how many independently locked sub-maps the object table
	// is split across, rounded up to a power of two. Observes and queries
	// on objects in different shards never contend on a map lock. Values
	// <= 0 default to DefaultShards; 1 yields the old single-lock map
	// (useful as a benchmark baseline).
	Shards int
	// Eval tunes the online prequential evaluator: ring bound, hit
	// distance D, horizon buckets, EWMA smoothing. Zero fields take the
	// evalq defaults. See internal/evalq.
	Eval evalq.Config
	// EvalDisabled turns the online evaluator off entirely: no prediction
	// is parked, no observation is scored, and the eval endpoints report
	// empty summaries.
	EvalDisabled bool
	// DriftThreshold, when positive, schedules an early retrain whenever
	// an object's error EWMA exceeds it (and at least DriftMinScores
	// predictions were scored since the last reset). 0 disables drift
	// detection — the default.
	DriftThreshold float64
	// DriftMinScores is how many predictions must be scored since the
	// EWMA was last reset before drift may trigger, so one bad prediction
	// after a retrain cannot immediately re-fire. Values <= 0 default to
	// DefaultDriftMinScores.
	DriftMinScores int
	// AdaptiveRouting answers a Predict with the motion fallback directly
	// when the evaluator has measured the dispatched pattern path (FQP or
	// BQP) behind the fallback at the query's horizon — the paper's
	// hybrid dispatch, closed-loop on live accuracy. Off by default.
	AdaptiveRouting bool
	// AdaptiveMinSamples is the per-cell sample floor before adaptive
	// routing trusts a comparison. Values <= 0 default to
	// DefaultAdaptiveMinSamples.
	AdaptiveMinSamples int
	// DegradeAfter is how many consecutive WAL fsync failures flip a
	// durable store into degraded read-only mode. A failed segment write
	// (torn tail) or ENOSPC degrades immediately regardless. Values <= 0
	// default to DefaultDegradeAfter. See store/degrade.go.
	DegradeAfter int
	// ProbeInterval is the recovery probe's initial delay after a degrade;
	// it doubles per failed probe up to a 15s cap. Values <= 0 default to
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// MaxTrainBacklog is the trainer-saturation valve: when this many
	// background trains are already pending, drift-triggered retrains are
	// skipped (without resetting the drift EWMA, so they re-fire once the
	// pool drains). Scheduled first-trains and periodic retrains are not
	// valved — they are the product, drift retrains are opportunistic.
	// Values <= 0 default to 4× TrainWorkers.
	MaxTrainBacklog int
	// FleetIndex, when non-nil, maintains a uniform-grid index over every
	// object's predicted positions at the configured horizon buckets
	// (defaulting to the evaluator's buckets), refreshed on every
	// acknowledged observe and predictor swap. Enables QueryRange,
	// QueryNearest and the scan oracles. CellSize must be positive. Like
	// WALNoSync, this is process configuration: Open applies it over
	// whatever a restored snapshot recorded.
	FleetIndex *spatial.Config
	// CompactEvery forces every Nth checkpoint of a durable store to be a
	// full rewrite — every shard's segment is re-encoded, not just the
	// dirty ones — bounding how stale a clean shard's segment may grow
	// (and re-packing after heavy Remove traffic). 0 (the default) never
	// forces: incremental checkpoints already keep exactly one live
	// segment per shard, so compaction is a policy choice, not a
	// correctness need. Process configuration, like WALNoSync.
	CompactEvery int
	// PersistWorkers bounds the worker pool used for snapshot segment
	// writes, parallel segment loads, sharded WAL replay and the index
	// rebuild at Open. Values <= 0 default to runtime.GOMAXPROCS(0); 1
	// forces the serial path (benchmark baseline). Process configuration,
	// like WALNoSync.
	PersistWorkers int
}

// Defaults for Options fields left at their zero value.
const (
	DefaultMinTrainPeriods    = 5
	DefaultMaxRecent          = 10
	DefaultTrainMaxRetries    = 3
	DefaultTrainRetryBackoff  = 100 * time.Millisecond
	DefaultShards             = 64
	DefaultDriftMinScores     = 10
	DefaultAdaptiveMinSamples = 20
	DefaultDegradeAfter       = 3
	DefaultProbeInterval      = 500 * time.Millisecond
)

// maxShards bounds Options.Shards against absurd configurations (each
// shard costs a map and a lock, held in memory for the store's life).
const maxShards = 1 << 16

// maxTrainBackoff caps the exponential train-retry backoff.
const maxTrainBackoff = 5 * time.Second

// trainErrRingCap bounds the store-wide ring of recent train failures;
// older entries are dropped, the total count keeps climbing.
const trainErrRingCap = 64

func (o Options) withDefaults() Options {
	if o.MinTrainPeriods <= 0 {
		o.MinTrainPeriods = DefaultMinTrainPeriods
	}
	if o.ExtendEvery <= 0 {
		o.ExtendEvery = 1
	}
	if o.MaxRecent <= 0 {
		o.MaxRecent = DefaultMaxRecent
	}
	if o.TrainWorkers <= 0 {
		o.TrainWorkers = runtime.NumCPU()
	}
	if o.TrainMaxRetries == 0 {
		o.TrainMaxRetries = DefaultTrainMaxRetries
	}
	if o.TrainRetryBackoff <= 0 {
		o.TrainRetryBackoff = DefaultTrainRetryBackoff
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.Shards > maxShards {
		o.Shards = maxShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	o.Eval = o.Eval.WithDefaults()
	if o.DriftMinScores <= 0 {
		o.DriftMinScores = DefaultDriftMinScores
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = DefaultDegradeAfter
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.MaxTrainBacklog <= 0 {
		o.MaxTrainBacklog = 4 * o.TrainWorkers
	}
	if o.AdaptiveMinSamples <= 0 {
		o.AdaptiveMinSamples = DefaultAdaptiveMinSamples
	}
	o.Config.SubTrajectories = 0
	// The store-level retention window and the model-level history window
	// are one policy: whichever is set propagates to the other.
	if o.RetainPeriods <= 0 {
		o.RetainPeriods = o.Config.RetainPeriods
	}
	o.Config.RetainPeriods = o.RetainPeriods
	return o
}

// ErrUntrained is returned by queries against an object that has not yet
// accumulated enough history for its first model.
var ErrUntrained = errors.New("store: object not yet trained")

// ErrUnknownObject is returned for ids never observed.
var ErrUnknownObject = errors.New("store: unknown object")

// ErrInvalidPoint is returned by Observe/ObserveBatch for NaN or infinite
// coordinates, which would poison region discovery and motion fitting.
var ErrInvalidPoint = errors.New("store: non-finite coordinate")

// Store tracks many objects. All methods are safe for concurrent use.
//
// Full (re)trains are expensive — region discovery, pattern mining and an
// index rebuild over the whole history — so by default they run on a
// bounded background pool instead of the observing goroutine: ObserveBatch
// snapshots the completed-period prefix, hands it to a trainer, and
// returns; the object's previous predictor (if any) keeps answering
// queries until the freshly trained one is swapped in under the object's
// lock. Incremental Extends are cheap and stay synchronous. Flush drains
// pending trains (tests, checkpoints); Close drains and stops scheduling.
type Store struct {
	opts Options

	// The object table is sharded: FNV-1a over the id picks one of
	// Options.Shards (power of two) sub-maps, each with its own RWMutex,
	// so lookups and inserts for distinct objects never contend on a
	// single lock. Fleet-wide walks (Objects, Save, Health, recovery)
	// visit shards one at a time in index order.
	shards    []shard
	shardMask uint32

	// Background-training machinery. pending counts scheduled trains not
	// yet swapped in; trainCond broadcasts when it reaches zero; trainSem
	// bounds concurrent trains to Options.TrainWorkers. Failed train
	// attempts land in a fixed-size ring — errStart/errCount index it,
	// errTotal counts every failure ever — drained by Flush/Close and
	// summarized (without draining) by Health.
	trainMu   sync.Mutex
	trainCond *sync.Cond
	pending   int
	closed    bool
	errRing   [trainErrRingCap]error
	errStart  int
	errCount  int
	errTotal  uint64
	trainSem  chan struct{}

	// Durability (set by Open, nil/zero otherwise): the write-ahead log
	// every ObserveBatch appends to before acknowledging, the directory
	// holding it and the snapshot, and what startup recovery found.
	wal          *wal
	dir          string
	restored     bool // a snapshot was loaded at Open
	replayed     int  // WAL records replayed at Open
	checkpointMu sync.Mutex

	// v3 snapshot state, guarded by checkpointMu: the manifest describing
	// the segment files on disk and how many checkpoints ran since the
	// last full rewrite (Options.CompactEvery).
	manifest     *snapManifest
	sinceCompact int

	// snapGate orders in-flight observe applies against checkpoints. Every
	// observe path holds the read side from before its WAL commit until
	// its track apply and dirty mark are done; a checkpoint takes the
	// write side once — releasing it immediately — after rotating the WAL
	// and before collecting the dirty set. That barrier guarantees any
	// record committed to a rotated-away (about to be reclaimed) segment
	// is applied and dirty-marked before the shards are encoded; without
	// it, a record could be durable only in a reclaimed segment while its
	// in-memory apply raced past the shard encode — acknowledged, then
	// lost on the next crash.
	snapGate sync.RWMutex

	// Checkpoint accounting for Health, FleetStats and /metrics:
	// completed checkpoints, cumulative checkpoint wall-clock, objects
	// encoded into rewritten segments, the current on-disk snapshot
	// footprint (manifest plus live segments), and the last checkpoint's
	// summary.
	checkpoints     atomic.Uint64
	checkpointNanos atomic.Uint64
	checkpointObjs  atomic.Uint64
	snapshotBytes   atomic.Uint64
	lastCheckpoint  atomic.Pointer[CheckpointInfo]

	// Degradation state machine (store/degrade.go): state is one of
	// stateHealthy/stateDegraded/stateRecovering, syncFails counts
	// consecutive WAL fsync failures toward Options.DegradeAfter, and the
	// counters feed Health and /metrics. stop (created by New, closed by
	// the first Close) ends the recovery probe goroutine.
	state      atomic.Int32
	syncFails  atomic.Int64
	walErrors  atomic.Uint64
	degrades   atomic.Uint64
	recoveries atomic.Uint64
	degradeMu  sync.Mutex // guards lastWALErr and stopped
	lastWALErr error
	stopped    bool // Close ran; no new probe goroutines may start
	stop       chan struct{}
	probeWG    sync.WaitGroup

	// driftSuppressed counts drift retrains the trainer-saturation valve
	// skipped (Options.MaxTrainBacklog), for FleetStats and /metrics.
	driftSuppressed atomic.Uint64

	// driftRetrains counts retrains triggered fleet-wide by the drift
	// EWMA (Options.DriftThreshold), for FleetStats and /metrics.
	driftRetrains atomic.Uint64

	// Model-update telemetry for FleetStats and /metrics: how many full
	// trains and incremental extends ran (every train attempt counts),
	// and the cumulative wall-clock nanoseconds each path consumed.
	trains      atomic.Uint64
	trainNanos  atomic.Uint64
	extends     atomic.Uint64
	extendNanos atomic.Uint64

	// faults, when set, is consulted at durability and training fault
	// points so tests can inject deterministic failures.
	faults atomic.Pointer[faultinject.Hook]

	// beforeTrain, when set, runs on the trainer goroutine right before
	// the model is trained. Test hook: lets tests hold a train in flight
	// and observe the store mid-retrain. Set it before any trains start.
	beforeTrain func()

	// index is the fleet-wide grid over predicted positions (nil unless
	// Options.FleetIndex is set). Entries are refreshed under each
	// object's write lock; queries take only the index's internal stripe
	// read locks, never an object or shard lock.
	index *spatial.Index
}

// shard is one slice of the object table: a sub-map under its own lock.
// dirty marks that some object in the shard changed — observe, model
// update, remove, WAL replay — since the last checkpoint encoded it; the
// next incremental checkpoint rewrites only dirty shards' segments.
type shard struct {
	mu      sync.RWMutex
	objects map[string]*object
	dirty   atomic.Bool
}

// object is one tracked object's state. mu is a read-write lock: queries
// (Predict, PredictRange, PredictBatch, Now, Stats) share a read lock —
// the predictor's query path is lock-free internally, so any number run in
// parallel — while Observe, model swaps and Extends take the write lock.
//
// Writers additionally serialize on ingestMu, held across the whole
// observe — offset capture, WAL group commit, track apply — so per-object
// WAL records stay ordered like the track. mu itself is only taken for
// the in-memory apply: a slow fsync stalls at most that object's other
// writers, never its readers. Lock order is always ingestMu before mu;
// mutating track requires both, reading it requires either.
type object struct {
	ingestMu  sync.Mutex
	mu        sync.RWMutex
	track     []hpm.Point
	predictor *hpm.Predictor
	// base is the absolute timestamp of track[0]. It stays 0 until the
	// retention policy (Options.RetainPeriods) trims the track's head;
	// from then on every externally visible timestamp — WAL offsets,
	// query windows, eval scoring, Now — is base + track index. Trims
	// keep base period-aligned so training windows stay in phase.
	base int
	// modeled is how many leading periods of track the predictor has seen
	// (via Train or Extend).
	modeled int
	// sinceRetrain counts periods absorbed since the last full train.
	sinceRetrain int
	// training marks an in-flight background (re)train; further model
	// updates are deferred until the trained predictor is swapped in.
	training bool
	// queries accumulates the query counters of predictors retired by full
	// retrains, so per-object query-path stats survive model swaps. The
	// live predictor's counters are added on read.
	queries hpm.QueryStats
	// lastTrainErr is the most recent train failure, cleared when a train
	// succeeds; trainFails counts failed attempts over the object's life.
	lastTrainErr error
	trainFails   int
	// eval scores this object's served predictions against later
	// observations (nil when Options.EvalDisabled). It has its own lock:
	// queries record into it under obj.mu's read lock.
	eval *evalq.Tracker
	// driftRetrains counts retrains triggered by the drift EWMA.
	driftRetrains int
	// Cumulative incremental-update counters across the object's Extends,
	// surfaced by Stats.
	unmatchedPts    int
	retiredPatterns int
	mintedRegions   int
	// removed marks an object deleted by Remove; guarded by ingestMu. An
	// observer that raced Remove and still holds this pointer must drop
	// it and re-create through the shard map, or its WAL records would
	// land after the tombstone and corrupt replay.
	removed bool
	// id is the object's key in the shard map, carried here so paths
	// without the id at hand (background train swaps, index refreshes)
	// can address the fleet index. Immutable after creation.
	id string
	// idxEntries and idxTqs are reusable scratch for the fleet-index
	// refresh, touched only under mu's write lock.
	idxEntries []spatial.Entry
	idxTqs     []int
	// idxLast/idxVel are the inputs of the last index refresh and
	// idxClean marks them valid: while untrained, entries are a pure
	// function of (last point, velocity), so a refresh with identical
	// inputs is skipped before any entry is built — the common case for
	// parked objects and duplicate position pings. Guarded by mu.
	idxLast  hpm.Point
	idxVel   hpm.Point
	idxClean bool
}

// New returns an empty store. Config.Period must be positive.
func New(opts Options) (*Store, error) {
	if opts.Config.Period <= 0 {
		return nil, errors.New("store: Options.Config.Period must be positive")
	}
	s := &Store{opts: opts.withDefaults()}
	s.shards = make([]shard, s.opts.Shards)
	s.shardMask = uint32(s.opts.Shards - 1)
	for i := range s.shards {
		s.shards[i].objects = map[string]*object{}
	}
	s.trainCond = sync.NewCond(&s.trainMu)
	s.trainSem = make(chan struct{}, s.opts.TrainWorkers)
	s.stop = make(chan struct{})
	if err := s.initFleetIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Period returns the configured pattern period.
func (s *Store) Period() int { return s.opts.Config.Period }

// shard picks the object's shard by FNV-1a over its id. Inlined rather
// than hash/fnv to keep the hot ingest path free of a hasher allocation.
func (s *Store) shard(id string) *shard {
	return &s.shards[s.shardIndex(id)]
}

// shardIndex is shard as an index, for paths that partition work by shard
// (segment writes, sharded WAL replay).
func (s *Store) shardIndex(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h & s.shardMask
}

// markDirty flags id's shard as changed since the last checkpoint. The
// load-before-store keeps the hot path from bouncing the flag's cache
// line when the shard is already dirty (the common case between
// checkpoints).
func (s *Store) markDirty(id string) {
	sh := s.shard(id)
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
}

// persistWorkers is the worker count for parallel persistence work
// (segment writes and loads, sharded replay, index rebuild).
func (s *Store) persistWorkers() int {
	if s.opts.PersistWorkers > 0 {
		return s.opts.PersistWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// newObject allocates an object's state under the store's options.
func (s *Store) newObject(id string) *object {
	obj := &object{id: id}
	if !s.opts.EvalDisabled {
		obj.eval = evalq.New(s.opts.Eval)
	}
	return obj
}

// get returns the object's state, creating it when create is set.
func (s *Store) get(id string, create bool) (*object, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	obj := sh.objects[id]
	sh.mu.RUnlock()
	if obj != nil {
		return obj, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if obj = sh.objects[id]; obj == nil {
		obj = s.newObject(id)
		sh.objects[id] = obj
	}
	return obj, nil
}

// Observe appends the object's location at its next timestamp (locations
// arrive in order, one per tick). Crossing a period boundary may trigger a
// model update: incremental extends run inline, while the first train and
// periodic retrains are handed to the background pool (unless
// SynchronousTraining is set) — use Flush to wait for them.
func (s *Store) Observe(id string, loc hpm.Point) error {
	return s.ObserveBatch(id, []hpm.Point{loc})
}

// ObserveBatch appends consecutive locations in one call. Non-finite
// coordinates are rejected with ErrInvalidPoint before anything is
// recorded. On a durable store the batch is written to the WAL (and, in
// sync mode, fsynced) before this method returns nil: a nil return means
// the observations survive a crash. The WAL commit runs outside the
// object's read-write lock — concurrent writers ride the same group
// commit, and queries against the object proceed during the fsync.
func (s *Store) ObserveBatch(id string, locs []hpm.Point) error {
	return s.ObserveBatchContext(context.Background(), id, locs)
}

// observeLocked commits and applies one object's batch: WAL first (the
// acknowledgment barrier), then the in-memory track, prequential scoring
// and the model-update policy. Called with obj.ingestMu held.
//
// ctx may cancel the observe only BEFORE the WAL commit: once a record is
// staged into a group commit it will be written, and a record that is
// durable but unapplied would collide with a later write at the same
// offset on replay. So cancellation past the barrier is ignored — the
// caller gets nil and the observation really happened.
func (s *Store) observeLocked(ctx context.Context, obj *object, id string, locs []hpm.Point) error {
	if err := ctx.Err(); err != nil {
		return err // not acknowledged: nothing staged yet
	}
	// The snapshot gate spans commit through apply + dirty mark, so a
	// checkpoint that rotated the WAL cannot collect the dirty set while
	// this record sits durable-but-unapplied in a segment it is about to
	// reclaim. Released before the model update: extends and synchronous
	// trains must not extend the checkpoint's barrier wait.
	s.snapGate.RLock()
	if s.wal != nil {
		// Track mutation requires ingestMu, so the offset read is stable
		// without obj.mu and stays the track length until we apply below.
		if err := s.walAppend(id, obj.base+len(obj.track), locs); err != nil {
			s.snapGate.RUnlock()
			return err // not acknowledged: the track is untouched
		}
	}
	obj.mu.Lock()
	defer obj.mu.Unlock()
	base := obj.base + len(obj.track)
	obj.track = append(obj.track, locs...)
	s.markDirty(id)
	s.snapGate.RUnlock()
	// Fold the acknowledged points into the Markov chain before the model-
	// update policy runs: a retrain or region-minting extend rebuilds the
	// chain from the track anyway, so the incremental fold stays the cheap
	// common case.
	if obj.predictor != nil {
		for i, p := range locs {
			obj.predictor.MarkovObserve(base+i, p)
		}
	}
	if obj.eval != nil {
		s.scoreLocked(obj, base, locs)
	}
	err := s.maybeUpdate(obj)
	s.indexUpdateLocked(obj)
	return err
}

// Observation is one object's consecutive locations within a fleet batch.
type Observation struct {
	ID     string
	Points []hpm.Point
}

// ObserveAll ingests observations for many objects in one call. On a
// durable store the whole batch is staged into a single WAL group commit —
// one write, one fsync, no matter how many objects it spans — and a nil
// return means every observation is on disk (in sync mode). Repeated ids
// are merged in order. Model-update errors (synchronous training) are
// joined and returned after every point has been applied; the points
// themselves are durable and acknowledged even then.
func (s *Store) ObserveAll(batch []Observation) error {
	return s.ObserveAllContext(context.Background(), batch)
}

// ObserveAllContext is ObserveAll with request-scoped cancellation; like
// ObserveBatchContext, ctx is honored only up to the WAL commit.
func (s *Store) ObserveAllContext(ctx context.Context, batch []Observation) error {
	if len(batch) == 0 {
		return nil
	}
	for _, ob := range batch {
		for _, p := range ob.Points {
			if !isFinite(p) {
				return fmt.Errorf("%w: %q (%v, %v)", ErrInvalidPoint, ob.ID, p.X, p.Y)
			}
		}
	}
	if err := s.writable(); err != nil {
		return err // degraded: fail fast before touching any lock
	}
	// Merge repeated ids, keeping each object's points in argument order.
	index := make(map[string]int, len(batch))
	groups := make([]fleetGroup, 0, len(batch))
	for _, ob := range batch {
		if len(ob.Points) == 0 {
			continue
		}
		if i, ok := index[ob.ID]; ok {
			g := &groups[i]
			if !g.owned {
				// Copy before extending: the first slice still aliases the
				// caller's backing array.
				g.pts = append(make([]hpm.Point, 0, len(g.pts)+len(ob.Points)), g.pts...)
				g.owned = true
			}
			g.pts = append(g.pts, ob.Points...)
			continue
		}
		index[ob.ID] = len(groups)
		groups = append(groups, fleetGroup{id: ob.ID, pts: ob.Points})
	}
	if len(groups) == 0 {
		return nil
	}
	// Lock the objects' ingest mutexes in sorted-id order: concurrent
	// fleet batches acquire in the same order, so they cannot deadlock
	// (single-object observers hold at most one). An object tombstoned by
	// a concurrent Remove between lookup and lock must be re-created
	// through the shard map, so the whole acquire phase retries.
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
acquire:
	for {
		for i := range groups {
			obj, err := s.get(groups[i].id, true)
			if err != nil {
				return err
			}
			groups[i].obj = obj
		}
		for i := range groups {
			groups[i].obj.ingestMu.Lock()
		}
		for i := range groups {
			if groups[i].obj.removed {
				for j := range groups {
					groups[j].obj.ingestMu.Unlock()
				}
				continue acquire
			}
		}
		break
	}
	defer func() {
		for i := range groups {
			groups[i].obj.ingestMu.Unlock()
		}
	}()
	if err := ctx.Err(); err != nil {
		return err // canceled while acquiring locks: nothing staged yet
	}
	// Commit and track apply run under the snapshot gate (see
	// observeLocked); scoring and model updates run after it so a slow
	// extend cannot extend a checkpoint's barrier wait.
	s.snapGate.RLock()
	if s.wal != nil {
		recs := make([]walRecord, len(groups))
		for i, g := range groups {
			recs[i] = walRecord{id: g.id, offset: g.obj.base + len(g.obj.track), pts: g.pts}
		}
		if err := s.walAppendAll(recs); err != nil {
			s.snapGate.RUnlock()
			return err // nothing acknowledged: no track was touched
		}
	}
	bases := make([]int, len(groups))
	for i := range groups {
		g := &groups[i]
		g.obj.mu.Lock()
		bases[i] = g.obj.base + len(g.obj.track)
		g.obj.track = append(g.obj.track, g.pts...)
		s.markDirty(g.id)
		g.obj.mu.Unlock()
	}
	s.snapGate.RUnlock()
	var errs []error
	for i := range groups {
		g := &groups[i]
		g.obj.mu.Lock()
		if g.obj.predictor != nil {
			for j, p := range g.pts {
				g.obj.predictor.MarkovObserve(bases[i]+j, p)
			}
		}
		if g.obj.eval != nil {
			s.scoreLocked(g.obj, bases[i], g.pts)
		}
		if err := s.maybeUpdate(g.obj); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", g.id, err))
		}
		s.indexUpdateLocked(g.obj)
		g.obj.mu.Unlock()
	}
	return errors.Join(errs...)
}

// fleetGroup is one object's slice of an ObserveAll batch.
type fleetGroup struct {
	id    string
	pts   []hpm.Point
	obj   *object
	owned bool // pts is our own copy, safe to append to
}

func isFinite(p hpm.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// SetFaultHook installs (or, with nil, clears) a fault-injection hook
// consulted at the store's training and durability fault points — see
// internal/faultinject. Intended for tests; safe to swap at runtime.
func (s *Store) SetFaultHook(h faultinject.Hook) {
	if h == nil {
		s.faults.Store(nil)
		return
	}
	s.faults.Store(&h)
}

// fault consults the injection hook; a nil hook always allows.
func (s *Store) fault(op faultinject.Op) error {
	if h := s.faults.Load(); h != nil {
		return (*h)(op)
	}
	return nil
}

// maybeUpdate trains, extends or retrains the object's model according to
// the configured policy. Called with obj.mu held.
func (s *Store) maybeUpdate(obj *object) error {
	if obj.training {
		// A background (re)train is in flight; it re-runs this check
		// after the swap to absorb periods completed meanwhile.
		return nil
	}
	period := s.opts.Config.Period
	completed := (obj.base + len(obj.track)) / period

	if obj.predictor == nil {
		if completed < s.opts.MinTrainPeriods {
			return nil
		}
		return s.startTrain(obj, completed)
	}
	newPeriods := completed - obj.modeled
	if newPeriods <= 0 {
		return nil
	}
	if s.opts.IncrementalRetrain {
		// The incremental path keeps the model fresh; only the periodic
		// batch rebuild — the divergence and index-packing backstop — goes
		// through a full train.
		if s.opts.RebuildEvery > 0 && obj.sinceRetrain+newPeriods >= s.opts.RebuildEvery {
			return s.startTrain(obj, completed)
		}
	} else if s.opts.RetrainEvery > 0 && obj.sinceRetrain+newPeriods >= s.opts.RetrainEvery {
		return s.startTrain(obj, completed)
	}
	if newPeriods < s.opts.ExtendEvery {
		return nil
	}
	return s.extendLocked(obj, completed, newPeriods)
}

// extendLocked absorbs the newly completed periods through the model's
// incremental path, banking duration and delta counters, then applies the
// retention trim. Called with obj.mu held.
func (s *Store) extendLocked(obj *object, completed, newPeriods int) error {
	period := s.opts.Config.Period
	start := time.Now()
	res, err := obj.predictor.Extend(obj.track[obj.modeled*period-obj.base : completed*period-obj.base])
	s.extendNanos.Add(uint64(time.Since(start)))
	s.extends.Add(1)
	if err != nil {
		return fmt.Errorf("store: extend: %w", err)
	}
	obj.unmatchedPts += res.UnmatchedPoints
	obj.retiredPatterns += res.RetiredPatterns
	obj.mintedRegions += res.NewRegions
	obj.sinceRetrain += newPeriods
	obj.modeled = completed
	s.trimLocked(obj)
	// The model (and possibly the trimmed track) changed without an
	// observe in this call path (recovery catch-up, post-train catch-up):
	// the shard's segment must be rewritten at the next checkpoint.
	s.markDirty(obj.id)
	// A minted region re-partitions space, so visits folded into the chain
	// under the old region set are stale: re-fold the retained track. When
	// no region was minted the incremental folds are already exact and the
	// extend stays O(new data).
	if res.NewRegions > 0 {
		obj.predictor.Model().RebuildMarkov(obj.base, obj.track)
	}
	return nil
}

// trimLocked drops track head the retention policy no longer needs. The
// cut stays period-aligned (training windows keep phase), never passes the
// modeled boundary (unmodeled points must survive to be trained), and
// keeps at least MaxRecent points for query windows. The tail is copied to
// a fresh slice so the old backing array is actually freed. Called with
// obj.mu held.
func (s *Store) trimLocked(obj *object) {
	w := s.opts.RetainPeriods
	if w <= 0 {
		return
	}
	period := s.opts.Config.Period
	cut := ((obj.base+len(obj.track))/period - w) * period
	if m := obj.modeled * period; cut > m {
		cut = m
	}
	if r := obj.base + len(obj.track) - s.opts.MaxRecent; cut > r {
		cut = r
	}
	cut -= cut % period
	if cut <= obj.base {
		return
	}
	obj.track = append([]hpm.Point(nil), obj.track[cut-obj.base:]...)
	obj.base = cut
}

// startTrain dispatches a full (re)train of obj's first completed periods:
// inline under SynchronousTraining, otherwise to the background pool.
// Called with obj.mu held.
func (s *Store) startTrain(obj *object, completed int) error {
	if s.opts.SynchronousTraining {
		return s.train(obj, completed)
	}
	s.scheduleTrain(obj, completed)
	return nil
}

// train fully (re)trains obj over its first completed periods, inline and
// without retries (SynchronousTraining callers get the error directly).
// Called with obj.mu held.
func (s *Store) train(obj *object, completed int) error {
	p, err := s.trainGuarded(obj.track[:completed*s.opts.Config.Period-obj.base])
	if err != nil {
		err = fmt.Errorf("store: train: %w", err)
		obj.trainFails++
		obj.lastTrainErr = err
		return err
	}
	obj.lastTrainErr = nil
	obj.swapPredictor(p, completed)
	s.trimLocked(obj)
	s.markDirty(obj.id)
	// The fresh model folded its chain from the training prefix in its own
	// time basis; re-fold from the retained track so chain timestamps match
	// the absolute clock every later MarkovObserve uses.
	obj.predictor.Model().RebuildMarkov(obj.base, obj.track)
	return nil
}

// trainGuarded trains a predictor off pts under the worker semaphore,
// converting panics into errors: one poisoned track must never take down
// the whole fleet's process.
func (s *Store) trainGuarded(pts []hpm.Point) (p *hpm.Predictor, err error) {
	s.trainSem <- struct{}{}
	defer func() { <-s.trainSem }()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if hook := s.beforeTrain; hook != nil {
		hook()
	}
	if err := s.fault(faultinject.OpTrain); err != nil {
		return nil, err
	}
	start := time.Now()
	p, err = hpm.TrainPoints(pts, s.opts.Config)
	s.trainNanos.Add(uint64(time.Since(start)))
	s.trains.Add(1)
	return p, err
}

// swapPredictor installs a freshly trained predictor, banking the retired
// predictor's query counters so per-object stats survive the swap. Called
// with obj.mu held for writing.
func (o *object) swapPredictor(p *hpm.Predictor, completed int) {
	if o.predictor != nil {
		o.queries = o.queries.Add(o.predictor.QueryStats())
	}
	o.predictor = p
	o.modeled = completed
	o.sinceRetrain = 0
}

// scheduleTrain snapshots the completed-period prefix and hands it to a
// background trainer. No-op when a train for obj is already in flight
// (later periods are absorbed by the post-swap catch-up) or the store is
// closed. Called with obj.mu held.
func (s *Store) scheduleTrain(obj *object, completed int) {
	s.trainMu.Lock()
	if s.closed {
		s.trainMu.Unlock()
		return
	}
	s.pending++
	s.trainMu.Unlock()
	obj.training = true
	// Snapshot: the track keeps growing under obj.mu while the trainer
	// runs, so the trainer must own its input.
	pts := append([]hpm.Point(nil), obj.track[:completed*s.opts.Config.Period-obj.base]...)
	go s.runTrain(obj, pts, completed)
}

// runTrain is the background trainer: it trains a fresh predictor off the
// snapshot without holding any lock, swaps it in under obj.mu, and re-runs
// the update policy to catch up on periods completed during training.
// Failures — including panics, which trainGuarded converts — are retried
// with exponential backoff up to Options.TrainMaxRetries; each attempt's
// error lands in the bounded ring and on the object's Stats. A train that
// exhausts its retries leaves the object serving its previous predictor,
// and the next completed period schedules a fresh train.
func (s *Store) runTrain(obj *object, pts []hpm.Point, completed int) {
	maxRetries := s.opts.TrainMaxRetries
	if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := s.opts.TrainRetryBackoff
	var p *hpm.Predictor
	var err error
	for attempt := 0; ; attempt++ {
		p, err = s.trainGuarded(pts)
		if err == nil {
			break
		}
		err = fmt.Errorf("store: train (attempt %d): %w", attempt+1, err)
		s.recordTrainErr(err)
		obj.mu.Lock()
		obj.trainFails++
		obj.lastTrainErr = err
		obj.mu.Unlock()
		if attempt >= maxRetries {
			break
		}
		time.Sleep(backoff)
		if backoff < maxTrainBackoff {
			backoff *= 2
		}
	}

	obj.mu.Lock()
	obj.training = false
	if err == nil {
		obj.lastTrainErr = nil
		obj.swapPredictor(p, completed)
		s.trimLocked(obj)
		s.markDirty(obj.id)
		// Re-fold the chain in the store's absolute time basis (see train).
		obj.predictor.Model().RebuildMarkov(obj.base, obj.track)
		// Catch up: extend (or re-schedule a retrain) over periods that
		// completed while this train was running.
		if uerr := s.maybeUpdate(obj); uerr != nil {
			s.recordTrainErr(uerr)
		}
		// The swap changed what the model predicts: re-bin the object's
		// fleet-index entries against the fresh predictor.
		s.indexUpdateLocked(obj)
	}
	obj.mu.Unlock()

	s.trainMu.Lock()
	s.pending--
	if s.pending == 0 {
		s.trainCond.Broadcast()
	}
	s.trainMu.Unlock()
}

// recordTrainErr pushes one failure into the bounded ring, evicting the
// oldest entry when full. The all-time counter never resets.
func (s *Store) recordTrainErr(err error) {
	s.trainMu.Lock()
	defer s.trainMu.Unlock()
	s.errTotal++
	if s.errCount < trainErrRingCap {
		s.errRing[(s.errStart+s.errCount)%trainErrRingCap] = err
		s.errCount++
		return
	}
	s.errRing[s.errStart] = err
	s.errStart = (s.errStart + 1) % trainErrRingCap
}

// trainErrsLocked returns the ring's contents oldest-first. Caller holds
// trainMu.
func (s *Store) trainErrsLocked() []error {
	errs := make([]error, 0, s.errCount)
	for i := 0; i < s.errCount; i++ {
		errs = append(errs, s.errRing[(s.errStart+i)%trainErrRingCap])
	}
	return errs
}

// Flush blocks until no background trains are pending — including any
// catch-up trains they schedule and retry backoffs in progress — and
// returns the failures accumulated since the last Flush (nil when training
// succeeded or nothing was pending; a retried-then-successful train still
// reports its failed attempts). After Flush, every Observe made before the
// call is reflected in the objects' models.
func (s *Store) Flush() error {
	s.trainMu.Lock()
	defer s.trainMu.Unlock()
	for s.pending > 0 {
		s.trainCond.Wait()
	}
	err := errors.Join(s.trainErrsLocked()...)
	s.errStart, s.errCount = 0, 0
	for i := range s.errRing {
		s.errRing[i] = nil
	}
	return err
}

// Close drains pending background trains and stops scheduling new ones.
// A durable store additionally writes a final checkpoint and releases its
// WAL. Observations and queries still work after Close on an in-memory
// store, but models are no longer retrained. Returns any accumulated
// training errors joined with checkpoint errors.
func (s *Store) Close() error {
	s.trainMu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.trainMu.Unlock()
	if !wasClosed {
		s.degradeMu.Lock()
		s.stopped = true // no new probe goroutine may start from here on
		s.degradeMu.Unlock()
		close(s.stop) // ends the recovery probe, if one is running
	}
	// Wait the probe out before touching the WAL below: a recovery in
	// flight reopens segments this Close is about to close.
	s.probeWG.Wait()
	err := s.Flush()
	if s.wal != nil {
		if s.state.Load() == stateHealthy {
			err = errors.Join(err, s.checkpoint(false))
		} else {
			// Degraded: the disk is refusing writes, so don't wedge
			// shutdown on a snapshot that cannot land. Every acknowledged
			// record is already in a WAL segment; the next Open replays
			// them (the torn tail of the broken segment is repaired by the
			// tolerant final-segment replay).
			err = errors.Join(err, fmt.Errorf("store: close without checkpoint: %w", ErrDegraded))
		}
		err = errors.Join(err, s.wal.close())
	}
	return err
}

// Predict estimates the object's location at absolute time tq (timestamps
// count observations from zero) from its most recent movements. Queries
// run under the object's read lock: any number execute in parallel with
// each other, serializing only against writes (Observe, model swaps).
func (s *Store) Predict(id string, tq, k int) ([]hpm.Prediction, error) {
	return s.PredictContext(context.Background(), id, tq, k)
}

// PredictContext is Predict with request-scoped cancellation: a client
// that disconnected or blew its deadline before the query starts — or
// while waiting for the object's lock behind a model swap — gets the
// context's error instead of an answer nobody reads.
func (s *Store) PredictContext(ctx context.Context, id string, tq, k int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	now := obj.base + len(obj.track) - 1
	var preds []hpm.Prediction
	route := s.routePath(obj, now, tq)
	switch route {
	case evalq.PathFallback:
		preds, err = obj.predictor.PredictFallback(recent, tq)
	case evalq.PathMarkov:
		preds, err = obj.predictor.PredictMarkov(recent, tq)
	default:
		preds, err = obj.predictor.Predict(recent, tq, k)
	}
	// Scored under the route that served it (fall-throughs included), so
	// the routing measurements keep charging the chosen route for what it
	// actually delivered.
	s.recordPrediction(obj, now, tq, route, preds, err)
	return preds, err
}

// PredictRange estimates the object's locations over [from, to].
func (s *Store) PredictRange(id string, from, to int) ([]hpm.Prediction, error) {
	return s.PredictRangeContext(context.Background(), id, from, to)
}

// PredictRangeContext is PredictRange with request-scoped cancellation.
func (s *Store) PredictRangeContext(ctx context.Context, id string, from, to int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	return obj.predictor.PredictRange(recent, from, to)
}

// PredictBatch estimates the object's location at each absolute time in
// tqs, returning up to k ranked predictions per time in input order. The
// whole batch runs against one consistent snapshot of the object's recent
// movements and shares a single premise encoding and at most one motion-
// function fit, so it is substantially cheaper than len(tqs) Predict
// calls. Times nothing can answer yield a nil entry.
func (s *Store) PredictBatch(id string, tqs []int, k int) ([][]hpm.Prediction, error) {
	return s.PredictBatchContext(context.Background(), id, tqs, k)
}

// PredictBatchContext is PredictBatch with request-scoped cancellation.
func (s *Store) PredictBatchContext(ctx context.Context, id string, tqs []int, k int) ([][]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	out, err := obj.predictor.PredictBatch(recent, tqs, k)
	if err == nil && obj.eval != nil {
		now := obj.base + len(obj.track) - 1
		for i, preds := range out {
			s.recordPrediction(obj, now, tqs[i], s.patternPath(obj, now, tqs[i]), preds, nil)
		}
	}
	return out, err
}

// recentLocked builds the query window from the tail of the track.
func (s *Store) recentLocked(obj *object) ([]hpm.TimedPoint, error) {
	if obj.predictor == nil {
		return nil, ErrUntrained
	}
	n := len(obj.track)
	w := s.opts.MaxRecent
	if w > n {
		w = n
	}
	recent := make([]hpm.TimedPoint, 0, w)
	for t := n - w; t < n; t++ {
		recent = append(recent, hpm.TimedPoint{T: obj.base + t, Loc: obj.track[t]})
	}
	return recent, nil
}

// Now returns the object's current time: the timestamp of its latest
// observation, or -1 when nothing was observed.
func (s *Store) Now(id string) (int, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return 0, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	return obj.base + len(obj.track) - 1, nil
}

// ObjectStats summarizes one tracked object.
type ObjectStats struct {
	ID         string
	Points     int  // observations ingested
	Periods    int  // completed periods
	Trained    bool // has a model
	Training   bool // a background (re)train is in flight
	Modeled    int  // periods the model has absorbed
	Regions    int
	Patterns   int
	IndexBytes int
	// TrainFailures counts failed train attempts over the object's life;
	// LastTrainError is the most recent one, cleared by a successful
	// train. A non-empty value with Trained=true means the object is
	// serving its previous model while retrains fail.
	TrainFailures  int
	LastTrainError string `json:",omitempty"`
	// DriftRetrains counts retrains the drift EWMA triggered early.
	DriftRetrains int
	// RetainedPoints is how many observations the track currently holds;
	// with a retention window it trails Points, whose count is absolute.
	RetainedPoints int
	// UnmatchedPoints, RetiredPatterns and MintedRegions accumulate the
	// incremental-update counters across the object's Extends: points no
	// frequent region matched, patterns demoted out of the index, and
	// regions minted from outlier buffers.
	UnmatchedPoints int
	RetiredPatterns int
	MintedRegions   int
	// Queries summarizes the object's query traffic by answering path.
	Queries hpm.QueryStats
}

// Stats returns the object's summary.
func (s *Store) Stats(id string) (ObjectStats, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return ObjectStats{}, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	st := ObjectStats{
		ID:              id,
		Points:          obj.base + len(obj.track),
		Periods:         (obj.base + len(obj.track)) / s.opts.Config.Period,
		Training:        obj.training,
		Modeled:         obj.modeled,
		TrainFailures:   obj.trainFails,
		DriftRetrains:   obj.driftRetrains,
		RetainedPoints:  len(obj.track),
		UnmatchedPoints: obj.unmatchedPts,
		RetiredPatterns: obj.retiredPatterns,
		MintedRegions:   obj.mintedRegions,
		Queries:         obj.queries,
	}
	if obj.lastTrainErr != nil {
		st.LastTrainError = obj.lastTrainErr.Error()
	}
	if obj.predictor != nil {
		st.Trained = true
		st.Regions = obj.predictor.NumRegions()
		st.Patterns = obj.predictor.NumPatterns()
		st.IndexBytes = obj.predictor.IndexBytes()
		st.Queries = st.Queries.Add(obj.predictor.QueryStats())
	}
	return st, nil
}

// Health summarizes the store's fitness to serve, for readiness probes.
type Health struct {
	Objects       int  `json:"objects"`
	PendingTrains int  `json:"pendingTrains"`
	Closed        bool `json:"closed"`
	// Durable reports whether a WAL is attached; SnapshotRestored and
	// WALReplayed describe what startup recovery found.
	Durable          bool `json:"durable"`
	SnapshotRestored bool `json:"snapshotRestored"`
	WALReplayed      int  `json:"walReplayed"`
	// State is the degradation state machine's position ("healthy",
	// "degraded", "recovering"); Degraded is true whenever writes are
	// being refused. WALErrors counts failed WAL group commits over the
	// process life, LastWALError is the most recent one, and Degrades/
	// Recoveries count completed transitions. See store/degrade.go.
	State        string `json:"state"`
	Degraded     bool   `json:"degraded"`
	WALErrors    uint64 `json:"walErrors"`
	LastWALError string `json:"lastWALError,omitempty"`
	Degrades     uint64 `json:"degrades"`
	Recoveries   uint64 `json:"recoveries"`
	// TrainFailures counts every failed train attempt since the process
	// started; RecentTrainErrors is the bounded ring's current contents
	// (oldest first, cleared by Flush).
	TrainFailures     uint64   `json:"trainFailures"`
	RecentTrainErrors []string `json:"recentTrainErrors,omitempty"`
	// Checkpoints counts completed checkpoints since Open, SnapshotBytes
	// is the current on-disk snapshot footprint (manifest plus live
	// segments), and LastCheckpoint summarizes the most recent one.
	Checkpoints    uint64          `json:"checkpoints"`
	SnapshotBytes  uint64          `json:"snapshotBytes"`
	LastCheckpoint *CheckpointInfo `json:"lastCheckpoint,omitempty"`
}

// CheckpointInfo summarizes one completed checkpoint for Health.
type CheckpointInfo struct {
	When    time.Time `json:"when"`
	Seconds float64   `json:"seconds"`
	// Objects and Shards count what this checkpoint actually encoded: an
	// incremental checkpoint rewrites only dirty shards' segments, so
	// both stay near zero on a quiet fleet.
	Objects int `json:"objects"`
	Shards  int `json:"shards"`
	// Full marks a whole-fleet rewrite (first checkpoint after Open, or
	// one forced by Options.CompactEvery); Epoch is the snapshot epoch
	// the checkpoint committed.
	Full  bool   `json:"full"`
	Epoch uint64 `json:"epoch"`
}

// Health reports the store's current health without draining the train
// error ring.
func (s *Store) Health() Health {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	s.trainMu.Lock()
	defer s.trainMu.Unlock()
	h := Health{
		Objects:          n,
		PendingTrains:    s.pending,
		Closed:           s.closed,
		Durable:          s.wal != nil,
		SnapshotRestored: s.restored,
		WALReplayed:      s.replayed,
		TrainFailures:    s.errTotal,
		State:            s.State(),
		Degraded:         s.Degraded(),
		WALErrors:        s.walErrors.Load(),
		Degrades:         s.degrades.Load(),
		Recoveries:       s.recoveries.Load(),
		Checkpoints:      s.checkpoints.Load(),
		SnapshotBytes:    s.snapshotBytes.Load(),
		LastCheckpoint:   s.lastCheckpoint.Load(),
	}
	if err := s.lastWALError(); err != nil {
		h.LastWALError = err.Error()
	}
	for _, err := range s.trainErrsLocked() {
		h.RecentTrainErrors = append(h.RecentTrainErrors, err.Error())
	}
	return h
}

// Objects lists all tracked ids, sorted. Shards are visited one at a
// time in index order; ids added or removed mid-walk may or may not
// appear, like any concurrent map listing.
func (s *Store) Objects() []string {
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.objects {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Remove forgets an object entirely. On a durable store the removal is
// acknowledged like an observation: a tombstone WAL record (zero points —
// a shape the observe paths never write) hits disk before the object
// leaves the table, so it stays gone across restarts even though older
// segments and the snapshot still mention it; the next checkpoint drops
// it from the snapshot too. Removing an unknown id is a no-op.
func (s *Store) Remove(id string) error {
	if err := s.writable(); err != nil {
		return err // degraded: the tombstone could not be made durable
	}
	obj, err := s.get(id, false)
	if err != nil {
		return nil // never observed (or already removed): nothing to do
	}
	obj.ingestMu.Lock()
	defer obj.ingestMu.Unlock()
	if obj.removed {
		return nil // lost a race with another Remove
	}
	// Tombstone commit and map delete ride the snapshot gate like observe
	// applies: a checkpoint reclaiming the tombstone's segment must see
	// the shard dirty and re-encode it without the object.
	s.snapGate.RLock()
	defer s.snapGate.RUnlock()
	if s.wal != nil {
		if err := s.walRemove(id); err != nil {
			return err // not acknowledged: the object stays
		}
	}
	obj.removed = true
	sh := s.shard(id)
	sh.dirty.Store(true)
	sh.mu.Lock()
	// Guard against deleting a successor: a writer that raced this Remove
	// may already have re-created the id with a fresh object.
	if sh.objects[id] == obj {
		delete(sh.objects, id)
		// Drop the fleet-index entries inside the shard critical section:
		// any successor is created through this map after the delete, so
		// its index updates cannot be wiped by this removal.
		if s.index != nil {
			s.index.Remove(id)
		}
	}
	sh.mu.Unlock()
	return nil
}

// WALStats summarizes the write-ahead log's commit activity since Open:
// how many observation records were appended, how many group commits
// (file writes) carried them, and how many fsyncs were issued. On a
// non-durable store every field is zero. Batches < Records means group
// commit is coalescing concurrent writers; Fsyncs/Records is the
// per-observation fsync cost the batching amortizes.
type WALStats struct {
	Records uint64 `json:"records"`
	Batches uint64 `json:"batches"`
	Fsyncs  uint64 `json:"fsyncs"`
}

// WALStats reports the durable ingest counters; zero on in-memory stores.
func (s *Store) WALStats() WALStats {
	if s.wal == nil {
		return WALStats{}
	}
	r, b, f := s.wal.stats()
	return WALStats{Records: r, Batches: b, Fsyncs: f}
}

// Predictor returns the object's current predictor for advanced use
// (saving, inspection); nil when untrained. The returned predictor may be
// replaced by later retrains, so hold onto the pointer only briefly.
func (s *Store) Predictor(id string) (*hpm.Predictor, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	return obj.predictor, nil
}
