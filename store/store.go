// Package store manages Hybrid Prediction Models for a fleet of moving
// objects: it ingests location streams, trains a per-object model once
// enough periods accumulate, keeps each model fresh with incremental
// updates (and optional periodic retrains), and answers predictive queries
// concurrently.
//
// The paper models a single object per model — patterns are personal
// habits, so a shared model would blur them. This package is the thin
// systems layer that makes the single-object core usable as a moving-
// objects database: one model per tracked object, safe for concurrent
// Observe and Predict calls.
package store

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hpm"
)

// Options configures a Store.
type Options struct {
	// Config is the model configuration shared by every object; its
	// Period is required. Config.SubTrajectories is ignored — the store
	// manages training windows itself.
	Config hpm.Config
	// MinTrainPeriods is how many full periods an object must accumulate
	// before its first model is trained. Values <= 0 default to
	// DefaultMinTrainPeriods.
	MinTrainPeriods int
	// ExtendEvery incrementally extends a trained model after this many
	// newly completed periods. Values <= 0 default to 1 (every period).
	ExtendEvery int
	// RetrainEvery fully retrains a model after this many newly completed
	// periods, refreshing regions and key tables. 0 disables periodic
	// retraining (incremental updates only).
	RetrainEvery int
	// MaxRecent is the recent-movement window handed to queries. Values
	// <= 0 default to DefaultMaxRecent.
	MaxRecent int
	// TrainWorkers bounds how many full (re)trains may run concurrently
	// across all objects. Values <= 0 default to runtime.NumCPU().
	TrainWorkers int
	// SynchronousTraining runs full (re)trains inline on the observing
	// goroutine, as the store did before background training existed.
	// Useful for benchmark baselines and for callers that want train
	// errors returned directly from ObserveBatch.
	SynchronousTraining bool
}

// Defaults for Options fields left at their zero value.
const (
	DefaultMinTrainPeriods = 5
	DefaultMaxRecent       = 10
)

func (o Options) withDefaults() Options {
	if o.MinTrainPeriods <= 0 {
		o.MinTrainPeriods = DefaultMinTrainPeriods
	}
	if o.ExtendEvery <= 0 {
		o.ExtendEvery = 1
	}
	if o.MaxRecent <= 0 {
		o.MaxRecent = DefaultMaxRecent
	}
	if o.TrainWorkers <= 0 {
		o.TrainWorkers = runtime.NumCPU()
	}
	o.Config.SubTrajectories = 0
	return o
}

// ErrUntrained is returned by queries against an object that has not yet
// accumulated enough history for its first model.
var ErrUntrained = errors.New("store: object not yet trained")

// ErrUnknownObject is returned for ids never observed.
var ErrUnknownObject = errors.New("store: unknown object")

// Store tracks many objects. All methods are safe for concurrent use.
//
// Full (re)trains are expensive — region discovery, pattern mining and an
// index rebuild over the whole history — so by default they run on a
// bounded background pool instead of the observing goroutine: ObserveBatch
// snapshots the completed-period prefix, hands it to a trainer, and
// returns; the object's previous predictor (if any) keeps answering
// queries until the freshly trained one is swapped in under the object's
// lock. Incremental Extends are cheap and stay synchronous. Flush drains
// pending trains (tests, checkpoints); Close drains and stops scheduling.
type Store struct {
	opts Options

	mu      sync.RWMutex
	objects map[string]*object

	// Background-training machinery. pending counts scheduled trains not
	// yet swapped in; trainCond broadcasts when it reaches zero; trainSem
	// bounds concurrent trains to Options.TrainWorkers; trainErrs collects
	// failures until the next Flush/Close reports them.
	trainMu   sync.Mutex
	trainCond *sync.Cond
	pending   int
	closed    bool
	trainErrs []error
	trainSem  chan struct{}

	// beforeTrain, when set, runs on the trainer goroutine right before
	// the model is trained. Test hook: lets tests hold a train in flight
	// and observe the store mid-retrain. Set it before any trains start.
	beforeTrain func()
}

// object is one tracked object's state. mu is a read-write lock: queries
// (Predict, PredictRange, PredictBatch, Now, Stats) share a read lock —
// the predictor's query path is lock-free internally, so any number run in
// parallel — while Observe, model swaps and Extends take the write lock.
type object struct {
	mu        sync.RWMutex
	track     []hpm.Point
	predictor *hpm.Predictor
	// modeled is how many leading periods of track the predictor has seen
	// (via Train or Extend).
	modeled int
	// sinceRetrain counts periods absorbed since the last full train.
	sinceRetrain int
	// training marks an in-flight background (re)train; further model
	// updates are deferred until the trained predictor is swapped in.
	training bool
	// queries accumulates the query counters of predictors retired by full
	// retrains, so per-object query-path stats survive model swaps. The
	// live predictor's counters are added on read.
	queries hpm.QueryStats
}

// New returns an empty store. Config.Period must be positive.
func New(opts Options) (*Store, error) {
	if opts.Config.Period <= 0 {
		return nil, errors.New("store: Options.Config.Period must be positive")
	}
	s := &Store{opts: opts.withDefaults(), objects: map[string]*object{}}
	s.trainCond = sync.NewCond(&s.trainMu)
	s.trainSem = make(chan struct{}, s.opts.TrainWorkers)
	return s, nil
}

// Period returns the configured pattern period.
func (s *Store) Period() int { return s.opts.Config.Period }

// get returns the object's state, creating it when create is set.
func (s *Store) get(id string, create bool) (*object, error) {
	s.mu.RLock()
	obj := s.objects[id]
	s.mu.RUnlock()
	if obj != nil {
		return obj, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj = s.objects[id]; obj == nil {
		obj = &object{}
		s.objects[id] = obj
	}
	return obj, nil
}

// Observe appends the object's location at its next timestamp (locations
// arrive in order, one per tick). Crossing a period boundary may trigger a
// model update: incremental extends run inline, while the first train and
// periodic retrains are handed to the background pool (unless
// SynchronousTraining is set) — use Flush to wait for them.
func (s *Store) Observe(id string, loc hpm.Point) error {
	return s.ObserveBatch(id, []hpm.Point{loc})
}

// ObserveBatch appends consecutive locations in one call.
func (s *Store) ObserveBatch(id string, locs []hpm.Point) error {
	if len(locs) == 0 {
		return nil
	}
	obj, err := s.get(id, true)
	if err != nil {
		return err
	}
	obj.mu.Lock()
	defer obj.mu.Unlock()
	obj.track = append(obj.track, locs...)
	return s.maybeUpdate(obj)
}

// maybeUpdate trains, extends or retrains the object's model according to
// the configured policy. Called with obj.mu held.
func (s *Store) maybeUpdate(obj *object) error {
	if obj.training {
		// A background (re)train is in flight; it re-runs this check
		// after the swap to absorb periods completed meanwhile.
		return nil
	}
	period := s.opts.Config.Period
	completed := len(obj.track) / period

	if obj.predictor == nil {
		if completed < s.opts.MinTrainPeriods {
			return nil
		}
		return s.startTrain(obj, completed)
	}
	newPeriods := completed - obj.modeled
	if newPeriods <= 0 {
		return nil
	}
	if s.opts.RetrainEvery > 0 && obj.sinceRetrain+newPeriods >= s.opts.RetrainEvery {
		return s.startTrain(obj, completed)
	}
	if newPeriods < s.opts.ExtendEvery {
		return nil
	}
	_, err := obj.predictor.Extend(obj.track[obj.modeled*period : completed*period])
	if err != nil {
		return fmt.Errorf("store: extend: %w", err)
	}
	obj.sinceRetrain += newPeriods
	obj.modeled = completed
	return nil
}

// startTrain dispatches a full (re)train of obj's first completed periods:
// inline under SynchronousTraining, otherwise to the background pool.
// Called with obj.mu held.
func (s *Store) startTrain(obj *object, completed int) error {
	if s.opts.SynchronousTraining {
		return s.train(obj, completed)
	}
	s.scheduleTrain(obj, completed)
	return nil
}

// train fully (re)trains obj over its first completed periods. Called with
// obj.mu held.
func (s *Store) train(obj *object, completed int) error {
	cfg := s.opts.Config
	pts := obj.track[:completed*cfg.Period]
	p, err := hpm.TrainPoints(pts, cfg)
	if err != nil {
		return fmt.Errorf("store: train: %w", err)
	}
	obj.swapPredictor(p, completed)
	return nil
}

// swapPredictor installs a freshly trained predictor, banking the retired
// predictor's query counters so per-object stats survive the swap. Called
// with obj.mu held for writing.
func (o *object) swapPredictor(p *hpm.Predictor, completed int) {
	if o.predictor != nil {
		o.queries = o.queries.Add(o.predictor.QueryStats())
	}
	o.predictor = p
	o.modeled = completed
	o.sinceRetrain = 0
}

// scheduleTrain snapshots the completed-period prefix and hands it to a
// background trainer. No-op when a train for obj is already in flight
// (later periods are absorbed by the post-swap catch-up) or the store is
// closed. Called with obj.mu held.
func (s *Store) scheduleTrain(obj *object, completed int) {
	s.trainMu.Lock()
	if s.closed {
		s.trainMu.Unlock()
		return
	}
	s.pending++
	s.trainMu.Unlock()
	obj.training = true
	// Snapshot: the track keeps growing under obj.mu while the trainer
	// runs, so the trainer must own its input.
	pts := append([]hpm.Point(nil), obj.track[:completed*s.opts.Config.Period]...)
	go s.runTrain(obj, pts, completed)
}

// runTrain is the background trainer: it trains a fresh predictor off the
// snapshot without holding any lock, swaps it in under obj.mu, and re-runs
// the update policy to catch up on periods completed during training.
func (s *Store) runTrain(obj *object, pts []hpm.Point, completed int) {
	s.trainSem <- struct{}{}
	if hook := s.beforeTrain; hook != nil {
		hook()
	}
	p, err := hpm.TrainPoints(pts, s.opts.Config)
	<-s.trainSem

	obj.mu.Lock()
	obj.training = false
	if err != nil {
		err = fmt.Errorf("store: train: %w", err)
	} else {
		obj.swapPredictor(p, completed)
		// Catch up: extend (or re-schedule a retrain) over periods that
		// completed while this train was running.
		if uerr := s.maybeUpdate(obj); uerr != nil {
			err = uerr
		}
	}
	obj.mu.Unlock()

	s.trainMu.Lock()
	if err != nil {
		s.trainErrs = append(s.trainErrs, err)
	}
	s.pending--
	if s.pending == 0 {
		s.trainCond.Broadcast()
	}
	s.trainMu.Unlock()
}

// Flush blocks until no background trains are pending — including any
// catch-up trains they schedule — and returns their accumulated errors
// (nil when training succeeded or nothing was pending). After Flush, every
// Observe made before the call is reflected in the objects' models.
func (s *Store) Flush() error {
	s.trainMu.Lock()
	defer s.trainMu.Unlock()
	for s.pending > 0 {
		s.trainCond.Wait()
	}
	err := errors.Join(s.trainErrs...)
	s.trainErrs = nil
	return err
}

// Close drains pending background trains and stops scheduling new ones.
// Observations and queries still work after Close, but models are no
// longer retrained. Returns any accumulated training errors.
func (s *Store) Close() error {
	s.trainMu.Lock()
	s.closed = true
	s.trainMu.Unlock()
	return s.Flush()
}

// Predict estimates the object's location at absolute time tq (timestamps
// count observations from zero) from its most recent movements. Queries
// run under the object's read lock: any number execute in parallel with
// each other, serializing only against writes (Observe, model swaps).
func (s *Store) Predict(id string, tq, k int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	return obj.predictor.Predict(recent, tq, k)
}

// PredictRange estimates the object's locations over [from, to].
func (s *Store) PredictRange(id string, from, to int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	return obj.predictor.PredictRange(recent, from, to)
}

// PredictBatch estimates the object's location at each absolute time in
// tqs, returning up to k ranked predictions per time in input order. The
// whole batch runs against one consistent snapshot of the object's recent
// movements and shares a single premise encoding and at most one motion-
// function fit, so it is substantially cheaper than len(tqs) Predict
// calls. Times nothing can answer yield a nil entry.
func (s *Store) PredictBatch(id string, tqs []int, k int) ([][]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	return obj.predictor.PredictBatch(recent, tqs, k)
}

// recentLocked builds the query window from the tail of the track.
func (s *Store) recentLocked(obj *object) ([]hpm.TimedPoint, error) {
	if obj.predictor == nil {
		return nil, ErrUntrained
	}
	n := len(obj.track)
	w := s.opts.MaxRecent
	if w > n {
		w = n
	}
	recent := make([]hpm.TimedPoint, 0, w)
	for t := n - w; t < n; t++ {
		recent = append(recent, hpm.TimedPoint{T: t, Loc: obj.track[t]})
	}
	return recent, nil
}

// Now returns the object's current time: the timestamp of its latest
// observation, or -1 when nothing was observed.
func (s *Store) Now(id string) (int, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return 0, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	return len(obj.track) - 1, nil
}

// ObjectStats summarizes one tracked object.
type ObjectStats struct {
	ID         string
	Points     int  // observations ingested
	Periods    int  // completed periods
	Trained    bool // has a model
	Training   bool // a background (re)train is in flight
	Modeled    int  // periods the model has absorbed
	Regions    int
	Patterns   int
	IndexBytes int
	// Queries summarizes the object's query traffic by answering path.
	Queries hpm.QueryStats
}

// Stats returns the object's summary.
func (s *Store) Stats(id string) (ObjectStats, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return ObjectStats{}, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	st := ObjectStats{
		ID:       id,
		Points:   len(obj.track),
		Periods:  len(obj.track) / s.opts.Config.Period,
		Training: obj.training,
		Modeled:  obj.modeled,
		Queries:  obj.queries,
	}
	if obj.predictor != nil {
		st.Trained = true
		st.Regions = obj.predictor.NumRegions()
		st.Patterns = obj.predictor.NumPatterns()
		st.IndexBytes = obj.predictor.IndexBytes()
		st.Queries = st.Queries.Add(obj.predictor.QueryStats())
	}
	return st, nil
}

// Objects lists all tracked ids, sorted.
func (s *Store) Objects() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Remove forgets an object entirely.
func (s *Store) Remove(id string) {
	s.mu.Lock()
	delete(s.objects, id)
	s.mu.Unlock()
}

// Predictor returns the object's current predictor for advanced use
// (saving, inspection); nil when untrained. The returned predictor may be
// replaced by later retrains, so hold onto the pointer only briefly.
func (s *Store) Predictor(id string) (*hpm.Predictor, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	return obj.predictor, nil
}
