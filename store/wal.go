package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"hpm"
	"hpm/internal/faultinject"
)

// errWALBroken is returned for appends staged after a segment write
// failure, until recovery resets to a fresh segment. The store wraps it
// in ErrDegraded before it reaches callers.
var errWALBroken = errors.New("store: wal segment broken by a failed write")

// Write-ahead observation log. Every ObserveBatch against a durable store
// appends one record — object id, track offset, points — to the current
// WAL segment before the observation is acknowledged, so a crash between
// snapshots loses nothing that a client was told succeeded.
//
// Appends are group-committed: concurrent appenders stage their encoded
// records into a shared batch, one of them (the leader) writes the whole
// batch with a single file write and a single fsync, and every waiter is
// released once the batch is durable. The acknowledgment guarantee is
// unchanged — append returns nil only after its record's batch hit disk
// (in sync mode) — but the fsync cost is amortized across every writer
// that joined the batch, so durable ingest throughput grows with writer
// concurrency instead of serializing on one fsync per record.
//
// Record layout (all integers little-endian):
//
//	record  := uvarint(len(payload)) payload uint32(crc32c(payload))
//	payload := uvarint(len(id)) id uvarint(offset) uvarint(n) n×(f64 x, f64 y)
//
// offset is the object's track length when the record was written, which
// makes replay idempotent: a record whose points are already covered by
// the snapshot (offset+n <= len(track)) is skipped, and a partial overlap
// appends only the missing tail. That lets a checkpoint rotate to a fresh
// segment *before* writing the snapshot — records raced into the new
// segment while the snapshot is being written replay as no-ops.
//
// The log is segmented: each process start and each checkpoint opens a
// fresh segment, and a checkpoint deletes the segments its snapshot made
// obsolete. Segments are never appended to after being frozen, so a torn
// record — a crash mid-append — can only sit at the tail of the newest
// segment; replay discards it (it was never acknowledged, assuming sync
// mode) and truncates the segment so the tear cannot be mistaken for
// corruption later. A checksum failure in an older, fsynced segment is
// reported as an error: that is disk damage, not a crash artifact.

const (
	walSegmentPattern = "wal-*.log"
	walSegmentFormat  = "wal-%010d.log"
	// maxWALRecord bounds one record's payload (1 MiB of JSON observe body
	// can't produce more points than this allows).
	maxWALRecord = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walBatch is one group commit: the concatenated records staged by every
// appender that joined it, the barrier they block on, and the outcome of
// the flush that made (or failed to make) them durable.
type walBatch struct {
	buf  []byte
	done chan struct{} // closed by the leader after the flush
	err  error         // written before done is closed
}

// wal is the store's write-ahead log handle: one open segment plus the
// frozen segments awaiting the next checkpoint.
type wal struct {
	dir  string
	sync bool // fsync once per group commit

	mu      sync.Mutex
	flushed *sync.Cond // broadcast when writing flips false
	f       *os.File
	seq     uint64
	frozen  []string  // closed segments, oldest first, reclaimed at checkpoint
	retired []string  // closed but not yet repaired segments (see reset)
	cur     *walBatch // batch accepting stagers; nil when none staged
	writing bool      // a leader is flushing; stagers become followers
	spare   []byte    // recycled batch buffer, so steady state allocates nothing
	scratch []byte    // payload encode scratch, used under mu

	// broken marks the active segment untrusted after a failed write: a
	// short write leaves a torn record mid-file, and appending past it
	// would strand every later record behind an undecodable prefix — so
	// once set, appends fail fast until reset opens a fresh segment.
	// A failed *fsync* does not set it: the bytes are whole, only their
	// durability is in doubt, and retrying in place stays content-safe.
	broken bool

	// fault, when set, is consulted at the write and sync fault points
	// (disk-full, wal-sync-latency, wal-sync-error); onFlush, when set,
	// observes every group commit's outcome — the store's degradation
	// state machine counts failures there. Both are fixed at Open.
	fault   func(faultinject.Op) error
	onFlush func(err error, broke bool)

	// Commit accounting, read by benchmarks and Store.WALStats: records
	// staged, group commits written (one file write each), fsyncs issued.
	records atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64
}

// openWAL scans dir for existing segments (they become frozen — replayed
// by the caller, reclaimed by the next checkpoint) and opens a fresh
// segment after them. It never appends to a pre-existing segment, so a
// torn tail stays where replay repaired it.
func openWAL(dir string, syncEach bool) (*wal, error) {
	frozen, last, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &wal{dir: dir, sync: syncEach, frozen: frozen, seq: last}
	w.flushed = sync.NewCond(&w.mu)
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// walSegments lists dir's WAL segments sorted by sequence number and
// returns the highest sequence seen.
func walSegments(dir string) (paths []string, last uint64, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, walSegmentPattern))
	if err != nil {
		return nil, 0, err
	}
	type seg struct {
		path string
		seq  uint64
	}
	segs := make([]seg, 0, len(matches))
	for _, m := range matches {
		var n uint64
		if _, err := fmt.Sscanf(filepath.Base(m), walSegmentFormat, &n); err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, seg{m, n})
		if n > last {
			last = n
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for _, s := range segs {
		paths = append(paths, s.path)
	}
	return paths, last, nil
}

// openSegmentLocked opens segment seq+1 for appending.
func (w *wal) openSegmentLocked() error {
	w.seq++
	path := filepath.Join(w.dir, fmt.Sprintf(walSegmentFormat, w.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: open wal segment: %w", err)
	}
	w.f = f
	return nil
}

// append stages one record into the current group commit and blocks until
// that batch is durable (written, and in sync mode fsynced), so the caller
// may acknowledge the observation.
func (w *wal) append(id string, offset int, pts []hpm.Point) error {
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return errors.New("store: wal closed")
	}
	if w.broken {
		w.mu.Unlock()
		return errWALBroken
	}
	b := w.stageLocked(id, offset, pts)
	return w.commit(b)
}

// appendAll stages every record into one group commit and blocks until the
// whole batch is durable: a fleet-wide observation joins a single fsync no
// matter how many objects it touches. Records land in the segment in
// argument order, matching the per-object track order the caller staged.
func (w *wal) appendAll(recs []walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return errors.New("store: wal closed")
	}
	if w.broken {
		w.mu.Unlock()
		return errWALBroken
	}
	var b *walBatch
	for _, r := range recs {
		b = w.stageLocked(r.id, r.offset, r.pts)
	}
	return w.commit(b)
}

// stageLocked encodes one record — length prefix, payload, CRC — straight
// into the current batch's buffer, creating the batch when this is its
// first record. Both the batch buffer and the payload scratch are reused
// across commits, so steady-state staging allocates nothing per record.
// Caller holds w.mu.
func (w *wal) stageLocked(id string, offset int, pts []hpm.Point) *walBatch {
	b := w.cur
	if b == nil {
		b = &walBatch{buf: w.spare[:0], done: make(chan struct{})}
		w.spare = nil
		w.cur = b
	}
	var u [binary.MaxVarintLen64]byte
	// Payload first, so its length can prefix it.
	p := w.scratch[:0]
	p = append(p, u[:binary.PutUvarint(u[:], uint64(len(id)))]...)
	p = append(p, id...)
	p = append(p, u[:binary.PutUvarint(u[:], uint64(offset))]...)
	p = append(p, u[:binary.PutUvarint(u[:], uint64(len(pts)))]...)
	for _, pt := range pts {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(pt.X))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(pt.Y))
	}
	w.scratch = p
	b.buf = append(b.buf, u[:binary.PutUvarint(u[:], uint64(len(p)))]...)
	b.buf = append(b.buf, p...)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, crc32.Checksum(p, walCRC))
	w.records.Add(1)
	return b
}

// commit makes b durable and returns its outcome. Called with w.mu held;
// releases it. If no leader is flushing, the caller becomes leader: it
// writes and fsyncs the batch, releases the batch's waiters, and keeps
// draining batches staged by followers while it was writing (those
// followers are parked on their batch's barrier and cannot elect
// themselves). Otherwise the caller is a follower and blocks until the
// leader flushes the batch it staged into.
func (w *wal) commit(b *walBatch) error {
	if w.writing {
		w.mu.Unlock()
		<-b.done
		return b.err
	}
	w.writing = true
	for w.cur != nil {
		cur := w.cur
		w.cur = nil
		f := w.f
		broken := w.broken
		w.mu.Unlock()
		var broke bool
		if broken {
			// A batch staged between a failed write and the leader's next
			// loop turn: appending it would land past the torn record, so
			// fail it without touching the segment. No onFlush — the flush
			// that broke the segment already reported the disk error.
			cur.err = errWALBroken
		} else {
			cur.err, broke = w.flush(f, cur.buf)
			// The degradation callback runs before waiters are released, so
			// a failing appender observes the store already flipped
			// read-only and can wrap its error as ErrDegraded.
			if w.onFlush != nil {
				w.onFlush(cur.err, broke)
			}
		}
		close(cur.done)
		w.mu.Lock()
		if broke {
			w.broken = true
		}
		if w.spare == nil {
			w.spare = cur.buf[:0] // recycle for the next batch
		}
	}
	w.writing = false
	w.flushed.Broadcast()
	w.mu.Unlock()
	// The leader's own batch was the first one drained; err is stable
	// once done is closed.
	return b.err
}

// flush writes one batch and, in sync mode, fsyncs it. Runs without w.mu:
// rotate and close wait for writing to clear, so f stays valid. broke
// reports a write failure — the segment tail is untrusted afterwards and
// the caller must stop appending to it; sync failures leave the bytes
// whole, so they are returned without breaking the segment.
func (w *wal) flush(f *os.File, buf []byte) (err error, broke bool) {
	w.batches.Add(1)
	if w.fault != nil {
		if ferr := w.fault(faultinject.OpDiskFull); ferr != nil {
			return fmt.Errorf("store: wal append: %w", ferr), true
		}
	}
	if _, werr := f.Write(buf); werr != nil {
		return fmt.Errorf("store: wal append: %w", werr), true
	}
	if w.sync {
		if w.fault != nil {
			if ferr := w.fault(faultinject.OpWALSyncLatency); ferr != nil {
				return fmt.Errorf("store: wal sync: %w", ferr), false
			}
			if ferr := w.fault(faultinject.OpWALSyncError); ferr != nil {
				return fmt.Errorf("store: wal sync: %w", ferr), false
			}
		}
		w.fsyncs.Add(1)
		if serr := f.Sync(); serr != nil {
			return fmt.Errorf("store: wal sync: %w", serr), false
		}
	}
	return nil, false
}

// quiesceLocked blocks until no leader is flushing. Batches cannot be
// staged without immediately electing or joining a leader under the same
// mu hold, so once writing clears nothing is staged either. Caller holds
// w.mu.
func (w *wal) quiesceLocked() {
	for w.writing {
		w.flushed.Wait()
	}
}

// stats returns the append/commit counters: records staged, group commits
// written, fsyncs issued.
func (w *wal) stats() (records, batches, fsyncs uint64) {
	return w.records.Load(), w.batches.Load(), w.fsyncs.Load()
}

// rotate freezes the current segment and opens the next one, returning
// the full frozen list (oldest first) for the checkpoint to reclaim once
// its snapshot is durable.
func (w *wal) rotate() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked() // group writes never straddle a segment boundary
	if w.f == nil {
		return nil, errors.New("store: wal closed")
	}
	if err := w.f.Sync(); err != nil {
		return nil, err
	}
	path := w.f.Name()
	if err := w.f.Close(); err != nil {
		return nil, err
	}
	w.frozen = append(w.frozen, path)
	if err := w.openSegmentLocked(); err != nil {
		w.f = nil
		return nil, err
	}
	return append([]string(nil), w.frozen...), nil
}

// reset abandons the current segment and opens a fresh one, clearing the
// broken flag: the recovery path after a degrade. The old segment may end
// in a torn record (a short write mid-batch), so before freezing it the
// tail is truncated back to its longest valid prefix — frozen segments are
// replayed strictly, and an unrepaired tear would read as corruption at
// the next Open. Records in the discarded tail were never acknowledged
// (their appenders got the write error), so truncation loses nothing.
//
// reset is retryable: a segment whose repair fails stays parked in retired
// (never frozen, never reclaimed) and is repaired on the next attempt, so
// a still-failing disk cannot leave a torn segment where a future replay
// would read it strictly. Until a reset succeeds, the damaged segment is
// the newest on disk, which the tolerant final-segment replay handles if
// the process dies first.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if w.f != nil {
		path := w.f.Name()
		// Best effort: the segment is being retired because the disk
		// already failed once, so sync/close errors don't block the reset.
		w.f.Sync()
		w.f.Close()
		w.f = nil
		w.retired = append(w.retired, path)
	}
	for len(w.retired) > 0 {
		if err := repairSegment(w.retired[0]); err != nil {
			return fmt.Errorf("store: wal reset: %w", err)
		}
		w.frozen = append(w.frozen, w.retired[0])
		w.retired = w.retired[1:]
	}
	if err := w.openSegmentLocked(); err != nil {
		return err
	}
	w.broken = false
	return nil
}

// repairSegment truncates path back to its longest prefix of valid
// records, erasing a torn tail left by a failed write.
func repairSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	valid := 0
	for valid < len(data) {
		_, n, derr := decodeWALRecord(data[valid:])
		if derr != nil {
			break
		}
		valid += n
	}
	if valid == len(data) {
		return nil
	}
	return os.Truncate(path, int64(valid))
}

// reclaim deletes frozen segments made obsolete by a durable snapshot.
func (w *wal) reclaim(paths []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	gone := make(map[string]bool, len(paths))
	for _, p := range paths {
		if err := os.Remove(p); err == nil || os.IsNotExist(err) {
			gone[p] = true
		}
	}
	kept := w.frozen[:0]
	for _, p := range w.frozen {
		if !gone[p] {
			kept = append(kept, p)
		}
	}
	w.frozen = kept
}

// close syncs and closes the current segment. Appends fail afterwards.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked() // let an in-flight group commit finish cleanly
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walRecord is one decoded WAL record.
type walRecord struct {
	id     string
	offset int
	pts    []hpm.Point
}

// replaySegment reads records from path, calling apply for each valid
// record in order. A torn or checksum-failing tail is tolerated only when
// final is set (the newest segment, where a crash mid-append lands): the
// segment is truncated back to its valid prefix so later replays see a
// clean log. The same damage in a frozen, fsynced segment is reported as
// corruption.
func replaySegment(path string, final bool, apply func(walRecord) error) (records int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	valid := 0 // byte length of the valid prefix
	for valid < len(data) {
		rec, n, derr := decodeWALRecord(data[valid:])
		if derr != nil {
			if !final {
				return records, fmt.Errorf("store: wal %s: corrupt record at byte %d: %w", filepath.Base(path), valid, derr)
			}
			// Torn tail: discard it and repair the segment in place so a
			// future replay (when this segment is no longer the newest)
			// does not mistake the tear for corruption.
			if terr := os.Truncate(path, int64(valid)); terr != nil {
				return records, fmt.Errorf("store: wal truncate torn tail: %w", terr)
			}
			return records, nil
		}
		if aerr := apply(rec); aerr != nil {
			return records, aerr
		}
		valid += n
		records++
	}
	return records, nil
}

// decodeWALRecord decodes one record from the front of data, returning it
// and the bytes consumed. Any shortfall or checksum mismatch is an error —
// the caller decides whether that means a torn tail or corruption.
func decodeWALRecord(data []byte) (walRecord, int, error) {
	plen, n := binary.Uvarint(data)
	if n <= 0 {
		return walRecord{}, 0, io.ErrUnexpectedEOF
	}
	if plen > maxWALRecord {
		return walRecord{}, 0, fmt.Errorf("implausible record length %d", plen)
	}
	total := n + int(plen) + 4
	if total > len(data) {
		return walRecord{}, 0, io.ErrUnexpectedEOF
	}
	payload := data[n : n+int(plen)]
	want := binary.LittleEndian.Uint32(data[n+int(plen):])
	if crc32.Checksum(payload, walCRC) != want {
		return walRecord{}, 0, errors.New("checksum mismatch")
	}

	idLen, m := binary.Uvarint(payload)
	if m <= 0 || uint64(m)+idLen > uint64(len(payload)) {
		return walRecord{}, 0, errors.New("bad id length")
	}
	payload = payload[m:]
	id := string(payload[:idLen])
	payload = payload[idLen:]
	offset, m := binary.Uvarint(payload)
	if m <= 0 {
		return walRecord{}, 0, errors.New("bad offset")
	}
	payload = payload[m:]
	count, m := binary.Uvarint(payload)
	if m <= 0 {
		return walRecord{}, 0, errors.New("bad point count")
	}
	payload = payload[m:]
	if uint64(len(payload)) != count*16 {
		return walRecord{}, 0, fmt.Errorf("point bytes %d != 16×%d", len(payload), count)
	}
	pts := make([]hpm.Point, count)
	for i := range pts {
		pts[i] = hpm.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(payload[i*16:])),
			math.Float64frombits(binary.LittleEndian.Uint64(payload[i*16+8:])),
		)
	}
	return walRecord{id: id, offset: int(offset), pts: pts}, total, nil
}
