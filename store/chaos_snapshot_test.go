package store

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hpm"
	"hpm/internal/faultinject"
)

// Chaos coverage for the incremental checkpoint: a kill at every stage —
// during a shard segment write, before the manifest commit, and after the
// commit but before WAL reclaim — must lose nothing acknowledged.

// checkpointChaosFleet ingests a small fleet with a clean checkpoint in
// the middle, so a later incremental checkpoint has both chained segments
// and dirty shards. Returns acknowledged point counts per id.
func checkpointChaosFleet(t *testing.T, s *Store) map[string]int {
	t.Helper()
	acked := map[string]int{}
	acked["bus-1"] = ingest(t, s, "bus-1", 1, 3, 31)
	acked["bus-2"] = ingest(t, s, "bus-2", 2, 3, 29)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	acked["bus-3"] = ingest(t, s, "bus-3", 3, 4, 27)
	acked["bus-1"] += len(ingestMore(t, s, "bus-1", 1, 3, 5))
	return acked
}

// verifyChaosFleet reopens dir and requires every acknowledged point back.
func verifyChaosFleet(t *testing.T, dir string, acked map[string]int) {
	t.Helper()
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	for id, n := range acked {
		st, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if st.Points != n {
			t.Errorf("%s: recovered %d points, acknowledged %d", id, st.Points, n)
		}
	}
}

// TestChaosKillDuringSegmentWrite fails a shard segment write mid-
// checkpoint and kills the process: the manifest was never updated, so
// the previous snapshot plus the intact WAL must restore everything.
func TestChaosKillDuringSegmentWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := checkpointChaosFleet(t, s)
	s.SetFaultHook(faultinject.FailN(faultinject.OpSnapshotShard, 1, nil))
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected segment failure not surfaced: %v", err)
	}
	crash(s)
	verifyChaosFleet(t, dir, acked)
}

// TestChaosKillBeforeManifestCommit fails the checkpoint at the manifest
// write — after every new segment hit disk — and kills the process: the
// old manifest is still in place and must not reference the new epoch.
func TestChaosKillBeforeManifestCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := checkpointChaosFleet(t, s)
	s.SetFaultHook(faultinject.FailN(faultinject.OpManifest, 1, nil))
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected manifest failure not surfaced: %v", err)
	}
	crash(s)
	verifyChaosFleet(t, dir, acked)
}

// TestChaosKillAfterManifestBeforeReclaim simulates a crash in the window
// where the new manifest is committed but obsolete WAL segments and
// superseded snapshot segments still exist: the reopened store must treat
// the stale WAL records as no-ops and sweep the stale files, losing and
// duplicating nothing.
func TestChaosKillAfterManifestBeforeReclaim(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := checkpointChaosFleet(t, s)
	// The manifest fault point is consulted twice: before the commit and
	// after it (see faultinject.OpManifest). Let the first consult pass and
	// fail the second, so the checkpoint dies with the new manifest live
	// but reclaim never run.
	var consults atomic.Int64
	s.SetFaultHook(func(op faultinject.Op) error {
		if op == faultinject.OpManifest && consults.Add(1) == 2 {
			return faultinject.ErrInjected
		}
		return nil
	})
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected post-commit failure not surfaced: %v", err)
	}
	crash(s)
	verifyChaosFleet(t, dir, acked)
}

// TestChaosCheckpointRetryAfterFailure is the dirty-flag rollback
// contract: a failed checkpoint must restore the dirty marks it cleared,
// so the retry re-encodes those shards instead of chaining stale segments
// and then reclaiming the only WAL copy of their changes.
func TestChaosCheckpointRetryAfterFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := checkpointChaosFleet(t, s)
	s.SetFaultHook(faultinject.FailN(faultinject.OpSnapshotShard, 1, nil))
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected segment failure not surfaced: %v", err)
	}
	s.SetFaultHook(nil)
	if err := s.Checkpoint(); err != nil { // retry must succeed and reclaim the WAL
		t.Fatal(err)
	}
	crash(s)
	verifyChaosFleet(t, dir, acked)
}

// TestChaosIncrementalCheckpointCrashLoop hammers the full cycle: ingest,
// incremental checkpoint, crash, reopen — several rounds — and requires
// every acknowledged point to survive every round.
func TestChaosIncrementalCheckpointCrashLoop(t *testing.T) {
	dir := t.TempDir()
	acked := map[string]int{}
	for round := 0; round < 4; round++ {
		s, err := Open(dir, durableOpts())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		id := []string{"bus-1", "bus-2"}[round%2]
		acked[id] += len(ingestMore(t, s, id, int64(round%2+1), round/2, round/2+1))
		if round%2 == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("round %d: checkpoint: %v", round, err)
			}
		}
		crash(s)
		verifyFleetOnce(t, dir, acked)
	}
}

func verifyFleetOnce(t *testing.T, dir string, acked map[string]int) {
	t.Helper()
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range acked {
		if st, err := back.Stats(id); err != nil || st.Points != n {
			t.Errorf("%s: recovered %v points, acknowledged %d (err %v)", id, st.Points, n, err)
		}
	}
	crash(back)
}

// TestLoadFailureLeaksNoGoroutines: a Load that dies mid-stream must shut
// down the partially built store's background machinery (train pool,
// recovery probe) instead of leaking it on every failed restore attempt.
func TestLoadFailureLeaksNoGoroutines(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike", 1, 4)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	truncated := buf.Bytes()[:buf.Len()-10] // mid final record: a decode error, not clean EOF

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := Load(bytes.NewReader(truncated)); err == nil {
			t.Fatal("truncated snapshot accepted")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return // settled: nothing leaked
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by failed Loads: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCheckpointConcurrentWithObserves runs incremental checkpoints while
// writers keep ingesting, then crashes and verifies zero acknowledged
// loss — the snapshot gate's contract that a record committed to a
// rotated-away WAL segment is always covered by the checkpoint that
// reclaims it. Meant for -race as much as for the invariant itself.
func TestCheckpointConcurrentWithObserves(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	type ack struct {
		id string
		n  int
	}
	results := make(chan ack, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			id := []string{"car-a", "car-b", "car-c", "car-d"}[w]
			spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, int64(w+1))
			spec.Period = period
			spec.SubTrajectories = 2
			pts := hpm.GenerateDataset(spec).Points()
			acked := 0
			for i := 0; i < len(pts); i += 5 {
				end := i + 5
				if end > len(pts) {
					end = len(pts)
				}
				if err := s.ObserveBatch(id, pts[i:end]); err != nil {
					break
				}
				acked = end
			}
			results <- ack{id, acked}
		}(w)
	}
	for i := 0; i < 6; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Errorf("checkpoint %d: %v", i, err)
		}
	}
	acked := map[string]int{}
	for w := 0; w < writers; w++ {
		a := <-results
		acked[a.id] = a.n
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(s)
	verifyChaosFleet(t, dir, acked)
}
