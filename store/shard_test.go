package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hpm"
)

// TestShardCountRounding pins the Options.Shards contract: <=0 defaults,
// non-powers round up, 1 stays a single-lock map, absurd values clamp.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards},
		{-5, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{63, 64},
		{64, 64},
		{65, 128},
		{1 << 20, maxShards},
	} {
		s, err := New(Options{Config: hpm.Config{Period: period}, Shards: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.shards) != tc.want {
			t.Errorf("Shards=%d: %d shards, want %d", tc.in, len(s.shards), tc.want)
		}
		if len(s.shards)&(len(s.shards)-1) != 0 {
			t.Errorf("Shards=%d: %d is not a power of two", tc.in, len(s.shards))
		}
	}
}

// TestShardRouting checks every id resolves to a stable shard that get()
// and Remove agree on, across many ids on a small shard count.
func TestShardRouting(t *testing.T) {
	s, err := New(Options{Config: hpm.Config{Period: period}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("obj-%03d", i)
		if err := s.Observe(id, hpm.Pt(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Objects()); got != 200 {
		t.Fatalf("%d objects listed, want 200", got)
	}
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].objects)
	}
	if total != 200 {
		t.Fatalf("shards hold %d objects, want 200", total)
	}
	for i := 0; i < 200; i++ {
		s.Remove(fmt.Sprintf("obj-%03d", i))
	}
	if got := len(s.Objects()); got != 0 {
		t.Fatalf("%d objects after removes, want 0", got)
	}
}

// TestShardHammer drives mixed fleet traffic — observes, predictions,
// stats, listings and removes across many ids, with retrains enabled —
// from many goroutines. Run under -race it pins the shard-map locking:
// distinct objects only share a shard's RWMutex, and fleet-wide walks
// (Objects, Health) interleave with writers safely.
func TestShardHammer(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 2, Shards: 8})
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 77)
	spec.Period = period
	spec.SubTrajectories = 5
	pts := hpm.GenerateDataset(spec).Points()

	const workers = 8
	const ids = 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 120; i++ {
				id := fmt.Sprintf("obj-%02d", rng.Intn(ids))
				switch i % 5 {
				case 0, 1: // observe a small batch
					off := rng.Intn(len(pts) - 16)
					if err := s.ObserveBatch(id, pts[off:off+16]); err != nil {
						errs <- err
						return
					}
				case 2: // predict (untrained objects answer ErrUntrained)
					now, err := s.Now(id)
					if err != nil {
						continue // not observed yet, or removed
					}
					if _, err := s.Predict(id, now+10, 1); err != nil {
						continue // untrained / invalid time are expected here
					}
				case 3: // stats + fleet walks
					s.Stats(id)
					s.Objects()
					s.Health()
				default: // churn: remove a different id occasionally
					if rng.Intn(8) == 0 {
						s.Remove(fmt.Sprintf("obj-%02d", rng.Intn(ids)))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close after hammer: %v", err)
	}
}
