package store

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hpm"
)

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 50})
	feed(t, s, "bike-1", 1, 5) // trained
	feed(t, s, "bike-2", 2, 4) // trained
	if err := s.Observe("young", hpm.Pt(10, 20)); err != nil {
		t.Fatal(err) // untrained object with one observation
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	ids := back.Objects()
	if len(ids) != 3 {
		t.Fatalf("restored %d objects: %v", len(ids), ids)
	}
	for _, id := range []string{"bike-1", "bike-2"} {
		a, _ := s.Stats(id)
		b, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.Points != b.Points || a.Trained != b.Trained ||
			a.Patterns != b.Patterns || a.Regions != b.Regions || a.Modeled != b.Modeled {
			t.Errorf("%s stats differ: %+v vs %+v", id, a, b)
		}
	}
	st, _ := back.Stats("young")
	if st.Trained || st.Points != 1 {
		t.Errorf("untrained object restored wrong: %+v", st)
	}

	// The restored store answers queries identically.
	now, _ := s.Now("bike-1")
	want, err := s.Predict("bike-1", now+15, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Predict("bike-1", now+15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Location != want[0].Location {
		t.Errorf("restored prediction %+v != %+v", got, want)
	}

	// And keeps ingesting + updating after the restart.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 7
	tr := hpm.GenerateDataset(spec)
	if err := back.ObserveBatch("bike-1", tr.Slice(5*period, 7*period)); err != nil {
		t.Fatal(err)
	}
	st, _ = back.Stats("bike-1")
	if st.Modeled != 7 {
		t.Errorf("restored store did not extend: modeled %d", st.Modeled)
	}
}

func TestStoreSnapshotOptionsPreserved(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 7, ExtendEvery: 2, RetrainEvery: 9, MaxRecent: 25})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.opts, s.opts) {
		t.Errorf("options differ: %+v vs %+v", back.opts, s.opts)
	}
	if back.Period() != period {
		t.Errorf("period %d, want %d", back.Period(), period)
	}
}

func TestStoreLoadRejectsGarbage(t *testing.T) {
	for i, in := range [][]byte{
		nil,
		[]byte("XXXX\x01"),
		[]byte("HPMS\x09"),
		[]byte("HPMS\x01\x03{}"), // truncated options
	} {
		if _, err := Load(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage snapshot accepted", i)
		}
	}
}

// TestSaveUnderConcurrentObserves snapshots repeatedly while writers keep
// ingesting: every snapshot must load cleanly (each object's record is a
// consistent point-in-time cut, taken under its lock). Meant for -race.
func TestSaveUnderConcurrentObserves(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike-1", 1, 4)
	feed(t, s, "bike-2", 2, 4)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w, id := range []string{"bike-1", "bike-2"} {
		wg.Add(1)
		go func(w int, id string) {
			defer wg.Done()
			spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, int64(w+1))
			spec.Period = period
			spec.SubTrajectories = 8
			pts := hpm.GenerateDataset(spec).Slice(4*period, 8*period)
			for i := 0; i < len(pts) && !stop.Load(); i += 7 {
				end := i + 7
				if end > len(pts) {
					end = len(pts)
				}
				if err := s.ObserveBatch(id, pts[i:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w, id)
	}
	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		for _, id := range back.Objects() {
			if _, err := back.Stats(id); err != nil {
				t.Fatalf("load %d: stats %s: %v", i, id, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike", 3, 4)
	path := filepath.Join(t.TempDir(), "fleet.hpms")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Stats("bike")
	b, err := back.Stats("bike")
	if err != nil || a.Points != b.Points || a.Trained != b.Trained || a.Patterns != b.Patterns {
		t.Fatalf("stats differ after file roundtrip: %+v vs %+v (err %v)", a, b, err)
	}
}

func TestStoreLoadRejectsTruncation(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike", 1, 4)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.2, 0.6, 0.95} {
		cut := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}
