package store

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestRemoveUnknownIsNoOp(t *testing.T) {
	s := testStore(t, Options{})
	if err := s.Remove("ghost"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, "bike", 1, 2)
	if err := s.Remove("bike"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("bike"); err != nil { // double remove
		t.Fatal(err)
	}
	if _, err := s.Now("bike"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("removed object still known: %v", err)
	}
}

// TestRemoveDurableSurvivesCrash is the satellite's headline: a Removed
// object must stay removed after a kill -9 restart, even though the WAL
// still holds its observations — the tombstone erases them on replay.
func TestRemoveDurableSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus-keep", 1, 4, 37)
	ingest(t, s, "bus-gone", 2, 4, 37)
	if err := s.Remove("bus-gone"); err != nil {
		t.Fatal(err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, err := back.Now("bus-gone"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("removed object resurrected after crash: %v", err)
	}
	st, err := back.Stats("bus-keep")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 4*period {
		t.Errorf("survivor lost points: %d, want %d", st.Points, 4*period)
	}
}

// TestRemoveDurableSurvivesCheckpoint closes the store gracefully (final
// checkpoint) and requires the snapshot itself to have dropped the
// removed object.
func TestRemoveDurableSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus-keep", 1, 3, 41)
	ingest(t, s, "bus-gone", 2, 3, 41)
	if err := s.Remove("bus-gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, err := back.Now("bus-gone"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("removed object resurrected from snapshot: %v", err)
	}
	if _, err := back.Stats("bus-keep"); err != nil {
		t.Errorf("survivor missing: %v", err)
	}
}

// TestRemoveDurableRecreate removes an object and re-creates it under
// the same id before crashing: replay must apply the tombstone, then
// rebuild only the fresh history whose offsets restarted at zero.
func TestRemoveDurableRecreate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus", 1, 3, 37)
	if err := s.Remove("bus"); err != nil {
		t.Fatal(err)
	}
	fresh := walPoints(900, 25)
	if err := s.ObserveBatch("bus", fresh); err != nil {
		t.Fatal(err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	st, err := back.Stats("bus")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != len(fresh) {
		t.Errorf("recreated object has %d points, want %d (old history leaked in)", st.Points, len(fresh))
	}
}

// TestRemoveReplayGapBeforeTombstone hand-crafts the nastiest recovery:
// a crash lands between a checkpoint's snapshot write and its segment
// reclaim, so replay walks a frozen segment holding pre-tombstone
// records whose offsets point past the (newer) snapshot's track. Those
// gaps must be skipped — the tombstone erases them anyway — while the
// post-tombstone records rebuild the fresh object.
func TestRemoveReplayGapBeforeTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Old life: 2 periods in the snapshot, one more period only in the
	// WAL — replayed records at offsets 120..179.
	ingest(t, s, "bus", 1, 2, 37)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingestMore(t, s, "bus", 1, 2, 3)
	// Death and rebirth: tombstone, then a short fresh track at offset 0.
	if err := s.Remove("bus"); err != nil {
		t.Fatal(err)
	}
	fresh := walPoints(700, 30)
	if err := s.ObserveBatch("bus", fresh); err != nil {
		t.Fatal(err)
	}
	// A checkpoint that dies between SaveFile and reclaim: the snapshot
	// now holds only the 30-point fresh track, but the frozen segment
	// with offset-120..179 records (and the tombstone) is still on disk.
	if _, err := s.wal.rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatal(err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatalf("recovery rejected pre-tombstone offset gap: %v", err)
	}
	defer back.Close()
	st, err := back.Stats("bus")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != len(fresh) {
		t.Errorf("recovered %d points, want %d", st.Points, len(fresh))
	}
}

// TestRemoveRacingObserve hammers Remove against concurrent observers:
// every acknowledged post-remove observation must land on the re-created
// object, never on the tombstoned one, and a crash replay must agree.
func TestRemoveRacingObserve(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	pts := walPoints(0, 2)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			if err := s.ObserveBatch("bus", pts); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 50; i++ {
		if err := s.Remove("bus"); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	crash(s)
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatalf("replay after remove/observe race: %v", err)
	}
	back.Close()
}
