package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"hpm"
	"hpm/internal/faultinject"
)

// durableOpts is the fast-test configuration for durable stores: WAL
// fsyncs off (tmpdir tests don't survive power loss anyway) and snappy
// retry backoff.
func durableOpts() Options {
	return Options{
		Config:            hpm.Config{Period: period},
		MinTrainPeriods:   3,
		TrainRetryBackoff: time.Millisecond,
		WALNoSync:         true,
	}
}

// crash simulates a kill -9: the WAL handle is dropped without a
// checkpoint and the store object is abandoned. Whatever reached the log
// is all a reopened store gets.
func crash(s *Store) {
	s.wal.close()
}

// ingest streams a dataset into the store in small batches, returning how
// many points were acknowledged.
func ingest(t *testing.T, s *Store, id string, seed int64, periods, batch int) int {
	t.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, seed)
	spec.Period = s.Period()
	spec.SubTrajectories = periods
	pts := hpm.GenerateDataset(spec).Points()
	acked := 0
	for off := 0; off < len(pts); off += batch {
		end := off + batch
		if end > len(pts) {
			end = len(pts)
		}
		if err := s.ObserveBatch(id, pts[off:end]); err != nil {
			t.Fatalf("%s: observe at %d: %v", id, off, err)
		}
		acked = end
	}
	return acked
}

// TestChaosCrashRecoveryNoAcknowledgedLoss is the headline chaos test:
// ingest a fleet with a checkpoint mid-stream, kill the store, reopen
// from snapshot+WAL, and require every acknowledged observation back and
// a working predictor for every trained object.
func TestChaosCrashRecoveryNoAcknowledgedLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := map[string]int{}
	acked["bus-1"] = ingest(t, s, "bus-1", 1, 4, 37)
	acked["bus-2"] = ingest(t, s, "bus-2", 2, 3, 23)

	// Snapshot mid-stream; everything after this lives only in the WAL.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	acked["bus-3"] = ingest(t, s, "bus-3", 3, 5, 41)
	acked["bus-1"] += len(ingestMore(t, s, "bus-1", 1, 4, 6))

	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	h := back.Health()
	if !h.SnapshotRestored || h.WALReplayed == 0 {
		t.Fatalf("recovery did not use snapshot+WAL: %+v", h)
	}
	if err := back.Flush(); err != nil {
		t.Fatal(err)
	}
	for id, n := range acked {
		st, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if st.Points != n {
			t.Errorf("%s: recovered %d points, acknowledged %d", id, st.Points, n)
		}
		if !st.Trained {
			t.Errorf("%s: not trained after recovery (%d periods)", id, st.Periods)
			continue
		}
		now, _ := back.Now(id)
		if _, err := back.Predict(id, now+10, 1); err != nil {
			t.Errorf("%s: predict after recovery: %v", id, err)
		}
	}
}

// ingestMore streams the dataset's periods [from, to) so a track can be
// grown in stages across crashes.
func ingestMore(t *testing.T, s *Store, id string, seed int64, from, to int) []hpm.Point {
	t.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, seed)
	spec.Period = s.Period()
	spec.SubTrajectories = to
	pts := hpm.GenerateDataset(spec).Slice(from*s.Period(), to*s.Period())
	if err := s.ObserveBatch(id, pts); err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestChaosCrashWithTornTail appends garbage to the newest WAL segment —
// a crash mid-append — and requires recovery to keep everything before
// the tear.
func TestChaosCrashWithTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := ingest(t, s, "bus", 7, 4, 19)
	crash(s)

	segs, _, err := walSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments %v, %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-length prefix followed by nothing: a torn append.
	if _, err := f.Write([]byte{0x40, 0x03, 0x62, 0x75}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer back.Close()
	st, err := back.Stats("bus")
	if err != nil || st.Points != n {
		t.Fatalf("recovered %d points (err %v), acknowledged %d", st.Points, err, n)
	}
}

// TestChaosRepeatedCrashes loses a process after every few batches, never
// once checkpointing, and still ends with the full acknowledged track.
func TestChaosRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for round := 0; round < 4; round++ {
		s, err := Open(dir, durableOpts())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pts := ingestMore(t, s, "bus", 9, round, round+1)
		total += len(pts)
		crash(s)
	}
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	st, err := back.Stats("bus")
	if err != nil || st.Points != total {
		t.Fatalf("recovered %d points (err %v), acknowledged %d", st.Points, err, total)
	}
}

// TestChaosWALAppendFailureNotAcknowledged verifies the contract that a
// failed WAL write refuses the observation instead of half-applying it.
func TestChaosWALAppendFailureNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := ingest(t, s, "bus", 5, 3, 30)

	s.SetFaultHook(faultinject.FailN(faultinject.OpWALAppend, 2, nil))
	for i := 0; i < 2; i++ {
		if err := s.Observe("bus", hpm.Pt(1, 2)); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("injected WAL failure not surfaced: %v", err)
		}
	}
	if st, _ := s.Stats("bus"); st.Points != n {
		t.Fatalf("rejected observe mutated the track: %d != %d", st.Points, n)
	}
	// The path heals once the fault clears.
	if err := s.Observe("bus", hpm.Pt(1, 2)); err != nil {
		t.Fatal(err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if st, _ := back.Stats("bus"); st.Points != n+1 {
		t.Fatalf("recovered %d points, acknowledged %d", st.Points, n+1)
	}
}

// TestChaosCheckpointFailureKeepsWAL injects a snapshot fault and
// verifies no WAL segment is reclaimed, so a crash right after the failed
// checkpoint still recovers everything.
func TestChaosCheckpointFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := ingest(t, s, "bus", 11, 3, 25)

	s.SetFaultHook(faultinject.FailN(faultinject.OpSnapshot, 1, nil))
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected snapshot failure not surfaced: %v", err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if h := back.Health(); h.SnapshotRestored {
		t.Fatal("failed checkpoint left a snapshot behind")
	}
	if st, _ := back.Stats("bus"); st.Points != n {
		t.Fatalf("recovered %d points, acknowledged %d", st.Points, n)
	}
}

func TestOpenRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus", 13, 3, 60)
	if err := s.Close(); err != nil { // final checkpoint writes the snapshot
		t.Fatal(err)
	}
	path := dir + "/" + snapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{0, len(data) / 3, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[at] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, durableOpts()); err == nil {
			t.Errorf("bit flip at %d: corrupt snapshot accepted", at)
		}
	}
	// Truncation is caught too.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, durableOpts()); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

// TestTrainPanicRecoveredAndRetried injects a panic into the first train
// attempt: the process must survive, the retry must succeed, and the
// failure must be visible in Stats/Health until Flush drains it.
func TestTrainPanicRecoveredAndRetried(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, TrainRetryBackoff: time.Millisecond})
	s.SetFaultHook(faultinject.PanicN(faultinject.OpTrain, 1))
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 21)
	spec.Period = period
	spec.SubTrajectories = 3
	if err := s.ObserveBatch("bike", hpm.GenerateDataset(spec).Points()); err != nil {
		t.Fatal(err)
	}

	err := s.Flush()
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic attempt not reported by Flush: %v", err)
	}
	st, _ := s.Stats("bike")
	if !st.Trained {
		t.Fatal("retry after panic did not train")
	}
	if st.TrainFailures != 1 || st.LastTrainError != "" {
		t.Errorf("stats after recovered panic: failures=%d lastErr=%q", st.TrainFailures, st.LastTrainError)
	}
	h := s.Health()
	if h.TrainFailures != 1 {
		t.Errorf("health total failures = %d, want 1", h.TrainFailures)
	}
	if len(h.RecentTrainErrors) != 0 {
		t.Errorf("ring not drained by Flush: %v", h.RecentTrainErrors)
	}
	now, _ := s.Now("bike")
	if _, err := s.Predict("bike", now+10, 1); err != nil {
		t.Errorf("predict after recovered panic: %v", err)
	}
}

// TestTrainRepeatedFailureKeepsServing wedges every retrain attempt and
// verifies the object keeps answering from its previous model, surfaces
// the error, and recovers once the fault clears.
func TestTrainRepeatedFailureKeepsServing(t *testing.T) {
	s := testStore(t, Options{
		MinTrainPeriods:   3,
		RetrainEvery:      2,
		TrainMaxRetries:   1,
		TrainRetryBackoff: time.Millisecond,
	})
	feed(t, s, "bike", 31, 3) // healthy initial train
	p1, _ := s.Predictor("bike")

	s.SetFaultHook(faultinject.FailN(faultinject.OpTrain, 1<<30, nil))
	ingestMore(t, s, "bike", 31, 3, 5) // crosses RetrainEvery
	if err := s.Flush(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("failed retrain not reported: %v", err)
	}

	st, _ := s.Stats("bike")
	if st.Training {
		t.Fatal("object wedged in training state")
	}
	if st.TrainFailures != 2 { // one attempt + one retry
		t.Errorf("train failures = %d, want 2", st.TrainFailures)
	}
	if st.LastTrainError == "" {
		t.Error("last train error not surfaced in stats")
	}
	if !st.Trained || st.Modeled != 3 {
		t.Fatalf("previous model lost: %+v", st)
	}
	now, _ := s.Now("bike")
	if _, err := s.Predict("bike", now+10, 1); err != nil {
		t.Errorf("predict during failing retrains: %v", err)
	}
	if p2, _ := s.Predictor("bike"); p2 != p1 {
		t.Error("failing retrain replaced the predictor")
	}

	// Fault clears: the next completed periods schedule a fresh retrain.
	s.SetFaultHook(nil)
	ingestMore(t, s, "bike", 31, 5, 7)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats("bike")
	if st.Modeled != 7 || st.LastTrainError != "" {
		t.Errorf("object did not recover: %+v", st)
	}
}

// TestTrainRetryBacksOff measures that retries are spaced by the
// configured (doubling) backoff rather than hot-looping.
func TestTrainRetryBacksOff(t *testing.T) {
	s := testStore(t, Options{
		MinTrainPeriods:   3,
		TrainMaxRetries:   2,
		TrainRetryBackoff: 30 * time.Millisecond,
	})
	s.SetFaultHook(faultinject.FailN(faultinject.OpTrain, 1<<30, nil))
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 41)
	spec.Period = period
	spec.SubTrajectories = 3
	start := time.Now()
	if err := s.ObserveBatch("bike", hpm.GenerateDataset(spec).Points()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("expected train failures")
	}
	// Two backoffs: 30ms + 60ms. Allow generous slack below the sum.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("retries completed in %v; backoff not applied", elapsed)
	}
	if st, _ := s.Stats("bike"); st.TrainFailures != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", st.TrainFailures)
	}
}

// TestTrainErrorRingBounded overflows the ring and checks it stays fixed
// size while the total keeps counting.
func TestTrainErrorRingBounded(t *testing.T) {
	s := testStore(t, Options{
		MinTrainPeriods:   1,
		TrainMaxRetries:   -1, // no retries: one failure per object
		TrainRetryBackoff: time.Millisecond,
	})
	s.SetFaultHook(faultinject.FailN(faultinject.OpTrain, 1<<30, nil))
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 51)
	spec.Period = period
	spec.SubTrajectories = 1
	pts := hpm.GenerateDataset(spec).Points()

	n := trainErrRingCap + 10
	for i := 0; i < n; i++ {
		if err := s.ObserveBatch(fmt.Sprintf("obj-%03d", i), pts); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the pool to settle without draining the ring.
	deadline := time.Now().Add(10 * time.Second)
	for s.Health().PendingTrains > 0 {
		if time.Now().After(deadline) {
			t.Fatal("trains did not settle")
		}
		time.Sleep(time.Millisecond)
	}
	h := s.Health()
	if h.TrainFailures != uint64(n) {
		t.Errorf("total failures = %d, want %d", h.TrainFailures, n)
	}
	if len(h.RecentTrainErrors) != trainErrRingCap {
		t.Errorf("ring holds %d errors, want cap %d", len(h.RecentTrainErrors), trainErrRingCap)
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush dropped the ring errors")
	}
	if len(s.Health().RecentTrainErrors) != 0 {
		t.Error("Flush did not drain the ring")
	}
}

func TestObserveRejectsNonFinite(t *testing.T) {
	s := testStore(t, Options{})
	for _, p := range []hpm.Point{
		hpm.Pt(math.NaN(), 0),
		hpm.Pt(0, math.NaN()),
		hpm.Pt(math.Inf(1), 0),
		hpm.Pt(0, math.Inf(-1)),
	} {
		if err := s.Observe("x", p); !errors.Is(err, ErrInvalidPoint) {
			t.Errorf("point %v: err = %v, want ErrInvalidPoint", p, err)
		}
	}
	// A batch with one bad point is rejected whole, before any state.
	if err := s.ObserveBatch("x", []hpm.Point{hpm.Pt(1, 2), hpm.Pt(math.NaN(), 3)}); !errors.Is(err, ErrInvalidPoint) {
		t.Errorf("mixed batch: err = %v", err)
	}
	if len(s.Objects()) != 0 {
		t.Error("rejected observes created an object")
	}
}

// TestChaosConcurrentIngestCrash hammers a durable store from several
// writers, kills it, and requires the reopened store to hold exactly each
// object's acknowledged prefix and answer queries. Run with -race.
func TestChaosConcurrentIngestCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	acked := make([]int, writers)
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, int64(100+w))
			spec.Period = period
			spec.SubTrajectories = 4
			pts := hpm.GenerateDataset(spec).Points()
			n := 0
			for off := 0; off < len(pts); off += 17 {
				end := off + 17
				if end > len(pts) {
					end = len(pts)
				}
				if err := s.ObserveBatch(fmt.Sprintf("w-%d", w), pts[off:end]); err != nil {
					break
				}
				n = end
			}
			done <- n
			_ = acked
		}(w)
	}
	for w := 0; w < writers; w++ {
		acked[w] = <-done
	}
	// One checkpoint racing nothing in particular, then crash.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if err := back.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("w-%d", w)
		st, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if st.Points != acked[w] {
			t.Errorf("%s: recovered %d points, acknowledged %d", id, st.Points, acked[w])
		}
		now, _ := back.Now(id)
		if _, err := back.Predict(id, now+10, 1); err != nil {
			t.Errorf("%s: predict after recovery: %v", id, err)
		}
	}
}

// TestDurableSyncModeRoundTrip exercises the default fsync-per-append
// path end to end (small volume; the other chaos tests run unsynced for
// speed).
func TestDurableSyncModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.WALNoSync = false
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch("bus", walPoints(0, 10)); err != nil {
		t.Fatal(err)
	}
	crash(s)
	back, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if st, _ := back.Stats("bus"); st.Points != 10 {
		t.Fatalf("recovered %d points, want 10", st.Points)
	}
}

// TestDurableCloseReopen is the graceful path: Close checkpoints, and a
// reopen needs no WAL replay at all.
func TestDurableCloseReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := ingest(t, s, "bus", 17, 4, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	h := back.Health()
	if !h.SnapshotRestored || h.WALReplayed != 0 {
		t.Fatalf("graceful reopen replayed WAL: %+v", h)
	}
	st, _ := back.Stats("bus")
	if st.Points != n || !st.Trained {
		t.Fatalf("reopened stats: %+v, want %d points trained", st, n)
	}
}

// TestChaosGroupCommitCrashNoLoss is the group-commit durability test:
// many writers in full sync mode, every ObserveBatch fsynced (possibly
// coalesced into a neighbour's group commit), then a hard crash. Zero
// acknowledged records may be missing. Sync mode plus >1 writer is
// exactly where a group-commit bug (acking before the leader's fsync)
// would lose data.
func TestChaosGroupCommitCrashNoLoss(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.WALNoSync = false // the whole point: acks must ride an fsync
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 60
	acked := make([]int, writers)
	done := make(chan struct{}, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			id := fmt.Sprintf("gc-%d", w)
			for off := 0; off < perWriter; off += 5 {
				if err := s.ObserveBatch(id, walPoints(off, 5)); err != nil {
					return
				}
				acked[w] = off + 5
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	stats := s.WALStats()
	if stats.Records == 0 || stats.Fsyncs == 0 {
		t.Fatalf("sync ingest recorded no WAL activity: %+v", stats)
	}
	crash(s)

	back, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("gc-%d", w)
		st, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s lost entirely: %v", id, err)
		}
		if st.Points != acked[w] {
			t.Errorf("%s: recovered %d points, acknowledged %d", id, st.Points, acked[w])
		}
	}
}

// TestChaosDurableFleetBatchCrash commits fleet batches (ObserveAll:
// several objects per WAL group write), crashes, and requires every
// acknowledged batch back in full — a multi-object group record must be
// all-in after recovery, and per-object order preserved.
func TestChaosDurableFleetBatchCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 12
	for r := 0; r < rounds; r++ {
		batch := []Observation{
			{ID: "fleet-a", Points: walPoints(r*3, 3)},
			{ID: "fleet-b", Points: walPoints(100+r*2, 2)},
			{ID: "fleet-a", Points: walPoints(r*3+100, 1)}, // repeated id, merged
		}
		if err := s.ObserveAll(batch); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	for id, want := range map[string]int{"fleet-a": rounds * 4, "fleet-b": rounds * 2} {
		st, err := back.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if st.Points != want {
			t.Errorf("%s: recovered %d points, acknowledged %d", id, st.Points, want)
		}
	}
	// Order check: fleet-a's merged per-round points landed in batch order.
	obj, err := back.get("fleet-a", false)
	if err != nil {
		t.Fatal(err)
	}
	wantHead := append(walPoints(0, 3), walPoints(100, 1)...)
	for i, p := range wantHead {
		if obj.track[i] != p {
			t.Fatalf("fleet-a point %d = %v, want %v (merge order broken)", i, obj.track[i], p)
		}
	}
}
