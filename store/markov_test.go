package store

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"hpm"
)

// chainBytes returns the object's Markov chain in its canonical encoding —
// the byte-identity witness the durability tests compare.
func chainBytes(t *testing.T, s *Store, id string) []byte {
	t.Helper()
	obj, err := s.get(id, false)
	if err != nil {
		t.Fatal(err)
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	if obj.predictor == nil {
		t.Fatalf("%s has no trained predictor", id)
	}
	return obj.predictor.Model().EncodeMarkov()
}

// TestMarkovSnapshotRoundTrip: a checkpointed chain must come back from
// disk bit-identical — the snapshot carries the chain blob itself, not a
// recipe for rebuilding it, so window state and escape counts survive.
func TestMarkovSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, s, "bus", 21, 4, 60)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := chainBytes(t, s, "bus")
	if len(want) == 0 {
		t.Fatal("trained object has an empty chain encoding")
	}
	if err := s.Close(); err != nil { // checkpoints on the way out
		t.Fatal(err)
	}

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := chainBytes(t, back, "bus"); !bytes.Equal(want, got) {
		t.Errorf("chain differs after snapshot round trip: %d vs %d bytes", len(want), len(got))
	}
	now, err := back.Now("bus")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.PredictMarkov("bus", now+10); err != nil {
		t.Errorf("markov predict from restored chain: %v", err)
	}
}

// TestMarkovWALReplayEquivalence: kill the process with a WAL tail past
// the last checkpoint, reopen, and require the replayed chain to equal
// the crashed process's — replay folds the tail into the chain exactly
// like the live observe path did. The tail stays under one period so no
// retrain or extend (whose outlier state is deliberately not persisted)
// fires inside the replay window.
func TestMarkovWALReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr := feed(t, s, "bus", 23, 4)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// WAL-only tail: half a period in small batches, no checkpoint after.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 23)
	spec.Period = period
	spec.SubTrajectories = 5
	tail := hpm.GenerateDataset(spec).Slice(tr.Len(), tr.Len()+period/2)
	for off := 0; off < len(tail); off += 7 {
		end := off + 7
		if end > len(tail) {
			end = len(tail)
		}
		if err := s.ObserveBatch("bus", tail[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	want := chainBytes(t, s, "bus")
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if h := back.Health(); h.WALReplayed == 0 {
		t.Fatalf("nothing replayed from the WAL: %+v", h)
	}
	if got := chainBytes(t, back, "bus"); !bytes.Equal(want, got) {
		t.Errorf("chain differs after crash + WAL replay: %d vs %d bytes", len(want), len(got))
	}
}

// TestMarkovRebuiltFromLegacySnapshot: pre-v4 snapshots carry no chain
// blob; loading one must rebuild the chain from the restored track so the
// markov path answers immediately, not only after the next retrain.
func TestMarkovRebuiltFromLegacySnapshot(t *testing.T) {
	s, err := LoadFile(filepath.Join("testdata", "snapshot_v2.hpms"))
	if err != nil {
		t.Fatalf("load v2 fixture: %v", err)
	}
	defer s.Close()
	if got := chainBytes(t, s, "fixture-trained"); len(got) == 0 {
		t.Fatal("legacy snapshot restored an empty chain: rebuild from track did not run")
	}
	now, err := s.Now("fixture-trained")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictMarkov("fixture-trained", now+10); err != nil {
		t.Errorf("markov predict after legacy restore: %v", err)
	}
}

// TestMarkovDisabledOmitsPath: a store configured with a negative markov
// order must neither fold a chain nor offer the path to routing.
func TestMarkovDisabledOmitsPath(t *testing.T) {
	s := testStore(t, Options{
		Config:          hpm.Config{Period: period, MarkovOrder: -1},
		MinTrainPeriods: 3,
	})
	defer s.Close()
	feed(t, s, "bike", 25, 4)
	if got := chainBytes(t, s, "bike"); len(got) != 0 {
		t.Errorf("disabled markov path still encoded a %d-byte chain", len(got))
	}
	now, _ := s.Now("bike")
	preds, err := s.PredictMarkov("bike", now+10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Path == hpm.PathMarkov {
			t.Errorf("disabled markov path answered a query: %+v", p)
		}
	}
}

// TestMarkovHammerConcurrent drives concurrent observes (which fold the
// chain under the object's write lock), markov predictions (which walk it
// under the read lock) and retrain-triggered chain rebuilds against one
// object. Run under -race it pins the chain's place in the store's lock
// envelope.
func TestMarkovHammerConcurrent(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 1})
	feed(t, s, "bike", 27, 4)

	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 27)
	spec.Period = period
	spec.SubTrajectories = 8
	more := hpm.GenerateDataset(spec).Slice(4*period, 8*period)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now, err := s.Now("bike")
				if err != nil {
					continue
				}
				// Errors are expected: the writer can advance the track
				// between Now and the query. The hammer is about locking.
				s.PredictMarkov("bike", now+1+i%100)
				if i%10 == 0 {
					if _, err := s.Stats("bike"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}

	// Writer: four more periods in small batches; RetrainEvery=1 swaps the
	// predictor (and rebuilds the chain) repeatedly mid-traffic.
	for off := 0; off < len(more); off += 11 {
		end := off + 11
		if end > len(more) {
			end = len(more)
		}
		if err := s.ObserveBatch("bike", more[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := chainBytes(t, s, "bike"); len(got) == 0 {
		t.Error("chain empty after hammer")
	}
}
