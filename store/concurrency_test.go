package store

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hpm"
)

// TestPredictObserveHammer drives heavy mixed traffic — concurrent point
// predictions, batch predictions, range queries, stats reads and a
// continuous observation stream with retrains enabled — against one
// object. Run under -race it pins the lock-free read path: queries share
// the object's read lock and the engine's counters are atomic, so nothing
// here may race. Counter totals are checked afterwards.
func TestPredictObserveHammer(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 2})
	feed(t, s, "bike", 9, 4)

	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 9)
	spec.Period = period
	spec.SubTrajectories = 8
	more := hpm.GenerateDataset(spec).Slice(4*period, 8*period)

	const readers = 8
	const perReader = 50
	var predicted atomic.Int64 // queries that reached a trained predictor
	var wg sync.WaitGroup
	errs := make(chan error, readers*4+4)

	// Writer: stream four more periods in small batches, so background
	// retrains fire and predictor swaps land mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(more); i += 15 {
			end := i + 15
			if end > len(more) {
				end = len(more)
			}
			if err := s.ObserveBatch("bike", more[i:end]); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				// The writer may advance the track between Now and the
				// query, invalidating the query time; such calls fail
				// validation before touching any counter, so retrying
				// with a fresh now keeps the totals below exact.
				for {
					now, err := s.Now("bike")
					if err != nil {
						errs <- err
						return
					}
					switch r % 4 {
					case 0: // near: FQP path
						_, err = s.Predict("bike", now+20, 1)
					case 1: // distant: BQP path
						_, err = s.Predict("bike", now+80, 1)
					case 2: // batch across both paths
						_, err = s.PredictBatch("bike", []int{now + 20, now + 80}, 2)
					default: // range + stats read
						_, err = s.PredictRange("bike", now+20, now+24)
						if _, serr := s.Stats("bike"); serr != nil {
							errs <- serr
							return
						}
					}
					if err != nil && (strings.Contains(err.Error(), "not after current time") ||
						strings.Contains(err.Error(), "invalid for current time")) {
						continue
					}
					if err != nil {
						errs <- err
						return
					}
					break
				}
				predicted.Add(1)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	if predicted.Load() != readers*perReader {
		t.Fatalf("only %d of %d reader iterations completed", predicted.Load(), readers*perReader)
	}

	// Every Predict/PredictBatch query must appear in the per-object
	// counters, which survive the retrains the writer triggered. Readers
	// 0,1 issue 1 query per iteration, reader 2 issues 2 (a 2-time batch),
	// reader 3 issues none (PredictRange is uncounted).
	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	perGroup := perReader * (readers / 4)
	want := perGroup*2 + perGroup*2 // readers 0+1, plus reader group 2's batches
	if st.Queries.Queries != want {
		t.Errorf("accumulated queries = %d, want %d (stats: %+v)", st.Queries.Queries, want, st.Queries)
	}
	sum := st.Queries.Forward + st.Queries.Backward + st.Queries.Markov + st.Queries.Fallback + st.Queries.Unanswered
	if st.Queries.Queries != sum {
		t.Errorf("partition identity violated: %+v", st.Queries)
	}
}

// TestStatsSurviveRetrain pins the counter-banking: queries answered by a
// predictor that is later retired by a retrain must still appear in the
// object's stats afterwards.
func TestStatsSurviveRetrain(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3, RetrainEvery: 1, SynchronousTraining: true})
	feed(t, s, "bike", 11, 3)
	now, _ := s.Now("bike")
	const before = 4
	for i := 0; i < before; i++ {
		if _, err := s.Predict("bike", now+5+i, 1); err != nil {
			t.Fatal(err)
		}
	}

	// One more period forces a synchronous retrain, swapping the predictor.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 11)
	spec.Period = period
	spec.SubTrajectories = 4
	more := hpm.GenerateDataset(spec).Slice(3*period, 4*period)
	if err := s.ObserveBatch("bike", more); err != nil {
		t.Fatal(err)
	}

	now, _ = s.Now("bike")
	if _, err := s.Predict("bike", now+5, 1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats("bike")
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Queries != before+1 {
		t.Errorf("queries after retrain = %d, want %d (stats: %+v)", st.Queries.Queries, before+1, st.Queries)
	}
}

// TestStorePredictBatchMatchesPredict checks the store-level batch API
// returns exactly what per-time Predicts would, on a quiet store.
func TestStorePredictBatchMatchesPredict(t *testing.T) {
	s := testStore(t, Options{MinTrainPeriods: 3})
	feed(t, s, "bike", 13, 4)
	now, _ := s.Now("bike")
	tqs := []int{now + 3, now + 10, now + 80}
	batch, err := s.PredictBatch("bike", tqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(tqs) {
		t.Fatalf("batch has %d entries, want %d", len(batch), len(tqs))
	}
	for i, tq := range tqs {
		want, err := s.Predict("bike", tq, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("tq=%d: %d vs %d predictions", tq, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Errorf("tq=%d pred %d: %+v != %+v", tq, j, batch[i][j], want[j])
			}
		}
	}
	if _, err := s.PredictBatch("ghost", tqs, 1); err == nil {
		t.Error("unknown object accepted")
	}
}
