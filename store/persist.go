package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hpm"
)

// Snapshot persistence: a Store serializes its options, every object's
// track, and every trained model, so a service can restart without
// re-mining its fleet. Format: magic+version, options JSON, then one
// length-prefixed record per object.

const (
	snapshotMagic = "HPMS"
	// snapshotVersion 2 added the per-object track base — the absolute
	// timestamp of track[0], nonzero once the retention policy trims
	// history. Version-1 snapshots load with base 0. Version 3 is taken by
	// the sharded-manifest marker (manifestVersion); version 4 appends a
	// length-prefixed Markov chain blob after each trained object's model.
	// Version-1/2 records load with the chain re-folded from the track.
	snapshotVersion = 4
)

// Save writes a snapshot of the whole store in the single-file (v2)
// format. Each object is captured under its read lock — concurrent
// queries are never blocked, and that object's writers wait only for the
// capture, not for the encode or the I/O behind it.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	oj, err := json.Marshal(s.opts)
	if err != nil {
		return fmt.Errorf("store: encode options: %w", err)
	}
	writeBytes(bw, oj)

	ids := s.Objects()
	writeUvarint(bw, uint64(len(ids)))
	for _, id := range ids {
		obj, err := s.get(id, false)
		if err != nil {
			continue // removed concurrently; the count is a cap, see Load
		}
		snap, err := snapshotObject(id, obj)
		if err != nil {
			return err
		}
		if err := snap.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// objectSnapshot is one object's persisted state, captured atomically
// under the object's read lock so it can be encoded and written without
// holding any lock at all. The track slice aliases the live backing
// array, which is safe: appends never mutate [:len], and trims replace
// the slice with a fresh copy instead of shifting in place. The model is
// the one thing that mutates in place (Extend, under the write lock), so
// it is serialized into its own buffer during the capture.
type objectSnapshot struct {
	id           string
	base         int
	modeled      int
	sinceRetrain int
	track        []hpm.Point
	model        []byte // serialized predictor; nil when untrained
	chain        []byte // serialized Markov chain; nil when disabled
}

// snapshotObject captures one object's persisted state under its read
// lock. Queries against the object proceed concurrently; its writers are
// blocked only for the capture itself (the model serialize), never for
// track encoding or file I/O.
func snapshotObject(id string, obj *object) (objectSnapshot, error) {
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	snap := objectSnapshot{
		id:           id,
		base:         obj.base,
		modeled:      obj.modeled,
		sinceRetrain: obj.sinceRetrain,
		track:        obj.track,
	}
	if obj.predictor != nil {
		var buf bytes.Buffer
		if err := obj.predictor.Save(&buf); err != nil {
			return snap, fmt.Errorf("store: snapshot model for %q: %w", id, err)
		}
		snap.model = buf.Bytes()
		snap.chain = obj.predictor.Model().EncodeMarkov()
	}
	return snap, nil
}

// write encodes the captured object in the format shared by v2 snapshot
// streams and v3 segment files. Runs without any lock.
func (snap objectSnapshot) write(bw *bufio.Writer) error {
	writeBytes(bw, []byte(snap.id))
	writeUvarint(bw, uint64(snap.base))
	writeUvarint(bw, uint64(len(snap.track)))
	var fb [8]byte
	for _, p := range snap.track {
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(p.X))
		bw.Write(fb[:])
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(p.Y))
		bw.Write(fb[:])
	}
	writeUvarint(bw, uint64(snap.modeled))
	writeUvarint(bw, uint64(snap.sinceRetrain))
	if snap.model == nil {
		return writeByteChecked(bw, 0)
	}
	if err := writeByteChecked(bw, 1); err != nil {
		return err
	}
	// The model stream is self-delimiting (its own magic and trailer), so
	// it nests directly.
	if _, err := bw.Write(snap.model); err != nil {
		return err
	}
	// v4: the Markov chain rides behind the model, length-prefixed; an
	// empty blob means the markov path was disabled at capture time.
	writeBytes(bw, snap.chain)
	return nil
}

// Load reads a snapshot written by Save and returns a ready store.
func Load(r io.Reader) (*Store, error) {
	s, err := loadStream(r)
	if err != nil {
		return nil, err
	}
	// Tracks and models were restored without passing through the observe
	// path; recompute the fleet index from the recovered state.
	s.rebuildIndex()
	return s, nil
}

// loadStream is Load without the index rebuild, for callers (Open) that
// replay a WAL on top and rebuild once at the end. On a decode error the
// partially built store is closed — its background machinery (train
// pool, probe channel) must not outlive the failed load.
func loadStream(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if string(head[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot (magic %q)", head[:len(snapshotMagic)])
	}
	version := int(head[len(snapshotMagic)])
	if version < 1 || version > snapshotVersion || version == manifestVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	oj, err := readBytes(br, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("store: read options: %w", err)
	}
	var opts Options
	if err := json.Unmarshal(oj, &opts); err != nil {
		return nil, fmt.Errorf("store: decode options: %w", err)
	}
	s, err := New(opts)
	if err != nil {
		return nil, err
	}

	count, err := binary.ReadUvarint(br)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("store: read object count: %w", err)
	}
	if count > 1<<24 {
		s.Close()
		return nil, fmt.Errorf("store: implausible object count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		if err := readObject(br, s, version); err != nil {
			// A Save racing Remove can legitimately write fewer records
			// than counted; only clean EOF at a record boundary is fine.
			if err == io.EOF {
				break
			}
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func readObject(br *bufio.Reader, s *Store, version int) error {
	idb, err := readBytes(br, 4096)
	if err != nil {
		return err
	}
	var base uint64
	if version >= 2 {
		if base, err = binary.ReadUvarint(br); err != nil {
			return fmt.Errorf("store: read track base: %w", err)
		}
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: read track length: %w", err)
	}
	if n > 1<<30 {
		return fmt.Errorf("store: implausible track length %d", n)
	}
	track := make([]hpm.Point, n)
	var fb [16]byte
	for i := range track {
		if _, err := io.ReadFull(br, fb[:]); err != nil {
			return fmt.Errorf("store: read track: %w", err)
		}
		track[i] = hpm.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(fb[0:])),
			math.Float64frombits(binary.LittleEndian.Uint64(fb[8:])),
		)
	}
	modeled, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: read modeled: %w", err)
	}
	sinceRetrain, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("store: read sinceRetrain: %w", err)
	}
	trained, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("store: read trained flag: %w", err)
	}
	obj := s.newObject(string(idb))
	obj.base = int(base)
	obj.track = track
	obj.modeled = int(modeled)
	obj.sinceRetrain = int(sinceRetrain)
	if trained == 1 {
		p, err := hpm.Load(br)
		if err != nil {
			return fmt.Errorf("store: load model for %q: %w", idb, err)
		}
		obj.predictor = p
		var chain []byte
		if version >= 4 {
			if chain, err = readBytes(br, 1<<30); err != nil {
				return fmt.Errorf("store: read markov chain for %q: %w", idb, err)
			}
		}
		if len(chain) == 0 || p.Model().LoadMarkov(chain) != nil {
			// Pre-v4 record, markov disabled at capture, or the chain
			// configuration changed since: re-fold the retained track (a
			// no-op when the path is disabled now).
			p.Model().RebuildMarkov(obj.base, obj.track)
		}
	}
	// Populate the shard directly: replay and load run before the store
	// is shared, but take the shard lock anyway to keep the invariant.
	sh := s.shard(string(idb))
	sh.mu.Lock()
	sh.objects[string(idb)] = obj
	sh.mu.Unlock()
	return nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	bw.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func writeBytes(bw *bufio.Writer, b []byte) {
	writeUvarint(bw, uint64(len(b)))
	bw.Write(b)
}

func writeByteChecked(bw *bufio.Writer, b byte) error {
	return bw.WriteByte(b)
}

func readBytes(br *bufio.Reader, max uint64) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("store: length %d exceeds limit %d", n, max)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}
