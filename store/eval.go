package store

import (
	"hpm"
	"hpm/internal/evalq"
	"hpm/internal/spatial"
)

// Online prequential evaluation (test-then-train): every prediction a
// query serves is parked in the object's bounded evalq ring, and every
// acknowledged observation is ground truth for the parked predictions
// whose query timestamp it covers. The resulting per-horizon × per-path
// accuracy counters reproduce the paper's accuracy-vs-query-time figures
// on live traffic, drive the drift-triggered early retrain
// (Options.DriftThreshold) and the adaptive fallback routing
// (Options.AdaptiveRouting), and surface through EvalStats, FleetStats
// and serve's /metrics endpoint.

// recordPrediction parks a query's top answer in the object's evaluator,
// labeled with the ROUTE that served it — the path the query was sent
// down — not the path that ultimately produced the answer. The two
// differ when a route declines and falls through (the markov chain
// falling back to the motion function, the pattern dispatch falling
// through to the chain): the fall-through answer is part of what that
// route delivers, so it must score against the route's cell. Labeling by
// answering path instead would condition each cell on "the path chose to
// answer" — a sunny-day population that systematically overstates a
// selective path, and routing built on it sends traffic to a path whose
// declines it has never been charged for. (The engine's own per-path
// query counters still count answering paths; that is the traffic view,
// this is the routing view.) Called with obj.mu at least read-locked;
// the tracker has its own lock, so concurrent queries record without
// write-locking the object.
func (s *Store) recordPrediction(obj *object, now, tq int, route evalq.Path, preds []hpm.Prediction, err error) {
	if err != nil || len(preds) == 0 || obj.eval == nil {
		return
	}
	obj.eval.Record(now, tq, route, preds[0].Location)
}

// patternPath is the pattern route label for a query: the paper's hybrid
// dispatch answers near queries with FQP and distant ones with BQP.
// Called with obj.mu at least read-locked and obj.predictor non-nil.
func (s *Store) patternPath(obj *object, now, tq int) evalq.Path {
	if obj.predictor.IsDistant(now, tq) {
		return evalq.PathBackward
	}
	return evalq.PathForward
}

// scoreLocked scores the just-appended observations against the object's
// outstanding predictions and, when the drift EWMA crosses the threshold,
// schedules an early retrain through the normal training pool. Called
// with obj.mu held for writing, right after track grew past base.
func (s *Store) scoreLocked(obj *object, base int, pts []hpm.Point) {
	scored, ewma, n := obj.eval.Observe(base, pts)
	if scored == 0 || s.opts.DriftThreshold <= 0 {
		return
	}
	if ewma <= s.opts.DriftThreshold || n < s.opts.DriftMinScores {
		return
	}
	if obj.predictor == nil || obj.training {
		// Untrained objects have nothing to refresh; an in-flight train
		// will absorb the new data when it swaps in.
		return
	}
	completed := (obj.base + len(obj.track)) / s.opts.Config.Period
	if completed < s.opts.MinTrainPeriods {
		return
	}
	// Trainer-saturation valve: drift retrains are opportunistic quality
	// work, so when the background pool is already backlogged they yield
	// rather than pile on. The EWMA is deliberately NOT reset here — the
	// drift signal stays hot and re-fires on a later observation once the
	// backlog clears.
	s.trainMu.Lock()
	backlogged := s.pending >= s.opts.MaxTrainBacklog
	s.trainMu.Unlock()
	if backlogged {
		s.driftSuppressed.Add(1)
		return
	}
	// Reset first so the retrained model starts with a clean signal and
	// one straggling error cannot immediately re-fire.
	obj.eval.ResetEWMA()
	obj.driftRetrains++
	s.driftRetrains.Add(1)
	// Synchronous-training failures already land in the object's stats;
	// an ingest should not fail because a quality-driven retrain did.
	if s.opts.IncrementalRetrain {
		// The model may merely be stale: absorb the pending periods through
		// the incremental path first. A model that drifts while already
		// current gets the batch rebuild — the divergence backstop.
		if newPeriods := completed - obj.modeled; newPeriods > 0 {
			_ = s.extendLocked(obj, completed, newPeriods)
			return
		}
	}
	_ = s.startTrain(obj, completed)
}

// routePath picks this query's answering path: the pattern path the
// hybrid dispatch would use (FQP or BQP by horizon), unless adaptive
// routing has measured another path — the Markov chain or the motion
// fallback — strictly ahead at the query's horizon with enough samples.
// Called with obj.mu at least read-locked and obj.predictor non-nil.
func (s *Store) routePath(obj *object, now, tq int) evalq.Path {
	pat := s.patternPath(obj, now, tq)
	if !s.opts.AdaptiveRouting || obj.eval == nil || tq <= now {
		return pat
	}
	min := uint64(s.opts.AdaptiveMinSamples)
	if obj.predictor.Model().MarkovEnabled() {
		return obj.eval.BestPath(tq-now, []evalq.Path{pat, evalq.PathMarkov, evalq.PathFallback}, min)
	}
	return obj.eval.BestPath(tq-now, []evalq.Path{pat, evalq.PathFallback}, min)
}

// PredictFallback answers a query with the motion-function fallback
// alone, bypassing the pattern paths. Shadow-scoring it alongside Predict
// feeds the evaluator the per-path comparison the paper makes offline:
// the fallback's answer is parked and scored like any other, so the
// fallback column of the accuracy matrix fills even while the pattern
// paths answer the real traffic.
func (s *Store) PredictFallback(id string, tq int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	now := obj.base + len(obj.track) - 1
	preds, err := obj.predictor.PredictFallback(recent, tq)
	s.recordPrediction(obj, now, tq, evalq.PathFallback, preds, err)
	return preds, err
}

// PredictPattern answers a query through the hybrid pattern dispatch
// alone (FQP or BQP by horizon, with its built-in markov/motion
// fall-through), ignoring adaptive routing. Shadow-scoring it keeps the
// pattern columns of the accuracy matrix filling even when routing has
// moved the real traffic to another path — without it, a path that loses
// once could never be measured winning again.
func (s *Store) PredictPattern(id string, tq, k int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	now := obj.base + len(obj.track) - 1
	preds, err := obj.predictor.Predict(recent, tq, k)
	s.recordPrediction(obj, now, tq, s.patternPath(obj, now, tq), preds, err)
	return preds, err
}

// PredictMarkov answers a query from the object's Markov region-
// transition chain alone (motion fallback when the chain declines),
// bypassing the pattern paths. Like PredictFallback, its answers are
// parked and scored, so shadow calls fill the markov column of the
// accuracy matrix — the measurements adaptive routing decides by — even
// while other paths answer the real traffic.
func (s *Store) PredictMarkov(id string, tq int) ([]hpm.Prediction, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return nil, err
	}
	obj.mu.RLock()
	defer obj.mu.RUnlock()
	recent, err := s.recentLocked(obj)
	if err != nil {
		return nil, err
	}
	now := obj.base + len(obj.track) - 1
	preds, err := obj.predictor.PredictMarkov(recent, tq)
	s.recordPrediction(obj, now, tq, evalq.PathMarkov, preds, err)
	return preds, err
}

// EvalStats returns one object's online evaluation summary. A store with
// evaluation disabled returns an empty summary with stable (all-zero)
// cells.
func (s *Store) EvalStats(id string) (evalq.Summary, error) {
	obj, err := s.get(id, false)
	if err != nil {
		return evalq.Summary{}, err
	}
	if obj.eval == nil {
		return evalq.Summarize(s.opts.Eval, evalq.Agg{}), nil
	}
	return obj.eval.Snapshot(), nil
}

// EvalConfig returns the normalized evaluator configuration (buckets, hit
// distance, ring bound) shared by every object's tracker.
func (s *Store) EvalConfig() evalq.Config { return s.opts.Eval }

// FleetStats is the store-wide operational summary: the fleet shape, the
// durable-ingest counters, training health, aggregate query traffic by
// answering path, and the merged online-evaluation matrix.
type FleetStats struct {
	Objects int `json:"objects"`
	Trained int `json:"trained"`
	// PendingTrains counts scheduled background trains not yet swapped
	// in; TrainFailures every failed background attempt since start;
	// DriftRetrains the retrains the drift EWMA triggered early.
	PendingTrains int    `json:"pendingTrains"`
	TrainFailures uint64 `json:"trainFailures"`
	DriftRetrains uint64 `json:"driftRetrains"`
	// DriftSuppressed counts drift retrains the saturation valve skipped
	// because the training pool's backlog exceeded MaxTrainBacklog.
	DriftSuppressed uint64 `json:"driftSuppressed"`
	// State mirrors Health: the degradation state machine's position, the
	// failed-group-commit count, and completed degrade/recover cycles.
	State      string `json:"state"`
	Degraded   bool   `json:"degraded"`
	WALErrors  uint64 `json:"walErrors"`
	Recoveries uint64 `json:"recoveries"`
	// Trains and Extends count model updates by path since start (every
	// train attempt counts); TrainSeconds and ExtendSeconds are the
	// cumulative wall-clock each path consumed — the live view of the
	// batch-vs-incremental retrain cost.
	Trains        uint64  `json:"trains"`
	Extends       uint64  `json:"extends"`
	TrainSeconds  float64 `json:"trainSeconds"`
	ExtendSeconds float64 `json:"extendSeconds"`
	WAL           WALStats
	// Checkpoints counts completed checkpoints; CheckpointSeconds and
	// CheckpointObjects the cumulative wall-clock and objects re-encoded
	// across them (incremental checkpoints re-encode only dirty shards, so
	// objects-per-checkpoint tracks the dirty fraction, not the fleet).
	// SnapshotBytes is the on-disk size of the current snapshot (manifest
	// plus live segments); LastCheckpoint describes the most recent one.
	Checkpoints       uint64          `json:"checkpoints"`
	CheckpointSeconds float64         `json:"checkpointSeconds"`
	CheckpointObjects uint64          `json:"checkpointObjects"`
	SnapshotBytes     uint64          `json:"snapshotBytes"`
	LastCheckpoint    *CheckpointInfo `json:"lastCheckpoint,omitempty"`
	// Queries sums every object's query counters, including counters
	// banked from predictors retired by retrains.
	Queries hpm.QueryStats
	Eval    evalq.Summary
	// FleetIndex reports whether the predictive spatial index is enabled;
	// Spatial is its shape and traffic counters (zero when disabled).
	FleetIndex bool          `json:"fleetIndex"`
	Spatial    spatial.Stats `json:"spatial"`
}

// FleetStats aggregates across every object. Shards are visited one at a
// time; objects added or removed mid-walk may or may not be counted, like
// any concurrent summary.
func (s *Store) FleetStats() FleetStats {
	var fs FleetStats
	var agg evalq.Agg
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		objs := make([]*object, 0, len(sh.objects))
		for _, obj := range sh.objects {
			objs = append(objs, obj)
		}
		sh.mu.RUnlock()
		for _, obj := range objs {
			fs.Objects++
			obj.mu.RLock()
			fs.Queries = fs.Queries.Add(obj.queries)
			if obj.predictor != nil {
				fs.Trained++
				fs.Queries = fs.Queries.Add(obj.predictor.QueryStats())
			}
			obj.mu.RUnlock()
			if obj.eval != nil {
				obj.eval.MergeInto(&agg)
			}
		}
	}
	fs.Eval = evalq.Summarize(s.opts.Eval, agg)
	fs.WAL = s.WALStats()
	fs.Checkpoints = s.checkpoints.Load()
	fs.CheckpointSeconds = float64(s.checkpointNanos.Load()) / 1e9
	fs.CheckpointObjects = s.checkpointObjs.Load()
	fs.SnapshotBytes = s.snapshotBytes.Load()
	fs.LastCheckpoint = s.lastCheckpoint.Load()
	if s.index != nil {
		fs.FleetIndex = true
		fs.Spatial = s.index.Stats()
	}
	fs.DriftRetrains = s.driftRetrains.Load()
	fs.DriftSuppressed = s.driftSuppressed.Load()
	fs.State = s.State()
	fs.Degraded = s.Degraded()
	fs.WALErrors = s.walErrors.Load()
	fs.Recoveries = s.recoveries.Load()
	fs.Trains = s.trains.Load()
	fs.Extends = s.extends.Load()
	fs.TrainSeconds = float64(s.trainNanos.Load()) / 1e9
	fs.ExtendSeconds = float64(s.extendNanos.Load()) / 1e9
	s.trainMu.Lock()
	fs.PendingTrains = s.pending
	fs.TrainFailures = s.errTotal
	s.trainMu.Unlock()
	return fs
}
