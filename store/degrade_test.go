package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hpm"
	"hpm/internal/faultinject"
	"hpm/internal/spatial"
)

// degradeOpts is durableOpts with fsyncs ON (the sync fault points only
// fire in sync mode) and the probe effectively disabled, so tests observe
// the degraded state without racing an auto-recovery.
func degradeOpts() Options {
	o := durableOpts()
	o.WALNoSync = false
	o.DegradeAfter = 2
	o.ProbeInterval = time.Hour
	return o
}

// forever is a FailN budget that never runs out within a test.
const forever = 1 << 30

func TestChaosDegradeOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, degradeOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := ingest(t, s, "bus-1", 1, 4, 37)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// From here every fsync fails. The bytes still land in the segment, so
	// nothing is torn — this is the "disk stops flushing" failure mode.
	s.SetFaultHook(faultinject.FailN(faultinject.OpWALSyncError, forever, nil))
	var lastErr error
	for i := 0; i < degradeOpts().DegradeAfter; i++ {
		if lastErr = s.ObserveBatch("bus-1", []hpm.Point{hpm.Pt(float64(i), 0)}); lastErr == nil {
			t.Fatalf("observe %d acknowledged despite failed fsync", i)
		}
	}
	if !s.Degraded() {
		t.Fatalf("store not degraded after %d consecutive sync failures", degradeOpts().DegradeAfter)
	}
	// The appender whose flush tripped the threshold sees ErrDegraded too:
	// the state flips before the commit's waiters are released.
	if !errors.Is(lastErr, ErrDegraded) {
		t.Errorf("tripping observe error = %v, want ErrDegraded", lastErr)
	}

	// Writes of every flavor now fail fast, typed.
	if err := s.Observe("bus-1", hpm.Pt(1, 1)); !errors.Is(err, ErrDegraded) {
		t.Errorf("Observe while degraded: %v, want ErrDegraded", err)
	}
	if err := s.ObserveAll([]Observation{{ID: "bus-2", Points: []hpm.Point{hpm.Pt(0, 0)}}}); !errors.Is(err, ErrDegraded) {
		t.Errorf("ObserveAll while degraded: %v, want ErrDegraded", err)
	}
	if err := s.Remove("bus-1"); !errors.Is(err, ErrDegraded) {
		t.Errorf("Remove while degraded: %v, want ErrDegraded", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Checkpoint while degraded: %v, want ErrDegraded", err)
	}

	// Reads keep serving from memory, untouched.
	st, err := s.Stats("bus-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != acked {
		t.Errorf("degraded store lost in-memory points: %d, acked %d", st.Points, acked)
	}
	now, _ := s.Now("bus-1")
	if _, err := s.Predict("bus-1", now+10, 1); err != nil {
		t.Errorf("predict while degraded: %v", err)
	}

	h := s.Health()
	if h.State != "degraded" || !h.Degraded || h.Degrades != 1 {
		t.Errorf("health = %+v, want degraded once", h)
	}
	if h.WALErrors < uint64(degradeOpts().DegradeAfter) || h.LastWALError == "" {
		t.Errorf("health did not record the WAL failures: %+v", h)
	}

	// Close while degraded must not wedge, and must say it skipped the
	// final checkpoint (the disk is still refusing durable writes).
	if err := s.Close(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Close while degraded: %v, want ErrDegraded", err)
	}

	// Everything acknowledged is on disk: the failed-fsync records were
	// never applied, the acked ones replay.
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	st, err = back.Stats("bus-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points < acked {
		t.Errorf("reopened with %d points, acknowledged %d", st.Points, acked)
	}
}

func TestChaosDiskFullDegradesImmediately(t *testing.T) {
	opts := degradeOpts()
	opts.DegradeAfter = 1000 // only the ENOSPC/torn-write path may degrade
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.SetFaultHook(nil); s.Close() }()
	ingest(t, s, "bus-1", 1, 4, 37)

	enospc := fmt.Errorf("write wal segment: %w", syscall.ENOSPC)
	s.SetFaultHook(faultinject.FailN(faultinject.OpDiskFull, forever, enospc))
	err = s.Observe("bus-1", hpm.Pt(0, 0))
	if err == nil {
		t.Fatal("observe acknowledged on a full disk")
	}
	if !s.Degraded() {
		t.Fatal("single ENOSPC write failure did not degrade immediately")
	}
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("error = %v, want ErrDegraded wrapping ENOSPC", err)
	}
}

// TestChaosKillWhileDegraded crashes a degraded store and requires a clean
// reopen with every acknowledged observation intact: the damaged segment is
// the newest on disk, which replay handles tolerantly.
func TestChaosKillWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, degradeOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := ingest(t, s, "bus-1", 1, 4, 37)
	s.SetFaultHook(faultinject.FailN(faultinject.OpDiskFull, forever, syscall.ENOSPC))
	if err := s.Observe("bus-1", hpm.Pt(0, 0)); err == nil {
		t.Fatal("observe acknowledged on a full disk")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	crash(s)

	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatalf("reopen after kill-while-degraded: %v", err)
	}
	defer back.Close()
	if back.Degraded() {
		t.Error("fresh open started degraded")
	}
	if err := back.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := back.Stats("bus-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != acked {
		t.Errorf("recovered %d points, acknowledged %d", st.Points, acked)
	}
	now, _ := back.Now("bus-1")
	if _, err := back.Predict("bus-1", now+10, 1); err != nil {
		t.Errorf("predict after recovery: %v", err)
	}
}

// TestChaosRecoverZeroAckedLoss runs the full degrade → probe → recover
// cycle: one injected fsync failure flips the store read-only, the probe
// finds the disk healthy again, recovery rotates the WAL and checkpoints,
// and writes resume — with every acknowledged observation surviving a
// crash after the fact.
func TestChaosRecoverZeroAckedLoss(t *testing.T) {
	dir := t.TempDir()
	opts := degradeOpts()
	opts.DegradeAfter = 1
	opts.ProbeInterval = 5 * time.Millisecond
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	acked := ingest(t, s, "bus-1", 1, 4, 37)

	// Exactly one fsync fails; the probe's next look finds the disk fine.
	s.SetFaultHook(faultinject.FailN(faultinject.OpWALSyncError, 1, nil))
	if err := s.Observe("bus-1", hpm.Pt(0, 0)); err == nil {
		t.Fatal("observe acknowledged through the failed fsync")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after fsync failure with DegradeAfter=1")
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered; health %+v", s.Health())
		}
		time.Sleep(time.Millisecond)
	}
	h := s.Health()
	if h.State != "healthy" || h.Recoveries != 1 || h.Degrades != 1 {
		t.Errorf("post-recovery health = %+v", h)
	}

	// Writes are back, and everything acknowledged before, during (there
	// was nothing — every degraded write errored) and after the outage
	// survives a crash. Recovery checkpointed, so the never-acknowledged
	// record whose fsync failed is gone from disk too: the count is exact.
	acked += len(ingestMore(t, s, "bus-1", 1, 4, 6))
	crash(s)
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if !back.Health().SnapshotRestored {
		t.Error("recovery checkpoint left no snapshot")
	}
	st, err := back.Stats("bus-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != acked {
		t.Errorf("recovered %d points, acknowledged %d", st.Points, acked)
	}
}

// TestChaosDiskFullDuringCheckpoint fails a snapshot write mid-checkpoint
// and requires the previous snapshot and the WAL to remain authoritative:
// the store keeps serving and writing, and a crash afterwards loses
// nothing acknowledged.
func TestChaosDiskFullDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	acked := ingest(t, s, "bus-1", 1, 4, 37)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	acked += len(ingestMore(t, s, "bus-1", 1, 4, 6))

	s.SetFaultHook(faultinject.FailN(faultinject.OpDiskFull, 1, syscall.ENOSPC))
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded through a full disk")
	}
	// A failed snapshot is not a failed WAL: the store stays healthy and
	// writable (the WAL segments the snapshot would have reclaimed are
	// still there, still authoritative).
	if s.Degraded() {
		t.Fatal("failed checkpoint degraded the store")
	}
	acked += len(ingestMore(t, s, "bus-1", 1, 6, 7))

	crash(s)
	back, err := Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	h := back.Health()
	if !h.SnapshotRestored || h.WALReplayed == 0 {
		t.Fatalf("recovery did not use the previous snapshot + WAL: %+v", h)
	}
	st, err := back.Stats("bus-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != acked {
		t.Errorf("recovered %d points, acknowledged %d", st.Points, acked)
	}
}

// TestChaosSyncLatencyNoDegrade pins that a slow disk is not a failed
// disk: delayed fsyncs that still succeed must not trip the state machine.
func TestChaosSyncLatencyNoDegrade(t *testing.T) {
	opts := degradeOpts()
	opts.DegradeAfter = 1
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetFaultHook(faultinject.DelayN(faultinject.OpWALSyncLatency, -1, 2*time.Millisecond))
	ingest(t, s, "bus-1", 1, 2, 30)
	if s.Degraded() {
		t.Error("slow fsyncs degraded the store")
	}
	if h := s.Health(); h.WALErrors != 0 {
		t.Errorf("slow fsyncs counted as errors: %+v", h)
	}
}

// TestChaosFleetIndexServesWhileDegraded: the fleet spatial index answers
// range and kNN queries from memory while the store refuses writes.
func TestChaosFleetIndexServesWhileDegraded(t *testing.T) {
	opts := degradeOpts()
	opts.FleetIndex = &spatial.Config{CellSize: 50}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.SetFaultHook(nil); s.Close() }()
	ingest(t, s, "bus-1", 1, 4, 37)
	ingest(t, s, "bus-2", 2, 4, 37)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s.SetFaultHook(faultinject.FailN(faultinject.OpDiskFull, forever, syscall.ENOSPC))
	if err := s.Observe("bus-1", hpm.Pt(0, 0)); !errors.Is(err, ErrDegraded) && err == nil {
		t.Fatal("observe acknowledged on a full disk")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}

	rect := hpm.Rect{Min: hpm.Pt(-1e6, -1e6), Max: hpm.Pt(1e6, 1e6)}
	res, err := s.QueryRange(rect, 10)
	if err != nil {
		t.Fatalf("range query while degraded: %v", err)
	}
	if len(res) != 2 {
		t.Errorf("range query found %d objects, want 2", len(res))
	}
	near, err := s.QueryNearest(hpm.Pt(0, 0), 1, 10)
	if err != nil {
		t.Fatalf("kNN query while degraded: %v", err)
	}
	if len(near) != 1 {
		t.Errorf("kNN returned %d results, want 1", len(near))
	}
}

// TestChaosDegradeUnderConcurrentIngest degrades the store under write
// pressure from many goroutines and requires (a) no hangs, and (b) the
// acknowledgment barrier per object: exactly the acked points are applied.
func TestChaosDegradeUnderConcurrentIngest(t *testing.T) {
	opts := degradeOpts()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	acked := make([]int, writers)
	var ackedBatches atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("bus-%d", g)
			spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, int64(g+1))
			spec.Period = s.Period()
			spec.SubTrajectories = 8
			pts := hpm.GenerateDataset(spec).Points()
			for off := 0; off < len(pts); off += 7 {
				end := off + 7
				if end > len(pts) {
					end = len(pts)
				}
				if err := s.ObserveBatch(id, pts[off:end]); err != nil {
					return // not acknowledged; stop like a shed client would
				}
				acked[g] = end
				ackedBatches.Add(1)
			}
		}(g)
	}
	// Pull the disk out once every writer has at least one acknowledged
	// batch, so the test exercises mid-stream failure, not a dead start.
	for ackedBatches.Load() < writers {
		time.Sleep(100 * time.Microsecond)
	}
	s.SetFaultHook(faultinject.FailN(faultinject.OpWALSyncError, forever, nil))
	wg.Wait()

	// Writers stop at their first error, so the concurrent phase may end
	// one failure short of DegradeAfter; a couple more writes settle it.
	for i := 0; i < 2*degradeOpts().DegradeAfter && !s.Degraded(); i++ {
		_ = s.Observe("straggler", hpm.Pt(0, 0))
	}
	if !s.Degraded() {
		t.Fatal("persistent sync failure under load never degraded the store")
	}
	for g := 0; g < writers; g++ {
		id := fmt.Sprintf("bus-%d", g)
		st, err := s.Stats(id)
		if err != nil {
			if acked[g] == 0 {
				continue // degraded before this writer's first ack
			}
			t.Fatalf("%s: %v", id, err)
		}
		if st.Points != acked[g] {
			t.Errorf("%s: %d points applied, %d acknowledged", id, st.Points, acked[g])
		}
	}
}

// TestTrainerValveSuppressesDrift: with the training pool backlogged,
// drift-triggered retrains yield (counted, EWMA left hot) and re-fire once
// the pool drains.
func TestTrainerValveSuppressesDrift(t *testing.T) {
	s := testStore(t, Options{
		MinTrainPeriods: 3,
		DriftThreshold:  50,
		DriftMinScores:  3,
		TrainWorkers:    1,
		MaxTrainBacklog: 1,
	})
	var hold atomic.Bool
	gate := make(chan struct{})
	s.beforeTrain = func() {
		if hold.Load() {
			<-gate
		}
	}

	// Train "bike" while the gate is open.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 8
	tr := hpm.GenerateDataset(spec)
	if err := s.ObserveBatch("bike", tr.Slice(0, 4*period)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Backlog the pool: "other"'s first train parks on the gate.
	hold.Store(true)
	spec2 := hpm.DefaultDatasetSpec(hpm.DatasetBike, 2)
	spec2.Period = period
	spec2.SubTrajectories = 4
	if err := s.ObserveBatch("other", hpm.GenerateDataset(spec2).Points()); err != nil {
		t.Fatal(err)
	}

	// Drive "bike"'s drift EWMA through the threshold: predictions
	// contradicted by teleporting ground truth. Every crossing should be
	// suppressed by the valve, not spent on a retrain.
	drive := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			now, err := s.Now("bike")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Predict("bike", now+1, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Observe("bike", hpm.Pt(50000+float64(i), 50000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	drive(8)
	fs := s.FleetStats()
	if fs.DriftSuppressed == 0 {
		t.Fatal("backlogged pool never suppressed a drift retrain")
	}
	if fs.DriftRetrains != 0 {
		t.Fatalf("drift retrain ran through a full backlog (%d)", fs.DriftRetrains)
	}

	// Drain the pool; the un-reset EWMA re-fires on the next observation.
	close(gate)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	drive(2)
	if fs := s.FleetStats(); fs.DriftRetrains == 0 {
		t.Error("drift retrain did not re-fire after the backlog drained (EWMA was reset while suppressed?)")
	}
}
