package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hpm"
	"hpm/internal/faultinject"
)

// Durable stores: Open roots a store in a directory holding one snapshot
// plus write-ahead-log segments. Every acknowledged observation is either
// in the snapshot or in a WAL segment, so a crash at any instant loses
// nothing acknowledged (in sync mode). Checkpoint compacts: it rotates
// the WAL, writes a fresh snapshot atomically, and deletes the segments
// the snapshot covers.

// snapshotFile is the snapshot's name inside a durable store's directory.
const snapshotFile = "snapshot.hpms"

// Open opens (or creates) a durable store rooted at dir. When a snapshot
// exists it is loaded — its persisted Options win over opts, matching
// Load — and the WAL tail is replayed on top, tolerating a torn final
// record. The returned store logs every ObserveBatch to a fresh WAL
// segment before acknowledging it; Close checkpoints and releases the
// log, and Checkpoint may be called periodically in between.
//
// opts.WALNoSync is honored even on restore: sync policy belongs to the
// process, not the snapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A stale temp file is a checkpoint that never completed; the real
	// snapshot (if any) is intact, so the temp is garbage.
	os.Remove(filepath.Join(dir, snapshotFile+".tmp"))

	path := filepath.Join(dir, snapshotFile)
	var s *Store
	switch _, err := os.Stat(path); {
	case err == nil:
		if s, err = LoadFile(path); err != nil {
			return nil, err
		}
		s.restored = true
	case os.IsNotExist(err):
		if s, err = New(opts); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	s.dir = dir
	s.opts.WALNoSync = opts.WALNoSync
	// Like sync policy, the fleet index is process configuration: honoring
	// the caller's setting lets an operator enable (or drop) the index on
	// restart of an existing durable store.
	s.opts.FleetIndex = opts.FleetIndex
	if err := s.initFleetIndex(); err != nil {
		return nil, err
	}

	w, err := openWAL(dir, !opts.WALNoSync)
	if err != nil {
		return nil, err
	}
	replayed, err := s.replaySegments(w.frozen)
	if err != nil {
		w.close()
		return nil, err
	}
	s.replayed = replayed
	s.recoverModels()
	s.rebuildIndex()
	// Wire the degradation state machine into the log before any append
	// can happen: the fault points let tests inject disk failures at the
	// flush, and every group commit's outcome feeds noteWALFlush.
	w.fault = s.fault
	w.onFlush = s.noteWALFlush
	s.wal = w
	return s, nil
}

// recoverModels re-runs the update policy over every object after
// recovery. A crash can eat an in-flight background train (the snapshot
// holds the history but not the model), and nothing else would reschedule
// it until the object's next observation — which for a parked vehicle may
// be never. Failures land in the train-error ring like any other.
func (s *Store) recoverModels() {
	var objs []*object
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.objects {
			objs = append(objs, obj)
		}
		sh.mu.RUnlock()
	}
	for _, obj := range objs {
		obj.mu.Lock()
		if err := s.maybeUpdate(obj); err != nil {
			s.recordTrainErr(err)
		}
		obj.mu.Unlock()
	}
}

// replaySegments applies the WAL tail left by the previous process on top
// of the snapshot. Only the newest segment may carry a torn record (older
// ones were frozen and fsynced before more writes happened); it is
// repaired in place by replaySegment.
//
// Replay is two-pass because of tombstones. A tombstone erases its
// object, so a later re-creation restarts track offsets at zero — which
// breaks the usual invariant that an offset beyond the current track
// means corruption. When the snapshot is newer than an un-reclaimed
// frozen segment (a crash between the snapshot write and the segment
// delete), observe records that predate an id's final tombstone can
// legitimately sit beyond the restored track. Pass one locates each id's
// last tombstone in the stream; pass two skips (rather than rejects)
// offset gaps only in records that tombstone would erase anyway, and
// stays strict everywhere else.
func (s *Store) replaySegments(paths []string) (int, error) {
	var recs []walRecord
	lastTomb := map[string]int{} // id -> index in recs of its final tombstone
	total := 0
	for i, p := range paths {
		final := i == len(paths)-1
		n, err := replaySegment(p, final, func(rec walRecord) error {
			if len(rec.pts) == 0 {
				lastTomb[rec.id] = len(recs)
			}
			recs = append(recs, rec)
			return nil
		})
		total += n
		if err != nil {
			return total, fmt.Errorf("store: replay %s: %w", filepath.Base(p), err)
		}
	}
	for i, rec := range recs {
		if err := s.applyReplay(rec, i < lastTomb[rec.id]); err != nil {
			return total, err
		}
	}
	return total, nil
}

// applyReplay merges one WAL record into the store. A zero-point record
// is a tombstone: the object is erased, exactly as Remove did live. For
// observe records the offset (the object's track length when it was
// acknowledged) makes replay idempotent: points the snapshot already
// holds are skipped. An offset beyond the current track means an
// acknowledged record vanished between this one and the snapshot — that
// is corruption and is reported, unless preTombstone says a later
// tombstone erases this object anyway (see replaySegments).
func (s *Store) applyReplay(rec walRecord, preTombstone bool) error {
	if len(rec.pts) == 0 {
		sh := s.shard(rec.id)
		sh.mu.Lock()
		delete(sh.objects, rec.id)
		sh.mu.Unlock()
		return nil
	}
	obj, err := s.get(rec.id, true)
	if err != nil {
		return err
	}
	// Replay runs single-threaded before the store is shared, but track
	// mutation requires both locks by invariant; both are uncontended.
	obj.ingestMu.Lock()
	defer obj.ingestMu.Unlock()
	obj.mu.Lock()
	defer obj.mu.Unlock()
	// Offsets are absolute timestamps; a retention-trimmed track compares
	// against base + length, the timestamp its next point will take.
	have := obj.base + len(obj.track)
	if rec.offset > have {
		if preTombstone {
			return nil // erased by the id's later tombstone regardless
		}
		return fmt.Errorf("store: replay gap for %q: record at offset %d, track has %d", rec.id, rec.offset, have)
	}
	if rec.offset+len(rec.pts) <= have {
		return nil // fully covered by the snapshot (or an earlier record)
	}
	obj.track = append(obj.track, rec.pts[have-rec.offset:]...)
	return s.maybeUpdate(obj)
}

// Checkpoint writes an atomic snapshot of the fleet and reclaims the WAL
// segments it makes obsolete. Safe to call concurrently with observes and
// queries: the WAL rotates to a fresh segment first, so records raced in
// during the snapshot write land in the new segment and replay as no-ops.
// On any failure every segment is kept, so no acknowledged observation is
// ever lost to a half-finished checkpoint.
func (s *Store) Checkpoint() error {
	return s.checkpoint(false)
}

// checkpoint is Checkpoint's engine. force runs it even while the store
// is not healthy — recovery checkpoints from the recovering state, where
// the public path would refuse — while the unforced path fails fast with
// ErrDegraded rather than grind a dead disk through a snapshot write.
func (s *Store) checkpoint(force bool) error {
	if s.wal == nil {
		return errors.New("store: Checkpoint requires a store opened with Open")
	}
	if !force {
		if err := s.writable(); err != nil {
			return err
		}
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	if err := s.fault(faultinject.OpSnapshot); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	frozen, err := s.wal.rotate()
	if err != nil {
		return err
	}
	if err := s.SaveFile(filepath.Join(s.dir, snapshotFile)); err != nil {
		return err
	}
	s.wal.reclaim(frozen)
	return nil
}

// SaveFile writes a snapshot to path atomically: temp file in the same
// directory, fsync, rename, directory sync. Readers of path never see a
// partial snapshot, and a crash mid-write leaves the previous one intact.
// The file is the Save stream plus a CRC32-C trailer over every preceding
// byte, so LoadFile detects bit rot that the length-framed stream alone
// would miss.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cw := &crcWriter{w: f}
	// Disk-full fault point for the snapshot body: a failure here must
	// leave the previous snapshot and every WAL segment intact (the temp
	// file is discarded below, reclaim never runs).
	err = s.fault(faultinject.OpDiskFull)
	if err == nil {
		err = s.Save(cw)
	}
	if err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], cw.crc)
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// LoadFile reads a snapshot written by SaveFile, verifying its whole-file
// checksum before decoding. Corruption anywhere in the file — truncation,
// a flipped bit, a foreign file — is an error, never a partial fleet.
func LoadFile(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("store: snapshot %s: too short to hold a checksum", path)
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, walCRC) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("store: snapshot %s: checksum mismatch (corrupt or truncated)", path)
	}
	s, err := Load(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return s, nil
}

// crcWriter hashes everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, walCRC, p[:n])
	return n, err
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// walAppend logs one acknowledged-to-be batch. Called with obj.ingestMu
// held — not obj.mu — so per-object records are ordered like the track
// itself while queries keep running through the commit and fsync.
func (s *Store) walAppend(id string, offset int, pts []hpm.Point) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	return s.degradedErr(s.wal.append(id, offset, pts))
}

// walRemove logs an object's removal as a tombstone: a record with zero
// points, a shape the observe paths never write (empty batches return
// before reaching the WAL). Called with obj.ingestMu held, like
// walAppend, so no observe record for this object can slip in between
// the tombstone and the map deletion.
func (s *Store) walRemove(id string) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal remove: %w", err)
	}
	return s.degradedErr(s.wal.append(id, 0, nil))
}

// walAppendAll logs a fleet batch as one group commit. Called with every
// touched object's ingestMu held (sorted order), so the recorded offsets
// stay valid until the batch is applied.
func (s *Store) walAppendAll(recs []walRecord) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	return s.degradedErr(s.wal.appendAll(recs))
}
