package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hpm"
	"hpm/internal/faultinject"
	"hpm/internal/parallel"
)

// Durable stores: Open roots a store in a directory holding a snapshot —
// a v3 manifest plus per-shard segment files (store/snapshot.go), or a
// legacy v1/v2 single file — plus write-ahead-log segments. Every
// acknowledged observation is either in the snapshot or in a WAL segment,
// so a crash at any instant loses nothing acknowledged (in sync mode).
// Checkpoint compacts: it rotates the WAL, rewrites the segments of
// shards that changed since the last checkpoint (all of them on the
// first, or when Options.CompactEvery forces a full rewrite), commits a
// manifest atomically, and deletes the WAL segments the snapshot covers.

// snapshotFile is the snapshot's name inside a durable store's directory:
// the v3 manifest, or a whole v1/v2 fleet stream.
const snapshotFile = "snapshot.hpms"

// Open opens (or creates) a durable store rooted at dir. When a snapshot
// exists it is loaded — its persisted Options win over opts, matching
// Load — and the WAL tail is replayed on top, tolerating a torn final
// record. The returned store logs every ObserveBatch to a fresh WAL
// segment before acknowledging it; Close checkpoints and releases the
// log, and Checkpoint may be called periodically in between.
//
// opts.WALNoSync is honored even on restore: sync policy belongs to the
// process, not the snapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A stale temp file is a checkpoint that never completed; the real
	// snapshot (if any) is intact, so the temp is garbage.
	os.Remove(filepath.Join(dir, snapshotFile+".tmp"))

	path := filepath.Join(dir, snapshotFile)
	var s *Store
	var m *snapManifest
	switch _, err := os.Stat(path); {
	case err == nil:
		if s, m, err = loadSnapshotFile(path, opts.PersistWorkers); err != nil {
			return nil, err
		}
		s.restored = true
	case os.IsNotExist(err):
		if s, err = New(opts); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	// Error paths from here on must close the store: replay may already
	// have scheduled background trains, and the probe/stop machinery
	// exists from New — a failed Open must not leak their goroutines.
	s.dir = dir
	s.manifest = m
	s.opts.WALNoSync = opts.WALNoSync
	// Like sync policy, the fleet index, compaction cadence and the
	// persistence worker pool are process configuration: honoring the
	// caller's settings lets an operator change them on restart of an
	// existing durable store.
	s.opts.FleetIndex = opts.FleetIndex
	s.opts.CompactEvery = opts.CompactEvery
	s.opts.PersistWorkers = opts.PersistWorkers
	if err := s.initFleetIndex(); err != nil {
		s.Close()
		return nil, err
	}
	// Segment files no manifest references are leftovers of a checkpoint
	// that died between writing segments and committing its manifest.
	sweepSegments(dir, m)

	w, err := openWAL(dir, !opts.WALNoSync)
	if err != nil {
		s.Close()
		return nil, err
	}
	replayed, err := s.replaySegments(w.frozen)
	if err != nil {
		w.close()
		s.Close()
		return nil, err
	}
	s.replayed = replayed
	s.recoverModels()
	s.rebuildIndex()
	// Wire the degradation state machine into the log before any append
	// can happen: the fault points let tests inject disk failures at the
	// flush, and every group commit's outcome feeds noteWALFlush.
	w.fault = s.fault
	w.onFlush = s.noteWALFlush
	s.wal = w
	return s, nil
}

// recoverModels re-runs the update policy over every object after
// recovery. A crash can eat an in-flight background train (the snapshot
// holds the history but not the model), and nothing else would reschedule
// it until the object's next observation — which for a parked vehicle may
// be never. Failures land in the train-error ring like any other.
func (s *Store) recoverModels() {
	var objs []*object
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, obj := range sh.objects {
			objs = append(objs, obj)
		}
		sh.mu.RUnlock()
	}
	// Objects are independent here — each update touches only its own
	// lock and the train pool's — so recovery fans out across the
	// persistence workers (synchronous-training errors land in the ring
	// exactly as they would serially).
	parallel.For(len(objs), s.persistWorkers(), func(i int) {
		obj := objs[i]
		obj.mu.Lock()
		if err := s.maybeUpdate(obj); err != nil {
			s.recordTrainErr(err)
		}
		obj.mu.Unlock()
	})
}

// replaySegments applies the WAL tail left by the previous process on top
// of the snapshot. Only the newest segment may carry a torn record (older
// ones were frozen and fsynced before more writes happened); it is
// repaired in place by replaySegment.
//
// Replay is two-pass because of tombstones. A tombstone erases its
// object, so a later re-creation restarts track offsets at zero — which
// breaks the usual invariant that an offset beyond the current track
// means corruption. When the snapshot is newer than an un-reclaimed
// frozen segment (a crash between the snapshot write and the segment
// delete), observe records that predate an id's final tombstone can
// legitimately sit beyond the restored track. Pass one locates each id's
// last tombstone in the stream; pass two skips (rather than rejects)
// offset gaps only in records that tombstone would erase anyway, and
// stays strict everywhere else.
// Replay is parallel in two stages. Segments are decoded concurrently
// (each yields its records, concatenated back in segment order, so the
// global stream order is exactly what a serial read would produce), then
// records are partitioned by shard and applied by a worker per shard
// group: an id hashes to exactly one shard, and each group keeps stream
// order, so per-object ordering — the only ordering replay relies on —
// is preserved.
func (s *Store) replaySegments(paths []string) (int, error) {
	if len(paths) == 0 {
		return 0, nil
	}
	workers := s.persistWorkers()
	type segRecs struct {
		recs []walRecord
		n    int
		err  error
	}
	decoded := make([]segRecs, len(paths))
	parallel.For(len(paths), workers, func(i int) {
		sr := &decoded[i]
		sr.n, sr.err = replaySegment(paths[i], i == len(paths)-1, func(rec walRecord) error {
			sr.recs = append(sr.recs, rec)
			return nil
		})
	})
	total := 0
	var recs []walRecord
	for i := range decoded {
		total += decoded[i].n
		if err := decoded[i].err; err != nil {
			return total, fmt.Errorf("store: replay %s: %w", filepath.Base(paths[i]), err)
		}
		recs = append(recs, decoded[i].recs...)
	}
	lastTomb := map[string]int{} // id -> index in recs of its final tombstone
	for i, rec := range recs {
		if len(rec.pts) == 0 {
			lastTomb[rec.id] = i
		}
	}
	byShard := make([][]int, len(s.shards))
	for i, rec := range recs {
		si := s.shardIndex(rec.id)
		byShard[si] = append(byShard[si], i)
	}
	groups := byShard[:0]
	for _, g := range byShard {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	errs := make([]error, len(groups))
	parallel.For(len(groups), workers, func(gi int) {
		for _, i := range groups[gi] {
			if err := s.applyReplay(recs[i], i < lastTomb[recs[i].id]); err != nil {
				errs[gi] = err
				return
			}
		}
	})
	if err := errors.Join(errs...); err != nil {
		return total, err
	}
	return total, nil
}

// applyReplay merges one WAL record into the store. A zero-point record
// is a tombstone: the object is erased, exactly as Remove did live. For
// observe records the offset (the object's track length when it was
// acknowledged) makes replay idempotent: points the snapshot already
// holds are skipped. An offset beyond the current track means an
// acknowledged record vanished between this one and the snapshot — that
// is corruption and is reported, unless preTombstone says a later
// tombstone erases this object anyway (see replaySegments).
func (s *Store) applyReplay(rec walRecord, preTombstone bool) error {
	if len(rec.pts) == 0 {
		sh := s.shard(rec.id)
		sh.dirty.Store(true)
		sh.mu.Lock()
		delete(sh.objects, rec.id)
		sh.mu.Unlock()
		return nil
	}
	obj, err := s.get(rec.id, true)
	if err != nil {
		return err
	}
	// Replay runs before the store is shared, parallel only across shards
	// (one worker owns all of a shard's records), but track mutation
	// requires both locks by invariant; both are uncontended.
	obj.ingestMu.Lock()
	defer obj.ingestMu.Unlock()
	obj.mu.Lock()
	defer obj.mu.Unlock()
	// Offsets are absolute timestamps; a retention-trimmed track compares
	// against base + length, the timestamp its next point will take.
	have := obj.base + len(obj.track)
	if rec.offset > have {
		if preTombstone {
			return nil // erased by the id's later tombstone regardless
		}
		return fmt.Errorf("store: replay gap for %q: record at offset %d, track has %d", rec.id, rec.offset, have)
	}
	if rec.offset+len(rec.pts) <= have {
		return nil // fully covered by the snapshot (or an earlier record)
	}
	fresh := rec.pts[have-rec.offset:]
	obj.track = append(obj.track, fresh...)
	// Fold the replayed points into the Markov chain exactly as the live
	// observe did — replay must reproduce the crashed process's chain
	// bit-for-bit on top of the snapshot's blob.
	if obj.predictor != nil {
		for j, p := range fresh {
			obj.predictor.MarkovObserve(have+j, p)
		}
	}
	// Replayed records exist only in WAL segments the next checkpoint
	// reclaims; their shard must be re-encoded by it.
	s.markDirty(rec.id)
	return s.maybeUpdate(obj)
}

// Checkpoint writes an atomic snapshot of the fleet and reclaims the WAL
// segments it makes obsolete. Safe to call concurrently with observes and
// queries: the WAL rotates to a fresh segment first, so records raced in
// during the snapshot write land in the new segment and replay as no-ops.
// On any failure every segment is kept, so no acknowledged observation is
// ever lost to a half-finished checkpoint.
func (s *Store) Checkpoint() error {
	return s.checkpoint(false)
}

// checkpoint is Checkpoint's engine. force runs it even while the store
// is not healthy — recovery checkpoints from the recovering state, where
// the public path would refuse — while the unforced path fails fast with
// ErrDegraded rather than grind a dead disk through a snapshot write.
//
// The cost is O(dirty): only shards that changed since the last
// checkpoint are re-encoded; clean shards' segment files are chained
// from the previous manifest untouched. The sequence is crash-safe at
// every step:
//
//  1. rotate the WAL — raced-in records land in the fresh segment;
//  2. barrier on snapGate — every record committed to a rotated-away
//     segment is applied in memory and has marked its shard dirty;
//  3. swap each shard's dirty flag and rewrite exactly those shards'
//     segments (in parallel, to their final epoch-stamped names — they
//     are invisible until the manifest references them);
//  4. commit the manifest atomically (temp + rename + dir sync);
//  5. only then delete superseded segment files and the frozen WAL.
//
// A failure before step 4 restores the dirty flags and deletes the new
// files: the old manifest and every WAL segment remain authoritative. A
// crash between 4 and 5 leaves obsolete files that replay/sweep as
// no-ops on the next Open.
func (s *Store) checkpoint(force bool) error {
	if s.wal == nil {
		return errors.New("store: Checkpoint requires a store opened with Open")
	}
	if !force {
		if err := s.writable(); err != nil {
			return err
		}
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	if err := s.fault(faultinject.OpSnapshot); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	start := time.Now()
	frozen, err := s.wal.rotate()
	if err != nil {
		return err
	}
	// Barrier: an observer holds the gate's read side from before its WAL
	// commit until its in-memory apply and dirty mark. Taking the write
	// side here (and releasing it immediately) guarantees every record
	// that made it into a rotated-away segment is both applied and
	// reflected in the dirty flags we are about to read — otherwise a
	// record could be durable only in a segment this checkpoint reclaims
	// while its shard's rewrite misses it.
	s.snapGate.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	s.snapGate.Unlock()

	prev := s.manifest
	full := prev == nil
	if s.opts.CompactEvery > 0 && s.sinceCompact >= s.opts.CompactEvery-1 {
		full = true
	}
	var epoch uint64 = 1
	if prev != nil {
		epoch = prev.epoch + 1
	}
	cleared := make([]bool, len(s.shards))
	var rewrite []int
	for i := range s.shards {
		if s.shards[i].dirty.Swap(false) {
			cleared[i] = true
		}
		if full || cleared[i] {
			rewrite = append(rewrite, i)
		}
	}
	if !full && len(rewrite) == 0 {
		// Nothing changed since the last checkpoint. The barrier above
		// proves every record in the frozen segments was already covered
		// by the current manifest, so they reclaim safely; the manifest
		// itself needn't move.
		if err := s.fault(faultinject.OpManifest); err != nil {
			return fmt.Errorf("store: manifest: %w", err)
		}
		s.wal.reclaim(frozen)
		dur := time.Since(start)
		s.checkpoints.Add(1)
		s.checkpointNanos.Add(uint64(dur))
		s.lastCheckpoint.Store(&CheckpointInfo{
			When: time.Now(), Seconds: dur.Seconds(), Epoch: prev.epoch,
		})
		return nil
	}

	segs := make([]*snapSegment, len(rewrite))
	errs := make([]error, len(rewrite))
	parallel.For(len(rewrite), s.persistWorkers(), func(i int) {
		segs[i], errs[i] = s.writeShardSegment(rewrite[i], epoch)
	})
	// Any pre-commit failure must leave the store exactly as it was: the
	// shards we optimistically cleared are dirty again (their changes are
	// still only in the WAL plus the old snapshot), and this epoch's
	// half-written files are garbage.
	fail := func(err error) error {
		for i, c := range cleared {
			if c {
				s.shards[i].dirty.Store(true)
			}
		}
		for _, sg := range segs {
			if sg != nil {
				os.Remove(filepath.Join(s.dir, sg.name))
			}
		}
		return err
	}
	if err := errors.Join(errs...); err != nil {
		return fail(err)
	}
	// Make the new segments' directory entries durable before a manifest
	// can reference them.
	syncDir(s.dir)

	next := &snapManifest{epoch: epoch}
	rewritten := make(map[int]bool, len(rewrite))
	for _, si := range rewrite {
		rewritten[si] = true
	}
	if prev != nil {
		for _, sg := range prev.segments {
			if !rewritten[sg.shard] {
				next.segments = append(next.segments, sg)
			}
		}
	}
	objects, written := 0, 0
	for _, sg := range segs {
		if sg != nil { // nil: the shard emptied out; it simply has no segment
			next.segments = append(next.segments, *sg)
			objects += sg.objects
			written++
		}
	}
	sort.Slice(next.segments, func(i, j int) bool {
		return next.segments[i].shard < next.segments[j].shard
	})
	msize, err := s.writeManifest(next)
	if err != nil {
		return fail(err)
	}
	// Committed. From here the new manifest is authoritative; the rest is
	// garbage collection.
	s.manifest = next
	if full {
		s.sinceCompact = 0
	} else {
		s.sinceCompact++
	}
	dur := time.Since(start)
	s.checkpoints.Add(1)
	s.checkpointNanos.Add(uint64(dur))
	s.checkpointObjs.Add(uint64(objects))
	s.snapshotBytes.Store(uint64(msize + next.segmentBytes()))
	s.lastCheckpoint.Store(&CheckpointInfo{
		When:    time.Now(),
		Seconds: dur.Seconds(),
		Objects: objects,
		Shards:  written,
		Full:    full,
		Epoch:   epoch,
	})
	// Crash window between manifest commit and reclaim: obsolete segment
	// files and WAL segments survive, and the next Open sweeps/replays
	// them as no-ops. The fault point simulates exactly that crash.
	if err := s.fault(faultinject.OpManifest); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	if prev != nil {
		for _, sg := range prev.segments {
			if rewritten[sg.shard] {
				os.Remove(filepath.Join(s.dir, sg.name))
			}
		}
	}
	s.wal.reclaim(frozen)
	return nil
}

// SaveFile writes a snapshot to path atomically: temp file in the same
// directory, fsync, rename, directory sync. Readers of path never see a
// partial snapshot, and a crash mid-write leaves the previous one intact.
// The file is the Save stream plus a CRC32-C trailer over every preceding
// byte, so LoadFile detects bit rot that the length-framed stream alone
// would miss.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cw := &crcWriter{w: f}
	// Disk-full fault point for the snapshot body: a failure here must
	// leave the previous snapshot and every WAL segment intact (the temp
	// file is discarded below, reclaim never runs).
	err = s.fault(faultinject.OpDiskFull)
	if err == nil {
		err = s.Save(cw)
	}
	if err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], cw.crc)
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// LoadFile reads a snapshot written by SaveFile or Checkpoint, verifying
// checksums before decoding. Corruption anywhere — truncation, a flipped
// bit, a foreign file, a missing or damaged segment — is an error, never
// a partial fleet.
func LoadFile(path string) (*Store, error) {
	s, _, err := loadSnapshotFile(path, 0)
	if err != nil {
		return nil, err
	}
	s.rebuildIndex()
	return s, nil
}

// loadSnapshotFile loads the snapshot rooted at path: a v3 manifest whose
// segment files sit beside it, or a whole v1/v2 single-file fleet stream.
// The index is NOT rebuilt — Open replays a WAL on top first. workers
// bounds the segment-load parallelism; <= 0 resolves to the store's
// default. On error no store (and none of its goroutines) survives.
func loadSnapshotFile(path string, workers int) (*Store, *snapManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("store: snapshot %s: too short to hold a checksum", path)
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, walCRC) != binary.LittleEndian.Uint32(trailer) {
		return nil, nil, fmt.Errorf("store: snapshot %s: checksum mismatch (corrupt or truncated)", path)
	}
	if len(payload) < len(snapshotMagic)+1 {
		return nil, nil, fmt.Errorf("store: snapshot %s: too short to hold a header", path)
	}
	if string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, fmt.Errorf("store: snapshot %s: not a snapshot (magic %q)", path, payload[:len(snapshotMagic)])
	}
	if version := int(payload[len(snapshotMagic)]); version == manifestVersion {
		oj, m, err := parseManifest(payload[len(snapshotMagic)+1:])
		if err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
		}
		var opts Options
		if err := json.Unmarshal(oj, &opts); err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %s: decode options: %w", path, err)
		}
		s, err := New(opts)
		if err != nil {
			return nil, nil, err
		}
		if workers <= 0 {
			workers = s.persistWorkers()
		}
		if err := s.loadSegments(filepath.Dir(path), m, workers); err != nil {
			s.Close()
			return nil, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
		}
		s.snapshotBytes.Store(uint64(int64(len(data)) + m.segmentBytes()))
		return s, m, nil
	}
	// Legacy v1/v2: the whole fleet is this one stream. loadStream closes
	// the partial store itself on error.
	s, err := loadStream(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	s.snapshotBytes.Store(uint64(len(data)))
	return s, nil, nil
}

// crcWriter hashes everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, walCRC, p[:n])
	return n, err
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// walAppend logs one acknowledged-to-be batch. Called with obj.ingestMu
// held — not obj.mu — so per-object records are ordered like the track
// itself while queries keep running through the commit and fsync.
func (s *Store) walAppend(id string, offset int, pts []hpm.Point) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	return s.degradedErr(s.wal.append(id, offset, pts))
}

// walRemove logs an object's removal as a tombstone: a record with zero
// points, a shape the observe paths never write (empty batches return
// before reaching the WAL). Called with obj.ingestMu held, like
// walAppend, so no observe record for this object can slip in between
// the tombstone and the map deletion.
func (s *Store) walRemove(id string) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal remove: %w", err)
	}
	return s.degradedErr(s.wal.append(id, 0, nil))
}

// walAppendAll logs a fleet batch as one group commit. Called with every
// touched object's ingestMu held (sorted order), so the recorded offsets
// stay valid until the batch is applied.
func (s *Store) walAppendAll(recs []walRecord) error {
	if err := s.fault(faultinject.OpWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	return s.degradedErr(s.wal.appendAll(recs))
}
