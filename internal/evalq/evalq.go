// Package evalq implements online, prequential evaluation of predictive
// queries (test-then-train): every served prediction is parked in a
// bounded per-object ring until the observation for its query timestamp
// arrives, at which point the prediction is scored against the truth —
// a hit when it lands within a distance threshold D, plus the raw error
// distance — into per-horizon-bucket × per-answering-path counters.
//
// The paper's central claim (§VI–§VII) is that the pattern paths (FQP
// for near queries, BQP for distant ones) beat the motion-function
// fallback as the query horizon grows. These counters reproduce that
// accuracy-vs-horizon comparison *online*, on live traffic, instead of
// in an offline benchmark: each cell of the horizon × path matrix is
// one point of the paper's Figure 5 curves, measured prequentially.
//
// An exponentially weighted moving average of recent error per object
// doubles as a drift detector (NLPMM's observation that movement
// patterns go stale): the store retrains an object early when its EWMA
// crosses a threshold, and an adaptive mode can route queries to the
// fallback when a pattern path's measured accuracy drops below it.
package evalq

import (
	"fmt"
	"sync"

	"hpm/internal/geom"
)

// Path identifies which query processor produced a scored prediction.
type Path uint8

// The answering paths. The order matches hpa's dispatch: forward (FQP)
// for near queries, backward (BQP) for distant ones, the motion-function
// fallback when no pattern qualifies.
const (
	PathForward Path = iota
	PathBackward
	PathFallback
	NumPaths // number of paths, for sizing cell matrices
)

// String returns the path's metric label.
func (p Path) String() string {
	switch p {
	case PathForward:
		return "forward"
	case PathBackward:
		return "backward"
	default:
		return "fallback"
	}
}

// Defaults for Config fields left at their zero value.
const (
	DefaultRingSize    = 64
	DefaultHitDistance = 30 // the paper's Eps: within one region radius
	DefaultEWMAAlpha   = 0.1
)

// DefaultBuckets are the horizon bucket upper bounds, chosen to straddle
// the paper's default distant-time threshold d = 60 so FQP and BQP land
// in disjoint buckets.
var DefaultBuckets = []int{5, 10, 20, 50, 100, 200}

// Config tunes a Tracker. The zero value takes every default.
type Config struct {
	// RingSize bounds the outstanding (not yet scored) predictions kept
	// per object; the oldest is evicted when a new one would overflow.
	RingSize int
	// HitDistance is D: a prediction within this distance of the true
	// location counts as a hit.
	HitDistance float64
	// Buckets are the horizon bucket upper bounds, ascending; a horizon h
	// lands in the first bucket with h <= bound, or the implicit +Inf
	// overflow bucket past the last.
	Buckets []int
	// EWMAAlpha is the smoothing factor of the recent-error EWMA.
	EWMAAlpha float64
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.HitDistance <= 0 {
		c.HitDistance = DefaultHitDistance
	}
	if len(c.Buckets) == 0 {
		c.Buckets = DefaultBuckets
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	return c
}

// NumBuckets counts the horizon buckets including the +Inf overflow.
func (c Config) NumBuckets() int { return len(c.Buckets) + 1 }

// Bucket maps a query horizon to its bucket index.
func (c Config) Bucket(horizon int) int {
	for i, b := range c.Buckets {
		if horizon <= b {
			return i
		}
	}
	return len(c.Buckets)
}

// BucketLabel returns the bucket's upper bound as a label ("+Inf" for
// the overflow bucket), Prometheus le-style.
func (c Config) BucketLabel(i int) string {
	if i >= len(c.Buckets) {
		return "+Inf"
	}
	return fmt.Sprintf("%d", c.Buckets[i])
}

// Cell is one horizon-bucket × path accumulator.
type Cell struct {
	Attempts uint64  // predictions scored
	Hits     uint64  // scored within HitDistance of the truth
	ErrorSum float64 // total error distance, for mean error
}

// pending is one outstanding prediction awaiting its ground truth.
type pending struct {
	tq     int // absolute query timestamp
	bucket int // horizon bucket, fixed at record time
	path   Path
	loc    geom.Point
}

// Tracker scores one object's predictions. All methods are safe for
// concurrent use; the internal mutex is held only for ring and counter
// updates, never across model work.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	ring  []pending // capacity cfg.RingSize, FIFO from start
	start int
	count int
	cells []Cell // NumBuckets × NumPaths, bucket-major

	ewma       float64
	ewmaSet    bool
	sinceReset int // predictions scored since the EWMA last reset

	recorded uint64 // predictions accepted into the ring
	scored   uint64 // predictions matched against ground truth
	expired  uint64 // ring entries whose timestamp passed unobserved
	evicted  uint64 // ring entries dropped to make room
}

// New returns a tracker with cfg (zero fields defaulted).
func New(cfg Config) *Tracker {
	cfg = cfg.WithDefaults()
	return &Tracker{
		cfg:   cfg,
		ring:  make([]pending, cfg.RingSize),
		cells: make([]Cell, cfg.NumBuckets()*int(NumPaths)),
	}
}

// Config returns the tracker's normalized configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Record parks a served prediction for timestamp tq, made when the
// object's latest observation was now. Predictions at or before now are
// ignored (there is no future truth to wait for). When the ring is full
// the oldest outstanding prediction is evicted.
func (t *Tracker) Record(now, tq int, path Path, loc geom.Point) {
	if tq <= now {
		return
	}
	b := t.cfg.Bucket(tq - now)
	t.mu.Lock()
	if t.count == len(t.ring) {
		t.start = (t.start + 1) % len(t.ring)
		t.count--
		t.evicted++
	}
	t.ring[(t.start+t.count)%len(t.ring)] = pending{tq: tq, bucket: b, path: path, loc: loc}
	t.count++
	t.recorded++
	t.mu.Unlock()
}

// Observe scores the outstanding predictions matured by consecutive
// ground-truth observations: pts[i] is the object's true location at
// timestamp base+i. Predictions whose timestamp falls inside the batch
// are scored; ones whose timestamp is already past (which a gap in the
// timestamp sequence could leave behind) are expired. Returns how many
// predictions were scored, the post-scoring error EWMA, and how many
// predictions have been scored since the EWMA was last reset.
func (t *Tracker) Observe(base int, pts []geom.Point) (scored int, ewma float64, sinceReset int) {
	if len(pts) == 0 {
		return 0, 0, 0
	}
	last := base + len(pts) - 1
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0, t.ewma, t.sinceReset // fast path: nothing outstanding
	}
	// Compact the ring in place: score entries the batch covers, expire
	// ones behind it, keep the rest.
	kept := 0
	for i := 0; i < t.count; i++ {
		p := t.ring[(t.start+i)%len(t.ring)]
		switch {
		case p.tq > last: // still in the future
			t.ring[(t.start+kept)%len(t.ring)] = p
			kept++
		case p.tq < base:
			t.expired++
		default:
			err := p.loc.Dist(pts[p.tq-base])
			cell := &t.cells[p.bucket*int(NumPaths)+int(p.path)]
			cell.Attempts++
			cell.ErrorSum += err
			if err <= t.cfg.HitDistance {
				cell.Hits++
			}
			if t.ewmaSet {
				t.ewma += t.cfg.EWMAAlpha * (err - t.ewma)
			} else {
				t.ewma, t.ewmaSet = err, true
			}
			t.sinceReset++
			t.scored++
			scored++
		}
	}
	t.count = kept
	return scored, t.ewma, t.sinceReset
}

// ResetEWMA clears the drift signal — called after a drift-triggered
// retrain so the stale model's errors do not immediately re-trigger.
func (t *Tracker) ResetEWMA() {
	t.mu.Lock()
	t.ewma, t.ewmaSet, t.sinceReset = 0, false, 0
	t.mu.Unlock()
}

// PreferFallback reports whether measured accuracy says the motion
// fallback should answer a query at this horizon instead of pattern
// path p: both cells must hold at least minSamples scored predictions,
// and the pattern path must trail the fallback on hit rate (mean error
// breaks ties, so the signal still works when D makes hits rare).
func (t *Tracker) PreferFallback(horizon int, p Path, minSamples uint64) bool {
	if p == PathFallback {
		return false
	}
	b := t.cfg.Bucket(horizon)
	t.mu.Lock()
	defer t.mu.Unlock()
	pat := t.cells[b*int(NumPaths)+int(p)]
	fb := t.cells[b*int(NumPaths)+int(PathFallback)]
	if pat.Attempts < minSamples || fb.Attempts < minSamples {
		return false
	}
	patRate := float64(pat.Hits) / float64(pat.Attempts)
	fbRate := float64(fb.Hits) / float64(fb.Attempts)
	if patRate != fbRate {
		return patRate < fbRate
	}
	return pat.ErrorSum/float64(pat.Attempts) > fb.ErrorSum/float64(fb.Attempts)
}

// Totals are a tracker's scalar counters.
type Totals struct {
	Outstanding int    `json:"outstanding"`
	Recorded    uint64 `json:"recorded"`
	Scored      uint64 `json:"scored"`
	Expired     uint64 `json:"expired"`
	Evicted     uint64 `json:"evicted"`
}

// Agg accumulates counters across many trackers sharing one Config —
// the store's fleet-level view.
type Agg struct {
	Totals
	Cells []Cell // NumBuckets × NumPaths, bucket-major; nil until first merge
}

// MergeInto adds the tracker's counters to a.
func (t *Tracker) MergeInto(a *Agg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a.Cells == nil {
		a.Cells = make([]Cell, len(t.cells))
	}
	for i, c := range t.cells {
		a.Cells[i].Attempts += c.Attempts
		a.Cells[i].Hits += c.Hits
		a.Cells[i].ErrorSum += c.ErrorSum
	}
	a.Outstanding += t.count
	a.Recorded += t.recorded
	a.Scored += t.scored
	a.Expired += t.expired
	a.Evicted += t.evicted
}

// CellSnapshot is one horizon × path cell with its labels and derived
// rates, ready for JSON or a metrics exporter.
type CellSnapshot struct {
	HorizonLE string  `json:"horizonLE"` // bucket upper bound, "+Inf" for overflow
	Path      string  `json:"path"`
	Attempts  uint64  `json:"attempts"`
	Hits      uint64  `json:"hits"`
	HitRate   float64 `json:"hitRate"`
	MeanError float64 `json:"meanError"`
	ErrorSum  float64 `json:"errorSum"`
}

// Summary is a complete evaluation snapshot: totals, the drift signal,
// and every horizon × path cell (zero cells included, so scrapes see a
// stable series set).
type Summary struct {
	Totals
	ErrorEWMA float64        `json:"errorEWMA"`
	Cells     []CellSnapshot `json:"cells"`
}

// Summarize renders an aggregate under its shared config.
func Summarize(cfg Config, a Agg) Summary {
	cfg = cfg.WithDefaults()
	s := Summary{Totals: a.Totals}
	s.Cells = snapshotCells(cfg, a.Cells)
	return s
}

// Snapshot returns the tracker's own summary.
func (t *Tracker) Snapshot() Summary {
	t.mu.Lock()
	cells := append([]Cell(nil), t.cells...)
	s := Summary{
		Totals: Totals{
			Outstanding: t.count,
			Recorded:    t.recorded,
			Scored:      t.scored,
			Expired:     t.expired,
			Evicted:     t.evicted,
		},
		ErrorEWMA: t.ewma,
	}
	t.mu.Unlock()
	s.Cells = snapshotCells(t.cfg, cells)
	return s
}

func snapshotCells(cfg Config, cells []Cell) []CellSnapshot {
	out := make([]CellSnapshot, 0, cfg.NumBuckets()*int(NumPaths))
	for b := 0; b < cfg.NumBuckets(); b++ {
		for p := Path(0); p < NumPaths; p++ {
			cs := CellSnapshot{HorizonLE: cfg.BucketLabel(b), Path: p.String()}
			if cells != nil {
				c := cells[b*int(NumPaths)+int(p)]
				cs.Attempts, cs.Hits, cs.ErrorSum = c.Attempts, c.Hits, c.ErrorSum
				if c.Attempts > 0 {
					cs.HitRate = float64(c.Hits) / float64(c.Attempts)
					cs.MeanError = c.ErrorSum / float64(c.Attempts)
				}
			}
			out = append(out, cs)
		}
	}
	return out
}
