// Package evalq implements online, prequential evaluation of predictive
// queries (test-then-train): every served prediction is parked in a
// bounded per-object ring until the observation for its query timestamp
// arrives, at which point the prediction is scored against the truth —
// a hit when it lands within a distance threshold D, plus the raw error
// distance — into per-horizon-bucket × per-answering-path counters.
//
// The paper's central claim (§VI–§VII) is that the pattern paths (FQP
// for near queries, BQP for distant ones) beat the motion-function
// fallback as the query horizon grows. These counters reproduce that
// accuracy-vs-horizon comparison *online*, on live traffic, instead of
// in an offline benchmark: each cell of the horizon × path matrix is
// one point of the paper's Figure 5 curves, measured prequentially.
//
// An exponentially weighted moving average of recent error per object
// doubles as a drift detector (NLPMM's observation that movement
// patterns go stale): the store retrains an object early when its EWMA
// crosses a threshold, and an adaptive mode routes each query to the
// path (pattern, Markov chain, or fallback) measured best per
// horizon-bucket — BestPath's N-way argmax.
package evalq

import (
	"fmt"
	"sync"

	"hpm/internal/geom"
	"hpm/internal/hpa"
)

// Path identifies which query processor produced a scored prediction.
// It is the engine's own path enum — one registry (hpa.Paths) defines
// the label space for dispatch, evaluation cells and exporters alike.
type Path = hpa.Path

// The answering paths, re-exported for evaluation call sites.
const (
	PathForward  = hpa.PathForward
	PathBackward = hpa.PathBackward
	PathFallback = hpa.PathFallback
	PathMarkov   = hpa.PathMarkov
	NumPaths     = hpa.NumPaths // number of paths, for sizing cell matrices
)

// Defaults for Config fields left at their zero value.
const (
	DefaultRingSize    = 64
	DefaultHitDistance = 30 // the paper's Eps: within one region radius
	DefaultEWMAAlpha   = 0.1
	// DefaultRouteAlpha smooths the per-cell recency EWMAs BestPath routes
	// by: a few dozen scored predictions to largely forget an old regime,
	// so a path that decays (or a model that improves mid-stream) loses or
	// wins the route within a bounded number of scores instead of being
	// pinned by lifetime averages.
	DefaultRouteAlpha = 1.0 / 32
	// DefaultRouteHitMargin / DefaultRouteErrMargin gate a TAKEOVER: a
	// challenger takes the route from the dispatch default only when its
	// recent hit rate leads by more than the hit margin (absolute), or —
	// within the hit margin — its recent error is lower by more than the
	// relative error margin. The margins are deliberately wide, because an
	// EWMA of a hit indicator fluctuates by several points and a takeover
	// inside that noise band is pure lag-chasing: the route switches to a
	// path right after its good stretch, in time for the bad one. Wide
	// margins alone would also be wrong — a real but moderate lead (say
	// eight points of hit rate, inside the margin) would flicker on
	// tie-breaks forever — so takeover is asymmetric with RELEASE: once a
	// challenger holds the route it keeps it while merely ahead of the
	// default outright, no margin (BestPath's sticky incumbency).
	DefaultRouteHitMargin = 0.10
	DefaultRouteErrMargin = 0.20
)

// DefaultBuckets are the horizon bucket upper bounds, chosen to straddle
// the paper's default distant-time threshold d = 60 so FQP and BQP land
// in disjoint buckets.
var DefaultBuckets = []int{5, 10, 20, 50, 100, 200}

// Config tunes a Tracker. The zero value takes every default.
type Config struct {
	// RingSize bounds the outstanding (not yet scored) predictions kept
	// per object; the oldest is evicted when a new one would overflow.
	RingSize int
	// HitDistance is D: a prediction within this distance of the true
	// location counts as a hit.
	HitDistance float64
	// Buckets are the horizon bucket upper bounds, ascending; a horizon h
	// lands in the first bucket with h <= bound, or the implicit +Inf
	// overflow bucket past the last.
	Buckets []int
	// EWMAAlpha is the smoothing factor of the recent-error EWMA.
	EWMAAlpha float64
	// RouteAlpha is the smoothing factor of the per-cell recency EWMAs
	// (hit rate and error) that BestPath routes by.
	RouteAlpha float64
	// RouteHitMargin and RouteErrMargin are BestPath's takeover
	// hysteresis: the recent-hit-rate lead (absolute) or, within it, the
	// relative recent-error reduction a challenger needs to take the
	// route from the dispatch default. Holding the route needs no margin
	// — see BestPath.
	RouteHitMargin float64
	RouteErrMargin float64
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.HitDistance <= 0 {
		c.HitDistance = DefaultHitDistance
	}
	if len(c.Buckets) == 0 {
		c.Buckets = DefaultBuckets
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.RouteAlpha <= 0 || c.RouteAlpha > 1 {
		c.RouteAlpha = DefaultRouteAlpha
	}
	if c.RouteHitMargin <= 0 {
		c.RouteHitMargin = DefaultRouteHitMargin
	}
	if c.RouteErrMargin <= 0 {
		c.RouteErrMargin = DefaultRouteErrMargin
	}
	return c
}

// NumBuckets counts the horizon buckets including the +Inf overflow.
func (c Config) NumBuckets() int { return len(c.Buckets) + 1 }

// Bucket maps a query horizon to its bucket index.
func (c Config) Bucket(horizon int) int {
	for i, b := range c.Buckets {
		if horizon <= b {
			return i
		}
	}
	return len(c.Buckets)
}

// BucketLabel returns the bucket's upper bound as a label ("+Inf" for
// the overflow bucket), Prometheus le-style.
func (c Config) BucketLabel(i int) string {
	if i >= len(c.Buckets) {
		return "+Inf"
	}
	return fmt.Sprintf("%d", c.Buckets[i])
}

// Cell is one horizon-bucket × path accumulator.
type Cell struct {
	Attempts uint64  // predictions scored
	Hits     uint64  // scored within HitDistance of the truth
	ErrorSum float64 // total error distance, for mean error
}

// recentCell is the recency view of one horizon-bucket × path cell: EWMAs
// of the hit indicator and the error distance, updated at score time.
// Routing reads these instead of the lifetime counters in Cell, because a
// route decision is about how a path performs NOW — a model that improved
// after a retrain, or a chain that went stale past its window, should win
// or lose the route within ~1/RouteAlpha scores, not after it outweighs
// its whole history.
type recentCell struct {
	hit float64 // EWMA of the hit indicator: recent hit rate
	err float64 // EWMA of the error distance: recent mean error
	set bool
}

// pending is one outstanding prediction awaiting its ground truth.
type pending struct {
	tq     int // absolute query timestamp
	bucket int // horizon bucket, fixed at record time
	path   Path
	loc    geom.Point
}

// Tracker scores one object's predictions. All methods are safe for
// concurrent use; the internal mutex is held only for ring and counter
// updates, never across model work.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	ring   []pending // capacity cfg.RingSize, FIFO from start
	start  int
	count  int
	cells  []Cell       // NumBuckets × NumPaths, bucket-major
	recent []recentCell // same shape: the recency view routing reads
	route  []Path       // per bucket: challenger holding the route, or routeNone

	ewma       float64
	ewmaSet    bool
	sinceReset int // predictions scored since the EWMA last reset

	recorded uint64 // predictions accepted into the ring
	scored   uint64 // predictions matched against ground truth
	expired  uint64 // ring entries whose timestamp passed unobserved
	evicted  uint64 // ring entries dropped to make room
}

// routeNone marks a bucket whose route is with the dispatch default —
// no challenger holds it. (Path is unsigned; NumPaths is out of range
// for any real path.)
const routeNone = NumPaths

// New returns a tracker with cfg (zero fields defaulted).
func New(cfg Config) *Tracker {
	cfg = cfg.WithDefaults()
	t := &Tracker{
		cfg:    cfg,
		ring:   make([]pending, cfg.RingSize),
		cells:  make([]Cell, cfg.NumBuckets()*int(NumPaths)),
		recent: make([]recentCell, cfg.NumBuckets()*int(NumPaths)),
		route:  make([]Path, cfg.NumBuckets()),
	}
	for i := range t.route {
		t.route[i] = routeNone
	}
	return t
}

// Config returns the tracker's normalized configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Record parks a served prediction for timestamp tq, made when the
// object's latest observation was now. Predictions at or before now are
// ignored (there is no future truth to wait for). When the ring is full
// the oldest outstanding prediction is evicted.
//
// A prediction identical to one already outstanding — same timestamp,
// path and predicted location — is dropped: it is the same measurement,
// and scoring it twice would double that path's weight in the routing
// matrix. Without this, a path holding the route gets measured by both
// its routed traffic and its shadow call each instant, accumulating
// samples at twice its rivals' rate — so in a worsening regime the
// incumbent's averages degrade twice as fast purely because it is the
// incumbent, and routing plays hot-potato between paths.
func (t *Tracker) Record(now, tq int, path Path, loc geom.Point) {
	if tq <= now {
		return
	}
	b := t.cfg.Bucket(tq - now)
	t.mu.Lock()
	for i := t.count - 1; i >= 0; i-- {
		if p := &t.ring[(t.start+i)%len(t.ring)]; p.tq == tq && p.path == path && p.bucket == b && p.loc == loc {
			t.mu.Unlock()
			return
		}
	}
	if t.count == len(t.ring) {
		t.start = (t.start + 1) % len(t.ring)
		t.count--
		t.evicted++
	}
	t.ring[(t.start+t.count)%len(t.ring)] = pending{tq: tq, bucket: b, path: path, loc: loc}
	t.count++
	t.recorded++
	t.mu.Unlock()
}

// Observe scores the outstanding predictions matured by consecutive
// ground-truth observations: pts[i] is the object's true location at
// timestamp base+i. Predictions whose timestamp falls inside the batch
// are scored; ones whose timestamp is already past (which a gap in the
// timestamp sequence could leave behind) are expired. Returns how many
// predictions were scored, the post-scoring error EWMA, and how many
// predictions have been scored since the EWMA was last reset.
func (t *Tracker) Observe(base int, pts []geom.Point) (scored int, ewma float64, sinceReset int) {
	if len(pts) == 0 {
		return 0, 0, 0
	}
	last := base + len(pts) - 1
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0, t.ewma, t.sinceReset // fast path: nothing outstanding
	}
	// Compact the ring in place: score entries the batch covers, expire
	// ones behind it, keep the rest.
	kept := 0
	for i := 0; i < t.count; i++ {
		p := t.ring[(t.start+i)%len(t.ring)]
		switch {
		case p.tq > last: // still in the future
			t.ring[(t.start+kept)%len(t.ring)] = p
			kept++
		case p.tq < base:
			t.expired++
		default:
			err := p.loc.Dist(pts[p.tq-base])
			idx := p.bucket*int(NumPaths) + int(p.path)
			cell := &t.cells[idx]
			cell.Attempts++
			cell.ErrorSum += err
			hit := 0.0
			if err <= t.cfg.HitDistance {
				cell.Hits++
				hit = 1
			}
			rc := &t.recent[idx]
			if rc.set {
				rc.hit += t.cfg.RouteAlpha * (hit - rc.hit)
				rc.err += t.cfg.RouteAlpha * (err - rc.err)
			} else {
				rc.hit, rc.err, rc.set = hit, err, true
			}
			if t.ewmaSet {
				t.ewma += t.cfg.EWMAAlpha * (err - t.ewma)
			} else {
				t.ewma, t.ewmaSet = err, true
			}
			t.sinceReset++
			t.scored++
			scored++
		}
	}
	t.count = kept
	return scored, t.ewma, t.sinceReset
}

// ResetEWMA clears the drift signal — called after a drift-triggered
// retrain so the stale model's errors do not immediately re-trigger.
func (t *Tracker) ResetEWMA() {
	t.mu.Lock()
	t.ewma, t.ewmaSet, t.sinceReset = 0, false, 0
	t.mu.Unlock()
}

// BestPath returns the candidate path measured best at this horizon.
// candidates[0] is the dispatch default — the paper's pattern path — and
// the decision is an asymmetric hysteresis over the per-bucket recency
// EWMAs (not the lifetime counters, so a path's win or loss follows
// regime changes within ~1/RouteAlpha scores):
//
//   - TAKEOVER, hit branch: a challenger with at least minSamples scored
//     predictions whose recent hit rate leads the default's by more than
//     the hit margin takes the route. A hit-rate lead that clears a wide
//     margin is a strong signal on its own — sustained regime changes (a
//     chain that learned the stream, a pattern model gone stale) show up
//     exactly here.
//   - TAKEOVER, error branch: within the hit margin, a challenger whose
//     recent error is lower by more than the relative error margin takes
//     the route only when its lifetime record corroborates the lead
//     (corroborates). The error EWMA is the noise-prone signal: smooth
//     and heavy-tailed, its excursions past the margin linger for
//     ~1/RouteAlpha scores — long enough to capture the route for a
//     damaging stretch — so this branch alone must also win on counters
//     an excursion cannot move.
//   - RELEASE: the challenger currently holding the route keeps it while
//     merely ahead of the default on recency alone, margin- and
//     corroboration-free (betterRaw), and returns the route the moment
//     it falls behind. Moving traffic off the paper's default dispatch
//     demands strong evidence; moving it back is deliberately cheap.
//
// The asymmetry is the point. Symmetric wide margins make a real-but-
// moderate lead (inside the margin) flicker on tie-breaks, switching to
// the challenger right after its good stretch — lag-chasing that can
// score worse than either fixed path. Symmetric narrow margins let noise
// take the route from a clearly better default. Rare, corroborated
// takeover plus cheap release keeps both failure modes out.
func (t *Tracker) BestPath(horizon int, candidates []Path, minSamples uint64) Path {
	if len(candidates) == 0 {
		return PathForward
	}
	def := candidates[0]
	b := t.cfg.Bucket(horizon)
	idx := func(p Path) int { return b*int(NumPaths) + int(p) }
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cells[idx(def)].Attempts < minSamples {
		t.route[b] = routeNone
		return def
	}
	defRC := t.recent[idx(def)]
	if cur := t.route[b]; cur != routeNone && cur != def {
		held := false
		for _, p := range candidates[1:] {
			if p == cur {
				held = true
				break
			}
		}
		if held && t.cells[idx(cur)].Attempts >= minSamples {
			if rc := t.recent[idx(cur)]; rc.set && t.betterRaw(rc, defRC) {
				return cur
			}
		}
		t.route[b] = routeNone
	}
	best, bestRC, bestCell := def, defRC, t.cells[idx(def)]
	for _, p := range candidates[1:] {
		c := t.cells[idx(p)]
		if c.Attempts < minSamples {
			continue
		}
		rc := t.recent[idx(p)]
		take := rc.hit > bestRC.hit+t.cfg.RouteHitMargin
		if !take && rc.hit >= bestRC.hit-t.cfg.RouteHitMargin {
			take = rc.err < bestRC.err*(1-t.cfg.RouteErrMargin) && t.corroborates(c, bestCell)
		}
		if take {
			best, bestRC, bestCell = p, rc, c
		}
	}
	if best != def {
		t.route[b] = best
	}
	return best
}

// corroborates reports whether challenger a's lifetime record backs its
// recent lead over incumbent b: a lifetime hit rate ahead beyond the hit
// margin, or within it and a lower lifetime mean error. A noise
// excursion in the recency EWMAs cannot move these.
func (t *Tracker) corroborates(a, b Cell) bool {
	if a.Attempts == 0 || b.Attempts == 0 {
		return false
	}
	ah := float64(a.Hits) / float64(a.Attempts)
	bh := float64(b.Hits) / float64(b.Attempts)
	if ah > bh+t.cfg.RouteHitMargin {
		return true
	}
	if ah < bh-t.cfg.RouteHitMargin {
		return false
	}
	return a.ErrorSum*float64(b.Attempts) < b.ErrorSum*float64(a.Attempts)
}

// betterRaw is the hold comparison for a route-holding challenger: the
// same shape as the takeover test but with no error margin — ahead on
// recent hit rate beyond the hit margin, or within it and ahead on raw
// recent error. The hit margin still frames the tie window here so that
// a challenger that took the route on the error tie-break is held by the
// same yardstick, instead of being released over an epsilon of hit rate.
func (t *Tracker) betterRaw(a, b recentCell) bool {
	if a.hit > b.hit+t.cfg.RouteHitMargin {
		return true
	}
	if a.hit < b.hit-t.cfg.RouteHitMargin {
		return false
	}
	return a.err < b.err
}

// PreferFallback reports whether measured accuracy says the motion
// fallback should answer a query at this horizon instead of pattern
// path p.
//
// Deprecated: PreferFallback is the two-way special case kept for
// existing callers; new code uses BestPath's N-way argmax.
func (t *Tracker) PreferFallback(horizon int, p Path, minSamples uint64) bool {
	if p == PathFallback {
		return false
	}
	return t.BestPath(horizon, []Path{p, PathFallback}, minSamples) == PathFallback
}

// Totals are a tracker's scalar counters.
type Totals struct {
	Outstanding int    `json:"outstanding"`
	Recorded    uint64 `json:"recorded"`
	Scored      uint64 `json:"scored"`
	Expired     uint64 `json:"expired"`
	Evicted     uint64 `json:"evicted"`
}

// Agg accumulates counters across many trackers sharing one Config —
// the store's fleet-level view.
type Agg struct {
	Totals
	Cells []Cell // NumBuckets × NumPaths, bucket-major; nil until first merge
}

// MergeInto adds the tracker's counters to a.
func (t *Tracker) MergeInto(a *Agg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a.Cells == nil {
		a.Cells = make([]Cell, len(t.cells))
	}
	for i, c := range t.cells {
		a.Cells[i].Attempts += c.Attempts
		a.Cells[i].Hits += c.Hits
		a.Cells[i].ErrorSum += c.ErrorSum
	}
	a.Outstanding += t.count
	a.Recorded += t.recorded
	a.Scored += t.scored
	a.Expired += t.expired
	a.Evicted += t.evicted
}

// CellSnapshot is one horizon × path cell with its labels and derived
// rates, ready for JSON or a metrics exporter.
type CellSnapshot struct {
	HorizonLE string  `json:"horizonLE"` // bucket upper bound, "+Inf" for overflow
	Path      string  `json:"path"`
	Attempts  uint64  `json:"attempts"`
	Hits      uint64  `json:"hits"`
	HitRate   float64 `json:"hitRate"`
	MeanError float64 `json:"meanError"`
	ErrorSum  float64 `json:"errorSum"`
	// The recency view BestPath routes by: EWMAs of the hit indicator and
	// error distance. Populated by a single tracker's Snapshot; a fleet
	// aggregate (Summarize over Agg) has no meaningful merged EWMA and
	// leaves them zero.
	RecentHitRate   float64 `json:"recentHitRate,omitempty"`
	RecentMeanError float64 `json:"recentMeanError,omitempty"`
}

// Summary is a complete evaluation snapshot: totals, the drift signal,
// and every horizon × path cell (zero cells included, so scrapes see a
// stable series set).
type Summary struct {
	Totals
	ErrorEWMA float64        `json:"errorEWMA"`
	Cells     []CellSnapshot `json:"cells"`
}

// Summarize renders an aggregate under its shared config.
func Summarize(cfg Config, a Agg) Summary {
	cfg = cfg.WithDefaults()
	s := Summary{Totals: a.Totals}
	s.Cells = snapshotCells(cfg, a.Cells)
	return s
}

// Snapshot returns the tracker's own summary.
func (t *Tracker) Snapshot() Summary {
	t.mu.Lock()
	cells := append([]Cell(nil), t.cells...)
	recent := append([]recentCell(nil), t.recent...)
	s := Summary{
		Totals: Totals{
			Outstanding: t.count,
			Recorded:    t.recorded,
			Scored:      t.scored,
			Expired:     t.expired,
			Evicted:     t.evicted,
		},
		ErrorEWMA: t.ewma,
	}
	t.mu.Unlock()
	s.Cells = snapshotCells(t.cfg, cells)
	for i := range s.Cells {
		s.Cells[i].RecentHitRate = recent[i].hit
		s.Cells[i].RecentMeanError = recent[i].err
	}
	return s
}

func snapshotCells(cfg Config, cells []Cell) []CellSnapshot {
	out := make([]CellSnapshot, 0, cfg.NumBuckets()*int(NumPaths))
	for b := 0; b < cfg.NumBuckets(); b++ {
		for p := Path(0); p < NumPaths; p++ {
			cs := CellSnapshot{HorizonLE: cfg.BucketLabel(b), Path: p.String()}
			if cells != nil {
				c := cells[b*int(NumPaths)+int(p)]
				cs.Attempts, cs.Hits, cs.ErrorSum = c.Attempts, c.Hits, c.ErrorSum
				if c.Attempts > 0 {
					cs.HitRate = float64(c.Hits) / float64(c.Attempts)
					cs.MeanError = c.ErrorSum / float64(c.Attempts)
				}
			}
			out = append(out, cs)
		}
	}
	return out
}
