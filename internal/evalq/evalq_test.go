package evalq

import (
	"sync"
	"testing"

	"hpm/internal/geom"
)

func TestBucketMapping(t *testing.T) {
	cfg := Config{Buckets: []int{5, 10, 50}}.WithDefaults()
	cases := []struct{ h, want int }{
		{1, 0}, {5, 0}, {6, 1}, {10, 1}, {11, 2}, {50, 2}, {51, 3}, {10000, 3},
	}
	for _, c := range cases {
		if got := cfg.Bucket(c.h); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.h, got, c.want)
		}
	}
	if cfg.NumBuckets() != 4 {
		t.Errorf("NumBuckets = %d, want 4", cfg.NumBuckets())
	}
	if cfg.BucketLabel(0) != "5" || cfg.BucketLabel(3) != "+Inf" {
		t.Errorf("labels = %q, %q", cfg.BucketLabel(0), cfg.BucketLabel(3))
	}
}

func TestRecordScoreHitAndMiss(t *testing.T) {
	tr := New(Config{HitDistance: 10, Buckets: []int{5, 50}})
	// Near prediction (horizon 3 -> bucket 0), within D of the truth.
	tr.Record(100, 103, PathForward, geom.Pt(0, 0))
	// Distant prediction (horizon 50 -> bucket 1), far from the truth.
	tr.Record(100, 150, PathBackward, geom.Pt(0, 0))
	// A fallback at the same distant horizon, exactly at the truth.
	tr.Record(100, 150, PathFallback, geom.Pt(500, 0))

	// Truth arrives: timestamps 101..150, all at (6,8) until 150 is (500,0).
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt(6, 8) // distance 10 from origin: a hit at D=10
	}
	pts[49] = geom.Pt(500, 0)
	scored, _, _ := tr.Observe(101, pts)
	if scored != 3 {
		t.Fatalf("scored = %d, want 3", scored)
	}

	s := tr.Snapshot()
	if s.Scored != 3 || s.Outstanding != 0 {
		t.Fatalf("totals = %+v", s.Totals)
	}
	find := func(le, path string) CellSnapshot {
		for _, c := range s.Cells {
			if c.HorizonLE == le && c.Path == path {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing", le, path)
		return CellSnapshot{}
	}
	if c := find("5", "forward"); c.Attempts != 1 || c.Hits != 1 {
		t.Errorf("forward cell = %+v", c)
	}
	if c := find("50", "backward"); c.Attempts != 1 || c.Hits != 0 || c.MeanError != 500 {
		t.Errorf("backward cell = %+v", c)
	}
	if c := find("50", "fallback"); c.Attempts != 1 || c.Hits != 1 || c.MeanError != 0 {
		t.Errorf("fallback cell = %+v", c)
	}
}

func TestPastPredictionsIgnored(t *testing.T) {
	tr := New(Config{})
	tr.Record(100, 100, PathForward, geom.Pt(0, 0)) // tq == now
	tr.Record(100, 50, PathForward, geom.Pt(0, 0))  // tq < now
	if s := tr.Snapshot(); s.Recorded != 0 || s.Outstanding != 0 {
		t.Errorf("past predictions recorded: %+v", s.Totals)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		tr.Record(0, 100+i, PathForward, geom.Pt(0, 0))
	}
	s := tr.Snapshot()
	if s.Outstanding != 4 || s.Evicted != 6 || s.Recorded != 10 {
		t.Fatalf("totals = %+v", s.Totals)
	}
	// Only the newest four (tq 106..109) remain scoreable.
	pts := make([]geom.Point, 10)
	scored, _, _ := tr.Observe(100, pts)
	if scored != 4 {
		t.Errorf("scored = %d, want 4", scored)
	}
}

func TestExpiry(t *testing.T) {
	tr := New(Config{})
	tr.Record(0, 5, PathForward, geom.Pt(0, 0))
	// The stream jumps past tq=5: the entry expires rather than scoring
	// against the wrong timestamp.
	scored, _, _ := tr.Observe(6, []geom.Point{geom.Pt(1, 1)})
	if scored != 0 {
		t.Fatalf("scored = %d, want 0", scored)
	}
	if s := tr.Snapshot(); s.Expired != 1 || s.Outstanding != 0 {
		t.Errorf("totals = %+v", s.Totals)
	}
}

func TestEWMADriftSignal(t *testing.T) {
	tr := New(Config{EWMAAlpha: 0.5, Buckets: []int{10}})
	var ewma float64
	var n int
	for i := 0; i < 20; i++ {
		now := i * 2
		tr.Record(now, now+1, PathForward, geom.Pt(0, 0))
		_, ewma, n = tr.Observe(now+1, []geom.Point{geom.Pt(100, 0)})
	}
	if n != 20 {
		t.Fatalf("sinceReset = %d, want 20", n)
	}
	if ewma < 99 || ewma > 100 {
		t.Fatalf("ewma = %v, want ~100", ewma)
	}
	tr.ResetEWMA()
	if _, e, n := tr.Observe(10000, nil); e != 0 || n != 0 {
		t.Errorf("after reset: ewma %v, sinceReset %d", e, n)
	}
}

func TestPreferFallback(t *testing.T) {
	tr := New(Config{HitDistance: 10, Buckets: []int{100}})
	// 30 backward predictions that miss, 30 fallbacks that hit, all at
	// horizon 60 (bucket 0).
	for i := 0; i < 30; i++ {
		now := i * 100
		tq := now + 60
		tr.Record(now, tq, PathBackward, geom.Pt(999, 999))
		tr.Record(now, tq, PathFallback, geom.Pt(0, 0))
		pts := make([]geom.Point, 60)
		tr.Observe(now+1, pts)
	}
	if !tr.PreferFallback(60, PathBackward, 20) {
		t.Error("losing backward path not routed to fallback")
	}
	if tr.PreferFallback(60, PathBackward, 100) {
		t.Error("routed below the sample floor")
	}
	if tr.PreferFallback(60, PathFallback, 1) {
		t.Error("fallback rerouted to itself")
	}
	// The other bucket has no samples at all.
	if tr.PreferFallback(500, PathBackward, 1) {
		t.Error("routed in an empty bucket")
	}
}

func TestMergeInto(t *testing.T) {
	cfg := Config{Buckets: []int{10}}
	a, b := New(cfg), New(cfg)
	a.Record(0, 5, PathForward, geom.Pt(0, 0))
	a.Observe(1, make([]geom.Point, 5))
	b.Record(0, 50, PathBackward, geom.Pt(3, 4))
	b.Observe(1, make([]geom.Point, 50))
	b.Record(0, 9, PathForward, geom.Pt(0, 0)) // outstanding

	var agg Agg
	a.MergeInto(&agg)
	b.MergeInto(&agg)
	if agg.Scored != 2 || agg.Recorded != 3 || agg.Outstanding != 1 {
		t.Fatalf("agg totals = %+v", agg.Totals)
	}
	s := Summarize(cfg, agg)
	var attempts uint64
	for _, c := range s.Cells {
		attempts += c.Attempts
	}
	if attempts != 2 {
		t.Errorf("summed attempts = %d, want 2", attempts)
	}
}

// TestConcurrentRecordObserve exercises the tracker under parallel
// recording, scoring and snapshotting (run with -race).
func TestConcurrentRecordObserve(t *testing.T) {
	tr := New(Config{RingSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(i, i+1+g, PathForward, geom.Pt(float64(i), 0))
				tr.Observe(i, []geom.Point{geom.Pt(float64(i), 0)})
				if i%50 == 0 {
					tr.Snapshot()
					tr.PreferFallback(5, PathForward, 1)
				}
			}
		}(g)
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Recorded == 0 {
		t.Error("nothing recorded")
	}
}
