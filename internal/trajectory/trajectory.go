// Package trajectory models object movement histories and the periodic
// decomposition the pattern-mining stage is built on.
//
// A trajectory is a sequence (l_0, l_1, ..., l_{n-1}) of locations sampled
// at consecutive integer timestamps. Given a period T (the number of
// timestamps after which a pattern may re-appear — "a day" for commuter
// traffic, "a year" for migration), the trajectory decomposes into
// floor(n/T) sub-trajectories, and all locations that share the same time
// offset t in [0,T) are gathered into one group G_t. Dense clusters inside
// each G_t become the frequent regions of §IV.
package trajectory

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpm/internal/geom"
)

// Trajectory is a movement history with one location per integer timestamp,
// starting at timestamp 0.
type Trajectory struct {
	points []geom.Point
}

// New returns a trajectory over the given locations. The slice is not
// copied; callers that keep mutating it should pass a copy.
func New(points []geom.Point) *Trajectory {
	return &Trajectory{points: points}
}

// Len returns the number of timestamps covered.
func (tr *Trajectory) Len() int { return len(tr.points) }

// At returns the location at timestamp t. It panics when t is out of range.
func (tr *Trajectory) At(t int) geom.Point {
	if t < 0 || t >= len(tr.points) {
		panic(fmt.Sprintf("trajectory: timestamp %d out of [0,%d)", t, len(tr.points)))
	}
	return tr.points[t]
}

// Append adds loc as the location of the next timestamp.
func (tr *Trajectory) Append(loc geom.Point) { tr.points = append(tr.points, loc) }

// Points returns the underlying location slice. Callers must not mutate it.
func (tr *Trajectory) Points() []geom.Point { return tr.points }

// Slice returns the locations of timestamps [from, to).
func (tr *Trajectory) Slice(from, to int) []geom.Point {
	if from < 0 || to > len(tr.points) || from > to {
		panic(fmt.Sprintf("trajectory: slice [%d,%d) out of [0,%d]", from, to, len(tr.points)))
	}
	return tr.points[from:to]
}

// SubTrajectory is one period-length window of a decomposed trajectory.
type SubTrajectory struct {
	// Index is the ordinal of this window: the sub-trajectory covering
	// timestamps [Index*T, (Index+1)*T).
	Index  int
	Points []geom.Point // exactly T locations, offset t at Points[t]
}

// Decompose splits the trajectory into its complete period-T
// sub-trajectories, discarding a trailing partial period. It returns an
// error when period is not positive or the trajectory holds less than one
// full period.
func (tr *Trajectory) Decompose(period int) ([]SubTrajectory, error) {
	if period <= 0 {
		return nil, fmt.Errorf("trajectory: period must be positive, got %d", period)
	}
	n := len(tr.points) / period
	if n == 0 {
		return nil, fmt.Errorf("trajectory: %d samples shorter than one period %d", len(tr.points), period)
	}
	subs := make([]SubTrajectory, n)
	for i := 0; i < n; i++ {
		subs[i] = SubTrajectory{Index: i, Points: tr.points[i*period : (i+1)*period]}
	}
	return subs, nil
}

// Group is the multiset G_t of all locations observed at one time offset,
// annotated with which sub-trajectory contributed each location so the
// miner can turn cluster memberships back into per-sub-trajectory
// transactions.
type Group struct {
	Offset int          // time offset t in [0, T)
	Points []geom.Point // Points[j] is sub-trajectory j's location at t
}

// Groups gathers the per-offset location groups G_0 ... G_{T-1} over the
// first n sub-trajectories of subs (n = len(subs) when n <= 0 or too
// large). The experiments sweep the number of sub-trajectories used for
// mining, so the truncation is first-class here.
func Groups(subs []SubTrajectory, n int) []Group {
	if n <= 0 || n > len(subs) {
		n = len(subs)
	}
	if n == 0 {
		return nil
	}
	period := len(subs[0].Points)
	groups := make([]Group, period)
	for t := 0; t < period; t++ {
		g := Group{Offset: t, Points: make([]geom.Point, n)}
		for j := 0; j < n; j++ {
			g.Points[j] = subs[j].Points[t]
		}
		groups[t] = g
	}
	return groups
}

// TimedPoint is a location stamped with its absolute timestamp; predictive
// queries supply the object's recent movements in this form.
type TimedPoint struct {
	T   int
	Loc geom.Point
}

// Recent returns the object's last w movements ending at timestamp tc as
// TimedPoints, the shape predictive queries consume.
func (tr *Trajectory) Recent(tc, w int) ([]TimedPoint, error) {
	if tc < 0 || tc >= len(tr.points) {
		return nil, fmt.Errorf("trajectory: current time %d out of [0,%d)", tc, len(tr.points))
	}
	if w <= 0 {
		return nil, errors.New("trajectory: window must be positive")
	}
	from := tc - w + 1
	if from < 0 {
		from = 0
	}
	out := make([]TimedPoint, 0, tc-from+1)
	for t := from; t <= tc; t++ {
		out = append(out, TimedPoint{T: t, Loc: tr.points[t]})
	}
	return out, nil
}

// WriteCSV writes the trajectory as "t,x,y" rows.
func (tr *Trajectory) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for t, p := range tr.points {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g\n", t, p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "t,x,y" rows previously written by WriteCSV. Timestamps
// must be consecutive from zero; blank lines and lines starting with '#'
// are skipped.
func ReadCSV(r io.Reader) (*Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trajectory{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trajectory: line %d: want 3 fields, got %d", line, len(fields))
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad timestamp: %v", line, err)
		}
		if t != tr.Len() {
			return nil, fmt.Errorf("trajectory: line %d: timestamp %d, want consecutive %d", line, t, tr.Len())
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad x: %v", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad y: %v", line, err)
		}
		tr.Append(geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, errors.New("trajectory: empty input")
	}
	return tr, nil
}
