package trajectory

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that every accepted
// input round-trips through WriteCSV + ReadCSV.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"0,1,2\n1,3,4\n",
		"# comment\n0,1.5,-2.25\n",
		"",
		"0,1\n",
		"0,x,2\n",
		"1,1,2\n",
		"0,1e308,1e308\n1,-1e308,-1e308\n",
		"0,NaN,2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip length %d != %d", back.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			a, b := tr.At(i), back.At(i)
			// NaN coordinates are accepted by the parser; NaN != NaN, so
			// compare representations instead of values.
			if (a != b) && !(a.X != a.X || a.Y != a.Y || b.X != b.X || b.Y != b.Y) {
				t.Fatalf("round trip point %d: %v != %v", i, a, b)
			}
		}
	})
}
