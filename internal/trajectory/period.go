package trajectory

import (
	"fmt"
	"math"
	"sort"
)

// DetectPeriod estimates the periodicity T of a trajectory — the number of
// timestamps after which the object's movement repeats — by scanning
// candidate lags in [minPeriod, maxPeriod] and scoring how well positions
// align with themselves one lag apart.
//
// The paper treats T as data-dependent and user-supplied ("a day" for
// traffic, "a year" for migration); this helper recovers it from the data
// when the sampling rate is known but the behavioural cycle is not.
//
// The score of a lag is the mean of the lowest quartile of sampled
// displacements |l_t − l_{t+L}|: an object that repeats only *some* days
// (the paper's follow probability f) still produces a heavy mass of small
// displacements at the true period, while at wrong lags even the
// best-aligned samples stay far apart. Every multiple of the true period
// also aligns, so among near-minimal lags the smallest wins.
func DetectPeriod(tr *Trajectory, minPeriod, maxPeriod int) (int, error) {
	if minPeriod < 1 || maxPeriod < minPeriod {
		return 0, fmt.Errorf("trajectory: invalid period range [%d,%d]", minPeriod, maxPeriod)
	}
	have := 0
	if tr != nil {
		have = tr.Len()
	}
	if have < 2*maxPeriod {
		return 0, fmt.Errorf("trajectory: need at least two max-period cycles (%d samples), have %d",
			2*maxPeriod, have)
	}

	// Sample at most this many displacement pairs per lag: period
	// detection is a scan over up to thousands of lags on long histories.
	const samplesPerLag = 512

	bestLag, bestScore := 0, math.Inf(1)
	scores := make([]float64, 0, maxPeriod-minPeriod+1)
	for lag := minPeriod; lag <= maxPeriod; lag++ {
		s := lagScore(tr, lag, samplesPerLag)
		scores = append(scores, s)
		if s < bestScore {
			bestScore, bestLag = s, lag
		}
	}

	// Prefer the smallest lag scoring within 25% of the best — the true
	// period ties with its own multiples up to sampling noise, while wrong
	// lags score orders of magnitude worse.
	tolerance := bestScore * 1.25
	for lag := minPeriod; lag <= maxPeriod; lag++ {
		if scores[lag-minPeriod] <= tolerance {
			return lag, nil
		}
	}
	return bestLag, nil // unreachable, the best lag is within tolerance
}

// lagScore returns the mean of the lowest quartile of sampled
// displacements at the given lag.
func lagScore(tr *Trajectory, lag, samples int) float64 {
	n := tr.Len() - lag
	step := 1
	if n > samples {
		step = n / samples
	}
	var d []float64
	for t := 0; t+lag < tr.Len(); t += step {
		d = append(d, tr.At(t).Dist(tr.At(t+lag)))
	}
	sort.Float64s(d)
	q := len(d) / 4
	if q == 0 {
		q = 1
	}
	var sum float64
	for _, v := range d[:q] {
		sum += v
	}
	return sum / float64(q)
}
