package trajectory

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hpm/internal/geom"
)

func linearTrajectory(n int) *Trajectory {
	tr := &Trajectory{}
	for t := 0; t < n; t++ {
		tr.Append(geom.Pt(float64(t), 2*float64(t)))
	}
	return tr
}

func TestLenAndAt(t *testing.T) {
	tr := linearTrajectory(10)
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	if tr.At(3) != geom.Pt(3, 6) {
		t.Errorf("At(3) = %v, want (3,6)", tr.At(3))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tr := linearTrajectory(5)
	for _, tt := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", tt)
				}
			}()
			tr.At(tt)
		}()
	}
}

func TestDecompose(t *testing.T) {
	tr := linearTrajectory(10)
	subs, err := tr.Decompose(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d sub-trajectories, want 3 (partial period dropped)", len(subs))
	}
	for i, s := range subs {
		if s.Index != i {
			t.Errorf("sub %d has Index %d", i, s.Index)
		}
		if len(s.Points) != 3 {
			t.Errorf("sub %d has %d points, want 3", i, len(s.Points))
		}
		for off, p := range s.Points {
			want := tr.At(i*3 + off)
			if p != want {
				t.Errorf("sub %d offset %d = %v, want %v", i, off, p, want)
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	tr := linearTrajectory(5)
	if _, err := tr.Decompose(0); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := tr.Decompose(-2); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := tr.Decompose(6); err == nil {
		t.Error("period longer than trajectory accepted")
	}
}

func TestGroups(t *testing.T) {
	tr := linearTrajectory(12)
	subs, err := tr.Decompose(4)
	if err != nil {
		t.Fatal(err)
	}
	groups := Groups(subs, 0)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	for off, g := range groups {
		if g.Offset != off {
			t.Errorf("group %d has Offset %d", off, g.Offset)
		}
		if len(g.Points) != 3 {
			t.Fatalf("group %d has %d points, want 3", off, len(g.Points))
		}
		for j, p := range g.Points {
			if want := tr.At(j*4 + off); p != want {
				t.Errorf("G_%d[%d] = %v, want %v", off, j, p, want)
			}
		}
	}
}

func TestGroupsTruncation(t *testing.T) {
	tr := linearTrajectory(20)
	subs, _ := tr.Decompose(4) // 5 subs
	groups := Groups(subs, 2)
	for _, g := range groups {
		if len(g.Points) != 2 {
			t.Fatalf("truncated group has %d points, want 2", len(g.Points))
		}
	}
	// n out of range falls back to all.
	if got := Groups(subs, 99); len(got[0].Points) != 5 {
		t.Errorf("oversized n gave %d points, want 5", len(got[0].Points))
	}
	if got := Groups(nil, 3); got != nil {
		t.Errorf("Groups(nil) = %v, want nil", got)
	}
}

func TestRecent(t *testing.T) {
	tr := linearTrajectory(10)
	got, err := tr.Recent(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d points, want 3", len(got))
	}
	for i, tp := range got {
		wantT := 3 + i
		if tp.T != wantT || tp.Loc != tr.At(wantT) {
			t.Errorf("Recent[%d] = %+v, want t=%d", i, tp, wantT)
		}
	}
}

func TestRecentClampsAtStart(t *testing.T) {
	tr := linearTrajectory(10)
	got, err := tr.Recent(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].T != 0 || got[1].T != 1 {
		t.Errorf("Recent near start = %+v", got)
	}
}

func TestRecentErrors(t *testing.T) {
	tr := linearTrajectory(10)
	if _, err := tr.Recent(-1, 2); err == nil {
		t.Error("negative tc accepted")
	}
	if _, err := tr.Recent(10, 2); err == nil {
		t.Error("tc past end accepted")
	}
	if _, err := tr.Recent(5, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := &Trajectory{}
	for i := 0; i < 100; i++ {
		tr.Append(geom.Pt(r.Float64()*1e4, r.Float64()*1e4))
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if back.At(i) != tr.At(i) {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back.At(i), tr.At(i))
		}
	}
}

func TestReadCSVSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n0,1,2\n\n1,3,4\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.At(1) != geom.Pt(3, 4) {
		t.Errorf("parsed %d points: %v", tr.Len(), tr.Points())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0,1\n",       // missing field
		"1,1,2\n",     // non-consecutive timestamp
		"0,x,2\n",     // bad x
		"0,1,y\n",     // bad y
		"zero,1,2\n",  // bad t
		"",            // empty
		"#only\n\n\n", // effectively empty
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted bad input", in)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := linearTrajectory(10)
	s := tr.Slice(2, 5)
	if len(s) != 3 || s[0] != tr.At(2) || s[2] != tr.At(4) {
		t.Errorf("Slice = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad slice bounds did not panic")
		}
	}()
	tr.Slice(5, 2)
}
