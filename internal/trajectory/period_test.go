package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"hpm/internal/geom"
)

// sinePath builds a perfectly periodic trajectory with the given period.
func sinePath(n, period int, noise float64, rng *rand.Rand) *Trajectory {
	tr := &Trajectory{}
	for t := 0; t < n; t++ {
		a := 2 * math.Pi * float64(t%period) / float64(period)
		p := geom.Pt(5000+2000*math.Cos(a), 5000+2000*math.Sin(a))
		if noise > 0 {
			p = p.Add(geom.Pt(rng.NormFloat64()*noise, rng.NormFloat64()*noise))
		}
		tr.Append(p)
	}
	return tr
}

func TestDetectPeriodExact(t *testing.T) {
	tr := sinePath(1000, 50, 0, nil)
	got, err := DetectPeriod(tr, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("DetectPeriod = %d, want 50", got)
	}
}

func TestDetectPeriodNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := sinePath(2000, 73, 40, rng)
	got, err := DetectPeriod(tr, 20, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got != 73 {
		t.Errorf("noisy DetectPeriod = %d, want 73", got)
	}
}

func TestDetectPeriodPrefersFundamentalOverHarmonic(t *testing.T) {
	tr := sinePath(1200, 60, 0, nil)
	// The range includes 60 and 120; both align, the smaller must win.
	got, err := DetectPeriod(tr, 30, 180)
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Errorf("DetectPeriod = %d, want the fundamental 60", got)
	}
}

func TestDetectPeriodErrors(t *testing.T) {
	tr := sinePath(100, 20, 0, nil)
	if _, err := DetectPeriod(tr, 0, 50); err == nil {
		t.Error("minPeriod 0 accepted")
	}
	if _, err := DetectPeriod(tr, 60, 50); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := DetectPeriod(tr, 10, 80); err == nil {
		t.Error("too-short trajectory accepted")
	}
	if _, err := DetectPeriod(nil, 10, 20); err == nil {
		t.Error("nil trajectory accepted")
	}
}
