// Package geom provides the two-dimensional geometric primitives used
// throughout the hybrid prediction model: points, axis-aligned rectangles,
// and the distance computations needed by the clustering and accuracy
// measurements.
//
// The paper normalizes every dataset to the extent [0,10000] x [0,10000];
// nothing in this package depends on that extent, but helpers such as
// Rect.Clamp make it convenient to enforce.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q. Prediction error in
// the paper's experiments is exactly this distance between the predicted and
// the actual location.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. DBSCAN's
// neighborhood tests use squared distances to avoid the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// IsFinite reports whether both coordinates are finite numbers. Motion
// functions iterated far into the future can diverge; callers use IsFinite
// to detect and clamp runaway predictions.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect is well formed when Min.X <= Max.X and
// Min.Y <= Max.Y. The zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the minimum bounding rectangle of pts. It panics
// if pts is empty, since an MBR of nothing is undefined.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints of empty slice")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.ExpandPoint(p)
	}
	return r
}

// ExpandPoint returns the smallest rectangle containing both r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return r.ExpandPoint(s.Min).ExpandPoint(s.Max)
}

// Inflate returns r grown by d on every side. Negative d shrinks; the
// result may become malformed if d is too negative, which IsValid detects.
func (r Rect) Inflate(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share any point (boundary inclusive).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Center returns the midpoint of r. The paper returns "the center of each
// consequence" region as a query answer, making this the answer geometry.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// IsValid reports whether r is well formed (Min <= Max on both axes).
func (r Rect) IsValid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Clamp returns p constrained to lie inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// DistToPoint returns the minimum distance from p to r; zero when p is
// inside r.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Centroid returns the arithmetic mean of pts. It panics on an empty slice.
// Frequent-region centers reported to users are centroids of the cluster's
// member locations.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty slice")
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{c.X / n, c.Y / n}
}
