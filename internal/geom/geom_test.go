package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-12 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to the paper's data extent so distances stay finite.
		a := Pt(math.Mod(ax, 1e4), math.Mod(ay, 1e4))
		b := Pt(math.Mod(bx, 1e4), math.Mod(by, 1e4))
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Pt(r.Float64()*1e4, r.Float64()*1e4)
		b := Pt(r.Float64()*1e4, r.Float64()*1e4)
		c := Pt(r.Float64()*1e4, r.Float64()*1e4)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{Pt(3, 1), Pt(-2, 5), Pt(0, 0)}
	r := RectFromPoints(pts)
	want := Rect{Min: Pt(-2, 0), Max: Pt(3, 5)}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR %v does not contain member %v", r, p)
		}
	}
}

func TestRectFromPointsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty slice")
		}
	}()
	RectFromPoints(nil)
}

func TestRectContainsBoundary(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(0, 5), Pt(10, 5), Pt(5, 0), Pt(5, 10)} {
		if !r.Contains(p) {
			t.Errorf("boundary point %v not contained", p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(10.001, 5), Pt(5, -0.001), Pt(5, 10.001)} {
		if r.Contains(p) {
			t.Errorf("outside point %v contained", p)
		}
	}
}

func TestRectUnionContainsBothProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints([]Point{Pt(ax, ay), Pt(bx, by)})
		s := RectFromPoints([]Point{Pt(cx, cy), Pt(dx, dy)})
		u := r.Union(s)
		return u.Contains(r.Min) && u.Contains(r.Max) && u.Contains(s.Min) && u.Contains(s.Max) && u.IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{Pt(5, 5), Pt(15, 15)}, true},
		{Rect{Pt(10, 10), Pt(20, 20)}, true}, // corner touch
		{Rect{Pt(11, 11), Pt(20, 20)}, false},
		{Rect{Pt(-5, -5), Pt(-1, -1)}, false},
		{Rect{Pt(2, 2), Pt(3, 3)}, true}, // contained
	}
	for _, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("Intersects(%v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.Intersects(a); got != tt.want {
			t.Errorf("Intersects not symmetric for %v", tt.b)
		}
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Min: Pt(2, 3), Max: Pt(6, 11)}
	if got := r.Center(); got != Pt(4, 7) {
		t.Errorf("Center = %v, want (4,7)", got)
	}
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 8 {
		t.Errorf("Height = %v, want 8", got)
	}
	if got := r.Area(); got != 32 {
		t.Errorf("Area = %v, want 32", got)
	}
}

func TestRectInflate(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	g := r.Inflate(2)
	want := Rect{Min: Pt(-2, -2), Max: Pt(12, 12)}
	if g != want {
		t.Errorf("Inflate = %v, want %v", g, want)
	}
	if !r.Inflate(-6).IsValid() == false {
		// shrinking past the center must be detectable
		t.Log("over-shrunk rect correctly invalid")
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	tests := []struct {
		in, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(5, 20), Pt(5, 10)},
		{Pt(-1, -1), Pt(0, 0)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 5), 0},
		{Pt(13, 5), 3},
		{Pt(5, -4), 4},
		{Pt(13, 14), 5},
	}
	for _, tt := range tests {
		if got := r.DistToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if got := Centroid(pts); got != Pt(5, 5) {
		t.Errorf("Centroid = %v, want (5,5)", got)
	}
}

func TestCentroidInsideMBRProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(20)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = Pt(r.Float64()*100-50, r.Float64()*100-50)
		}
		c := Centroid(pts)
		if !RectFromPoints(pts).Contains(c) {
			t.Fatalf("centroid %v outside MBR of its points", c)
		}
	}
}
