package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"hpm"
	"hpm/internal/datagen"
	"hpm/store"
)

func init() {
	registerJSON("queries", "query_throughput",
		"Query throughput: concurrent mixed FQP/BQP/fallback queries against a live store, plus batch amortization", queries)
}

// queryGoroutines is the concurrency sweep of the throughput figures.
var queryGoroutines = []int{1, 2, 4, 8}

// queryBatchSizes is the PredictBatch amortization sweep; size 1 is the
// point-query baseline.
var queryBatchSizes = []int{1, 4, 16, 64}

// queries measures the store's concurrent query path:
//
//   - mixed point-query throughput (queries/s) at 1/2/4/8 goroutines —
//     queries share the object's read lock and the engine's counters are
//     atomic, so nothing serializes them but the scheduler. On a
//     single-CPU host (GOMAXPROCS=1, recorded in the JSON params) the
//     curve stays flat: the queries are CPU-bound, so concurrency buys
//     nothing there and the win is the absence of a slowdown;
//   - p50/p99 per-query latency and allocations per query in the same
//     runs (the pooled scratch and memoized weights keep the latter
//     constant across concurrency levels);
//   - how the traffic split across the answering paths, read back from
//     the per-object counters that survive retrains;
//   - per-time throughput of PredictBatch as the batch size grows —
//     premise encoding and motion fitting amortize across the times of a
//     batch, which pays even on one CPU.
//
// The workload mixes three query kinds round-robin: near times on a
// pattern-rich object (FQP), distant times on the same object (BQP), and
// times on a nearly pattern-free drifter whose answers come from the
// motion fallback.
//
// The setup is deliberate about two things. The commuter is generated
// with low noise and high follow probability so frequent regions cover
// every offset — FQP only answers when the recent window's offsets carry
// regions. And each track ends half a period past the last training
// boundary: patterns live within one period, so a track cut exactly at a
// boundary would put every near query in the next period where no
// premise can precede it, silencing FQP entirely.
func queries(o Options) []Figure {
	o = o.withDefaults()
	const period = 300 // paper scale; quick mode shrinks the workload only
	const periods = 12 // training periods per object
	total := 4000      // point queries per concurrency level
	if o.Quick {
		total = 600
	}

	st, err := store.New(store.Options{
		Config:              hpm.Config{Period: period},
		MinTrainPeriods:     periods,
		SynchronousTraining: true,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: store: %v", err))
	}
	defer st.Close()

	// A pattern-rich commuter and a noisy, rarely-following drifter: the
	// first answers by pattern (FQP near, BQP distant), the second almost
	// always falls through to the motion function.
	cut := periods*period + period/2
	spec := datagen.DefaultSpec(datagen.Car, o.Seed)
	spec.Period, spec.SubTrajectories = period, periods+1
	spec.FollowProb, spec.Noise = 0.95, 8
	if err := st.ObserveBatch("car", datagen.Generate(spec).Points()[:cut]); err != nil {
		panic(fmt.Sprintf("experiments: observe: %v", err))
	}
	dspec := datagen.DefaultSpec(datagen.Airplane, o.Seed+1)
	dspec.Period, dspec.SubTrajectories = period, periods+1
	dspec.FollowProb, dspec.Noise = 0.05, 120
	if err := st.ObserveBatch("drifter", datagen.Generate(dspec).Points()[:cut]); err != nil {
		panic(fmt.Sprintf("experiments: observe: %v", err))
	}
	carNow := mustNow(st, "car")
	driftNow := mustNow(st, "drifter")

	thr := Series{Name: "mixed point queries"}
	p50 := Series{Name: "p50"}
	p99 := Series{Name: "p99"}
	allocs := Series{Name: "mixed point queries"}
	mix := map[string]*Series{
		"forward":  {Name: "forward %"},
		"backward": {Name: "backward %"},
		"fallback": {Name: "fallback %"},
	}

	prev := queryStatsSum(st)
	for _, g := range queryGoroutines {
		per := total / g
		issued := per * g
		durs := make([][]time.Duration, g)

		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.Seed*1000 + int64(w)))
				d := make([]time.Duration, 0, per)
				for i := 0; i < per; i++ {
					var id string
					var tq int
					switch i % 3 {
					case 0: // near: FQP (horizon below DistantThreshold)
						id, tq = "car", carNow+1+rng.Intn(40)
					case 1: // distant: BQP
						id, tq = "car", carNow+60+rng.Intn(120)
					default: // drifter: motion fallback
						id, tq = "drifter", driftNow+1+rng.Intn(180)
					}
					t0 := time.Now()
					_, err := st.Predict(id, tq, 1)
					d = append(d, time.Since(t0))
					if err != nil {
						panic(fmt.Sprintf("experiments: predict %s: %v", id, err))
					}
				}
				durs[w] = d
			}(w)
		}
		wg.Wait()
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)

		x := float64(g)
		thr.X = append(thr.X, x)
		thr.Y = append(thr.Y, float64(issued)/wall.Seconds())
		lo, hi := percentiles(durs)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, lo)
		p99.X, p99.Y = append(p99.X, x), append(p99.Y, hi)
		allocs.X = append(allocs.X, x)
		allocs.Y = append(allocs.Y, float64(m1.Mallocs-m0.Mallocs)/float64(issued))

		// The per-object counters partition the level's traffic by
		// answering path; read the delta against the previous level.
		cur := queryStatsSum(st)
		for name, n := range map[string]int{
			"forward":  cur.Forward - prev.Forward,
			"backward": cur.Backward - prev.Backward,
			"fallback": cur.Fallback - prev.Fallback,
		} {
			s := mix[name]
			s.X = append(s.X, x)
			s.Y = append(s.Y, 100*float64(n)/float64(issued))
		}
		prev = cur
	}

	// Batch amortization: one goroutine, a fixed budget of predicted
	// times, issued in batches of growing size. The premise is encoded
	// once per batch and the fallback fitted at most once per batch.
	// Pattern-answered times don't amortize (each still searches the
	// index), so the commuter's curve stays flat while the fallback-bound
	// drifter's throughput climbs with the size — the fit is the per-query
	// cost batching removes.
	batchFigs := map[string]*Series{
		"car":     {Name: "car (pattern)"},
		"drifter": {Name: "drifter (fallback)"},
	}
	rng := rand.New(rand.NewSource(o.Seed * 7))
	for _, id := range []string{"car", "drifter"} {
		now := mustNow(st, id)
		s := batchFigs[id]
		for _, size := range queryBatchSizes {
			rounds := total / size
			tqs := make([]int, size)
			start := time.Now()
			for r := 0; r < rounds; r++ {
				for j := range tqs {
					tqs[j] = now + 1 + rng.Intn(170) // spans FQP and BQP
				}
				if _, err := st.PredictBatch(id, tqs, 1); err != nil {
					panic(fmt.Sprintf("experiments: predict batch: %v", err))
				}
			}
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, float64(rounds*size)/time.Since(start).Seconds())
		}
	}

	suffix := fmt.Sprintf(" — %d queries/level, GOMAXPROCS=%d", total, runtime.GOMAXPROCS(0))
	return []Figure{
		{
			ID:     "queries-throughput",
			Title:  "Query Throughput vs Goroutines" + suffix,
			XLabel: "goroutines",
			YLabel: "queries/s",
			Series: []Series{thr},
		},
		{
			ID:     "queries-latency",
			Title:  "Query Latency vs Goroutines" + suffix,
			XLabel: "goroutines",
			YLabel: "latency (µs)",
			Series: []Series{p50, p99},
		},
		{
			ID:     "queries-allocs",
			Title:  "Allocations per Query vs Goroutines" + suffix,
			XLabel: "goroutines",
			YLabel: "allocs per query",
			Series: []Series{allocs},
		},
		{
			ID:     "queries-mix",
			Title:  "Answering Path Mix" + suffix,
			XLabel: "goroutines",
			YLabel: "% of queries",
			Series: []Series{*mix["forward"], *mix["backward"], *mix["fallback"]},
		},
		{
			ID:     "queries-batch",
			Title:  "PredictBatch Amortization (1 goroutine)" + suffix,
			XLabel: "batch size",
			YLabel: "predicted times/s",
			Series: []Series{*batchFigs["car"], *batchFigs["drifter"]},
		},
	}
}

// mustNow returns the object's current time; experiment setup guarantees
// the object exists.
func mustNow(st *store.Store, id string) int {
	now, err := st.Now(id)
	if err != nil {
		panic(fmt.Sprintf("experiments: now %s: %v", id, err))
	}
	return now
}

// queryStatsSum totals the query counters across the workload's objects.
func queryStatsSum(st *store.Store) hpm.QueryStats {
	var sum hpm.QueryStats
	for _, id := range []string{"car", "drifter"} {
		s, err := st.Stats(id)
		if err != nil {
			panic(fmt.Sprintf("experiments: stats %s: %v", id, err))
		}
		sum = sum.Add(s.Queries)
	}
	return sum
}

// percentiles merges the per-worker latency samples and returns the p50
// and p99 in microseconds.
func percentiles(durs [][]time.Duration) (p50, p99 float64) {
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1000
	}
	return at(0.50), at(0.99)
}
