package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"hpm"
	"hpm/internal/spatial"
	"hpm/store"
)

func init() {
	register("recovery",
		"Recovery and checkpoint cost: parallel Open at 1k/10k/100k objects, and incremental O(dirty) checkpoints vs full rewrites", recovery)
}

// recoveryShards fixes the shard count so the dirty-shard sweep has a
// known denominator. 64 is the store's default.
const recoveryShards = 64

// recoveryDirtyShards is the incremental sweep: how many of the 64 shards
// are dirtied between checkpoints. 64 = every shard = the cost of a full
// rewrite; 1 is the floor an incremental checkpoint can pay.
var recoveryDirtyShards = []int{1, 3, 16, recoveryShards}

// recovery measures the persistence layer the sharded v3 snapshot format
// exists for:
//
//   - checkpoint pause vs dirty shards: after a full checkpoint, dirty k
//     of the 64 shards and checkpoint again. The incremental engine
//     rewrites only those shards' segment files and chains the rest from
//     the previous epoch, so both the pause and the objects re-encoded
//     scale with k, not the fleet (the k=64 point is the full-rewrite
//     cost). A clean fleet checkpoints as a pure WAL reclaim;
//   - recovery (Open) latency vs fleet size, serial (PersistWorkers=1)
//     vs parallel (GOMAXPROCS workers): segment loads, model recovery and
//     the fleet-index rebuild all fan out across the worker pool. The
//     speedup is bounded by the host's cores — GOMAXPROCS is recorded in
//     the figure titles — while the incremental-checkpoint result is
//     algorithmic and shows at any core count.
//
// Training is disabled throughout so the figures time persistence, not
// model fitting; ids are dirtied shard-locally (one object per target
// shard) because the dirty set's granularity is the shard.
func recovery(o Options) []Figure {
	o = o.withDefaults()
	fleets := []int{1000, 10000, 100000}
	rounds := 5 // observation rounds per object during the build (4 pts each)
	if o.Quick {
		fleets = []int{200, 1000}
		rounds = 2
	}

	fullS := Series{Name: "full rewrite"}
	noopS := Series{Name: "clean no-op"}
	openSerial := Series{Name: "serial (workers=1)"}
	openParallel := Series{Name: fmt.Sprintf("parallel (workers=%d)", runtime.GOMAXPROCS(0))}
	var pauseS, objsS []Series

	for _, n := range fleets {
		dir, err := os.MkdirTemp("", "hpm-recovery-*")
		if err != nil {
			panic(fmt.Sprintf("experiments: tempdir: %v", err))
		}
		st := recoveryOpen(dir, 0, false)
		ids := recoveryIngest(st, n, rounds)

		// First checkpoint writes every shard: the full-rewrite baseline.
		fullS.X = append(fullS.X, float64(n))
		fullS.Y = append(fullS.Y, timeCheckpoint(st))
		// Untouched fleet: the checkpoint reclaims the (empty) WAL and
		// rewrites nothing.
		noopS.X = append(noopS.X, float64(n))
		noopS.Y = append(noopS.Y, timeCheckpoint(st))

		// Incremental sweep: dirty exactly k shards, checkpoint, repeat.
		reps := shardReps(ids)
		pause := Series{Name: fmt.Sprintf("N=%d", n)}
		objs := Series{Name: fmt.Sprintf("N=%d", n)}
		for _, k := range recoveryDirtyShards {
			dirtied := 0
			for shard := 0; shard < recoveryShards && dirtied < k; shard++ {
				id, ok := reps[shard]
				if !ok {
					continue // no object hashes there (tiny fleets)
				}
				if err := st.ObserveBatch(id, []hpm.Point{hpm.Pt(1, 1)}); err != nil {
					panic(fmt.Sprintf("experiments: dirty observe: %v", err))
				}
				dirtied++
			}
			x := 100 * float64(k) / recoveryShards
			pause.X = append(pause.X, x)
			pause.Y = append(pause.Y, timeCheckpoint(st))
			info := st.Health().LastCheckpoint
			objs.X = append(objs.X, x)
			objs.Y = append(objs.Y, float64(info.Objects))
		}
		pauseS = append(pauseS, pause)
		objsS = append(objsS, objs)
		if err := st.Close(); err != nil {
			panic(fmt.Sprintf("experiments: close: %v", err))
		}

		// Recovery: reopen the checkpointed store serially, then with the
		// full worker pool. Each Open loads every segment, re-runs the
		// model-update policy, and rebuilds the fleet index from scratch.
		// One untimed open warms the page cache, then each config is timed
		// three times in interleaved pairs and the min kept: individual
		// Opens are wall-clock noisy (GC pacing, scheduler), especially on
		// few cores, and the min is the honest floor each worker count can
		// reach.
		timeOpen(dir, 1)
		serialMs, parallelMs := timeOpen(dir, 1), timeOpen(dir, 0)
		for i := 0; i < 2; i++ {
			serialMs = min(serialMs, timeOpen(dir, 1))
			parallelMs = min(parallelMs, timeOpen(dir, 0))
		}
		openSerial.X = append(openSerial.X, float64(n))
		openSerial.Y = append(openSerial.Y, serialMs)
		openParallel.X = append(openParallel.X, float64(n))
		openParallel.Y = append(openParallel.Y, parallelMs)

		os.RemoveAll(dir)
	}

	suffix := fmt.Sprintf(" — %d shards, GOMAXPROCS=%d", recoveryShards, runtime.GOMAXPROCS(0))
	return []Figure{
		{
			ID:     "recovery-checkpoint-pause",
			Title:  "Incremental Checkpoint Pause vs Dirty Shards" + suffix,
			XLabel: "% of shards dirty",
			YLabel: "checkpoint ms",
			Series: pauseS,
		},
		{
			ID:     "recovery-checkpoint-objects",
			Title:  "Objects Re-encoded per Checkpoint vs Dirty Shards (O(dirty), not O(fleet))" + suffix,
			XLabel: "% of shards dirty",
			YLabel: "objects written",
			Series: objsS,
		},
		{
			ID:     "recovery-checkpoint-full",
			Title:  "Full Rewrite vs Clean No-op Checkpoint" + suffix,
			XLabel: "objects",
			YLabel: "checkpoint ms",
			Series: []Series{fullS, noopS},
		},
		{
			ID:     "recovery-open",
			Title:  "Recovery (Open) Latency vs Fleet Size: serial vs parallel" + suffix,
			XLabel: "objects",
			YLabel: "open ms",
			Series: []Series{openSerial, openParallel},
		},
	}
}

// recoveryOpen opens a durable store tuned for the persistence figures:
// training disabled, WAL fsyncs off (the figures time encode + file
// writes, not the disk's fsync rate), a fixed shard count, and the fleet
// index only where the recovery cost should include its rebuild.
func recoveryOpen(dir string, workers int, index bool) *store.Store {
	opts := store.Options{
		Config:          hpm.Config{Period: 300},
		MinTrainPeriods: 1 << 20,
		WALNoSync:       true,
		Shards:          recoveryShards,
		PersistWorkers:  workers,
	}
	if index {
		opts.FleetIndex = &spatial.Config{CellSize: 50}
	}
	st, err := store.Open(dir, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: open: %v", err))
	}
	return st
}

// recoveryIngest populates n objects with rounds fleet batches of 4
// points each, returning the ids.
func recoveryIngest(st *store.Store, n, rounds int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("obj-%06d", i)
	}
	const batch = 2048
	for r := 0; r < rounds; r++ {
		pts := []hpm.Point{
			hpm.Pt(float64(r), 0), hpm.Pt(float64(r), 1),
			hpm.Pt(float64(r), 2), hpm.Pt(float64(r), 3),
		}
		for off := 0; off < n; off += batch {
			end := off + batch
			if end > n {
				end = n
			}
			obs := make([]store.Observation, 0, end-off)
			for _, id := range ids[off:end] {
				obs = append(obs, store.Observation{ID: id, Points: pts})
			}
			if err := st.ObserveAll(obs); err != nil {
				panic(fmt.Sprintf("experiments: ingest: %v", err))
			}
		}
	}
	return ids
}

// shardReps maps each shard to one resident id, so the sweep can dirty an
// exact number of shards. The hash mirrors the store's id-to-shard FNV-1a
// (the shard is the granularity of the dirty set, so the experiment must
// aim at shards, not ids).
func shardReps(ids []string) map[int]string {
	reps := make(map[int]string, recoveryShards)
	for _, id := range ids {
		h := uint32(2166136261)
		for i := 0; i < len(id); i++ {
			h ^= uint32(id[i])
			h *= 16777619
		}
		shard := int(h & (recoveryShards - 1))
		if _, ok := reps[shard]; !ok {
			reps[shard] = id
		}
	}
	return reps
}

// timeCheckpoint runs one checkpoint and returns its wall-clock in ms.
func timeCheckpoint(st *store.Store) float64 {
	start := time.Now()
	if err := st.Checkpoint(); err != nil {
		panic(fmt.Sprintf("experiments: checkpoint: %v", err))
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

// timeOpen opens the durable store at dir with the given worker count
// (0 = GOMAXPROCS), fleet index enabled, and returns the wall-clock in
// ms. The store is closed (a no-op checkpoint) outside the timed window,
// and a forced GC first keeps the previous open's garbage from being
// collected inside this one's timing.
func timeOpen(dir string, workers int) float64 {
	runtime.GC()
	start := time.Now()
	st := recoveryOpen(dir, workers, true)
	ms := float64(time.Since(start).Microseconds()) / 1000
	if err := st.Close(); err != nil {
		panic(fmt.Sprintf("experiments: close: %v", err))
	}
	return ms
}
