// Package experiments regenerates every figure of the paper's evaluation
// (§VII) plus the ablation studies DESIGN.md calls out. Each experiment
// returns Figures — labeled series of (x, y) points — that cmd/hpmbench
// prints as tables and bench_test.go smoke-runs in quick mode.
//
// The harness follows the paper's setup: four synthetic datasets
// (Bike/Cow/Car/Airplane), period T = 300, 60 training sub-trajectories,
// k = 1, d = 60, Eps = 30, MinPts = 4, minimum confidence 0.3, errors
// averaged over 50 queries (30 for timing), against an RMF baseline.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"hpm/internal/core"
	"hpm/internal/datagen"
	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/trajectory"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks every sweep and workload so the whole suite runs in
	// seconds: used by benchmarks and smoke tests. Full mode reproduces
	// the paper's parameters.
	Quick bool
	// Seed makes runs reproducible; 0 means 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Series is one labeled line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one plot of the paper: labeled series over a shared x-axis.
type Figure struct {
	ID     string // e.g. "fig5-bike"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteTable renders the figure as an aligned text table, one x per row.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# %-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	fmt.Fprintf(w, "   (%s)\n", f.YLabel)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(w, "  %-14g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %16.2f", s.Y[i])
			} else {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	Name        string
	Description string
	// JSONName labels the machine-readable artifact (BENCH_<JSONName>.json)
	// when that differs from the experiment name; empty means Name.
	JSONName string
	Run      func(Options) []Figure
}

// OutputName is the label for the experiment's JSON artifact.
func (e Experiment) OutputName() string {
	if e.JSONName != "" {
		return e.JSONName
	}
	return e.Name
}

// registry holds all experiments keyed by name.
var registry = map[string]Experiment{}

func register(name, desc string, run func(Options) []Figure) {
	registry[name] = Experiment{Name: name, Description: desc, Run: run}
}

// registerJSON registers an experiment whose JSON artifact carries a
// different, better-known name than the experiment itself.
func registerJSON(name, jsonName, desc string, run func(Options) []Figure) {
	registry[name] = Experiment{Name: name, Description: desc, JSONName: jsonName, Run: run}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get looks up an experiment by name.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// sizes bundles the scale parameters that differ between quick and full
// mode.
type sizes struct {
	period    int
	trainSubs int
	querySubs int
	queries   int // accuracy queries per configuration
	timingQ   int // timing queries per configuration
	recentW   int // recent-movement window supplied to queries
}

func scale(o Options) sizes {
	if o.Quick {
		return sizes{period: 120, trainSubs: 25, querySubs: 8, queries: 12, timingQ: 8, recentW: 10}
	}
	// The paper: T=300, 60 sub-trajectories, 50 accuracy / 30 timing
	// queries. The recent-movement window supplied to queries is what the
	// per-query RMF trains on; the paper charges RMF an O(n³) model
	// construction over it.
	return sizes{period: 300, trainSubs: 60, querySubs: 20, queries: 50, timingQ: 30, recentW: 60}
}

// env is one dataset's generated data plus its train/query split.
type env struct {
	kind datagen.Kind
	spec datagen.Spec
	subs []trajectory.SubTrajectory
	sz   sizes
}

// newEnv generates a dataset with trainSubs+querySubs days (or more when
// extraTrain demands a bigger training pool, e.g. the Figure 6 sweep).
func newEnv(kind datagen.Kind, o Options, extraTrain int) *env {
	sz := scale(o)
	if extraTrain > sz.trainSubs {
		sz.trainSubs = extraTrain
	}
	spec := datagen.DefaultSpec(kind, o.Seed)
	spec.Period = sz.period
	spec.SubTrajectories = sz.trainSubs + sz.querySubs
	tr := datagen.Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // sizes guarantee validity
	}
	return &env{kind: kind, spec: spec, subs: subs, sz: sz}
}

// train builds an HPM over the first n training days (n <= 0: all).
func (e *env) train(params core.Params, n int) *core.Model {
	if params.Period == 0 {
		params.Period = e.spec.Period
	}
	params.SubTrajectories = 0
	// The fallback inside HPM is the same self-training RMF as the
	// standalone baseline, so the cost and accuracy comparisons are fair.
	if params.Motion == core.MotionRMF && params.RMF == (motion.RMFConfig{}) {
		params.RMF = baselineRMFConfig()
	}
	train := e.subs[:e.sz.trainSubs]
	if n > 0 && n < len(train) {
		train = train[:n]
	}
	m, err := core.TrainSubTrajectories(train, params)
	if err != nil {
		panic(fmt.Sprintf("experiments: train: %v", err))
	}
	return m
}

// queryCase fixes one evaluation query: a held-out day and the current
// offset within it.
type queryCase struct {
	day   int // index into e.subs, >= trainSubs
	tcOff int
}

// queryCases draws n reproducible queries whose horizon predLen stays
// inside the period.
func (e *env) queryCases(n, predLen int, rng *rand.Rand) []queryCase {
	maxTc := e.spec.Period - 1 - predLen
	minTc := e.sz.recentW // room for the recent window
	if maxTc <= minTc {
		maxTc = minTc + 1
	}
	cases := make([]queryCase, n)
	for i := range cases {
		cases[i] = queryCase{
			day:   e.sz.trainSubs + rng.Intn(e.sz.querySubs),
			tcOff: minTc + rng.Intn(maxTc-minTc),
		}
	}
	return cases
}

// recent returns the query's recent movements with absolute timestamps.
func (e *env) recent(qc queryCase) []trajectory.TimedPoint {
	base := qc.day * e.spec.Period
	pts := make([]trajectory.TimedPoint, 0, e.sz.recentW)
	for off := qc.tcOff - e.sz.recentW + 1; off <= qc.tcOff; off++ {
		pts = append(pts, trajectory.TimedPoint{T: base + off, Loc: e.subs[qc.day].Points[off]})
	}
	return pts
}

// truth returns the actual location predLen timestamps after the query's
// current time.
func (e *env) truth(qc queryCase, predLen int) geom.Point {
	return e.subs[qc.day].Points[qc.tcOff+predLen]
}

// tq returns the absolute query time.
func (e *env) tq(qc queryCase, predLen int) int {
	return qc.day*e.spec.Period + qc.tcOff + predLen
}

// hpmError averages the model's prediction error over the cases.
func (e *env) hpmError(m *core.Model, cases []queryCase, predLen int) float64 {
	var total float64
	for _, qc := range cases {
		preds, err := m.Predict(e.recent(qc), e.tq(qc, predLen), 1)
		if err != nil {
			panic(fmt.Sprintf("experiments: predict: %v", err))
		}
		loc := e.recent(qc)[e.sz.recentW-1].Loc // last known, if nothing answers
		if len(preds) > 0 {
			loc = preds[0].Location
		}
		total += loc.Dist(e.truth(qc, predLen))
	}
	return total / float64(len(cases))
}

// predictions returns the model's top-1 location per case (last known
// location when nothing answers), for prediction-agreement comparisons.
func (e *env) predictions(m *core.Model, cases []queryCase, predLen int) []geom.Point {
	out := make([]geom.Point, len(cases))
	for i, qc := range cases {
		preds, err := m.Predict(e.recent(qc), e.tq(qc, predLen), 1)
		if err != nil {
			panic(fmt.Sprintf("experiments: predict: %v", err))
		}
		if len(preds) > 0 {
			out[i] = preds[0].Location
		} else {
			out[i] = e.recent(qc)[len(e.recent(qc))-1].Loc
		}
	}
	return out
}

// disagreementPct returns the percentage of cases where two top-1
// prediction sets differ.
func disagreementPct(a, b []geom.Point) float64 {
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return 100 * float64(diff) / float64(len(a))
}

// motionError averages a pure motion-function baseline over the cases.
func (e *env) motionError(newFn func() motion.Function, cases []queryCase, predLen int) float64 {
	var total float64
	for _, qc := range cases {
		fn := newFn()
		recent := e.recent(qc)
		loc := recent[len(recent)-1].Loc
		if err := fn.Fit(recent); err == nil {
			if p, err := fn.Predict(e.tq(qc, predLen)); err == nil {
				loc = p
			}
		}
		total += loc.Dist(e.truth(qc, predLen))
	}
	return total / float64(len(cases))
}

// bounds returns the generator's world extent.
func (e *env) bounds() geom.Rect { return datagen.Extent }

// datasetsFor returns the datasets an experiment sweeps: all four in full
// mode, the two pattern-strength extremes (Bike, Airplane) in quick mode.
func datasetsFor(o Options) []datagen.Kind {
	if o.Quick {
		return []datagen.Kind{datagen.Bike, datagen.Airplane}
	}
	return datagen.Kinds
}

// baselineRMFConfig is the paper-faithful RMF: self-training retrospect
// selection over the query's full recent window, clamped to the data
// extent.
func baselineRMFConfig() motion.RMFConfig {
	bounds := datagen.Extent
	return motion.RMFConfig{
		Retrospect:     8,
		Window:         120,
		AutoRetrospect: true,
		Bounds:         &bounds,
	}
}

// rmfBaseline returns the RMF factory for the standalone baseline of every
// accuracy and cost comparison.
func rmfBaseline() func() motion.Function {
	cfg := baselineRMFConfig()
	return func() motion.Function { return motion.NewRMF(cfg) }
}
