package experiments

import (
	"fmt"

	"hpm"
	"hpm/internal/datagen"
	"hpm/internal/evalq"
	"hpm/store"
)

func init() {
	register("eval",
		"Online prequential accuracy: hit rate and mean error vs horizon, hybrid pattern paths vs motion fallback, scored on live truth", evalOnline)
}

// evalHorizons is the horizon sweep; each horizon gets its own evaluator
// bucket so the online matrix maps one-to-one onto the figure's x-axis.
// Full mode mirrors the paper's prediction-length sweep (d = 60 splits it
// into near/forward and distant/backward); quick mode stays inside the
// shrunken period.
func evalHorizons(o Options) []int {
	if o.Quick {
		return []int{5, 10, 20, 40, 80}
	}
	return []int{5, 10, 20, 50, 100, 200}
}

// evalOnline replays each dataset through a live store in
// test-then-train order: every sampled instant first answers the full
// horizon sweep twice — once through the hybrid dispatch (forward/backward
// pattern paths) and once through the shadowed motion fallback — and only
// then receives the next observations, which the evaluator scores against
// the outstanding answers. The figures are read straight out of the
// store's online accuracy matrix, the same counters /metrics exports, so
// the experiment doubles as an end-to-end check that the prequential
// plumbing reproduces the paper's offline accuracy ordering.
func evalOnline(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		figs = append(figs, evalDataset(kind, o)...)
	}
	return figs
}

func evalDataset(kind datagen.Kind, o Options) []Figure {
	sz := scale(o)
	horizons := evalHorizons(o)
	spec := datagen.DefaultSpec(kind, o.Seed)
	spec.Period = sz.period
	spec.SubTrajectories = sz.trainSubs + sz.querySubs

	tr := datagen.Generate(spec)
	st, err := store.New(store.Options{
		Config:              hpm.Config{Period: spec.Period},
		MinTrainPeriods:     sz.trainSubs,
		SynchronousTraining: true,
		Eval: evalq.Config{
			// Every sampled instant parks 2×len(horizons) answers and the
			// longest waits ~200 timestamps for truth; size the ring so
			// nothing is evicted before it can score.
			RingSize: 4096,
			Buckets:  append([]int(nil), horizons...),
		},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: eval store: %v", err))
	}
	defer st.Close()

	id := kind.String()
	if err := st.ObserveBatch(id, tr.Slice(0, sz.trainSubs*spec.Period)); err != nil {
		panic(fmt.Sprintf("experiments: eval train: %v", err))
	}

	stride := spec.Period / 10
	total := tr.Len()
	for base := sz.trainSubs * spec.Period; base < total; base += stride {
		now, err := st.Now(id)
		if err != nil {
			panic(fmt.Sprintf("experiments: eval now: %v", err))
		}
		for _, h := range horizons {
			if now+h >= total {
				continue // truth would never arrive
			}
			if _, err := st.Predict(id, now+h, 1); err != nil {
				panic(fmt.Sprintf("experiments: eval predict: %v", err))
			}
			if _, err := st.PredictFallback(id, now+h); err != nil {
				panic(fmt.Sprintf("experiments: eval fallback: %v", err))
			}
		}
		end := base + stride
		if end > total {
			end = total
		}
		if err := st.ObserveBatch(id, tr.Slice(base, end)); err != nil {
			panic(fmt.Sprintf("experiments: eval observe: %v", err))
		}
	}

	sum, err := st.EvalStats(id)
	if err != nil {
		panic(fmt.Sprintf("experiments: eval stats: %v", err))
	}
	cfg := st.EvalConfig()

	// Fold the matrix into per-horizon hybrid (forward+backward) and
	// fallback rows keyed by the bucket label.
	type row struct {
		attempts, hits uint64
		errSum         float64
	}
	hybrid := map[string]*row{}
	fall := map[string]*row{}
	for _, c := range sum.Cells {
		m := hybrid
		if c.Path == "fallback" {
			m = fall
		}
		r := m[c.HorizonLE]
		if r == nil {
			r = &row{}
			m[c.HorizonLE] = r
		}
		r.attempts += c.Attempts
		r.hits += c.Hits
		r.errSum += c.ErrorSum
	}
	rate := func(r *row) float64 {
		if r == nil || r.attempts == 0 {
			return 0
		}
		return float64(r.hits) / float64(r.attempts)
	}
	merr := func(r *row) float64 {
		if r == nil || r.attempts == 0 {
			return 0
		}
		return r.errSum / float64(r.attempts)
	}

	hpmHit := Series{Name: "HPM (online)"}
	rmfHit := Series{Name: "RMF fallback"}
	hpmErr := Series{Name: "HPM (online)"}
	rmfErr := Series{Name: "RMF fallback"}
	for i, h := range horizons {
		label := cfg.BucketLabel(i)
		x := float64(h)
		hpmHit.X = append(hpmHit.X, x)
		hpmHit.Y = append(hpmHit.Y, rate(hybrid[label]))
		rmfHit.X = append(rmfHit.X, x)
		rmfHit.Y = append(rmfHit.Y, rate(fall[label]))
		hpmErr.X = append(hpmErr.X, x)
		hpmErr.Y = append(hpmErr.Y, merr(hybrid[label]))
		rmfErr.X = append(rmfErr.X, x)
		rmfErr.Y = append(rmfErr.Y, merr(fall[label]))
	}

	suffix := fmt.Sprintf(" (hit distance %g, test-then-train) — %s", cfg.HitDistance, kind)
	return []Figure{
		{
			ID:     "eval-hit-" + kind.String(),
			Title:  "Online Hit Rate vs Horizon" + suffix,
			XLabel: "prediction horizon",
			YLabel: "hit rate",
			Series: []Series{hpmHit, rmfHit},
		},
		{
			ID:     "eval-err-" + kind.String(),
			Title:  "Online Mean Error vs Horizon" + suffix,
			XLabel: "prediction horizon",
			YLabel: "mean error distance",
			Series: []Series{hpmErr, rmfErr},
		},
	}
}
