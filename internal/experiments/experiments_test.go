package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper plus the documented ablations must be
	// registered.
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b",
		"pruning", "weights", "fallback", "bqp-penalty", "trelax", "tpt-chooseleaf",
		"eval", "retrain", "markov", "fleetquery", "recovery",
	}
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q not registered", w)
		}
	}
	// Names sorted.
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("Names() not sorted")
		}
	}
	if _, ok := Get("fig5"); !ok {
		t.Error("Get(fig5) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

// checkFigure validates structural sanity: non-empty series of equal
// length with finite values.
func checkFigure(t *testing.T, f Figure) {
	t.Helper()
	if f.ID == "" || f.Title == "" {
		t.Errorf("figure missing labels: %+v", f)
	}
	if len(f.Series) == 0 {
		t.Fatalf("%s: no series", f.ID)
	}
	for _, s := range f.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s/%s: bad series lengths %d/%d", f.ID, s.Name, len(s.X), len(s.Y))
		}
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatalf("%s/%s: non-finite y at %d", f.ID, s.Name, i)
			}
		}
	}
}

func TestFig5QuickShape(t *testing.T) {
	figs := mustRun(t, "fig5")
	for _, f := range figs {
		checkFigure(t, f)
	}
	// On the strongly-patterned Bike data, HPM must beat RMF at the
	// longest horizon by a clear margin.
	bike := figs[0]
	hpm, rmf := bike.Series[0], bike.Series[1]
	last := len(hpm.Y) - 1
	if hpm.Y[last] >= rmf.Y[last] {
		t.Errorf("fig5 Bike: HPM %v not below RMF %v at max horizon", hpm.Y[last], rmf.Y[last])
	}
	// RMF error grows with the horizon.
	if rmf.Y[last] <= rmf.Y[0] {
		t.Errorf("fig5 Bike: RMF error did not grow (%v -> %v)", rmf.Y[0], rmf.Y[last])
	}
}

func TestFig6QuickShape(t *testing.T) {
	figs := mustRun(t, "fig6")
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Bike: error with the most training data must not exceed the error
	// with the least.
	hpm := figs[0].Series[0]
	if hpm.Y[len(hpm.Y)-1] > hpm.Y[0] {
		t.Errorf("fig6 Bike: error rose with more data: %v -> %v", hpm.Y[0], hpm.Y[len(hpm.Y)-1])
	}
}

func TestFig7QuickShape(t *testing.T) {
	figs := mustRun(t, "fig7")
	if len(figs) != 2 {
		t.Fatalf("fig7 returned %d figures, want 2", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Pattern counts rise with Eps (small merge-induced dips allowed:
	// at very large Eps neighbouring route regions can fuse).
	for _, s := range figs[0].Series {
		if s.Y[len(s.Y)-1] < 0.9*s.Y[0] {
			t.Errorf("fig7a %s: patterns fell with Eps: %v -> %v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig8QuickShape(t *testing.T) {
	figs := mustRun(t, "fig8")
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Pattern counts fall as MinPts rises.
	for _, s := range figs[0].Series {
		if s.Y[len(s.Y)-1] > s.Y[0] {
			t.Errorf("fig8a %s: patterns rose with MinPts", s.Name)
		}
	}
}

func TestFig9QuickShape(t *testing.T) {
	figs := mustRun(t, "fig9")
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Counts monotonically non-increasing in the confidence threshold.
	for _, s := range figs[0].Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Errorf("fig9a %s: count rose with confidence at %v", s.Name, s.X[i])
			}
		}
	}
}

func TestFig10Quick(t *testing.T) {
	for _, f := range mustRun(t, "fig10") {
		checkFigure(t, f)
	}
}

func TestFig11aQuickShape(t *testing.T) {
	figs := mustRun(t, "fig11a")
	f := figs[0]
	checkFigure(t, f)
	if len(f.Series) != 3 {
		t.Fatalf("fig11a has %d series, want 3", len(f.Series))
	}
	// Storage grows with pattern count, and with region count at fixed
	// pattern count.
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("fig11a %s: storage not increasing", s.Name)
			}
		}
	}
	last := len(f.Series[0].Y) - 1
	if !(f.Series[0].Y[last] < f.Series[1].Y[last] && f.Series[1].Y[last] < f.Series[2].Y[last]) {
		t.Error("fig11a: storage not ordered by region count")
	}
}

func TestFig11bQuickShape(t *testing.T) {
	figs := mustRun(t, "fig11b")
	f := figs[0]
	checkFigure(t, f)
	// At the largest pattern count the scan must cost more than the tree.
	tpt, bf := f.Series[0], f.Series[1]
	last := len(tpt.Y) - 1
	if tpt.Y[last] >= bf.Y[last] {
		t.Errorf("fig11b: TPT %vµs not below brute force %vµs at max size", tpt.Y[last], bf.Y[last])
	}
}

func TestPruningQuickShape(t *testing.T) {
	figs := mustRun(t, "pruning")
	f := figs[0]
	checkFigure(t, f)
	pruned, unpruned, reduction := f.Series[0], f.Series[1], f.Series[2]
	for i := range pruned.Y {
		if pruned.Y[i] >= unpruned.Y[i] {
			t.Errorf("pruning: pruned %v not below unpruned %v", pruned.Y[i], unpruned.Y[i])
		}
		if reduction.Y[i] <= 0 || reduction.Y[i] >= 100 {
			t.Errorf("pruning: reduction %v%% out of range", reduction.Y[i])
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	for _, name := range []string{"weights", "bqp-penalty", "trelax", "fallback", "tpt-chooseleaf"} {
		for _, f := range mustRun(t, name) {
			checkFigure(t, f)
		}
	}
}

func TestEvalQuickShape(t *testing.T) {
	figs := mustRun(t, "eval")
	if len(figs)%2 != 0 {
		t.Fatalf("eval returned %d figures, want hit+error pairs", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Bike (strong patterns): at the longest, distant horizon the pattern
	// paths must beat the motion fallback on both online measures — the
	// prequential counters reproduce the paper's offline ordering.
	hit, errFig := figs[0], figs[1]
	hpmHit, rmfHit := hit.Series[0], hit.Series[1]
	last := len(hpmHit.Y) - 1
	if hpmHit.Y[last] <= rmfHit.Y[last] {
		t.Errorf("eval Bike: online hit rate %v not above fallback %v at max horizon",
			hpmHit.Y[last], rmfHit.Y[last])
	}
	hpmErr, rmfErr := errFig.Series[0], errFig.Series[1]
	if hpmErr.Y[last] >= rmfErr.Y[last] {
		t.Errorf("eval Bike: online error %v not below fallback %v at max horizon",
			hpmErr.Y[last], rmfErr.Y[last])
	}
}

func TestMarkovQuickShape(t *testing.T) {
	figs := mustRun(t, "markov")
	if len(figs)%3 != 0 {
		t.Fatalf("markov returned %d figures, want hit+error+routing triples", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// Per dataset: the hit and error figures carry the three single paths
	// plus the routed column; the routing figure compares routing against
	// the best single path.
	for i := 0; i < len(figs); i += 3 {
		hit, errFig, routing := figs[i], figs[i+1], figs[i+2]
		if len(hit.Series) != 4 || len(errFig.Series) != 4 {
			t.Fatalf("%s: %d/%d series, want 4 ensemble columns", hit.ID, len(hit.Series), len(errFig.Series))
		}
		if len(routing.Series) != 2 {
			t.Fatalf("%s: %d series, want routing vs best single", routing.ID, len(routing.Series))
		}
		// Lenient accuracy bound for quick mode: measured routing must not
		// be worse than the worst single path overall. The full run's
		// routing-vs-best-single comparison lives in BENCH_markov.json.
		mean := func(s Series) float64 {
			var sum float64
			for _, y := range s.Y {
				sum += y
			}
			return sum / float64(len(s.Y))
		}
		routed := mean(errFig.Series[3])
		worst := 0.0
		for _, s := range errFig.Series[:3] {
			if m := mean(s); m > worst {
				worst = m
			}
		}
		if routed > worst {
			t.Errorf("%s: routed mean error %v above the worst single path %v", errFig.ID, routed, worst)
		}
	}
}

func TestRetrainQuickShape(t *testing.T) {
	figs := mustRun(t, "retrain")
	if len(figs) != 2 {
		t.Fatalf("retrain returned %d figures, want cost + accuracy", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	cost := figs[0]
	if len(cost.Series) != 3 {
		t.Fatalf("retrain-cost has %d series, want full/extend/windowed", len(cost.Series))
	}
	// Per-update cost: the incremental paths must undercut the full
	// retrain on average — individual samples are wall-clock noisy, the
	// means are not.
	mean := func(s Series) float64 {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		return sum / float64(len(s.Y))
	}
	batch := mean(cost.Series[0])
	if ext := mean(cost.Series[1]); ext >= batch {
		t.Errorf("mean extend cost %v not below mean full-retrain cost %v", ext, batch)
	}
	if win := mean(cost.Series[2]); win >= batch {
		t.Errorf("mean windowed-extend cost %v not below mean full-retrain cost %v", win, batch)
	}
}

func TestRecoveryQuickShape(t *testing.T) {
	figs := mustRun(t, "recovery")
	if len(figs) != 4 {
		t.Fatalf("recovery returned %d figures, want pause + objects + full + open", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// The O(dirty) contract itself: at every fleet size, an incremental
	// checkpoint with one dirty shard must re-encode fewer objects than
	// one with every shard dirty (the full-rewrite point).
	for _, s := range figs[1].Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if first >= last {
			t.Errorf("%s: %v objects re-encoded at 1 dirty shard, %v at all dirty — not O(dirty)",
				s.Name, first, last)
		}
	}
}

func mustRun(t *testing.T, name string) []Figure {
	t.Helper()
	e, ok := Get(name)
	if !ok {
		t.Fatalf("experiment %q missing", name)
	}
	figs := e.Run(quickOpts())
	if len(figs) == 0 {
		t.Fatalf("%s returned no figures", name)
	}
	return figs
}

func TestWriteTable(t *testing.T) {
	f := Figure{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var buf bytes.Buffer
	f.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "Demo", "a", "b", "10.00", "40.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
