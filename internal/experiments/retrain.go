package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hpm/internal/core"
	"hpm/internal/datagen"
	"hpm/internal/trajectory"
)

func init() {
	register("retrain",
		"Retrain cost: full batch retrain vs incremental Extend as history grows, with accuracy divergence", retrain)
}

// retrainSizes is the experiment's own scale: a long stream (the trend
// only emerges over many periods) at a moderate period, independent of the
// paper-faithful sizes the accuracy figures use.
func retrainSizes(o Options) (sz sizes, start, stride int) {
	if o.Quick {
		return sizes{period: 120, trainSubs: 36, querySubs: 6, timingQ: 8, recentW: 10}, 8, 8
	}
	return sizes{period: 120, trainSubs: 480, querySubs: 8, timingQ: 16, recentW: 10}, 24, 48
}

// retrain measures the model-maintenance cost of keeping an HPM current
// on an endless stream, comparing three policies as history accumulates:
//
//   - full retrain: re-mine the entire track every period, the pre-
//     incremental behaviour. Per-update cost grows with the track length
//     (the per-offset DBSCAN alone is quadratic in periods);
//   - extend: delta-mine only the new period into a persistent model
//     (region discovery on). Per-update cost tracks the new data and
//     stays flat no matter how much history the model has absorbed;
//   - extend windowed: the same with a sliding HistoryWindow, which also
//     retires expired periods — the bounded-memory configuration a store
//     with RetainPeriods runs.
//
// A second figure tracks prediction accuracy of the batch-retrained and
// incrementally extended models over the same held-out queries at each
// measurement point, showing the cheap path does not drift away from the
// ground-truth rebuild.
func retrain(o Options) []Figure {
	o = o.withDefaults()
	sz, start, stride := retrainSizes(o)
	predLen := 20
	spec := datagen.DefaultSpec(datagen.Bike, o.Seed)
	spec.Period = sz.period
	spec.SubTrajectories = sz.trainSubs + sz.querySubs
	subs, err := datagen.Generate(spec).Decompose(spec.Period)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	e := &env{kind: datagen.Bike, spec: spec, subs: subs, sz: sz}
	train := e.subs[:sz.trainSubs]

	// All policies begin from the same trained prefix. The first Extend
	// seeds the incremental miner by replaying the model's live chains — a
	// one-time cost charged here, outside the measured stream.
	inc := e.train(core.Params{}, start)
	win := e.train(core.Params{HistoryWindow: start}, start)
	timeExtend(inc, train[start:start+1])
	timeExtend(win, train[start:start+1])

	rng := rand.New(rand.NewSource(o.Seed + 1400))
	cases := e.queryCases(sz.timingQ, predLen, rng)

	batchCost := Series{Name: "full retrain"}
	extendCost := Series{Name: "extend"}
	windowCost := Series{Name: "extend windowed"}
	batchErr := Series{Name: "full retrain"}
	extendErr := Series{Name: "extend"}

	for day := start + 1; day < len(train); day++ {
		newDay := train[day : day+1]
		extendNs := timeExtend(inc, newDay)
		windowNs := timeExtend(win, newDay)
		if (day-start)%stride != 0 {
			continue
		}
		// The batch policy pays a full re-mine of everything up to and
		// including the day the other policies just absorbed.
		bStart := time.Now()
		batch := e.train(core.Params{}, day+1)
		batchNs := time.Since(bStart)

		x := float64(day + 1)
		batchCost.X = append(batchCost.X, x)
		batchCost.Y = append(batchCost.Y, float64(batchNs.Microseconds())/1e3)
		extendCost.X = append(extendCost.X, x)
		extendCost.Y = append(extendCost.Y, float64(extendNs.Microseconds())/1e3)
		windowCost.X = append(windowCost.X, x)
		windowCost.Y = append(windowCost.Y, float64(windowNs.Microseconds())/1e3)

		batchErr.X = append(batchErr.X, x)
		batchErr.Y = append(batchErr.Y, e.hpmError(batch, cases, predLen))
		extendErr.X = append(extendErr.X, x)
		extendErr.Y = append(extendErr.Y, e.hpmError(inc, cases, predLen))
	}

	suffix := fmt.Sprintf(" — %s, T=%d", e.kind, e.spec.Period)
	return []Figure{
		{
			ID:     "retrain-cost",
			Title:  "Model Maintenance Cost per Period vs History" + suffix,
			XLabel: "periods of history",
			YLabel: "update cost (ms)",
			Series: []Series{batchCost, extendCost, windowCost},
		},
		{
			ID:     "retrain-accuracy",
			Title:  "Prediction Error: batch-retrained vs extended model" + suffix,
			XLabel: "periods of history",
			YLabel: "avg error (distance)",
			Series: []Series{batchErr, extendErr},
		},
	}
}

// timeExtend absorbs one day into the model and returns the wall time.
func timeExtend(m *core.Model, day []trajectory.SubTrajectory) time.Duration {
	start := time.Now()
	if _, err := m.Extend(day); err != nil {
		panic(fmt.Sprintf("experiments: extend: %v", err))
	}
	return time.Since(start)
}
