package experiments

import (
	"math/rand"
	"strconv"
	"time"

	"hpm/internal/bitkey"
	"hpm/internal/core"
	"hpm/internal/tpt"
)

func init() {
	register("fig10", "Figure 10: query response time vs training sub-trajectories, HPM vs RMF", fig10)
	register("fig11a", "Figure 11(a): TPT storage vs pattern count for 80/400/800 frequent regions", fig11a)
	register("fig11b", "Figure 11(b): search cost, TPT vs brute-force scan, vs pattern count", fig11b)
	register("tpt-chooseleaf", "Ablation: ChooseLeaf Intersect step (paper's addition) vs plain signature-tree descent", chooseLeafAblation)
}

// fig10 times full HPM queries against the pure-RMF baseline as the mined
// history grows. With few sub-trajectories HPM often falls through to RMF
// (expensive refit per query); with more patterns available, queries
// resolve in the TPT and response time drops well below RMF's.
func fig10(o Options) []Figure {
	o = o.withDefaults()
	counts := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	predLen := 50
	if o.Quick {
		counts = []int{5, 10, 20}
		predLen = 30
	}
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, counts[len(counts)-1])
		rng := rand.New(rand.NewSource(o.Seed + 800))
		cases := e.queryCases(e.sz.timingQ, predLen, rng)
		rmf := rmfBaseline()

		// RMF cost is independent of the mined history.
		start := time.Now()
		e.motionError(rmf, cases, predLen)
		rmfPerQuery := float64(time.Since(start).Microseconds()) / float64(len(cases))

		hpmS := Series{Name: "HPM"}
		rmfS := Series{Name: "RMF"}
		for _, n := range counts {
			m := e.train(core.Params{}, n)
			start = time.Now()
			e.hpmError(m, cases, predLen)
			perQuery := float64(time.Since(start).Microseconds()) / float64(len(cases))
			hpmS.X = append(hpmS.X, float64(n))
			hpmS.Y = append(hpmS.Y, perQuery)
			rmfS.X = append(rmfS.X, float64(n))
			rmfS.Y = append(rmfS.Y, rmfPerQuery)
		}
		figs = append(figs, Figure{
			ID:     "fig10-" + kind.String(),
			Title:  "Query Response Time — " + kind.String(),
			XLabel: "number of sub-trajectories",
			YLabel: "response time (µs/query)",
			Series: []Series{hpmS, rmfS},
		})
	}
	return figs
}

// patternCounts is the Figure 11 x-axis.
func patternCounts(o Options) []int {
	if o.Quick {
		return []int{1000, 5000, 10000}
	}
	return []int{1000, 5000, 10000, 50000, 100000}
}

// syntheticItems builds n random pattern-key items over the given key
// universe: one consequence bit and 1..3 premise bits each, the shape real
// mined patterns have.
func syntheticItems(rng *rand.Rand, n, ckLen, rkLen int) []tpt.Item {
	items := make([]tpt.Item, n)
	for i := range items {
		k := bitkey.NewPatternKey(ckLen, rkLen)
		k.CK.Set(1 + rng.Intn(ckLen))
		for b := 0; b <= rng.Intn(3); b++ {
			k.RK.Set(1 + rng.Intn(rkLen))
		}
		items[i] = tpt.Item{Key: k, Conf: rng.Float64(), Ref: i}
	}
	return items
}

// syntheticQueries builds FQP-shaped queries: one consequence bit, a few
// premise bits.
func syntheticQueries(rng *rand.Rand, n, ckLen, rkLen int) []bitkey.PatternKey {
	qs := make([]bitkey.PatternKey, n)
	for i := range qs {
		q := bitkey.NewPatternKey(ckLen, rkLen)
		q.CK.Set(1 + rng.Intn(ckLen))
		for b := 0; b < 3; b++ {
			q.RK.Set(1 + rng.Intn(rkLen))
		}
		qs[i] = q
	}
	return qs
}

// fig11ConsequenceLen mirrors the paper's setup where consequence offsets
// are far fewer than frequent regions.
const fig11ConsequenceLen = 100

// fig11a reports TPT storage for 80, 400 and 800 frequent regions as the
// pattern count grows: key width scales with the region count, so the
// 800-region tree grows steepest.
func fig11a(o Options) []Figure {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + 900))
	fig := Figure{
		ID:     "fig11a",
		Title:  "TPT Storage Consumption",
		XLabel: "number of patterns",
		YLabel: "storage size (MB)",
	}
	for _, regions := range []int{80, 400, 800} {
		s := Series{Name: strconv.Itoa(regions) + " regions"}
		for _, n := range patternCounts(o) {
			items := syntheticItems(rng, n, fig11ConsequenceLen, regions)
			tree := tpt.BulkLoad(fig11ConsequenceLen, regions, items, tpt.Options{})
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(tree.Stats().StorageBytes)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// fig11b times TPT intersect search against a brute-force scan over the
// same items: the scan grows linearly with the pattern count while the
// tree stays near-flat.
func fig11b(o Options) []Figure {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + 1000))
	const regions = 800
	queries := 200
	if o.Quick {
		queries = 50
	}
	tptS := Series{Name: "TPT (800)"}
	bfS := Series{Name: "Brute-force"}
	for _, n := range patternCounts(o) {
		items := syntheticItems(rng, n, fig11ConsequenceLen, regions)
		tree := tpt.BulkLoad(fig11ConsequenceLen, regions, items, tpt.Options{})
		bf := tpt.NewBruteForce(items)
		qs := syntheticQueries(rng, queries, fig11ConsequenceLen, regions)

		sink := 0
		start := time.Now()
		for _, q := range qs {
			tree.SearchIntersect(q, func(it tpt.Item) bool { sink++; return true })
		}
		tptS.X = append(tptS.X, float64(n))
		tptS.Y = append(tptS.Y, float64(time.Since(start).Microseconds())/float64(queries))

		start = time.Now()
		for _, q := range qs {
			bf.SearchIntersect(q, func(it tpt.Item) bool { sink++; return true })
		}
		bfS.X = append(bfS.X, float64(n))
		bfS.Y = append(bfS.Y, float64(time.Since(start).Microseconds())/float64(queries))
	}
	return []Figure{{
		ID:     "fig11b",
		Title:  "TPT Search Cost",
		XLabel: "number of patterns",
		YLabel: "response time (µs/query)",
		Series: []Series{tptS, bfS},
	}}
}

// chooseLeafAblation inserts the same synthetic pattern set with and
// without the paper's Intersect ChooseLeaf rule and compares search cost
// in nodes touched per query — the clustering benefit the rule buys.
func chooseLeafAblation(o Options) []Figure {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + 1100))
	const regions = 400
	withS := Series{Name: "with Intersect step"}
	withoutS := Series{Name: "without (signature tree)"}
	counts := patternCounts(o)
	queries := 200
	if o.Quick {
		queries = 50
	}
	for _, n := range counts {
		items := syntheticItems(rng, n, fig11ConsequenceLen, regions)
		qs := syntheticQueries(rng, queries, fig11ConsequenceLen, regions)

		build := func(disable bool) float64 {
			tree := tpt.New(fig11ConsequenceLen, regions, tpt.Options{DisableIntersectStep: disable})
			for _, it := range items {
				tree.Insert(it)
			}
			total := 0
			for _, q := range qs {
				total += tree.SearchIntersect(q, func(tpt.Item) bool { return true })
			}
			return float64(total) / float64(len(qs))
		}
		withS.X = append(withS.X, float64(n))
		withS.Y = append(withS.Y, build(false))
		withoutS.X = append(withoutS.X, float64(n))
		withoutS.Y = append(withoutS.Y, build(true))
	}
	return []Figure{{
		ID:     "tpt-chooseleaf",
		Title:  "ChooseLeaf Intersect step ablation",
		XLabel: "number of patterns",
		YLabel: "tree nodes touched per query",
		Series: []Series{withS, withoutS},
	}}
}
