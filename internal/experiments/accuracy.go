package experiments

import (
	"fmt"
	"math/rand"

	"hpm/internal/core"
	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/motion"
	"hpm/internal/pattern"
)

func init() {
	register("fig5", "Figure 5: average error vs prediction length, HPM vs RMF, four datasets", fig5)
	register("fig6", "Figure 6: average error vs number of training sub-trajectories (prediction length 50)", fig6)
	register("weights", "Ablation: premise-similarity weight functions (linear/quadratic/exponential/factorial)", weightsAblation)
	register("fallback", "Ablation: motion-function fallback (RMF vs linear vs none) across prediction lengths", fallbackAblation)
	register("bqp-penalty", "Ablation: BQP premise penalty (Equation 5 vs Equation 4) on distant queries", bqpPenaltyAblation)
	register("trelax", "Ablation: BQP time relaxation length tε (paper: best at 1..3)", trelaxAblation)
}

// predictionLengths returns the Figure 5 x-axis.
func predictionLengths(o Options) []int {
	if o.Quick {
		return []int{20, 60, 100}
	}
	return []int{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
}

// fig5 sweeps the prediction length with everything else at defaults. HPM
// stays flat and low; RMF's error climbs with the horizon.
func fig5(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		m := e.train(core.Params{}, 0)
		rng := rand.New(rand.NewSource(o.Seed + 100))
		rmf := rmfBaseline()

		lengths := predictionLengths(o)
		hpmS := Series{Name: "HPM"}
		rmfS := Series{Name: "RMF"}
		for _, pl := range lengths {
			cases := e.queryCases(e.sz.queries, pl, rng)
			hpmS.X = append(hpmS.X, float64(pl))
			hpmS.Y = append(hpmS.Y, e.hpmError(m, cases, pl))
			rmfS.X = append(rmfS.X, float64(pl))
			rmfS.Y = append(rmfS.Y, e.motionError(rmf, cases, pl))
		}
		figs = append(figs, Figure{
			ID:     "fig5-" + kind.String(),
			Title:  "Effect of Prediction Length — " + kind.String(),
			XLabel: "prediction length (time)",
			YLabel: "average error (distance)",
			Series: []Series{hpmS, rmfS},
		})
	}
	return figs
}

// fig6 sweeps the number of sub-trajectories used to mine patterns at a
// fixed prediction length of 50. HPM starts near RMF (too little history
// for patterns) and drops steeply once enough days accumulate.
func fig6(o Options) []Figure {
	o = o.withDefaults()
	counts := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	predLen := 50
	if o.Quick {
		counts = []int{5, 10, 20}
		predLen = 30
	}
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, counts[len(counts)-1])
		rng := rand.New(rand.NewSource(o.Seed + 200))
		cases := e.queryCases(e.sz.queries, predLen, rng)
		rmf := rmfBaseline()
		rmfErr := e.motionError(rmf, cases, predLen)

		hpmS := Series{Name: "HPM"}
		rmfS := Series{Name: "RMF"}
		for _, n := range counts {
			m := e.train(core.Params{}, n)
			hpmS.X = append(hpmS.X, float64(n))
			hpmS.Y = append(hpmS.Y, e.hpmError(m, cases, predLen))
			rmfS.X = append(rmfS.X, float64(n))
			rmfS.Y = append(rmfS.Y, rmfErr) // RMF ignores the mined history
		}
		figs = append(figs, Figure{
			ID:     "fig6-" + kind.String(),
			Title:  "Effect of Sub-trajectories — " + kind.String(),
			XLabel: "number of sub-trajectories",
			YLabel: "average error (distance)",
			Series: []Series{hpmS, rmfS},
		})
	}
	return figs
}

// weightsAblation compares the four §VI-A weight functions at prediction
// length 50; the paper reports linear and quadratic ahead.
func weightsAblation(o Options) []Figure {
	o = o.withDefaults()
	predLen := 50
	if o.Quick {
		predLen = 30
	}
	weights := []hpa.WeightFunc{hpa.WeightLinear, hpa.WeightQuadratic, hpa.WeightExponential, hpa.WeightFactorial}
	fig := Figure{
		ID:     "weights",
		Title:  fmt.Sprintf("Premise weight functions (prediction length %d)", predLen),
		XLabel: "dataset (0=Bike 1=Cow 2=Car 3=Airplane)",
		YLabel: "average error (distance)",
	}
	series := make([]Series, len(weights))
	diffs := make([]Series, len(weights))
	for wi, w := range weights {
		series[wi] = Series{Name: w.String()}
		diffs[wi] = Series{Name: w.String()}
	}
	// Longer premises make the weight functions distinguishable; the
	// default MaxLength 3 yields mostly one- and two-region premises whose
	// top-1 ranking rarely depends on the weighting.
	mining := pattern.Config{MaxLength: 4, PremiseSpan: 6}
	for di, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		rng := rand.New(rand.NewSource(o.Seed + 300))
		cases := e.queryCases(e.sz.queries, predLen, rng)
		var linearPreds []geom.Point
		for wi, w := range weights {
			m := e.train(core.Params{Weight: w, Mining: mining}, 0)
			preds := e.predictions(m, cases, predLen)
			if wi == 0 {
				linearPreds = preds
			}
			var total float64
			for i, qc := range cases {
				total += preds[i].Dist(e.truth(qc, predLen))
			}
			series[wi].X = append(series[wi].X, float64(di))
			series[wi].Y = append(series[wi].Y, total/float64(len(cases)))
			diffs[wi].X = append(diffs[wi].X, float64(di))
			diffs[wi].Y = append(diffs[wi].Y, disagreementPct(preds, linearPreds))
		}
	}
	fig.Series = series
	return []Figure{fig, {
		ID:     "weights-diff",
		Title:  "Top-1 disagreement with the linear weighting",
		XLabel: fig.XLabel,
		YLabel: "queries answered differently (%)",
		Series: diffs,
	}}
}

// fallbackAblation pits the full hybrid (patterns+RMF) against
// patterns+linear, patterns only, and the two raw motion functions.
func fallbackAblation(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		rng := rand.New(rand.NewSource(o.Seed + 400))
		mRMF := e.train(core.Params{Motion: core.MotionRMF}, 0)
		mLin := e.train(core.Params{Motion: core.MotionLinear}, 0)
		mNone := e.train(core.Params{Motion: core.MotionNone}, 0)
		rmf := rmfBaseline()
		bounds := e.bounds()
		lin := func() motion.Function { return motion.NewLinear(&bounds) }

		names := []string{"HPM+RMF", "HPM+Linear", "HPM-only", "RMF", "Linear"}
		series := make([]Series, len(names))
		for i, n := range names {
			series[i] = Series{Name: n}
		}
		for _, pl := range predictionLengths(o) {
			cases := e.queryCases(e.sz.queries, pl, rng)
			ys := []float64{
				e.hpmError(mRMF, cases, pl),
				e.hpmError(mLin, cases, pl),
				e.hpmError(mNone, cases, pl),
				e.motionError(rmf, cases, pl),
				e.motionError(lin, cases, pl),
			}
			for i := range series {
				series[i].X = append(series[i].X, float64(pl))
				series[i].Y = append(series[i].Y, ys[i])
			}
		}
		figs = append(figs, Figure{
			ID:     "fallback-" + kind.String(),
			Title:  "Motion fallback ablation — " + kind.String(),
			XLabel: "prediction length (time)",
			YLabel: "average error (distance)",
			Series: series,
		})
	}
	return figs
}

// bqpPenaltyAblation measures distant-time queries with Equation 5 (the
// premise penalty) against Equation 4.
func bqpPenaltyAblation(o Options) []Figure {
	o = o.withDefaults()
	predLen := 100
	if o.Quick {
		predLen = 70
	}
	fig := Figure{
		ID:     "bqp-penalty",
		Title:  fmt.Sprintf("BQP premise penalty (distant queries, prediction length %d)", predLen),
		XLabel: "dataset (0=Bike 1=Cow 2=Car 3=Airplane)",
		YLabel: "average error (distance)",
	}
	eq5 := Series{Name: "Eq5-penalized"}
	eq4 := Series{Name: "Eq4-raw"}
	diff := Series{Name: "top-1 diff %"}
	for di, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		rng := rand.New(rand.NewSource(o.Seed + 500))
		cases := e.queryCases(e.sz.queries, predLen, rng)
		mPen := e.train(core.Params{}, 0)
		mRaw := e.train(core.Params{DisablePremisePenalty: true}, 0)
		penPreds := e.predictions(mPen, cases, predLen)
		rawPreds := e.predictions(mRaw, cases, predLen)
		avg := func(preds []geom.Point) float64 {
			var total float64
			for i, qc := range cases {
				total += preds[i].Dist(e.truth(qc, predLen))
			}
			return total / float64(len(cases))
		}
		eq5.X = append(eq5.X, float64(di))
		eq5.Y = append(eq5.Y, avg(penPreds))
		eq4.X = append(eq4.X, float64(di))
		eq4.Y = append(eq4.Y, avg(rawPreds))
		diff.X = append(diff.X, float64(di))
		diff.Y = append(diff.Y, disagreementPct(penPreds, rawPreds))
	}
	fig.Series = []Series{eq5, eq4, diff}
	return []Figure{fig}
}

// trelaxAblation sweeps BQP's time relaxation length tε over 1..5 on
// distant queries; the paper observed the best accuracy at 1 <= tε <= 3.
func trelaxAblation(o Options) []Figure {
	o = o.withDefaults()
	predLen := 100
	if o.Quick {
		predLen = 70
	}
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		rng := rand.New(rand.NewSource(o.Seed + 600))
		cases := e.queryCases(e.sz.queries, predLen, rng)
		s := Series{Name: "HPM"}
		for te := 1; te <= 5; te++ {
			m := e.train(core.Params{TimeRelaxation: te}, 0)
			s.X = append(s.X, float64(te))
			s.Y = append(s.Y, e.hpmError(m, cases, predLen))
		}
		figs = append(figs, Figure{
			ID:     "trelax-" + kind.String(),
			Title:  fmt.Sprintf("Time relaxation length (distant queries, prediction length %d) — %s", predLen, kind),
			XLabel: "time relaxation tε",
			YLabel: "average error (distance)",
			Series: []Series{s},
		})
	}
	return figs
}
