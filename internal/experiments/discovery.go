package experiments

import (
	"math/rand"

	"hpm/internal/core"
	"hpm/internal/pattern"
)

func init() {
	register("fig7", "Figure 7: effect of DBSCAN Eps on pattern count (a) and accuracy (b)", fig7)
	register("fig8", "Figure 8: effect of DBSCAN MinPts on pattern count (a) and accuracy (b)", fig8)
	register("fig9", "Figure 9: effect of minimum confidence on pattern count (a) and accuracy (b)", fig9)
	register("pruning", "§IV claim: rule reduction from the paper's pruning vs classic Apriori rule generation", pruningAblation)
}

// discoverySweep runs one (a) pattern-count + (b) accuracy figure pair over
// a parameter sweep, training one model per (dataset, value).
func discoverySweep(o Options, id, title, xlabel string, xs []float64,
	params func(x float64) core.Params) []Figure {
	o = o.withDefaults()
	predLen := 50
	if o.Quick {
		predLen = 30
	}
	counts := Figure{
		ID: id + "a", Title: title + " — number of patterns",
		XLabel: xlabel, YLabel: "number of patterns",
	}
	errors := Figure{
		ID: id + "b", Title: title + " — prediction accuracy",
		XLabel: xlabel, YLabel: "average error (distance)",
	}
	for _, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		rng := rand.New(rand.NewSource(o.Seed + 700))
		cases := e.queryCases(e.sz.queries, predLen, rng)
		cs := Series{Name: kind.String()}
		es := Series{Name: kind.String()}
		for _, x := range xs {
			m := e.train(params(x), 0)
			cs.X = append(cs.X, x)
			cs.Y = append(cs.Y, float64(m.NumPatterns()))
			es.X = append(es.X, x)
			es.Y = append(es.Y, e.hpmError(m, cases, predLen))
		}
		counts.Series = append(counts.Series, cs)
		errors.Series = append(errors.Series, es)
	}
	return []Figure{counts, errors}
}

// fig7 sweeps Eps over the paper's 22..38 range: larger Eps builds clusters
// more easily, so pattern counts climb; accuracy improves until patterns
// are sufficient, most visibly on the weakly-patterned Airplane data.
func fig7(o Options) []Figure {
	xs := []float64{22, 24, 26, 28, 30, 32, 34, 36, 38}
	if o.Quick {
		xs = []float64{22, 30, 38}
	}
	return discoverySweep(o, "fig7", "Effect of Eps", "Eps", xs,
		func(x float64) core.Params { return core.Params{Eps: x} })
}

// fig8 sweeps MinPts over 3..7: a higher density threshold builds fewer
// clusters, so pattern counts fall and errors rise.
func fig8(o Options) []Figure {
	xs := []float64{3, 4, 5, 6, 7}
	if o.Quick {
		xs = []float64{3, 5, 7}
	}
	return discoverySweep(o, "fig8", "Effect of MinPts", "MinPts", xs,
		func(x float64) core.Params { return core.Params{MinPts: int(x)} })
}

// fig9 sweeps the minimum confidence over 0..100%: counts fall
// monotonically; accuracy holds until the useful patterns start dying —
// earliest on Airplane, whose rules have the least confidence to spare.
func fig9(o Options) []Figure {
	xs := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if o.Quick {
		xs = []float64{0, 30, 60, 90}
	}
	return discoverySweep(o, "fig9", "Effect of minimum confidence", "minimum confidence (%)", xs,
		func(x float64) core.Params {
			c := x / 100
			if c == 0 {
				c = 1e-9 // zero means "default" elsewhere; epsilon keeps every rule
			}
			return core.Params{Mining: pattern.Config{MinConfidence: c}}
		})
}

// pruningAblation reproduces the §IV claim that the monotone-time and
// single-consequence pruning removes a large share (the paper: 58%) of the
// rules classic Apriori generation would emit.
func pruningAblation(o Options) []Figure {
	o = o.withDefaults()
	pruned := Series{Name: "pruned rules"}
	unpruned := Series{Name: "unpruned rules"}
	reduction := Series{Name: "reduction %"}
	for di, kind := range datasetsFor(o) {
		e := newEnv(kind, o, 0)
		m := e.train(core.Params{Mining: pattern.Config{CountUnpruned: true}}, 0)
		s := m.MiningStats()
		x := float64(di)
		pruned.X = append(pruned.X, x)
		pruned.Y = append(pruned.Y, float64(s.Rules))
		unpruned.X = append(unpruned.X, x)
		unpruned.Y = append(unpruned.Y, float64(s.UnprunedRules))
		reduction.X = append(reduction.X, x)
		reduction.Y = append(reduction.Y, s.ReductionPct())
	}
	return []Figure{{
		ID:     "pruning",
		Title:  "Rule pruning effect (paper §IV: 58% reduction)",
		XLabel: "dataset (0=Bike 1=Cow 2=Car 3=Airplane)",
		YLabel: "rules / percent",
		Series: []Series{pruned, unpruned, reduction},
	}}
}
