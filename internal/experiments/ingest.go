package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hpm"
	"hpm/store"
)

func init() {
	register("ingest",
		"Ingest throughput: group-commit WAL under concurrent sync writers, shard-map contention, and fleet-batch amortization", ingest)
}

// ingestWriters is the concurrency sweep of the ingest figures.
var ingestWriters = []int{1, 2, 4, 8}

// fleetBatchSizes is the ObserveAll amortization sweep; size 1 is the
// per-object ObserveBatch baseline.
var fleetBatchSizes = []int{1, 4, 16, 64}

// ingest measures the durable write path:
//
//   - acknowledged ops/s and fsyncs/op at 1/2/4/8 concurrent writers in
//     sync mode — the group-commit figure. One writer pays one fsync per
//     ack; concurrent writers stage into a shared batch a leader flushes
//     with a single fsync, so fsyncs/op falls below 1 and throughput
//     rises past the disk's fsync rate. The effect survives GOMAXPROCS=1
//     (recorded in the titles): fsync blocks in a syscall, releasing the
//     CPU to the writers that are staging the next batch;
//   - the same sweep with fsyncs off, sharded (default 64) vs a single
//     shard — isolating object-table lock contention from disk latency;
//   - fleet batches: a fixed budget of observations acknowledged through
//     ObserveAll in growing batch sizes, all in sync mode. Every batch is
//     one WAL group write and one fsync regardless of how many objects it
//     touches, so throughput scales with the batch size.
//
// Writers use distinct ids (fleet ingest, not one object's write lock)
// and training is disabled so the figures time the ingest path alone.
func ingest(o Options) []Figure {
	o = o.withDefaults()
	ops := 2000 // acknowledged ObserveBatch calls per concurrency level
	if o.Quick {
		ops = 400
	}

	syncThr := Series{Name: "sync ops/s"}
	syncF := Series{Name: "fsyncs/op"}
	shardThr := Series{Name: "64 shards"}
	oneThr := Series{Name: "1 shard"}

	for _, w := range ingestWriters {
		opsPerSec, fsyncsPerOp := ingestLevel(false, 0, w, ops)
		syncThr.X = append(syncThr.X, float64(w))
		syncThr.Y = append(syncThr.Y, opsPerSec)
		syncF.X = append(syncF.X, float64(w))
		syncF.Y = append(syncF.Y, fsyncsPerOp)

		opsPerSec, _ = ingestLevel(true, 0, w, ops)
		shardThr.X = append(shardThr.X, float64(w))
		shardThr.Y = append(shardThr.Y, opsPerSec)
		opsPerSec, _ = ingestLevel(true, 1, w, ops)
		oneThr.X = append(oneThr.X, float64(w))
		oneThr.Y = append(oneThr.Y, opsPerSec)
	}

	fleet := fleetBatchSweep(ops)

	suffix := fmt.Sprintf(" — %d ops/level, GOMAXPROCS=%d", ops, runtime.GOMAXPROCS(0))
	return []Figure{
		{
			ID:     "ingest-sync-throughput",
			Title:  "Durable Ingest Throughput vs Writers (sync WAL)" + suffix,
			XLabel: "writers",
			YLabel: "acknowledged ops/s",
			Series: []Series{syncThr},
		},
		{
			ID:     "ingest-sync-fsyncs",
			Title:  "Fsyncs per Acknowledged Op vs Writers (group commit)" + suffix,
			XLabel: "writers",
			YLabel: "fsyncs/op",
			Series: []Series{syncF},
		},
		{
			ID:     "ingest-nosync-shards",
			Title:  "In-Memory Ingest vs Writers: sharded vs single-lock table" + suffix,
			XLabel: "writers",
			YLabel: "ops/s",
			Series: []Series{shardThr, oneThr},
		},
		{
			ID:     "ingest-fleet-batch",
			Title:  "Fleet Batch Amortization (ObserveAll, sync WAL)" + suffix,
			XLabel: "observations per batch",
			YLabel: "acknowledged observations/s",
			Series: []Series{fleet},
		},
	}
}

// ingestLevel runs one concurrency level against a fresh durable store
// and returns acknowledged ops/s and fsyncs per op.
func ingestLevel(noSync bool, shards, writers, total int) (opsPerSec, fsyncsPerOp float64) {
	st, dir := ingestStore(noSync, shards)
	defer os.RemoveAll(dir)
	defer st.Close()

	pts := []hpm.Point{hpm.Pt(1, 2), hpm.Pt(3, 4), hpm.Pt(5, 6), hpm.Pt(7, 8)}
	before := st.WALStats()
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("writer-%d", w)
			for next.Add(1) <= int64(total) {
				if err := st.ObserveBatch(id, pts); err != nil {
					panic(fmt.Sprintf("experiments: ingest observe: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	after := st.WALStats()
	return float64(total) / wall.Seconds(),
		float64(after.Fsyncs-before.Fsyncs) / float64(total)
}

// fleetBatchSweep acknowledges a fixed observation budget through
// ObserveAll at growing batch sizes, sync WAL, one goroutine.
func fleetBatchSweep(total int) Series {
	s := Series{Name: "ObserveAll"}
	pts := []hpm.Point{hpm.Pt(1, 2), hpm.Pt(3, 4)}
	for _, size := range fleetBatchSizes {
		st, dir := ingestStore(false, 0)
		batch := make([]store.Observation, size)
		for i := range batch {
			batch[i] = store.Observation{ID: fmt.Sprintf("fleet-%d", i), Points: pts}
		}
		rounds := total / size
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if err := st.ObserveAll(batch); err != nil {
				panic(fmt.Sprintf("experiments: fleet batch: %v", err))
			}
		}
		wall := time.Since(start)
		st.Close()
		os.RemoveAll(dir)
		s.X = append(s.X, float64(size))
		s.Y = append(s.Y, float64(rounds*size)/wall.Seconds())
	}
	return s
}

// ingestStore opens a durable store in a fresh temp dir with training
// disabled; the caller closes it and removes the dir.
func ingestStore(noSync bool, shards int) (*store.Store, string) {
	dir, err := os.MkdirTemp("", "hpm-ingest-*")
	if err != nil {
		panic(fmt.Sprintf("experiments: tempdir: %v", err))
	}
	st, err := store.Open(dir, store.Options{
		Config:          hpm.Config{Period: 300},
		MinTrainPeriods: 1 << 20, // never train: time the ingest path alone
		WALNoSync:       noSync,
		Shards:          shards,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: open: %v", err))
	}
	return st, dir
}
