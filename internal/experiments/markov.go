package experiments

import (
	"fmt"

	"hpm"
	"hpm/internal/datagen"
	"hpm/internal/evalq"
	"hpm/store"
)

func init() {
	register("markov",
		"Three-way ensemble: pattern vs markov vs motion accuracy per horizon, and measured adaptive routing vs the best single path", markovEnsemble)
}

// markovEnsemble replays each dataset through a live store with the
// Markov next-region path enabled and adaptive routing on, in
// test-then-train order. Every sampled instant answers the horizon sweep
// four ways — the forced pattern dispatch, the forced markov chain, the
// forced motion fallback (the three shadow calls that feed the routing
// measurements), and the adaptively routed Predict — and all four answers
// are scored offline against the trajectory's known future. The first
// half of the streamed traffic is a measurement warm-up: the shadows fill
// the accuracy matrix routing decides by, and nothing is scored into the
// figures. The second half is scored, so the routed column reflects
// routing decisions made on genuinely prior measurements, not hindsight.
//
// The figures are the ISSUE's acceptance artifact: the three-column
// accuracy matrix per dataset, plus routing against the best single path
// (the one fixed path with the lowest overall mean error on that
// dataset). Routing specializes per horizon bucket, so it wins wherever
// the per-bucket winner differs from the overall winner.
func markovEnsemble(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	for _, kind := range datasetsFor(o) {
		figs = append(figs, markovDataset(kind, o)...)
	}
	return figs
}

// markovCell accumulates one (path, horizon) cell of the offline score.
type markovCell struct {
	attempts int
	hits     int
	errSum   float64
}

func (c *markovCell) add(err, hitDist float64) {
	c.attempts++
	if err <= hitDist {
		c.hits++
	}
	c.errSum += err
}

func (c *markovCell) hitRate() float64 {
	if c.attempts == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.attempts)
}

func (c *markovCell) meanErr() float64 {
	if c.attempts == 0 {
		return 0
	}
	return c.errSum / float64(c.attempts)
}

// markovPaths are the scored columns, in figure order. The first three
// are the single paths; the last is the live routed answer.
var markovPaths = []string{"pattern", "markov", "fallback", "routed"}

func markovDataset(kind datagen.Kind, o Options) []Figure {
	sz := scale(o)
	horizons := evalHorizons(o)
	spec := datagen.DefaultSpec(kind, o.Seed)
	spec.Period = sz.period
	spec.SubTrajectories = sz.trainSubs + sz.querySubs

	tr := datagen.Generate(spec)
	st, err := store.New(store.Options{
		Config:              hpm.Config{Period: spec.Period}, // MarkovOrder 0: markov path on at default order
		MinTrainPeriods:     sz.trainSubs,
		SynchronousTraining: true,
		AdaptiveRouting:     true,
		AdaptiveMinSamples:  8,
		Eval: evalq.Config{
			// Four parked answers per horizon per instant, and the longest
			// horizon waits ~200 timestamps for truth; size the ring so no
			// measurement is evicted before it scores.
			RingSize: 8192,
			Buckets:  append([]int(nil), horizons...),
		},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: markov store: %v", err))
	}
	defer st.Close()

	id := kind.String()
	if err := st.ObserveBatch(id, tr.Slice(0, sz.trainSubs*spec.Period)); err != nil {
		panic(fmt.Sprintf("experiments: markov train: %v", err))
	}
	hitDist := st.EvalConfig().HitDistance

	cells := map[string]map[int]*markovCell{}
	for _, p := range markovPaths {
		cells[p] = map[int]*markovCell{}
		for _, h := range horizons {
			cells[p][h] = &markovCell{}
		}
	}
	score := func(path string, h int, preds []hpm.Prediction, perr error, truth hpm.Point, last hpm.Point) {
		loc := last // nothing answered: charged the last known location
		if perr == nil && len(preds) > 0 {
			loc = preds[0].Location
		}
		cells[path][h].add(loc.Dist(truth), hitDist)
	}

	stride := spec.Period / 10
	total := tr.Len()
	start := sz.trainSubs * spec.Period
	warmEnd := start + (total-start)/2
	for base := start; base < total; base += stride {
		now, err := st.Now(id)
		if err != nil {
			panic(fmt.Sprintf("experiments: markov now: %v", err))
		}
		warm := base < warmEnd
		for _, h := range horizons {
			if now+h >= total {
				continue // truth would never arrive
			}
			truth, last := tr.At(now+h), tr.At(now)
			pat, perr := st.PredictPattern(id, now+h, 1)
			mk, merr := st.PredictMarkov(id, now+h)
			fb, ferr := st.PredictFallback(id, now+h)
			if warm {
				continue // measurement only: feed the matrix, score nothing
			}
			score("pattern", h, pat, perr, truth, last)
			score("markov", h, mk, merr, truth, last)
			score("fallback", h, fb, ferr, truth, last)
			routed, rerr := st.Predict(id, now+h, 1)
			score("routed", h, routed, rerr, truth, last)
		}
		end := base + stride
		if end > total {
			end = total
		}
		if err := st.ObserveBatch(id, tr.Slice(base, end)); err != nil {
			panic(fmt.Sprintf("experiments: markov observe: %v", err))
		}
	}

	names := map[string]string{
		"pattern":  "pattern path",
		"markov":   "markov path",
		"fallback": "motion fallback",
		"routed":   "adaptive routing",
	}
	series := func(metric func(*markovCell) float64) []Series {
		out := make([]Series, 0, len(markovPaths))
		for _, p := range markovPaths {
			s := Series{Name: names[p]}
			for _, h := range horizons {
				s.X = append(s.X, float64(h))
				s.Y = append(s.Y, metric(cells[p][h]))
			}
			out = append(out, s)
		}
		return out
	}

	// The best single path: the fixed path with the lowest overall mean
	// error across the scored traffic — what a deployment without routing
	// would have to pick once, in advance, for the whole workload.
	best := "pattern"
	bestErr := 0.0
	for i, p := range []string{"pattern", "markov", "fallback"} {
		var sum float64
		var n int
		for _, h := range horizons {
			sum += cells[p][h].errSum
			n += cells[p][h].attempts
		}
		if n == 0 {
			continue
		}
		if mean := sum / float64(n); i == 0 || mean < bestErr {
			best, bestErr = p, mean
		}
	}
	routing := Series{Name: "adaptive routing"}
	single := Series{Name: fmt.Sprintf("best single path (%s)", best)}
	for _, h := range horizons {
		routing.X = append(routing.X, float64(h))
		routing.Y = append(routing.Y, cells["routed"][h].meanErr())
		single.X = append(single.X, float64(h))
		single.Y = append(single.Y, cells[best][h].meanErr())
	}

	suffix := fmt.Sprintf(" (hit distance %g, warm-up then scored) — %s", hitDist, kind)
	return []Figure{
		{
			ID:     "markov-hit-" + kind.String(),
			Title:  "Ensemble Hit Rate vs Horizon" + suffix,
			XLabel: "prediction horizon",
			YLabel: "hit rate",
			Series: series((*markovCell).hitRate),
		},
		{
			ID:     "markov-err-" + kind.String(),
			Title:  "Ensemble Mean Error vs Horizon" + suffix,
			XLabel: "prediction horizon",
			YLabel: "mean error distance",
			Series: series((*markovCell).meanErr),
		},
		{
			ID:     "markov-routing-" + kind.String(),
			Title:  "Adaptive Routing vs Best Single Path" + suffix,
			XLabel: "prediction horizon",
			YLabel: "mean error distance",
			Series: []Series{routing, single},
		},
	}
}
