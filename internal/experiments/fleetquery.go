package experiments

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpm"
	"hpm/internal/datagen"
	"hpm/internal/spatial"
	"hpm/serve"
	"hpm/store"
)

func init() {
	registerJSON("fleetquery", "fleet_query",
		"Fleet-wide predictive range/kNN queries: incrementally maintained spatial index vs brute-force scan, SSE push throughput, and per-observe maintenance overhead", fleetQuery)
}

// fleetSizes is the fleet-size sweep (objects tracked per store).
var fleetSizes = []int{1000, 10000, 100000}

// fleetSubscribers is the SSE push sweep.
var fleetSubscribers = []int{1, 4, 16}

// fleetTrained is how many objects get enough history to train a real
// model, so the identity checks cover pattern answers, motion fallbacks,
// and untrained extrapolation in one fleet.
const fleetTrained = 50

// fleetQuery measures what the spatial index buys:
//
//   - range and kNN query latency, indexed vs brute-force scan, at
//     1k/10k/100k objects. The scan recomputes every object's prediction
//     per query; the index answers from entries maintained on the observe
//     path, so the gap widens linearly with fleet size;
//   - the identity proof: on every sampled query both answers are compared
//     and must match exactly (aging is off) — recorded as match=1 series;
//   - SSE push throughput: events delivered per second across 1/4/16
//     concurrent /subscribe streams at each fleet size;
//   - ingest overhead: ObserveBatch throughput while maintaining the index
//     vs an identical store without it.
func fleetQuery(o Options) []Figure {
	o = o.withDefaults()
	sizes := fleetSizes
	subs := fleetSubscribers
	idxQueries, scanQueries, checks := 300, 20, 10
	pushWindow := 600 * time.Millisecond
	if o.Quick {
		sizes = []int{200, 1000}
		subs = []int{1, 4}
		idxQueries, scanQueries, checks = 60, 6, 4
		pushWindow = 250 * time.Millisecond
	}

	idxRange := Series{Name: "indexed"}
	scanRange := Series{Name: "brute-force"}
	idxKNN := Series{Name: "indexed"}
	scanKNN := Series{Name: "brute-force"}
	speedupRange := Series{Name: "range speedup"}
	speedupKNN := Series{Name: "knn speedup"}
	matchRange := Series{Name: "range match"}
	matchKNN := Series{Name: "knn match"}
	obsIdx := Series{Name: "with index"}
	obsPlain := Series{Name: "without index"}
	var pushSeries []Series

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(o.Seed*1000 + int64(n)))

		st, obsPerSec := buildFleet(n, true, rng)
		plain, plainPerSec := buildFleet(n, false, rand.New(rand.NewSource(o.Seed*1000+int64(n))))
		// Close the plain fleet before timing queries: a second 100k-object
		// store kept alive would distort the latency numbers via GC pressure.
		plain.Close()
		obsIdx.X = append(obsIdx.X, float64(n))
		obsIdx.Y = append(obsIdx.Y, obsPerSec)
		obsPlain.X = append(obsPlain.X, float64(n))
		obsPlain.Y = append(obsPlain.Y, plainPerSec)

		rl, sl := timeRange(st, rng, idxQueries, scanQueries)
		kl, skl := timeKNN(st, rng, idxQueries, scanQueries)
		x := float64(n)
		idxRange.X, idxRange.Y = append(idxRange.X, x), append(idxRange.Y, rl)
		scanRange.X, scanRange.Y = append(scanRange.X, x), append(scanRange.Y, sl)
		idxKNN.X, idxKNN.Y = append(idxKNN.X, x), append(idxKNN.Y, kl)
		scanKNN.X, scanKNN.Y = append(scanKNN.X, x), append(scanKNN.Y, skl)
		speedupRange.X, speedupRange.Y = append(speedupRange.X, x), append(speedupRange.Y, sl/rl)
		speedupKNN.X, speedupKNN.Y = append(speedupKNN.X, x), append(speedupKNN.Y, skl/kl)

		rm, km := verifyIdentity(st, rng, checks)
		matchRange.X, matchRange.Y = append(matchRange.X, x), append(matchRange.Y, rm)
		matchKNN.X, matchKNN.Y = append(matchKNN.X, x), append(matchKNN.Y, km)

		push := Series{Name: fmt.Sprintf("%d objects", n)}
		for _, nsub := range subs {
			push.X = append(push.X, float64(nsub))
			push.Y = append(push.Y, pushThroughput(st, nsub, pushWindow))
		}
		pushSeries = append(pushSeries, push)

		st.Close()
	}

	return []Figure{
		{
			ID:     "fleet-range-latency",
			Title:  "Predictive Range Query Latency vs Fleet Size (indexed vs brute-force)",
			XLabel: "objects",
			YLabel: "µs/query",
			Series: []Series{idxRange, scanRange},
		},
		{
			ID:     "fleet-knn-latency",
			Title:  "Predictive kNN Query Latency vs Fleet Size (indexed vs brute-force)",
			XLabel: "objects",
			YLabel: "µs/query",
			Series: []Series{idxKNN, scanKNN},
		},
		{
			ID:     "fleet-speedup",
			Title:  "Index Speedup over Brute-Force Scan vs Fleet Size",
			XLabel: "objects",
			YLabel: "speedup (x)",
			Series: []Series{speedupRange, speedupKNN},
		},
		{
			ID:     "fleet-identity",
			Title:  "Indexed Answers Identical to Brute-Force Recomputation (1 = every sampled query matched)",
			XLabel: "objects",
			YLabel: "match",
			Series: []Series{matchRange, matchKNN},
		},
		{
			ID:     "fleet-subscribe-throughput",
			Title:  "SSE Push Throughput vs Subscribers (/subscribe, 20ms interval)",
			XLabel: "subscribers",
			YLabel: "events/s",
			Series: pushSeries,
		},
		{
			ID:     "fleet-observe-overhead",
			Title:  "Ingest Throughput With and Without Index Maintenance",
			XLabel: "objects",
			YLabel: "observes/s",
			Series: []Series{obsIdx, obsPlain},
		},
	}
}

// buildFleet populates a store with n objects — fleetTrained of them with
// enough history for a real model, the rest short random walks — and
// returns it with the observe throughput measured during the build.
func buildFleet(n int, indexed bool, rng *rand.Rand) (*store.Store, float64) {
	opts := store.Options{
		Config:          hpm.Config{Period: 60},
		MinTrainPeriods: 4,
		EvalDisabled:    true,
	}
	if indexed {
		opts.FleetIndex = &spatial.Config{CellSize: 200}
	}
	st, err := store.New(opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: fleetquery store: %v", err))
	}

	trained := fleetTrained
	if trained > n/4 {
		trained = n / 4
	}
	observes := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("obj-%06d", i)
		var pts []hpm.Point
		if i < trained {
			spec := datagen.DefaultSpec(datagen.Car, int64(i+1))
			spec.Period = 60
			spec.SubTrajectories = 5
			pts = datagen.Generate(spec).Points()
		} else {
			pts = randomWalk(rng, 8)
		}
		if err := st.ObserveBatch(id, pts); err != nil {
			panic(fmt.Sprintf("experiments: fleetquery observe: %v", err))
		}
		observes++
	}
	wall := time.Since(start)
	if err := st.Flush(); err != nil {
		panic(fmt.Sprintf("experiments: fleetquery flush: %v", err))
	}
	return st, float64(observes) / wall.Seconds()
}

// randomWalk scatters a short track inside the data extent.
func randomWalk(rng *rand.Rand, n int) []hpm.Point {
	ext := datagen.Extent
	p := hpm.Pt(
		ext.Min.X+rng.Float64()*ext.Width(),
		ext.Min.Y+rng.Float64()*ext.Height(),
	)
	pts := make([]hpm.Point, n)
	for i := range pts {
		pts[i] = p
		p = ext.Clamp(hpm.Pt(p.X+rng.NormFloat64()*5, p.Y+rng.NormFloat64()*5))
	}
	return pts
}

// queryRect draws a rect covering 1% of the extent area (10% per side),
// the "which objects will be near here" window a dispatcher would ask
// for. Indexed range cost is dominated by materializing the matching
// objects, so selectivity — not fleet size — sets its latency.
func queryRect(rng *rand.Rand) hpm.Rect {
	ext := datagen.Extent
	w, h := ext.Width()*0.10, ext.Height()*0.10
	x := ext.Min.X + rng.Float64()*(ext.Width()-w)
	y := ext.Min.Y + rng.Float64()*(ext.Height()-h)
	return hpm.Rect{Min: hpm.Pt(x, y), Max: hpm.Pt(x+w, y+h)}
}

var fleetHorizons = []int{5, 20, 100}

// timeRange returns the mean indexed and brute-force range latencies (µs).
func timeRange(st *store.Store, rng *rand.Rand, idxN, scanN int) (idxUS, scanUS float64) {
	rects := make([]hpm.Rect, idxN)
	for i := range rects {
		rects[i] = queryRect(rng)
	}
	start := time.Now()
	for i, r := range rects {
		if _, err := st.QueryRange(r, fleetHorizons[i%len(fleetHorizons)]); err != nil {
			panic(fmt.Sprintf("experiments: fleetquery range: %v", err))
		}
	}
	idxUS = float64(time.Since(start).Microseconds()) / float64(idxN)
	start = time.Now()
	for i := 0; i < scanN; i++ {
		if _, err := st.ScanRange(rects[i], fleetHorizons[i%len(fleetHorizons)]); err != nil {
			panic(fmt.Sprintf("experiments: fleetquery scan: %v", err))
		}
	}
	scanUS = float64(time.Since(start).Microseconds()) / float64(scanN)
	return idxUS, scanUS
}

// timeKNN returns the mean indexed and brute-force kNN latencies (µs).
func timeKNN(st *store.Store, rng *rand.Rand, idxN, scanN int) (idxUS, scanUS float64) {
	pts := make([]hpm.Point, idxN)
	ext := datagen.Extent
	for i := range pts {
		pts[i] = hpm.Pt(ext.Min.X+rng.Float64()*ext.Width(), ext.Min.Y+rng.Float64()*ext.Height())
	}
	start := time.Now()
	for i, p := range pts {
		if _, err := st.QueryNearest(p, 10, fleetHorizons[i%len(fleetHorizons)]); err != nil {
			panic(fmt.Sprintf("experiments: fleetquery knn: %v", err))
		}
	}
	idxUS = float64(time.Since(start).Microseconds()) / float64(idxN)
	start = time.Now()
	for i := 0; i < scanN; i++ {
		if _, err := st.ScanNearest(pts[i], 10, fleetHorizons[i%len(fleetHorizons)]); err != nil {
			panic(fmt.Sprintf("experiments: fleetquery knn scan: %v", err))
		}
	}
	scanUS = float64(time.Since(start).Microseconds()) / float64(scanN)
	return idxUS, scanUS
}

// verifyIdentity compares indexed and brute-force answers on sampled
// queries; any mismatch aborts the experiment (the artifact must never
// record a speedup bought with wrong answers). Returns (1, 1) on success.
func verifyIdentity(st *store.Store, rng *rand.Rand, checks int) (rangeMatch, knnMatch float64) {
	ext := datagen.Extent
	for i := 0; i < checks; i++ {
		h := fleetHorizons[i%len(fleetHorizons)]
		r := queryRect(rng)
		got, err1 := st.QueryRange(r, h)
		want, err2 := st.ScanRange(r, h)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(got, want) {
			panic(fmt.Sprintf("experiments: fleetquery identity: range answers diverge at %v h=%d (%v, %v)", r, h, err1, err2))
		}
		p := hpm.Pt(ext.Min.X+rng.Float64()*ext.Width(), ext.Min.Y+rng.Float64()*ext.Height())
		gotK, err1 := st.QueryNearest(p, 10, h)
		wantK, err2 := st.ScanNearest(p, 10, h)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(gotK, wantK) {
			panic(fmt.Sprintf("experiments: fleetquery identity: knn answers diverge at %v h=%d (%v, %v)", p, h, err1, err2))
		}
	}
	return 1, 1
}

// pushThroughput opens nsub concurrent SSE subscriptions against the
// serving stack and counts events delivered within the window.
func pushThroughput(st *store.Store, nsub int, window time.Duration) float64 {
	srv := httptest.NewServer(serve.Handler(st))
	defer srv.Close()
	url := srv.URL + "/subscribe?minx=0&miny=0&maxx=2000&maxy=2000&horizon=20&interval_ms=20"

	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var events atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nsub; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: fleetquery subscribe: %v", err))
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				return // window expired before connect
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<24)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: ") {
					events.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	return float64(events.Load()) / time.Since(start).Seconds()
}
