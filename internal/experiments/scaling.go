package experiments

import (
	"fmt"
	"time"

	"hpm"
	"hpm/internal/core"
	"hpm/internal/datagen"
	"hpm/store"
)

func init() {
	register("scaling", "Scaling: train time vs Parallelism; store ingest, background vs synchronous retrains", scaling)
}

// scalingWorkers is the Parallelism sweep shared by every scaling figure.
var scalingWorkers = []int{1, 2, 4, 8}

// scaling measures what the Parallelism knob and background training buy:
//
//   - full-model train time at 1/2/4/8 workers (the parallel region
//     discovery, support counting, bounds and bulk-load sort phases);
//   - store ingest throughput while periodic retrains fire, background
//     pool vs the synchronous baseline;
//   - worst-case ObserveBatch latency in the same runs — the hot-path
//     stall that moving retrains off the observing goroutine removes.
//
// Speedups track GOMAXPROCS: on a single-CPU host the train-time curve is
// flat (the determinism guarantee makes that safe to rely on), while the
// latency win from backgrounding survives even there.
func scaling(o Options) []Figure {
	o = o.withDefaults()
	e := newEnv(datagen.Car, o, 0)

	trainS := Series{Name: "full train"}
	for _, w := range scalingWorkers {
		start := time.Now()
		e.train(core.Params{Parallelism: w}, 0)
		trainS.X = append(trainS.X, float64(w))
		trainS.Y = append(trainS.Y, float64(time.Since(start).Microseconds())/1000)
	}
	figs := []Figure{{
		ID:     "scaling-train",
		Title:  "Training Time vs Parallelism — " + datagen.Car.String(),
		XLabel: "workers",
		YLabel: "train time (ms)",
		Series: []Series{trainS},
	}}

	// Ingest: stream whole periods through a store with periodic retrains
	// enabled, so full trains land mid-stream (at periods 3, 5, 7, ...).
	// Throughput counts only caller-visible ObserveBatch time; the drain
	// (Close) is timed separately by the background pool.
	periods := 8
	if o.Quick {
		periods = 6
	}
	spec := datagen.DefaultSpec(datagen.Car, o.Seed)
	spec.Period = e.sz.period
	spec.SubTrajectories = periods
	pts := datagen.Generate(spec).Points()

	thr := map[bool]*Series{
		false: {Name: "background"},
		true:  {Name: "synchronous"},
	}
	lat := map[bool]*Series{
		false: {Name: "background"},
		true:  {Name: "synchronous"},
	}
	for _, w := range scalingWorkers {
		for _, synchronous := range []bool{false, true} {
			st, err := store.New(store.Options{
				Config:              hpm.Config{Period: e.sz.period, Parallelism: w},
				MinTrainPeriods:     3,
				RetrainEvery:        2,
				SynchronousTraining: synchronous,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: store: %v", err))
			}
			var maxBatch time.Duration
			start := time.Now()
			for p := 0; p < periods; p++ {
				b0 := time.Now()
				if err := st.ObserveBatch("car", pts[p*e.sz.period:(p+1)*e.sz.period]); err != nil {
					panic(fmt.Sprintf("experiments: observe: %v", err))
				}
				if d := time.Since(b0); d > maxBatch {
					maxBatch = d
				}
			}
			observeTime := time.Since(start)
			if err := st.Close(); err != nil {
				panic(fmt.Sprintf("experiments: close: %v", err))
			}
			s := thr[synchronous]
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, float64(len(pts))/observeTime.Seconds())
			l := lat[synchronous]
			l.X = append(l.X, float64(w))
			l.Y = append(l.Y, float64(maxBatch.Microseconds())/1000)
		}
	}
	figs = append(figs,
		Figure{
			ID:     "scaling-ingest",
			Title:  "Store Ingest Throughput vs Parallelism — " + datagen.Car.String(),
			XLabel: "workers",
			YLabel: "points/s observed",
			Series: []Series{*thr[false], *thr[true]},
		},
		Figure{
			ID:     "scaling-observe-latency",
			Title:  "Worst ObserveBatch Latency vs Parallelism — " + datagen.Car.String(),
			XLabel: "workers",
			YLabel: "max batch latency (ms)",
			Series: []Series{*lat[false], *lat[true]},
		},
	)
	return figs
}
