package markov

import (
	"bytes"
	"sync"
	"testing"
)

// cycleChain folds reps laps of the region cycle 0→1→2→...→n-1 into a
// fresh chain, one region per time unit.
func cycleChain(t *testing.T, cfg Config, n, reps int) *Chain {
	t.Helper()
	c := New(cfg)
	for rep := 0; rep < reps; rep++ {
		for i := 0; i < n; i++ {
			c.Observe(rep*n+i, uint32(i))
		}
	}
	return c
}

func TestPredictFollowsCycle(t *testing.T) {
	c := cycleChain(t, Config{Period: 4}, 4, 5)
	// Context ...2,3 at tc=19 (offset 3); next is region 0 at offset 0.
	res, ok := c.Predict([]uint32{2, 3}, 19, 20)
	if !ok {
		t.Fatal("chain did not answer")
	}
	if res.Region != 0 || res.Offset != 0 || res.Steps != 1 {
		t.Fatalf("got region %d offset %d steps %d, want 0/0/1", res.Region, res.Offset, res.Steps)
	}
	if res.Prob != 1 {
		t.Fatalf("deterministic cycle should predict with prob 1, got %g", res.Prob)
	}
	if res.Order != 2 {
		t.Fatalf("full 2-region context should match at order 2, got %d", res.Order)
	}
	// A longer horizon walks multiple steps around the cycle.
	res, ok = c.Predict([]uint32{2, 3}, 19, 22)
	if !ok || res.Region != 2 || res.Steps != 3 {
		t.Fatalf("3-step walk: got ok=%v region %d steps %d, want 2/3", ok, res.Region, res.Steps)
	}
}

func TestBackoffToShorterContext(t *testing.T) {
	c := cycleChain(t, Config{Period: 4, MinCount: 1}, 4, 3)
	// Context (9, 3): region 9 was never seen, so order-2 context is
	// unknown; order-1 context (3,) answers.
	res, ok := c.Predict([]uint32{9, 3}, 19, 20)
	if !ok {
		t.Fatal("chain did not back off to the order-1 context")
	}
	if res.Order != 1 || res.Region != 0 {
		t.Fatalf("got order %d region %d, want order 1 region 0", res.Order, res.Region)
	}
	// A fully unknown context cannot answer at any order.
	if _, ok := c.Predict([]uint32{8, 9}, 19, 20); ok {
		t.Fatal("unknown context should not answer")
	}
}

func TestMinCountGatesThinContexts(t *testing.T) {
	cfg := Config{Period: 8, MaxOrder: 1, MinCount: 3}
	c := New(cfg)
	// Two transitions 0→1: below MinCount 3.
	c.Observe(0, 0)
	c.Observe(1, 1)
	c.Observe(8, 0)
	c.Observe(9, 1)
	if _, ok := c.Predict([]uint32{0}, 16, 17); ok {
		t.Fatal("two observations should not clear MinCount 3")
	}
	c.Observe(16, 0)
	c.Observe(17, 1)
	if _, ok := c.Predict([]uint32{0}, 24, 25); !ok {
		t.Fatal("three observations should clear MinCount 3")
	}
}

func TestTieBreakSmallerRegion(t *testing.T) {
	cfg := Config{Period: 8, MaxOrder: 1, MinCount: 1}
	c := New(cfg)
	// 0→5 and 0→2 once each: the tie breaks toward region 2.
	c.Observe(0, 0)
	c.Observe(1, 5)
	c.Observe(8, 0)
	c.Observe(9, 2)
	res, ok := c.Predict([]uint32{0}, 16, 17)
	if !ok || res.Region != 2 {
		t.Fatalf("got ok=%v region %d, want region 2 (smaller id wins ties)", ok, res.Region)
	}
	if res.Prob != 0.5 {
		t.Fatalf("tie should carry prob 0.5, got %g", res.Prob)
	}
}

func TestWindowDecay(t *testing.T) {
	cfg := Config{Period: 4, MaxOrder: 1, MinCount: 1, Window: 8}
	c := New(cfg)
	// One lap 0→1→2→3, then a different successor for region 3 later.
	for i := 0; i < 4; i++ {
		c.Observe(i, uint32(i))
	}
	if st := c.Stats(); st.Transitions != 3 {
		t.Fatalf("transitions = %d, want 3", st.Transitions)
	}
	// At t=12, everything observed at t<=4 has expired.
	c.Observe(12, 3)
	c.Observe(13, 9)
	st := c.Stats()
	if st.Transitions != 1 {
		t.Fatalf("after decay: transitions = %d, want 1 (only 3→9)", st.Transitions)
	}
	res, ok := c.Predict([]uint32{3}, 13, 14)
	if !ok || res.Region != 9 {
		t.Fatalf("got ok=%v region %d, want the surviving successor 9", ok, res.Region)
	}
}

func TestGapResetsContext(t *testing.T) {
	cfg := Config{Period: 4, MaxOrder: 2, MinCount: 1}
	c := New(cfg)
	c.Observe(0, 0)
	c.Observe(1, 1)
	// A gap of a full period: the old context is stale, so the next
	// observation must not record a 1→7 transition.
	c.Observe(6, 7)
	if _, ok := c.Predict([]uint32{1}, 9, 10); ok {
		t.Fatal("gap-straddling transition should not have been recorded")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Period: 6},
		{Period: 6, MaxOrder: 2, MinCount: 1, Window: 12},
	} {
		c := New(cfg)
		for i := 0; i < 40; i++ {
			c.Observe(i, uint32(i%6+i/20)) // shifting cycle: non-trivial counts
		}
		enc := c.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("cfg %+v: re-encode differs from original", cfg)
		}
		if got.Config() != c.Config() {
			t.Fatalf("cfg round-trip: got %+v want %+v", got.Config(), c.Config())
		}
		// The decoded chain must keep evolving identically: observe the
		// same suffix into both and compare bytes again — the property WAL
		// replay equivalence rests on.
		for i := 40; i < 60; i++ {
			c.Observe(i, uint32(i%6))
			got.Observe(i, uint32(i%6))
		}
		if !bytes.Equal(got.Encode(), c.Encode()) {
			t.Fatalf("cfg %+v: decoded chain diverged under identical observes", cfg)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := cycleChain(t, Config{Period: 5, Window: 30}, 5, 8)
	b := cycleChain(t, Config{Period: 5, Window: 30}, 5, 8)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("identical observation sequences encoded differently")
	}
	if !bytes.Equal(a.Encode(), a.Encode()) {
		t.Fatal("repeated Encode of one chain differs (map-order leak)")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	c := cycleChain(t, Config{Period: 4}, 4, 3)
	enc := c.Encode()
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated blob decoded without error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
}

func TestResetClears(t *testing.T) {
	c := cycleChain(t, Config{Period: 4, Window: 100}, 4, 3)
	c.Reset()
	st := c.Stats()
	if st.Contexts != 0 || st.Transitions != 0 || st.Observed != 0 || st.Pending != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
	fresh := New(Config{Period: 4, Window: 100})
	if !bytes.Equal(c.Encode(), fresh.Encode()) {
		t.Fatal("reset chain does not encode like a fresh one")
	}
}

func TestConcurrentObservePredict(t *testing.T) {
	c := New(Config{Period: 8, Window: 64})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c.Observe(i, uint32(i%8))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c.Predict([]uint32{uint32(i % 8)}, i, i+3)
			if i%100 == 0 {
				c.Stats()
				c.Encode()
			}
		}
	}()
	wg.Wait()
}
