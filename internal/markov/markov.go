// Package markov implements a variable-order Markov chain over the
// frequent regions the pattern miner discovers — the NLPMM-style third
// answering path of the hybrid predictor.
//
// The chain observes the object's located region sequence one visit at a
// time: each located observation records a transition from every context
// of order 1..MaxOrder ending at the previous visit to the new region, so
// an update costs O(MaxOrder) map increments — no batch rebuild. A query
// walks the chain greedily from the query's recent region context,
// escaping to shorter contexts when a long one has no sufficiently
// supported successor (back-off), and advancing an implied clock by the
// period offsets of the predicted regions until the query time is
// reached. Counts optionally decay over a sliding window: every recorded
// transition is remembered with its timestamp, and transitions older than
// Window time units are decremented back out — the same retention policy
// the store applies to tracks via RetainPeriods.
//
// Chains serialize deterministically (contexts, successor distributions
// and pending-window events in sorted/insertion order), so a chain folded
// from the same observation sequence always encodes to the same bytes —
// the property the store's crash-recovery bit-identity tests rely on.
package markov

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// MaxSupportedOrder bounds the context length so context keys stay
// fixed-size comparable values.
const MaxSupportedOrder = 4

// Defaults for Config fields left at their zero value.
const (
	DefaultMaxOrder = 3
	DefaultMinCount = 2
)

const (
	chainMagic   = "HPMC"
	chainVersion = 1

	// maxWalkSteps bounds a prediction's greedy walk; each step advances
	// the implied clock by at least one time unit, so horizons beyond the
	// budget simply go unanswered (the motion fallback takes them).
	maxWalkSteps = 1024
	// minWalkProb abandons a walk whose cumulative probability has decayed
	// to noise — a long chain of near-ties predicts nothing useful.
	minWalkProb = 1e-9
)

// Config tunes a chain.
type Config struct {
	// MaxOrder is K, the longest context a transition is recorded (and
	// matched) under. 0 defaults to DefaultMaxOrder; capped at
	// MaxSupportedOrder.
	MaxOrder int
	// MinCount is the minimum transition count a context's best successor
	// needs to answer; thinner contexts escape to the next shorter one.
	// 0 defaults to DefaultMinCount.
	MinCount int
	// Window is the sliding retention window in time units; transitions
	// recorded more than Window units before the newest observation are
	// decayed back out. 0 retains everything.
	Window int
	// Period is the movement period T, used for offset arithmetic in the
	// prediction walk. Required (0 defaults to 1, which disables the
	// walk's wrap logic in a degenerate but safe way).
	Period int
}

func (c Config) withDefaults() Config {
	if c.MaxOrder <= 0 {
		c.MaxOrder = DefaultMaxOrder
	}
	if c.MaxOrder > MaxSupportedOrder {
		c.MaxOrder = MaxSupportedOrder
	}
	if c.MinCount <= 0 {
		c.MinCount = DefaultMinCount
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.Period <= 0 {
		c.Period = 1
	}
	return c
}

// ctxKey is a context of n region visits, most recent last — a fixed-size
// comparable map key.
type ctxKey struct {
	n uint8
	r [MaxSupportedOrder]uint32
}

func makeKey(ctx []uint32) ctxKey {
	var k ctxKey
	k.n = uint8(len(ctx))
	copy(k.r[:], ctx)
	return k
}

// event is one recorded transition awaiting window expiry.
type event struct {
	t    int
	key  ctxKey
	next uint32
}

// Result is one prediction from the chain.
type Result struct {
	Region uint32  // predicted region id
	Offset int     // the region's time offset within the period
	Prob   float64 // product of the walk's step probabilities
	Order  int     // context order the first step matched after back-off
	Steps  int     // walk length in region visits
}

// Stats summarizes a chain's shape.
type Stats struct {
	Contexts    int    // distinct contexts with live counts
	Transitions uint64 // live transition count across all contexts
	Observed    uint64 // located observations folded in (never decayed)
	Pending     int    // transitions awaiting window expiry
}

// Chain is a variable-order region-transition chain. All methods are safe
// for concurrent use.
type Chain struct {
	mu  sync.RWMutex
	cfg Config

	counts  map[ctxKey]map[uint32]uint32
	offsets map[uint32]uint32 // region id -> period offset, learned at observe
	hist    []uint32          // last MaxOrder located regions, most recent last

	lastT    int
	haveLast bool
	observed uint64
	live     uint64 // transitions currently counted

	events []event // window-expiry log, events[head:] live, insertion order
	head   int
}

// New returns an empty chain.
func New(cfg Config) *Chain {
	cfg = cfg.withDefaults()
	return &Chain{
		cfg:     cfg,
		counts:  make(map[ctxKey]map[uint32]uint32),
		offsets: make(map[uint32]uint32),
		hist:    make([]uint32, 0, cfg.MaxOrder),
	}
}

// Config returns the chain's configuration after defaulting.
func (c *Chain) Config() Config { return c.cfg }

// Observe folds one located region visit at absolute time t. Timestamps
// must be non-decreasing across calls; a gap of a full period or more
// resets the context (the object was untracked or unlocated too long for
// the old context to mean anything).
func (c *Chain) Observe(t int, region uint32) {
	c.mu.Lock()
	c.observeLocked(t, region)
	c.mu.Unlock()
}

func (c *Chain) observeLocked(t int, region uint32) {
	if c.cfg.Window > 0 {
		c.expireLocked(t)
	}
	c.offsets[region] = uint32(mod(t, c.cfg.Period))
	if c.haveLast && t-c.lastT >= c.cfg.Period {
		c.hist = c.hist[:0]
	}
	for n := 1; n <= len(c.hist); n++ {
		k := makeKey(c.hist[len(c.hist)-n:])
		c.bumpLocked(k, region, true)
		if c.cfg.Window > 0 {
			c.events = append(c.events, event{t: t, key: k, next: region})
		}
	}
	if len(c.hist) == c.cfg.MaxOrder {
		copy(c.hist, c.hist[1:])
		c.hist[len(c.hist)-1] = region
	} else {
		c.hist = append(c.hist, region)
	}
	c.lastT = t
	c.haveLast = true
	c.observed++
}

// bumpLocked increments (up) or decrements a transition count, pruning
// empty distributions so the context map only holds live state.
func (c *Chain) bumpLocked(k ctxKey, next uint32, up bool) {
	dist := c.counts[k]
	if up {
		if dist == nil {
			dist = make(map[uint32]uint32)
			c.counts[k] = dist
		}
		dist[next]++
		c.live++
		return
	}
	if dist == nil {
		return
	}
	if dist[next] <= 1 {
		delete(dist, next)
		if len(dist) == 0 {
			delete(c.counts, k)
		}
	} else {
		dist[next]--
	}
	c.live--
}

// expireLocked decays transitions recorded at or before t-Window.
func (c *Chain) expireLocked(t int) {
	cut := t - c.cfg.Window
	for c.head < len(c.events) && c.events[c.head].t <= cut {
		ev := c.events[c.head]
		c.bumpLocked(ev.key, ev.next, false)
		c.head++
	}
	if c.head > 0 && c.head*2 >= len(c.events) {
		n := copy(c.events, c.events[c.head:])
		c.events = c.events[:n]
		c.head = 0
	}
}

// Reset returns the chain to its empty state, keeping the configuration.
func (c *Chain) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.counts)
	clear(c.offsets)
	c.hist = c.hist[:0]
	c.events = c.events[:0]
	c.head = 0
	c.lastT = 0
	c.haveLast = false
	c.observed = 0
	c.live = 0
}

// Stats returns a snapshot of the chain's shape.
func (c *Chain) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Contexts:    len(c.counts),
		Transitions: c.live,
		Observed:    c.observed,
		Pending:     len(c.events) - c.head,
	}
}

// Predict walks the chain from the query's recent located region sequence
// (most recent last, ending at current time tc) until the implied clock
// reaches query time tq. Each step takes the best-supported successor of
// the longest matching context — backing off to shorter contexts when the
// long one is unknown or too thin — and advances the clock to the
// successor region's period offset. Returns false when the chain cannot
// answer: no context matches at any order, the walk budget runs out, or
// the cumulative probability decays to noise.
func (c *Chain) Predict(recent []uint32, tc, tq int) (Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if tq <= tc || len(recent) == 0 {
		return Result{}, false
	}
	var buf [MaxSupportedOrder]uint32
	start := len(recent) - c.cfg.MaxOrder
	if start < 0 {
		start = 0
	}
	ctx := append(buf[:0], recent[start:]...)

	t := tc
	prob := 1.0
	var res Result
	for step := 0; t < tq; step++ {
		if step >= maxWalkSteps {
			return Result{}, false
		}
		next, p, order, ok := c.nextLocked(ctx)
		if !ok {
			return Result{}, false
		}
		if step == 0 {
			res.Order = order
		}
		off := int(c.offsets[next])
		dt := off - mod(t, c.cfg.Period)
		if dt <= 0 {
			dt += c.cfg.Period
		}
		t += dt
		prob *= p
		if prob < minWalkProb {
			return Result{}, false
		}
		if len(ctx) == c.cfg.MaxOrder {
			copy(ctx, ctx[1:])
			ctx[len(ctx)-1] = next
		} else {
			ctx = append(ctx, next)
		}
		res.Region, res.Offset, res.Steps = next, off, step+1
	}
	res.Prob = prob
	return res, true
}

// nextLocked picks the successor of the longest context with a
// sufficiently supported best successor, escaping to shorter contexts.
// Ties break toward the smaller region id, so the answer is deterministic
// for a given chain state.
func (c *Chain) nextLocked(ctx []uint32) (next uint32, p float64, order int, ok bool) {
	for n := len(ctx); n >= 1; n-- {
		dist := c.counts[makeKey(ctx[len(ctx)-n:])]
		if len(dist) == 0 {
			continue
		}
		var best, bestCount uint32
		var total uint64
		first := true
		for r, cnt := range dist {
			total += uint64(cnt)
			if first || cnt > bestCount || (cnt == bestCount && r < best) {
				best, bestCount, first = r, cnt, false
			}
		}
		if int(bestCount) < c.cfg.MinCount {
			continue
		}
		return best, float64(bestCount) / float64(total), n, true
	}
	return 0, 0, 0, false
}

// Encode serializes the chain deterministically: configuration, cursor
// state, region offsets and context distributions in sorted order, and
// the live window-event log in insertion order.
func (c *Chain) Encode() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	buf := make([]byte, 0, 64+16*len(c.counts)+16*(len(c.events)-c.head))
	buf = append(buf, chainMagic...)
	buf = append(buf, chainVersion)
	buf = binary.AppendUvarint(buf, uint64(c.cfg.MaxOrder))
	buf = binary.AppendUvarint(buf, uint64(c.cfg.MinCount))
	buf = binary.AppendUvarint(buf, uint64(c.cfg.Window))
	buf = binary.AppendUvarint(buf, uint64(c.cfg.Period))
	if c.haveLast {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(c.lastT))
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, c.observed)
	buf = binary.AppendUvarint(buf, uint64(len(c.hist)))
	for _, r := range c.hist {
		buf = binary.AppendUvarint(buf, uint64(r))
	}

	offIDs := make([]uint32, 0, len(c.offsets))
	for id := range c.offsets {
		offIDs = append(offIDs, id)
	}
	sort.Slice(offIDs, func(i, j int) bool { return offIDs[i] < offIDs[j] })
	buf = binary.AppendUvarint(buf, uint64(len(offIDs)))
	for _, id := range offIDs {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(c.offsets[id]))
	}

	keys := make([]ctxKey, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendKey(buf, k)
		dist := c.counts[k]
		succ := make([]uint32, 0, len(dist))
		for r := range dist {
			succ = append(succ, r)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		buf = binary.AppendUvarint(buf, uint64(len(succ)))
		for _, r := range succ {
			buf = binary.AppendUvarint(buf, uint64(r))
			buf = binary.AppendUvarint(buf, uint64(dist[r]))
		}
	}

	live := c.events[c.head:]
	buf = binary.AppendUvarint(buf, uint64(len(live)))
	for _, ev := range live {
		buf = binary.AppendUvarint(buf, uint64(ev.t))
		buf = appendKey(buf, ev.key)
		buf = binary.AppendUvarint(buf, uint64(ev.next))
	}
	return buf
}

func lessKey(a, b ctxKey) bool {
	if a.n != b.n {
		return a.n < b.n
	}
	for i := range a.r {
		if a.r[i] != b.r[i] {
			return a.r[i] < b.r[i]
		}
	}
	return false
}

func appendKey(buf []byte, k ctxKey) []byte {
	buf = append(buf, k.n)
	for i := 0; i < int(k.n); i++ {
		buf = binary.AppendUvarint(buf, uint64(k.r[i]))
	}
	return buf
}

// decoder walks an encoded chain.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = errors.New("markov: truncated chain")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = errors.New("markov: truncated chain")
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) key() ctxKey {
	var k ctxKey
	n := d.byte()
	if n > MaxSupportedOrder {
		d.err = fmt.Errorf("markov: context order %d exceeds %d", n, MaxSupportedOrder)
		return k
	}
	k.n = n
	for i := 0; i < int(n); i++ {
		k.r[i] = uint32(d.uvarint())
	}
	return k
}

// Decode reconstructs a chain from Encode's output. The embedded
// configuration wins; callers that require a specific configuration check
// Config after decoding and rebuild on mismatch.
func Decode(data []byte) (*Chain, error) {
	if len(data) < len(chainMagic)+1 {
		return nil, errors.New("markov: chain blob too short")
	}
	if string(data[:len(chainMagic)]) != chainMagic {
		return nil, fmt.Errorf("markov: bad chain magic %q", data[:len(chainMagic)])
	}
	if v := data[len(chainMagic)]; v != chainVersion {
		return nil, fmt.Errorf("markov: unsupported chain version %d", v)
	}
	d := &decoder{data: data, pos: len(chainMagic) + 1}
	cfg := Config{
		MaxOrder: int(d.uvarint()),
		MinCount: int(d.uvarint()),
		Window:   int(d.uvarint()),
		Period:   int(d.uvarint()),
	}
	if d.err != nil {
		return nil, d.err
	}
	c := New(cfg)
	if d.byte() == 1 {
		c.lastT = int(d.uvarint())
		c.haveLast = true
	}
	c.observed = d.uvarint()
	nh := d.uvarint()
	if d.err == nil && nh > MaxSupportedOrder {
		return nil, fmt.Errorf("markov: history length %d exceeds %d", nh, MaxSupportedOrder)
	}
	for i := uint64(0); i < nh && d.err == nil; i++ {
		c.hist = append(c.hist, uint32(d.uvarint()))
	}
	no := d.uvarint()
	for i := uint64(0); i < no && d.err == nil; i++ {
		id := uint32(d.uvarint())
		c.offsets[id] = uint32(d.uvarint())
	}
	nc := d.uvarint()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		k := d.key()
		ns := d.uvarint()
		dist := make(map[uint32]uint32, ns)
		for j := uint64(0); j < ns && d.err == nil; j++ {
			r := uint32(d.uvarint())
			cnt := uint32(d.uvarint())
			dist[r] = cnt
			c.live += uint64(cnt)
		}
		if d.err == nil && len(dist) > 0 {
			c.counts[k] = dist
		}
	}
	ne := d.uvarint()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		ev := event{t: int(d.uvarint())}
		ev.key = d.key()
		ev.next = uint32(d.uvarint())
		c.events = append(c.events, ev)
	}
	if d.err != nil {
		return nil, d.err
	}
	return c, nil
}

// mod is the non-negative remainder.
func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}
