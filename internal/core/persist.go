package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/pattern"
)

// Model persistence: a trained model round-trips through a versioned
// binary stream so deployments can mine once and serve from a saved file.
// The stream holds the training parameters (JSON), the world bounds, the
// region table with visitor bitmaps (so incremental Extend keeps working
// after a reload), and the pattern list; the TPT is rebuilt by bulk load,
// which is faster to reconstruct than to serialize.

const (
	modelMagic   = "HPMM"
	modelVersion = 1
	modelTrailer = "HPME"
)

// Save serializes the model.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(modelVersion); err != nil {
		return err
	}
	// Parameters as JSON: forward-compatible and human-inspectable.
	pj, err := json.Marshal(m.params)
	if err != nil {
		return fmt.Errorf("core: encode params: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	if _, err := bw.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(pj)))]); err != nil {
		return err
	}
	if _, err := bw.Write(pj); err != nil {
		return err
	}
	for _, v := range []float64{m.bounds.Min.X, m.bounds.Min.Y, m.bounds.Max.X, m.bounds.Max.Y} {
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v))
		if _, err := bw.Write(fb[:]); err != nil {
			return err
		}
	}
	if err := m.regions.WriteBinary(bw); err != nil {
		return err
	}
	// Live patterns only: entries incremental training retired must not
	// resurrect on Load. Refs renumber on reload; the miner reseeds lazily.
	if err := pattern.WritePatterns(bw, m.livePatterns()); err != nil {
		return err
	}
	if _, err := bw.WriteString(modelTrailer); err != nil {
		return err
	}
	return bw.Flush()
}

// Load deserializes a model written by Save and rebuilds its index and
// query engine.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(modelMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: read header: %w", err)
	}
	if string(head[:len(modelMagic)]) != modelMagic {
		return nil, fmt.Errorf("core: not a model stream (magic %q)", head[:len(modelMagic)])
	}
	if head[len(modelMagic)] != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", head[len(modelMagic)])
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: read params length: %w", err)
	}
	if plen > 1<<20 {
		return nil, fmt.Errorf("core: implausible params length %d", plen)
	}
	pj := make([]byte, plen)
	if _, err := io.ReadFull(br, pj); err != nil {
		return nil, fmt.Errorf("core: read params: %w", err)
	}
	var params Params
	if err := json.Unmarshal(pj, &params); err != nil {
		return nil, fmt.Errorf("core: decode params: %w", err)
	}
	var bf [32]byte
	if _, err := io.ReadFull(br, bf[:]); err != nil {
		return nil, fmt.Errorf("core: read bounds: %w", err)
	}
	bounds := geom.Rect{
		Min: geom.Pt(math.Float64frombits(binary.LittleEndian.Uint64(bf[0:])),
			math.Float64frombits(binary.LittleEndian.Uint64(bf[8:]))),
		Max: geom.Pt(math.Float64frombits(binary.LittleEndian.Uint64(bf[16:])),
			math.Float64frombits(binary.LittleEndian.Uint64(bf[24:]))),
	}
	regions, err := pattern.ReadRegionTable(br)
	if err != nil {
		return nil, fmt.Errorf("core: read regions: %w", err)
	}
	patterns, err := pattern.ReadPatterns(br, regions)
	if err != nil {
		return nil, fmt.Errorf("core: read patterns: %w", err)
	}
	trailer := make([]byte, len(modelTrailer))
	if _, err := io.ReadFull(br, trailer); err != nil {
		return nil, fmt.Errorf("core: read trailer: %w", err)
	}
	if string(trailer) != modelTrailer {
		return nil, fmt.Errorf("core: corrupt stream trailer %q", trailer)
	}
	return assemble(params, regions, patterns, bounds)
}

// livePatterns filters tombstoned entries out of the ref-indexed slice.
func (m *Model) livePatterns() []pattern.Pattern {
	out := make([]pattern.Pattern, 0, m.engine.LivePatterns())
	for ref, p := range m.patterns {
		if m.engine.IsLive(ref) {
			out = append(out, p)
		}
	}
	return out
}

// assemble builds a query-ready model from its persistent parts; shared by
// Load and (logically) the tail of TrainSubTrajectories.
func assemble(params Params, regions *pattern.RegionTable, patterns []pattern.Pattern, bounds geom.Rect) (*Model, error) {
	// Parallelism is runtime-only and deliberately not serialized;
	// re-defaulting lets the load-time index rebuild (and later Extends)
	// use this machine's cores. withDefaults is idempotent on the rest.
	params = params.withDefaults()
	ct := pattern.NewConsequenceTable(regions, patterns)
	enc := pattern.NewEncoder(regions, ct)
	engine, err := hpa.NewEngine(enc, patterns, hpa.Config{
		Period:           params.Period,
		DistantThreshold: params.DistantThreshold,
		TimeRelaxation:   params.TimeRelaxation,
		Weight:           params.Weight,
		PenalizePremise:  !params.DisablePremisePenalty,
		NewMotion:        motionFactory(params, &bounds),
	}, params.Tree)
	if err != nil {
		return nil, err
	}
	m := &Model{
		params:   params,
		regions:  regions,
		patterns: patterns,
		encoder:  enc,
		engine:   engine,
		bounds:   bounds,
		stats:    pattern.Stats{Rules: len(patterns)},
	}
	// The chain starts empty on load: its state lives outside the model
	// stream, so the owner either restores it (LoadMarkov) or re-folds the
	// retained track (RebuildMarkov).
	m.initMarkov()
	return m, nil
}
