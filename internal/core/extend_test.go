package core

import (
	"testing"

	"hpm/internal/datagen"
	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

func TestExtendInsertsNewPatterns(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 77)
	spec.Period = 80
	spec.SubTrajectories = 40
	tr := datagen.Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}

	// Train on a prefix with a raised confidence bar so some almost-
	// confident rules are left out, then extend with days that push them
	// over the bar.
	m, err := TrainSubTrajectories(subs[:20], Params{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumPatterns()
	treeBefore := m.TreeStats().Items
	if before != treeBefore {
		t.Fatalf("pattern/tree mismatch before extend: %d vs %d", before, treeBefore)
	}

	res, err := m.Extend(subs[20:35])
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPatterns != m.NumPatterns() {
		t.Errorf("result total %d != model %d", res.TotalPatterns, m.NumPatterns())
	}
	if m.NumPatterns() != before+res.NewPatterns-res.RetiredPatterns {
		t.Errorf("patterns %d != before %d + new %d - retired %d",
			m.NumPatterns(), before, res.NewPatterns, res.RetiredPatterns)
	}
	if m.TreeStats().Items != m.NumPatterns() {
		t.Errorf("tree items %d != patterns %d after extend", m.TreeStats().Items, m.NumPatterns())
	}
	if m.Regions().NumSubTrajectories() != 35 {
		t.Errorf("region table saw %d subs, want 35", m.Regions().NumSubTrajectories())
	}

	// The extended model must still answer queries end to end.
	day := subs[38]
	base := 38 * spec.Period
	var recent []trajectory.TimedPoint
	for off := 10; off < 20; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	if _, err := m.Predict(recent, base+30, 1); err != nil {
		t.Fatal(err)
	}
}

func TestExtendEmptyAndInvalid(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Cow, 3)
	spec.Period = 60
	spec.SubTrajectories = 15
	tr := datagen.Generate(spec)
	m, err := Train(tr, Params{Period: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Extend(nil)
	if err != nil || res.NewPatterns != 0 || res.TotalPatterns != m.NumPatterns() {
		t.Errorf("empty extend: %+v, %v", res, err)
	}
	bad := []trajectory.SubTrajectory{{Points: make([]geom.Point, 10)}}
	if _, err := m.Extend(bad); err == nil {
		t.Error("period-mismatched extend accepted")
	}
}

// Extend must be a no-op on the pattern set when the new days replay
// already-mined behaviour exactly.
func TestExtendIdempotentOnReplays(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 13)
	spec.Period = 60
	spec.SubTrajectories = 30
	tr := datagen.Generate(spec)
	subs, _ := tr.Decompose(spec.Period)
	m, err := TrainSubTrajectories(subs, Params{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumPatterns()
	// Replay the first training days verbatim: supports rise uniformly,
	// confidences stay ratios of the same structure, so at most a handful
	// of borderline rules can newly qualify.
	res, err := m.Extend(subs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if res.NewPatterns > before/10 {
		t.Errorf("replay created %d new patterns out of %d", res.NewPatterns, before)
	}
}
