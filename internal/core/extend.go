package core

import (
	"fmt"
	"sort"

	"hpm/internal/cluster"
	"hpm/internal/geom"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

// Incremental training (§V-B dynamic data, extended). Extend absorbs new
// sub-trajectories with cost proportional to the new data: the delta-Apriori
// miner re-derives only the itemsets the new days touch, and the engine
// applies the resulting promotions, demotions and confidence updates in
// place. Beyond the paper's insert-only scheme this also
//
//   - mints new frequent regions from buffered outlier points (unless
//     Params.DisableRegionDiscovery), growing the key space in place, and
//   - retires sub-trajectories older than Params.HistoryWindow periods, so
//     supports track a sliding window instead of all history.
//
// A periodic batch rebuild (Train from scratch) remains the backstop for
// index packing quality; the mined rule set itself stays exactly equivalent
// to batch mining when region discovery is off, a property the equivalence
// tests pin on every dataset.

// ExtendResult reports what an incremental update changed.
type ExtendResult struct {
	// NewPatterns is how many newly promoted patterns were inserted into
	// the TPT.
	NewPatterns int
	// UpdatedPatterns is how many indexed patterns had their support or
	// confidence rewritten in place.
	UpdatedPatterns int
	// RetiredPatterns is how many patterns fell below minimum support or
	// confidence and were removed from the index.
	RetiredPatterns int
	// UnmatchedPoints is how many new points no frequent region matched.
	// They buffer toward region discovery unless that is disabled.
	UnmatchedPoints int
	// NewRegions is how many frequent regions were minted from buffered
	// outliers this update.
	NewRegions int
	// RetiredSubTrajectories is how many old periods the history window
	// expired this update.
	RetiredSubTrajectories int
	// TotalPatterns is the live pattern count after the update.
	TotalPatterns int
}

// Extend absorbs newly accumulated sub-trajectories without retraining.
// The new days are assigned to the existing frequent regions, and only
// the patterns whose support those days change are re-evaluated — cost is
// proportional to the new data, not the total history. Points matching no
// region buffer per offset; once a buffer can support a cluster, a
// localized DBSCAN over just the buffer mints new frequent regions (gate
// with Params.DisableRegionDiscovery to keep the paper's fixed-region
// behavior). With Params.HistoryWindow set, sub-trajectories older than
// the window are retired first, so supports and rules reflect a sliding
// window of recent behavior.
func (m *Model) Extend(subs []trajectory.SubTrajectory) (ExtendResult, error) {
	var res ExtendResult
	if len(subs) == 0 {
		res.TotalPatterns = m.engine.LivePatterns()
		return res, nil
	}
	for _, s := range subs {
		if len(s.Points) != m.params.Period {
			return res, fmt.Errorf("core: new sub-trajectory length %d != period %d", len(s.Points), m.params.Period)
		}
	}
	m.ensureMiner()

	// Retire expired periods before absorbing, so the new days' deltas
	// read supports that no longer include them.
	retired := m.retireExpired(len(subs), &res)

	absorbed, err := m.regions.AbsorbDetailed(trajectory.Groups(subs, 0))
	if err != nil {
		return res, err
	}
	res.UnmatchedPoints = len(absorbed.Unmatched)

	m.applyDelta(m.miner.Update(absorbed.Chains, retired), &res)

	if !m.params.DisableRegionDiscovery {
		m.bufferOutliers(absorbed.Unmatched)
		m.mintRegions(&res)
	}

	// The engine owns the canonical ref-indexed pattern slice once
	// mutations begin.
	m.patterns = m.engine.Patterns()
	m.stats.Rules = m.engine.LivePatterns()
	res.TotalPatterns = m.engine.LivePatterns()
	return res, nil
}

// ensureMiner builds the incremental miner on first use by replaying every
// live sub-trajectory's region chain — the same code path increments take,
// so the seeded state matches batch mining exactly — and reconciles the
// engine's live set against it. After batch training or a clean load the
// reconcile is a no-op diff; it only repairs drift if the two ever diverge.
func (m *Model) ensureMiner() {
	if m.miner != nil {
		return
	}
	m.miner = pattern.NewIncrementalMiner(m.regions, m.params.Mining)
	var chains [][]pattern.RegionID
	for j := 0; j < m.regions.NumSubTrajectories(); j++ {
		if ch := m.regions.ChainOf(j); len(ch) > 0 {
			chains = append(chains, ch)
		}
	}
	delta := m.miner.Update(chains, nil)

	have := make(map[pattern.IdentityKey]int, len(m.patterns))
	for ref, p := range m.patterns {
		if m.engine.IsLive(ref) {
			have[pattern.PatternIdentity(p)] = ref
		}
	}
	m.refs = make(map[pattern.IdentityKey]int, len(delta.Added))
	seen := make(map[pattern.IdentityKey]bool, len(delta.Added))
	var missing []pattern.Pattern
	for _, p := range delta.Added {
		key := pattern.PatternIdentity(p)
		seen[key] = true
		ref, ok := have[key]
		if !ok {
			missing = append(missing, p)
			continue
		}
		m.refs[key] = ref
		if cur := m.patterns[ref]; cur.Confidence != p.Confidence || cur.Support != p.Support {
			m.engine.UpdatePattern(ref, p)
		}
	}
	for ref, p := range m.patterns {
		if m.engine.IsLive(ref) && !seen[pattern.PatternIdentity(p)] {
			m.engine.RemovePattern(ref)
		}
	}
	if len(missing) > 0 {
		for i, ref := range m.engine.InsertPatterns(missing) {
			m.refs[pattern.PatternIdentity(missing[i])] = ref
		}
	}
	m.patterns = m.engine.Patterns()
}

// retireExpired advances the sliding-window watermark so that after the
// adding new sub-trajectories, at most HistoryWindow periods stay live.
// Returns the retired days' region chains for the miner to decrement.
func (m *Model) retireExpired(adding int, res *ExtendResult) [][]pattern.RegionID {
	w := m.params.HistoryWindow
	if w <= 0 {
		return nil
	}
	have := m.regions.NumSubTrajectories()
	keepFrom := have + adding - w
	if keepFrom > have {
		// Never retire the days being added this call.
		keepFrom = have
	}
	var retired [][]pattern.RegionID
	for m.retiredBelow < keepFrom {
		j := m.retiredBelow
		if ch := m.regions.ChainOf(j); len(ch) > 0 {
			retired = append(retired, ch)
			m.regions.ClearSub(j)
		}
		m.dropOutliers(j)
		m.retiredBelow++
		res.RetiredSubTrajectories++
	}
	return retired
}

// applyDelta translates a miner delta into engine mutations, tracking refs.
func (m *Model) applyDelta(d pattern.Delta, res *ExtendResult) {
	// Removed before Added: a pattern demoted and re-promoted in the same
	// update appears in both, and the insert must land after the old entry
	// is gone.
	for _, key := range d.Removed {
		if ref, ok := m.refs[key]; ok {
			delete(m.refs, key)
			if m.engine.RemovePattern(ref) {
				res.RetiredPatterns++
			}
		}
	}
	if len(d.Added) > 0 {
		refs := m.engine.InsertPatterns(d.Added)
		for i, p := range d.Added {
			m.refs[pattern.PatternIdentity(p)] = refs[i]
		}
		res.NewPatterns += len(d.Added)
	}
	for _, p := range d.Updated {
		if ref, ok := m.refs[pattern.PatternIdentity(p)]; ok && m.engine.UpdatePattern(ref, p) {
			res.UpdatedPatterns++
		}
	}
}

// maxOutlierBuffer bounds one offset's outlier buffer to this many times
// MinPts. Without a bound, never-clustering noise accumulates forever and
// the per-Extend discovery scan grows with total history — exactly what
// incremental training exists to avoid. Oldest points are evicted first:
// a haunt visited often enough to deserve a region keeps refilling the
// buffer with fresh points, while stale noise ages out.
const maxOutlierBuffer = 8

func (m *Model) bufferOutliers(pts []pattern.UnmatchedPoint) {
	if len(pts) == 0 {
		return
	}
	if m.outliers == nil {
		m.outliers = make(map[int][]pattern.UnmatchedPoint)
		m.dirty = make(map[int]bool)
	}
	limit := maxOutlierBuffer * m.params.MinPts
	for _, up := range pts {
		buf := append(m.outliers[up.Offset], up)
		if len(buf) > limit {
			buf = append(buf[:0], buf[len(buf)-limit:]...)
		}
		m.outliers[up.Offset] = buf
		m.dirty[up.Offset] = true
	}
}

// dropOutliers forgets buffered points of a retired sub-trajectory, so a
// region minted later never counts an expired visitor.
func (m *Model) dropOutliers(sub int) {
	for off, buf := range m.outliers {
		kept := buf[:0]
		for _, up := range buf {
			if up.Sub != sub {
				kept = append(kept, up)
			}
		}
		if len(kept) == 0 {
			delete(m.outliers, off)
		} else {
			m.outliers[off] = kept
		}
	}
}

// mintRegions runs DBSCAN over each outlier buffer that gained points this
// update and could support a cluster — buffers are capped and only dirty
// offsets are scanned, so discovery cost is independent of history size —
// and registers every cluster found as a new frequent region: visitor bits
// set, key space grown, and the itemsets through the new region absorbed
// into the miner and index.
func (m *Model) mintRegions(res *ExtendResult) {
	if len(m.dirty) == 0 {
		return
	}
	offs := make([]int, 0, len(m.dirty))
	for off := range m.dirty {
		offs = append(offs, off)
		delete(m.dirty, off)
	}
	sort.Ints(offs)
	for _, off := range offs {
		buf := m.outliers[off]
		if len(buf) < m.params.MinPts {
			continue
		}
		pts := make([]geom.Point, len(buf))
		for i, up := range buf {
			pts[i] = up.P
		}
		cl := cluster.DBSCAN(pts, m.params.Eps, m.params.MinPts)
		if cl.NumClusters == 0 {
			continue
		}
		minted := make([]bool, len(buf))
		for c := 0; c < cl.NumClusters; c++ {
			members := cl.Members(c)
			mPts := make([]geom.Point, len(members))
			mSubs := make([]int, len(members))
			for i, idx := range members {
				mPts[i] = buf[idx].P
				mSubs[i] = buf[idx].Sub
				minted[idx] = true
			}
			fr := m.regions.AppendRegion(off, mPts, mSubs)
			res.NewRegions++
			// The region table widened; grow the index's keys even if no
			// pattern ends up promoted, or the next query's wider key
			// would mismatch the tree.
			m.engine.SyncKeyWidths()
			// Replay the visitors' full chains: only itemsets through the
			// new region change, and AbsorbMinted enumerates just those.
			var chains [][]pattern.RegionID
			replayed := make(map[int]bool, len(mSubs))
			for _, j := range mSubs {
				if replayed[j] {
					continue
				}
				replayed[j] = true
				if ch := m.regions.ChainOf(j); len(ch) > 0 {
					chains = append(chains, ch)
				}
			}
			m.applyDelta(m.miner.AbsorbMinted(fr.ID, chains), res)
		}
		// Clustered points leave the buffer; noise stays for later days.
		kept := buf[:0]
		for i, up := range buf {
			if !minted[i] {
				kept = append(kept, up)
			}
		}
		if len(kept) == 0 {
			delete(m.outliers, off)
		} else {
			m.outliers[off] = kept
		}
	}
}
