// Package core assembles the paper's full Hybrid Prediction Model: periodic
// decomposition of the training trajectory, DBSCAN frequent-region
// discovery, pruned-Apriori pattern mining, key-table construction,
// Trajectory Pattern Tree indexing, and the Hybrid Prediction Algorithm
// with its Recursive Motion Function fallback.
//
// Train once over an object's movement history, then answer predictive
// queries with Predict. The zero-configuration defaults follow the paper's
// experimental setup (§VII-A).
package core

import (
	"errors"
	"fmt"
	"runtime"

	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/markov"
	"hpm/internal/motion"
	"hpm/internal/parallel"
	"hpm/internal/pattern"
	"hpm/internal/tpt"
	"hpm/internal/trajectory"
)

// MotionKind selects the motion-function fallback.
type MotionKind int

// Available fallback models.
const (
	MotionRMF        MotionKind = iota // Recursive Motion Function (paper default)
	MotionLinear                       // linear model (§II-A baseline)
	MotionPolynomial                   // constant-acceleration model (§II-A non-linear family)
	MotionNone                         // pattern-only prediction, no fallback
)

// String implements fmt.Stringer.
func (k MotionKind) String() string {
	switch k {
	case MotionRMF:
		return "rmf"
	case MotionLinear:
		return "linear"
	case MotionPolynomial:
		return "polynomial"
	case MotionNone:
		return "none"
	default:
		return fmt.Sprintf("MotionKind(%d)", int(k))
	}
}

// Params configures training and querying. The zero value plus a Period is
// usable and matches the paper's defaults.
type Params struct {
	// Period is T, the number of timestamps after which patterns may
	// re-appear. Required.
	Period int
	// Eps and MinPts are the DBSCAN parameters for frequent-region
	// detection. Zero values default to the paper's Eps=30, MinPts=4.
	Eps    float64
	MinPts int
	// Mining configures the Apriori stage (min support/confidence, length
	// and span caps). Zero values take pattern.Config defaults with the
	// paper's minimum confidence 0.3.
	Mining pattern.Config
	// SubTrajectories caps how many leading sub-trajectories train the
	// model; <= 0 uses all. The accuracy experiments sweep this.
	SubTrajectories int
	// HistoryWindow bounds support counting to the most recent periods:
	// when positive, Extend retires sub-trajectories older than the
	// window — their visitor bits clear, supports shrink, and patterns
	// demote or re-weigh accordingly — so model state tracks a sliding
	// window instead of all history. 0 keeps history unbounded (the
	// paper's setting).
	HistoryWindow int
	// DisableRegionDiscovery keeps the frequent-region set fixed during
	// Extend, exactly as the paper specifies: points matching no region
	// are counted in ExtendResult but never mint new regions. Exact
	// model-equivalence tests and ablations set it.
	DisableRegionDiscovery bool
	// DistantThreshold (d), TimeRelaxation (tε) and Weight configure the
	// HPA; zero values default to d=60, tε=2, linear weights.
	DistantThreshold int
	TimeRelaxation   int
	Weight           hpa.WeightFunc
	// DisablePremisePenalty turns off Equation 5's d/(tq−tc) factor in
	// BQP ranking (ablation).
	DisablePremisePenalty bool
	// MarkovOrder is the maximum context length of the region-transition
	// Markov chain (third answering path). 0 takes markov.DefaultMaxOrder;
	// a negative value disables the chain entirely, restoring the
	// two-path pattern→motion behaviour.
	MarkovOrder int
	// MarkovMinCount is the observation floor a chain context must reach
	// before it may answer; 0 takes markov.DefaultMinCount.
	MarkovMinCount int
	// Motion selects the fallback predictor; RMF configures it.
	Motion MotionKind
	RMF    motion.RMFConfig
	// Bounds clamps motion-function output; nil derives the bounds from
	// the training data's bounding box inflated by 10%.
	Bounds *geom.Rect
	// Tree tunes the TPT node capacity.
	Tree tpt.Options
	// Parallelism caps the worker goroutines the training pipeline may
	// use: per-offset DBSCAN region discovery, Apriori support counting,
	// training-bounds derivation, and the TPT bulk-load sort all fan out
	// across it. 0 defaults to runtime.NumCPU(); 1 trains serially.
	//
	// Determinism guarantee: every value produces a byte-identical model —
	// same region IDs and geometry, same patterns in the same order, same
	// index — because parallel stages compute into per-index slots that
	// are merged in serial order. The knob is runtime-only and excluded
	// from model serialization.
	Parallelism int `json:"-"`
}

// Paper defaults for zero Params fields.
const (
	DefaultEps    = 30.0
	DefaultMinPts = 4
)

// DefaultMinConfidence is the paper's default minimum confidence.
const DefaultMinConfidence = 0.3

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = DefaultEps
	}
	if p.MinPts <= 0 {
		p.MinPts = DefaultMinPts
	}
	if p.Mining.MinConfidence <= 0 {
		p.Mining.MinConfidence = DefaultMinConfidence
	}
	// MinPts "plays the same role as support" (§IV): itemsets inherit it
	// as the default support floor.
	if p.Mining.MinSupport <= 0 {
		p.Mining.MinSupport = p.MinPts
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.NumCPU()
	}
	// The mining and bulk-load stages take the same knob unless tuned
	// separately.
	if p.Mining.Parallelism <= 0 {
		p.Mining.Parallelism = p.Parallelism
	}
	if p.Tree.Parallelism <= 0 {
		p.Tree.Parallelism = p.Parallelism
	}
	return p
}

// Model is a trained Hybrid Prediction Model.
type Model struct {
	params   Params
	regions  *pattern.RegionTable
	patterns []pattern.Pattern
	stats    pattern.Stats
	encoder  *pattern.Encoder
	engine   *hpa.Engine
	bounds   geom.Rect
	// chain is the Markov answering path's region-transition chain (see
	// markov.go); nil when Params.MarkovOrder < 0 disables the path.
	chain *markov.Chain

	// Incremental-training state (see extend.go). The miner is built
	// lazily on the first Extend — batch training and deserialization
	// leave it nil — and from then on tracks per-itemset support so
	// update cost scales with new data, not history.
	miner *pattern.IncrementalMiner
	// refs maps a live pattern's identity to its engine ref, so deltas
	// from the miner translate into index mutations.
	refs map[pattern.IdentityKey]int
	// outliers buffers points no frequent region matched, per offset,
	// until enough accumulate to mint a new region. Each buffer is capped
	// (oldest evicted first) so the per-Extend discovery scan stays O(1)
	// in history; dirty marks the offsets that gained points this update,
	// the only ones a scan could newly cluster.
	outliers map[int][]pattern.UnmatchedPoint
	dirty    map[int]bool
	// retiredBelow is the sliding-window watermark: sub-trajectories
	// with index < retiredBelow no longer count toward supports.
	retiredBelow int
}

// Train builds a model from a movement history. The trajectory must span at
// least one full period.
func Train(tr *trajectory.Trajectory, params Params) (*Model, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("core: empty trajectory")
	}
	subs, err := tr.Decompose(params.Period)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return TrainSubTrajectories(subs, params)
}

// TrainSubTrajectories builds a model directly from decomposed
// sub-trajectories, which the experiment harness uses to sweep the
// training-set size cheaply.
func TrainSubTrajectories(subs []trajectory.SubTrajectory, params Params) (*Model, error) {
	if params.Period <= 0 {
		return nil, errors.New("core: Params.Period must be positive")
	}
	if len(subs) == 0 {
		return nil, errors.New("core: no sub-trajectories")
	}
	if len(subs[0].Points) != params.Period {
		return nil, fmt.Errorf("core: sub-trajectory length %d != period %d", len(subs[0].Points), params.Period)
	}
	params = params.withDefaults()

	groups := trajectory.Groups(subs, params.SubTrajectories)
	regions := pattern.DiscoverRegionsParallel(groups, params.Eps, params.MinPts, params.Parallelism)
	patterns, stats := pattern.MineWithStats(regions, params.Mining)
	ct := pattern.NewConsequenceTable(regions, patterns)
	enc := pattern.NewEncoder(regions, ct)

	bounds := params.Bounds
	if bounds == nil {
		b := trainingBounds(subs, params.SubTrajectories, params.Parallelism)
		bounds = &b
	}

	engine, err := hpa.NewEngine(enc, patterns, hpa.Config{
		Period:           params.Period,
		DistantThreshold: params.DistantThreshold,
		TimeRelaxation:   params.TimeRelaxation,
		Weight:           params.Weight,
		PenalizePremise:  !params.DisablePremisePenalty,
		NewMotion:        motionFactory(params, bounds),
	}, params.Tree)
	if err != nil {
		return nil, err
	}
	m := &Model{
		params:   params,
		regions:  regions,
		patterns: patterns,
		stats:    stats,
		encoder:  enc,
		engine:   engine,
		bounds:   *bounds,
	}
	m.initMarkov()
	m.foldMarkov(subs)
	return m, nil
}

func motionFactory(params Params, bounds *geom.Rect) func() motion.Function {
	switch params.Motion {
	case MotionNone:
		return nil
	case MotionLinear:
		return func() motion.Function { return motion.NewLinear(bounds) }
	case MotionPolynomial:
		return func() motion.Function { return motion.NewPolynomial(bounds) }
	default:
		cfg := params.RMF
		if cfg.Bounds == nil {
			cfg.Bounds = bounds
		}
		return func() motion.Function { return motion.NewRMF(cfg) }
	}
}

func trainingBounds(subs []trajectory.SubTrajectory, n, workers int) geom.Rect {
	if n <= 0 || n > len(subs) {
		n = len(subs)
	}
	workers = parallel.Workers(workers)
	if workers > n {
		workers = n
	}
	// Each worker folds a contiguous chunk of sub-trajectories into a
	// partial extent; min/max are exact and order-independent, so the
	// merged rectangle equals the serial fold for any worker count.
	partial := make([]geom.Rect, workers)
	parallel.For(workers, workers, func(w int) {
		lo, hi := w*n/workers, (w+1)*n/workers
		r := geom.Rect{Min: subs[lo].Points[0], Max: subs[lo].Points[0]}
		for i := lo; i < hi; i++ {
			for _, p := range subs[i].Points {
				r = r.ExpandPoint(p)
			}
		}
		partial[w] = r
	})
	r := partial[0]
	for _, pr := range partial[1:] {
		r = r.Union(pr)
	}
	// A 10% margin keeps legitimate extrapolation just outside the data
	// extent from being clipped.
	margin := 0.1 * (r.Width() + r.Height()) / 2
	return r.Inflate(margin)
}

// Predict answers a predictive query: given the object's recent movements
// and the absolute query time tq, return the k most probable locations.
func (m *Model) Predict(recent []trajectory.TimedPoint, tq, k int) ([]hpa.Prediction, error) {
	return m.engine.Predict(hpa.Query{Recent: recent, Tq: tq, K: k})
}

// PredictRange answers a predictive trajectory query: the object's most
// probable location at every timestamp in [from, to], in order. See
// hpa.Engine.PredictRange.
func (m *Model) PredictRange(recent []trajectory.TimedPoint, from, to int) ([]hpa.Prediction, error) {
	return m.engine.PredictRange(recent, from, to)
}

// PredictBatch answers one query per time in tqs from the same recent
// window, amortizing premise encoding and motion-function fitting across
// the batch. See hpa.Engine.PredictBatch.
func (m *Model) PredictBatch(recent []trajectory.TimedPoint, tqs []int, k int) ([][]hpa.Prediction, error) {
	return m.engine.PredictBatch(recent, tqs, k)
}

// PredictFallback answers a query with the motion-function fallback alone,
// bypassing the pattern paths. See hpa.Engine.FallbackQuery.
func (m *Model) PredictFallback(recent []trajectory.TimedPoint, tq int) ([]hpa.Prediction, error) {
	return m.engine.FallbackQuery(hpa.Query{Recent: recent, Tq: tq})
}

// NumRegions returns the number of frequent regions discovered.
func (m *Model) NumRegions() int { return m.regions.Len() }

// NumPatterns returns the number of live trajectory patterns: mined ones
// minus those incremental training has retired.
func (m *Model) NumPatterns() int { return m.engine.LivePatterns() }

// Patterns returns the pattern slice indexed by engine refs. It may hold
// entries Extend has retired — kept so outstanding PatternRef values stay
// valid; filter with Engine().IsLive for the live set. Callers must not
// mutate the slice.
func (m *Model) Patterns() []pattern.Pattern { return m.patterns }

// Regions returns the frequent-region table.
func (m *Model) Regions() *pattern.RegionTable { return m.regions }

// Encoder returns the pattern-key encoder (region + consequence tables).
func (m *Model) Encoder() *pattern.Encoder { return m.encoder }

// Engine returns the underlying query engine.
func (m *Model) Engine() *hpa.Engine { return m.engine }

// MiningStats returns the Apriori effort statistics, including the
// pruning-ablation counters.
func (m *Model) MiningStats() pattern.Stats { return m.stats }

// Bounds returns the world extent motion predictions are clamped to.
func (m *Model) Bounds() geom.Rect { return m.bounds }

// Params returns the training parameters after defaulting.
func (m *Model) Params() Params { return m.params }

// TreeStats returns the physical statistics of the pattern index.
func (m *Model) TreeStats() tpt.TreeStats { return m.engine.Tree().Stats() }

// QueryStats returns the accumulated query counters (how many queries ran,
// which processor answered them, TPT nodes touched).
func (m *Model) QueryStats() hpa.QueryStats { return m.engine.Stats() }
