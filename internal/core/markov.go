package core

import (
	"errors"

	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/markov"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

// The Markov answering path (NLPMM-style): a variable-order chain over
// the same frequent regions the pattern miner produces. The chain is the
// fold of the retained movement history over the current region table —
// every located observation appends a visit, and whenever the regions or
// the retained track change out from under that fold (retrain, Extend,
// trim), the owner of the track calls RebuildMarkov to re-establish the
// invariant. Prediction walks the chain's most probable successor
// region-to-region until the implied clock passes tq, escaping to
// shorter contexts when a long one is unknown, and declines (→ motion
// fallback) when no sufficiently supported context matches.

// markovWindow converts the sliding-window setting (HistoryWindow, in
// periods) into the chain's timestamp-domain decay window.
func markovWindow(p Params) int {
	if p.HistoryWindow <= 0 {
		return 0
	}
	return p.HistoryWindow * p.Period
}

// initMarkov creates the chain and attaches the engine's markov answering
// path. A negative MarkovOrder disables the path entirely; the model then
// behaves exactly as before the chain existed.
func (m *Model) initMarkov() {
	if m.params.MarkovOrder < 0 {
		return
	}
	m.chain = markov.New(markov.Config{
		MaxOrder: m.params.MarkovOrder,
		MinCount: m.params.MarkovMinCount,
		Window:   markovWindow(m.params),
		Period:   m.params.Period,
	})
	m.engine.SetMarkov(m.markovHook())
}

// foldMarkov seeds a fresh chain from the training sub-trajectories —
// the same leading-n window every other training stage consumes.
func (m *Model) foldMarkov(subs []trajectory.SubTrajectory) {
	if m.chain == nil {
		return
	}
	n := m.params.SubTrajectories
	if n <= 0 || n > len(subs) {
		n = len(subs)
	}
	for _, sub := range subs[:n] {
		base := sub.Index * m.params.Period
		for off, pt := range sub.Points {
			m.MarkovObserve(base+off, pt)
		}
	}
}

// MarkovEnabled reports whether the chain path is attached.
func (m *Model) MarkovEnabled() bool { return m.chain != nil }

// MarkovObserve folds one acknowledged observation into the chain: the
// point is located against the frequent-region table at its period
// offset and, when it falls inside a region, recorded as a chain visit.
// Points outside every region leave the chain untouched. Callers must
// serialize MarkovObserve with Extend and RebuildMarkov — the same
// writer-side discipline the engine's own mutators require.
func (m *Model) MarkovObserve(t int, p geom.Point) {
	if m.chain == nil {
		return
	}
	if fr, ok := m.regions.Locate(coreMod(t, m.params.Period), p); ok {
		m.chain.Observe(t, uint32(fr.ID))
	}
}

// RebuildMarkov resets the chain and re-folds a retained track whose
// first point sits at absolute time base. Owners of the track call it
// after anything that invalidates the incremental fold: a model swap, an
// Extend that re-shaped the region table, or a history trim.
func (m *Model) RebuildMarkov(base int, pts []geom.Point) {
	if m.chain == nil {
		return
	}
	m.chain.Reset()
	for i, p := range pts {
		m.MarkovObserve(base+i, p)
	}
}

// PredictMarkov answers a query from the chain alone, bypassing the
// pattern paths and falling through to the motion function when the
// chain declines. See hpa.Engine.MarkovQuery.
func (m *Model) PredictMarkov(recent []trajectory.TimedPoint, tq int) ([]hpa.Prediction, error) {
	return m.engine.MarkovQuery(hpa.Query{Recent: recent, Tq: tq})
}

// MarkovStats returns the chain's size counters; ok is false when the
// path is disabled.
func (m *Model) MarkovStats() (markov.Stats, bool) {
	if m.chain == nil {
		return markov.Stats{}, false
	}
	return m.chain.Stats(), true
}

// EncodeMarkov serializes the chain deterministically for snapshotting;
// nil when the path is disabled.
func (m *Model) EncodeMarkov() []byte {
	if m.chain == nil {
		return nil
	}
	return m.chain.Encode()
}

// LoadMarkov replaces the chain with a previously encoded one. It fails
// when the path is disabled or the stored chain was built under a
// different configuration — callers then fall back to RebuildMarkov.
// Call only while no queries are in flight (load/recovery time).
func (m *Model) LoadMarkov(data []byte) error {
	if m.chain == nil {
		return errors.New("core: markov path disabled")
	}
	c, err := markov.Decode(data)
	if err != nil {
		return err
	}
	if c.Config() != m.chain.Config() {
		return errors.New("core: markov chain config mismatch")
	}
	m.chain = c
	return nil
}

// markovHook adapts the chain to the engine's answering-path interface:
// recent movements in, one region-center prediction out.
func (m *Model) markovHook() hpa.MarkovHook {
	return func(recent []trajectory.TimedPoint, tq int) (hpa.Prediction, bool) {
		ch := m.chain
		if ch == nil || len(recent) == 0 {
			return hpa.Prediction{}, false
		}
		cfg := ch.Config()
		// Rebuild the context the chain itself would hold after observing
		// this suffix: the last MaxOrder located visits, scanning backwards
		// and stopping at any gap of a full period between located points
		// (the chain's own staleness reset). Points outside every region
		// are transparent, exactly as in MarkovObserve.
		var buf [markov.MaxSupportedOrder]uint32
		k := 0
		lastT := 0
		for i := len(recent) - 1; i >= 0 && k < cfg.MaxOrder; i-- {
			tp := recent[i]
			if k > 0 && lastT-tp.T >= cfg.Period {
				break
			}
			fr, ok := m.regions.Locate(coreMod(tp.T, cfg.Period), tp.Loc)
			if !ok {
				continue
			}
			buf[k] = uint32(fr.ID)
			lastT = tp.T
			k++
		}
		if k == 0 {
			return hpa.Prediction{}, false
		}
		seq := buf[:k]
		for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
			seq[i], seq[j] = seq[j], seq[i]
		}
		// The walk's implied clock starts at the real current time — the
		// last recent point, located or not — so every walked step lies
		// strictly in the future and the walk terminates at or past tq.
		tc := recent[len(recent)-1].T
		res, ok := ch.Predict(seq, tc, tq)
		if !ok {
			return hpa.Prediction{}, false
		}
		id := pattern.RegionID(res.Region)
		if int(id) >= m.regions.Len() {
			// A stale chain entry pointing past the current table (possible
			// only between a region change and its rebuild) never answers.
			return hpa.Prediction{}, false
		}
		fr := m.regions.Region(id)
		return hpa.Prediction{
			Location:          fr.Center,
			Score:             res.Prob,
			Confidence:        res.Prob,
			PatternRef:        -1,
			Source:            hpa.SourceMarkov,
			Path:              hpa.PathMarkov,
			Extent:            fr.MBR,
			ConsequenceOffset: fr.Offset,
		}, true
	}
}

func coreMod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}
