package core

import (
	"bytes"
	"testing"

	"hpm/internal/datagen"
	"hpm/internal/trajectory"
)

func savedModel(t *testing.T) (*Model, []trajectory.SubTrajectory, datagen.Spec) {
	t.Helper()
	spec := datagen.DefaultSpec(datagen.Bike, 55)
	spec.Period = 80
	spec.SubTrajectories = 30
	tr := datagen.Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSubTrajectories(subs[:25], Params{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	return m, subs, spec
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, subs, spec := savedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPatterns() != m.NumPatterns() {
		t.Fatalf("patterns %d != %d", back.NumPatterns(), m.NumPatterns())
	}
	if back.NumRegions() != m.NumRegions() {
		t.Fatalf("regions %d != %d", back.NumRegions(), m.NumRegions())
	}
	if back.Bounds() != m.Bounds() {
		t.Errorf("bounds %v != %v", back.Bounds(), m.Bounds())
	}
	if back.Params().Period != m.Params().Period ||
		back.Params().Eps != m.Params().Eps {
		t.Errorf("params differ: %+v vs %+v", back.Params(), m.Params())
	}

	// Predictions from the loaded model must match the original exactly.
	day := subs[27]
	base := 27 * spec.Period
	var recent []trajectory.TimedPoint
	for off := 10; off < 20; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	for _, horizon := range []int{5, 20, 50} {
		want, err := m.Predict(recent, base+19+horizon, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(recent, base+19+horizon, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("horizon %d: %d vs %d predictions", horizon, len(got), len(want))
		}
		for i := range want {
			if got[i].Location != want[i].Location || got[i].Source != want[i].Source {
				t.Errorf("horizon %d pred %d: %+v vs %+v", horizon, i, got[i], want[i])
			}
		}
	}
}

func TestLoadedModelSupportsExtend(t *testing.T) {
	m, subs, _ := savedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Extend(subs[25:30])
	if err != nil {
		t.Fatal(err)
	}
	if back.Regions().NumSubTrajectories() != 30 {
		t.Errorf("loaded model absorbed %d subs", back.Regions().NumSubTrajectories())
	}
	if back.TreeStats().Items != res.TotalPatterns {
		t.Errorf("tree %d != patterns %d after extend", back.TreeStats().Items, res.TotalPatterns)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a model"),
		[]byte("HPMM\x02"),          // wrong version
		[]byte("HPMM\x01\x05xxxxx"), // params cut short / invalid JSON
		[]byte("XXXX\x01"),          // wrong magic
	}
	for i, in := range cases {
		if _, err := Load(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	m, _, _ := savedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the stream at several depths; every cut must error, never panic
	// or silently succeed.
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		cut := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	m, _, _ := savedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flipping the trailer must be caught by the trailer check.
	mangled := append([]byte(nil), full...)
	mangled[len(mangled)-1] ^= 0xFF
	if _, err := Load(bytes.NewReader(mangled)); err == nil {
		t.Error("mangled trailer accepted")
	}
}
