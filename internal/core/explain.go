package core

import (
	"fmt"
	"strings"

	"hpm/internal/geom"
	"hpm/internal/hpa"
)

// RegionInfo describes one frequent region in user terms.
type RegionInfo struct {
	Offset  int        // time offset within the period
	Index   int        // ordinal among the regions at this offset
	Center  geom.Point // centroid of the region
	Extent  geom.Rect  // bounding box of the region
	Support int        // sub-trajectories that visit it
}

// Explanation unpacks the trajectory pattern behind a prediction: which
// frequent regions the rule's premise expects the object to have visited,
// where the rule says it goes, and with what confidence.
type Explanation struct {
	// Rule renders the pattern in the paper's notation, e.g.
	// "R_10^0 ∧ R_12^1 --0.80--> R_40^0".
	Rule        string
	Premise     []RegionInfo
	Consequence RegionInfo
	Confidence  float64
	Support     int
}

// Explain unpacks the pattern behind a prediction. It returns false for
// motion-function predictions (nothing rule-shaped to explain) and for
// predictions from a different model.
func (m *Model) Explain(pred hpa.Prediction) (Explanation, bool) {
	if pred.Source != hpa.SourcePattern ||
		pred.PatternRef < 0 || pred.PatternRef >= len(m.patterns) {
		return Explanation{}, false
	}
	p := m.patterns[pred.PatternRef]

	var sb strings.Builder
	ex := Explanation{Confidence: p.Confidence, Support: p.Support}
	for i, id := range p.Premise {
		fr := m.regions.Region(id)
		ex.Premise = append(ex.Premise, RegionInfo{
			Offset: fr.Offset, Index: fr.Index,
			Center: fr.Center, Extent: fr.MBR, Support: fr.Support,
		})
		if i > 0 {
			sb.WriteString(" ∧ ")
		}
		fmt.Fprintf(&sb, "R_%d^%d", fr.Offset, fr.Index)
	}
	cons := m.regions.Region(p.Consequence)
	ex.Consequence = RegionInfo{
		Offset: cons.Offset, Index: cons.Index,
		Center: cons.Center, Extent: cons.MBR, Support: cons.Support,
	}
	fmt.Fprintf(&sb, " --%.2f--> R_%d^%d", p.Confidence, cons.Offset, cons.Index)
	ex.Rule = sb.String()
	return ex, true
}
