package core

import (
	"fmt"
	"testing"

	"hpm/internal/datagen"
	"hpm/internal/geom"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

// livePatternsByKey indexes the model's live rules by identity.
func livePatternsByKey(t *testing.T, m *Model) map[pattern.IdentityKey]pattern.Pattern {
	t.Helper()
	out := make(map[pattern.IdentityKey]pattern.Pattern)
	for ref, p := range m.Patterns() {
		if !m.Engine().IsLive(ref) {
			continue
		}
		key := pattern.PatternIdentity(p)
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate live pattern %v", p)
		}
		out[key] = p
	}
	if len(out) != m.NumPatterns() {
		t.Fatalf("live set %d != NumPatterns %d", len(out), m.NumPatterns())
	}
	return out
}

// requireBatchEquivalent re-mines the model's own region table from
// scratch and requires the live rule set to match exactly: same rules,
// same supports, bit-identical confidences. The batch miner reads the
// live visitor bitmaps, so it is ground truth for any absorb/retire
// history (as long as no regions were minted, which would unsort the
// table's offsets).
func requireBatchEquivalent(t *testing.T, m *Model, when string) {
	t.Helper()
	want := pattern.Mine(m.Regions(), m.Params().Mining)
	got := livePatternsByKey(t, m)
	if len(got) != len(want) {
		t.Fatalf("%s: %d live rules, batch mines %d", when, len(got), len(want))
	}
	for _, wp := range want {
		gp, ok := got[pattern.PatternIdentity(wp)]
		if !ok {
			t.Fatalf("%s: batch rule %v missing from live set", when, wp)
		}
		if gp.Support != wp.Support || gp.Confidence != wp.Confidence {
			t.Fatalf("%s: rule %v has support=%d conf=%v, batch says support=%d conf=%v",
				when, wp.Premise, gp.Support, gp.Confidence, wp.Support, wp.Confidence)
		}
	}
	if m.TreeStats().Items != len(want) {
		t.Fatalf("%s: tree holds %d items for %d live rules", when, m.TreeStats().Items, len(want))
	}
}

// TestExtendEquivalentToBatchMiner pins the tentpole correctness claim on
// all four datasets: with region discovery off, a model grown by repeated
// incremental Extends holds exactly the rule set batch mining over the
// same visitor bitmaps produces — same rules, same supports, bit-identical
// confidences — at every step.
func TestExtendEquivalentToBatchMiner(t *testing.T) {
	for _, kind := range datagen.Kinds {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			spec := datagen.DefaultSpec(kind, 19)
			spec.Period = 60
			spec.SubTrajectories = 36
			subs, err := datagen.Generate(spec).Decompose(spec.Period)
			if err != nil {
				t.Fatal(err)
			}
			m, err := TrainSubTrajectories(subs[:12], Params{
				Period:                 spec.Period,
				DisableRegionDiscovery: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for n := 12; n < len(subs); n += 4 {
				hi := n + 4
				if hi > len(subs) {
					hi = len(subs)
				}
				if _, err := m.Extend(subs[n:hi]); err != nil {
					t.Fatal(err)
				}
				requireBatchEquivalent(t, m, fmt.Sprintf("after %d subs", hi))
			}
		})
	}
}

// TestExtendWindowEquivalentToBatchMiner repeats the equivalence check
// with a sliding history window: retirement clears the expired days'
// visitor bits, and the batch miner — reading those same bitmaps — must
// still agree exactly with the incrementally maintained rules.
func TestExtendWindowEquivalentToBatchMiner(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 5)
	spec.Period = 60
	spec.SubTrajectories = 40
	subs, err := datagen.Generate(spec).Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	const window = 14
	m, err := TrainSubTrajectories(subs[:12], Params{
		Period:                 spec.Period,
		HistoryWindow:          window,
		DisableRegionDiscovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	retired := 0
	for n := 12; n < len(subs); n += 3 {
		hi := n + 3
		if hi > len(subs) {
			hi = len(subs)
		}
		res, err := m.Extend(subs[n:hi])
		if err != nil {
			t.Fatal(err)
		}
		retired += res.RetiredSubTrajectories
		requireBatchEquivalent(t, m, fmt.Sprintf("after %d subs (window %d)", hi, window))
		// Supports cannot exceed the live window.
		for _, p := range livePatternsByKey(t, m) {
			if p.Support > window {
				t.Fatalf("pattern support %d exceeds window %d", p.Support, window)
			}
		}
	}
	if want := len(subs) - window; retired != want {
		t.Fatalf("retired %d sub-trajectories, want %d", retired, want)
	}
}

// TestExtendMintsRegions drives the full path: days that repeatedly visit
// a spot no trained region covers must first count as unmatched, then —
// once the per-offset buffer can support a cluster — mint a new frequent
// region, widen the key space, and promote patterns through it, all while
// the model keeps answering queries.
func TestExtendMintsRegions(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 23)
	spec.Period = 60
	spec.SubTrajectories = 24
	subs, err := datagen.Generate(spec).Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSubTrajectories(subs[:16], Params{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	regionsBefore := m.NumRegions()

	// Rewrite a window of each remaining day to a far-away haunt the
	// training data never visited; day-to-day jitter keeps DBSCAN honest.
	far := geom.Pt(90000, 90000)
	novel := make([]trajectory.SubTrajectory, 0, len(subs)-16)
	for i, s := range subs[16:] {
		cp := trajectory.SubTrajectory{Index: s.Index, Points: append([]geom.Point(nil), s.Points...)}
		for off := 20; off < 30; off++ {
			cp.Points[off] = geom.Pt(far.X+float64(i), far.Y+float64(off))
		}
		novel = append(novel, cp)
	}

	var unmatched, mintedRegions, newPatterns int
	for _, day := range novel {
		res, err := m.Extend([]trajectory.SubTrajectory{day})
		if err != nil {
			t.Fatal(err)
		}
		unmatched += res.UnmatchedPoints
		mintedRegions += res.NewRegions
		newPatterns += res.NewPatterns
		if m.TreeStats().Items != m.NumPatterns() {
			t.Fatalf("tree items %d != live patterns %d", m.TreeStats().Items, m.NumPatterns())
		}
	}
	if unmatched == 0 {
		t.Fatal("no unmatched points counted for novel movement")
	}
	if mintedRegions == 0 {
		t.Fatal("no region minted from the repeated novel haunt")
	}
	if m.NumRegions() != regionsBefore+mintedRegions {
		t.Fatalf("region table has %d regions, want %d + %d minted",
			m.NumRegions(), regionsBefore, mintedRegions)
	}
	// A minted region must be locatable where the novel points landed.
	if _, ok := m.Regions().Locate(25, geom.Pt(far.X+3, far.Y+25)); !ok {
		t.Fatal("novel haunt not covered by any minted region")
	}

	// End-to-end: the grown model still answers queries.
	day := subs[20]
	base := (16 + len(novel)) * spec.Period
	var recent []trajectory.TimedPoint
	for off := 0; off < 10; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	if _, err := m.Predict(recent, base+25, 1); err != nil {
		t.Fatal(err)
	}
}

// TestExtendDisableRegionDiscovery: with discovery off the same novel
// movement counts as unmatched forever and never changes the region set.
func TestExtendDisableRegionDiscovery(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Cow, 29)
	spec.Period = 60
	spec.SubTrajectories = 20
	subs, err := datagen.Generate(spec).Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSubTrajectories(subs[:12], Params{Period: spec.Period, DisableRegionDiscovery: true})
	if err != nil {
		t.Fatal(err)
	}
	regions := m.NumRegions()
	far := geom.Pt(80000, 80000)
	for i, s := range subs[12:] {
		cp := trajectory.SubTrajectory{Index: s.Index, Points: append([]geom.Point(nil), s.Points...)}
		for off := 5; off < 12; off++ {
			cp.Points[off] = geom.Pt(far.X+float64(i), far.Y)
		}
		res, err := m.Extend([]trajectory.SubTrajectory{cp})
		if err != nil {
			t.Fatal(err)
		}
		if res.UnmatchedPoints == 0 {
			t.Fatal("novel points not counted as unmatched")
		}
		if res.NewRegions != 0 {
			t.Fatal("region minted with discovery disabled")
		}
	}
	if m.NumRegions() != regions {
		t.Fatalf("region set changed: %d -> %d", regions, m.NumRegions())
	}
}

// BenchmarkExtend measures the per-period incremental update cost as
// history accumulates; with delta mining it must not grow with the number
// of periods already absorbed.
func BenchmarkExtend(b *testing.B) {
	spec := datagen.DefaultSpec(datagen.Bike, 41)
	spec.Period = 300
	spec.SubTrajectories = 64
	subs, err := datagen.Generate(spec).Decompose(spec.Period)
	if err != nil {
		b.Fatal(err)
	}
	m, err := TrainSubTrajectories(subs[:32], Params{Period: spec.Period})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the miner outside the timed region.
	if _, err := m.Extend(subs[32:33]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := subs[33+i%(len(subs)-33)]
		if _, err := m.Extend([]trajectory.SubTrajectory{day}); err != nil {
			b.Fatal(err)
		}
	}
}
