package core

import (
	"testing"

	"hpm/internal/datagen"
	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

// bikeModel trains a small Bike model shared by several tests.
func bikeModel(t *testing.T) (*Model, []trajectory.SubTrajectory, datagen.Spec) {
	t.Helper()
	spec := datagen.DefaultSpec(datagen.Bike, 42)
	spec.Period = 100
	spec.SubTrajectories = 50
	tr := datagen.Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainSubTrajectories(subs[:40], Params{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	return m, subs, spec
}

func TestTrainBasics(t *testing.T) {
	m, _, _ := bikeModel(t)
	if m.NumRegions() == 0 {
		t.Fatal("no frequent regions discovered")
	}
	if m.NumPatterns() == 0 {
		t.Fatal("no patterns mined")
	}
	if m.TreeStats().Items != m.NumPatterns() {
		t.Errorf("tree items %d != patterns %d", m.TreeStats().Items, m.NumPatterns())
	}
	p := m.Params()
	if p.Eps != DefaultEps || p.MinPts != DefaultMinPts {
		t.Errorf("defaults not applied: %+v", p)
	}
	if p.Mining.MinConfidence != DefaultMinConfidence {
		t.Errorf("min confidence default: %v", p.Mining.MinConfidence)
	}
	if !m.Bounds().IsValid() || m.Bounds().Area() == 0 {
		t.Errorf("bad bounds %v", m.Bounds())
	}
	if m.MiningStats().Rules != m.NumPatterns() {
		t.Error("stats rules != patterns")
	}
	if m.Engine() == nil || m.Encoder() == nil || m.Regions() == nil || m.Patterns() == nil {
		t.Error("accessor returned nil")
	}
}

func TestPredictNearQueryOnPattern(t *testing.T) {
	m, subs, spec := bikeModel(t)
	// Query a held-out day: recent movements at offsets 10..19 of day 45,
	// query offset 30 of the same day.
	day := subs[45]
	var recent []trajectory.TimedPoint
	base := 45 * spec.Period
	for off := 10; off < 20; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	preds, err := m.Predict(recent, base+30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions", len(preds))
	}
	truth := day.Points[30]
	if err := preds[0].Location.Dist(truth); err > 1500 {
		t.Errorf("near prediction error %v implausible (pred %v truth %v, source %v)",
			err, preds[0].Location, truth, preds[0].Source)
	}
}

func TestPredictDistantQueryUsesPatterns(t *testing.T) {
	m, subs, spec := bikeModel(t)
	day := subs[44]
	base := 44 * spec.Period
	var recent []trajectory.TimedPoint
	for off := 0; off < 10; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	// Distant: default threshold is 60, horizon here is 80.
	preds, err := m.Predict(recent, base+89, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if preds[0].Source != hpa.SourcePattern {
		t.Errorf("distant query answered by %v, want pattern (BQP)", preds[0].Source)
	}
	truth := day.Points[89]
	if e := preds[0].Location.Dist(truth); e > 2000 {
		t.Errorf("distant prediction error %v implausible", e)
	}
}

func TestPredictKReturnsSeveral(t *testing.T) {
	m, subs, spec := bikeModel(t)
	day := subs[46]
	base := 46 * spec.Period
	var recent []trajectory.TimedPoint
	for off := 10; off < 20; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	preds, err := m.Predict(recent, base+25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	if len(preds) > 3 {
		t.Errorf("k=3 returned %d", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Score > preds[i-1].Score {
			t.Error("predictions not ranked")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Params{Period: 10}); err == nil {
		t.Error("nil trajectory accepted")
	}
	if _, err := Train(trajectory.New(nil), Params{Period: 10}); err == nil {
		t.Error("empty trajectory accepted")
	}
	tr := trajectory.New(make([]geom.Point, 5))
	if _, err := Train(tr, Params{Period: 10}); err == nil {
		t.Error("sub-period trajectory accepted")
	}
	if _, err := Train(tr, Params{Period: 0}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := TrainSubTrajectories(nil, Params{Period: 10}); err == nil {
		t.Error("no sub-trajectories accepted")
	}
}

func TestTrainSubTrajectoriesPeriodMismatch(t *testing.T) {
	subs := []trajectory.SubTrajectory{{Index: 0, Points: make([]geom.Point, 5)}}
	if _, err := TrainSubTrajectories(subs, Params{Period: 10}); err == nil {
		t.Error("period mismatch accepted")
	}
}

func TestTrainViaTrajectory(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Cow, 13)
	spec.Period = 80
	spec.SubTrajectories = 30
	tr := datagen.Generate(spec)
	m, err := Train(tr, Params{Period: 80})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRegions() == 0 {
		t.Error("no regions from Train")
	}
}

func TestSubTrajectoriesCap(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 21)
	spec.Period = 60
	spec.SubTrajectories = 40
	tr := datagen.Generate(spec)
	subs, _ := tr.Decompose(60)
	small, err := TrainSubTrajectories(subs, Params{Period: 60, SubTrajectories: 8})
	if err != nil {
		t.Fatal(err)
	}
	full, err := TrainSubTrajectories(subs, Params{Period: 60})
	if err != nil {
		t.Fatal(err)
	}
	if small.Regions().NumSubTrajectories() != 8 {
		t.Errorf("cap not applied: trained on %d subs", small.Regions().NumSubTrajectories())
	}
	if full.Regions().NumSubTrajectories() != 40 {
		t.Errorf("full training used %d subs", full.Regions().NumSubTrajectories())
	}
	// More training data never yields fewer patterns on this dataset.
	if full.NumPatterns() < small.NumPatterns() {
		t.Logf("note: full %d < small %d patterns (possible but unusual)",
			full.NumPatterns(), small.NumPatterns())
	}
}

func TestMotionKindSelection(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Car, 31)
	spec.Period = 60
	spec.SubTrajectories = 20
	tr := datagen.Generate(spec)

	for _, kind := range []MotionKind{MotionRMF, MotionLinear, MotionNone} {
		m, err := Train(tr, Params{Period: 60, Motion: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Query far from any frequent region to force the fallback.
		recent := []trajectory.TimedPoint{
			{T: 60 * 19, Loc: geom.Pt(50, 9950)},
			{T: 60*19 + 1, Loc: geom.Pt(60, 9950)},
		}
		preds, err := m.Predict(recent, 60*19+5, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		switch kind {
		case MotionNone:
			if len(preds) != 0 {
				t.Errorf("MotionNone produced %v", preds)
			}
		default:
			if len(preds) != 1 || preds[0].Source != hpa.SourceMotion {
				t.Errorf("%v: fallback missing: %+v", kind, preds)
			}
			if !m.Bounds().Contains(preds[0].Location) {
				t.Errorf("%v: fallback escaped bounds", kind)
			}
		}
	}
}

func TestMotionKindString(t *testing.T) {
	if MotionRMF.String() != "rmf" || MotionLinear.String() != "linear" || MotionNone.String() != "none" {
		t.Error("MotionKind.String broken")
	}
}

func TestPruningStatsExposed(t *testing.T) {
	spec := datagen.DefaultSpec(datagen.Bike, 42)
	spec.Period = 100
	spec.SubTrajectories = 30
	tr := datagen.Generate(spec)
	m, err := Train(tr, Params{Period: spec.Period,
		Mining: pattern.Config{CountUnpruned: true}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.MiningStats()
	if s.UnprunedRules <= s.Rules {
		t.Errorf("pruning ablation counters: unpruned %d, rules %d", s.UnprunedRules, s.Rules)
	}
	if pct := s.ReductionPct(); pct <= 0 || pct >= 100 {
		t.Errorf("reduction %v%% out of range", pct)
	}
}

func TestExplain(t *testing.T) {
	m, subs, spec := bikeModel(t)
	day := subs[45]
	base := 45 * spec.Period
	var recent []trajectory.TimedPoint
	for off := 10; off < 20; off++ {
		recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
	}
	preds, err := m.Predict(recent, base+30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 || preds[0].Source != hpa.SourcePattern {
		t.Skip("query not answered by a pattern on this seed")
	}
	ex, ok := m.Explain(preds[0])
	if !ok {
		t.Fatal("Explain refused a pattern prediction")
	}
	if len(ex.Premise) == 0 {
		t.Error("explanation has no premise regions")
	}
	if ex.Consequence.Center != preds[0].Location {
		t.Errorf("consequence center %v != predicted %v", ex.Consequence.Center, preds[0].Location)
	}
	if ex.Consequence.Offset != preds[0].ConsequenceOffset {
		t.Errorf("consequence offset %d != %d", ex.Consequence.Offset, preds[0].ConsequenceOffset)
	}
	if ex.Confidence <= 0 || ex.Confidence > 1 {
		t.Errorf("confidence %v out of range", ex.Confidence)
	}
	if ex.Rule == "" || ex.Support <= 0 {
		t.Errorf("rule %q support %d", ex.Rule, ex.Support)
	}
	// Motion predictions are not explainable.
	if _, ok := m.Explain(hpa.Prediction{Source: hpa.SourceMotion, PatternRef: -1}); ok {
		t.Error("Explain accepted a motion prediction")
	}
	if _, ok := m.Explain(hpa.Prediction{Source: hpa.SourcePattern, PatternRef: 1 << 30}); ok {
		t.Error("Explain accepted an out-of-range ref")
	}
}
