package core

import (
	"bytes"
	"math/rand"
	"testing"

	"hpm/internal/datagen"
	"hpm/internal/trajectory"
)

// TestParallelTrainingEquivalence is the determinism guarantee behind
// Params.Parallelism: for every dataset, a model trained with 8 workers
// must be indistinguishable from one trained serially — identical regions,
// patterns, bounds and index (checked byte-for-byte through Save), and
// identical predictions on a query workload.
func TestParallelTrainingEquivalence(t *testing.T) {
	for _, kind := range datagen.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			spec := datagen.DefaultSpec(kind, 7)
			spec.Period = 120
			spec.SubTrajectories = 40
			tr := datagen.Generate(spec)
			subs, err := tr.Decompose(spec.Period)
			if err != nil {
				t.Fatal(err)
			}

			train := func(workers int) *Model {
				m, err := TrainSubTrajectories(subs[:30], Params{
					Period:      spec.Period,
					Parallelism: workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return m
			}
			serial := train(1)
			parallel := train(8)

			if serial.NumRegions() == 0 || serial.NumPatterns() == 0 {
				t.Fatalf("degenerate model: %d regions, %d patterns",
					serial.NumRegions(), serial.NumPatterns())
			}

			// Byte-level identity of everything persistent: params (sans
			// the excluded Parallelism knob), bounds, region table with
			// visitor bitmaps, and the full pattern list.
			var bs, bp bytes.Buffer
			if err := serial.Save(&bs); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Save(&bp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
				t.Fatalf("serialized models differ: %d vs %d bytes",
					bs.Len(), bp.Len())
			}

			// The index is rebuilt rather than serialized; compare its
			// physical shape and the answers it produces directly.
			if st1, st8 := serial.TreeStats(), parallel.TreeStats(); st1 != st8 {
				t.Fatalf("tree stats differ:\nserial:   %+v\nparallel: %+v", st1, st8)
			}
			rng := rand.New(rand.NewSource(99))
			queryDays := subs[30:]
			for q := 0; q < 40; q++ {
				day := queryDays[rng.Intn(len(queryDays))]
				tcOff := 10 + rng.Intn(spec.Period-40)
				base := day.Index * spec.Period
				var recent []trajectory.TimedPoint
				for off := tcOff - 9; off <= tcOff; off++ {
					recent = append(recent, trajectory.TimedPoint{T: base + off, Loc: day.Points[off]})
				}
				tq := base + tcOff + 1 + rng.Intn(80)
				p1, err1 := serial.Predict(recent, tq, 3)
				p8, err8 := parallel.Predict(recent, tq, 3)
				if (err1 == nil) != (err8 == nil) {
					t.Fatalf("query %d: errors differ: %v vs %v", q, err1, err8)
				}
				if len(p1) != len(p8) {
					t.Fatalf("query %d: %d vs %d predictions", q, len(p1), len(p8))
				}
				for i := range p1 {
					if p1[i] != p8[i] {
						t.Fatalf("query %d prediction %d differs:\nserial:   %+v\nparallel: %+v",
							q, i, p1[i], p8[i])
					}
				}
			}
		})
	}
}

// TestParallelismDefault checks the hardware default resolves and odd
// values are tolerated.
func TestParallelismDefault(t *testing.T) {
	p := Params{Period: 10}.withDefaults()
	if p.Parallelism < 1 {
		t.Fatalf("default parallelism %d", p.Parallelism)
	}
	if p.Mining.Parallelism != p.Parallelism || p.Tree.Parallelism != p.Parallelism {
		t.Fatalf("knob not plumbed: params=%d mining=%d tree=%d",
			p.Parallelism, p.Mining.Parallelism, p.Tree.Parallelism)
	}
	n := Params{Period: 10, Parallelism: -5}.withDefaults()
	if n.Parallelism < 1 {
		t.Fatalf("negative parallelism resolved to %d", n.Parallelism)
	}
}
