package bitkey

import "testing"

// FuzzParse checks that Parse never panics and that accepted inputs
// round-trip exactly through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "00011", "10101", "0100001", "2", "01x", "1111111111111111111111111111111111111111111111111111111111111111111"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := Parse(s)
		if err != nil {
			return
		}
		if got := k.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	})
}

// FuzzUnmarshalBinary checks the binary decoder never panics and that
// every accepted payload re-encodes to itself.
func FuzzUnmarshalBinary(f *testing.F) {
	for _, seed := range []Key{New(0), MustParse("10101"), FromPositions(130, 1, 64, 65, 130)} {
		b, _ := seed.MarshalBinary()
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var k Key
		if err := k.UnmarshalBinary(data); err != nil {
			return
		}
		back, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if string(back) != string(data) {
			t.Fatalf("decode/encode not idempotent: %x vs %x", back, data)
		}
	})
}
