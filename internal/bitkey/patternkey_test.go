package bitkey

import (
	"math/rand"
	"testing"
)

// Paper Table III: pattern keys for the four Jane patterns with a 2-bit
// consequence key and 5-bit premise key.
func TestPaperPatternKeys(t *testing.T) {
	tests := []struct {
		name string
		pk   PatternKey
		want string
	}{
		// P0: R0^0 -> R1^0  (consequence offset 1 => time id 0 => ck 01)
		{"P0", PatternKey{CK: MustParse("01"), RK: MustParse("00001")}, "0100001"},
		// P1: R0^0 -> R1^1
		{"P1", PatternKey{CK: MustParse("01"), RK: MustParse("00001")}, "0100001"},
		// P2: R0^0 ∧ R1^0 -> R2^0  (consequence offset 2 => time id 1 => ck 10)
		{"P2", PatternKey{CK: MustParse("10"), RK: MustParse("00011")}, "1000011"},
		// P3: R0^0 ∧ R1^1 -> R2^1
		{"P3", PatternKey{CK: MustParse("10"), RK: MustParse("00101")}, "1000101"},
	}
	for _, tt := range tests {
		if got := tt.pk.String(); got != tt.want {
			t.Errorf("%s key = %s, want %s", tt.name, got, tt.want)
		}
	}
	// P0 and P1 share the same pattern key — the paper notes this collision
	// is expected because multiple frequent regions can share a consequence
	// time offset.
	if !tests[0].pk.Equal(tests[1].pk) {
		t.Error("P0 and P1 should share the same pattern key")
	}
}

// Paper §VI-B worked query: Jane's recent movements R0^0, R1^0 with tq = 2
// give query key 1000011; it must intersect P2 (1000011) and P3 (1000101)
// but not P0/P1 (0100001) whose consequence offset differs.
func TestPaperQueryIntersection(t *testing.T) {
	q := MustParsePattern("1000011", 2)
	p0 := MustParsePattern("0100001", 2)
	p2 := MustParsePattern("1000011", 2)
	p3 := MustParsePattern("1000101", 2)

	if q.Intersects(p0) {
		t.Error("query should not intersect P0: consequence offsets differ")
	}
	if !q.Intersects(p2) {
		t.Error("query should intersect P2")
	}
	if !q.Intersects(p3) {
		t.Error("query should intersect P3: shares premise bit 1 and consequence bit")
	}
}

func TestIntersectRequiresBothParts(t *testing.T) {
	// Same consequence, disjoint premise: Intersect must be false, but
	// the BQP predicate (consequence only) must be true.
	a := PatternKey{CK: MustParse("10"), RK: MustParse("00011")}
	b := PatternKey{CK: MustParse("10"), RK: MustParse("01100")}
	if a.Intersects(b) {
		t.Error("disjoint premises must not Intersect")
	}
	if !a.IntersectsConsequence(b) {
		t.Error("IntersectsConsequence must hold for shared consequence bit")
	}
	// Same premise, disjoint consequence.
	c := PatternKey{CK: MustParse("01"), RK: MustParse("00011")}
	if a.Intersects(c) {
		t.Error("disjoint consequences must not Intersect")
	}
	if a.IntersectsConsequence(c) {
		t.Error("IntersectsConsequence must be false for disjoint consequence")
	}
}

func TestPatternKeyUnionContainment(t *testing.T) {
	a := MustParsePattern("1000011", 2)
	b := MustParsePattern("0100101", 2)
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union must contain both operands")
	}
	if u.String() != "1100111" {
		t.Errorf("union = %s, want 1100111", u)
	}
	if u.Size() != 5 {
		t.Errorf("union size = %d, want 5", u.Size())
	}
}

func TestPatternKeyDifference(t *testing.T) {
	a := MustParsePattern("1000011", 2)
	b := MustParsePattern("1000001", 2)
	if got := a.Difference(b); got != 1 {
		t.Errorf("Difference = %d, want 1", got)
	}
	if got := b.Difference(a); got != 0 {
		t.Errorf("reverse Difference = %d, want 0", got)
	}
}

func TestUnionInPlaceMatchesUnion(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		ckLen, rkLen := 1+r.Intn(20), 1+r.Intn(100)
		a := PatternKey{CK: randomKey(r, ckLen), RK: randomKey(r, rkLen)}
		b := PatternKey{CK: randomKey(r, ckLen), RK: randomKey(r, rkLen)}
		want := a.Union(b)
		got := a.Clone()
		got.UnionInPlace(b)
		if !got.Equal(want) {
			t.Fatalf("UnionInPlace mismatch: %s vs %s", got, want)
		}
	}
}

func TestPatternKeyBytes(t *testing.T) {
	p := NewPatternKey(2, 5) // 7 bits -> 1 byte
	if p.Bytes() != 1 {
		t.Errorf("Bytes = %d, want 1", p.Bytes())
	}
	p = NewPatternKey(100, 800) // 900 bits -> 113 bytes
	if p.Bytes() != 113 {
		t.Errorf("Bytes = %d, want 113", p.Bytes())
	}
}

func TestParsePatternErrors(t *testing.T) {
	if _, err := ParsePattern("0101", 5); err == nil {
		t.Error("ckLen > len accepted")
	}
	if _, err := ParsePattern("01x1", 2); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestIsZeroAndClone(t *testing.T) {
	p := NewPatternKey(2, 5)
	if !p.IsZero() {
		t.Error("fresh pattern key not zero")
	}
	p.CK.Set(1)
	c := p.Clone()
	c.RK.Set(3)
	if p.RK.Bit(3) {
		t.Error("Clone aliases storage")
	}
}
