package bitkey

import "fmt"

// PatternKey is the symbolization of a trajectory pattern: the consequence
// key CK (one bit per consequence time offset) placed before the premise key
// RK (one bit per frequent region). The paper concatenates the two bit
// strings; keeping them as separate fields preserves the concatenation
// semantics while letting Intersect test each part, exactly as §V-A defines.
type PatternKey struct {
	CK Key // consequence key
	RK Key // premise (region) key
}

// NewPatternKey returns an all-zero pattern key with ckLen consequence bits
// and rkLen premise bits.
func NewPatternKey(ckLen, rkLen int) PatternKey {
	return PatternKey{CK: New(ckLen), RK: New(rkLen)}
}

// Clone returns an independent copy of p.
func (p PatternKey) Clone() PatternKey {
	return PatternKey{CK: p.CK.Clone(), RK: p.RK.Clone()}
}

// Union returns the bitwise OR of p and q (the paper's Union operation over
// the concatenated keys). Internal TPT entries are unions of their subtree.
func (p PatternKey) Union(q PatternKey) PatternKey {
	return PatternKey{CK: p.CK.Or(q.CK), RK: p.RK.Or(q.RK)}
}

// UnionInPlace sets p = p | q without allocating.
func (p PatternKey) UnionInPlace(q PatternKey) {
	p.CK.OrInPlace(q.CK)
	p.RK.OrInPlace(q.RK)
}

// Size returns the number of '1's across the concatenated key.
func (p PatternKey) Size() int { return p.CK.Size() + p.RK.Size() }

// Contains reports whether p & q == q over the concatenated key.
func (p PatternKey) Contains(q PatternKey) bool {
	return p.CK.Contains(q.CK) && p.RK.Contains(q.RK)
}

// Difference returns Size(p XOR (p AND q)) over the concatenated key: how
// many '1's of p are absent from q.
func (p PatternKey) Difference(q PatternKey) int {
	return p.CK.Difference(q.CK) + p.RK.Difference(q.RK)
}

// Intersects implements the paper's Intersect operation: true only when the
// consequence keys share a '1' AND the premise keys share a '1'. This is the
// pruning predicate of Forward Query Processing.
func (p PatternKey) Intersects(q PatternKey) bool {
	return p.CK.Intersects(q.CK) && p.RK.Intersects(q.RK)
}

// IntersectsConsequence reports whether only the consequence keys share a
// '1'. Backward Query Processing "gives up the constraint for the premise
// key" (§VI-C) and descends the tree on this weaker predicate.
func (p PatternKey) IntersectsConsequence(q PatternKey) bool {
	return p.CK.Intersects(q.CK)
}

// Equal reports whether both parts are identical.
func (p PatternKey) Equal(q PatternKey) bool {
	return p.CK.Equal(q.CK) && p.RK.Equal(q.RK)
}

// IsZero reports whether no bit is set in either part.
func (p PatternKey) IsZero() bool { return p.CK.IsZero() && p.RK.IsZero() }

// Bytes returns the packed storage footprint of the concatenated key.
func (p PatternKey) Bytes() int { return (p.CK.Len() + p.RK.Len() + 7) / 8 }

// String renders the concatenated key, consequence part first, matching the
// paper's Table III (e.g. "0100001").
func (p PatternKey) String() string { return p.CK.String() + p.RK.String() }

// ParsePattern splits a concatenated binary string into a PatternKey given
// the consequence-key length.
func ParsePattern(s string, ckLen int) (PatternKey, error) {
	if ckLen < 0 || ckLen > len(s) {
		return PatternKey{}, fmt.Errorf("bitkey: consequence length %d out of range for %q", ckLen, s)
	}
	ck, err := Parse(s[:ckLen])
	if err != nil {
		return PatternKey{}, err
	}
	rk, err := Parse(s[ckLen:])
	if err != nil {
		return PatternKey{}, err
	}
	return PatternKey{CK: ck, RK: rk}, nil
}

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(s string, ckLen int) PatternKey {
	p, err := ParsePattern(s, ckLen)
	if err != nil {
		panic(err)
	}
	return p
}
