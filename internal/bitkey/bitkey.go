// Package bitkey implements the fixed-length bitmap keys and the bit
// algebra that the Trajectory Pattern Tree is built on.
//
// A trajectory pattern is symbolized as a pattern key: a consequence key
// (one bit per distinct consequence time offset) concatenated with a premise
// key (one bit per frequent region, ordered by time offset). The paper
// defines five operations over pattern keys — Union, Size, Contain,
// Difference, and Intersect — all of which reduce to bitwise operations
// provided here.
//
// Bit positions are numbered from the right starting at 1, matching the
// paper's convention (Property 1: a '1' at a higher position belongs to a
// frequent region whose time offset is closer to the consequence).
package bitkey

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// Key is a fixed-length bitmap. The zero Key has length 0 and no bits set.
// Keys of different lengths are incomparable; the binary operations panic on
// a length mismatch because mixing key universes is always a caller bug.
type Key struct {
	n     int
	words []uint64
}

// New returns an all-zero key of n bits. n may be zero (the empty key).
func New(n int) Key {
	if n < 0 {
		panic("bitkey: negative length")
	}
	return Key{n: n, words: make([]uint64, (n+63)/64)}
}

// FromPositions returns an n-bit key with the given 1-based positions set.
func FromPositions(n int, positions ...int) Key {
	k := New(n)
	for _, p := range positions {
		k.Set(p)
	}
	return k
}

// Len returns the key length in bits.
func (k Key) Len() int { return k.n }

// Set sets the bit at 1-based position p (counted from the right).
func (k Key) Set(p int) {
	k.checkPos(p)
	k.words[(p-1)/64] |= 1 << uint((p-1)%64)
}

// Clear clears the bit at 1-based position p.
func (k Key) Clear(p int) {
	k.checkPos(p)
	k.words[(p-1)/64] &^= 1 << uint((p-1)%64)
}

// Bit reports whether the bit at 1-based position p is set.
func (k Key) Bit(p int) bool {
	k.checkPos(p)
	return k.words[(p-1)/64]&(1<<uint((p-1)%64)) != 0
}

func (k Key) checkPos(p int) {
	if p < 1 || p > k.n {
		panic(fmt.Sprintf("bitkey: position %d out of key length %d", p, k.n))
	}
}

func (k Key) checkLen(o Key) {
	if k.n != o.n {
		panic(fmt.Sprintf("bitkey: length mismatch %d != %d", k.n, o.n))
	}
}

// Clone returns an independent copy of k.
func (k Key) Clone() Key {
	c := Key{n: k.n, words: make([]uint64, len(k.words))}
	copy(c.words, k.words)
	return c
}

// Or returns k | o as a new key.
func (k Key) Or(o Key) Key {
	k.checkLen(o)
	r := k.Clone()
	for i, w := range o.words {
		r.words[i] |= w
	}
	return r
}

// OrInPlace sets k = k | o without allocating. Used on the hot path of TPT
// internal-entry maintenance.
func (k Key) OrInPlace(o Key) {
	k.checkLen(o)
	for i, w := range o.words {
		k.words[i] |= w
	}
}

// And returns k & o as a new key.
func (k Key) And(o Key) Key {
	k.checkLen(o)
	r := k.Clone()
	for i, w := range o.words {
		r.words[i] &= w
	}
	return r
}

// Xor returns k ^ o as a new key.
func (k Key) Xor(o Key) Key {
	k.checkLen(o)
	r := k.Clone()
	for i, w := range o.words {
		r.words[i] ^= w
	}
	return r
}

// Size returns the number of '1's in k (the paper's Size operation).
func (k Key) Size() int {
	s := 0
	for _, w := range k.words {
		s += bits.OnesCount64(w)
	}
	return s
}

// IsZero reports whether no bit is set.
func (k Key) IsZero() bool {
	for _, w := range k.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether k and o have identical length and bits.
func (k Key) Equal(o Key) bool {
	if k.n != o.n {
		return false
	}
	for i, w := range k.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Contains reports whether every bit of o is also set in k, i.e.
// k & o == o (the paper's Contain operation).
func (k Key) Contains(o Key) bool {
	k.checkLen(o)
	for i, w := range o.words {
		if k.words[i]&w != w {
			return false
		}
	}
	return true
}

// AndSize returns Size(k & o) without materializing the intermediate key.
func (k Key) AndSize(o Key) int {
	k.checkLen(o)
	s := 0
	for i, w := range o.words {
		s += bits.OnesCount64(k.words[i] & w)
	}
	return s
}

// Intersects reports whether k and o share at least one set bit.
func (k Key) Intersects(o Key) bool {
	k.checkLen(o)
	for i, w := range o.words {
		if k.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Difference returns Size(k XOR (k AND o)): the number of '1's in k that are
// not in o (the paper's Difference operation). It is asymmetric by design —
// Difference(pk, e) measures how many new bits inserting pk into entry e
// would switch on.
func (k Key) Difference(o Key) int {
	k.checkLen(o)
	s := 0
	for i, w := range k.words {
		s += bits.OnesCount64(w &^ o.words[i])
	}
	return s
}

// Ones returns the 1-based positions of all set bits in ascending order
// (right to left). Premise-similarity scoring walks these positions.
func (k Key) Ones() []int {
	out := make([]int, 0, k.Size())
	for i, w := range k.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b+1)
			w &= w - 1
		}
	}
	return out
}

// String renders the key as a binary string, most significant bit first,
// matching the paper's tables (e.g. "00011").
func (k Key) String() string {
	var sb strings.Builder
	sb.Grow(k.n)
	for p := k.n; p >= 1; p-- {
		if k.Bit(p) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a key from a binary string such as "00011" (most significant
// bit first). It returns an error on any character other than '0' or '1'.
func Parse(s string) (Key, error) {
	k := New(len(s))
	for i, c := range s {
		switch c {
		case '1':
			k.Set(len(s) - i)
		case '0':
		default:
			return Key{}, fmt.Errorf("bitkey: invalid character %q in %q", c, s)
		}
	}
	return k, nil
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(s string) Key {
	k, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return k
}

// Bytes returns the size in bytes a key of this length occupies when stored
// packed, as used by the TPT storage accounting in Figure 11(a).
func (k Key) Bytes() int { return (k.n + 7) / 8 }

// MarshalBinary implements encoding.BinaryMarshaler: a uvarint bit length
// followed by the packed little-endian bytes.
func (k Key) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 10+k.Bytes())
	buf = binary.AppendUvarint(buf, uint64(k.n))
	for i := 0; i < k.Bytes(); i++ {
		buf = append(buf, byte(k.words[i/8]>>(8*uint(i%8))))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for the
// MarshalBinary format.
func (k *Key) UnmarshalBinary(data []byte) error {
	n, read := binary.Uvarint(data)
	if read <= 0 {
		return fmt.Errorf("bitkey: corrupt length prefix")
	}
	// Reject non-minimal varints so every key has exactly one encoding
	// (decode∘encode is the identity on valid payloads).
	var canon [binary.MaxVarintLen64]byte
	if binary.PutUvarint(canon[:], n) != read {
		return fmt.Errorf("bitkey: non-canonical length prefix")
	}
	// Bound the declared length by what the payload can actually hold
	// before allocating: a hostile prefix must not overflow int or
	// balloon memory.
	if n > uint64(len(data))*8 {
		return fmt.Errorf("bitkey: declared length %d exceeds payload", n)
	}
	nk := New(int(n))
	if len(data)-read != nk.Bytes() {
		return fmt.Errorf("bitkey: key of %d bits needs %d bytes, have %d", n, nk.Bytes(), len(data)-read)
	}
	for i, b := range data[read:] {
		nk.words[i/8] |= uint64(b) << (8 * uint(i%8))
	}
	*k = nk
	return nil
}

// Grown returns a copy of k widened to n bits (existing bits preserved).
// It panics when n is smaller than the current length — keys never shrink.
// The miner grows every region's visitor bitmap together when new
// sub-trajectories arrive (§V-B dynamic data).
func (k Key) Grown(n int) Key {
	if n < k.n {
		panic(fmt.Sprintf("bitkey: cannot shrink key from %d to %d bits", k.n, n))
	}
	g := New(n)
	copy(g.words, k.words)
	return g
}

// Compare orders keys of equal length by their bit content, most
// significant word first: -1 when k sorts before o, +1 after, 0 on equal.
// Bulk loading sorts large pattern-key sets with this.
func (k Key) Compare(o Key) int {
	k.checkLen(o)
	for i := len(k.words) - 1; i >= 0; i-- {
		switch {
		case k.words[i] < o.words[i]:
			return -1
		case k.words[i] > o.words[i]:
			return 1
		}
	}
	return 0
}
