package bitkey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndSet(t *testing.T) {
	k := New(5)
	if k.Len() != 5 || k.Size() != 0 || !k.IsZero() {
		t.Fatalf("fresh key wrong: len=%d size=%d", k.Len(), k.Size())
	}
	k.Set(1)
	k.Set(5)
	if !k.Bit(1) || !k.Bit(5) || k.Bit(3) {
		t.Errorf("bits wrong after Set: %s", k)
	}
	if k.Size() != 2 {
		t.Errorf("Size = %d, want 2", k.Size())
	}
	k.Clear(5)
	if k.Bit(5) || k.Size() != 1 {
		t.Errorf("Clear failed: %s", k)
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	k := New(5)
	for _, p := range []int{0, 6, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", p)
				}
			}()
			k.Set(p)
		}()
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"00001", "00011", "10101", "0", "1", "0100001"} {
		k := MustParse(s)
		if k.String() != s {
			t.Errorf("round trip %q -> %q", s, k.String())
		}
	}
	if _, err := Parse("0102"); err == nil {
		t.Error("Parse accepted invalid characters")
	}
}

// Paper Table I: region keys for 5 frequent regions are powers of two.
func TestPaperRegionKeys(t *testing.T) {
	want := []string{"00001", "00010", "00100", "01000", "10000"}
	for id, s := range want {
		k := FromPositions(5, id+1)
		if k.String() != s {
			t.Errorf("region id %d key = %s, want %s", id, k, s)
		}
	}
}

// Paper §V-A: the premise key for R0^0 ∧ R1^0 is the OR of their region
// keys: 00001 | 00010 = 00011.
func TestPaperPremiseKeyComposition(t *testing.T) {
	r00 := MustParse("00001")
	r10 := MustParse("00010")
	r11 := MustParse("00100")
	if got := r00.Or(r10).String(); got != "00011" {
		t.Errorf("premise key = %s, want 00011", got)
	}
	if got := r00.Or(r11).String(); got != "00101" {
		t.Errorf("premise key = %s, want 00101", got)
	}
}

func TestContains(t *testing.T) {
	a := MustParse("00111")
	tests := []struct {
		b    string
		want bool
	}{
		{"00111", true},
		{"00011", true},
		{"00000", true},
		{"01000", false},
		{"01111", false},
	}
	for _, tt := range tests {
		if got := a.Contains(MustParse(tt.b)); got != tt.want {
			t.Errorf("Contains(%s) = %v, want %v", tt.b, got, tt.want)
		}
	}
}

func TestDifference(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"00111", "00111", 0},
		{"00111", "00000", 3},
		{"00111", "00011", 1},
		{"11000", "00111", 2},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		if got := a.Difference(b); got != tt.want {
			t.Errorf("Difference(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestOnes(t *testing.T) {
	k := MustParse("10101")
	got := k.Ones()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
}

func TestOnesLargeKey(t *testing.T) {
	// Span multiple 64-bit words.
	k := New(200)
	positions := []int{1, 63, 64, 65, 128, 129, 200}
	for _, p := range positions {
		k.Set(p)
	}
	got := k.Ones()
	if len(got) != len(positions) {
		t.Fatalf("Ones = %v, want %v", got, positions)
	}
	for i := range positions {
		if got[i] != positions[i] {
			t.Fatalf("Ones = %v, want %v", got, positions)
		}
	}
	if k.Size() != len(positions) {
		t.Errorf("Size = %d, want %d", k.Size(), len(positions))
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(5), New(6)
	defer func() {
		if recover() == nil {
			t.Error("Or with mismatched lengths did not panic")
		}
	}()
	a.Or(b)
}

// randomKey builds a reproducible random key for property tests.
func randomKey(r *rand.Rand, n int) Key {
	k := New(n)
	for p := 1; p <= n; p++ {
		if r.Intn(2) == 1 {
			k.Set(p)
		}
	}
	return k
}

func TestBitAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(130)
		a, b := randomKey(r, n), randomKey(r, n)

		// Size(a|b) + Size(a&b) == Size(a) + Size(b)
		if a.Or(b).Size()+a.And(b).Size() != a.Size()+b.Size() {
			t.Fatal("inclusion-exclusion violated")
		}
		// a|b contains both operands.
		u := a.Or(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatal("union does not contain operands")
		}
		// Difference(a,b) == Size(a) - Size(a&b)
		if a.Difference(b) != a.Size()-a.AndSize(b) {
			t.Fatal("Difference identity violated")
		}
		// Intersects symmetric and consistent with AndSize.
		if a.Intersects(b) != (a.AndSize(b) > 0) || a.Intersects(b) != b.Intersects(a) {
			t.Fatal("Intersects inconsistent")
		}
		// Contains(a, a&b) always.
		if !a.Contains(a.And(b)) {
			t.Fatal("a does not contain a&b")
		}
		// Xor self is zero.
		if !a.Xor(a).IsZero() {
			t.Fatal("a^a != 0")
		}
		// Ones matches Size and Bit.
		ones := a.Ones()
		if len(ones) != a.Size() {
			t.Fatal("Ones length != Size")
		}
		for _, p := range ones {
			if !a.Bit(p) {
				t.Fatal("Ones reported unset bit")
			}
		}
	}
}

func TestParseStringInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := randomKey(rand.New(rand.NewSource(seed)), n)
		back := MustParse(k.String())
		return back.Equal(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct{ n, want int }{{1, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9}}
	for _, tt := range tests {
		if got := New(tt.n).Bytes(); got != tt.want {
			t.Errorf("Bytes(len %d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestGrown(t *testing.T) {
	k := MustParse("10101")
	g := k.Grown(9)
	if g.Len() != 9 || g.String() != "000010101" {
		t.Errorf("Grown = %s (len %d)", g, g.Len())
	}
	// Original untouched, copies independent.
	g.Set(9)
	if k.Len() != 5 || k.Size() != 3 {
		t.Error("Grown aliased the original")
	}
	// Same-length grow is a copy.
	if c := k.Grown(5); !c.Equal(k) {
		t.Error("Grown(same) != original")
	}
	defer func() {
		if recover() == nil {
			t.Error("shrinking did not panic")
		}
	}()
	k.Grown(3)
}

func TestMarshalBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		k := randomKey(r, r.Intn(300))
		data, err := k.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Key
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !back.Equal(k) {
			t.Fatalf("round trip mismatch: %s vs %s", back, k)
		}
	}
}

func TestUnmarshalBinaryRejectsCorruption(t *testing.T) {
	k := MustParse("1010110011")
	data, _ := k.MarshalBinary()
	var back Key
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Error("empty data accepted")
	}
	if err := back.UnmarshalBinary(data[:1]); err == nil {
		t.Error("truncated data accepted")
	}
	long := append(append([]byte{}, data...), 0xFF)
	if err := back.UnmarshalBinary(long); err == nil {
		t.Error("oversized data accepted")
	}
}
