package bitkey

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the pattern-key operations the TPT executes on
// every node visit (paper §V-A).

func benchKeys(n int) (Key, Key) {
	r := rand.New(rand.NewSource(1))
	return randomKey(r, n), randomKey(r, n)
}

func BenchmarkIntersects800(b *testing.B) {
	x, y := benchKeys(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersects(y)
	}
}

func BenchmarkContains800(b *testing.B) {
	x, y := benchKeys(800)
	u := x.Or(y) // guarantee containment so the loop never exits early
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.Contains(x)
	}
}

func BenchmarkDifference800(b *testing.B) {
	x, y := benchKeys(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Difference(y)
	}
}

func BenchmarkUnionInPlace800(b *testing.B) {
	x, y := benchKeys(800)
	dst := x.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.OrInPlace(y)
	}
}

func BenchmarkOnes800(b *testing.B) {
	x, _ := benchKeys(800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Ones()
	}
}
