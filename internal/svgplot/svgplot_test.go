package svgplot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "Demo & <Chart>",
		XLabel: "x axis",
		YLabel: "y axis",
		Series: []Series{
			{Name: "HPM", X: []float64{20, 40, 60}, Y: []float64{100, 120, 110}},
			{Name: "RMF", X: []float64{20, 40, 60}, Y: []float64{300, 900, 2500}},
		},
	}
}

func TestRenderWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(demoChart(), &buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("not well-formed XML: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"Demo &amp; &lt;Chart&gt;", // escaped title
		"HPM", "RMF", "x axis", "y axis",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two series: two polylines, distinct colors.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	if strings.Count(out, "#0072B2") < 2 || strings.Count(out, "#D55E00") < 2 {
		t.Error("series colors missing")
	}
}

func TestRenderLogX(t *testing.T) {
	c := Chart{
		Title: "log", XLabel: "n", YLabel: "t",
		LogX: true,
		Series: []Series{{
			Name: "scan",
			X:    []float64{1000, 10000, 100000},
			Y:    []float64{8, 87, 1218},
		}},
	}
	var buf bytes.Buffer
	if err := Render(c, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Decade ticks appear as 1K, 10K, 100K.
	for _, want := range []string{">1K<", ">10K<", ">100K<"} {
		if !strings.Contains(out, want) {
			t.Errorf("log axis missing tick %q", want)
		}
	}
	// Log axis with non-positive x errors.
	c.Series[0].X[0] = 0
	if err := Render(c, &buf); err == nil {
		t.Error("log axis accepted x = 0")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(Chart{Title: "empty"}, &buf); err == nil {
		t.Error("empty chart accepted")
	}
	c := Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := Render(c, &buf); err == nil {
		t.Error("ragged series accepted")
	}
	c = Chart{Series: []Series{{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if err := Render(c, &buf); err == nil {
		t.Error("NaN accepted")
	}
	c = Chart{Series: []Series{{Name: "none"}}}
	if err := Render(c, &buf); err == nil {
		t.Error("pointless chart accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point and constant series must still render.
	for _, c := range []Chart{
		{Title: "pt", Series: []Series{{Name: "a", X: []float64{5}, Y: []float64{7}}}},
		{Title: "flat", Series: []Series{{Name: "a", X: []float64{1, 2, 3}, Y: []float64{4, 4, 4}}}},
	} {
		var buf bytes.Buffer
		if err := Render(c, &buf); err != nil {
			t.Errorf("%s: %v", c.Title, err)
		}
		if !strings.Contains(buf.String(), "</svg>") {
			t.Errorf("%s: incomplete document", c.Title)
		}
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100+1e-9 {
		t.Errorf("ticks escape range: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate range ticks: %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	tests := map[float64]string{
		0:       "0",
		42:      "42",
		1500:    "1.5K",
		100000:  "100K",
		2000000: "2M",
		0.25:    "0.25",
	}
	for v, want := range tests {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
