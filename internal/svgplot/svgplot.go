// Package svgplot renders line charts as standalone SVG documents using
// only the standard library. cmd/hpmbench uses it to emit the paper's
// figures as images next to the text tables.
//
// The renderer covers what the evaluation needs: multiple named series
// over a shared x axis, automatic "nice" tick selection, an optional
// logarithmic x axis (pattern-count sweeps span two orders of magnitude),
// a legend, and data-point markers.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart describes one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX draws the x axis logarithmically; it requires all x > 0.
	LogX bool
	// Width and Height are the SVG canvas size; zero defaults to 640x420.
	Width, Height int
}

// Palette of series colors (colorblind-safe Okabe-Ito subset).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#E69F00", "#56B4E9", "#F0E442", "#000000",
}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// Render writes the chart as a complete SVG document.
func Render(c Chart, w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: chart %q has no series", c.Title)
	}
	width, height := float64(c.Width), float64(c.Height)
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}
	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom

	xmin, xmax, ymin, ymax, err := extents(c)
	if err != nil {
		return err
	}

	xform := func(x float64) float64 { return x }
	if c.LogX {
		if xmin <= 0 {
			return fmt.Errorf("svgplot: log x axis requires positive x, got %v", xmin)
		}
		xform = math.Log10
	}
	txmin, txmax := xform(xmin), xform(xmax)
	if txmax == txmin {
		txmax = txmin + 1
	}
	// Always give y headroom and include zero when close.
	if ymin > 0 && ymin < 0.25*ymax {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	ypad := 0.05 * (ymax - ymin)
	ymax += ypad

	px := func(x float64) float64 {
		return marginLeft + plotW*(xform(x)-txmin)/(txmax-txmin)
	}
	py := func(y float64) float64 {
		return marginTop + plotH*(1-(y-ymin)/(ymax-ymin))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title.
	fmt.Fprintf(&sb, `<text x="%g" y="22" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n",
		width/2, escape(c.Title))

	// Gridlines + ticks.
	for _, yt := range niceTicks(ymin, ymax, 6) {
		y := py(yt)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-8, y, formatTick(yt))
	}
	for _, xt := range xTicks(c, xmin, xmax) {
		x := px(xt)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			x, marginTop, x, height-marginBottom)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			x, height-marginBottom+18, formatTick(xt))
	}

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)

	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
	}

	// Legend (top-right inside the plot).
	legendX := width - marginRight - 150
	for si, s := range c.Series {
		y := marginTop + 14 + float64(si)*16
		color := palette[si%len(palette)]
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			legendX, y, legendX+22, y, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" dominant-baseline="middle">%s</text>`+"\n",
			legendX+28, y, escape(s.Name))
	}

	sb.WriteString("</svg>\n")
	_, err = io.WriteString(w, sb.String())
	return err
}

// extents returns the data ranges; it errors on empty or non-finite data.
func extents(c Chart) (xmin, xmax, ymin, ymax float64, err error) {
	first := true
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("svgplot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return 0, 0, 0, 0, fmt.Errorf("svgplot: series %q has non-finite point %d", s.Name, i)
			}
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if first {
		return 0, 0, 0, 0, fmt.Errorf("svgplot: chart %q has no points", c.Title)
	}
	return xmin, xmax, ymin, ymax, nil
}

// xTicks chooses x tick positions: the decades for log axes, nice linear
// ticks otherwise.
func xTicks(c Chart, xmin, xmax float64) []float64 {
	if !c.LogX {
		return niceTicks(xmin, xmax, 7)
	}
	var ticks []float64
	for d := math.Floor(math.Log10(xmin)); d <= math.Ceil(math.Log10(xmax)); d++ {
		v := math.Pow(10, d)
		if v >= xmin*0.999 && v <= xmax*1.001 {
			ticks = append(ticks, v)
		}
	}
	if len(ticks) < 2 {
		return []float64{xmin, xmax}
	}
	return ticks
}

// niceTicks returns up to n+1 round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	step := mag
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if mag*m >= rawStep {
			step = mag * m
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step*1e-9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick value compactly (1.5K, 2M, 0.25, 42).
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return trimZero(v/1e6) + "M"
	case av >= 1e3:
		return trimZero(v/1e3) + "K"
	case av == 0:
		return "0"
	case av < 1:
		return fmt.Sprintf("%.2g", v)
	default:
		return trimZero(v)
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

// escape makes text safe for SVG/XML content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
