// Package motion implements the vector-based prediction baselines of §II-A:
// the linear motion model used by TPR-tree-style indexes, and the Recursive
// Motion Function (RMF) of Tao, Faloutsos, Papadias and Liu (SIGMOD 2004),
// the most accurate motion function in the literature and the fallback
// predictor inside the Hybrid Prediction Algorithm.
//
// Both models are fitted on an object's recent movements only; the paper's
// central observation is that this makes them degrade sharply as the query
// time moves away from the current time, which these implementations
// faithfully exhibit.
package motion

import (
	"errors"
	"fmt"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// Function is a motion-function predictor. Fit trains on the object's
// recent movements (consecutive timestamps, ascending); Predict extrapolates
// to an absolute future timestamp.
type Function interface {
	// Name identifies the model in benchmark output.
	Name() string
	// Fit trains the model. recent must hold at least two points at
	// consecutive timestamps.
	Fit(recent []trajectory.TimedPoint) error
	// Predict returns the estimated location at time tq, which must not
	// precede the last fitted timestamp. Implementations clamp divergent
	// estimates to the configured world bounds.
	Predict(tq int) (geom.Point, error)
}

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("motion: model not fitted")

// validateRecent checks the common Fit preconditions.
func validateRecent(recent []trajectory.TimedPoint) error {
	if len(recent) < 2 {
		return fmt.Errorf("motion: need at least 2 recent points, got %d", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].T != recent[i-1].T+1 {
			return fmt.Errorf("motion: timestamps not consecutive at %d: %d after %d",
				i, recent[i].T, recent[i-1].T)
		}
	}
	return nil
}

// clampTo constrains p to bounds when bounds is non-nil and p is finite;
// non-finite estimates clamp to the last known location.
func clampTo(p geom.Point, bounds *geom.Rect, fallback geom.Point) geom.Point {
	if !p.IsFinite() {
		return fallback
	}
	if bounds != nil {
		return bounds.Clamp(p)
	}
	return p
}
