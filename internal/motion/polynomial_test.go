package motion

import (
	"math/rand"
	"testing"

	"hpm/internal/geom"
)

func TestPolynomialExactOnQuadratic(t *testing.T) {
	// Positions on x(t)=t², y(t)=3t: the fit must recover them exactly.
	pts := make([]geom.Point, 12)
	for i := range pts {
		s := float64(i)
		pts[i] = geom.Pt(s*s, 3*s)
	}
	p := NewPolynomial(nil)
	if err := p.Fit(timed(pts, 100)); err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int{1, 5, 10} {
		got, err := p.Predict(111 + dt)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(11 + dt)
		want := geom.Pt(s*s, 3*s)
		if got.Dist(want) > 1e-4 {
			t.Errorf("Predict(+%d) = %v, want %v", dt, got, want)
		}
	}
}

func TestPolynomialExactOnLinear(t *testing.T) {
	pts := linearPath(10, geom.Pt(5, 5), geom.Pt(2, -1))
	p := NewPolynomial(nil)
	if err := p.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(14)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Pt(5+2*14, 5-14)
	if got.Dist(want) > 1e-6 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestPolynomialTwoPointsDegradesToLine(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	p := NewPolynomial(nil)
	if err := p.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(geom.Pt(9, 12)) > 1e-9 {
		t.Errorf("two-point fit predicted %v, want (9,12)", got)
	}
}

func TestPolynomialClampsAndValidates(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	p := NewPolynomial(&bounds)
	if _, err := p.Predict(5); err != ErrNotFitted {
		t.Errorf("Predict before Fit: %v", err)
	}
	pts := make([]geom.Point, 8)
	for i := range pts {
		s := float64(i)
		pts[i] = geom.Pt(10*s*s, 50) // accelerating out of bounds
	}
	if err := p.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Contains(got) {
		t.Errorf("prediction %v escaped bounds", got)
	}
	if err := p.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestPolynomialBeatsLinearOnCurvedMotion(t *testing.T) {
	// Short-horizon prediction on a parabola: the quadratic model wins.
	r := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 20)
	for i := range pts {
		s := float64(i)
		pts[i] = geom.Pt(100*s, 2*s*s).Add(geom.Pt(r.NormFloat64(), r.NormFloat64()))
	}
	poly := NewPolynomial(nil)
	lin := NewLinear(nil)
	if err := poly.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	if err := lin.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	var polyErr, linErr float64
	for dt := 1; dt <= 8; dt++ {
		s := float64(19 + dt)
		truth := geom.Pt(100*s, 2*s*s)
		pp, _ := poly.Predict(19 + dt)
		lp, _ := lin.Predict(19 + dt)
		polyErr += pp.Dist(truth)
		linErr += lp.Dist(truth)
	}
	if polyErr >= linErr {
		t.Errorf("polynomial error %v not below linear %v on curved motion", polyErr, linErr)
	}
}

func TestPolynomialName(t *testing.T) {
	if NewPolynomial(nil).Name() != "Polynomial" {
		t.Error("wrong name")
	}
}
