package motion

import (
	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// Linear is the linear motion model l(tq) = l0 + v0·(tq − t0) used by the
// TPR-tree family of predictive indexes. The velocity v0 is the
// least-squares velocity over the fitted window, which is the standard
// robust estimate when updates are noisy.
type Linear struct {
	bounds *geom.Rect

	fitted bool
	lastT  int
	anchor geom.Point // fitted position at lastT
	vel    geom.Point // fitted velocity per timestamp
	lastP  geom.Point // last observed location (clamp fallback)
}

// NewLinear returns a linear model. bounds, when non-nil, clamps
// predictions to the world extent.
func NewLinear(bounds *geom.Rect) *Linear { return &Linear{bounds: bounds} }

// Name implements Function.
func (l *Linear) Name() string { return "Linear" }

// Fit implements Function by fitting x(t) and y(t) lines by least squares.
func (l *Linear) Fit(recent []trajectory.TimedPoint) error {
	if err := validateRecent(recent); err != nil {
		return err
	}
	n := float64(len(recent))
	// Regress against the relative time index 0..n-1 for conditioning.
	var sumT, sumTT, sumX, sumY, sumTX, sumTY float64
	for i, tp := range recent {
		t := float64(i)
		sumT += t
		sumTT += t * t
		sumX += tp.Loc.X
		sumY += tp.Loc.Y
		sumTX += t * tp.Loc.X
		sumTY += t * tp.Loc.Y
	}
	den := n*sumTT - sumT*sumT // zero only when n < 2, excluded above
	vx := (n*sumTX - sumT*sumX) / den
	vy := (n*sumTY - sumT*sumY) / den
	cx := (sumX - vx*sumT) / n
	cy := (sumY - vy*sumT) / n

	l.lastT = recent[len(recent)-1].T
	l.vel = geom.Pt(vx, vy)
	// Anchor at the fitted value of the last timestamp, not the noisy
	// observation, so the extrapolation line is continuous with the fit.
	l.anchor = geom.Pt(cx+vx*(n-1), cy+vy*(n-1))
	l.lastP = recent[len(recent)-1].Loc
	l.fitted = true
	return nil
}

// Predict implements Function.
func (l *Linear) Predict(tq int) (geom.Point, error) {
	if !l.fitted {
		return geom.Point{}, ErrNotFitted
	}
	dt := float64(tq - l.lastT)
	p := l.anchor.Add(l.vel.Scale(dt))
	return clampTo(p, l.bounds, l.lastP), nil
}
