package motion

import (
	"math"
	"math/rand"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

func timed(points []geom.Point, t0 int) []trajectory.TimedPoint {
	out := make([]trajectory.TimedPoint, len(points))
	for i, p := range points {
		out[i] = trajectory.TimedPoint{T: t0 + i, Loc: p}
	}
	return out
}

func linearPath(n int, start, vel geom.Point) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = start.Add(vel.Scale(float64(i)))
	}
	return pts
}

func circlePath(n int, center geom.Point, radius, omega float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := omega * float64(i)
		pts[i] = geom.Pt(center.X+radius*math.Cos(a), center.Y+radius*math.Sin(a))
	}
	return pts
}

func TestLinearExactOnLinearMotion(t *testing.T) {
	pts := linearPath(10, geom.Pt(100, 200), geom.Pt(3, -2))
	l := NewLinear(nil)
	if err := l.Fit(timed(pts, 50)); err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int{1, 10, 100} {
		got, err := l.Predict(59 + dt)
		if err != nil {
			t.Fatal(err)
		}
		want := pts[9].Add(geom.Pt(3, -2).Scale(float64(dt)))
		if got.Dist(want) > 1e-6 {
			t.Errorf("Predict(+%d) = %v, want %v", dt, got, want)
		}
	}
}

func TestLinearName(t *testing.T) {
	if NewLinear(nil).Name() != "Linear" {
		t.Error("wrong name")
	}
	if NewRMF(RMFConfig{}).Name() != "RMF" {
		t.Error("wrong name")
	}
}

func TestLinearClamps(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1000, 1000)}
	l := NewLinear(&bounds)
	pts := linearPath(5, geom.Pt(900, 900), geom.Pt(50, 50))
	if err := l.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := l.Predict(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Contains(got) {
		t.Errorf("prediction %v escaped bounds", got)
	}
}

func TestFitValidation(t *testing.T) {
	for _, fn := range []Function{NewLinear(nil), NewRMF(RMFConfig{})} {
		if err := fn.Fit(nil); err == nil {
			t.Errorf("%s accepted empty input", fn.Name())
		}
		if err := fn.Fit(timed(linearPath(1, geom.Pt(0, 0), geom.Pt(1, 1)), 0)); err == nil {
			t.Errorf("%s accepted a single point", fn.Name())
		}
		bad := []trajectory.TimedPoint{{T: 0, Loc: geom.Pt(0, 0)}, {T: 2, Loc: geom.Pt(1, 1)}}
		if err := fn.Fit(bad); err == nil {
			t.Errorf("%s accepted a timestamp gap", fn.Name())
		}
		if _, err := fn.Predict(10); err != ErrNotFitted {
			t.Errorf("%s Predict before Fit: %v, want ErrNotFitted", fn.Name(), err)
		}
	}
}

func TestRMFRecoversLinearMotion(t *testing.T) {
	pts := linearPath(30, geom.Pt(0, 0), geom.Pt(5, 2))
	r := NewRMF(RMFConfig{})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	// Linear motion satisfies l_t = 2 l_{t-1} - l_{t-2}; RMF must
	// extrapolate it near-exactly over a short horizon.
	for _, dt := range []int{1, 5, 20} {
		got, err := r.Predict(29 + dt)
		if err != nil {
			t.Fatal(err)
		}
		want := geom.Pt(5*float64(29+dt), 2*float64(29+dt))
		if got.Dist(want) > 1e-3*float64(dt)+1e-6 {
			t.Errorf("Predict(+%d) = %v, want %v", dt, got, want)
		}
	}
}

func TestRMFTracksCircularMotionShortTerm(t *testing.T) {
	// The paper credits RMF with capturing non-linear motion that the
	// linear model cannot. A circle is the canonical example.
	pts := circlePath(40, geom.Pt(0, 0), 100, 0.2)
	r := NewRMF(RMFConfig{})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	l := NewLinear(nil)
	if err := l.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	full := circlePath(60, geom.Pt(0, 0), 100, 0.2)
	var rmfErr, linErr float64
	for dt := 1; dt <= 15; dt++ {
		rp, err := r.Predict(39 + dt)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := l.Predict(39 + dt)
		if err != nil {
			t.Fatal(err)
		}
		rmfErr += rp.Dist(full[39+dt])
		linErr += lp.Dist(full[39+dt])
	}
	if rmfErr >= linErr {
		t.Errorf("RMF error %v not better than linear %v on circular motion", rmfErr, linErr)
	}
	if rmfErr > 30 { // 15 predictions on a radius-100 circle
		t.Errorf("RMF cumulative error %v too large on noiseless circle", rmfErr)
	}
}

func TestRMFErrorGrowsWithHorizon(t *testing.T) {
	// The paper's Figure 5 premise: motion-function error rises with the
	// prediction length on realistic (noisy, turning) movement.
	r := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 40)
	p := geom.Pt(5000, 5000)
	dir := geom.Pt(30, 0)
	for i := range pts {
		if i%10 == 9 { // sharp turn
			dir = geom.Pt(-dir.Y, dir.X)
		}
		p = p.Add(dir).Add(geom.Pt(r.NormFloat64()*5, r.NormFloat64()*5))
		pts[i] = p
	}
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	m := NewRMF(RMFConfig{Bounds: &bounds})
	if err := m.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	near, err := m.Predict(40)
	if err != nil {
		t.Fatal(err)
	}
	far, err := m.Predict(239)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Contains(near) || !bounds.Contains(far) {
		t.Errorf("clamped predictions escaped bounds: %v %v", near, far)
	}
	nearErr := near.Dist(pts[39])
	if nearErr > 2000 {
		t.Errorf("near prediction error %v implausibly large", nearErr)
	}
}

func TestRMFRetrospectDegrades(t *testing.T) {
	pts := linearPath(4, geom.Pt(0, 0), geom.Pt(1, 1))
	r := NewRMF(RMFConfig{Retrospect: 5})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	if r.Retrospect() >= 5 {
		t.Errorf("retrospect %d did not degrade for 4 points", r.Retrospect())
	}
	if _, err := r.Predict(10); err != nil {
		t.Errorf("degraded RMF cannot predict: %v", err)
	}
}

func TestRMFStationaryObject(t *testing.T) {
	// A stationary object yields identical regression rows: exactly rank
	// deficient. The ridge must repair it and predict staying put.
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Pt(4000, 6000)
	}
	r := NewRMF(RMFConfig{})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict(50)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(geom.Pt(4000, 6000)) > 1 {
		t.Errorf("stationary prediction drifted to %v", got)
	}
}

func TestRMFPredictAtCurrentTime(t *testing.T) {
	pts := linearPath(10, geom.Pt(0, 0), geom.Pt(1, 0))
	r := NewRMF(RMFConfig{})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict(9)
	if err != nil {
		t.Fatal(err)
	}
	if got != pts[9] {
		t.Errorf("Predict(current) = %v, want %v", got, pts[9])
	}
	if _, err := r.Predict(3); err == nil {
		t.Error("Predict in the past accepted")
	}
}

func TestRMFWindowTruncation(t *testing.T) {
	// Only the trailing Window points may influence the fit.
	early := linearPath(100, geom.Pt(0, 0), geom.Pt(-50, -50))
	late := linearPath(30, geom.Pt(1000, 1000), geom.Pt(2, 2))
	all := append(early, late...)
	r := NewRMF(RMFConfig{Window: 30})
	if err := r.Fit(timed(all, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict(len(all) + 4)
	if err != nil {
		t.Fatal(err)
	}
	want := late[29].Add(geom.Pt(2, 2).Scale(5))
	if got.Dist(want) > 1 {
		t.Errorf("windowed fit predicted %v, want ~%v", got, want)
	}
}

func TestRMFDivergenceIsClamped(t *testing.T) {
	// Construct an explosive series: positions doubling each step fit a
	// recurrence with spectral radius 2, which overflows when iterated
	// hundreds of steps. The clamp must keep the output finite.
	pts := make([]geom.Point, 20)
	v := 1e-3
	for i := range pts {
		pts[i] = geom.Pt(v, v)
		v *= 2
	}
	bounds := geom.Rect{Min: geom.Pt(-1e4, -1e4), Max: geom.Pt(1e4, 1e4)}
	r := NewRMF(RMFConfig{Bounds: &bounds})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict(5000)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsFinite() || !bounds.Contains(got) {
		t.Errorf("divergent prediction %v not clamped", got)
	}
}

func TestLinearVsRMFOnNoisyLinear(t *testing.T) {
	// Sanity: on noisy linear motion both models stay in the same error
	// ballpark over a short horizon.
	r := rand.New(rand.NewSource(77))
	pts := linearPath(30, geom.Pt(0, 0), geom.Pt(10, 5))
	for i := range pts {
		pts[i] = pts[i].Add(geom.Pt(r.NormFloat64(), r.NormFloat64()))
	}
	lin := NewLinear(nil)
	rmf := NewRMF(RMFConfig{})
	if err := lin.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	if err := rmf.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	truth := geom.Pt(10*35., 5*35.)
	lp, _ := lin.Predict(35)
	rp, _ := rmf.Predict(35)
	if lp.Dist(truth) > 50 || rp.Dist(truth) > 50 {
		t.Errorf("short-horizon errors too large: linear %v rmf %v", lp.Dist(truth), rp.Dist(truth))
	}
}

func TestRMFAutoRetrospect(t *testing.T) {
	// Circular motion needs retrospect >= 2; constant motion is happy with
	// 1. The self-training selection must produce a working model and at
	// least match the fixed default on the circle.
	circle := circlePath(60, geom.Pt(0, 0), 100, 0.2)
	auto := NewRMF(RMFConfig{Retrospect: 8, Window: 120, AutoRetrospect: true})
	if err := auto.Fit(timed(circle, 0)); err != nil {
		t.Fatal(err)
	}
	if auto.Retrospect() < 1 || auto.Retrospect() > 8 {
		t.Fatalf("selected retrospect %d out of range", auto.Retrospect())
	}
	full := circlePath(80, geom.Pt(0, 0), 100, 0.2)
	var autoErr float64
	for dt := 1; dt <= 10; dt++ {
		p, err := auto.Predict(59 + dt)
		if err != nil {
			t.Fatal(err)
		}
		autoErr += p.Dist(full[59+dt])
	}
	if autoErr > 50 {
		t.Errorf("auto-retrospect RMF error %v too large on noiseless circle", autoErr)
	}
}

func TestRMFAutoRetrospectTinyWindow(t *testing.T) {
	// With only three points the holdout split degenerates; Fit must still
	// succeed via the fallback path and produce finite predictions. (A
	// retrospect-1 recurrence cannot represent affine motion, so exactness
	// is not expected here — only robustness.)
	pts := linearPath(3, geom.Pt(0, 0), geom.Pt(2, 1))
	r := NewRMF(RMFConfig{AutoRetrospect: true})
	if err := r.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsFinite() {
		t.Errorf("tiny-window auto fit predicted non-finite %v", got)
	}
}

func TestRMFAutoRetrospectCostExceedsFixed(t *testing.T) {
	// The paper's cost model: self-training RMF is the expensive unit.
	// Sanity-check the auto path really does more work by comparing the
	// number of solve operations indirectly: it must at minimum not fail
	// and produce the same-or-better holdout error than the worst fixed f.
	pts := circlePath(60, geom.Pt(500, 500), 200, 0.15)
	truth := circlePath(70, geom.Pt(500, 500), 200, 0.15)
	auto := NewRMF(RMFConfig{Retrospect: 6, Window: 120, AutoRetrospect: true})
	if err := auto.Fit(timed(pts, 0)); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for f := 1; f <= 6; f++ {
		fixed := NewRMF(RMFConfig{Retrospect: f, Window: 120})
		if err := fixed.Fit(timed(pts, 0)); err != nil {
			t.Fatal(err)
		}
		var e float64
		for dt := 1; dt <= 8; dt++ {
			p, _ := fixed.Predict(59 + dt)
			e += p.Dist(truth[59+dt])
		}
		if e > worst {
			worst = e
		}
	}
	var autoErr float64
	for dt := 1; dt <= 8; dt++ {
		p, _ := auto.Predict(59 + dt)
		autoErr += p.Dist(truth[59+dt])
	}
	if autoErr > worst {
		t.Errorf("auto retrospect error %v worse than worst fixed %v", autoErr, worst)
	}
}
