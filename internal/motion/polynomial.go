package motion

import (
	"hpm/internal/geom"
	"hpm/internal/linalg"
	"hpm/internal/trajectory"
)

// Polynomial is a second-degree motion model: each coordinate follows
// x(t) = a + v·t + ½·acc·t², fitted by least squares over the recent
// window. It sits between the linear model and the RMF in the paper's §II-A
// taxonomy — it captures smooth acceleration and curvature but, like every
// motion function, extrapolates poorly over long horizons (quadratics
// diverge even faster than lines, which is why the TPR-family indexes
// stick to linear motion).
type Polynomial struct {
	bounds *geom.Rect

	fitted bool
	lastT  int
	lastP  geom.Point
	// coefficients over the relative time index, per coordinate:
	// [a, v, acc/2] so that x(s) = cx[0] + cx[1]*s + cx[2]*s².
	cx, cy [3]float64
	n      int // window length used at fit time (s of the last point is n-1)
}

// NewPolynomial returns a second-degree model. bounds, when non-nil, clamps
// predictions to the world extent.
func NewPolynomial(bounds *geom.Rect) *Polynomial { return &Polynomial{bounds: bounds} }

// Name implements Function.
func (p *Polynomial) Name() string { return "Polynomial" }

// Fit implements Function. With exactly two points the quadratic is
// under-determined; the model degrades to the line through them.
func (p *Polynomial) Fit(recent []trajectory.TimedPoint) error {
	if err := validateRecent(recent); err != nil {
		return err
	}
	n := len(recent)
	if n == 2 {
		v := recent[1].Loc.Sub(recent[0].Loc)
		p.cx = [3]float64{recent[0].Loc.X, v.X, 0}
		p.cy = [3]float64{recent[0].Loc.Y, v.Y, 0}
	} else {
		a := linalg.NewMatrix(n, 3)
		b := linalg.NewMatrix(n, 2)
		for i, tp := range recent {
			s := float64(i)
			a.Set(i, 0, 1)
			a.Set(i, 1, s)
			a.Set(i, 2, s*s)
			b.Set(i, 0, tp.Loc.X)
			b.Set(i, 1, tp.Loc.Y)
		}
		// A tiny ridge guards the (possible but unusual) collinear-sample
		// degeneracy without visibly biasing the fit.
		x, err := linalg.RidgeLeastSquares(a, b, 1e-9)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			p.cx[i] = x.At(i, 0)
			p.cy[i] = x.At(i, 1)
		}
	}
	p.n = n
	p.lastT = recent[n-1].T
	p.lastP = recent[n-1].Loc
	p.fitted = true
	return nil
}

// Predict implements Function.
func (p *Polynomial) Predict(tq int) (geom.Point, error) {
	if !p.fitted {
		return geom.Point{}, ErrNotFitted
	}
	s := float64(p.n - 1 + (tq - p.lastT))
	loc := geom.Pt(
		p.cx[0]+p.cx[1]*s+p.cx[2]*s*s,
		p.cy[0]+p.cy[1]*s+p.cy[2]*s*s,
	)
	return clampTo(loc, p.bounds, p.lastP), nil
}
