package motion

import (
	"fmt"

	"hpm/internal/geom"
	"hpm/internal/linalg"
	"hpm/internal/trajectory"
)

// RMFConfig tunes the Recursive Motion Function.
type RMFConfig struct {
	// Retrospect is f, the number of past locations the recurrence
	// l_t = Σ_{i=1..f} C_i · l_{t-i} looks back on. Values <= 0 default to
	// DefaultRetrospect. When the fitted window is too short for f, the
	// retrospect degrades automatically to the largest feasible value.
	Retrospect int
	// Window is the number of recent locations used to estimate the C_i
	// matrices. Values <= 0 default to DefaultWindow.
	Window int
	// Ridge is the regularization weight relative to the squared data
	// scale; it repairs the exact rank deficiency of stationary objects.
	// Values <= 0 default to DefaultRidge.
	Ridge float64
	// AutoRetrospect selects the retrospect per Fit by holdout
	// validation: candidate depths are each fitted on the head of the
	// window, scored on the tail, and the winner is refitted on the whole
	// window. This mirrors the original RMF's self-training, which is
	// what makes its per-query cost high (the HPM paper charges RMF an
	// O(n³) model construction per prediction). When set, Retrospect
	// serves as the upper bound on the candidate depths.
	AutoRetrospect bool
	// Bounds, when non-nil, clamps predictions to the world extent —
	// iterating the recurrence hundreds of steps ahead can diverge, and
	// an unbounded estimate would dominate every error average.
	Bounds *geom.Rect
}

// Defaults for RMFConfig fields left at their zero value.
const (
	DefaultRetrospect = 5
	DefaultWindow     = 30
	DefaultRidge      = 1e-9
)

func (c RMFConfig) withDefaults() RMFConfig {
	if c.Retrospect <= 0 {
		c.Retrospect = DefaultRetrospect
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Ridge <= 0 {
		c.Ridge = DefaultRidge
	}
	return c
}

// RMF is the Recursive Motion Function: each location is a fixed linear
// combination of the f most recent locations, with the 2x2 coefficient
// matrices C_i estimated from the recent window by regularized least
// squares. Prediction iterates the recurrence forward timestamp by
// timestamp. The original presentation estimates the same regression with
// an O(n³) SVD; Householder QR solves it in the same cost class.
type RMF struct {
	cfg RMFConfig

	fitted bool
	f      int            // effective retrospect after degradation
	coef   *linalg.Matrix // (2f)x2 stacked [C_1; ...; C_f] transposed blocks
	hist   []geom.Point   // last f locations, oldest first
	lastT  int
	lastP  geom.Point
}

// NewRMF returns an RMF with the given configuration.
func NewRMF(cfg RMFConfig) *RMF { return &RMF{cfg: cfg.withDefaults()} }

// Name implements Function.
func (r *RMF) Name() string { return "RMF" }

// Fit implements Function. It estimates the coefficient matrices from up to
// Window trailing points of recent; with fewer than retrospect+1 points the
// retrospect degrades, and with only two points the model collapses to the
// last observed velocity (handled by a retrospect of 1). With
// AutoRetrospect set, candidate depths 1..Retrospect are validated on the
// window's tail first.
func (r *RMF) Fit(recent []trajectory.TimedPoint) error {
	if err := validateRecent(recent); err != nil {
		return err
	}
	if len(recent) > r.cfg.Window {
		recent = recent[len(recent)-r.cfg.Window:]
	}
	f := r.cfg.Retrospect
	if r.cfg.AutoRetrospect {
		f = r.selectRetrospect(recent)
	}
	return r.fitFixed(recent, f)
}

// feasibleRetrospect degrades f so the regression keeps at least one row,
// preferring an overdetermined system with n - f >= 2f.
func feasibleRetrospect(n, f int) int {
	for f > 1 && n-f < f {
		f--
	}
	if n-f < 1 {
		f = n - 1
	}
	return f
}

// selectRetrospect scores each candidate depth by fitting on the window's
// head and predicting its tail, returning the depth with the least holdout
// error. This is the expensive self-training the paper attributes to RMF.
func (r *RMF) selectRetrospect(recent []trajectory.TimedPoint) int {
	holdout := len(recent) / 5
	if holdout < 2 {
		holdout = 2
	}
	if holdout > 10 {
		holdout = 10
	}
	train := recent[:len(recent)-holdout]
	if len(train) < 3 {
		return r.cfg.Retrospect
	}
	best := r.cfg.Retrospect
	bestErr := -1.0
	for f := 1; f <= r.cfg.Retrospect; f++ {
		sub := NewRMF(RMFConfig{
			Retrospect: f, Window: r.cfg.Window,
			Ridge: r.cfg.Ridge, Bounds: r.cfg.Bounds,
		})
		if err := sub.fitFixed(train, feasibleRetrospect(len(train), f)); err != nil {
			continue
		}
		var total float64
		ok := true
		for i := len(train); i < len(recent); i++ {
			p, err := sub.Predict(recent[i].T)
			if err != nil {
				ok = false
				break
			}
			total += p.Dist(recent[i].Loc)
		}
		if ok && (bestErr < 0 || total < bestErr) {
			best, bestErr = f, total
		}
	}
	return best
}

// fitFixed estimates the coefficients for a fixed retrospect (degraded to
// feasibility) over the already-windowed recent points.
func (r *RMF) fitFixed(recent []trajectory.TimedPoint, f int) error {
	n := len(recent)
	f = feasibleRetrospect(n, f)

	m := n - f // regression rows
	a := linalg.NewMatrix(m, 2*f)
	b := linalg.NewMatrix(m, 2)
	scale := 0.0
	for row := 0; row < m; row++ {
		t := row + f
		for i := 1; i <= f; i++ {
			p := recent[t-i].Loc
			a.Set(row, 2*(i-1), p.X)
			a.Set(row, 2*(i-1)+1, p.Y)
			if ax := abs(p.X); ax > scale {
				scale = ax
			}
			if ay := abs(p.Y); ay > scale {
				scale = ay
			}
		}
		b.Set(row, 0, recent[t].Loc.X)
		b.Set(row, 1, recent[t].Loc.Y)
	}
	lambda := r.cfg.Ridge * scale * scale
	if lambda <= 0 {
		lambda = r.cfg.Ridge
	}
	coef, err := linalg.RidgeLeastSquares(a, b, lambda)
	if err != nil {
		return fmt.Errorf("motion: RMF fit: %w", err)
	}

	r.f = f
	r.coef = coef
	r.hist = make([]geom.Point, f)
	for i := 0; i < f; i++ {
		r.hist[i] = recent[n-f+i].Loc
	}
	r.lastT = recent[n-1].T
	r.lastP = recent[n-1].Loc
	r.fitted = true
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Predict implements Function by iterating the recurrence from the last
// fitted timestamp to tq.
func (r *RMF) Predict(tq int) (geom.Point, error) {
	if !r.fitted {
		return geom.Point{}, ErrNotFitted
	}
	if tq <= r.lastT {
		if tq == r.lastT {
			return r.lastP, nil
		}
		return geom.Point{}, fmt.Errorf("motion: query time %d precedes current time %d", tq, r.lastT)
	}
	hist := make([]geom.Point, len(r.hist))
	copy(hist, r.hist)
	var p geom.Point
	for t := r.lastT + 1; t <= tq; t++ {
		p = r.step(hist)
		if !p.IsFinite() {
			// Diverged: freeze at the clamped fallback for the remaining
			// horizon — iterating further only produces more non-finites.
			return clampTo(p, r.cfg.Bounds, r.lastP), nil
		}
		copy(hist, hist[1:])
		hist[len(hist)-1] = p
	}
	return clampTo(p, r.cfg.Bounds, r.lastP), nil
}

// step evaluates l_t = Σ C_i · l_{t-i} with hist holding the f previous
// locations oldest-first.
func (r *RMF) step(hist []geom.Point) geom.Point {
	var x, y float64
	f := r.f
	for i := 1; i <= f; i++ {
		p := hist[f-i]
		row := 2 * (i - 1)
		x += p.X*r.coef.At(row, 0) + p.Y*r.coef.At(row+1, 0)
		y += p.X*r.coef.At(row, 1) + p.Y*r.coef.At(row+1, 1)
	}
	return geom.Pt(x, y)
}

// Retrospect returns the effective retrospect after any degradation during
// the last Fit, or 0 before fitting. Exposed for tests and diagnostics.
func (r *RMF) Retrospect() int { return r.f }
