package hpa

import (
	"testing"

	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/trajectory"
)

func TestPredictBatchMatchesPredict(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 2, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	tqs := []int{2, 3, 5, 8, 2} // mixed FQP/BQP, duplicates allowed
	batch, err := eng.PredictBatch(recent, tqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(tqs) {
		t.Fatalf("batch returned %d entries for %d times", len(batch), len(tqs))
	}
	for i, tq := range tqs {
		want, err := eng.Predict(Query{Recent: recent, Tq: tq, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if len(got) != len(want) {
			t.Fatalf("tq=%d: batch %d predictions, Predict %d", tq, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("tq=%d pred %d: batch %+v != Predict %+v", tq, j, got[j], want[j])
			}
		}
	}
}

func TestPredictBatchCountsStatsPerTime(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 2, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	if _, err := eng.PredictBatch(recent, []int{2, 5, 8}, 1); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Queries != 3 || s.Forward != 1 || s.Backward != 2 {
		t.Errorf("stats = %+v, want 3 queries, 1 forward, 2 backward", s)
	}
}

func TestPredictBatchFitsFallbackOnce(t *testing.T) {
	fits := 0
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function {
			fits++
			return motion.NewLinear(nil)
		}})
	// A recent window far from every frequent region: no pattern can
	// answer, every time needs the fallback.
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	batch, err := eng.PredictBatch(far, []int{2, 3, 4, 5, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fits != 1 {
		t.Errorf("fallback constructed %d times for a 5-time batch, want 1", fits)
	}
	for i, preds := range batch {
		if len(preds) != 1 || preds[0].Source != SourceMotion {
			t.Fatalf("time %d: %+v, want one motion prediction", i, preds)
		}
	}
	if s := eng.Stats(); s.Fallback != 5 {
		t.Errorf("fallback count = %d, want 5", s.Fallback)
	}
}

func TestPredictBatchValidation(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3})
	recent := []trajectory.TimedPoint{{T: 1, Loc: centers["home"]}}
	if _, err := eng.PredictBatch(nil, []int{2}, 1); err == nil {
		t.Error("empty recent accepted")
	}
	if _, err := eng.PredictBatch(recent, []int{2, 1}, 1); err == nil {
		t.Error("query time before current time accepted")
	}
	out, err := eng.PredictBatch(recent, nil, 1)
	if err != nil || out != nil {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestPredictBatchNoFallbackLeavesNil(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100}) // no NewMotion
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	batch, err := eng.PredictBatch(far, []int{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, preds := range batch {
		if preds != nil {
			t.Errorf("time %d: got %+v, want nil", i, preds)
		}
	}
	if s := eng.Stats(); s.Unanswered != 2 {
		t.Errorf("unanswered = %d, want 2", s.Unanswered)
	}
}
