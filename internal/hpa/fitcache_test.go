package hpa

import (
	"testing"

	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/trajectory"
)

// TestFallbackFitCachedAcrossQueries pins the fit memoization: repeated
// queries from an unchanged recent window construct the motion function
// once, and the FallbackFits counter reports actual fits, not fallback
// answers.
func TestFallbackFitCachedAcrossQueries(t *testing.T) {
	fits := 0
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function {
			fits++
			return motion.NewLinear(nil)
		}})
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	for tq := 2; tq < 10; tq++ {
		if _, err := eng.Predict(Query{Recent: far, Tq: tq, K: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if fits != 1 {
		t.Errorf("8 queries from one window fitted %d times, want 1", fits)
	}
	s := eng.Stats()
	if s.Fallback != 8 || s.FallbackFits != 1 {
		t.Errorf("stats = %+v, want Fallback 8, FallbackFits 1", s)
	}

	// Advancing the window invalidates the cache.
	moved := append(far[:len(far):len(far)], trajectory.TimedPoint{T: 2, Loc: geom.Pt(9020, 9000)})
	if _, err := eng.Predict(Query{Recent: moved, Tq: 5, K: 1}); err != nil {
		t.Fatal(err)
	}
	if fits != 2 {
		t.Errorf("advanced window fitted %d times total, want 2", fits)
	}

	// Same endpoints, different geometry: the lastLoc guard refits.
	sameTimes := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9100)},
	}
	if _, err := eng.Predict(Query{Recent: sameTimes, Tq: 4, K: 1}); err != nil {
		t.Fatal(err)
	}
	if fits != 3 {
		t.Errorf("changed geometry fitted %d times total, want 3", fits)
	}
}

// TestFallbackFitCacheSharedWithBatchAndRange checks that Predict,
// PredictBatch and PredictRange all hit the same cache for one window.
func TestFallbackFitCacheSharedWithBatchAndRange(t *testing.T) {
	fits := 0
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function {
			fits++
			return motion.NewLinear(nil)
		}})
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	if _, err := eng.Predict(Query{Recent: far, Tq: 3, K: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PredictBatch(far, []int{2, 4, 6}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PredictRange(far, 2, 8); err != nil {
		t.Fatal(err)
	}
	if fits != 1 {
		t.Errorf("three entry points fitted %d times for one window, want 1", fits)
	}
	if s := eng.Stats(); s.FallbackFits != 1 {
		t.Errorf("FallbackFits = %d, want 1", s.FallbackFits)
	}
}
