package hpa

import (
	"errors"
	"fmt"
	"sort"

	"hpm/internal/bitkey"
	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/pattern"
	"hpm/internal/tpt"
	"hpm/internal/trajectory"
)

// Source tells how a prediction was produced.
type Source int

// Prediction sources.
const (
	SourcePattern Source = iota // a trajectory pattern's consequence center
	SourceMotion                // the motion-function fallback
)

// String implements fmt.Stringer.
func (s Source) String() string {
	if s == SourcePattern {
		return "pattern"
	}
	return "motion"
}

// Prediction is one predicted location with its provenance.
type Prediction struct {
	Location   geom.Point
	Score      float64 // the ranking weight Sp (0 for motion fallback)
	Confidence float64 // the pattern confidence c (0 for motion fallback)
	PatternRef int     // index into the engine's pattern slice, -1 for motion
	Source     Source
	// Extent is the consequence region's bounding box — the paper's
	// answers are region centers, and the region extent is the natural
	// uncertainty bound. Zero for motion-function predictions.
	Extent geom.Rect
	// ConsequenceOffset is the time offset the winning pattern predicts
	// for; for BQP it may differ from the query offset by up to the
	// (expanded) relaxation window. -1 for motion-function predictions.
	ConsequenceOffset int
}

// Query is a predictive query: the object's recent movements and the
// absolute query time.
type Query struct {
	Recent []trajectory.TimedPoint // ascending consecutive timestamps
	Tq     int                     // absolute query time, after Recent's end
	K      int                     // number of predictions wanted; <=0 means 1
}

// Config tunes the engine.
type Config struct {
	// Period is T, the pattern re-appearance period. Required.
	Period int
	// DistantThreshold is d in Definition 2: queries with
	// tq - tc >= DistantThreshold use BQP. Values <= 0 default to
	// DefaultDistantThreshold (the paper's experiments use 60).
	DistantThreshold int
	// TimeRelaxation is tε, BQP's base window radius. Values <= 0 default
	// to DefaultTimeRelaxation (the paper observed 1..3 predicting best).
	TimeRelaxation int
	// Weight selects the premise-similarity weight function.
	Weight WeightFunc
	// PenalizePremise applies Equation 5's d/(tq-tc) premise penalty in
	// BQP ranking (the paper's final form). Disabling it reverts to
	// Equation 4 — exposed for the ablation bench.
	PenalizePremise bool
	// NewMotion builds the fallback motion function; it is invoked once
	// per query that needs the fallback, matching the paper's cost model
	// where every RMF call retrains on the recent window. Nil disables the
	// fallback (pattern-only prediction, used by some ablations).
	NewMotion func() motion.Function
}

// Defaults for Config fields left at their zero value.
const (
	DefaultDistantThreshold = 60
	DefaultTimeRelaxation   = 2
)

// QueryStats counts what the engine did since construction (or the last
// ResetStats). The counters quantify the paper's cost argument: the more
// patterns answer, the fewer expensive motion-function constructions run.
type QueryStats struct {
	Queries      int // Predict calls answered
	Forward      int // answered by FQP
	Backward     int // answered by BQP
	Fallback     int // answered by the motion function
	Unanswered   int // no pattern and no (or failed) fallback
	NodesVisited int // TPT nodes touched across all searches
}

// Engine answers predictive queries over a mined pattern set indexed in a
// Trajectory Pattern Tree.
type Engine struct {
	enc      *pattern.Encoder
	tree     *tpt.Tree
	patterns []pattern.Pattern
	cfg      Config

	// consequence offset per pattern, precomputed for BQP scoring.
	consOffsets []int

	stats QueryStats
}

// NewEngine indexes the patterns and returns a ready engine. The patterns
// slice is retained; PatternRef values in predictions index into it.
func NewEngine(enc *pattern.Encoder, patterns []pattern.Pattern, cfg Config, treeOpts tpt.Options) (*Engine, error) {
	if cfg.Period <= 0 {
		return nil, errors.New("hpa: Config.Period must be positive")
	}
	if cfg.DistantThreshold <= 0 {
		cfg.DistantThreshold = DefaultDistantThreshold
	}
	if cfg.TimeRelaxation <= 0 {
		cfg.TimeRelaxation = DefaultTimeRelaxation
	}
	items := make([]tpt.Item, len(patterns))
	offsets := make([]int, len(patterns))
	for i, p := range patterns {
		items[i] = tpt.Item{Key: enc.Encode(p), Conf: p.Confidence, Ref: i}
		offsets[i] = enc.RegionTable().Region(p.Consequence).Offset
	}
	tree := tpt.BulkLoad(enc.ConsequenceTable().Len(), enc.RegionTable().Len(), items, treeOpts)
	return &Engine{enc: enc, tree: tree, patterns: patterns, cfg: cfg, consOffsets: offsets}, nil
}

// Tree exposes the underlying TPT for diagnostics and benchmarks.
func (e *Engine) Tree() *tpt.Tree { return e.tree }

// AddPatterns inserts newly mined patterns into the live index using the
// TPT insertion algorithm (§V-B dynamic data). Patterns whose consequence
// time offset is absent from the consequence-key table cannot be encoded
// against the existing keys and are skipped — the table is fixed at build
// time, exactly as in the paper; retrain to widen it. Returns how many
// patterns were inserted and how many were skipped.
func (e *Engine) AddPatterns(ps []pattern.Pattern) (added, skipped int) {
	ct := e.enc.ConsequenceTable()
	rt := e.enc.RegionTable()
	for _, p := range ps {
		off := rt.Region(p.Consequence).Offset
		if _, ok := ct.TimeID(off); !ok {
			skipped++
			continue
		}
		ref := len(e.patterns)
		e.patterns = append(e.patterns, p)
		e.consOffsets = append(e.consOffsets, off)
		e.tree.Insert(tpt.Item{Key: e.enc.Encode(p), Conf: p.Confidence, Ref: ref})
		added++
	}
	return added, skipped
}

// Patterns returns the indexed pattern slice. Callers must not mutate it.
func (e *Engine) Patterns() []pattern.Pattern { return e.patterns }

// Config returns the engine configuration after defaulting.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns the accumulated query counters.
func (e *Engine) Stats() QueryStats { return e.stats }

// ResetStats zeroes the query counters.
func (e *Engine) ResetStats() { e.stats = QueryStats{} }

// IsDistant reports whether a query from current time tc to query time tq
// is a distant-time query (Definition 2).
func (e *Engine) IsDistant(tc, tq int) bool {
	return tq-tc >= e.cfg.DistantThreshold
}

// EncodeRecent maps the recent movements to the frequent regions visited,
// deduplicated, in visit order. Locations matching no region are skipped —
// the paper only encodes regions the object demonstrably passed through.
func (e *Engine) EncodeRecent(recent []trajectory.TimedPoint) []pattern.RegionID {
	rt := e.enc.RegionTable()
	var ids []pattern.RegionID
	seen := map[pattern.RegionID]bool{}
	for _, tp := range recent {
		off := mod(tp.T, e.cfg.Period)
		if fr, ok := rt.Locate(off, tp.Loc); ok && !seen[fr.ID] {
			seen[fr.ID] = true
			ids = append(ids, fr.ID)
		}
	}
	return ids
}

// Predict answers a query with the full Hybrid Prediction Algorithm:
// FQP for near queries, BQP for distant ones, motion-function fallback when
// no pattern qualifies.
func (e *Engine) Predict(q Query) ([]Prediction, error) {
	if len(q.Recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := q.Recent[len(q.Recent)-1].T
	if q.Tq <= tc {
		return nil, fmt.Errorf("hpa: query time %d not after current time %d", q.Tq, tc)
	}
	k := q.K
	if k <= 0 {
		k = 1
	}
	visited := e.EncodeRecent(q.Recent)

	e.stats.Queries++
	var preds []Prediction
	distant := e.IsDistant(tc, q.Tq)
	if distant {
		preds = e.BackwardQuery(visited, tc, q.Tq, k)
	} else {
		preds = e.ForwardQuery(visited, q.Tq, k)
	}
	if len(preds) > 0 {
		if distant {
			e.stats.Backward++
		} else {
			e.stats.Forward++
		}
		return preds, nil
	}
	fb, err := e.motionFallback(q)
	switch {
	case err != nil || len(fb) == 0:
		e.stats.Unanswered++
	default:
		e.stats.Fallback++
	}
	return fb, err
}

// PredictRange answers a predictive trajectory query: the object's most
// probable location at every timestamp in [from, to]. Each timestamp is
// dispatched to FQP or BQP by its own distance from the current time; the
// motion function, when needed, is fitted once and reused across the whole
// range (a single model construction, unlike per-point Predict calls).
// The result holds exactly to-from+1 predictions in timestamp order.
func (e *Engine) PredictRange(recent []trajectory.TimedPoint, from, to int) ([]Prediction, error) {
	if len(recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := recent[len(recent)-1].T
	if from <= tc || to < from {
		return nil, fmt.Errorf("hpa: range [%d,%d] invalid for current time %d", from, to, tc)
	}
	visited := e.EncodeRecent(recent)

	var fn motion.Function
	var fnErr error
	fitted := false
	fallback := func(tq int) Prediction {
		p := Prediction{Location: recent[len(recent)-1].Loc, PatternRef: -1,
			Source: SourceMotion, ConsequenceOffset: -1}
		if e.cfg.NewMotion == nil {
			return p
		}
		if !fitted {
			fitted = true
			fn = e.cfg.NewMotion()
			fnErr = fn.Fit(recent)
		}
		if fnErr != nil {
			return p
		}
		if loc, err := fn.Predict(tq); err == nil {
			p.Location = loc
		}
		return p
	}

	out := make([]Prediction, 0, to-from+1)
	for tq := from; tq <= to; tq++ {
		var preds []Prediction
		if e.IsDistant(tc, tq) {
			preds = e.BackwardQuery(visited, tc, tq, 1)
		} else {
			preds = e.ForwardQuery(visited, tq, 1)
		}
		if len(preds) > 0 {
			out = append(out, preds[0])
		} else {
			out = append(out, fallback(tq))
		}
	}
	return out, nil
}

// ForwardQuery implements Algorithm 2 minus the motion fallback: it returns
// the top-k pattern predictions for a non-distant query, or nil when no
// pattern qualifies.
func (e *Engine) ForwardQuery(visited []pattern.RegionID, tq, k int) []Prediction {
	if len(visited) == 0 {
		return nil
	}
	tqOff := mod(tq, e.cfg.Period)
	qk := e.enc.QueryKey(visited, tqOff)
	if qk.CK.IsZero() || qk.RK.IsZero() {
		return nil
	}
	var cands []Prediction
	e.stats.NodesVisited += e.tree.SearchIntersect(qk, func(it tpt.Item) bool {
		sr := PremiseSimilarity(it.Key.RK, qk.RK, e.cfg.Weight)
		fr := e.consequenceRegion(it.Ref)
		cands = append(cands, Prediction{
			Location:          fr.Center,
			Score:             sr * it.Conf, // Equation 2
			Confidence:        it.Conf,
			PatternRef:        it.Ref,
			Source:            SourcePattern,
			Extent:            fr.MBR,
			ConsequenceOffset: fr.Offset,
		})
		return true
	})
	return topK(cands, k)
}

// BackwardQuery implements Algorithm 3 minus the motion fallback: starting
// from the base window [tq-tε, tq+tε] it widens until at least one pattern
// has a consequence offset inside the window or the window reaches the
// current time, then ranks by Equation 5 (or Equation 4 when the premise
// penalty is disabled).
func (e *Engine) BackwardQuery(visited []pattern.RegionID, tc, tq, k int) []Prediction {
	qrk := e.enc.RegionTable().PremiseKey(visited)
	ct := e.enc.ConsequenceTable()
	tqOff := mod(tq, e.cfg.Period)

	for i := 1; ; i++ {
		radius := i * e.cfg.TimeRelaxation
		ck := consequenceWindowKey(ct, tqOff, radius, e.cfg.Period)
		var cands []Prediction
		if !ck.IsZero() {
			qk := bitkey.PatternKey{CK: ck, RK: qrk}
			e.stats.NodesVisited += e.tree.SearchConsequence(qk, func(it tpt.Item) bool {
				t := e.consOffsets[it.Ref]
				dist := circularDist(tqOff, t, e.cfg.Period)
				if dist > radius {
					return true // key bit wrapped in; outside this window
				}
				sc := 1 - float64(dist)/float64(radius+1) // Equation 3
				sr := PremiseSimilarity(it.Key.RK, qrk, e.cfg.Weight)
				var sp float64
				if e.cfg.PenalizePremise {
					sp = (sr*float64(e.cfg.DistantThreshold)/float64(tq-tc) + sc) * it.Conf // Equation 5
				} else {
					sp = (sr + sc) * it.Conf // Equation 4
				}
				fr := e.consequenceRegion(it.Ref)
				cands = append(cands, Prediction{
					Location:          fr.Center,
					Score:             sp,
					Confidence:        it.Conf,
					PatternRef:        it.Ref,
					Source:            SourcePattern,
					Extent:            fr.MBR,
					ConsequenceOffset: fr.Offset,
				})
				return true
			})
		}
		if len(cands) > 0 {
			return topK(cands, k)
		}
		// Algorithm 3 line 8: widen only while the window's lower edge
		// stays after the current time.
		if tq-(i+1)*e.cfg.TimeRelaxation <= tc {
			return nil
		}
	}
}

func (e *Engine) consequenceRegion(ref int) *pattern.FrequentRegion {
	return e.enc.RegionTable().Region(e.patterns[ref].Consequence)
}

func (e *Engine) motionFallback(q Query) ([]Prediction, error) {
	if e.cfg.NewMotion == nil {
		return nil, nil
	}
	fn := e.cfg.NewMotion()
	if err := fn.Fit(q.Recent); err != nil {
		// Degenerate recent window: answer with the last known location
		// rather than failing the query.
		return []Prediction{{
			Location:          q.Recent[len(q.Recent)-1].Loc,
			PatternRef:        -1,
			Source:            SourceMotion,
			ConsequenceOffset: -1,
		}}, nil
	}
	loc, err := fn.Predict(q.Tq)
	if err != nil {
		return nil, fmt.Errorf("hpa: motion fallback: %w", err)
	}
	return []Prediction{{Location: loc, PatternRef: -1, Source: SourceMotion, ConsequenceOffset: -1}}, nil
}

// topK sorts candidates by score (ties: higher confidence, then lower
// pattern index for determinism) and truncates to k.
func topK(cands []Prediction, k int) []Prediction {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		return a.PatternRef < b.PatternRef
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// consequenceWindowKey builds the consequence key for the offsets within
// radius of tqOff, wrapping modulo the period.
func consequenceWindowKey(ct *pattern.ConsequenceTable, tqOff, radius, period int) (k bitkey.Key) {
	if 2*radius+1 >= period {
		return ct.KeyRange(0, period-1)
	}
	lo, hi := tqOff-radius, tqOff+radius
	switch {
	case lo < 0:
		k = ct.KeyRange(0, hi)
		k.OrInPlace(ct.KeyRange(mod(lo, period), period-1))
	case hi >= period:
		k = ct.KeyRange(lo, period-1)
		k.OrInPlace(ct.KeyRange(0, hi-period))
	default:
		k = ct.KeyRange(lo, hi)
	}
	return k
}

// mod is the non-negative remainder.
func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// circularDist is the wrap-around distance between two offsets in [0, n).
func circularDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
