package hpa

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hpm/internal/bitkey"
	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/pattern"
	"hpm/internal/tpt"
	"hpm/internal/trajectory"
)

// Source tells how a prediction was produced.
type Source int

// Prediction sources.
const (
	SourcePattern Source = iota // a trajectory pattern's consequence center
	SourceMotion                // the motion-function fallback
	SourceMarkov                // the variable-order region-transition chain
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourcePattern:
		return "pattern"
	case SourceMarkov:
		return "markov"
	default:
		return "motion"
	}
}

// Path identifies which branch of the Hybrid Prediction Algorithm produced
// a prediction. Source says *what kind* of answer it is (pattern vs motion);
// Path says *which query procedure* chose it — the distinction the paper's
// accuracy figures are sliced by, and what the online evaluator aggregates
// per horizon.
type Path uint8

// Answering paths. PathMarkov is appended after the original three so
// persisted path indices (evaluation cells, snapshots) keep their meaning.
const (
	PathForward  Path = iota // FQP: near query answered by patterns
	PathBackward             // BQP: distant query answered by patterns
	PathFallback             // RMF motion-function fallback
	PathMarkov               // variable-order Markov region chain

	// NumPaths is the size of the path enum; per-path arrays (evaluation
	// cells, label sets) are dimensioned by it.
	NumPaths
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathForward:
		return "forward"
	case PathBackward:
		return "backward"
	case PathMarkov:
		return "markov"
	default:
		return "fallback"
	}
}

// Paths is the registry of answering paths, in enum order. Exporters
// (metrics label sets, stats JSON, evaluation summaries) derive their
// per-path label space from it, so adding a path here grows every surface
// at once instead of each hand-enumerated list drifting separately.
func Paths() []Path {
	return []Path{PathForward, PathBackward, PathFallback, PathMarkov}
}

// Prediction is one predicted location with its provenance.
type Prediction struct {
	Location   geom.Point
	Score      float64 // the ranking weight Sp (0 for motion fallback)
	Confidence float64 // the pattern confidence c (0 for motion fallback)
	PatternRef int     // index into the engine's pattern slice, -1 for motion
	Source     Source
	Path       Path // the query procedure that produced this answer
	// Extent is the consequence region's bounding box — the paper's
	// answers are region centers, and the region extent is the natural
	// uncertainty bound. Zero for motion-function predictions.
	Extent geom.Rect
	// ConsequenceOffset is the time offset the winning pattern predicts
	// for; for BQP it may differ from the query offset by up to the
	// (expanded) relaxation window. -1 for motion-function predictions.
	ConsequenceOffset int
}

// Query is a predictive query: the object's recent movements and the
// absolute query time.
type Query struct {
	Recent []trajectory.TimedPoint // ascending consecutive timestamps
	Tq     int                     // absolute query time, after Recent's end
	K      int                     // number of predictions wanted; <=0 means 1
}

// Config tunes the engine.
type Config struct {
	// Period is T, the pattern re-appearance period. Required.
	Period int
	// DistantThreshold is d in Definition 2: queries with
	// tq - tc >= DistantThreshold use BQP. Values <= 0 default to
	// DefaultDistantThreshold (the paper's experiments use 60).
	DistantThreshold int
	// TimeRelaxation is tε, BQP's base window radius. Values <= 0 default
	// to DefaultTimeRelaxation (the paper observed 1..3 predicting best).
	TimeRelaxation int
	// Weight selects the premise-similarity weight function.
	Weight WeightFunc
	// PenalizePremise applies Equation 5's d/(tq-tc) premise penalty in
	// BQP ranking (the paper's final form). Disabling it reverts to
	// Equation 4 — exposed for the ablation bench.
	PenalizePremise bool
	// NewMotion builds the fallback motion function. A fit runs at most
	// once per distinct recent window — the engine memoizes the last
	// fitted model and reuses it while the window is unchanged (repeat
	// Predict calls between observations, fleet-index refreshes), so the
	// paper's per-query RMF retraining cost is paid only when the window
	// actually advances. Nil disables the fallback (pattern-only
	// prediction, used by some ablations).
	NewMotion func() motion.Function
}

// Defaults for Config fields left at their zero value.
const (
	DefaultDistantThreshold = 60
	DefaultTimeRelaxation   = 2
)

// QueryStats counts what the engine did since construction (or the last
// ResetStats). The counters quantify the paper's cost argument: the more
// patterns answer, the fewer expensive motion-function constructions run.
type QueryStats struct {
	Queries      int // Predict calls answered
	Forward      int // answered by FQP
	Backward     int // answered by BQP
	Markov       int // answered by the region-transition chain
	Fallback     int // answered by the motion function
	Unanswered   int // no pattern and no (or failed) fallback
	NodesVisited int // TPT nodes touched across all searches
	FallbackFits int // motion functions actually fitted (cache misses)
}

// Add returns the field-wise sum of two counter snapshots — used by callers
// that accumulate stats across engine generations (e.g. model retrains).
func (s QueryStats) Add(t QueryStats) QueryStats {
	s.Queries += t.Queries
	s.Forward += t.Forward
	s.Backward += t.Backward
	s.Markov += t.Markov
	s.Fallback += t.Fallback
	s.Unanswered += t.Unanswered
	s.NodesVisited += t.NodesVisited
	s.FallbackFits += t.FallbackFits
	return s
}

// ByPath returns the answered-query counter for one path — the accessor
// the registry-driven metric exporters iterate Paths() with.
func (s QueryStats) ByPath(p Path) int {
	switch p {
	case PathForward:
		return s.Forward
	case PathBackward:
		return s.Backward
	case PathMarkov:
		return s.Markov
	default:
		return s.Fallback
	}
}

// queryCounters are the engine's live counters, kept as atomics so Predict,
// ForwardQuery and BackwardQuery are safe for unlimited concurrent callers
// without a lock. Queries is not stored: the five outcome counters
// partition answered Predict calls, so Stats derives it as their sum and
// the identity Queries == Forward+Backward+Markov+Fallback+Unanswered
// holds in every snapshot.
type queryCounters struct {
	forward      atomic.Int64
	backward     atomic.Int64
	markov       atomic.Int64
	fallback     atomic.Int64
	unanswered   atomic.Int64
	nodesVisited atomic.Int64
	fallbackFits atomic.Int64
}

// Engine answers predictive queries over a mined pattern set indexed in a
// Trajectory Pattern Tree.
//
// Concurrency: Predict, PredictBatch, PredictRange, ForwardQuery,
// BackwardQuery, EncodeRecent and Stats are safe for any number of
// concurrent callers — queries only read the index and bump atomic
// counters. AddPatterns, InsertPatterns, RemovePattern, UpdatePattern and
// ResetStats mutate the engine and must not run concurrently with
// queries; callers serialize them externally (the store does so under
// each object's write lock).
type Engine struct {
	enc      *pattern.Encoder
	tree     *tpt.Tree
	patterns []pattern.Pattern
	cfg      Config

	// consequence offset per pattern, precomputed for BQP scoring.
	consOffsets []int

	// dead marks retired refs. Retired patterns stay in the slice —
	// PatternRef values in served predictions and Explain keep indexing
	// it — but their tree entries are gone, so queries never surface
	// them. live counts the others.
	dead []bool
	live int

	stats queryCounters

	// markov, when set, answers queries the pattern paths could not: a
	// variable-order region-transition chain consulted between the
	// pattern search and the motion fallback. Held through an atomic
	// pointer so the owner (core.Model) can attach or swap it without
	// stalling concurrent queries.
	markov atomic.Pointer[MarkovHook]

	// fitCache memoizes the last fitted fallback motion function, keyed by
	// the identity of the recent window it was fitted on. Repeated queries
	// from the same window — per-object Predict traffic between
	// observations, fleet-index refreshes, batch fan-outs — reuse one
	// fitted model instead of refitting an identical one. Motion functions
	// are immutable after Fit (their Predict methods are pure), so a cached
	// instance is safe to share across concurrent queries; the cache
	// invalidates itself the moment the window advances.
	fitCache atomic.Pointer[fittedMotion]
}

// fittedMotion is one memoized fallback fit. The (t0, tc, n, lastLoc) tuple
// identifies the recent window: store windows are track suffixes, so the
// endpoints and length pin the exact point set (lastLoc guards the
// pathological caller that reuses timestamps with different geometry).
type fittedMotion struct {
	t0, tc  int
	n       int
	lastLoc geom.Point
	fn      motion.Function
	err     error
}

// queryScratch holds the per-query working buffers — the encoded premise
// and the candidate accumulator — recycled through a pool so the steady-
// state query path stays allocation-lean under concurrent load.
type queryScratch struct {
	visited []pattern.RegionID
	cands   []Prediction
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// NewEngine indexes the patterns and returns a ready engine. The patterns
// slice is retained; PatternRef values in predictions index into it.
func NewEngine(enc *pattern.Encoder, patterns []pattern.Pattern, cfg Config, treeOpts tpt.Options) (*Engine, error) {
	if cfg.Period <= 0 {
		return nil, errors.New("hpa: Config.Period must be positive")
	}
	if cfg.DistantThreshold <= 0 {
		cfg.DistantThreshold = DefaultDistantThreshold
	}
	if cfg.TimeRelaxation <= 0 {
		cfg.TimeRelaxation = DefaultTimeRelaxation
	}
	items := make([]tpt.Item, len(patterns))
	offsets := make([]int, len(patterns))
	for i, p := range patterns {
		items[i] = tpt.Item{Key: enc.Encode(p), Conf: p.Confidence, Ref: i}
		offsets[i] = enc.RegionTable().Region(p.Consequence).Offset
	}
	tree := tpt.BulkLoad(enc.ConsequenceTable().Len(), enc.RegionTable().Len(), items, treeOpts)
	return &Engine{enc: enc, tree: tree, patterns: patterns, cfg: cfg,
		consOffsets: offsets, dead: make([]bool, len(patterns)), live: len(patterns)}, nil
}

// Tree exposes the underlying TPT for diagnostics and benchmarks.
func (e *Engine) Tree() *tpt.Tree { return e.tree }

// MarkovHook answers a query from the region-transition chain: the
// object's recent movements and the absolute query time in, one
// prediction out (tagged SourceMarkov/PathMarkov by the implementation),
// or false when the chain has no sufficiently supported answer. Hooks
// must be safe for concurrent callers.
type MarkovHook func(recent []trajectory.TimedPoint, tq int) (Prediction, bool)

// SetMarkov attaches (or, with nil, detaches) the Markov answering path.
// Safe to call while queries run.
func (e *Engine) SetMarkov(h MarkovHook) {
	if h == nil {
		e.markov.Store(nil)
		return
	}
	e.markov.Store(&h)
}

// tryMarkov consults the Markov hook, if attached.
func (e *Engine) tryMarkov(recent []trajectory.TimedPoint, tq int) (Prediction, bool) {
	hp := e.markov.Load()
	if hp == nil {
		return Prediction{}, false
	}
	return (*hp)(recent, tq)
}

// AddPatterns inserts newly mined patterns into the live index using the
// TPT insertion algorithm (§V-B dynamic data). Patterns whose consequence
// time offset is absent from the consequence-key table cannot be encoded
// against the existing keys and are skipped — the table is fixed at build
// time, exactly as in the paper; retrain to widen it. Returns how many
// patterns were inserted and how many were skipped.
func (e *Engine) AddPatterns(ps []pattern.Pattern) (added, skipped int) {
	ct := e.enc.ConsequenceTable()
	rt := e.enc.RegionTable()
	for _, p := range ps {
		off := rt.Region(p.Consequence).Offset
		if _, ok := ct.TimeID(off); !ok {
			skipped++
			continue
		}
		ref := len(e.patterns)
		e.patterns = append(e.patterns, p)
		e.consOffsets = append(e.consOffsets, off)
		e.dead = append(e.dead, false)
		e.live++
		e.tree.Insert(tpt.Item{Key: e.enc.Encode(p), Conf: p.Confidence, Ref: ref})
		added++
	}
	return added, skipped
}

// Patterns returns a copy of the indexed pattern slice: AddPatterns keeps
// appending to the engine's own slice, so handing out the internal backing
// array would let callers corrupt the index (or observe it mid-append).
func (e *Engine) Patterns() []pattern.Pattern {
	out := make([]pattern.Pattern, len(e.patterns))
	copy(out, e.patterns)
	return out
}

// Config returns the engine configuration after defaulting.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the query counters. Safe to call while
// queries run; Queries is derived from the outcome counters, so the
// partition identity Queries == Forward+Backward+Fallback+Unanswered holds
// in every snapshot even mid-traffic.
func (e *Engine) Stats() QueryStats {
	f := e.stats.forward.Load()
	b := e.stats.backward.Load()
	mk := e.stats.markov.Load()
	fb := e.stats.fallback.Load()
	u := e.stats.unanswered.Load()
	return QueryStats{
		Queries:      int(f + b + mk + fb + u),
		Forward:      int(f),
		Backward:     int(b),
		Markov:       int(mk),
		Fallback:     int(fb),
		Unanswered:   int(u),
		NodesVisited: int(e.stats.nodesVisited.Load()),
		FallbackFits: int(e.stats.fallbackFits.Load()),
	}
}

// ResetStats zeroes the query counters. Not atomic with respect to
// in-flight queries; quiesce callers first if an exact zero matters.
func (e *Engine) ResetStats() {
	e.stats.forward.Store(0)
	e.stats.backward.Store(0)
	e.stats.markov.Store(0)
	e.stats.fallback.Store(0)
	e.stats.unanswered.Store(0)
	e.stats.nodesVisited.Store(0)
	e.stats.fallbackFits.Store(0)
}

// IsDistant reports whether a query from current time tc to query time tq
// is a distant-time query (Definition 2).
func (e *Engine) IsDistant(tc, tq int) bool {
	return tq-tc >= e.cfg.DistantThreshold
}

// EncodeRecent maps the recent movements to the frequent regions visited,
// deduplicated, in visit order. Locations matching no region are skipped —
// the paper only encodes regions the object demonstrably passed through.
func (e *Engine) EncodeRecent(recent []trajectory.TimedPoint) []pattern.RegionID {
	return e.encodeRecentInto(nil, recent)
}

// encodeRecentInto is EncodeRecent appending into a reusable buffer. The
// dedup is a linear scan over the ids collected so far: recent windows hold
// a handful of distinct regions, where scanning beats a per-query map
// allocation.
func (e *Engine) encodeRecentInto(ids []pattern.RegionID, recent []trajectory.TimedPoint) []pattern.RegionID {
	rt := e.enc.RegionTable()
	ids = ids[:0]
next:
	for _, tp := range recent {
		off := mod(tp.T, e.cfg.Period)
		fr, ok := rt.Locate(off, tp.Loc)
		if !ok {
			continue
		}
		for _, seen := range ids {
			if seen == fr.ID {
				continue next
			}
		}
		ids = append(ids, fr.ID)
	}
	return ids
}

// Predict answers a query with the full Hybrid Prediction Algorithm:
// FQP for near queries, BQP for distant ones, then the Markov region
// chain (when attached) for queries no pattern answers, and finally the
// motion-function fallback.
func (e *Engine) Predict(q Query) ([]Prediction, error) {
	if len(q.Recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := q.Recent[len(q.Recent)-1].T
	if q.Tq <= tc {
		return nil, fmt.Errorf("hpa: query time %d not after current time %d", q.Tq, tc)
	}
	k := q.K
	if k <= 0 {
		k = 1
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	sc.visited = e.encodeRecentInto(sc.visited, q.Recent)

	var preds []Prediction
	distant := e.IsDistant(tc, q.Tq)
	if distant {
		preds = e.backwardQuery(sc, sc.visited, tc, q.Tq, k)
	} else {
		preds = e.forwardQuery(sc, sc.visited, q.Tq, k)
	}
	if len(preds) > 0 {
		if distant {
			e.stats.backward.Add(1)
		} else {
			e.stats.forward.Add(1)
		}
		return preds, nil
	}
	if mp, ok := e.tryMarkov(q.Recent, q.Tq); ok {
		e.stats.markov.Add(1)
		return []Prediction{mp}, nil
	}
	fb, err := e.motionFallback(q)
	switch {
	case err != nil || len(fb) == 0:
		e.stats.unanswered.Add(1)
	default:
		e.stats.fallback.Add(1)
	}
	return fb, err
}

// PredictBatch answers one query per entry of tqs from the same recent
// window, returning the per-time prediction lists in input order. The
// premise is encoded once and the motion fallback, when any time needs it,
// is fitted once and reused — extending PredictRange's fit-once trick to
// arbitrary time sets, so a batch of m queries costs one encoding and at
// most one model construction instead of m of each.
//
// Each time dispatches to FQP or BQP by its own distance from the current
// time and counts in the query stats individually. Times the fallback
// cannot answer yield a nil entry rather than failing the batch. Every tq
// must lie after the recent window's end.
func (e *Engine) PredictBatch(recent []trajectory.TimedPoint, tqs []int, k int) ([][]Prediction, error) {
	if len(recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := recent[len(recent)-1].T
	for _, tq := range tqs {
		if tq <= tc {
			return nil, fmt.Errorf("hpa: query time %d not after current time %d", tq, tc)
		}
	}
	if len(tqs) == 0 {
		return nil, nil
	}
	if k <= 0 {
		k = 1
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	sc.visited = e.encodeRecentInto(sc.visited, recent)

	var fn motion.Function
	var fnErr error
	fitted := false
	out := make([][]Prediction, len(tqs))
	for i, tq := range tqs {
		distant := e.IsDistant(tc, tq)
		var preds []Prediction
		if distant {
			preds = e.backwardQuery(sc, sc.visited, tc, tq, k)
		} else {
			preds = e.forwardQuery(sc, sc.visited, tq, k)
		}
		if len(preds) > 0 {
			if distant {
				e.stats.backward.Add(1)
			} else {
				e.stats.forward.Add(1)
			}
			out[i] = preds
			continue
		}
		if mp, ok := e.tryMarkov(recent, tq); ok {
			e.stats.markov.Add(1)
			out[i] = []Prediction{mp}
			continue
		}
		if e.cfg.NewMotion == nil {
			e.stats.unanswered.Add(1)
			continue
		}
		if !fitted {
			fitted = true
			fn, fnErr = e.fitMotion(recent)
		}
		if fnErr != nil {
			// Degenerate recent window: answer with the last known
			// location, as Predict's fallback does.
			out[i] = []Prediction{{
				Location:          recent[len(recent)-1].Loc,
				PatternRef:        -1,
				Source:            SourceMotion,
				Path:              PathFallback,
				ConsequenceOffset: -1,
			}}
			e.stats.fallback.Add(1)
			continue
		}
		loc, err := fn.Predict(tq)
		if err != nil {
			e.stats.unanswered.Add(1)
			continue
		}
		out[i] = []Prediction{{Location: loc, PatternRef: -1, Source: SourceMotion,
			Path: PathFallback, ConsequenceOffset: -1}}
		e.stats.fallback.Add(1)
	}
	return out, nil
}

// PredictRange answers a predictive trajectory query: the object's most
// probable location at every timestamp in [from, to]. Each timestamp is
// dispatched to FQP or BQP by its own distance from the current time; the
// motion function, when needed, is fitted once and reused across the whole
// range (a single model construction, unlike per-point Predict calls).
// The result holds exactly to-from+1 predictions in timestamp order.
func (e *Engine) PredictRange(recent []trajectory.TimedPoint, from, to int) ([]Prediction, error) {
	if len(recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := recent[len(recent)-1].T
	if from <= tc || to < from {
		return nil, fmt.Errorf("hpa: range [%d,%d] invalid for current time %d", from, to, tc)
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	sc.visited = e.encodeRecentInto(sc.visited, recent)
	visited := sc.visited

	var fn motion.Function
	var fnErr error
	fitted := false
	fallback := func(tq int) Prediction {
		p := Prediction{Location: recent[len(recent)-1].Loc, PatternRef: -1,
			Source: SourceMotion, Path: PathFallback, ConsequenceOffset: -1}
		if e.cfg.NewMotion == nil {
			return p
		}
		if !fitted {
			fitted = true
			fn, fnErr = e.fitMotion(recent)
		}
		if fnErr != nil {
			return p
		}
		if loc, err := fn.Predict(tq); err == nil {
			p.Location = loc
		}
		return p
	}

	out := make([]Prediction, 0, to-from+1)
	for tq := from; tq <= to; tq++ {
		var preds []Prediction
		if e.IsDistant(tc, tq) {
			preds = e.backwardQuery(sc, visited, tc, tq, 1)
		} else {
			preds = e.forwardQuery(sc, visited, tq, 1)
		}
		if len(preds) > 0 {
			out = append(out, preds[0])
		} else if mp, ok := e.tryMarkov(recent, tq); ok {
			out = append(out, mp)
		} else {
			out = append(out, fallback(tq))
		}
	}
	return out, nil
}

// ForwardQuery implements Algorithm 2 minus the motion fallback: it returns
// the top-k pattern predictions for a non-distant query, or nil when no
// pattern qualifies.
func (e *Engine) ForwardQuery(visited []pattern.RegionID, tq, k int) []Prediction {
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	return e.forwardQuery(sc, visited, tq, k)
}

// forwardQuery is ForwardQuery accumulating candidates into sc.cands; the
// returned top-k slice is freshly allocated, never scratch-backed.
func (e *Engine) forwardQuery(sc *queryScratch, visited []pattern.RegionID, tq, k int) []Prediction {
	if len(visited) == 0 {
		return nil
	}
	tqOff := mod(tq, e.cfg.Period)
	qk := e.enc.QueryKey(visited, tqOff)
	if qk.CK.IsZero() || qk.RK.IsZero() {
		return nil
	}
	cands := sc.cands[:0]
	e.stats.nodesVisited.Add(int64(e.tree.SearchIntersect(qk, func(it tpt.Item) bool {
		sr := PremiseSimilarity(it.Key.RK, qk.RK, e.cfg.Weight)
		fr := e.consequenceRegion(it.Ref)
		cands = append(cands, Prediction{
			Location:          fr.Center,
			Score:             sr * it.Conf, // Equation 2
			Confidence:        it.Conf,
			PatternRef:        it.Ref,
			Source:            SourcePattern,
			Path:              PathForward,
			Extent:            fr.MBR,
			ConsequenceOffset: fr.Offset,
		})
		return true
	})))
	sc.cands = cands
	return topK(cands, k)
}

// BackwardQuery implements Algorithm 3 minus the motion fallback: starting
// from the base window [tq-tε, tq+tε] it widens until at least one pattern
// has a consequence offset inside the window or the window reaches the
// current time, then ranks by Equation 5 (or Equation 4 when the premise
// penalty is disabled).
func (e *Engine) BackwardQuery(visited []pattern.RegionID, tc, tq, k int) []Prediction {
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	return e.backwardQuery(sc, visited, tc, tq, k)
}

// backwardQuery is BackwardQuery accumulating candidates into sc.cands; the
// returned top-k slice is freshly allocated, never scratch-backed.
func (e *Engine) backwardQuery(scr *queryScratch, visited []pattern.RegionID, tc, tq, k int) []Prediction {
	qrk := e.enc.RegionTable().PremiseKey(visited)
	ct := e.enc.ConsequenceTable()
	tqOff := mod(tq, e.cfg.Period)

	for i := 1; ; i++ {
		radius := i * e.cfg.TimeRelaxation
		ck := consequenceWindowKey(ct, tqOff, radius, e.cfg.Period)
		cands := scr.cands[:0]
		if !ck.IsZero() {
			qk := bitkey.PatternKey{CK: ck, RK: qrk}
			e.stats.nodesVisited.Add(int64(e.tree.SearchConsequence(qk, func(it tpt.Item) bool {
				t := e.consOffsets[it.Ref]
				dist := circularDist(tqOff, t, e.cfg.Period)
				if dist > radius {
					return true // key bit wrapped in; outside this window
				}
				sc := 1 - float64(dist)/float64(radius+1) // Equation 3
				sr := PremiseSimilarity(it.Key.RK, qrk, e.cfg.Weight)
				var sp float64
				if e.cfg.PenalizePremise {
					sp = (sr*float64(e.cfg.DistantThreshold)/float64(tq-tc) + sc) * it.Conf // Equation 5
				} else {
					sp = (sr + sc) * it.Conf // Equation 4
				}
				fr := e.consequenceRegion(it.Ref)
				cands = append(cands, Prediction{
					Location:          fr.Center,
					Score:             sp,
					Confidence:        it.Conf,
					PatternRef:        it.Ref,
					Source:            SourcePattern,
					Path:              PathBackward,
					Extent:            fr.MBR,
					ConsequenceOffset: fr.Offset,
				})
				return true
			})))
			scr.cands = cands
		}
		if len(cands) > 0 {
			return topK(cands, k)
		}
		// Algorithm 3 line 8: widen only while the window's lower edge
		// stays after the current time.
		if tq-(i+1)*e.cfg.TimeRelaxation <= tc {
			return nil
		}
	}
}

func (e *Engine) consequenceRegion(ref int) *pattern.FrequentRegion {
	return e.enc.RegionTable().Region(e.patterns[ref].Consequence)
}

// fitMotion returns a fallback motion function fitted to recent, reusing the
// cached fit when the window is unchanged. Concurrent misses may both fit
// (last store wins); the fit counter reports fits actually performed.
func (e *Engine) fitMotion(recent []trajectory.TimedPoint) (motion.Function, error) {
	n := len(recent)
	t0, tc := recent[0].T, recent[n-1].T
	last := recent[n-1].Loc
	if c := e.fitCache.Load(); c != nil && c.t0 == t0 && c.tc == tc && c.n == n && c.lastLoc == last {
		return c.fn, c.err
	}
	fn := e.cfg.NewMotion()
	err := fn.Fit(recent)
	e.stats.fallbackFits.Add(1)
	e.fitCache.Store(&fittedMotion{t0: t0, tc: tc, n: n, lastLoc: last, fn: fn, err: err})
	return fn, err
}

func (e *Engine) motionFallback(q Query) ([]Prediction, error) {
	if e.cfg.NewMotion == nil {
		return nil, nil
	}
	fn, err := e.fitMotion(q.Recent)
	if err != nil {
		// Degenerate recent window: answer with the last known location
		// rather than failing the query.
		return []Prediction{{
			Location:          q.Recent[len(q.Recent)-1].Loc,
			PatternRef:        -1,
			Source:            SourceMotion,
			Path:              PathFallback,
			ConsequenceOffset: -1,
		}}, nil
	}
	loc, err := fn.Predict(q.Tq)
	if err != nil {
		return nil, fmt.Errorf("hpa: motion fallback: %w", err)
	}
	return []Prediction{{Location: loc, PatternRef: -1, Source: SourceMotion,
		Path: PathFallback, ConsequenceOffset: -1}}, nil
}

// FallbackQuery answers a query with the motion-function fallback alone,
// bypassing the pattern paths. The online evaluator uses it to shadow-score
// the RMF against the hybrid answer, and the store's adaptive routing uses
// it when a pattern path's measured accuracy has dropped below the
// fallback's. Counts as a fallback (or unanswered) query in the stats.
func (e *Engine) FallbackQuery(q Query) ([]Prediction, error) {
	if len(q.Recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := q.Recent[len(q.Recent)-1].T
	if q.Tq <= tc {
		return nil, fmt.Errorf("hpa: query time %d not after current time %d", q.Tq, tc)
	}
	fb, err := e.motionFallback(q)
	if err != nil || len(fb) == 0 {
		e.stats.unanswered.Add(1)
	} else {
		e.stats.fallback.Add(1)
	}
	return fb, err
}

// MarkovQuery answers a query with the Markov region chain alone,
// bypassing the pattern paths and falling through to the motion function
// when the chain cannot answer. The online evaluator uses it to
// shadow-score the chain against the hybrid answer, and the store's
// adaptive routing uses it when the chain's measured accuracy leads at
// the query's horizon. Counts as a markov (or fallback/unanswered) query
// in the stats.
func (e *Engine) MarkovQuery(q Query) ([]Prediction, error) {
	if len(q.Recent) == 0 {
		return nil, errors.New("hpa: query has no recent movements")
	}
	tc := q.Recent[len(q.Recent)-1].T
	if q.Tq <= tc {
		return nil, fmt.Errorf("hpa: query time %d not after current time %d", q.Tq, tc)
	}
	if mp, ok := e.tryMarkov(q.Recent, q.Tq); ok {
		e.stats.markov.Add(1)
		return []Prediction{mp}, nil
	}
	fb, err := e.motionFallback(q)
	if err != nil || len(fb) == 0 {
		e.stats.unanswered.Add(1)
	} else {
		e.stats.fallback.Add(1)
	}
	return fb, err
}

// better reports whether a ranks strictly ahead of b: higher score, ties
// broken by higher confidence, then lower pattern index for determinism.
// Candidates within one search carry distinct PatternRefs, so this is a
// strict total order and the top-k set is deterministic.
func better(a, b *Prediction) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	return a.PatternRef < b.PatternRef
}

// topK returns the k best candidates in rank order, freshly allocated so
// callers never alias the pooled scratch. For k ≪ len(cands) it runs a
// bounded selection heap — O(n log k) with the heap living in the scratch's
// own prefix — instead of sorting every candidate.
func topK(cands []Prediction, k int) []Prediction {
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	if k >= len(cands) {
		out := make([]Prediction, len(cands))
		copy(out, cands)
		sort.Slice(out, func(i, j int) bool { return better(&out[i], &out[j]) })
		return out
	}
	// cands[:k] becomes a worst-at-root heap; survivors displace the root.
	h := cands[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftWorst(h, i)
	}
	for i := k; i < len(cands); i++ {
		if better(&cands[i], &h[0]) {
			h[0] = cands[i]
			siftWorst(h, 0)
		}
	}
	// Pop worst-first into the tail of the output to leave rank order.
	out := make([]Prediction, k)
	for n := k; n > 0; n-- {
		out[n-1] = h[0]
		h[0] = h[n-1]
		h = h[:n-1]
		siftWorst(h, 0)
	}
	return out
}

// siftWorst restores the worst-at-root heap property below index i.
func siftWorst(h []Prediction, i int) {
	for {
		l, r, w := 2*i+1, 2*i+2, i
		if l < len(h) && better(&h[w], &h[l]) {
			w = l
		}
		if r < len(h) && better(&h[w], &h[r]) {
			w = r
		}
		if w == i {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

// consequenceWindowKey builds the consequence key for the offsets within
// radius of tqOff, wrapping modulo the period.
func consequenceWindowKey(ct *pattern.ConsequenceTable, tqOff, radius, period int) (k bitkey.Key) {
	if 2*radius+1 >= period {
		return ct.KeyRange(0, period-1)
	}
	lo, hi := tqOff-radius, tqOff+radius
	switch {
	case lo < 0:
		k = ct.KeyRange(0, hi)
		k.OrInPlace(ct.KeyRange(mod(lo, period), period-1))
	case hi >= period:
		k = ct.KeyRange(lo, period-1)
		k.OrInPlace(ct.KeyRange(0, hi-period))
	default:
		k = ct.KeyRange(lo, hi)
	}
	return k
}

// mod is the non-negative remainder.
func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// circularDist is the wrap-around distance between two offsets in [0, n).
func circularDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
