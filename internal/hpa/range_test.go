package hpa

import (
	"testing"

	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

func TestPredictRangeBasics(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	preds, err := eng.PredictRange(recent, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("range returned %d predictions, want 3", len(preds))
	}
	// Offset 2 has a pattern (Work); offsets 0,1 of the next period have
	// consequences too (City at offset 1) or fall back to motion.
	if preds[0].Source != SourcePattern {
		t.Errorf("t=2 source %v, want pattern", preds[0].Source)
	}
	if preds[0].Location.Dist(centers["work"]) > 10 {
		t.Errorf("t=2 predicted %v, want near work", preds[0].Location)
	}
	// Pattern predictions carry region extent and consequence offset.
	if !preds[0].Extent.IsValid() || preds[0].Extent.Area() == 0 {
		t.Errorf("pattern prediction missing extent: %+v", preds[0].Extent)
	}
	if preds[0].ConsequenceOffset != 2 {
		t.Errorf("ConsequenceOffset = %d, want 2", preds[0].ConsequenceOffset)
	}
}

func TestPredictRangeValidation(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3})
	recent := []trajectory.TimedPoint{{T: 5, Loc: centers["home"]}}
	if _, err := eng.PredictRange(nil, 6, 8); err == nil {
		t.Error("empty recent accepted")
	}
	if _, err := eng.PredictRange(recent, 5, 8); err == nil {
		t.Error("from == tc accepted")
	}
	if _, err := eng.PredictRange(recent, 8, 6); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestPredictRangeMotionFittedOnce(t *testing.T) {
	fits := 0
	countingMotion := func() motion.Function {
		fits++
		return motion.NewLinear(nil)
	}
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100, NewMotion: countingMotion})
	// Recent movements far from all regions: every timestamp falls back.
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	preds, err := eng.PredictRange(recent, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 10 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for i, p := range preds {
		if p.Source != SourceMotion {
			t.Errorf("pred %d source %v, want motion", i, p.Source)
		}
	}
	if fits != 1 {
		t.Errorf("motion function fitted %d times, want 1", fits)
	}
	// Motion predictions extrapolate: consecutive locations advance.
	if preds[1].Location == preds[0].Location {
		t.Error("motion range predictions did not advance")
	}
}

func TestPredictRangeNoFallbackUsesLastKnown(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100}) // no NewMotion
	last := geom.Pt(9010, 9000)
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: last},
	}
	preds, err := eng.PredictRange(recent, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if p.Location != last {
			t.Errorf("pred %d = %v, want last known %v", i, p.Location, last)
		}
	}
}

func TestPredictRangeMixesSources(t *testing.T) {
	// Period 100 with consequences only at offsets 1 and 2: a range
	// crossing pattern-covered and uncovered offsets mixes sources.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 1000,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	_ = eng
	// Build a fresh engine whose patterns we know: reuse jane fixture via
	// janeEngine and query across offsets 1..5 with a premise at Home.
	eng2, centers := janeEngine(t, Config{Period: 100, DistantThreshold: 1000,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{{T: 0, Loc: centers["home"]}}
	preds, err := eng2.PredictRange(recent, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Source != SourcePattern || preds[1].Source != SourcePattern {
		t.Errorf("offsets 1,2 should be pattern: %v %v", preds[0].Source, preds[1].Source)
	}
	for i := 2; i < 5; i++ {
		if preds[i].Source != SourceMotion {
			t.Errorf("offset %d should be motion, got %v", i+1, preds[i].Source)
		}
	}
}

func TestForwardQueryExtentMatchesRegion(t *testing.T) {
	eng, _ := janeEngine(t, Config{DistantThreshold: 60, Weight: WeightLinear})
	preds := eng.ForwardQuery([]pattern.RegionID{0, 1}, 2, 1)
	if len(preds) != 1 {
		t.Fatal("no prediction")
	}
	if !preds[0].Extent.Contains(preds[0].Location) {
		t.Error("region extent does not contain its center")
	}
}
