package hpa

import (
	"hpm/internal/pattern"
	"hpm/internal/tpt"
)

// In-place index mutation for incremental training. Unlike AddPatterns —
// the paper's fixed-table insertion, which skips patterns its key space
// cannot express — these methods grow the key space on demand and retire
// patterns delta-Apriori demotes. All of them mutate the engine and must
// be serialized against queries like AddPatterns (see the Engine doc).

// LivePatterns returns how many indexed patterns are not retired.
func (e *Engine) LivePatterns() int { return e.live }

// IsLive reports whether ref names a pattern that still answers queries.
func (e *Engine) IsLive(ref int) bool {
	return ref >= 0 && ref < len(e.patterns) && !e.dead[ref]
}

// InsertPatterns indexes newly promoted patterns, growing the consequence
// table and the tree's key widths as needed — nothing is skipped, unlike
// AddPatterns. Minted regions and fresh consequence offsets widen keys
// with high-order zero bits, so existing entries keep their meaning.
// Returns the refs assigned, aligned with ps.
func (e *Engine) InsertPatterns(ps []pattern.Pattern) []int {
	if len(ps) == 0 {
		return nil
	}
	ct := e.enc.ConsequenceTable()
	rt := e.enc.RegionTable()
	for _, p := range ps {
		ct.AddOffset(rt.Region(p.Consequence).Offset)
	}
	e.tree.GrowKeys(ct.Len(), rt.Len())
	refs := make([]int, len(ps))
	for i, p := range ps {
		ref := len(e.patterns)
		e.patterns = append(e.patterns, p)
		e.consOffsets = append(e.consOffsets, rt.Region(p.Consequence).Offset)
		e.dead = append(e.dead, false)
		e.live++
		e.tree.Insert(tpt.Item{Key: e.enc.Encode(p), Conf: p.Confidence, Ref: ref})
		refs[i] = ref
	}
	return refs
}

// SyncKeyWidths grows the tree's key widths to match the current region
// and consequence tables. InsertPatterns does this on its own; call it
// directly when a region is minted without any pattern promotion, so the
// wider query keys the encoder now produces still match the tree.
func (e *Engine) SyncKeyWidths() {
	e.tree.GrowKeys(e.enc.ConsequenceTable().Len(), e.enc.RegionTable().Len())
}

// RemovePattern retires the pattern at ref: its tree entry is deleted so
// no query finds it again, while the slice entry stays so outstanding
// PatternRef values (served predictions, Explain) remain valid. Returns
// false when ref is out of range or already retired.
func (e *Engine) RemovePattern(ref int) bool {
	if !e.IsLive(ref) {
		return false
	}
	// Encode against the current tables: key widths may have grown since
	// the pattern was inserted, but grown bits are zero on both sides, so
	// the encoded key equals the stored (grown) one.
	if !e.tree.Delete(e.enc.Encode(e.patterns[ref]), ref) {
		return false
	}
	e.dead[ref] = true
	e.live--
	return true
}

// UpdatePattern rewrites the confidence and support of the live pattern
// at ref. The pattern's itemset — and therefore its key — must be
// unchanged; only the payload moves. Returns false when ref is not live.
func (e *Engine) UpdatePattern(ref int, p pattern.Pattern) bool {
	if !e.IsLive(ref) {
		return false
	}
	if !e.tree.UpdateConf(e.enc.Encode(p), ref, p.Confidence) {
		return false
	}
	e.patterns[ref] = p
	return true
}
