package hpa

import (
	"math"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/pattern"
	"hpm/internal/tpt"
	"hpm/internal/trajectory"
)

// janeFixture reconstructs the paper's running example: five frequent
// regions (Home, City, Shop, Work, Beach at offsets 0,1,1,2,2) and the four
// Table III patterns with their exact paper confidences. Patterns are built
// by hand so the worked FQP numbers of §VI-B can be checked to the digit.
func janeFixture(t *testing.T) (*pattern.Encoder, []pattern.Pattern, map[string]geom.Point) {
	t.Helper()
	const n = 20
	jitter := func(c geom.Point, i int) geom.Point {
		return geom.Pt(c.X+float64(i%5), c.Y+float64((i*3)%7))
	}
	centers := map[string]geom.Point{
		"home":  geom.Pt(100, 100),
		"city":  geom.Pt(2000, 2000),
		"shop":  geom.Pt(3000, 1000),
		"work":  geom.Pt(4000, 4000),
		"beach": geom.Pt(5000, 1000),
	}
	g0 := trajectory.Group{Offset: 0, Points: make([]geom.Point, n)}
	g1 := trajectory.Group{Offset: 1, Points: make([]geom.Point, n)}
	g2 := trajectory.Group{Offset: 2, Points: make([]geom.Point, n)}
	for i := 0; i < n; i++ {
		g0.Points[i] = jitter(centers["home"], i)
		if i < 10 {
			g1.Points[i] = jitter(centers["city"], i)
		} else {
			g1.Points[i] = jitter(centers["shop"], i)
		}
		switch {
		case i < 5:
			g2.Points[i] = jitter(centers["work"], i)
		case i < 10:
			g2.Points[i] = geom.Pt(float64(1000*i), 9000)
		case i < 18:
			g2.Points[i] = jitter(centers["beach"], i)
		default:
			g2.Points[i] = geom.Pt(float64(1000*i), 200)
		}
	}
	rt := pattern.DiscoverRegions([]trajectory.Group{g0, g1, g2}, 30, 4)
	if rt.Len() != 5 {
		t.Fatalf("fixture discovered %d regions, want 5", rt.Len())
	}
	// The paper's four patterns (Fig. 3 / Table III) with their exact
	// confidences; region ids: 0=Home 1=City 2=Shop 3=Work 4=Beach.
	patterns := []pattern.Pattern{
		{Premise: []pattern.RegionID{0}, Consequence: 1, Confidence: 0.9},    // P0
		{Premise: []pattern.RegionID{0}, Consequence: 2, Confidence: 0.8},    // P1
		{Premise: []pattern.RegionID{0, 1}, Consequence: 3, Confidence: 0.5}, // P2
		{Premise: []pattern.RegionID{0, 2}, Consequence: 4, Confidence: 0.4}, // P3
	}
	ct := pattern.NewConsequenceTable(rt, patterns)
	return pattern.NewEncoder(rt, ct), patterns, centers
}

func janeEngine(t *testing.T, cfg Config) (*Engine, map[string]geom.Point) {
	t.Helper()
	enc, patterns, centers := janeFixture(t)
	if cfg.Period == 0 {
		cfg.Period = 3
	}
	eng, err := NewEngine(enc, patterns, cfg, tpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, centers
}

// §VI-B worked example: recent movements R0^0, R1^0 with tq = 2 must score
// P2 at Sp = 1 x 0.5 = 0.5 and P3 at Sp = (1/3) x 0.4 ≈ 0.133, with P2's
// consequence (Work) ranked first.
func TestForwardQueryPaperExample(t *testing.T) {
	eng, centers := janeEngine(t, Config{DistantThreshold: 60, Weight: WeightLinear})
	preds := eng.ForwardQuery([]pattern.RegionID{0, 1}, 2, 2)
	if len(preds) != 2 {
		t.Fatalf("got %d candidates, want 2", len(preds))
	}
	if math.Abs(preds[0].Score-0.5) > 1e-12 {
		t.Errorf("top score = %v, want 0.5", preds[0].Score)
	}
	if math.Abs(preds[1].Score-0.4/3) > 1e-12 {
		t.Errorf("second score = %v, want %v", preds[1].Score, 0.4/3)
	}
	if preds[0].PatternRef != 2 || preds[1].PatternRef != 3 {
		t.Errorf("ranked refs = %d,%d want 2,3", preds[0].PatternRef, preds[1].PatternRef)
	}
	// k=1 returns only Work's center.
	top := eng.ForwardQuery([]pattern.RegionID{0, 1}, 2, 1)
	if len(top) != 1 {
		t.Fatalf("k=1 returned %d", len(top))
	}
	if top[0].Location.Dist(centers["work"]) > 10 {
		t.Errorf("top location %v not near Work %v", top[0].Location, centers["work"])
	}
}

func TestForwardQueryNoConsequenceOffset(t *testing.T) {
	eng, _ := janeEngine(t, Config{})
	// Offset 0 is never a consequence: no candidates.
	if preds := eng.ForwardQuery([]pattern.RegionID{0}, 3, 1); len(preds) != 0 {
		t.Errorf("query at non-consequence offset returned %v", preds)
	}
	// Empty premise: no candidates.
	if preds := eng.ForwardQuery(nil, 2, 1); len(preds) != 0 {
		t.Errorf("empty premise returned %v", preds)
	}
}

func TestForwardQueryPremiseMustIntersect(t *testing.T) {
	eng, _ := janeEngine(t, Config{})
	// Premise {Work}: no pattern has Work in its premise.
	if preds := eng.ForwardQuery([]pattern.RegionID{3}, 2, 1); len(preds) != 0 {
		t.Errorf("non-intersecting premise returned %v", preds)
	}
}

func TestBackwardQueryRanksByTimeDistance(t *testing.T) {
	// Period 100 with consequences at offsets 1 and 2; a distant query at
	// offset 4 must prefer the consequence at 2 (closer in time) when
	// premise similarity ties at zero.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 3, TimeRelaxation: 1, PenalizePremise: true})
	preds := eng.BackwardQuery(nil, 0, 4, 4)
	if len(preds) == 0 {
		t.Fatal("BQP found no candidates")
	}
	// Candidates at offset 2 (P2, P3) must outrank those at offset 1.
	offs := map[int]int{0: 1, 1: 1, 2: 2, 3: 2} // ref -> consequence offset
	bestOff := offs[preds[0].PatternRef]
	if bestOff != 2 {
		t.Errorf("top BQP candidate at offset %d, want 2 (closest to query)", bestOff)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Score > preds[i-1].Score {
			t.Errorf("BQP results not sorted by score at %d", i)
		}
	}
}

func TestBackwardQueryWindowExpansion(t *testing.T) {
	// Query at offset 40, consequences at 1 and 2, tε=2: the base window
	// [38,42] is empty, so BQP must keep widening until it reaches them.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 3, TimeRelaxation: 2, PenalizePremise: true})
	preds := eng.BackwardQuery(nil, 0, 40, 1)
	if len(preds) != 1 {
		t.Fatalf("expanded BQP returned %d predictions", len(preds))
	}
	if preds[0].Source != SourcePattern {
		t.Errorf("source = %v, want pattern", preds[0].Source)
	}
}

func TestBackwardQueryStopsAtCurrentTime(t *testing.T) {
	// Current time 35, query 40, consequences at 1,2 (far behind tc):
	// expansion must stop once tq - i*tε <= tc and report no candidates.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 3, TimeRelaxation: 2, PenalizePremise: true})
	if preds := eng.BackwardQuery(nil, 35, 40, 1); len(preds) != 0 {
		t.Errorf("BQP crossed the current time: %v", preds)
	}
}

func TestBackwardQueryPremisePenalty(t *testing.T) {
	// With the premise known, Equation 5 down-weights Sr as tq-tc grows.
	engPen, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 5, TimeRelaxation: 1, PenalizePremise: true})
	engRaw, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 5, TimeRelaxation: 1, PenalizePremise: false})
	visited := []pattern.RegionID{0, 1}
	// Query close enough that the base window catches offset 2.
	pen := engPen.BackwardQuery(visited, -10, 2, 4)
	raw := engRaw.BackwardQuery(visited, -10, 2, 4)
	if len(pen) == 0 || len(raw) == 0 {
		t.Fatal("no BQP candidates")
	}
	// Equation 4 score >= Equation 5 score for the same top pattern
	// because the penalty shrinks the premise term.
	if pen[0].Score >= raw[0].Score {
		t.Errorf("penalized score %v not below raw %v", pen[0].Score, raw[0].Score)
	}
}

func TestPredictDispatchNearVsDistant(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	// Recent movements pass through Home (offset 0) then City (offset 1);
	// current time 1, query time 2: near query -> FQP -> Work.
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	preds, err := eng.Predict(Query{Recent: recent, Tq: 2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0].Source != SourcePattern {
		t.Fatalf("near query: %+v", preds)
	}
	if preds[0].Location.Dist(centers["work"]) > 10 {
		t.Errorf("near prediction %v not near Work", preds[0].Location)
	}
}

func TestPredictMotionFallback(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	// Recent movements match no frequent region: FQP is empty and the
	// linear motion function must answer.
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	preds, err := eng.Predict(Query{Recent: recent, Tq: 2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0].Source != SourceMotion || preds[0].PatternRef != -1 {
		t.Fatalf("fallback: %+v", preds)
	}
	want := geom.Pt(9020, 9000)
	if preds[0].Location.Dist(want) > 1e-6 {
		t.Errorf("motion fallback predicted %v, want %v", preds[0].Location, want)
	}
}

func TestPredictFallbackDisabled(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	preds, err := eng.Predict(Query{Recent: recent, Tq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 0 {
		t.Errorf("disabled fallback returned %v", preds)
	}
}

func TestPredictDegenerateRecentFallsBackToLastLocation(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{{T: 1, Loc: geom.Pt(9000, 9000)}}
	preds, err := eng.Predict(Query{Recent: recent, Tq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0].Location != geom.Pt(9000, 9000) {
		t.Fatalf("degenerate recent: %+v", preds)
	}
}

func TestPredictValidation(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3})
	if _, err := eng.Predict(Query{Recent: nil, Tq: 5}); err == nil {
		t.Error("empty recent accepted")
	}
	recent := []trajectory.TimedPoint{{T: 3, Loc: centers["home"]}}
	if _, err := eng.Predict(Query{Recent: recent, Tq: 3}); err == nil {
		t.Error("tq == tc accepted")
	}
	if _, err := eng.Predict(Query{Recent: recent, Tq: 1}); err == nil {
		t.Error("tq < tc accepted")
	}
}

func TestEncodeRecent(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
		{T: 3, Loc: centers["home"]},     // second period, same region: deduped
		{T: 4, Loc: geom.Pt(9500, 9500)}, // matches nothing
	}
	ids := eng.EncodeRecent(recent)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("EncodeRecent = %v, want [0 1]", ids)
	}
}

func TestIsDistant(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 60})
	if eng.IsDistant(100, 159) {
		t.Error("159-100 < 60 flagged distant")
	}
	if !eng.IsDistant(100, 160) {
		t.Error("160-100 >= 60 not flagged distant")
	}
}

func TestNewEngineValidation(t *testing.T) {
	enc, patterns, _ := janeFixture(t)
	if _, err := NewEngine(enc, patterns, Config{}, tpt.Options{}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestEngineDefaults(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3})
	cfg := eng.Config()
	if cfg.DistantThreshold != DefaultDistantThreshold {
		t.Errorf("DistantThreshold = %d", cfg.DistantThreshold)
	}
	if cfg.TimeRelaxation != DefaultTimeRelaxation {
		t.Errorf("TimeRelaxation = %d", cfg.TimeRelaxation)
	}
	if eng.Tree().Len() != len(eng.Patterns()) {
		t.Errorf("tree holds %d items for %d patterns", eng.Tree().Len(), len(eng.Patterns()))
	}
}

func TestCircularDist(t *testing.T) {
	tests := []struct{ a, b, n, want int }{
		{0, 0, 10, 0},
		{1, 9, 10, 2},
		{9, 1, 10, 2},
		{2, 7, 10, 5},
		{0, 5, 10, 5},
	}
	for _, tt := range tests {
		if got := circularDist(tt.a, tt.b, tt.n); got != tt.want {
			t.Errorf("circularDist(%d,%d,%d) = %d, want %d", tt.a, tt.b, tt.n, got, tt.want)
		}
	}
}

func TestMod(t *testing.T) {
	if mod(-1, 3) != 2 || mod(7, 3) != 1 || mod(0, 3) != 0 {
		t.Error("mod broken")
	}
}

func TestSourceString(t *testing.T) {
	if SourcePattern.String() != "pattern" || SourceMotion.String() != "motion" {
		t.Error("Source.String broken")
	}
}

func TestConsequenceWindowKeyWrapAround(t *testing.T) {
	// Period 100 with consequence offsets 1 and 2: windows that cross the
	// period boundary in either direction must still set their bits.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 3, TimeRelaxation: 1, PenalizePremise: true})
	ct := eng.enc.ConsequenceTable()

	// Window [98, 102] wraps past the top: offsets 1 and 2 are inside.
	k := consequenceWindowKey(ct, 0, 2, 100)
	if k.Size() != 2 {
		t.Errorf("wrap-high window key = %s, want both bits", k)
	}
	// Window [-1, 3] wraps below zero: offsets 1 and 2 inside.
	k = consequenceWindowKey(ct, 1, 2, 100)
	if k.Size() != 2 {
		t.Errorf("wrap-low window key = %s, want both bits", k)
	}
	// Window radius covering the whole period short-circuits.
	k = consequenceWindowKey(ct, 50, 60, 100)
	if k.Size() != 2 {
		t.Errorf("full-period window key = %s, want both bits", k)
	}
	// A window nowhere near the consequences is empty.
	k = consequenceWindowKey(ct, 50, 3, 100)
	if !k.IsZero() {
		t.Errorf("far window key = %s, want zero", k)
	}
}

func TestBackwardQueryAcrossPeriodBoundary(t *testing.T) {
	// Distant query whose offset wraps: tq lands at offset 1 of the NEXT
	// period; the consequences at offsets 1,2 must still be found.
	eng, _ := janeEngine(t, Config{Period: 100, DistantThreshold: 3, TimeRelaxation: 2, PenalizePremise: true})
	preds := eng.BackwardQuery(nil, 90, 101, 1)
	if len(preds) != 1 {
		t.Fatalf("wrapped BQP returned %d predictions", len(preds))
	}
	if preds[0].ConsequenceOffset != 1 && preds[0].ConsequenceOffset != 2 {
		t.Errorf("wrapped BQP picked offset %d", preds[0].ConsequenceOffset)
	}
}

func TestQueryStatsCounters(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 2, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	if s := eng.Stats(); s != (QueryStats{}) {
		t.Fatalf("fresh engine stats %+v", s)
	}
	// Near query answered by FQP.
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	if _, err := eng.Predict(Query{Recent: recent, Tq: 2}); err != nil {
		t.Fatal(err)
	}
	// Distant query (horizon >= 2) answered by BQP.
	if _, err := eng.Predict(Query{Recent: recent, Tq: 5}); err != nil {
		t.Fatal(err)
	}
	// Query matching nothing: motion fallback.
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	if _, err := eng.Predict(Query{Recent: far, Tq: 2}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Queries != 3 || s.Forward != 1 || s.Backward != 1 || s.Fallback != 1 || s.Unanswered != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodesVisited == 0 {
		t.Error("no nodes counted")
	}
	eng.ResetStats()
	if eng.Stats() != (QueryStats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestQueryStatsUnanswered(t *testing.T) {
	eng, _ := janeEngine(t, Config{Period: 3, DistantThreshold: 100}) // no fallback
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}
	if _, err := eng.Predict(Query{Recent: far, Tq: 2}); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Unanswered != 1 || s.Fallback != 0 {
		t.Errorf("stats = %+v", s)
	}
}
