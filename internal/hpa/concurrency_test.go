package hpa

import (
	"sync"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/motion"
	"hpm/internal/trajectory"
)

// TestPredictConcurrentStatsExact hammers Predict from many goroutines and
// checks the atomic counters add up exactly: every query must land in
// precisely one outcome bucket, with no lost increments. Run under -race
// this also proves the query path itself is write-free.
func TestPredictConcurrentStatsExact(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 2, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})

	near := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	far := []trajectory.TimedPoint{
		{T: 0, Loc: geom.Pt(9000, 9000)},
		{T: 1, Loc: geom.Pt(9010, 9000)},
	}

	const goroutines = 16
	const perG = 200 // per goroutine: FQP, BQP and fallback queries
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := eng.Predict(Query{Recent: near, Tq: 2}); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Predict(Query{Recent: near, Tq: 5}); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Predict(Query{Recent: far, Tq: 2}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s := eng.Stats()
	want := goroutines * perG
	if s.Forward != want || s.Backward != want || s.Fallback != want || s.Unanswered != 0 {
		t.Errorf("stats = %+v, want %d forward, %d backward, %d fallback", s, want, want, want)
	}
	if s.Queries != 3*want {
		t.Errorf("Queries = %d, want %d", s.Queries, 3*want)
	}
	if s.Queries != s.Forward+s.Backward+s.Fallback+s.Unanswered {
		t.Errorf("partition identity violated: %+v", s)
	}
	if s.NodesVisited == 0 {
		t.Error("no nodes counted")
	}
}

// TestConcurrentMixedQueryKinds runs Predict, PredictBatch, PredictRange,
// ForwardQuery, BackwardQuery, EncodeRecent and Stats concurrently — the
// full read surface the engine documents as safe — and checks the answers
// stay identical to a quiet single-threaded run.
func TestConcurrentMixedQueryKinds(t *testing.T) {
	eng, centers := janeEngine(t, Config{Period: 3, DistantThreshold: 2, Weight: WeightLinear,
		NewMotion: func() motion.Function { return motion.NewLinear(nil) }})
	recent := []trajectory.TimedPoint{
		{T: 0, Loc: centers["home"]},
		{T: 1, Loc: centers["city"]},
	}
	wantNear, err := eng.Predict(Query{Recent: recent, Tq: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantFar, err := eng.Predict(Query{Recent: recent, Tq: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng.ResetStats()

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch g % 4 {
				case 0:
					got, err := eng.Predict(Query{Recent: recent, Tq: 2, K: 2})
					if err != nil {
						t.Error(err)
						return
					}
					if len(got) != len(wantNear) || got[0] != wantNear[0] {
						t.Errorf("concurrent Predict diverged: %+v vs %+v", got, wantNear)
						return
					}
				case 1:
					batch, err := eng.PredictBatch(recent, []int{2, 5}, 2)
					if err != nil {
						t.Error(err)
						return
					}
					if len(batch) != 2 || len(batch[0]) != len(wantNear) || batch[0][0] != wantNear[0] {
						t.Errorf("concurrent PredictBatch diverged: %+v", batch)
						return
					}
					if len(batch[1]) == 0 || batch[1][0] != wantFar[0] {
						t.Errorf("concurrent PredictBatch BQP diverged: %+v", batch[1])
						return
					}
				case 2:
					if _, err := eng.PredictRange(recent, 2, 5); err != nil {
						t.Error(err)
						return
					}
				default:
					visited := eng.EncodeRecent(recent)
					eng.ForwardQuery(visited, 2, 1)
					eng.BackwardQuery(visited, 1, 5, 1)
					_ = eng.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
