// Package hpa implements §VI of the paper: the Hybrid Prediction Algorithm.
//
// Near-time queries run Forward Query Processing (FQP) — retrieve the
// patterns whose premise intersects the object's recent frequent regions
// and whose consequence offset equals the query offset, rank them by
// premise similarity × confidence, and return the top-k consequence
// centers. Distant-time queries run Backward Query Processing (BQP) —
// relax the premise constraint, admit every pattern whose consequence
// offset falls in a widening window around the query time, and rank by a
// penalized premise similarity plus a consequence-time similarity. When no
// pattern qualifies, the motion function answers.
package hpa

import (
	"fmt"
	"sync/atomic"

	"hpm/internal/bitkey"
)

// WeightFunc selects how position weights ω_i are assigned to the '1's of a
// premise key (§VI-A). Later positions — frequent regions closer to the
// consequence time — always weigh more; the functions differ in how sharply.
type WeightFunc int

// The four weight functions of §VI-A. The paper reports the linear and
// quadratic variants predicting best.
const (
	WeightLinear WeightFunc = iota
	WeightQuadratic
	WeightExponential
	WeightFactorial
)

// String implements fmt.Stringer.
func (w WeightFunc) String() string {
	switch w {
	case WeightLinear:
		return "linear"
	case WeightQuadratic:
		return "quadratic"
	case WeightExponential:
		return "exponential"
	case WeightFactorial:
		return "factorial"
	default:
		return fmt.Sprintf("WeightFunc(%d)", int(w))
	}
}

// raw returns the unnormalized weight of ordinal i (1-based).
func (w WeightFunc) raw(i int) float64 {
	switch w {
	case WeightLinear:
		return float64(i)
	case WeightQuadratic:
		return float64(i) * float64(i)
	case WeightExponential:
		// 2^i; ordinals are small (premise sizes), so this stays finite.
		v := 1.0
		for k := 0; k < i; k++ {
			v *= 2
		}
		return v
	case WeightFactorial:
		v := 1.0
		for k := 2; k <= i; k++ {
			v *= float64(k)
		}
		return v
	default:
		panic(fmt.Sprintf("hpa: unknown weight function %d", int(w)))
	}
}

// weightMemoMax bounds the premise lengths whose weight vectors are
// memoized. Premises are capped far below this in practice (the Apriori
// stage limits pattern length); longer requests fall through to a fresh
// computation.
const weightMemoMax = 64

// weightMemo caches Weights(size) per (function, size). Entries are
// published once with a CAS and then shared read-only by every query, so
// premise scoring never allocates in steady state. Concurrent first calls
// may both compute; whichever CAS wins is the vector all callers see —
// the computation is deterministic, so the loser's copy is identical.
var weightMemo [4][weightMemoMax + 1]atomic.Pointer[[]float64]

// Weights returns the normalized weights ω_1..ω_size, which sum to 1 so the
// premise similarity of an exact premise match is exactly 1. The returned
// slice is memoized and shared across callers — treat it as read-only.
func (w WeightFunc) Weights(size int) []float64 {
	if size <= 0 {
		return nil
	}
	if int(w) < 0 || int(w) >= len(weightMemo) || size > weightMemoMax {
		return w.computeWeights(size)
	}
	slot := &weightMemo[w][size]
	if p := slot.Load(); p != nil {
		return *p
	}
	ws := w.computeWeights(size)
	slot.CompareAndSwap(nil, &ws)
	return *slot.Load()
}

// computeWeights builds the normalized weight vector afresh.
func (w WeightFunc) computeWeights(size int) []float64 {
	out := make([]float64, size)
	var sum float64
	for i := 1; i <= size; i++ {
		out[i-1] = w.raw(i)
		sum += out[i-1]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// PremiseSimilarity computes Equation 1: the sum of the weights of the '1's
// of the pattern premise key rk that also appear in the query premise key
// rkq. Weights attach to the ordinals of rk's own '1's counted from the
// right (Property 1: higher ordinal = closer to the consequence time).
func PremiseSimilarity(rk, rkq bitkey.Key, w WeightFunc) float64 {
	// Fast paths cover the bulk of real pattern sets without allocating:
	// no overlap scores 0, and a fully-matched premise scores 1 under any
	// normalized weighting (single-region premises always fall here).
	shared := rk.AndSize(rkq)
	if shared == 0 {
		return 0
	}
	size := rk.Size()
	if shared == size {
		return 1
	}
	ones := rk.Ones()
	weights := w.Weights(len(ones))
	var s float64
	for i, pos := range ones {
		if rkq.Bit(pos) {
			s += weights[i]
		}
	}
	return s
}
