package hpa

import (
	"math"
	"testing"

	"hpm/internal/bitkey"
)

func TestWeightsSumToOne(t *testing.T) {
	for _, w := range []WeightFunc{WeightLinear, WeightQuadratic, WeightExponential, WeightFactorial} {
		for size := 1; size <= 8; size++ {
			ws := w.Weights(size)
			if len(ws) != size {
				t.Fatalf("%s: Weights(%d) length %d", w, size, len(ws))
			}
			var sum float64
			for i, v := range ws {
				sum += v
				if i > 0 && v <= ws[i-1] {
					t.Errorf("%s size %d: weight %d not increasing (%v <= %v)", w, size, i+1, v, ws[i-1])
				}
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%s: Weights(%d) sum %v", w, size, sum)
			}
		}
	}
}

func TestWeightValues(t *testing.T) {
	// Linear over size 2: 1/3, 2/3 — the paper's worked example.
	ws := WeightLinear.Weights(2)
	if math.Abs(ws[0]-1.0/3) > 1e-12 || math.Abs(ws[1]-2.0/3) > 1e-12 {
		t.Errorf("linear weights = %v, want [1/3 2/3]", ws)
	}
	// Quadratic over size 3: 1/14, 4/14, 9/14.
	ws = WeightQuadratic.Weights(3)
	for i, want := range []float64{1.0 / 14, 4.0 / 14, 9.0 / 14} {
		if math.Abs(ws[i]-want) > 1e-12 {
			t.Errorf("quadratic weight %d = %v, want %v", i, ws[i], want)
		}
	}
	// Exponential over size 3: 2/14, 4/14, 8/14.
	ws = WeightExponential.Weights(3)
	for i, want := range []float64{2.0 / 14, 4.0 / 14, 8.0 / 14} {
		if math.Abs(ws[i]-want) > 1e-12 {
			t.Errorf("exponential weight %d = %v, want %v", i, ws[i], want)
		}
	}
	// Factorial over size 3: 1/9, 2/9, 6/9.
	ws = WeightFactorial.Weights(3)
	for i, want := range []float64{1.0 / 9, 2.0 / 9, 6.0 / 9} {
		if math.Abs(ws[i]-want) > 1e-12 {
			t.Errorf("factorial weight %d = %v, want %v", i, ws[i], want)
		}
	}
}

func TestWeightsEmpty(t *testing.T) {
	if got := WeightLinear.Weights(0); got != nil {
		t.Errorf("Weights(0) = %v, want nil", got)
	}
}

func TestWeightString(t *testing.T) {
	names := map[WeightFunc]string{
		WeightLinear:      "linear",
		WeightQuadratic:   "quadratic",
		WeightExponential: "exponential",
		WeightFactorial:   "factorial",
	}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(w), w.String(), want)
		}
	}
}

// The paper's §VI-A examples: similarity(00011, 00011) = 1 and
// similarity(00011, 00010) = 2/3 under the linear weight function.
func TestPremiseSimilarityPaperExamples(t *testing.T) {
	rk := bitkey.MustParse("00011")
	if got := PremiseSimilarity(rk, bitkey.MustParse("00011"), WeightLinear); math.Abs(got-1) > 1e-12 {
		t.Errorf("similarity(00011,00011) = %v, want 1", got)
	}
	if got := PremiseSimilarity(rk, bitkey.MustParse("00010"), WeightLinear); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("similarity(00011,00010) = %v, want 2/3", got)
	}
	// The P3 case from §VI-B: rk=00101 vs rkq=00011 shares only the first
	// '1' of rk, whose ordinal weight is 1/3.
	if got := PremiseSimilarity(bitkey.MustParse("00101"), bitkey.MustParse("00011"), WeightLinear); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("similarity(00101,00011) = %v, want 1/3", got)
	}
}

func TestPremiseSimilarityOrdinalSemantics(t *testing.T) {
	// Weights attach to the ordinals of rk's own ones, not raw positions:
	// rk=10100 has ones at raw positions 3 and 5 with ordinals 1 and 2.
	rk := bitkey.MustParse("10100")
	// Query matching only the higher '1' gets the larger weight 2/3.
	if got := PremiseSimilarity(rk, bitkey.MustParse("10000"), WeightLinear); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("high-position match = %v, want 2/3", got)
	}
	// Query matching only the lower '1' gets 1/3.
	if got := PremiseSimilarity(rk, bitkey.MustParse("00100"), WeightLinear); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("low-position match = %v, want 1/3", got)
	}
}

func TestPremiseSimilarityBounds(t *testing.T) {
	rk := bitkey.MustParse("01110")
	queries := []string{"00000", "01110", "11111", "00010", "10001"}
	for _, qs := range queries {
		got := PremiseSimilarity(rk, bitkey.MustParse(qs), WeightQuadratic)
		if got < 0 || got > 1+1e-12 {
			t.Errorf("similarity(%s) = %v out of [0,1]", qs, got)
		}
	}
	// Empty premise key: similarity is 0 by definition.
	if got := PremiseSimilarity(bitkey.MustParse("00000"), bitkey.MustParse("11111"), WeightLinear); got != 0 {
		t.Errorf("empty premise similarity = %v", got)
	}
}

func BenchmarkPremiseSimilarity(b *testing.B) {
	rk := bitkey.New(800)
	for _, p := range []int{3, 120, 240, 555, 700} {
		rk.Set(p)
	}
	rkq := bitkey.New(800)
	for p := 100; p <= 260; p += 4 {
		rkq.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PremiseSimilarity(rk, rkq, WeightLinear)
	}
}
