package datagen

import (
	"testing"

	"hpm/internal/trajectory"
)

func TestGenerateShape(t *testing.T) {
	for _, k := range Kinds {
		spec := DefaultSpec(k, 1)
		spec.SubTrajectories = 10
		tr := Generate(spec)
		if got, want := tr.Len(), 10*DefaultPeriod; got != want {
			t.Errorf("%s: length %d, want %d", k, got, want)
		}
		for i := 0; i < tr.Len(); i++ {
			if !Extent.Contains(tr.At(i)) {
				t.Fatalf("%s: point %d = %v outside extent", k, i, tr.At(i))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kinds {
		spec := DefaultSpec(k, 99)
		spec.SubTrajectories = 5
		a, b := Generate(spec), Generate(spec)
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ", k)
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("%s: point %d differs: %v vs %v", k, i, a.At(i), b.At(i))
			}
		}
		spec2 := spec
		spec2.Seed = 100
		c := Generate(spec2)
		same := true
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != c.At(i) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical data", k)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Bike: "Bike", Cow: "Cow", Car: "Car", Airplane: "Airplane"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("String(%d) = %q", int(k), k.String())
		}
		back, err := ParseKind(want)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseKind("Submarine"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
}

// recurrentFraction measures pattern strength directly: the fraction of
// days that have a near-twin — another day whose mean per-offset distance
// is small. Days following a recurring route have twins; fresh random days
// do not. The datasets must keep the paper's strength ordering
// Bike > Airplane.
func recurrentFraction(t *testing.T, k Kind) float64 {
	t.Helper()
	spec := DefaultSpec(k, 7)
	spec.SubTrajectories = 50
	tr := Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	n := len(subs)
	meanDist := func(a, b int) float64 {
		var total float64
		count := 0
		for off := 0; off < spec.Period; off += 10 {
			total += subs[a].Points[off].Dist(subs[b].Points[off])
			count++
		}
		return total / float64(count)
	}
	recurrent := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && meanDist(a, b) < 400 {
				recurrent++
				break
			}
		}
	}
	return float64(recurrent) / float64(n)
}

func TestPatternStrengthOrdering(t *testing.T) {
	bike := recurrentFraction(t, Bike)
	air := recurrentFraction(t, Airplane)
	if bike <= air {
		t.Errorf("recurrent fraction Bike %v not above Airplane %v", bike, air)
	}
	if bike < 0.7 {
		t.Errorf("Bike recurrent fraction %v implausibly low", bike)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := (Spec{Kind: Car}).withDefaults()
	if s.Period != DefaultPeriod || s.SubTrajectories != DefaultSubTrajectories {
		t.Errorf("defaults not applied: %+v", s)
	}
	f, noise := kindDefaults(Car)
	if s.FollowProb != f || s.Noise != noise {
		t.Errorf("kind defaults not applied: %+v", s)
	}
}

func TestSubTrajectoryDecomposition(t *testing.T) {
	spec := DefaultSpec(Cow, 3)
	spec.SubTrajectories = 8
	tr := Generate(spec)
	subs, err := tr.Decompose(spec.Period)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 8 {
		t.Fatalf("decomposed into %d subs, want 8", len(subs))
	}
	var _ []trajectory.SubTrajectory = subs
}

func TestCarRouteHasSharpTurns(t *testing.T) {
	// The Car seed must include 90-degree direction changes: consecutive
	// movement vectors that are near-orthogonal.
	spec := DefaultSpec(Car, 5)
	spec.SubTrajectories = 1
	spec.Noise = 0.001 // expose the raw route
	spec.FollowProb = 1
	tr := Generate(spec)
	turns := 0
	for i := 2; i < tr.Len(); i++ {
		v1 := tr.At(i - 1).Sub(tr.At(i - 2))
		v2 := tr.At(i).Sub(tr.At(i - 1))
		if v1.Norm() < 1 || v2.Norm() < 1 {
			continue
		}
		cos := (v1.X*v2.X + v1.Y*v2.Y) / (v1.Norm() * v2.Norm())
		if cos < 0.3 && cos > -0.3 {
			turns++
		}
	}
	if turns == 0 {
		t.Error("car route has no sharp turns")
	}
}

func TestAirplaneFasterThanCow(t *testing.T) {
	speed := func(k Kind) float64 {
		spec := DefaultSpec(k, 11)
		spec.SubTrajectories = 2
		spec.Noise = 0.001
		spec.FollowProb = 1
		tr := Generate(spec)
		var total float64
		for i := 1; i < tr.Len(); i++ {
			total += tr.At(i).Dist(tr.At(i - 1))
		}
		return total / float64(tr.Len()-1)
	}
	if speed(Airplane) <= speed(Cow) {
		t.Error("airplane not faster than cow")
	}
}
