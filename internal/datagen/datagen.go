// Package datagen synthesizes the four evaluation datasets of §VII.
//
// The paper seeds its data with four real movement traces — a GPS-collared
// cow, a car on Seoul's Tehran road, a bike tour between Australian towns,
// and a synthetic airplane over Californian airports — then generates 199
// similar sub-trajectories per seed with the modified periodic data
// generator of Mamoulis et al. (KDD 2004), using a per-dataset probability
// f that a generated sub-trajectory follows the seed
// (Bike > Cow > Car > Airplane), period T = 300, and extent normalized to
// [0,10000]².
//
// The raw GPS seeds are not publicly available, so this package synthesizes
// seeds with the same motion character (wandering animal, road-grid car
// with sharp turns, smooth inter-town ride, airport-leg flights) and then
// applies the paper's own generation methodology. Pattern-follow
// probability and per-offset noise are ordered so the datasets keep the
// paper's pattern-strength ordering; everything is deterministic in the
// spec's Seed.
package datagen

import (
	"fmt"
	"math/rand"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// Kind identifies one of the paper's four datasets.
type Kind int

// The four datasets, ordered by decreasing pattern strength as in §VII.
const (
	Bike Kind = iota
	Cow
	Car
	Airplane
)

// Kinds lists all datasets in the paper's pattern-strength order.
var Kinds = []Kind{Bike, Cow, Car, Airplane}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Bike:
		return "Bike"
	case Cow:
		return "Cow"
	case Car:
		return "Car"
	case Airplane:
		return "Airplane"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a dataset name (case-sensitive, as printed by String).
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("datagen: unknown dataset %q", s)
}

// Spec describes a dataset to generate.
type Spec struct {
	Kind            Kind
	Period          int     // T; <= 0 defaults to DefaultPeriod
	SubTrajectories int     // days to generate; <= 0 defaults to DefaultSubTrajectories
	FollowProb      float64 // f; <= 0 defaults per kind
	Noise           float64 // per-offset location noise σ; <= 0 defaults per kind
	Seed            int64   // PRNG seed; the same spec always yields the same data
}

// Paper-default sizes.
const (
	DefaultPeriod          = 300
	DefaultSubTrajectories = 200
)

// Extent is the normalized data space of the paper.
var Extent = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}

// kindDefaults returns (follow probability, noise) per dataset. The
// ordering Bike > Cow > Car > Airplane matches §VII; noise rises as
// pattern strength falls. Noise is calibrated against DBSCAN's defaults
// (Eps 30, MinPts 4, 60 sub-trajectories): Bike's followers cluster from
// Eps 22 onward, Cow's and Car's slightly later, while Airplane's sparse
// followers (f = 0.50 split across five routes of ~6-7 days each, at noise
// 35) only densify in the upper half of the 22..38 sweep — reproducing the
// Figure 7 observation that Airplane lacks sufficient patterns until Eps
// reaches 34.
func kindDefaults(k Kind) (f, noise float64) {
	switch k {
	case Bike:
		return 0.90, 9
	case Cow:
		return 0.75, 13
	case Car:
		return 0.60, 16
	case Airplane:
		return 0.50, 35
	default:
		return 0.5, 15
	}
}

// DefaultSpec returns the paper-default spec for a dataset.
func DefaultSpec(k Kind, seed int64) Spec {
	f, noise := kindDefaults(k)
	return Spec{
		Kind:            k,
		Period:          DefaultPeriod,
		SubTrajectories: DefaultSubTrajectories,
		FollowProb:      f,
		Noise:           noise,
		Seed:            seed,
	}
}

func (s Spec) withDefaults() Spec {
	if s.Period <= 0 {
		s.Period = DefaultPeriod
	}
	if s.SubTrajectories <= 0 {
		s.SubTrajectories = DefaultSubTrajectories
	}
	f, noise := kindDefaults(s.Kind)
	if s.FollowProb <= 0 {
		s.FollowProb = f
	}
	if s.Noise <= 0 {
		s.Noise = noise
	}
	return s
}

// routeMixture returns the relative weights of the dataset's recurring
// routes. A generated day that follows the pattern (probability
// FollowProb) picks one of these routes; the weights make some routes
// rare, which is what puts confidence spread into the mined rules (the
// paper's Jane follows the city route on weekdays and the shopping-center
// route on weekends) and what makes the MinPts and minimum-confidence
// sweeps of Figures 8 and 9 bite.
func routeMixture(k Kind) []float64 {
	switch k {
	case Bike:
		return []float64{0.55, 0.30, 0.15}
	case Cow:
		return []float64{0.60, 0.25, 0.15}
	case Car:
		return []float64{0.50, 0.25, 0.15, 0.10}
	case Airplane:
		return []float64{0.25, 0.22, 0.20, 0.18, 0.15}
	default:
		return []float64{1}
	}
}

// Generate produces the dataset: SubTrajectories consecutive periods of
// Period timestamps each, concatenated into one trajectory. With
// probability FollowProb a day follows one of the dataset's recurring
// routes (chosen by the mixture weights, plus Gaussian noise); otherwise it
// travels a fresh random route of the same motion character. All recurring
// routes share an initial prefix — the object leaves the same "home" every
// day — so early-offset frequent regions are shared across routes and the
// mined rules split their confidence the way the paper's examples do.
func Generate(spec Spec) *trajectory.Trajectory {
	spec = spec.withDefaults()
	r := rand.New(rand.NewSource(spec.Seed))
	gen := seederFor(spec.Kind)
	weights := routeMixture(spec.Kind)

	routes := make([][]geom.Point, len(weights))
	shared := spec.Period / 6
	blend := spec.Period / 10
	for i := range routes {
		routes[i] = gen(r, spec.Period)
		if i > 0 {
			// Share the home prefix, then blend into the route so there is
			// no teleport at the splice.
			copy(routes[i][:shared], routes[0][:shared])
			for t := shared; t < shared+blend && t < spec.Period; t++ {
				alpha := float64(t-shared+1) / float64(blend+1)
				routes[i][t] = routes[0][t].Lerp(routes[i][t], alpha)
			}
		}
	}

	tr := trajectory.New(make([]geom.Point, 0, spec.Period*spec.SubTrajectories))
	for day := 0; day < spec.SubTrajectories; day++ {
		var route []geom.Point
		if r.Float64() < spec.FollowProb {
			route = routes[pickWeighted(r, weights)]
		} else {
			route = gen(r, spec.Period)
		}
		for _, p := range route {
			q := geom.Pt(p.X+r.NormFloat64()*spec.Noise, p.Y+r.NormFloat64()*spec.Noise)
			tr.Append(Extent.Clamp(q))
		}
	}
	return tr
}

// pickWeighted draws an index proportionally to weights.
func pickWeighted(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// seederFor returns the per-kind seed-route generator.
func seederFor(k Kind) func(r *rand.Rand, period int) []geom.Point {
	switch k {
	case Bike:
		return bikeRoute
	case Cow:
		return cowRoute
	case Car:
		return carRoute
	case Airplane:
		return airplaneRoute
	default:
		return cowRoute
	}
}

// bikeRoute is a smooth ride between two towns: a gently curved path from
// near one corner of the space to the other, the strongest of the four
// patterns.
func bikeRoute(r *rand.Rand, period int) []geom.Point {
	start := geom.Pt(500+r.Float64()*800, 500+r.Float64()*800)
	end := geom.Pt(8700+r.Float64()*800, 8700+r.Float64()*800)
	// Two interior control points bend the path.
	c1 := geom.Pt(2000+r.Float64()*2000, 3000+r.Float64()*3000)
	c2 := geom.Pt(6000+r.Float64()*2000, 4000+r.Float64()*3000)
	pts := make([]geom.Point, period)
	for i := range pts {
		t := float64(i) / float64(period-1)
		pts[i] = cubicBezier(start, c1, c2, end, t)
	}
	return pts
}

// cubicBezier evaluates the Bezier curve through the four control points.
func cubicBezier(p0, p1, p2, p3 geom.Point, t float64) geom.Point {
	u := 1 - t
	a := u * u * u
	b := 3 * u * u * t
	c := 3 * u * t * t
	d := t * t * t
	return geom.Pt(
		a*p0.X+b*p1.X+c*p2.X+d*p3.X,
		a*p0.Y+b*p1.Y+c*p2.Y+d*p3.Y,
	)
}

// cowRoute wanders between grazing waypoints inside a paddock: slow,
// smooth, with long dwells — the virtual-fencing cattle trace.
func cowRoute(r *rand.Rand, period int) []geom.Point {
	paddock := geom.Rect{Min: geom.Pt(2000, 2000), Max: geom.Pt(8000, 8000)}
	pos := geom.Pt(
		paddock.Min.X+r.Float64()*paddock.Width(),
		paddock.Min.Y+r.Float64()*paddock.Height(),
	)
	pts := make([]geom.Point, 0, period)
	for len(pts) < period {
		target := geom.Pt(
			paddock.Min.X+r.Float64()*paddock.Width(),
			paddock.Min.Y+r.Float64()*paddock.Height(),
		)
		steps := 20 + r.Intn(40) // amble toward the next grazing spot
		for s := 0; s < steps && len(pts) < period; s++ {
			pos = pos.Lerp(target, 0.08)
			pts = append(pts, pos)
		}
		dwell := 5 + r.Intn(15) // graze
		for s := 0; s < dwell && len(pts) < period; s++ {
			pts = append(pts, pos)
		}
	}
	return pts
}

// carRoute drives a Manhattan grid: pick a sequence of intersections and
// travel the axis-aligned streets between them at constant speed. The
// 90-degree turns at intersections are the sudden direction changes the
// paper calls out for the Car dataset.
func carRoute(r *rand.Rand, period int) []geom.Point {
	const block = 500.0 // street spacing
	gridPt := func() geom.Point {
		return geom.Pt(float64(2+r.Intn(17))*block, float64(2+r.Intn(17))*block)
	}
	pos := gridPt()
	pts := make([]geom.Point, 0, period)
	pts = append(pts, pos)
	for len(pts) < period {
		target := gridPt()
		// Manhattan route: first along x, then along y (or the reverse).
		mid := geom.Pt(target.X, pos.Y)
		if r.Intn(2) == 0 {
			mid = geom.Pt(pos.X, target.Y)
		}
		for _, leg := range []geom.Point{mid, target} {
			dist := pos.Dist(leg)
			steps := int(dist/120) + 1 // ~120 units per timestamp
			for s := 1; s <= steps && len(pts) < period; s++ {
				pts = append(pts, pos.Lerp(leg, float64(s)/float64(steps)))
			}
			pos = leg
			if len(pts) >= period {
				break
			}
		}
		// Brief stop at the destination (traffic light, parking).
		stop := r.Intn(5)
		for s := 0; s < stop && len(pts) < period; s++ {
			pts = append(pts, pos)
		}
	}
	return pts[:period]
}

// airplaneRoute flies straight legs between randomly chosen airports with
// dwells on the ground, mirroring the paper's construction of random
// locations on segments connecting random airports. Each call picks fresh
// airports, so even the seed route repeats weakly across days.
func airplaneRoute(r *rand.Rand, period int) []geom.Point {
	// A fixed continental airport layout shared by all routes: derived
	// deterministically so different routes reuse the same airports the
	// way real flights reuse real airports.
	layout := rand.New(rand.NewSource(424242))
	airports := make([]geom.Point, 12)
	for i := range airports {
		airports[i] = geom.Pt(500+layout.Float64()*9000, 500+layout.Float64()*9000)
	}
	pos := airports[r.Intn(len(airports))]
	pts := make([]geom.Point, 0, period)
	for len(pts) < period {
		target := airports[r.Intn(len(airports))]
		if target == pos {
			continue
		}
		dist := pos.Dist(target)
		steps := int(dist/250) + 1 // fast cruise
		for s := 1; s <= steps && len(pts) < period; s++ {
			pts = append(pts, pos.Lerp(target, float64(s)/float64(steps)))
		}
		pos = target
		ground := 10 + r.Intn(30) // turnaround on the ground
		for s := 0; s < ground && len(pts) < period; s++ {
			pts = append(pts, pos)
		}
	}
	return pts[:period]
}
