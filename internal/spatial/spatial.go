// Package spatial maintains a concurrent uniform-grid index over the fleet's
// *predicted* positions, answering the inverse of the per-object query
// surface: "which objects are predicted inside rect R at horizon h?" and
// "which k objects are predicted nearest P at horizon h?".
//
// The index is maintained incrementally, never on the query path. On every
// acknowledged observation (and on every predictor swap) the owner recomputes
// the object's predictions at a small set of fixed horizon buckets — the same
// buckets the online evaluator scores against — and re-bins the entries into
// grid cells. Queries therefore touch only cached positions: no model is
// fitted and no trajectory-pattern tree is walked while answering a fleet
// query, which is what makes range/kNN sub-linear in fleet size.
//
// Between observations an entry can optionally age: its position is
// extrapolated by the object's clamped per-tick velocity for up to MaxAgeTicks
// ticks (wall clock × TickHz), and entries unrefreshed for longer than
// Staleness stop being reported — the velocity-decay/staleness idiom of
// fixed-rate prediction publishers. With TickHz = 0 (the default) aging is
// off and query answers are bit-identical to recomputing every prediction
// from scratch, a property the store's tests pin.
package spatial

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpm/internal/geom"
)

// DefaultHorizons mirrors evalq.DefaultBuckets so indexed horizons line up
// with the online evaluator's accuracy matrix: a query at horizon h is
// answered from the first bucket >= h.
var DefaultHorizons = []int{5, 10, 20, 50, 100, 200}

const (
	defaultMaxAgeTicks = 30
	numStripes         = 64 // power of two
	numShards          = 16 // power of two
)

// Config shapes one Index. The zero value is unusable; CellSize must be
// positive. Config is part of store snapshot options, so every field except
// the test clock must be JSON-serializable.
type Config struct {
	// CellSize is the grid pitch in world units. Smaller cells mean fewer
	// false candidates per query but more re-bins as objects move.
	CellSize float64 `json:"cell_size"`

	// Horizons are the prediction offsets (ticks ahead of each object's
	// latest observation) cached per object, ascending. Empty means
	// DefaultHorizons. A query horizon is quantized to the first bucket
	// >= h; beyond the last it clamps to the last.
	Horizons []int `json:"horizons,omitempty"`

	// MaxSpeed clamps the per-tick velocity stored with each entry (and
	// thereby the aging drift). Zero disables aging movement entirely.
	MaxSpeed float64 `json:"max_speed,omitempty"`

	// Staleness hides entries not refreshed within this window; zero keeps
	// entries visible until the object is removed.
	Staleness time.Duration `json:"staleness,omitempty"`

	// TickHz converts wall-clock seconds into logical ticks for aging.
	// Zero (default) disables aging: queries return exactly the cached
	// positions, which keeps indexed answers identical to a fresh scan.
	TickHz float64 `json:"tick_hz,omitempty"`

	// MaxAgeTicks caps how far an entry extrapolates past its observation
	// (default 30 ticks), bounding both drift and the query inflation that
	// must account for it.
	MaxAgeTicks int `json:"max_age_ticks,omitempty"`

	// Now injects a clock for staleness/aging tests. Nil means time.Now.
	Now func() time.Time `json:"-"`
}

func (c Config) withDefaults() Config {
	if len(c.Horizons) == 0 {
		c.Horizons = DefaultHorizons
	}
	if c.MaxAgeTicks <= 0 {
		c.MaxAgeTicks = defaultMaxAgeTicks
	}
	if c.TickHz > 0 && c.MaxSpeed <= 0 {
		// Aging without a clamp would make query inflation unbounded;
		// default to half a cell per tick.
		c.MaxSpeed = c.CellSize / 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Entry is one cached prediction handed to Update: the object's predicted
// position Horizon ticks after its latest observation, the per-tick velocity
// used for aging, and the answering-path tag ("forward", "backward",
// "fallback", or "extrapolation" for untrained objects).
type Entry struct {
	Horizon int
	Pos     geom.Point
	Vel     geom.Point
	Path    string
}

// Result is one query answer: the (possibly aged) predicted position of an
// object at the quantized horizon. Dist is filled by Nearest.
type Result struct {
	ID      string
	Pos     geom.Point
	Path    string
	Horizon int
	Dist    float64
}

// Stats is a point-in-time snapshot of index shape and traffic.
type Stats struct {
	Objects      int64 `json:"objects"`
	Entries      int64 `json:"entries"`
	Updates      int64 `json:"updates"`
	Rebins       int64 `json:"rebins"`
	RangeQueries int64 `json:"range_queries"`
	KNNQueries   int64 `json:"knn_queries"`
}

type cellKey struct {
	cx, cy int32
	b      uint8 // horizon bucket index
}

// gridEntry is the cell-resident payload; the owning map key carries the id.
type gridEntry struct {
	pos  geom.Point
	vel  geom.Point
	path string
	obs  int64 // unixnano of the update that produced this entry
}

type stripe struct {
	mu    sync.RWMutex
	cells map[cellKey]map[string]gridEntry
}

type slot struct {
	ok  bool
	key cellKey
	ge  gridEntry // last value written, for unchanged-entry elision
}

// objState serializes updates for one object; its slots remember which cell
// each horizon bucket currently occupies so unchanged entries re-bin with a
// single in-place write.
type objState struct {
	mu    sync.Mutex
	slots []slot
}

type objShard struct {
	mu sync.Mutex
	m  map[string]*objState
}

type cellBounds struct {
	ok                     bool
	minX, minY, maxX, maxY int32
}

// Index is the concurrent grid. All methods are safe for arbitrary
// interleaving; per-object update order is the caller's responsibility
// (the store calls Update under the object's write lock).
type Index struct {
	cfg     Config
	stripes [numStripes]stripe
	shards  [numShards]objShard

	// bbox bounds the occupied cells (never shrinks); it caps cell
	// iteration for huge rects and terminates kNN ring expansion.
	bboxMu sync.Mutex
	bbox   cellBounds

	objects      atomic.Int64
	entries      atomic.Int64
	updates      atomic.Int64
	rebins       atomic.Int64
	rangeQueries atomic.Int64
	knnQueries   atomic.Int64
}

// New builds an empty index. It panics if CellSize is not positive — the
// store validates user input before constructing one.
func New(cfg Config) *Index {
	cfg = cfg.withDefaults()
	if cfg.CellSize <= 0 {
		panic("spatial: CellSize must be positive")
	}
	ix := &Index{cfg: cfg}
	for i := range ix.stripes {
		ix.stripes[i].cells = make(map[cellKey]map[string]gridEntry)
	}
	for i := range ix.shards {
		ix.shards[i].m = make(map[string]*objState)
	}
	return ix
}

// Horizons returns the configured horizon buckets (not a copy; treat as
// read-only).
func (ix *Index) Horizons() []int { return ix.cfg.Horizons }

// Timed reports whether entry timestamps affect query answers (staleness
// expiry or aging configured). An untimed index lets callers skip refreshes
// whose entries would be byte-identical to what is already stored.
func (ix *Index) Timed() bool { return ix.cfg.Staleness > 0 || ix.cfg.TickHz > 0 }

// BucketHorizon quantizes a query horizon to the bucket it is answered from:
// the first configured horizon >= h, clamping to the last beyond it.
func (ix *Index) BucketHorizon(h int) int {
	return ix.cfg.Horizons[ix.bucket(h)]
}

func (ix *Index) bucket(h int) uint8 {
	for i, bh := range ix.cfg.Horizons {
		if h <= bh {
			return uint8(i)
		}
	}
	return uint8(len(ix.cfg.Horizons) - 1)
}

func (ix *Index) cellOf(p geom.Point, b uint8) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / ix.cfg.CellSize)),
		cy: int32(math.Floor(p.Y / ix.cfg.CellSize)),
		b:  b,
	}
}

func (ix *Index) stripeFor(k cellKey) *stripe {
	h := uint32(k.cx)*0x9E3779B1 ^ uint32(k.cy)*0x85EBCA77 ^ uint32(k.b)*0xC2B2AE3D
	h ^= h >> 15
	return &ix.stripes[h&(numStripes-1)]
}

func (ix *Index) shardFor(id string) *objShard {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &ix.shards[h&(numShards-1)]
}

func (ix *Index) expandBBox(k cellKey) {
	ix.bboxMu.Lock()
	if !ix.bbox.ok {
		ix.bbox = cellBounds{ok: true, minX: k.cx, minY: k.cy, maxX: k.cx, maxY: k.cy}
	} else {
		if k.cx < ix.bbox.minX {
			ix.bbox.minX = k.cx
		}
		if k.cy < ix.bbox.minY {
			ix.bbox.minY = k.cy
		}
		if k.cx > ix.bbox.maxX {
			ix.bbox.maxX = k.cx
		}
		if k.cy > ix.bbox.maxY {
			ix.bbox.maxY = k.cy
		}
	}
	ix.bboxMu.Unlock()
}

func (ix *Index) loadBBox() cellBounds {
	ix.bboxMu.Lock()
	b := ix.bbox
	ix.bboxMu.Unlock()
	return b
}

// clampVel limits v to MaxSpeed per tick (the snippet-1 _clamp_speed idiom).
func (ix *Index) clampVel(v geom.Point) geom.Point {
	if ix.cfg.MaxSpeed <= 0 {
		return geom.Point{}
	}
	if n2 := v.X*v.X + v.Y*v.Y; n2 > ix.cfg.MaxSpeed*ix.cfg.MaxSpeed {
		return v.Scale(ix.cfg.MaxSpeed / math.Sqrt(n2))
	}
	return v
}

// bucketExact maps an entry's Horizon to its bucket index; a linear scan of
// the small horizon table beats a map lookup on the update hot path.
func (ix *Index) bucketExact(h int) (uint8, bool) {
	for i, bh := range ix.cfg.Horizons {
		if bh == h {
			return uint8(i), true
		}
	}
	return 0, false
}

// Update replaces the object's cached entries. Entries whose Horizon is not
// a configured bucket are ignored. Entries occupying the same cell as before
// are overwritten in place; movers are removed from the old cell and inserted
// into the new one (a "re-bin").
func (ix *Index) Update(id string, entries []Entry) {
	sh := ix.shardFor(id)
	sh.mu.Lock()
	st := sh.m[id]
	if st == nil {
		st = &objState{slots: make([]slot, len(ix.cfg.Horizons))}
		sh.m[id] = st
		ix.objects.Add(1)
	}
	sh.mu.Unlock()

	// The timestamp only matters when queries apply staleness or aging;
	// skipping the clock (and the unchanged-entry elision below) keeps the
	// per-observe maintenance cost near the floor in the default config.
	timed := ix.Timed()
	var now int64
	if timed {
		now = ix.cfg.Now().UnixNano()
	}
	ix.updates.Add(1)

	st.mu.Lock()
	seen := 0 // bitmask of bucket indices present in entries
	for _, e := range entries {
		b, ok := ix.bucketExact(e.Horizon)
		if !ok {
			continue
		}
		seen |= 1 << b
		ge := gridEntry{pos: e.Pos, vel: ix.clampVel(e.Vel), path: e.Path, obs: now}
		sl := &st.slots[b]
		// Stationary case: the cached value is already exact (equal position
		// implies equal cell), and with aging off the timestamp is never
		// read — skip the cell math and the map write entirely.
		if sl.ok && !timed && ge == sl.ge {
			continue
		}
		key := ix.cellOf(e.Pos, b)
		if sl.ok && sl.key == key {
			sl.ge = ge
			s := ix.stripeFor(key)
			s.mu.Lock()
			s.cells[key][id] = ge
			s.mu.Unlock()
			continue
		}
		if sl.ok {
			ix.removeFromCell(sl.key, id)
			ix.rebins.Add(1)
		} else {
			ix.entries.Add(1)
		}
		ix.insertIntoCell(key, id, ge)
		sl.ok, sl.key, sl.ge = true, key, ge
	}
	// Buckets absent from this update (e.g. a predictor that stopped
	// answering a horizon) are dropped so queries never see ghosts.
	for b := range st.slots {
		if seen&(1<<b) == 0 && st.slots[b].ok {
			ix.removeFromCell(st.slots[b].key, id)
			st.slots[b].ok = false
			ix.entries.Add(-1)
		}
	}
	st.mu.Unlock()
}

func (ix *Index) insertIntoCell(k cellKey, id string, ge gridEntry) {
	s := ix.stripeFor(k)
	s.mu.Lock()
	c := s.cells[k]
	if c == nil {
		c = make(map[string]gridEntry)
		s.cells[k] = c
	}
	c[id] = ge
	s.mu.Unlock()
	ix.expandBBox(k)
}

func (ix *Index) removeFromCell(k cellKey, id string) {
	s := ix.stripeFor(k)
	s.mu.Lock()
	if c := s.cells[k]; c != nil {
		delete(c, id)
		if len(c) == 0 {
			delete(s.cells, k)
		}
	}
	s.mu.Unlock()
}

// Remove drops every entry for id. Idempotent.
func (ix *Index) Remove(id string) {
	sh := ix.shardFor(id)
	sh.mu.Lock()
	st := sh.m[id]
	if st != nil {
		delete(sh.m, id)
		ix.objects.Add(-1)
	}
	sh.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	for b := range st.slots {
		if st.slots[b].ok {
			ix.removeFromCell(st.slots[b].key, id)
			st.slots[b].ok = false
			ix.entries.Add(-1)
		}
	}
	st.mu.Unlock()
}

// age applies staleness expiry and velocity extrapolation to one entry,
// returning its effective position at `now`.
func (ix *Index) age(ge gridEntry, now time.Time) (geom.Point, bool) {
	elapsed := now.Sub(time.Unix(0, ge.obs))
	if ix.cfg.Staleness > 0 && elapsed > ix.cfg.Staleness {
		return geom.Point{}, false
	}
	if ix.cfg.TickHz <= 0 {
		return ge.pos, true
	}
	dt := elapsed.Seconds() * ix.cfg.TickHz
	if dt < 0 {
		dt = 0
	}
	if m := float64(ix.cfg.MaxAgeTicks); dt > m {
		dt = m
	}
	return ge.pos.Add(ge.vel.Scale(dt)), true
}

// slack is how far an aged position can sit from its recorded cell; query
// candidate collection inflates by it so aging never loses answers.
func (ix *Index) slack() float64 {
	if ix.cfg.TickHz <= 0 {
		return 0
	}
	return ix.cfg.MaxSpeed * float64(ix.cfg.MaxAgeTicks)
}

// Range returns every object whose cached prediction at the bucket for
// `horizon` lies inside r (after aging), sorted by id.
func (ix *Index) Range(r geom.Rect, horizon int) []Result {
	ix.rangeQueries.Add(1)
	bb := ix.loadBBox()
	if !bb.ok || !r.IsValid() {
		return nil
	}
	b := ix.bucket(horizon)
	bh := ix.cfg.Horizons[b]
	now := ix.cfg.Now()

	search := r.Inflate(ix.slack())
	cx0 := maxI32(int32(math.Floor(search.Min.X/ix.cfg.CellSize)), bb.minX)
	cx1 := minI32(int32(math.Floor(search.Max.X/ix.cfg.CellSize)), bb.maxX)
	cy0 := maxI32(int32(math.Floor(search.Min.Y/ix.cfg.CellSize)), bb.minY)
	cy1 := minI32(int32(math.Floor(search.Max.Y/ix.cfg.CellSize)), bb.maxY)

	var out []Result
	var scratch []idEntry
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			scratch = ix.readCell(cellKey{cx: cx, cy: cy, b: b}, scratch[:0])
			for _, ie := range scratch {
				pos, live := ix.age(ie.ge, now)
				if live && r.Contains(pos) {
					out = append(out, Result{ID: ie.id, Pos: pos, Path: ie.ge.path, Horizon: bh})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type idEntry struct {
	id string
	ge gridEntry
}

// readCell copies one cell's entries out under the stripe read lock.
func (ix *Index) readCell(k cellKey, buf []idEntry) []idEntry {
	s := ix.stripeFor(k)
	s.mu.RLock()
	for id, ge := range s.cells[k] {
		buf = append(buf, idEntry{id: id, ge: ge})
	}
	s.mu.RUnlock()
	return buf
}

// Nearest returns the k objects whose cached predictions at the bucket for
// `horizon` are closest to p, ascending by (distance, id). It expands rings
// of cells outward from p and stops once the kth best distance provably
// cannot improve: every entry recorded in ring rho+1 is at least
// rho*CellSize - slack away.
func (ix *Index) Nearest(p geom.Point, k, horizon int) []Result {
	ix.knnQueries.Add(1)
	bb := ix.loadBBox()
	if !bb.ok || k <= 0 {
		return nil
	}
	b := ix.bucket(horizon)
	bh := ix.cfg.Horizons[b]
	now := ix.cfg.Now()
	slack := ix.slack()

	ccx := int32(math.Floor(p.X / ix.cfg.CellSize))
	ccy := int32(math.Floor(p.Y / ix.cfg.CellSize))

	var best []Result
	var scratch []idEntry
	visit := func(cx, cy int32) {
		if cx < bb.minX || cx > bb.maxX || cy < bb.minY || cy > bb.maxY {
			return
		}
		scratch = ix.readCell(cellKey{cx: cx, cy: cy, b: b}, scratch[:0])
		for _, ie := range scratch {
			pos, live := ix.age(ie.ge, now)
			if !live {
				continue
			}
			best = append(best, Result{ID: ie.id, Pos: pos, Path: ie.ge.path, Horizon: bh, Dist: pos.Dist(p)})
		}
	}

	for rho := int32(0); ; rho++ {
		if rho == 0 {
			visit(ccx, ccy)
		} else {
			for cx := ccx - rho; cx <= ccx+rho; cx++ {
				visit(cx, ccy-rho)
				visit(cx, ccy+rho)
			}
			for cy := ccy - rho + 1; cy <= ccy+rho-1; cy++ {
				visit(ccx-rho, cy)
				visit(ccx+rho, cy)
			}
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].Dist != best[j].Dist {
				return best[i].Dist < best[j].Dist
			}
			return best[i].ID < best[j].ID
		})
		if len(best) > k {
			best = best[:k]
		}
		// Ring rho+1 entries are recorded >= rho*CellSize from anywhere
		// in the center cell; aging can pull them slack closer.
		if len(best) == k && best[k-1].Dist <= float64(rho)*ix.cfg.CellSize-slack {
			break
		}
		// The next ring would lie entirely outside the occupied bbox.
		if ccx-rho <= bb.minX && ccx+rho >= bb.maxX && ccy-rho <= bb.minY && ccy+rho >= bb.maxY {
			break
		}
	}
	return best
}

// Stats snapshots the index counters.
func (ix *Index) Stats() Stats {
	return Stats{
		Objects:      ix.objects.Load(),
		Entries:      ix.entries.Load(),
		Updates:      ix.updates.Load(),
		Rebins:       ix.rebins.Load(),
		RangeQueries: ix.rangeQueries.Load(),
		KNNQueries:   ix.knnQueries.Load(),
	}
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
