package spatial

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpm/internal/geom"
)

func TestBucketHorizon(t *testing.T) {
	ix := New(Config{CellSize: 100})
	cases := map[int]int{1: 5, 5: 5, 6: 10, 10: 10, 11: 20, 50: 50, 51: 100, 200: 200, 201: 200, 10000: 200}
	for h, want := range cases {
		if got := ix.BucketHorizon(h); got != want {
			t.Errorf("BucketHorizon(%d) = %d, want %d", h, got, want)
		}
	}
}

// randomIndex fills an index with n objects at one horizon set and returns
// the ground-truth entries for brute-force comparison.
func randomIndex(t *testing.T, n int, rng *rand.Rand) (*Index, map[string]map[int]geom.Point) {
	t.Helper()
	ix := New(Config{CellSize: 250})
	truth := make(map[string]map[int]geom.Point, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("obj-%04d", i)
		entries := make([]Entry, 0, len(ix.Horizons()))
		truth[id] = make(map[int]geom.Point)
		for _, h := range ix.Horizons() {
			p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			entries = append(entries, Entry{Horizon: h, Pos: p, Path: "fallback"})
			truth[id][h] = p
		}
		ix.Update(id, entries)
	}
	return ix, truth
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix, truth := randomIndex(t, 500, rng)
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Float64()*9000, rng.Float64()*9000
		r := geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+rng.Float64()*3000, y+rng.Float64()*3000)}
		h := []int{3, 10, 42, 150, 999}[trial%5]
		bh := ix.BucketHorizon(h)

		var want []string
		for id, m := range truth {
			if r.Contains(m[bh]) {
				want = append(want, id)
			}
		}
		sort.Strings(want)

		got := ix.Range(r, h)
		var gotIDs []string
		for _, res := range got {
			gotIDs = append(gotIDs, res.ID)
			if res.Pos != truth[res.ID][bh] {
				t.Fatalf("trial %d: %s pos %v, want %v", trial, res.ID, res.Pos, truth[res.ID][bh])
			}
			if res.Horizon != bh {
				t.Fatalf("trial %d: horizon %d, want %d", trial, res.Horizon, bh)
			}
		}
		if !equalStrings(gotIDs, want) {
			t.Fatalf("trial %d: range mismatch: got %d ids, want %d", trial, len(gotIDs), len(want))
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix, truth := randomIndex(t, 400, rng)
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		k := 1 + rng.Intn(20)
		h := []int{5, 20, 77}[trial%3]
		bh := ix.BucketHorizon(h)

		type cand struct {
			id string
			d  float64
		}
		var all []cand
		for id, m := range truth {
			all = append(all, cand{id, m[bh].Dist(p)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})

		got := ix.Nearest(p, k, h)
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i, res := range got {
			if res.ID != all[i].id {
				t.Fatalf("trial %d: rank %d = %s (d=%.2f), want %s (d=%.2f)",
					trial, i, res.ID, res.Dist, all[i].id, all[i].d)
			}
		}
	}
}

func TestNearestMoreThanPopulation(t *testing.T) {
	ix := New(Config{CellSize: 100})
	ix.Update("a", []Entry{{Horizon: 5, Pos: geom.Pt(10, 10)}})
	ix.Update("b", []Entry{{Horizon: 5, Pos: geom.Pt(5000, 5000)}})
	got := ix.Nearest(geom.Pt(0, 0), 10, 5)
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("got %+v, want [a b]", got)
	}
	if ix.Nearest(geom.Pt(0, 0), 0, 5) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestRebinRemoveAndStats(t *testing.T) {
	ix := New(Config{CellSize: 100, Horizons: []int{5, 10}})
	ix.Update("x", []Entry{{Horizon: 5, Pos: geom.Pt(50, 50)}, {Horizon: 10, Pos: geom.Pt(60, 60)}})
	st := ix.Stats()
	if st.Objects != 1 || st.Entries != 2 || st.Rebins != 0 {
		t.Fatalf("after insert: %+v", st)
	}
	// Same cell: in-place overwrite, no rebin.
	ix.Update("x", []Entry{{Horizon: 5, Pos: geom.Pt(55, 55)}, {Horizon: 10, Pos: geom.Pt(60, 60)}})
	if st = ix.Stats(); st.Rebins != 0 {
		t.Fatalf("same-cell update caused rebin: %+v", st)
	}
	if got := ix.Range(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, 5); len(got) != 1 || got[0].Pos != geom.Pt(55, 55) {
		t.Fatalf("in-place overwrite not visible: %+v", got)
	}
	// Cross a cell boundary: one rebin.
	ix.Update("x", []Entry{{Horizon: 5, Pos: geom.Pt(950, 950)}, {Horizon: 10, Pos: geom.Pt(60, 60)}})
	if st = ix.Stats(); st.Rebins != 1 {
		t.Fatalf("boundary crossing: %+v", st)
	}
	// A bucket missing from the update is dropped.
	ix.Update("x", []Entry{{Horizon: 5, Pos: geom.Pt(950, 950)}})
	if st = ix.Stats(); st.Entries != 1 {
		t.Fatalf("stale bucket not dropped: %+v", st)
	}
	if got := ix.Range(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, 10); len(got) != 0 {
		t.Fatalf("ghost entry after bucket drop: %+v", got)
	}
	ix.Remove("x")
	ix.Remove("x") // idempotent
	if st = ix.Stats(); st.Objects != 0 || st.Entries != 0 {
		t.Fatalf("after remove: %+v", st)
	}
	if got := ix.Range(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}, 5); len(got) != 0 {
		t.Fatalf("entries survive remove: %+v", got)
	}
}

// fakeClock is a settable Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestStalenessExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ix := New(Config{CellSize: 100, Staleness: 10 * time.Second, Now: clk.now})
	ix.Update("a", []Entry{{Horizon: 5, Pos: geom.Pt(50, 50)}})
	whole := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}
	if got := ix.Range(whole, 5); len(got) != 1 {
		t.Fatalf("fresh entry missing: %+v", got)
	}
	clk.advance(11 * time.Second)
	if got := ix.Range(whole, 5); len(got) != 0 {
		t.Fatalf("stale entry still reported: %+v", got)
	}
	if got := ix.Nearest(geom.Pt(0, 0), 1, 5); len(got) != 0 {
		t.Fatalf("stale entry in kNN: %+v", got)
	}
	// A refresh revives it.
	ix.Update("a", []Entry{{Horizon: 5, Pos: geom.Pt(50, 50)}})
	if got := ix.Range(whole, 5); len(got) != 1 {
		t.Fatalf("refreshed entry missing: %+v", got)
	}
}

func TestAgingExtrapolatesWithClamp(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ix := New(Config{CellSize: 100, TickHz: 1, MaxSpeed: 10, MaxAgeTicks: 5, Now: clk.now})
	// Velocity (30,0) is clamped to (10,0).
	ix.Update("a", []Entry{{Horizon: 5, Pos: geom.Pt(100, 100), Vel: geom.Pt(30, 0)}})
	whole := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10000, 10000)}

	clk.advance(2 * time.Second) // 2 ticks
	got := ix.Range(whole, 5)
	if len(got) != 1 || got[0].Pos.Dist(geom.Pt(120, 100)) > 1e-9 {
		t.Fatalf("aged pos = %+v, want (120,100)", got)
	}
	clk.advance(100 * time.Second) // capped at MaxAgeTicks=5
	got = ix.Range(whole, 5)
	if len(got) != 1 || got[0].Pos.Dist(geom.Pt(150, 100)) > 1e-9 {
		t.Fatalf("age cap ignored: %+v, want (150,100)", got)
	}
}

// TestAgedEntryFoundAcrossCellBoundary pins the inflation logic: an entry
// recorded outside the query rect drifts into it and must still be found.
func TestAgedEntryFoundAcrossCellBoundary(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ix := New(Config{CellSize: 100, TickHz: 1, MaxSpeed: 50, MaxAgeTicks: 10, Now: clk.now})
	ix.Update("a", []Entry{{Horizon: 5, Pos: geom.Pt(95, 50), Vel: geom.Pt(50, 0)}})
	clk.advance(4 * time.Second) // now at (295, 50), three cells over
	r := geom.Rect{Min: geom.Pt(250, 0), Max: geom.Pt(350, 100)}
	got := ix.Range(r, 5)
	if len(got) != 1 || got[0].Pos.Dist(geom.Pt(295, 50)) > 1e-9 {
		t.Fatalf("drifted entry lost: %+v", got)
	}
	// And kNN sees the aged position too.
	kn := ix.Nearest(geom.Pt(300, 50), 1, 5)
	if len(kn) != 1 || kn[0].Dist > 5+1e-9 {
		t.Fatalf("kNN missed drifted entry: %+v", kn)
	}
}

func TestConcurrentUpdateQueryRemove(t *testing.T) {
	ix := New(Config{CellSize: 200})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; !stop.Load(); i++ {
				id := fmt.Sprintf("o%d-%d", w, i%50)
				var entries []Entry
				for _, h := range ix.Horizons() {
					entries = append(entries, Entry{Horizon: h, Pos: geom.Pt(rng.Float64()*10000, rng.Float64()*10000)})
				}
				ix.Update(id, entries)
				if i%7 == 0 {
					ix.Remove(id)
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + q)))
			for !stop.Load() {
				x, y := rng.Float64()*8000, rng.Float64()*8000
				ix.Range(geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+2000, y+2000)}, 10)
				ix.Nearest(geom.Pt(x, y), 5, 50)
			}
		}(q)
	}
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
