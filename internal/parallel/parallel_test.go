package parallel

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {4, 4}, {64, 64},
	} {
		if got := Workers(tc.in); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 57
		var hits [n]int32
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndSerial(t *testing.T) {
	For(0, 8, func(int) { t.Fatal("called for n=0") })
	order := []int{}
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForRepanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	For(10, 4, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
