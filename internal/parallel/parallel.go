// Package parallel provides the bounded fan-out primitive the training
// pipeline is parallelized with. Every call site follows the same
// discipline: workers compute into per-index slots and the caller merges
// the slots in index order, so results are byte-identical to a serial run
// regardless of the worker count — the determinism guarantee
// Params.Parallelism documents.
package parallel

import "sync"

// Workers resolves a parallelism knob: values >= 1 pass through, anything
// else means "one worker" (serial). Callers that want a hardware default
// resolve runtime.GOMAXPROCS themselves before handing the value down, so
// the resolved count can be recorded and replayed.
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// For runs fn(i) for every i in [0, n), fanning the indices across at most
// workers goroutines. With workers <= 1 (or n <= 1) it degenerates to a
// plain loop on the calling goroutine — no goroutines, no channels — so the
// serial path stays allocation-free and trivially deterministic.
//
// Indices are handed out in blocks via an atomic-free striding scheme:
// worker w processes i = w, w+workers, w+2*workers, ... Striding keeps
// adjacent indices on different workers, which balances pipelines whose
// cost varies smoothly with the index (per-offset DBSCAN groups, Apriori
// join runs).
//
// fn must not panic across goroutines silently: panics are re-raised on the
// caller after all workers finish.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
