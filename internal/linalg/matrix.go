// Package linalg implements the small dense linear-algebra kernel needed to
// fit the Recursive Motion Function: real matrices, Householder QR
// factorization, and (ridge-regularized) least-squares solves with multiple
// right-hand sides.
//
// The RMF paper attributes an O(n^3) Singular Value Decomposition cost to
// model fitting. QR least squares solves the identical regression problem in
// the same cubic cost class with better numerical robustness for our use,
// and the optional ridge term guards against the rank deficiency that arises
// when an object stands still (rows of the regressor matrix repeat).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices, which must all have the
// same non-zero length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: NewMatrixFromRows of empty data")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Mul returns the product m * b. It panics on shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.cols : (i+1)*b.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the product m * v as a new vector. It panics when len(v)
// differs from the column count.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, r := range row {
			s += r * v[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
