package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 2)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("zero matrix has %v at (%d,%d)", m.At(i, j), i, j)
			}
		}
	}
}

func TestNewMatrixPanics(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", shape[0], shape[1])
				}
			}()
			NewMatrix(shape[0], shape[1])
		}()
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Errorf("unexpected contents: %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows did not panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		id := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		p := a.Mul(id)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(p.At(i, j), a.At(i, j), 1e-12) {
					t.Fatalf("A*I != A at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square non-singular system: solution is exact.
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 3}})
	b := NewMatrixFromRows([][]float64{{5}, {10}})
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if !almostEqual(x.At(0, 0), 1, 1e-10) || !almostEqual(x.At(1, 0), 3, 1e-10) {
		t.Errorf("x = [%v %v], want [1 3]", x.At(0, 0), x.At(1, 0))
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noiseless samples; regression must recover it.
	a := NewMatrix(5, 2)
	b := NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		tt := float64(i)
		a.Set(i, 0, tt)
		a.Set(i, 1, 1)
		b.Set(i, 0, 2*tt+1)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x.At(0, 0), 2, 1e-10) || !almostEqual(x.At(1, 0), 1, 1e-10) {
		t.Errorf("fit = [%v %v], want [2 1]", x.At(0, 0), x.At(1, 0))
	}
}

func TestLeastSquaresMultipleRHS(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	// Two right-hand sides solved simultaneously.
	b := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols() != 2 {
		t.Fatalf("solution cols = %d, want 2", x.Cols())
	}
	// Second RHS is exactly twice the first, so the solution must be too.
	for i := 0; i < x.Rows(); i++ {
		if !almostEqual(x.At(i, 1), 2*x.At(i, 0), 1e-10) {
			t.Errorf("RHS scaling not preserved at row %d", i)
		}
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // rank 1
	b := NewMatrixFromRows([][]float64{{1}, {2}, {3}})
	if _, err := LeastSquares(a, b); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestRidgeRepairsSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	b := NewMatrixFromRows([][]float64{{1}, {2}, {3}})
	x, err := RidgeLeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatalf("ridge solve failed: %v", err)
	}
	// The fitted values must still reproduce b closely.
	fit := a.Mul(x)
	for i := 0; i < 3; i++ {
		if !almostEqual(fit.At(i, 0), b.At(i, 0), 1e-3) {
			t.Errorf("fit[%d] = %v, want %v", i, fit.At(i, 0), b.At(i, 0))
		}
	}
}

func TestRidgeZeroFallsBack(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 0}, {0, 2}})
	b := NewMatrixFromRows([][]float64{{4}, {6}})
	x, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x.At(0, 0), 2, 1e-10) || !almostEqual(x.At(1, 0), 3, 1e-10) {
		t.Errorf("x = [%v %v], want [2 3]", x.At(0, 0), x.At(1, 0))
	}
}

func TestRidgeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative lambda did not panic")
		}
	}()
	a := NewMatrix(2, 2)
	RidgeLeastSquares(a, NewMatrix(2, 1), -1)
}

// Property: for random well-conditioned systems, the residual of the
// least-squares solution is orthogonal to the column space (normal
// equations hold).
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 6 + r.Intn(10)
		n := 2 + r.Intn(4)
		a := NewMatrix(m, n)
		b := NewMatrix(m, 1)
		for i := 0; i < m; i++ {
			b.Set(i, 0, r.NormFloat64())
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			continue // random rank deficiency is astronomically unlikely but legal
		}
		// residual r = A*x - b; A^T r must be ~0.
		ax := a.Mul(x)
		res := make([]float64, m)
		for i := 0; i < m; i++ {
			res[i] = ax.At(i, 0) - b.At(i, 0)
		}
		atr := a.Transpose().MulVec(res)
		for j, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("trial %d: normal equations violated at %d: %v", trial, j, v)
			}
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(a.FrobeniusNorm(), 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v, want 5", a.FrobeniusNorm())
	}
}
