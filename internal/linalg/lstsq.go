package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when the regression system is numerically rank
// deficient and no ridge term was supplied to repair it.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// qr holds a Householder QR factorization of an m x n matrix with m >= n.
// The factored form stores the Householder vectors below the diagonal of a
// and the upper triangle R on and above it, matching the classic LINPACK
// layout.
type qr struct {
	a     *Matrix   // packed factors
	rdiag []float64 // diagonal of R
}

// factorQR computes the Householder QR factorization of a copy of m.
// It requires m.Rows() >= m.Cols().
func factorQR(m *Matrix) *qr {
	if m.rows < m.cols {
		panic("linalg: QR requires rows >= cols")
	}
	a := m.Clone()
	n := a.cols
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		var nrm float64
		for i := k; i < a.rows; i++ {
			nrm = math.Hypot(nrm, a.At(i, k))
		}
		if nrm != 0 {
			if a.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < a.rows; i++ {
				a.Set(i, k, a.At(i, k)/nrm)
			}
			a.Set(k, k, a.At(k, k)+1)
			// Apply the reflector to the remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < a.rows; i++ {
					s += a.At(i, k) * a.At(i, j)
				}
				s = -s / a.At(k, k)
				for i := k; i < a.rows; i++ {
					a.Set(i, j, a.At(i, j)+s*a.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &qr{a: a, rdiag: rdiag}
}

// isFullRank reports whether every diagonal of R is meaningfully non-zero
// relative to the matrix scale.
func (f *qr) isFullRank() bool {
	scale := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > scale {
			scale = a
		}
	}
	tol := scale * 1e-12
	if tol == 0 {
		return false
	}
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// solve computes the least-squares solution X minimizing ||A*X - B||_F for
// the factored A and each column of B.
func (f *qr) solve(b *Matrix) (*Matrix, error) {
	if b.rows != f.a.rows {
		panic("linalg: QR solve shape mismatch")
	}
	if !f.isFullRank() {
		return nil, ErrSingular
	}
	n := f.a.cols
	nb := b.cols
	y := b.Clone()
	// Apply Householder reflectors to B: Y = Q^T * B.
	for k := 0; k < n; k++ {
		if f.a.At(k, k) == 0 {
			continue
		}
		for j := 0; j < nb; j++ {
			var s float64
			for i := k; i < f.a.rows; i++ {
				s += f.a.At(i, k) * y.At(i, j)
			}
			s = -s / f.a.At(k, k)
			for i := k; i < f.a.rows; i++ {
				y.Set(i, j, y.At(i, j)+s*f.a.At(i, k))
			}
		}
	}
	// Back-substitute R*X = Y[0:n].
	x := NewMatrix(n, nb)
	for k := n - 1; k >= 0; k-- {
		for j := 0; j < nb; j++ {
			s := y.At(k, j)
			for i := k + 1; i < n; i++ {
				s -= f.a.At(k, i) * x.At(i, j)
			}
			x.Set(k, j, s/f.rdiag[k])
		}
	}
	return x, nil
}

// LeastSquares returns the X minimizing ||A*X - B||_F. A must have at least
// as many rows as columns. It returns ErrSingular when A is numerically rank
// deficient.
func LeastSquares(a, b *Matrix) (*Matrix, error) {
	return factorQR(a).solve(b)
}

// RidgeLeastSquares returns the X minimizing
// ||A*X - B||_F^2 + lambda*||X||_F^2 by solving the augmented system
// [A; sqrt(lambda)*I] X = [B; 0]. Any lambda > 0 makes the system full rank,
// so the solve cannot fail; lambda == 0 falls back to plain LeastSquares.
//
// RMF fitting uses a small ridge because a stationary object produces
// duplicate regressor rows that are exactly rank deficient.
func RidgeLeastSquares(a, b *Matrix, lambda float64) (*Matrix, error) {
	if lambda < 0 {
		panic("linalg: negative ridge parameter")
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	n := a.cols
	aug := NewMatrix(a.rows+n, n)
	for i := 0; i < a.rows; i++ {
		copy(aug.data[i*n:(i+1)*n], a.data[i*n:(i+1)*n])
	}
	s := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(a.rows+i, i, s)
	}
	baug := NewMatrix(a.rows+n, b.cols)
	for i := 0; i < b.rows; i++ {
		copy(baug.data[i*b.cols:(i+1)*b.cols], b.data[i*b.cols:(i+1)*b.cols])
	}
	return LeastSquares(aug, baug)
}
