// Package cluster implements DBSCAN (Ester, Kriegel, Sander, Xu, KDD 1996),
// the density-based clustering algorithm the paper uses to detect frequent
// regions inside each time-offset group G_t. The Eps and MinPts parameters
// "play the same role as support of mining frequent item sets" (§IV): a
// cluster exists only where the object appeared densely often.
//
// Neighborhood queries run against a uniform grid with cell side Eps, so a
// point's Eps-neighbors are confined to its 3x3 cell block; a brute-force
// scan is kept as the reference oracle for equivalence tests.
package cluster

import (
	"fmt"

	"hpm/internal/geom"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Result holds a clustering of the input points.
type Result struct {
	// Labels[i] is the cluster id of point i, in [0, NumClusters), or Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
}

// Members returns the indices of the points labeled with cluster id c.
func (r Result) Members(c int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == c {
			out = append(out, i)
		}
	}
	return out
}

// DBSCAN clusters points with radius eps and density threshold minPts.
// A point is a core point when at least minPts points (itself included) lie
// within distance eps; clusters are the connected components of core points
// plus their border points. It panics on invalid parameters because the
// mining pipeline validates them once up front.
func DBSCAN(points []geom.Point, eps float64, minPts int) Result {
	if eps <= 0 {
		panic(fmt.Sprintf("cluster: eps must be positive, got %v", eps))
	}
	if minPts < 1 {
		panic(fmt.Sprintf("cluster: minPts must be >= 1, got %d", minPts))
	}
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return Result{Labels: labels}
	}

	g := newGrid(points, eps)
	visited := make([]bool, n)
	nextCluster := 0
	var neighbors, frontier []int

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbors = g.rangeQuery(points, i, eps, neighbors[:0])
		if len(neighbors) < minPts {
			continue // stays noise unless later absorbed as a border point
		}
		// Start a new cluster and expand it breadth-first from i.
		c := nextCluster
		nextCluster++
		labels[i] = c
		frontier = append(frontier[:0], neighbors...)
		for len(frontier) > 0 {
			j := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if labels[j] == Noise {
				labels[j] = c // border or core point absorbed into c
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			nb := g.rangeQuery(points, j, eps, nil)
			if len(nb) >= minPts {
				// j is core: its neighborhood continues the expansion.
				frontier = append(frontier, nb...)
			}
		}
	}
	return Result{Labels: labels, NumClusters: nextCluster}
}

// grid is a uniform hash grid with cell side = eps, so all eps-neighbors of
// a point are inside the surrounding 3x3 cell block.
type grid struct {
	cell  float64
	cells map[cellKey][]int
}

type cellKey struct{ cx, cy int }

func newGrid(points []geom.Point, eps float64) *grid {
	g := &grid{cell: eps, cells: make(map[cellKey][]int, len(points)/2+1)}
	for i, p := range points {
		k := g.keyOf(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *grid) keyOf(p geom.Point) cellKey {
	return cellKey{cx: int(floorDiv(p.X, g.cell)), cy: int(floorDiv(p.Y, g.cell))}
}

func floorDiv(v, cell float64) float64 {
	q := v / cell
	f := float64(int(q))
	if q < 0 && q != f {
		f--
	}
	return f
}

// rangeQuery appends to dst the indices of all points within eps of
// points[i] (including i itself) and returns the extended slice.
func (g *grid) rangeQuery(points []geom.Point, i int, eps float64, dst []int) []int {
	p := points[i]
	k := g.keyOf(p)
	eps2 := eps * eps
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, j := range g.cells[cellKey{k.cx + dx, k.cy + dy}] {
				if points[j].Dist2(p) <= eps2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// BruteForceNeighbors returns the indices of all points within eps of
// points[i] by linear scan. It is the reference oracle the grid index is
// tested against and the baseline for index micro-benchmarks.
func BruteForceNeighbors(points []geom.Point, i int, eps float64) []int {
	var out []int
	eps2 := eps * eps
	for j, q := range points {
		if q.Dist2(points[i]) <= eps2 {
			out = append(out, j)
		}
	}
	return out
}
