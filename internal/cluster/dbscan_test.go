package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"hpm/internal/geom"
)

// blob generates n points normally distributed around center.
func blob(r *rand.Rand, center geom.Point, sigma float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(center.X+r.NormFloat64()*sigma, center.Y+r.NormFloat64()*sigma)
	}
	return pts
}

func TestDBSCANTwoBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := append(blob(r, geom.Pt(0, 0), 1, 40), blob(r, geom.Pt(100, 100), 1, 40)...)
	res := DBSCAN(pts, 5, 4)
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	// All points of the same blob must share a label, and the blobs differ.
	first, second := res.Labels[0], res.Labels[40]
	if first == Noise || second == Noise || first == second {
		t.Fatalf("labels %d, %d unexpected", first, second)
	}
	for i := 0; i < 40; i++ {
		if res.Labels[i] != first {
			t.Errorf("blob A point %d labeled %d, want %d", i, res.Labels[i], first)
		}
		if res.Labels[40+i] != second {
			t.Errorf("blob B point %d labeled %d, want %d", i, res.Labels[40+i], second)
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := blob(r, geom.Pt(0, 0), 1, 30)
	pts = append(pts, geom.Pt(500, 500)) // isolated outlier
	res := DBSCAN(pts, 5, 4)
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[30] != Noise {
		t.Errorf("outlier labeled %d, want Noise", res.Labels[30])
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Far-apart points with minPts 3: nothing clusters.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 100)}
	res := DBSCAN(pts, 1, 3)
	if res.NumClusters != 0 {
		t.Fatalf("NumClusters = %d, want 0", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Errorf("point %d labeled %d, want Noise", i, l)
		}
	}
}

func TestDBSCANMinPtsOne(t *testing.T) {
	// With minPts 1 every point is a core point of its own cluster.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 100)}
	res := DBSCAN(pts, 1, 1)
	if res.NumClusters != 3 {
		t.Fatalf("NumClusters = %d, want 3", res.NumClusters)
	}
}

func TestDBSCANChainConnectivity(t *testing.T) {
	// A chain of points spaced 1 apart with eps 1.5 forms one cluster.
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Pt(float64(i), 0))
	}
	res := DBSCAN(pts, 1.5, 3)
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Errorf("chain point %d labeled %d", i, l)
		}
	}
}

func TestDBSCANBorderPointAbsorbed(t *testing.T) {
	// Dense core at origin plus one point just inside eps of the core but
	// with too few neighbors of its own: a classic border point.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0, 0.1), geom.Pt(0.1, 0.1),
		geom.Pt(0.9, 0), // border: within eps=1 of the core points
	}
	res := DBSCAN(pts, 1, 4)
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[4] != 0 {
		t.Errorf("border point labeled %d, want 0", res.Labels[4])
	}
}

func TestDBSCANEmpty(t *testing.T) {
	res := DBSCAN(nil, 1, 3)
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Errorf("empty input: %+v", res)
	}
}

func TestDBSCANPanics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0)}
	for _, f := range []func(){
		func() { DBSCAN(pts, 0, 3) },
		func() { DBSCAN(pts, -1, 3) },
		func() { DBSCAN(pts, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMembers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := append(blob(r, geom.Pt(0, 0), 1, 10), blob(r, geom.Pt(50, 50), 1, 12)...)
	res := DBSCAN(pts, 5, 3)
	total := 0
	for c := 0; c < res.NumClusters; c++ {
		total += len(res.Members(c))
	}
	noise := len(res.Members(Noise))
	if total+noise != len(pts) {
		t.Errorf("members %d + noise %d != %d points", total, noise, len(pts))
	}
}

// Property: grid-accelerated neighborhoods equal brute force exactly.
func TestGridMatchesBruteForceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Mix of negative and positive coordinates exercises the
			// floor-division cell hashing.
			pts[i] = geom.Pt(r.Float64()*200-100, r.Float64()*200-100)
		}
		eps := 1 + r.Float64()*20
		g := newGrid(pts, eps)
		for i := 0; i < n; i++ {
			got := g.rangeQuery(pts, i, eps, nil)
			want := BruteForceNeighbors(pts, i, eps)
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d point %d: grid %d neighbors, brute %d", trial, i, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("trial %d point %d: neighbor sets differ", trial, i)
				}
			}
		}
	}
}

// Property: DBSCAN invariants on random data — every core point is
// clustered, labels are dense in [0, NumClusters), and any two points
// within eps where both are core share a cluster.
func TestDBSCANInvariantsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 20 + r.Intn(150)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
		}
		eps := 3 + r.Float64()*5
		minPts := 2 + r.Intn(4)
		res := DBSCAN(pts, eps, minPts)

		seen := make(map[int]bool)
		for i := range pts {
			nb := BruteForceNeighbors(pts, i, eps)
			core := len(nb) >= minPts
			if core && res.Labels[i] == Noise {
				t.Fatalf("trial %d: core point %d labeled noise", trial, i)
			}
			if res.Labels[i] != Noise {
				seen[res.Labels[i]] = true
				if res.Labels[i] < 0 || res.Labels[i] >= res.NumClusters {
					t.Fatalf("trial %d: label %d out of range", trial, res.Labels[i])
				}
			}
			// Density connectivity: a core point's eps-neighbors may never
			// stay noise, and two mutually-reachable core points must share
			// a cluster. (A border point between two clusters may join
			// either, so only core neighbors get the equality check.)
			if core {
				for _, j := range nb {
					if res.Labels[j] == Noise {
						t.Fatalf("trial %d: neighbor %d of core %d left as noise", trial, j, i)
					}
					if len(BruteForceNeighbors(pts, j, eps)) >= minPts && res.Labels[j] != res.Labels[i] {
						t.Fatalf("trial %d: core neighbor %d of core %d in cluster %d, want %d",
							trial, j, i, res.Labels[j], res.Labels[i])
					}
				}
			}
		}
		if len(seen) != res.NumClusters {
			t.Fatalf("trial %d: %d distinct labels, NumClusters %d", trial, len(seen), res.NumClusters)
		}
	}
}

func BenchmarkDBSCANGrid1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var pts []geom.Point
	for c := 0; c < 10; c++ {
		pts = append(pts, blob(r, geom.Pt(r.Float64()*1000, r.Float64()*1000), 10, 100)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 15, 4)
	}
}
