package tpt

import "hpm/internal/bitkey"

// TreeStats summarizes the physical shape of a tree.
type TreeStats struct {
	Items        int
	Height       int
	LeafNodes    int
	InternalNode int
	Entries      int // total entries across all nodes
	StorageBytes int // packed size: keys + per-entry payload/pointers
}

// entryOverheadBytes approximates the non-key payload of an entry: an
// 8-byte pointer for internal entries, an 8-byte confidence plus an 8-byte
// consequence pointer for leaf entries. Figure 11(a) charges TPT storage
// this way: key bits dominate as the number of frequent regions grows.
const (
	internalEntryOverhead = 8
	leafEntryOverhead     = 16
)

// Stats walks the tree and returns its physical statistics.
func (t *Tree) Stats() TreeStats {
	s := TreeStats{Items: t.size, Height: t.height}
	keyBytes := (t.ckLen + t.rkLen + 7) / 8
	var rec func(n *node)
	rec = func(n *node) {
		s.Entries += len(n.entries)
		if n.leaf {
			s.LeafNodes++
			s.StorageBytes += len(n.entries) * (keyBytes + leafEntryOverhead)
			return
		}
		s.InternalNode++
		s.StorageBytes += len(n.entries) * (keyBytes + internalEntryOverhead)
		for _, e := range n.entries {
			rec(e.child)
		}
	}
	rec(t.root)
	return s
}

// BruteForce is the unindexed baseline of Figure 11(b): a flat list of
// items scanned linearly per query.
type BruteForce struct {
	items []Item
}

// NewBruteForce returns a scanner over the given items (not copied).
func NewBruteForce(items []Item) *BruteForce { return &BruteForce{items: items} }

// Len returns the number of stored items.
func (b *BruteForce) Len() int { return len(b.items) }

// SearchIntersect visits every item whose key intersects q on both parts,
// mirroring Tree.SearchIntersect. The returned count is the number of items
// examined — always the full list, which is the point of the baseline.
func (b *BruteForce) SearchIntersect(q bitkey.PatternKey, visit func(Item) bool) int {
	for _, it := range b.items {
		if it.Key.Intersects(q) {
			if !visit(it) {
				break
			}
		}
	}
	return len(b.items)
}

// SearchConsequence visits every item whose consequence key intersects q's,
// mirroring Tree.SearchConsequence.
func (b *BruteForce) SearchConsequence(q bitkey.PatternKey, visit func(Item) bool) int {
	for _, it := range b.items {
		if it.Key.IntersectsConsequence(q) {
			if !visit(it) {
				break
			}
		}
	}
	return len(b.items)
}
