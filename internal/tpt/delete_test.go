package tpt

import (
	"math/rand"
	"testing"

	"hpm/internal/bitkey"
)

// checkDeleteInvariants is checkInvariants minus the minimum-fill bound:
// deletion tolerates underflow by design (the batch-rebuild backstop
// restores packing). Union-tightness, uniform leaf depth and the size
// counter must still hold, or searches go wrong.
func checkDeleteInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	count := 0
	depthOfLeaf := -1
	var rec func(n *node, depth int, isRoot bool) bitkey.PatternKey
	rec = func(n *node, depth int, isRoot bool) bitkey.PatternKey {
		if len(n.entries) == 0 {
			if !isRoot {
				t.Fatal("empty non-root node survived deletion")
			}
			return bitkey.NewPatternKey(tree.ckLen, tree.rkLen)
		}
		if len(n.entries) > tree.maxEntries {
			t.Fatalf("node overflow: %d > %d", len(n.entries), tree.maxEntries)
		}
		u := bitkey.NewPatternKey(tree.ckLen, tree.rkLen)
		for _, e := range n.entries {
			if n.leaf {
				count++
				if depthOfLeaf < 0 {
					depthOfLeaf = depth
				} else if depth != depthOfLeaf {
					t.Fatalf("leaf at depth %d, expected %d", depth, depthOfLeaf)
				}
				if !e.key.Equal(e.item.Key) {
					t.Fatal("leaf entry key diverged from its item key")
				}
			} else {
				sub := rec(e.child, depth+1, false)
				if !e.key.Equal(sub) {
					t.Fatal("internal entry key is not the exact union of its subtree")
				}
			}
			u.UnionInPlace(e.key)
		}
		return u
	}
	rec(tree.root, 1, true)
	if count != tree.size {
		t.Fatalf("counted %d items, size says %d", count, tree.size)
	}
}

// TestDeleteSearchEquivalenceProperty interleaves random deletions with
// search checks against a brute-force survivor scan, for both the insert-
// built and the bulk-loaded shape.
func TestDeleteSearchEquivalenceProperty(t *testing.T) {
	const ckLen, rkLen, n = 10, 48, 400
	for _, bulk := range []bool{false, true} {
		r := rand.New(rand.NewSource(7))
		items := make([]Item, n)
		for i := range items {
			items[i] = randomItem(r, ckLen, rkLen, i)
		}
		var tree *Tree
		if bulk {
			tree = BulkLoad(ckLen, rkLen, items, Options{MaxEntries: 8})
		} else {
			tree = New(ckLen, rkLen, Options{MaxEntries: 8})
			for _, it := range items {
				tree.Insert(it)
			}
		}
		alive := append([]Item(nil), items...)
		for len(alive) > 0 {
			// Delete a random batch, then probe with random queries.
			for k := 0; k < 20 && len(alive) > 0; k++ {
				i := r.Intn(len(alive))
				it := alive[i]
				if !tree.Delete(it.Key, it.Ref) {
					t.Fatalf("bulk=%v: Delete(ref %d) found nothing", bulk, it.Ref)
				}
				if tree.Delete(it.Key, it.Ref) {
					t.Fatalf("bulk=%v: double Delete(ref %d) succeeded", bulk, it.Ref)
				}
				alive = append(alive[:i], alive[i+1:]...)
			}
			checkDeleteInvariants(t, tree)
			if tree.Len() != len(alive) {
				t.Fatalf("bulk=%v: Len() = %d, want %d", bulk, tree.Len(), len(alive))
			}
			for q := 0; q < 10; q++ {
				qk := randomQuery(r, ckLen, rkLen)
				if got, want := collectIntersect(tree, qk), bruteIntersect(alive, qk); !equalInts(got, want) {
					t.Fatalf("bulk=%v: intersect mismatch after deletes: got %v want %v", bulk, got, want)
				}
				if got, want := collectConsequence(tree, qk), bruteConsequence(alive, qk); !equalInts(got, want) {
					t.Fatalf("bulk=%v: consequence mismatch after deletes: got %v want %v", bulk, got, want)
				}
			}
		}
		if tree.Len() != 0 || tree.Height() != 1 {
			t.Fatalf("bulk=%v: emptied tree has len %d height %d", bulk, tree.Len(), tree.Height())
		}
	}
}

func TestUpdateConf(t *testing.T) {
	const ckLen, rkLen = 6, 24
	r := rand.New(rand.NewSource(11))
	tree := New(ckLen, rkLen, Options{MaxEntries: 4})
	items := make([]Item, 60)
	for i := range items {
		items[i] = randomItem(r, ckLen, rkLen, i)
		tree.Insert(items[i])
	}
	for _, it := range items {
		if !tree.UpdateConf(it.Key, it.Ref, float64(it.Ref)) {
			t.Fatalf("UpdateConf(ref %d) found nothing", it.Ref)
		}
	}
	seen := 0
	tree.All(func(it Item) bool {
		seen++
		if it.Conf != float64(it.Ref) {
			t.Fatalf("ref %d conf %g, want %g", it.Ref, it.Conf, float64(it.Ref))
		}
		return true
	})
	if seen != len(items) {
		t.Fatalf("All visited %d items, want %d", seen, len(items))
	}
	missing := randomItem(r, ckLen, rkLen, 999)
	if tree.UpdateConf(missing.Key, 999, 0.5) {
		t.Fatal("UpdateConf on an absent item succeeded")
	}
}

// TestGrowKeys widens a populated tree and checks searches behave as if
// every item had been built at the wider size from the start.
func TestGrowKeys(t *testing.T) {
	const ckLen, rkLen, n = 5, 20, 200
	r := rand.New(rand.NewSource(3))
	tree := New(ckLen, rkLen, Options{MaxEntries: 6})
	items := make([]Item, n)
	for i := range items {
		items[i] = randomItem(r, ckLen, rkLen, i)
		tree.Insert(items[i])
	}
	const ckWide, rkWide = 9, 33
	tree.GrowKeys(ckWide, rkWide)
	checkInvariants(t, tree)

	// Grown shadow copies for the brute-force oracle.
	wide := make([]Item, n)
	for i, it := range items {
		wide[i] = Item{Key: bitkey.PatternKey{CK: it.Key.CK.Grown(ckWide), RK: it.Key.RK.Grown(rkWide)}, Conf: it.Conf, Ref: it.Ref}
	}
	// New items may use the new high bits.
	for i := 0; i < 50; i++ {
		it := randomItem(r, ckWide, rkWide, n+i)
		tree.Insert(it)
		wide = append(wide, it)
	}
	checkInvariants(t, tree)
	for q := 0; q < 40; q++ {
		qk := randomQuery(r, ckWide, rkWide)
		if got, want := collectIntersect(tree, qk), bruteIntersect(wide, qk); !equalInts(got, want) {
			t.Fatalf("intersect mismatch after GrowKeys: got %v want %v", got, want)
		}
		if got, want := collectConsequence(tree, qk), bruteConsequence(wide, qk); !equalInts(got, want) {
			t.Fatalf("consequence mismatch after GrowKeys: got %v want %v", got, want)
		}
	}
	// Deleting an old item by its grown key must still work.
	if !tree.Delete(wide[0].Key, wide[0].Ref) {
		t.Fatal("Delete by grown key failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GrowKeys shrink did not panic")
		}
	}()
	tree.GrowKeys(ckLen, rkLen)
}
