package tpt

import (
	"math/rand"
	"testing"

	"hpm/internal/bitkey"
)

func randomItems(rng *rand.Rand, n, ckLen, rkLen int) []Item {
	items := make([]Item, n)
	for i := range items {
		k := bitkey.NewPatternKey(ckLen, rkLen)
		k.CK.Set(1 + rng.Intn(ckLen))
		for b := 0; b <= rng.Intn(3); b++ {
			k.RK.Set(1 + rng.Intn(rkLen))
		}
		items[i] = Item{Key: k, Conf: rng.Float64(), Ref: i}
	}
	return items
}

// TestBulkLoadParallelEquivalence: the parallel sorted-run phase must yield
// the same tree as the serial sort for any worker count, including items
// with duplicate keys (tie-break by Ref keeps the order total).
func TestBulkLoadParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const ckLen, rkLen = 40, 200
	items := randomItems(rng, 20000, ckLen, rkLen)
	// Inject duplicate keys to exercise tie-breaking across run borders.
	for i := 0; i < 2000; i++ {
		j := rng.Intn(len(items))
		items[i] = Item{Key: items[j].Key, Conf: items[i].Conf, Ref: items[i].Ref}
	}

	serial := BulkLoad(ckLen, rkLen, items, Options{Parallelism: 1})
	for _, workers := range []int{2, 4, 8} {
		par := BulkLoad(ckLen, rkLen, items, Options{Parallelism: workers})
		if serial.Stats() != par.Stats() {
			t.Fatalf("workers=%d: tree stats differ:\nserial:   %+v\nparallel: %+v",
				workers, serial.Stats(), par.Stats())
		}
		var a, b []Item
		serial.All(func(it Item) bool { a = append(a, it); return true })
		par.All(func(it Item) bool { b = append(b, it); return true })
		if len(a) != len(b) {
			t.Fatalf("workers=%d: item counts %d vs %d", workers, len(a), len(b))
		}
		for i := range a {
			if a[i].Ref != b[i].Ref || a[i].Conf != b[i].Conf || !a[i].Key.CK.Equal(b[i].Key.CK) || !a[i].Key.RK.Equal(b[i].Key.RK) {
				t.Fatalf("workers=%d: leaf order diverges at %d: %+v vs %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestSortItemsMatchesStableSort pins the parallel merge to the serial
// stable sort on adversarial sizes (odd lengths, many runs, tiny runs).
func TestSortItemsMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 1023, 1024, 4097, 10000} {
		items := randomItems(rng, n, 10, 50)
		want := make([]Item, n)
		copy(want, items)
		sortItems(want, 1)
		for _, workers := range []int{2, 3, 7, 16} {
			got := make([]Item, n)
			copy(got, items)
			sortItems(got, workers)
			for i := range got {
				if got[i].Ref != want[i].Ref {
					t.Fatalf("n=%d workers=%d: order diverges at %d", n, workers, i)
				}
			}
		}
	}
}
