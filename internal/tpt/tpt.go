// Package tpt implements the Trajectory Pattern Tree of §V: a dynamic
// balanced tree over pattern-key bitmaps, derived from the signature tree of
// Mamoulis et al. (ICDE 2003) with two changes the paper introduces — leaf
// entries carry <pattern key, confidence, consequence pointer>, and the
// ChooseLeaf descent prefers subtrees that intersect the new key on both
// the consequence and the premise part, which keeps patterns answering the
// same queries clustered and makes Intersect-driven search cheap.
//
// Search is depth-first: an internal entry's key is the bitwise OR of its
// subtree, so a query key that fails the intersection predicate against the
// entry cannot match anything below it and the subtree is skipped.
package tpt

import (
	"fmt"
	"sort"

	"hpm/internal/bitkey"
	"hpm/internal/parallel"
)

// Item is one indexed trajectory pattern: its pattern key, its confidence,
// and a caller-defined reference (typically the index of the pattern in the
// miner's output), which plays the role of the paper's region-key pointer p.
type Item struct {
	Key  bitkey.PatternKey
	Conf float64
	Ref  int
}

// Options tune the tree shape.
type Options struct {
	// MaxEntries is the node capacity M; values <= 0 default to
	// DefaultMaxEntries. MinEntries is derived as max(2, 2M/5).
	MaxEntries int
	// DisableIntersectStep removes the paper's extra ChooseLeaf rule
	// (line 7-8 of Algorithm 1) so the descent degenerates to the plain
	// signature-tree difference heuristic. Exists for the ablation bench.
	DisableIntersectStep bool
	// Parallelism caps how many goroutines BulkLoad's sorted-run phase
	// uses; <= 1 sorts serially. The parallel path sorts contiguous runs
	// concurrently and merges them stably, so the loaded tree is identical
	// to a serial build for any value. Runtime-only: not part of a tree's
	// persistent identity.
	Parallelism int `json:"-"`
}

// DefaultMaxEntries is the default node capacity.
const DefaultMaxEntries = 32

// Tree is a Trajectory Pattern Tree. The zero value is not usable; call New.
type Tree struct {
	root         *node
	ckLen, rkLen int
	maxEntries   int
	minEntries   int
	size         int
	height       int
	noIntersect  bool
}

type entry struct {
	key   bitkey.PatternKey
	child *node // internal nodes only
	item  Item  // leaf nodes only (item.Key aliases key)
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree for pattern keys with ckLen consequence bits
// and rkLen premise bits.
func New(ckLen, rkLen int, opts Options) *Tree {
	m := opts.MaxEntries
	if m <= 0 {
		m = DefaultMaxEntries
	}
	if m < 4 {
		m = 4
	}
	min := 2 * m / 5
	if min < 2 {
		min = 2
	}
	return &Tree{
		root:        &node{leaf: true},
		ckLen:       ckLen,
		rkLen:       rkLen,
		maxEntries:  m,
		minEntries:  min,
		height:      1,
		noIntersect: opts.DisableIntersectStep,
	}
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds an item to the tree. It panics when the item's key lengths do
// not match the tree's.
func (t *Tree) Insert(it Item) {
	t.checkKey(it.Key)
	split := t.insert(t.root, it)
	if split != nil {
		// Root overflow: grow a new root above both halves.
		old := t.root
		t.root = &node{leaf: false, entries: []entry{
			{key: unionOf(old), child: old},
			{key: unionOf(split), child: split},
		}}
		t.height++
	}
	t.size++
}

func (t *Tree) checkKey(k bitkey.PatternKey) {
	if k.CK.Len() != t.ckLen || k.RK.Len() != t.rkLen {
		panic(fmt.Sprintf("tpt: key lengths (%d,%d) do not match tree (%d,%d)",
			k.CK.Len(), k.RK.Len(), t.ckLen, t.rkLen))
	}
}

// insert recursively places it under n and returns a non-nil node when n
// was split and the caller must register the new sibling.
func (t *Tree) insert(n *node, it Item) *node {
	if n.leaf {
		n.entries = append(n.entries, entry{key: it.Key, item: it})
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	i := t.chooseSubtree(n, it.Key)
	n.entries[i].key = n.entries[i].key.Union(it.Key)
	if split := t.insert(n.entries[i].child, it); split != nil {
		n.entries[i].key = unionOf(n.entries[i].child)
		n.entries = append(n.entries, entry{key: unionOf(split), child: split})
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
	}
	return nil
}

// chooseSubtree implements Algorithm 1 (ChooseLeaf) for one level: prefer
// the smallest containing entry, then — unless disabled — the
// intersecting entry with the smallest difference, then the smallest
// difference overall. Ties resolve to the smallest entry size.
func (t *Tree) chooseSubtree(n *node, pk bitkey.PatternKey) int {
	best := -1
	bestSize := 0
	// Rule 1: containment.
	for i, e := range n.entries {
		if e.key.Contains(pk) {
			if s := e.key.Size(); best < 0 || s < bestSize {
				best, bestSize = i, s
			}
		}
	}
	if best >= 0 {
		return best
	}
	// Rule 2: intersection on both parts (the paper's addition).
	if !t.noIntersect {
		bestDiff := 0
		for i, e := range n.entries {
			if e.key.Intersects(pk) {
				d, s := pk.Difference(e.key), e.key.Size()
				if best < 0 || d < bestDiff || (d == bestDiff && s < bestSize) {
					best, bestDiff, bestSize = i, d, s
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	// Rule 3: smallest difference.
	bestDiff := 0
	for i, e := range n.entries {
		d, s := pk.Difference(e.key), e.key.Size()
		if best < 0 || d < bestDiff || (d == bestDiff && s < bestSize) {
			best, bestDiff, bestSize = i, d, s
		}
	}
	return best
}

// split divides an overflowing node in two, quadratic-seed style: the two
// entries with the largest symmetric key difference seed the groups, and
// each remaining entry joins the group whose union key grows least.
func (t *Tree) split(n *node) *node {
	entries := n.entries
	// Seed selection.
	s1, s2 := 0, 1
	worst := -1
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].key.Difference(entries[j].key) + entries[j].key.Difference(entries[i].key)
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	u1 := entries[s1].key.Clone()
	u2 := entries[s2].key.Clone()

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for idx, e := range rest {
		remaining := len(rest) - idx
		// Honour the minimum fill: hand the remainder to a starving group.
		if len(g1)+remaining <= t.minEntries {
			g1 = append(g1, e)
			u1.UnionInPlace(e.key)
			continue
		}
		if len(g2)+remaining <= t.minEntries {
			g2 = append(g2, e)
			u2.UnionInPlace(e.key)
			continue
		}
		grow1 := e.key.Difference(u1)
		grow2 := e.key.Difference(u2)
		if grow1 < grow2 || (grow1 == grow2 && u1.Size() <= u2.Size()) {
			g1 = append(g1, e)
			u1.UnionInPlace(e.key)
		} else {
			g2 = append(g2, e)
			u2.UnionInPlace(e.key)
		}
	}
	n.entries = g1
	return &node{leaf: n.leaf, entries: g2}
}

// unionOf returns the OR of all entry keys of n.
func unionOf(n *node) bitkey.PatternKey {
	u := n.entries[0].key.Clone()
	for _, e := range n.entries[1:] {
		u.UnionInPlace(e.key)
	}
	return u
}

// SearchIntersect visits every item whose key intersects q on both the
// consequence and the premise part (the FQP retrieval predicate). The visit
// callback returns false to stop early. It reports the number of tree nodes
// touched, the cost metric of Figure 11(b).
func (t *Tree) SearchIntersect(q bitkey.PatternKey, visit func(Item) bool) int {
	t.checkKey(q)
	nodes, _ := t.search(t.root, q, bitkey.PatternKey.Intersects, visit)
	return nodes
}

// SearchConsequence visits every item whose consequence key intersects q's,
// ignoring premises entirely — the relaxed predicate of Backward Query
// Processing.
func (t *Tree) SearchConsequence(q bitkey.PatternKey, visit func(Item) bool) int {
	t.checkKey(q)
	nodes, _ := t.search(t.root, q, bitkey.PatternKey.IntersectsConsequence, visit)
	return nodes
}

func (t *Tree) search(n *node, q bitkey.PatternKey, pred func(bitkey.PatternKey, bitkey.PatternKey) bool, visit func(Item) bool) (nodes int, stopped bool) {
	nodes = 1
	for _, e := range n.entries {
		if !pred(e.key, q) {
			continue
		}
		if n.leaf {
			if !visit(e.item) {
				return nodes, true
			}
			continue
		}
		sub, stop := t.search(e.child, q, pred, visit)
		nodes += sub
		if stop {
			return nodes, true
		}
	}
	return nodes, false
}

// All visits every indexed item in key order of the leaves.
func (t *Tree) All(visit func(Item) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		for _, e := range n.entries {
			if n.leaf {
				if !visit(e.item) {
					return false
				}
			} else if !rec(e.child) {
				return false
			}
		}
		return true
	}
	rec(t.root)
}

// BulkLoad builds a tree from items bottom-up: items are sorted so patterns
// with the same consequence time offset pack into the same leaves, leaves
// are filled to capacity, and parent levels are built from the unions. This
// is the paper's bulk loading for the static (historical) pattern set;
// dynamic arrivals then use Insert.
func BulkLoad(ckLen, rkLen int, items []Item, opts Options) *Tree {
	t := New(ckLen, rkLen, opts)
	if len(items) == 0 {
		return t
	}
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sortItems(sorted, opts.Parallelism)
	for _, it := range sorted {
		t.checkKey(it.Key)
	}
	// Leaf level. packBounds keeps every node (beyond a lone root) at or
	// above the minimum fill so later Inserts preserve the invariants.
	var level []*node
	for _, b := range packBounds(len(sorted), t.maxEntries, t.minEntries) {
		n := &node{leaf: true}
		for _, it := range sorted[b[0]:b[1]] {
			n.entries = append(n.entries, entry{key: it.Key, item: it})
		}
		level = append(level, n)
	}
	height := 1
	for len(level) > 1 {
		var up []*node
		for _, b := range packBounds(len(level), t.maxEntries, t.minEntries) {
			n := &node{leaf: false}
			for _, child := range level[b[0]:b[1]] {
				n.entries = append(n.entries, entry{key: unionOf(child), child: child})
			}
			up = append(up, n)
		}
		level = up
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(sorted)
	return t
}

// packBounds slices n items into groups of at most max entries where every
// group except a lone first one holds at least min entries: when the tail
// group would underflow, items are rebalanced from the previous group.
func packBounds(n, max, min int) [][2]int {
	if n == 0 {
		return nil
	}
	var bounds [][2]int
	for lo := 0; lo < n; {
		hi := lo + max
		if hi > n {
			hi = n
		}
		// If what remains after this group is a non-empty underfull tail,
		// shrink this group to leave the tail at least min items.
		rest := n - hi
		if rest > 0 && rest < min {
			hi -= min - rest
			if hi-lo < min {
				hi = lo + min // both can't underflow since n-lo >= max >= 2*min is not guaranteed; favour this group
			}
		}
		bounds = append(bounds, [2]int{lo, hi})
		lo = hi
	}
	// A final underfull group can still occur when n < 2*min in total;
	// merge it into its predecessor if that stays within capacity.
	if len(bounds) >= 2 {
		last := bounds[len(bounds)-1]
		prev := bounds[len(bounds)-2]
		if last[1]-last[0] < min && last[1]-prev[0] <= max {
			bounds[len(bounds)-2] = [2]int{prev[0], last[1]}
			bounds = bounds[:len(bounds)-1]
		}
	}
	return bounds
}

// compareKeys orders pattern keys by consequence part then premise part,
// most significant bits first, so bulk loading clusters same-consequence
// patterns together.
func compareKeys(a, b bitkey.PatternKey) int {
	if c := a.CK.Compare(b.CK); c != 0 {
		return c
	}
	return a.RK.Compare(b.RK)
}

// itemLess is BulkLoad's sort order: key order with Ref as tie-break.
func itemLess(a, b Item) bool {
	if c := compareKeys(a.Key, b.Key); c != 0 {
		return c < 0
	}
	return a.Ref < b.Ref // deterministic tie-break
}

// sortItems orders items for bulk loading. With workers > 1 the slice is
// cut into contiguous runs, the runs sort concurrently, and sorted runs
// merge pairwise with ties resolved to the left (earlier) run — a stable
// merge of stable runs, so the result equals the serial stable sort
// byte-for-byte regardless of the worker count.
func sortItems(items []Item, workers int) {
	workers = parallel.Workers(workers)
	// Tiny inputs gain nothing from fan-out; the goroutine overhead
	// dominates below a few thousand comparisons per run.
	const minRun = 1024
	if workers > 1 && len(items)/workers < minRun {
		workers = len(items) / minRun
	}
	if workers <= 1 {
		sort.SliceStable(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
		return
	}
	// Cut into `workers` contiguous runs.
	bounds := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * len(items) / workers
		hi := (w + 1) * len(items) / workers
		if lo < hi {
			bounds = append(bounds, [2]int{lo, hi})
		}
	}
	parallel.For(len(bounds), workers, func(r int) {
		run := items[bounds[r][0]:bounds[r][1]]
		sort.SliceStable(run, func(i, j int) bool { return itemLess(run[i], run[j]) })
	})
	// Pairwise merge rounds until one run remains.
	scratch := make([]Item, len(items))
	for len(bounds) > 1 {
		var merged [][2]int
		for i := 0; i < len(bounds); i += 2 {
			if i+1 == len(bounds) {
				merged = append(merged, bounds[i])
				continue
			}
			lo, mid, hi := bounds[i][0], bounds[i][1], bounds[i+1][1]
			mergeRuns(items, scratch, lo, mid, hi)
			merged = append(merged, [2]int{lo, hi})
		}
		bounds = merged
	}
}

// mergeRuns stably merges the sorted runs items[lo:mid] and items[mid:hi]
// in place via the scratch buffer; ties go to the left run.
func mergeRuns(items, scratch []Item, lo, mid, hi int) {
	i, j, o := lo, mid, lo
	for i < mid && j < hi {
		if itemLess(items[j], items[i]) {
			scratch[o] = items[j]
			j++
		} else {
			scratch[o] = items[i]
			i++
		}
		o++
	}
	copy(scratch[o:], items[i:mid])
	o += mid - i
	copy(scratch[o:], items[j:hi])
	copy(items[lo:hi], scratch[lo:hi])
}
