package tpt

import (
	"fmt"

	"hpm/internal/bitkey"
)

// In-place mutation beyond Insert: retiring a pattern whose support or
// confidence fell (delta-Apriori demotion), rewriting a confidence, and
// widening every key when minted regions or new consequence offsets grow
// the key space. §V-B only specifies insertion; deletion follows the
// signature-tree shape — descend containing entries, tighten union keys
// on the way back up.
//
// Deletion tolerates node underflow: a leaf may drop below the minimum
// fill without triggering re-insertion. Search stays correct (union keys
// are tightened), only packing quality degrades — and the periodic batch
// rebuild that backstops incremental training restores it.

// Delete removes the item with the given key and ref, returning false
// when no such item is indexed. Key lengths must match the tree's.
func (t *Tree) Delete(key bitkey.PatternKey, ref int) bool {
	t.checkKey(key)
	if !t.deleteIn(t.root, key, ref) {
		return false
	}
	t.size--
	// A single-entry internal root adds a level no search needs.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	return true
}

func (t *Tree) deleteIn(n *node, key bitkey.PatternKey, ref int) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.item.Ref == ref && e.key.Equal(key) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, e := range n.entries {
		// A union key contains every key below it, so subtrees whose
		// entry does not contain the target cannot hold it.
		if !e.key.Contains(key) {
			continue
		}
		if t.deleteIn(e.child, key, ref) {
			if len(e.child.entries) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].key = unionOf(e.child)
			}
			return true
		}
	}
	return false
}

// UpdateConf rewrites the confidence of the item with the given key and
// ref. Confidence is payload, not part of the key, so the tree shape and
// every union key stay untouched. Returns false when the item is absent.
func (t *Tree) UpdateConf(key bitkey.PatternKey, ref int, conf float64) bool {
	t.checkKey(key)
	return t.updateConfIn(t.root, key, ref, conf)
}

func (t *Tree) updateConfIn(n *node, key bitkey.PatternKey, ref int, conf float64) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.item.Ref == ref && e.key.Equal(key) {
				n.entries[i].item.Conf = conf
				return true
			}
		}
		return false
	}
	for _, e := range n.entries {
		if e.key.Contains(key) && t.updateConfIn(e.child, key, ref, conf) {
			return true
		}
	}
	return false
}

// GrowKeys widens every key in the tree to the given lengths. Grown bits
// are high-order zeros — existing bit positions keep their meaning — so
// search results for already-indexed patterns are unchanged; the tree
// merely becomes able to hold keys mentioning newly minted regions or
// consequence offsets. Shrinking panics.
func (t *Tree) GrowKeys(ckLen, rkLen int) {
	if ckLen < t.ckLen || rkLen < t.rkLen {
		panic(fmt.Sprintf("tpt: GrowKeys (%d,%d) would shrink tree keys (%d,%d)",
			ckLen, rkLen, t.ckLen, t.rkLen))
	}
	if ckLen == t.ckLen && rkLen == t.rkLen {
		return
	}
	var rec func(n *node)
	rec = func(n *node) {
		for i := range n.entries {
			e := &n.entries[i]
			e.key = bitkey.PatternKey{CK: e.key.CK.Grown(ckLen), RK: e.key.RK.Grown(rkLen)}
			if n.leaf {
				e.item.Key = e.key
			} else {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	t.ckLen, t.rkLen = ckLen, rkLen
}
