package tpt

import (
	"math/rand"
	"sort"
	"testing"

	"hpm/internal/bitkey"
)

// randomItem builds an item with a single consequence bit and 1..maxPremise
// premise bits, the shape real pattern keys have.
func randomItem(r *rand.Rand, ckLen, rkLen, ref int) Item {
	k := bitkey.NewPatternKey(ckLen, rkLen)
	k.CK.Set(1 + r.Intn(ckLen))
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		k.RK.Set(1 + r.Intn(rkLen))
	}
	return Item{Key: k, Conf: r.Float64(), Ref: ref}
}

func randomQuery(r *rand.Rand, ckLen, rkLen int) bitkey.PatternKey {
	q := bitkey.NewPatternKey(ckLen, rkLen)
	q.CK.Set(1 + r.Intn(ckLen))
	for i := 0; i < 1+r.Intn(4); i++ {
		q.RK.Set(1 + r.Intn(rkLen))
	}
	return q
}

func collectIntersect(t *Tree, q bitkey.PatternKey) []int {
	var refs []int
	t.SearchIntersect(q, func(it Item) bool {
		refs = append(refs, it.Ref)
		return true
	})
	sort.Ints(refs)
	return refs
}

func collectConsequence(t *Tree, q bitkey.PatternKey) []int {
	var refs []int
	t.SearchConsequence(q, func(it Item) bool {
		refs = append(refs, it.Ref)
		return true
	})
	sort.Ints(refs)
	return refs
}

func bruteIntersect(items []Item, q bitkey.PatternKey) []int {
	var refs []int
	for _, it := range items {
		if it.Key.Intersects(q) {
			refs = append(refs, it.Ref)
		}
	}
	sort.Ints(refs)
	return refs
}

func bruteConsequence(items []Item, q bitkey.PatternKey) []int {
	var refs []int
	for _, it := range items {
		if it.Key.IntersectsConsequence(q) {
			refs = append(refs, it.Ref)
		}
	}
	sort.Ints(refs)
	return refs
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants verifies structural invariants: internal entry keys are
// exactly the union of their subtree, all leaves share one depth, node fill
// respects [minEntries, maxEntries] except at the root, and size matches.
func checkInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	count := 0
	var depthOfLeaf = -1
	var rec func(n *node, depth int, isRoot bool) bitkey.PatternKey
	rec = func(n *node, depth int, isRoot bool) bitkey.PatternKey {
		if len(n.entries) == 0 {
			if !isRoot {
				t.Fatal("empty non-root node")
			}
			return bitkey.NewPatternKey(tree.ckLen, tree.rkLen)
		}
		if !isRoot && (len(n.entries) < tree.minEntries || len(n.entries) > tree.maxEntries) {
			t.Fatalf("node fill %d outside [%d,%d]", len(n.entries), tree.minEntries, tree.maxEntries)
		}
		if len(n.entries) > tree.maxEntries {
			t.Fatalf("root overflow: %d > %d", len(n.entries), tree.maxEntries)
		}
		u := bitkey.NewPatternKey(tree.ckLen, tree.rkLen)
		for _, e := range n.entries {
			if n.leaf {
				count++
				if depthOfLeaf == -1 {
					depthOfLeaf = depth
				} else if depthOfLeaf != depth {
					t.Fatalf("leaves at depths %d and %d", depthOfLeaf, depth)
				}
				if !e.key.Equal(e.item.Key) {
					t.Fatal("leaf entry key differs from item key")
				}
				u.UnionInPlace(e.key)
			} else {
				sub := rec(e.child, depth+1, false)
				if !e.key.Equal(sub) {
					t.Fatalf("internal key %s != subtree union %s", e.key, sub)
				}
				u.UnionInPlace(sub)
			}
		}
		return u
	}
	rec(tree.root, 1, true)
	if count != tree.size {
		t.Fatalf("counted %d items, size says %d", count, tree.size)
	}
	if depthOfLeaf != -1 && depthOfLeaf != tree.height {
		t.Fatalf("leaf depth %d != height %d", depthOfLeaf, tree.height)
	}
}

func TestEmptyTree(t *testing.T) {
	tree := New(2, 5, Options{})
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("empty tree: len %d height %d", tree.Len(), tree.Height())
	}
	q := bitkey.MustParsePattern("1000011", 2)
	if got := collectIntersect(tree, q); len(got) != 0 {
		t.Errorf("search on empty tree found %v", got)
	}
}

// Paper Figure 4: the four Jane patterns indexed, queried with 1000011.
// The two shaded leaf entries (P2, P3) must be returned and the P0/P1 leaf
// must be pruned.
func TestPaperFigure4(t *testing.T) {
	items := []Item{
		{Key: bitkey.MustParsePattern("0100001", 2), Conf: 0.9, Ref: 0}, // P0
		{Key: bitkey.MustParsePattern("0100001", 2), Conf: 0.8, Ref: 1}, // P1
		{Key: bitkey.MustParsePattern("1000011", 2), Conf: 0.5, Ref: 2}, // P2
		{Key: bitkey.MustParsePattern("1000101", 2), Conf: 0.4, Ref: 3}, // P3
	}
	tree := New(2, 5, Options{})
	for _, it := range items {
		tree.Insert(it)
	}
	q := bitkey.MustParsePattern("1000011", 2)
	got := collectIntersect(tree, q)
	if !equalInts(got, []int{2, 3}) {
		t.Errorf("Figure 4 query returned %v, want [2 3]", got)
	}
	checkInvariants(t, tree)
}

func TestInsertSearchEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		ckLen := 4 + r.Intn(20)
		rkLen := 10 + r.Intn(100)
		n := 50 + r.Intn(500)
		items := make([]Item, n)
		tree := New(ckLen, rkLen, Options{MaxEntries: 4 + r.Intn(28)})
		for i := range items {
			items[i] = randomItem(r, ckLen, rkLen, i)
			tree.Insert(items[i])
		}
		checkInvariants(t, tree)
		for qi := 0; qi < 25; qi++ {
			q := randomQuery(r, ckLen, rkLen)
			if got, want := collectIntersect(tree, q), bruteIntersect(items, q); !equalInts(got, want) {
				t.Fatalf("trial %d: intersect mismatch: got %v want %v", trial, got, want)
			}
			if got, want := collectConsequence(tree, q), bruteConsequence(items, q); !equalInts(got, want) {
				t.Fatalf("trial %d: consequence mismatch: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestBulkLoadEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		ckLen, rkLen := 10, 80
		n := 1 + r.Intn(2000)
		items := make([]Item, n)
		for i := range items {
			items[i] = randomItem(r, ckLen, rkLen, i)
		}
		tree := BulkLoad(ckLen, rkLen, items, Options{MaxEntries: 16})
		if tree.Len() != n {
			t.Fatalf("bulk tree has %d items, want %d", tree.Len(), n)
		}
		for qi := 0; qi < 20; qi++ {
			q := randomQuery(r, ckLen, rkLen)
			if got, want := collectIntersect(tree, q), bruteIntersect(items, q); !equalInts(got, want) {
				t.Fatalf("trial %d: bulk intersect mismatch", trial)
			}
		}
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tree := BulkLoad(2, 5, nil, Options{})
	if tree.Len() != 0 {
		t.Error("empty bulk load not empty")
	}
	one := []Item{{Key: bitkey.MustParsePattern("0100001", 2), Ref: 7}}
	tree = BulkLoad(2, 5, one, Options{})
	if tree.Len() != 1 || tree.Height() != 1 {
		t.Errorf("single bulk load: len %d height %d", tree.Len(), tree.Height())
	}
	got := collectIntersect(tree, bitkey.MustParsePattern("0100001", 2))
	if !equalInts(got, []int{7}) {
		t.Errorf("single item not found: %v", got)
	}
}

func TestMixedBulkThenInsert(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ckLen, rkLen := 8, 60
	var items []Item
	for i := 0; i < 300; i++ {
		items = append(items, randomItem(r, ckLen, rkLen, i))
	}
	tree := BulkLoad(ckLen, rkLen, items[:200], Options{MaxEntries: 8})
	for _, it := range items[200:] {
		tree.Insert(it)
	}
	checkInvariants(t, tree)
	for qi := 0; qi < 30; qi++ {
		q := randomQuery(r, ckLen, rkLen)
		if got, want := collectIntersect(tree, q), bruteIntersect(items, q); !equalInts(got, want) {
			t.Fatalf("mixed tree mismatch: got %v want %v", got, want)
		}
	}
}

func TestDisableIntersectStepStillCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ckLen, rkLen := 6, 40
	var items []Item
	tree := New(ckLen, rkLen, Options{MaxEntries: 8, DisableIntersectStep: true})
	for i := 0; i < 400; i++ {
		it := randomItem(r, ckLen, rkLen, i)
		items = append(items, it)
		tree.Insert(it)
	}
	checkInvariants(t, tree)
	for qi := 0; qi < 30; qi++ {
		q := randomQuery(r, ckLen, rkLen)
		if got, want := collectIntersect(tree, q), bruteIntersect(items, q); !equalInts(got, want) {
			t.Fatal("ablated ChooseLeaf broke search correctness")
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tree := New(4, 20, Options{})
	for i := 0; i < 200; i++ {
		tree.Insert(randomItem(r, 4, 20, i))
	}
	q := bitkey.NewPatternKey(4, 20)
	for i := 1; i <= 4; i++ {
		q.CK.Set(i)
	}
	for i := 1; i <= 20; i++ {
		q.RK.Set(i)
	}
	seen := 0
	tree.SearchIntersect(q, func(Item) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("early stop visited %d items, want 5", seen)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	tree := New(4, 20, Options{MaxEntries: 6})
	want := map[int]bool{}
	for i := 0; i < 150; i++ {
		tree.Insert(randomItem(r, 4, 20, i))
		want[i] = true
	}
	got := map[int]bool{}
	tree.All(func(it Item) bool {
		got[it.Ref] = true
		return true
	})
	if len(got) != len(want) {
		t.Errorf("All visited %d items, want %d", len(got), len(want))
	}
}

func TestKeyLengthMismatchPanics(t *testing.T) {
	tree := New(2, 5, Options{})
	defer func() {
		if recover() == nil {
			t.Error("mismatched key did not panic")
		}
	}()
	tree.Insert(Item{Key: bitkey.NewPatternKey(3, 5)})
}

func TestStats(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	tree := New(10, 80, Options{MaxEntries: 8})
	for i := 0; i < 500; i++ {
		tree.Insert(randomItem(r, 10, 80, i))
	}
	s := tree.Stats()
	if s.Items != 500 {
		t.Errorf("Stats.Items = %d, want 500", s.Items)
	}
	if s.LeafNodes == 0 || s.InternalNode == 0 {
		t.Errorf("Stats nodes: %+v", s)
	}
	if s.Height != tree.Height() {
		t.Errorf("Stats.Height = %d, want %d", s.Height, tree.Height())
	}
	if s.StorageBytes <= 0 {
		t.Error("StorageBytes not positive")
	}
	// More frequent regions (wider keys) must cost more storage for the
	// same item count — the Figure 11(a) effect.
	wide := New(10, 800, Options{MaxEntries: 8})
	r2 := rand.New(rand.NewSource(53))
	for i := 0; i < 500; i++ {
		wide.Insert(randomItem(r2, 10, 800, i))
	}
	if wide.Stats().StorageBytes <= s.StorageBytes {
		t.Error("wider keys did not increase storage")
	}
}

func TestBruteForceBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	var items []Item
	for i := 0; i < 300; i++ {
		items = append(items, randomItem(r, 6, 40, i))
	}
	bf := NewBruteForce(items)
	if bf.Len() != 300 {
		t.Fatalf("Len = %d", bf.Len())
	}
	for qi := 0; qi < 20; qi++ {
		q := randomQuery(r, 6, 40)
		var got []int
		examined := bf.SearchIntersect(q, func(it Item) bool {
			got = append(got, it.Ref)
			return true
		})
		if examined != 300 {
			t.Errorf("brute force examined %d, want 300", examined)
		}
		sort.Ints(got)
		if want := bruteIntersect(items, q); !equalInts(got, want) {
			t.Fatal("BruteForce.SearchIntersect mismatch")
		}
		var gotC []int
		bf.SearchConsequence(q, func(it Item) bool {
			gotC = append(gotC, it.Ref)
			return true
		})
		sort.Ints(gotC)
		if want := bruteConsequence(items, q); !equalInts(gotC, want) {
			t.Fatal("BruteForce.SearchConsequence mismatch")
		}
	}
}

// The paper's motivation for the tree: node accesses must stay well below
// a full scan for selective queries.
func TestSearchPrunesNodes(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	ckLen, rkLen := 50, 400
	var items []Item
	for i := 0; i < 5000; i++ {
		items = append(items, randomItem(r, ckLen, rkLen, i))
	}
	tree := BulkLoad(ckLen, rkLen, items, Options{MaxEntries: 32})
	total := tree.Stats().LeafNodes + tree.Stats().InternalNode
	q := bitkey.NewPatternKey(ckLen, rkLen)
	q.CK.Set(1 + r.Intn(ckLen))
	q.RK.Set(1 + r.Intn(rkLen))
	touched := tree.SearchIntersect(q, func(Item) bool { return true })
	if touched >= total {
		t.Errorf("search touched %d of %d nodes: no pruning", touched, total)
	}
}
