package tpt

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the index operations underlying Figure 11.

func benchItems(n int) ([]Item, []Item) {
	r := rand.New(rand.NewSource(1))
	items := make([]Item, n)
	for i := range items {
		items[i] = randomItem(r, 100, 800, i)
	}
	queries := make([]Item, 256)
	for i := range queries {
		queries[i] = randomItem(r, 100, 800, i)
	}
	return items, queries
}

func BenchmarkInsert10K(b *testing.B) {
	items, _ := benchItems(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(100, 800, Options{})
		for _, it := range items {
			t.Insert(it)
		}
	}
}

func BenchmarkBulkLoad10K(b *testing.B) {
	items, _ := benchItems(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(100, 800, items, Options{})
	}
}

func BenchmarkSearchIntersect10K(b *testing.B) {
	items, queries := benchItems(10000)
	t := BulkLoad(100, 800, items, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		t.SearchIntersect(q.Key, func(Item) bool { return true })
	}
}

func BenchmarkBruteForce10K(b *testing.B) {
	items, queries := benchItems(10000)
	bf := NewBruteForce(items)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		bf.SearchIntersect(q.Key, func(Item) bool { return true })
	}
}
