// Package faultinject lets tests deterministically inject failures into
// the store's durability and training paths. A Hook is consulted at each
// named fault point; returning an error makes that operation fail, and a
// hook may panic to exercise crash-recovery paths. Production code runs
// with a nil hook, which costs one atomic load per fault point.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Op names one fault point.
type Op string

// Fault points consulted by the store.
const (
	// OpTrain fires on the trainer goroutine right before a model train.
	OpTrain Op = "train"
	// OpWALAppend fires before a write-ahead-log record is written; an
	// error here means the observation is not acknowledged.
	OpWALAppend Op = "wal-append"
	// OpSnapshot fires at the start of a checkpoint; an error aborts the
	// snapshot and keeps every WAL segment intact.
	OpSnapshot Op = "snapshot"
)

// Hook decides the fate of one operation: nil lets it proceed, an error
// fails it, and a panic crashes it (the store's trainers recover).
type Hook func(Op) error

// ErrInjected is the default error returned by injected failures.
var ErrInjected = errors.New("faultinject: injected failure")

// FailN returns a hook that fails the first n invocations of op with err
// (ErrInjected when err is nil) and then lets everything through. Safe for
// concurrent use.
func FailN(op Op, n int64, err error) Hook {
	if err == nil {
		err = ErrInjected
	}
	var count atomic.Int64
	return func(got Op) error {
		if got == op && count.Add(1) <= n {
			return err
		}
		return nil
	}
}

// PanicN returns a hook that panics on the first n invocations of op,
// simulating a crashing worker. Safe for concurrent use.
func PanicN(op Op, n int64) Hook {
	var count atomic.Int64
	return func(got Op) error {
		if got == op && count.Add(1) <= n {
			panic(fmt.Sprintf("faultinject: injected panic on %s", op))
		}
		return nil
	}
}

// Join runs hooks in order, returning the first error.
func Join(hooks ...Hook) Hook {
	return func(op Op) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(op); err != nil {
				return err
			}
		}
		return nil
	}
}
