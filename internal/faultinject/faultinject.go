// Package faultinject lets tests deterministically inject failures into
// the store's durability and training paths. A Hook is consulted at each
// named fault point; returning an error makes that operation fail, and a
// hook may panic to exercise crash-recovery paths. Production code runs
// with a nil hook, which costs one atomic load per fault point.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Op names one fault point.
type Op string

// Fault points consulted by the store.
const (
	// OpTrain fires on the trainer goroutine right before a model train.
	OpTrain Op = "train"
	// OpWALAppend fires before a write-ahead-log record is written; an
	// error here means the observation is not acknowledged.
	OpWALAppend Op = "wal-append"
	// OpSnapshot fires at the start of a checkpoint; an error aborts the
	// snapshot and keeps every WAL segment intact.
	OpSnapshot Op = "snapshot"
	// OpSnapshotShard fires before each per-shard segment write inside a
	// checkpoint; an error aborts the checkpoint after some segments may
	// already be on disk — the manifest is never updated, so the previous
	// snapshot and every WAL segment stay authoritative.
	OpSnapshotShard Op = "snapshot-shard"
	// OpManifest fires twice per checkpoint: once before the manifest is
	// committed (an error aborts with the old manifest intact) and once
	// after the rename but before WAL reclaim (an error simulates a crash
	// in the window where the new snapshot is live but obsolete WAL
	// segments still exist — they must replay as no-ops).
	OpManifest Op = "manifest"
	// OpWALSyncError fires before each WAL group-commit fsync (and in the
	// store's recovery probe); an error fails the sync without touching
	// the segment's bytes, simulating a stalling or erroring disk flush.
	OpWALSyncError Op = "wal-sync-error"
	// OpWALSyncLatency fires before each WAL fsync purely so a hook can
	// sleep there, simulating a slow disk; returned errors fail the sync
	// like OpWALSyncError.
	OpWALSyncLatency Op = "wal-sync-latency"
	// OpDiskFull fires before WAL segment writes, before snapshot writes,
	// and in the recovery probe; an error simulates ENOSPC (wrap
	// syscall.ENOSPC to exercise the store's immediate-degrade path). A
	// failed segment write leaves the segment tail untrusted, exactly
	// like a real short write.
	OpDiskFull Op = "disk-full"
	// OpSlowClient fires at request admission in the HTTP layer so a hook
	// can sleep there, simulating a slow or stalled client holding a
	// request slot.
	OpSlowClient Op = "slow-client"
)

// Hook decides the fate of one operation: nil lets it proceed, an error
// fails it, and a panic crashes it (the store's trainers recover).
type Hook func(Op) error

// ErrInjected is the default error returned by injected failures.
var ErrInjected = errors.New("faultinject: injected failure")

// FailN returns a hook that fails the first n invocations of op with err
// (ErrInjected when err is nil) and then lets everything through. Safe for
// concurrent use.
func FailN(op Op, n int64, err error) Hook {
	if err == nil {
		err = ErrInjected
	}
	var count atomic.Int64
	return func(got Op) error {
		if got == op && count.Add(1) <= n {
			return err
		}
		return nil
	}
}

// DelayN returns a hook that sleeps d on the first n invocations of op
// and then lets everything through untouched, simulating slow hardware
// (a stalling fsync, a congested disk) or a slow client. It never fails
// the operation. Safe for concurrent use; n < 0 delays forever.
func DelayN(op Op, n int64, d time.Duration) Hook {
	var count atomic.Int64
	return func(got Op) error {
		if got == op && (n < 0 || count.Add(1) <= n) {
			time.Sleep(d)
		}
		return nil
	}
}

// PanicN returns a hook that panics on the first n invocations of op,
// simulating a crashing worker. Safe for concurrent use.
func PanicN(op Op, n int64) Hook {
	var count atomic.Int64
	return func(got Op) error {
		if got == op && count.Add(1) <= n {
			panic(fmt.Sprintf("faultinject: injected panic on %s", op))
		}
		return nil
	}
}

// Join runs hooks in order, returning the first error.
func Join(hooks ...Hook) Hook {
	return func(op Op) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(op); err != nil {
				return err
			}
		}
		return nil
	}
}
