package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFailN(t *testing.T) {
	h := FailN(OpTrain, 2, nil)
	for i := 0; i < 2; i++ {
		if err := h(OpTrain); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := h(OpTrain); err != nil {
		t.Fatalf("call 3: err = %v, want nil", err)
	}
	if err := h(OpSnapshot); err != nil {
		t.Fatalf("other op failed: %v", err)
	}
}

func TestFailNCustomError(t *testing.T) {
	sentinel := errors.New("disk full")
	h := FailN(OpWALAppend, 1, sentinel)
	if err := h(OpWALAppend); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestPanicN(t *testing.T) {
	h := PanicN(OpTrain, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("first call did not panic")
			}
		}()
		h(OpTrain)
	}()
	if err := h(OpTrain); err != nil {
		t.Fatalf("second call: %v", err)
	}
}

func TestJoin(t *testing.T) {
	h := Join(nil, FailN(OpTrain, 1, nil), FailN(OpSnapshot, 1, nil))
	if err := h(OpSnapshot); !errors.Is(err, ErrInjected) {
		t.Fatalf("joined hook missed op: %v", err)
	}
	if err := h(OpTrain); !errors.Is(err, ErrInjected) {
		t.Fatalf("joined hook missed op: %v", err)
	}
	if err := h(OpTrain); err != nil {
		t.Fatalf("exhausted hook still failing: %v", err)
	}
}

func TestDelayN(t *testing.T) {
	h := DelayN(OpWALSyncLatency, 2, 20*time.Millisecond)
	start := time.Now()
	if err := h(OpWALSyncLatency); err != nil {
		t.Fatalf("delay hook failed the op: %v", err)
	}
	if err := h(OpDiskFull); err != nil {
		t.Fatalf("delay hook touched a foreign op: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("first matching call returned in %v; delay not applied", elapsed)
	}
	h(OpWALSyncLatency) // second delayed call exhausts the budget
	start = time.Now()
	h(OpWALSyncLatency)
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("exhausted delay hook still sleeping (%v)", elapsed)
	}
}
