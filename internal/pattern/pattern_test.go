package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// janeGroups builds a three-offset dataset shaped like the paper's running
// example (Fig. 3): 20 sub-trajectories that all start at Home, split
// between City (subs 0-9) and Shopping center (subs 10-19) at offset 1, and
// end at Work (subs 0-4), noise (5-9), Beach (10-17), noise (18-19).
func janeGroups() []trajectory.Group {
	const n = 20
	jitter := func(c geom.Point, i int) geom.Point {
		// Deterministic sub-Eps jitter so clusters are tight.
		return geom.Pt(c.X+float64(i%5), c.Y+float64((i*3)%7))
	}
	home := geom.Pt(100, 100)
	city := geom.Pt(2000, 2000)
	shop := geom.Pt(3000, 1000)
	work := geom.Pt(4000, 4000)
	beach := geom.Pt(5000, 1000)

	g0 := trajectory.Group{Offset: 0, Points: make([]geom.Point, n)}
	g1 := trajectory.Group{Offset: 1, Points: make([]geom.Point, n)}
	g2 := trajectory.Group{Offset: 2, Points: make([]geom.Point, n)}
	for i := 0; i < n; i++ {
		g0.Points[i] = jitter(home, i)
		if i < 10 {
			g1.Points[i] = jitter(city, i)
		} else {
			g1.Points[i] = jitter(shop, i)
		}
		switch {
		case i < 5:
			g2.Points[i] = jitter(work, i)
		case i < 10:
			// Noise: pairwise-distant singletons.
			g2.Points[i] = geom.Pt(float64(1000*i), 9000)
		case i < 18:
			g2.Points[i] = jitter(beach, i)
		default:
			g2.Points[i] = geom.Pt(float64(1000*i), 200)
		}
	}
	return []trajectory.Group{g0, g1, g2}
}

func janeTable(t *testing.T) *RegionTable {
	t.Helper()
	rt := DiscoverRegions(janeGroups(), 30, 4)
	if rt.Len() != 5 {
		t.Fatalf("discovered %d regions, want 5", rt.Len())
	}
	return rt
}

func TestDiscoverRegionsJane(t *testing.T) {
	rt := janeTable(t)
	wants := []struct {
		id      RegionID
		offset  int
		index   int
		support int
	}{
		{0, 0, 0, 20}, // Home
		{1, 1, 0, 10}, // City
		{2, 1, 1, 10}, // Shopping center
		{3, 2, 0, 5},  // Work
		{4, 2, 1, 8},  // Beach
	}
	for _, w := range wants {
		fr := rt.Region(w.id)
		if fr.Offset != w.offset || fr.Index != w.index || fr.Support != w.support {
			t.Errorf("region %d = %s support %d, want R_%d^%d support %d",
				w.id, fr, fr.Support, w.offset, w.index, w.support)
		}
	}
	if got := len(rt.AtOffset(1)); got != 2 {
		t.Errorf("regions at offset 1 = %d, want 2", got)
	}
	if got := len(rt.AtOffset(7)); got != 0 {
		t.Errorf("regions at empty offset = %d, want 0", got)
	}
}

func TestRegionVisitors(t *testing.T) {
	rt := janeTable(t)
	city := rt.Region(1)
	for j := 0; j < 20; j++ {
		if city.Visits(j) != (j < 10) {
			t.Errorf("City.Visits(%d) = %v", j, city.Visits(j))
		}
	}
}

func TestRegionKeysMatchPaperTableI(t *testing.T) {
	rt := janeTable(t)
	want := []string{"00001", "00010", "00100", "01000", "10000"}
	for id, s := range want {
		if got := rt.RegionKey(RegionID(id)).String(); got != s {
			t.Errorf("region key %d = %s, want %s", id, got, s)
		}
	}
	if got := rt.PremiseKey([]RegionID{0, 1}).String(); got != "00011" {
		t.Errorf("premise key R0^0^R1^0 = %s, want 00011", got)
	}
	if got := rt.PremiseKey([]RegionID{0, 2}).String(); got != "00101" {
		t.Errorf("premise key R0^0^R1^1 = %s, want 00101", got)
	}
}

func TestLocate(t *testing.T) {
	rt := janeTable(t)
	// A point inside City's MBR.
	if fr, ok := rt.Locate(1, geom.Pt(2002, 2003)); !ok || fr.ID != 1 {
		t.Errorf("Locate city = %v, %v", fr, ok)
	}
	// A point just outside the MBR but within Eps of the center.
	if fr, ok := rt.Locate(1, geom.Pt(2020, 2020)); !ok || fr.ID != 1 {
		t.Errorf("Locate near-city = %v, %v", fr, ok)
	}
	// Far from everything.
	if _, ok := rt.Locate(1, geom.Pt(9000, 9000)); ok {
		t.Error("Locate matched a far point")
	}
	// Offset with no regions.
	if _, ok := rt.Locate(9, geom.Pt(2000, 2000)); ok {
		t.Error("Locate matched at an empty offset")
	}
}

func expectPatterns(t *testing.T, rt *RegionTable, got []Pattern, want map[string]float64) {
	t.Helper()
	gotMap := map[string]float64{}
	for _, p := range got {
		gotMap[p.String()] = p.Confidence
	}
	if len(gotMap) != len(want) {
		t.Errorf("got %d distinct patterns, want %d:\n got: %v\nwant: %v", len(gotMap), len(want), gotMap, want)
	}
	for k, conf := range want {
		g, ok := gotMap[k]
		if !ok {
			t.Errorf("missing pattern %s", k)
			continue
		}
		if diff := g - conf; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("pattern %s confidence %v, want %v", k, g, conf)
		}
	}
}

func TestMineJane(t *testing.T) {
	rt := janeTable(t)
	patterns, stats := MineWithStats(rt, Config{MinSupport: 2, MinConfidence: 0.3, CountUnpruned: true})
	// Region ids: 0=Home 1=City 2=Shop 3=Work 4=Beach.
	want := map[string]float64{
		"r0 --0.50--> r1":      0.5, // Home -> City
		"r0 --0.50--> r2":      0.5, // Home -> Shop
		"r0 --0.40--> r4":      0.4, // Home -> Beach
		"r1 --0.50--> r3":      0.5, // City -> Work
		"r2 --0.80--> r4":      0.8, // Shop -> Beach
		"r0 ^ r1 --0.50--> r3": 0.5, // Home ^ City -> Work
		"r0 ^ r2 --0.80--> r4": 0.8, // Home ^ Shop -> Beach
	}
	expectPatterns(t, rt, patterns, want)
	if stats.Rules != len(patterns) {
		t.Errorf("stats.Rules = %d, want %d", stats.Rules, len(patterns))
	}
	if stats.FrequentItemsets != 8 {
		t.Errorf("FrequentItemsets = %d, want 8", stats.FrequentItemsets)
	}
	if stats.UnprunedRules <= stats.Rules {
		t.Errorf("UnprunedRules = %d, must exceed pruned %d", stats.UnprunedRules, stats.Rules)
	}
	if p := stats.ReductionPct(); p <= 0 || p >= 100 {
		t.Errorf("ReductionPct = %v out of (0,100)", p)
	}
}

// Home -> Work has confidence 5/20 = 0.25: below the 0.3 threshold, so it
// must be absent even though the itemset is frequent.
func TestMineConfidenceFilter(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})
	for _, p := range patterns {
		if len(p.Premise) == 1 && p.Premise[0] == 0 && p.Consequence == 3 {
			t.Errorf("low-confidence pattern %s emitted", p)
		}
	}
	// Lowering the threshold admits it.
	patterns = Mine(rt, Config{MinSupport: 2, MinConfidence: 0.2})
	found := false
	for _, p := range patterns {
		if len(p.Premise) == 1 && p.Premise[0] == 0 && p.Consequence == 3 {
			found = true
			if p.Confidence != 0.25 {
				t.Errorf("Home->Work confidence %v, want 0.25", p.Confidence)
			}
		}
	}
	if !found {
		t.Error("Home->Work missing at minConfidence 0.2")
	}
}

func TestMineMonotoneTimeConstraint(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0})
	for _, p := range patterns {
		last := -1
		for _, id := range p.Premise {
			off := rt.Region(id).Offset
			if off <= last {
				t.Errorf("pattern %s premise offsets not strictly increasing", p)
			}
			last = off
		}
		if rt.Region(p.Consequence).Offset <= last {
			t.Errorf("pattern %s consequence offset not after premise", p)
		}
	}
}

func TestMineMinSupport(t *testing.T) {
	rt := janeTable(t)
	// MinSupport 6 removes the Work region's itemsets (support 5).
	patterns := Mine(rt, Config{MinSupport: 6, MinConfidence: 0})
	for _, p := range patterns {
		if p.Consequence == 3 {
			t.Errorf("pattern %s survived MinSupport 6 with support %d", p, p.Support)
		}
		if p.Support < 6 {
			t.Errorf("pattern %s support %d below MinSupport", p, p.Support)
		}
	}
}

func TestMineMaxLength(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0, MaxLength: 2})
	for _, p := range patterns {
		if len(p.Premise) != 1 {
			t.Errorf("pattern %s exceeds MaxLength 2", p)
		}
	}
}

func TestMineEmptyTable(t *testing.T) {
	rt := DiscoverRegions(nil, 30, 4)
	if got := Mine(rt, Config{}); got != nil {
		t.Errorf("Mine on empty table = %v", got)
	}
}

func TestConsequenceTableMatchesPaperTableII(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})
	ct := NewConsequenceTable(rt, patterns)
	if ct.Len() != 2 {
		t.Fatalf("consequence table length %d, want 2", ct.Len())
	}
	if id, ok := ct.TimeID(1); !ok || id != 0 {
		t.Errorf("TimeID(1) = %d,%v want 0,true", id, ok)
	}
	if id, ok := ct.TimeID(2); !ok || id != 1 {
		t.Errorf("TimeID(2) = %d,%v want 1,true", id, ok)
	}
	if _, ok := ct.TimeID(0); ok {
		t.Error("offset 0 must not be a consequence offset")
	}
	if got := ct.Key(1).String(); got != "01" {
		t.Errorf("Key(1) = %s, want 01", got)
	}
	if got := ct.Key(2).String(); got != "10" {
		t.Errorf("Key(2) = %s, want 10", got)
	}
}

func TestEncoderMatchesPaperTableIII(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})
	ct := NewConsequenceTable(rt, patterns)
	enc := NewEncoder(rt, ct)
	want := map[string]string{
		"r0 --0.50--> r1":      "0100001",
		"r0 --0.50--> r2":      "0100001", // shares P0's key, as the paper notes
		"r0 ^ r1 --0.50--> r3": "1000011",
		"r0 ^ r2 --0.80--> r4": "1000101",
	}
	for _, p := range patterns {
		if w, ok := want[p.String()]; ok {
			if got := enc.Encode(p).String(); got != w {
				t.Errorf("pattern key of %s = %s, want %s", p, got, w)
			}
		}
	}
	// The paper's worked query: recent movements R0^0, R1^0 and tq=2.
	q := enc.QueryKey([]RegionID{0, 1}, 2)
	if q.String() != "1000011" {
		t.Errorf("query key = %s, want 1000011", q)
	}
}

func TestConsequenceKeyRange(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})
	ct := NewConsequenceTable(rt, patterns)
	if got := ct.KeyRange(0, 5).String(); got != "11" {
		t.Errorf("KeyRange(0,5) = %s, want 11", got)
	}
	if got := ct.KeyRange(2, 2).String(); got != "10" {
		t.Errorf("KeyRange(2,2) = %s, want 10", got)
	}
	if got := ct.KeyRange(3, 9).String(); got != "00" {
		t.Errorf("KeyRange(3,9) = %s, want 00", got)
	}
}

// bruteForceMine exhaustively enumerates monotone single-consequence rules
// over the region table by directly intersecting visitor sets, honouring the
// same MaxLength and PremiseSpan bounds as Mine.
func bruteForceMine(rt *RegionTable, cfg Config) map[string]float64 {
	cfg = cfg.withDefaults()
	rules := map[string]float64{}
	regions := rt.Regions()
	n := rt.NumSubTrajectories()

	support := func(ids []RegionID) int {
		count := 0
		for j := 0; j < n; j++ {
			all := true
			for _, id := range ids {
				if !rt.Region(id).Visits(j) {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		return count
	}

	var rec func(chosen []RegionID, next int)
	rec = func(chosen []RegionID, next int) {
		if len(chosen) >= 2 {
			// Validity: strictly increasing offsets, premise span.
			ok := true
			for i := 1; i < len(chosen); i++ {
				if rt.Region(chosen[i]).Offset <= rt.Region(chosen[i-1]).Offset {
					ok = false
				}
			}
			if cfg.PremiseSpan >= 0 && len(chosen) > 2 {
				span := rt.Region(chosen[len(chosen)-2]).Offset - rt.Region(chosen[0]).Offset
				if span > cfg.PremiseSpan {
					ok = false
				}
			}
			if cfg.ConsequenceReach >= 0 && len(chosen) > 2 {
				reach := rt.Region(chosen[len(chosen)-1]).Offset - rt.Region(chosen[len(chosen)-2]).Offset
				if reach > cfg.ConsequenceReach {
					ok = false
				}
			}
			if ok {
				sup := support(chosen)
				if sup >= cfg.MinSupport {
					premSup := support(chosen[:len(chosen)-1])
					conf := float64(sup) / float64(premSup)
					if conf >= cfg.MinConfidence {
						p := Pattern{Premise: chosen[:len(chosen)-1], Consequence: chosen[len(chosen)-1], Confidence: conf}
						rules[p.String()] = conf
					}
				}
			}
		}
		if len(chosen) == cfg.MaxLength {
			return
		}
		for i := next; i < len(regions); i++ {
			rec(append(chosen, regions[i].ID), i+1)
		}
	}
	rec(nil, 0)
	return rules
}

// Property: on random data Mine matches an exhaustive rule enumeration.
func TestMineMatchesBruteForceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	centers := []geom.Point{
		geom.Pt(1000, 1000), geom.Pt(5000, 1000), geom.Pt(1000, 5000), geom.Pt(5000, 5000),
	}
	for trial := 0; trial < 15; trial++ {
		nSubs := 8 + r.Intn(12)
		nOffsets := 3 + r.Intn(3)
		groups := make([]trajectory.Group, nOffsets)
		for off := range groups {
			groups[off] = trajectory.Group{Offset: off, Points: make([]geom.Point, nSubs)}
			for j := 0; j < nSubs; j++ {
				c := centers[r.Intn(len(centers))]
				groups[off].Points[j] = geom.Pt(c.X+r.Float64()*20-10, c.Y+r.Float64()*20-10)
			}
		}
		rt := DiscoverRegions(groups, 30, 3)
		cfg := Config{MinSupport: 2, MinConfidence: 0.25, MaxLength: 3, PremiseSpan: -1}
		got := Mine(rt, cfg)
		want := bruteForceMine(rt, cfg)
		gotMap := map[string]float64{}
		for _, p := range got {
			gotMap[p.String()] = p.Confidence
		}
		if len(gotMap) != len(want) {
			t.Fatalf("trial %d: %d rules, brute force %d\n got %v\nwant %v",
				trial, len(gotMap), len(want), gotMap, want)
		}
		for k, conf := range want {
			g, ok := gotMap[k]
			if !ok || g-conf > 1e-9 || conf-g > 1e-9 {
				t.Fatalf("trial %d: rule %s = %v, want %v (present %v)", trial, k, g, conf, ok)
			}
		}
	}
}

func TestSortPatternsDeterministic(t *testing.T) {
	rt := janeTable(t)
	a := Mine(rt, Config{MinSupport: 2, MinConfidence: 0})
	b := Mine(rt, Config{MinSupport: 2, MinConfidence: 0})
	SortPatterns(rt, a)
	SortPatterns(rt, b)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic mining: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Sorted by consequence offset.
	for i := 1; i < len(a); i++ {
		if rt.Region(a[i].Consequence).Offset < rt.Region(a[i-1].Consequence).Offset {
			t.Fatal("SortPatterns not ordered by consequence offset")
		}
	}
}

func TestPatternStringFormat(t *testing.T) {
	p := Pattern{Premise: []RegionID{0, 1}, Consequence: 3, Confidence: 0.5}
	if got, want := p.String(), "r0 ^ r1 --0.50--> r3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestRegionPanicsOnBadID(t *testing.T) {
	rt := janeTable(t)
	defer func() {
		if recover() == nil {
			t.Error("Region(99) did not panic")
		}
	}()
	rt.Region(99)
}

func TestFrequentRegionString(t *testing.T) {
	rt := janeTable(t)
	if got := fmt.Sprint(rt.Region(2)); got != "R_1^1" {
		t.Errorf("String = %q, want R_1^1", got)
	}
}

func BenchmarkMineJaneScale(b *testing.B) {
	// Mining over a realistic region table (built once).
	spec := struct{ offsets, subs int }{60, 30}
	r := rand.New(rand.NewSource(2))
	groups := make([]trajectory.Group, spec.offsets)
	centers := []geom.Point{geom.Pt(1000, 1000), geom.Pt(5000, 2000), geom.Pt(8000, 8000)}
	for off := range groups {
		groups[off] = trajectory.Group{Offset: off, Points: make([]geom.Point, spec.subs)}
		for j := 0; j < spec.subs; j++ {
			c := centers[j%len(centers)]
			groups[off].Points[j] = geom.Pt(c.X+r.Float64()*20, c.Y+r.Float64()*20)
		}
	}
	rt := DiscoverRegions(groups, 30, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(rt, Config{MinSupport: 4, MinConfidence: 0.3})
	}
}
