package pattern

import (
	"fmt"
	"sort"

	"hpm/internal/bitkey"
)

// ConsequenceTable is the consequence-key table of §V-A: the distinct time
// offsets appearing as pattern consequences, sorted, each assigned a dense
// time id. The consequence key of a pattern is the bit 2^timeID, so the
// consequence-key length equals the number of distinct consequence offsets
// — always at most the region-key length.
type ConsequenceTable struct {
	offsets []int       // sorted distinct consequence offsets
	ids     map[int]int // offset -> time id
}

// NewConsequenceTable builds the table from the consequences of the mined
// patterns.
func NewConsequenceTable(rt *RegionTable, patterns []Pattern) *ConsequenceTable {
	seen := map[int]bool{}
	for _, p := range patterns {
		seen[rt.Region(p.Consequence).Offset] = true
	}
	ct := &ConsequenceTable{ids: make(map[int]int, len(seen))}
	for off := range seen {
		ct.offsets = append(ct.offsets, off)
	}
	sort.Ints(ct.offsets)
	for id, off := range ct.offsets {
		ct.ids[off] = id
	}
	return ct
}

// Len returns the consequence-key length in bits.
func (ct *ConsequenceTable) Len() int { return len(ct.offsets) }

// TimeID returns the time id of a consequence offset; ok is false when no
// pattern's consequence has that offset.
func (ct *ConsequenceTable) TimeID(offset int) (id int, ok bool) {
	id, ok = ct.ids[offset]
	return id, ok
}

// Offsets returns the distinct consequence offsets in time-id order.
// NewConsequenceTable emits them sorted; AddOffset appends, so tables that
// grew dynamically are no longer sorted. Callers must not mutate the
// slice.
func (ct *ConsequenceTable) Offsets() []int { return ct.offsets }

// AddOffset ensures offset has a time id, appending a fresh one when
// absent — incremental mining can promote rules whose consequence offset
// no initial pattern reached. Appending keeps existing ids (and therefore
// existing consequence keys) stable at the cost of the sorted-offsets
// invariant, which only KeyRange relied on.
func (ct *ConsequenceTable) AddOffset(offset int) int {
	if id, ok := ct.ids[offset]; ok {
		return id
	}
	id := len(ct.offsets)
	ct.offsets = append(ct.offsets, offset)
	ct.ids[offset] = id
	return id
}

// Key returns a consequence key with the bits of all the given offsets that
// exist in the table. Offsets absent from the table are ignored, which is
// what Backward Query Processing needs when it widens its time window over
// offsets no pattern predicts.
func (ct *ConsequenceTable) Key(offsets ...int) bitkey.Key {
	k := bitkey.New(len(ct.offsets))
	for _, off := range offsets {
		if id, ok := ct.ids[off]; ok {
			k.Set(id + 1)
		}
	}
	return k
}

// KeyRange returns a consequence key with every table offset in [lo, hi]
// set. BQP's window [tq - i*tε, tq + i*tε] maps to exactly this call. The
// scan is linear: AddOffset appends out of order, and the table never
// exceeds one entry per period offset.
func (ct *ConsequenceTable) KeyRange(lo, hi int) bitkey.Key {
	k := bitkey.New(len(ct.offsets))
	for i, off := range ct.offsets {
		if off >= lo && off <= hi {
			k.Set(i + 1)
		}
	}
	return k
}

// Encoder turns trajectory patterns and predictive queries into the pattern
// keys the TPT indexes.
type Encoder struct {
	rt *RegionTable
	ct *ConsequenceTable
}

// NewEncoder returns an encoder over the given key tables.
func NewEncoder(rt *RegionTable, ct *ConsequenceTable) *Encoder {
	return &Encoder{rt: rt, ct: ct}
}

// RegionTable returns the region-key table the encoder was built over.
func (e *Encoder) RegionTable() *RegionTable { return e.rt }

// ConsequenceTable returns the consequence-key table.
func (e *Encoder) ConsequenceTable() *ConsequenceTable { return e.ct }

// Encode returns the pattern key of a mined pattern: the consequence key of
// its consequence offset placed before the OR of its premise region keys.
func (e *Encoder) Encode(p Pattern) bitkey.PatternKey {
	off := e.rt.Region(p.Consequence).Offset
	id, ok := e.ct.TimeID(off)
	if !ok {
		panic(fmt.Sprintf("pattern: consequence offset %d missing from table", off))
	}
	ck := bitkey.New(e.ct.Len())
	ck.Set(id + 1)
	return bitkey.PatternKey{CK: ck, RK: e.rt.PremiseKey(p.Premise)}
}

// QueryKey encodes a predictive query: the frequent regions the object
// visited recently (its premise) and the consequence offsets of interest —
// a single offset for FQP, a window for BQP.
func (e *Encoder) QueryKey(visited []RegionID, consequenceOffsets ...int) bitkey.PatternKey {
	return bitkey.PatternKey{
		CK: e.ct.Key(consequenceOffsets...),
		RK: e.rt.PremiseKey(visited),
	}
}
