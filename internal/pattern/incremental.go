package pattern

import (
	"fmt"
	"sort"
)

// Delta-Apriori: the incremental counterpart of MineWithStats. The miner
// keeps every frequent itemset's support alongside the region table, so
// absorbing one new sub-trajectory touches only the itemsets contained in
// that sub-trajectory's region chain instead of re-counting every
// candidate over the full visitor bitmaps. Retiring an expired
// sub-trajectory reverses the same enumeration. GeT_Move mines the same
// class of spatio-temporal patterns with exactly this shape of bounded,
// delta-proportional update; §V-B of the paper gestures at it with the
// TPT insertion algorithm.
//
// Invariant: a tracked itemset's support always equals the popcount of
// the AND of its regions' (current) visitor bitmaps. Increment/decrement
// maintains it for itemsets a chain touches; itemsets first seen this
// batch get their support straight from the bitmaps (which already
// include the whole batch), and an epoch stamp keeps later chains of the
// same batch from double counting them.

// MaxIdentityLen caps itemset length (premise plus consequence) so an
// itemset's identity fits a fixed comparable array. Config.MaxLength is
// clamped to it.
const MaxIdentityLen = 8

// IdentityKey is the canonical, comparable identity of an itemset or
// pattern: its region ids sorted ascending, each stored as id+1 so empty
// slots (zero) are unambiguous. Map-key friendly — no allocation, unlike
// a formatted string key.
type IdentityKey [MaxIdentityLen]uint32

// identityOf returns the canonical key of a region-id set. Input order is
// irrelevant: minted regions make id order diverge from offset order, so
// the key sorts numerically.
func identityOf(ids []RegionID) IdentityKey {
	if len(ids) > MaxIdentityLen {
		panic(fmt.Sprintf("pattern: itemset of %d regions exceeds identity capacity %d", len(ids), MaxIdentityLen))
	}
	var k IdentityKey
	for i, id := range ids {
		k[i] = uint32(id) + 1
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && k[j] < k[j-1]; j-- {
			k[j], k[j-1] = k[j-1], k[j]
		}
	}
	return k
}

// PatternIdentity returns the identity key of a mined pattern — its full
// itemset, premise plus consequence. Two patterns with the same key are
// the same rule (a rule's consequence is determined by its itemset: the
// max-offset region).
func PatternIdentity(p Pattern) IdentityKey {
	var buf [MaxIdentityLen]RegionID
	ids := append(buf[:0], p.Premise...)
	ids = append(ids, p.Consequence)
	return identityOf(ids)
}

// LessIdentity orders identity keys lexicographically; used for
// deterministic delta output.
func LessIdentity(a, b IdentityKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Delta is the rule-set change one incremental update produced. Removed
// must be applied before Added: a rule can be retired and re-promoted in
// the same update (its itemset dipped below min-support and came back).
type Delta struct {
	Added   []Pattern     // rules newly clearing support and confidence
	Updated []Pattern     // existing rules whose confidence/support moved
	Removed []IdentityKey // rules that no longer qualify
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Updated) == 0 && len(d.Removed) == 0
}

// trackedItemset is one frequent itemset's live state.
type trackedItemset struct {
	ids     []RegionID // ascending time offset
	support int
	epoch   uint64 // update epoch that set support from the bitmaps
}

// IncrementalMiner maintains the frequent-itemset state of delta-Apriori
// over a RegionTable. Chains fed to Update/AbsorbMinted must reflect
// bitmap state: the table's Absorb/ClearSub calls happen first, then the
// miner consumes the chains those calls implied.
//
// Not safe for concurrent use; callers serialize updates like any other
// model mutation.
type IncrementalMiner struct {
	rt  *RegionTable
	cfg Config

	tracked   map[IdentityKey]*trackedItemset
	active    map[IdentityKey]Pattern // rules currently emitted
	byPremise map[IdentityKey]map[IdentityKey]struct{}
	epoch     uint64
}

// NewIncrementalMiner returns an empty miner over rt. Seed it by feeding
// every live sub-trajectory's chain to Update in one batch — the same
// code path later increments run through, so seeded state and batch-mined
// state agree exactly (see TestIncrementalMatchesBatch).
func NewIncrementalMiner(rt *RegionTable, cfg Config) *IncrementalMiner {
	return &IncrementalMiner{
		rt:        rt,
		cfg:       cfg.withDefaults(),
		tracked:   make(map[IdentityKey]*trackedItemset),
		active:    make(map[IdentityKey]Pattern),
		byPremise: make(map[IdentityKey]map[IdentityKey]struct{}),
	}
}

// TrackedItemsets returns how many frequent itemsets the miner tracks.
func (m *IncrementalMiner) TrackedItemsets() int { return len(m.tracked) }

// ActiveRules returns the current rule set, sorted deterministically.
func (m *IncrementalMiner) ActiveRules() []Pattern {
	keys := make([]IdentityKey, 0, len(m.active))
	for k := range m.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return LessIdentity(keys[i], keys[j]) })
	out := make([]Pattern, len(keys))
	for i, k := range keys {
		out[i] = m.active[k]
	}
	return out
}

// Update absorbs the region chains of newly arrived sub-trajectories and
// retires the chains of expired ones, returning the rule-set delta. The
// region table must already hold the corresponding bitmap state: new
// subs' bits set (AbsorbDetailed), retired subs' bits cleared (ClearSub,
// with each chain captured by ChainOf beforehand).
func (m *IncrementalMiner) Update(added, retired [][]RegionID) Delta {
	m.epoch++
	candidates := make(map[IdentityKey][]RegionID)
	removed := make(map[IdentityKey]bool)
	for _, ch := range retired {
		m.retireChain(ch, candidates, removed)
	}
	for _, ch := range added {
		m.absorbChain(ch, candidates)
	}
	return m.reevaluate(candidates, removed)
}

// AbsorbMinted registers a freshly minted region r: chains are the
// current full chains (ChainOf) of every sub-trajectory visiting it.
// Minting sets bits only in the new region's bitmap, so only itemsets
// containing r can have changed — the enumeration is restricted to them,
// and every such itemset is new, so the delta holds only additions.
// Shares the calling Update's epoch; call it after Update in the same
// logical batch.
func (m *IncrementalMiner) AbsorbMinted(r RegionID, chains [][]RegionID) Delta {
	candidates := make(map[IdentityKey][]RegionID)
	for _, ch := range chains {
		m.enumerate(ch, func(ids []RegionID) {
			if !containsRegion(ids, r) {
				return
			}
			key := identityOf(ids)
			if m.tracked[key] != nil {
				return // tracked earlier this replay, support already exact
			}
			m.trackOnDemand(key, ids, candidates)
		}, nil)
	}
	return m.reevaluate(candidates, nil)
}

func containsRegion(ids []RegionID, r RegionID) bool {
	for _, id := range ids {
		if id == r {
			return true
		}
	}
	return false
}

// absorbChain counts one new sub-trajectory's chain: every structurally
// valid itemset inside it gains one support, itemsets crossing
// min-support get tracked with their exact bitmap support, and rules
// whose premise the chain touches are queued for confidence
// re-evaluation.
func (m *IncrementalMiner) absorbChain(chain []RegionID, candidates map[IdentityKey][]RegionID) {
	m.enumerate(chain, func(ids []RegionID) {
		key := identityOf(ids)
		if it := m.tracked[key]; it != nil {
			if it.epoch != m.epoch {
				it.support++
			}
			candidates[key] = it.ids
			return
		}
		m.trackOnDemand(key, ids, candidates)
	}, func(prem []RegionID) {
		m.touchPremise(prem, candidates)
	})
}

// retireChain reverses absorbChain for one expired sub-trajectory.
func (m *IncrementalMiner) retireChain(chain []RegionID, candidates map[IdentityKey][]RegionID, removed map[IdentityKey]bool) {
	m.enumerate(chain, func(ids []RegionID) {
		key := identityOf(ids)
		it := m.tracked[key]
		if it == nil {
			return
		}
		it.support--
		if it.support < m.cfg.MinSupport {
			m.untrack(key, it)
			delete(candidates, key)
			if _, ok := m.active[key]; ok {
				delete(m.active, key)
				removed[key] = true
			}
			return
		}
		candidates[key] = it.ids
	}, func(prem []RegionID) {
		m.touchPremise(prem, candidates)
	})
}

// trackOnDemand starts tracking an itemset first touched this batch. Its
// support comes from the bitmaps — which already include every chain of
// the batch — so the epoch stamp tells later chains not to add on top.
func (m *IncrementalMiner) trackOnDemand(key IdentityKey, ids []RegionID, candidates map[IdentityKey][]RegionID) {
	sup := m.bitmapSupport(ids)
	if sup < m.cfg.MinSupport {
		return
	}
	it := &trackedItemset{ids: append([]RegionID(nil), ids...), support: sup, epoch: m.epoch}
	m.tracked[key] = it
	pk := identityOf(it.ids[:len(it.ids)-1])
	deps := m.byPremise[pk]
	if deps == nil {
		deps = make(map[IdentityKey]struct{})
		m.byPremise[pk] = deps
	}
	deps[key] = struct{}{}
	candidates[key] = it.ids
}

// untrack forgets a demoted itemset.
func (m *IncrementalMiner) untrack(key IdentityKey, it *trackedItemset) {
	delete(m.tracked, key)
	pk := identityOf(it.ids[:len(it.ids)-1])
	if deps := m.byPremise[pk]; deps != nil {
		delete(deps, key)
		if len(deps) == 0 {
			delete(m.byPremise, pk)
		}
	}
}

// touchPremise queues every tracked itemset whose premise the chain
// contains: its confidence denominator moved even if its own support did
// not (the sub-trajectory visited the premise but not the consequence).
func (m *IncrementalMiner) touchPremise(prem []RegionID, candidates map[IdentityKey][]RegionID) {
	deps := m.byPremise[identityOf(prem)]
	if deps == nil {
		return
	}
	for dep := range deps {
		if it := m.tracked[dep]; it != nil {
			candidates[dep] = it.ids
		}
	}
}

// bitmapSupport computes an itemset's exact support from the region
// bitmaps: the popcount of their AND. O(numSubs/64) words per region.
func (m *IncrementalMiner) bitmapSupport(ids []RegionID) int {
	a, b := m.rt.Region(ids[0]).visitors, m.rt.Region(ids[1]).visitors
	if len(ids) == 2 {
		return a.AndSize(b)
	}
	acc := a.And(b)
	for _, id := range ids[2:] {
		acc = acc.And(m.rt.Region(id).visitors)
	}
	return acc.Size()
}

// reevaluate derives rules for every touched itemset and diffs them
// against the active set, producing a deterministic delta (keys sorted).
func (m *IncrementalMiner) reevaluate(candidates map[IdentityKey][]RegionID, removed map[IdentityKey]bool) Delta {
	keys := make([]IdentityKey, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return LessIdentity(keys[i], keys[j]) })

	var d Delta
	for _, key := range keys {
		it := m.tracked[key]
		if it == nil {
			continue
		}
		p, ok := m.rule(it)
		old, was := m.active[key]
		switch {
		case ok && !was:
			m.active[key] = p
			d.Added = append(d.Added, p)
		case ok && was && (p.Confidence != old.Confidence || p.Support != old.Support):
			m.active[key] = p
			d.Updated = append(d.Updated, p)
		case !ok && was:
			delete(m.active, key)
			if removed == nil {
				removed = make(map[IdentityKey]bool)
			}
			removed[key] = true
		}
	}
	for key := range removed {
		d.Removed = append(d.Removed, key)
	}
	sort.Slice(d.Removed, func(i, j int) bool { return LessIdentity(d.Removed[i], d.Removed[j]) })
	return d
}

// rule derives the one candidate rule of a frequent itemset (pruned rule
// generation: monotone premise, single max-offset consequence) and
// reports whether it clears MinConfidence.
func (m *IncrementalMiner) rule(it *trackedItemset) (Pattern, bool) {
	n := len(it.ids)
	premise := it.ids[:n-1]
	var premSup int
	if n == 2 {
		premSup = m.rt.Region(premise[0]).Support
	} else if pit := m.tracked[identityOf(premise)]; pit != nil {
		premSup = pit.support
	} else {
		// Anti-monotonicity keeps premises tracked while their itemset
		// is; fall back to the bitmaps defensively.
		premSup = m.bitmapSupport(premise)
	}
	conf := float64(it.support) / float64(premSup)
	p := Pattern{
		Premise:     append([]RegionID(nil), premise...),
		Consequence: it.ids[n-1],
		Confidence:  conf,
		Support:     it.support,
	}
	return p, conf >= m.cfg.MinConfidence
}

// validItemset reports whether an offset-ascending itemset is one the
// batch miner would generate: span and reach bounds at the top level,
// and — matching level-wise Apriori, which only forms a k-itemset from
// generated (k-1)-itemsets — the same holding recursively for every
// subset that drops one of the first k-2 elements. For the default
// MaxLength of 3 the recursion never fires.
func (m *IncrementalMiner) validItemset(ids []RegionID) bool {
	k := len(ids)
	if k < 2 || k > m.cfg.MaxLength {
		return false
	}
	if k == 2 {
		return true
	}
	off := func(i int) int { return m.rt.Region(ids[i]).Offset }
	if m.cfg.PremiseSpan >= 0 && off(k-2)-off(0) > m.cfg.PremiseSpan {
		return false
	}
	if m.cfg.ConsequenceReach >= 0 && off(k-1)-off(k-2) > m.cfg.ConsequenceReach {
		return false
	}
	if k == 3 {
		return true
	}
	var buf [MaxIdentityLen]RegionID
	for drop := 0; drop < k-2; drop++ {
		sub := buf[:0]
		for i, id := range ids {
			if i != drop {
				sub = append(sub, id)
			}
		}
		if !m.validItemset(sub) {
			return false
		}
	}
	return true
}

// enumerate walks every structurally valid itemset (size 2..MaxLength)
// and every premise-shaped subset (size 1..MaxLength-1, premise-span
// bounded) of chain, in deterministic order. chain must hold at most one
// region per time offset, ascending by offset — the shape one period's
// sub-trajectory produces. Buffers passed to the callbacks are reused;
// callbacks must copy what they keep.
func (m *IncrementalMiner) enumerate(chain []RegionID, itemsetFn, premiseFn func([]RegionID)) {
	maxLen := m.cfg.MaxLength
	if maxLen < 2 || len(chain) < 1 {
		return
	}
	L := len(chain)
	offs := make([]int, L)
	for i, id := range chain {
		offs[i] = m.rt.Region(id).Offset
	}
	span, reach := m.cfg.PremiseSpan, m.cfg.ConsequenceReach
	buf := make([]RegionID, 0, maxLen)

	// grow is called with a premise of size >= 1 in buf; first/last are
	// the chain indices of its ends. Offsets ascend along the chain, so
	// the span and reach scans can break early.
	var grow func(first, last int)
	grow = func(first, last int) {
		n := len(buf)
		if premiseFn != nil {
			premiseFn(buf)
		}
		if itemsetFn != nil {
			for c := last + 1; c < L; c++ {
				if n >= 2 && reach >= 0 && offs[c]-offs[last] > reach {
					break
				}
				buf = append(buf, chain[c])
				if m.validItemset(buf) {
					itemsetFn(buf)
				}
				buf = buf[:n]
			}
		}
		if n+1 <= maxLen-1 {
			for nxt := last + 1; nxt < L; nxt++ {
				if span >= 0 && offs[nxt]-offs[first] > span {
					break
				}
				buf = append(buf, chain[nxt])
				grow(first, nxt)
				buf = buf[:n]
			}
		}
	}
	for i := 0; i < L; i++ {
		buf = append(buf[:0], chain[i])
		grow(i, i)
	}
}
