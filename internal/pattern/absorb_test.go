package pattern

import (
	"testing"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

func TestAbsorbExtendsVisitors(t *testing.T) {
	rt := janeTable(t) // 20 sub-trajectories, 5 regions
	homeSupport := rt.Region(0).Support
	citySupport := rt.Region(1).Support

	// Two new days: both start at Home; day 0 goes Home->City->Work,
	// day 1 wanders off-pattern after Home.
	groups := []trajectory.Group{
		{Offset: 0, Points: []geom.Point{geom.Pt(101, 101), geom.Pt(102, 103)}},
		{Offset: 1, Points: []geom.Point{geom.Pt(2001, 2002), geom.Pt(7000, 7000)}},
		{Offset: 2, Points: []geom.Point{geom.Pt(4001, 4002), geom.Pt(7100, 7100)}},
	}
	if err := rt.Absorb(groups); err != nil {
		t.Fatal(err)
	}
	if rt.NumSubTrajectories() != 22 {
		t.Fatalf("NumSubTrajectories = %d, want 22", rt.NumSubTrajectories())
	}
	if got := rt.Region(0).Support; got != homeSupport+2 {
		t.Errorf("Home support = %d, want %d", got, homeSupport+2)
	}
	if got := rt.Region(1).Support; got != citySupport+1 {
		t.Errorf("City support = %d, want %d", got, citySupport+1)
	}
	// The new visitors occupy positions 20 and 21.
	if !rt.Region(0).Visits(20) || !rt.Region(0).Visits(21) {
		t.Error("Home missing new visitors")
	}
	if !rt.Region(1).Visits(20) || rt.Region(1).Visits(21) {
		t.Error("City visitor bits wrong for new days")
	}
	// Off-pattern points matched nothing.
	if rt.Region(3).Visits(21) || rt.Region(4).Visits(21) {
		t.Error("wandering day absorbed into a region")
	}
}

func TestAbsorbThenMineUpdatesSupports(t *testing.T) {
	rt := janeTable(t)
	before := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})

	// Five new days that all follow Home -> City -> Work: the
	// City->Work confidence must rise.
	n := 5
	groups := make([]trajectory.Group, 3)
	for off := range groups {
		groups[off] = trajectory.Group{Offset: off, Points: make([]geom.Point, n)}
	}
	for j := 0; j < n; j++ {
		groups[0].Points[j] = geom.Pt(101, 102)
		groups[1].Points[j] = geom.Pt(2001, 2001)
		groups[2].Points[j] = geom.Pt(4002, 4001)
	}
	if err := rt.Absorb(groups); err != nil {
		t.Fatal(err)
	}
	after := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})

	conf := func(ps []Pattern, premise RegionID, cons RegionID) float64 {
		for _, p := range ps {
			if len(p.Premise) == 1 && p.Premise[0] == premise && p.Consequence == cons {
				return p.Confidence
			}
		}
		return -1
	}
	b, a := conf(before, 1, 3), conf(after, 1, 3) // City -> Work
	if b < 0 || a < 0 {
		t.Fatalf("City->Work missing: before %v after %v", b, a)
	}
	if a <= b {
		t.Errorf("City->Work confidence did not rise: %v -> %v", b, a)
	}
}

func TestAbsorbValidation(t *testing.T) {
	rt := janeTable(t)
	if err := rt.Absorb(nil); err != nil {
		t.Errorf("empty absorb errored: %v", err)
	}
	bad := []trajectory.Group{
		{Offset: 0, Points: make([]geom.Point, 2)},
		{Offset: 1, Points: make([]geom.Point, 3)},
	}
	if err := rt.Absorb(bad); err == nil {
		t.Error("ragged groups accepted")
	}
}
