// Package pattern implements §IV of the paper: trajectory-pattern discovery.
//
// The discovery pipeline has two stages. First, DBSCAN finds the frequent
// regions R_t^j — dense clusters inside each time-offset group G_t — where
// Eps and MinPts play the role of the support threshold in frequent-itemset
// mining. Second, a modified Apriori derives trajectory patterns
//
//	R_{t1}^{j1} ∧ ... ∧ R_{tm}^{jm} --c--> R_{tn}^{jn},  t1 < ... < tm < tn
//
// from the regions, applying the paper's two pruning rules: patterns must be
// monotonically increasing in time offset, and consequences hold exactly one
// region (Theorem 1 shows multi-region consequences are never selected).
//
// Internally the miner works on a vertical representation: each frequent
// region carries a bitmap of the sub-trajectories that visit it, so the
// support of any candidate itemset is the popcount of an AND of bitmaps.
package pattern

import (
	"fmt"
	"sort"

	"hpm/internal/bitkey"
	"hpm/internal/cluster"
	"hpm/internal/geom"
	"hpm/internal/parallel"
	"hpm/internal/trajectory"
)

// RegionID identifies a frequent region. IDs are dense, assigned in
// ascending (time offset, cluster index) order, which makes the region-key
// hash of §V-A (id -> bit 2^id) honour Property 1: a higher bit position in
// a premise key always means a time offset closer to the consequence.
type RegionID int

// FrequentRegion is a dense cluster R_t^j of the object's locations at time
// offset t: a place the object appears at that offset often enough to
// matter.
type FrequentRegion struct {
	ID      RegionID
	Offset  int        // time offset t within the period
	Index   int        // j: ordinal among the regions at this offset
	Center  geom.Point // centroid of the member locations
	MBR     geom.Rect  // bounding box of the member locations
	Support int        // number of sub-trajectories visiting the region

	// visitors has one bit per sub-trajectory (1-based position j+1 for
	// sub-trajectory j); it is the vertical mining representation.
	visitors bitkey.Key
}

// Visits reports whether sub-trajectory j visits this region.
func (fr *FrequentRegion) Visits(j int) bool { return fr.visitors.Bit(j + 1) }

// String implements fmt.Stringer using the paper's R_t^j notation.
func (fr *FrequentRegion) String() string {
	return fmt.Sprintf("R_%d^%d", fr.Offset, fr.Index)
}

// RegionTable is the region-key table of §V-A: every frequent region sorted
// by time offset with a dense id, plus the per-offset index needed to map a
// query location back to the region it falls in.
type RegionTable struct {
	regions  []*FrequentRegion
	byOffset map[int][]*FrequentRegion
	// locate holds the per-offset query index: regions sorted by center X
	// with the scan radius that makes an early-exit window search exact.
	locate  map[int]*offsetIndex
	eps     float64
	numSubs int
}

// DiscoverRegions runs DBSCAN over every time-offset group and assembles
// the region table. groups must all have the same number of points (one per
// sub-trajectory), as produced by trajectory.Groups. It is the serial form
// of DiscoverRegionsParallel.
func DiscoverRegions(groups []trajectory.Group, eps float64, minPts int) *RegionTable {
	return DiscoverRegionsParallel(groups, eps, minPts, 1)
}

// DiscoverRegionsParallel is DiscoverRegions with the per-offset DBSCAN
// runs fanned across at most workers goroutines. Each group clusters
// independently and the per-group results are merged in offset order, so
// region IDs, indices, centers, MBRs and visitor bitmaps are identical to
// the serial build for any worker count.
func DiscoverRegionsParallel(groups []trajectory.Group, eps float64, minPts, workers int) *RegionTable {
	rt := &RegionTable{byOffset: make(map[int][]*FrequentRegion), eps: eps}
	if len(groups) == 0 {
		rt.buildLocateIndex()
		return rt
	}
	rt.numSubs = len(groups[0].Points)
	for _, g := range groups {
		if len(g.Points) != rt.numSubs {
			panic(fmt.Sprintf("pattern: group %d has %d points, want %d", g.Offset, len(g.Points), rt.numSubs))
		}
	}
	// Cluster every group independently into its own slot; IDs are assigned
	// afterwards, in group order, exactly as the serial loop would.
	perGroup := make([][]*FrequentRegion, len(groups))
	parallel.For(len(groups), parallel.Workers(workers), func(gi int) {
		g := groups[gi]
		res := cluster.DBSCAN(g.Points, eps, minPts)
		regions := make([]*FrequentRegion, 0, res.NumClusters)
		for c := 0; c < res.NumClusters; c++ {
			members := res.Members(c)
			pts := make([]geom.Point, len(members))
			visitors := bitkey.New(rt.numSubs)
			for i, j := range members {
				pts[i] = g.Points[j]
				visitors.Set(j + 1)
			}
			regions = append(regions, &FrequentRegion{
				Offset:   g.Offset,
				Index:    c,
				Center:   geom.Centroid(pts),
				MBR:      geom.RectFromPoints(pts),
				Support:  len(members),
				visitors: visitors,
			})
		}
		perGroup[gi] = regions
	})
	for _, regions := range perGroup {
		for _, fr := range regions {
			fr.ID = RegionID(len(rt.regions))
			rt.regions = append(rt.regions, fr)
			rt.byOffset[fr.Offset] = append(rt.byOffset[fr.Offset], fr)
		}
	}
	// trajectory.Groups emits offsets in ascending order, so ids are already
	// sorted by (offset, index); guard against future callers that are not.
	if !sort.SliceIsSorted(rt.regions, func(a, b int) bool {
		ra, rb := rt.regions[a], rt.regions[b]
		if ra.Offset != rb.Offset {
			return ra.Offset < rb.Offset
		}
		return ra.Index < rb.Index
	}) {
		sort.Slice(rt.regions, func(a, b int) bool {
			ra, rb := rt.regions[a], rt.regions[b]
			if ra.Offset != rb.Offset {
				return ra.Offset < rb.Offset
			}
			return ra.Index < rb.Index
		})
		for i, fr := range rt.regions {
			fr.ID = RegionID(i)
		}
	}
	rt.buildLocateIndex()
	return rt
}

// Len returns the number of frequent regions (the premise-key length l_p).
func (rt *RegionTable) Len() int { return len(rt.regions) }

// NumSubTrajectories returns how many sub-trajectories the table was mined
// from.
func (rt *RegionTable) NumSubTrajectories() int { return rt.numSubs }

// Eps returns the DBSCAN radius used at discovery time; query encoding uses
// it as the slack for matching a location to a region.
func (rt *RegionTable) Eps() float64 { return rt.eps }

// Region returns the frequent region with the given id. It panics on an
// unknown id.
func (rt *RegionTable) Region(id RegionID) *FrequentRegion {
	if int(id) < 0 || int(id) >= len(rt.regions) {
		panic(fmt.Sprintf("pattern: region id %d out of %d", id, len(rt.regions)))
	}
	return rt.regions[id]
}

// Regions returns all frequent regions ordered by id. Callers must not
// mutate the slice.
func (rt *RegionTable) Regions() []*FrequentRegion { return rt.regions }

// AtOffset returns the frequent regions at time offset t (possibly none).
func (rt *RegionTable) AtOffset(t int) []*FrequentRegion { return rt.byOffset[t] }

// offsetIndex accelerates Locate at one time offset: the offset's regions
// sorted by center X, plus the largest horizontal reach any of them has —
// the distance from a region's center beyond which a query point can match
// it neither by MBR containment nor by the Eps center rule. A query then
// scans only the X-window [p.X - maxReach, p.X + maxReach] of the sorted
// slice instead of every region at the offset.
type offsetIndex struct {
	byX      []*FrequentRegion
	maxReach float64
}

// reachX returns how far (along X) a matching query point can lie from the
// region's center: inside the MBR (whose centroid need not be its middle)
// or within eps of the center.
func reachX(fr *FrequentRegion, eps float64) float64 {
	r := fr.Center.X - fr.MBR.Min.X
	if d := fr.MBR.Max.X - fr.Center.X; d > r {
		r = d
	}
	if eps > r {
		r = eps
	}
	return r
}

// buildLocateIndex (re)builds the per-offset query index. Called at
// discovery/deserialization time; Absorb only widens visitor bitmaps and
// supports, never geometry, so the index stays valid afterwards —
// AppendRegion, the one mutation that does add geometry, rebuilds its
// offset's entry alone.
func (rt *RegionTable) buildLocateIndex() {
	rt.locate = make(map[int]*offsetIndex, len(rt.byOffset))
	for off := range rt.byOffset {
		rt.rebuildLocateAt(off)
	}
}

// rebuildLocateAt rebuilds one offset's locate entry from byOffset.
func (rt *RegionTable) rebuildLocateAt(off int) {
	regions := rt.byOffset[off]
	ix := &offsetIndex{byX: make([]*FrequentRegion, len(regions))}
	copy(ix.byX, regions)
	sort.SliceStable(ix.byX, func(a, b int) bool {
		return ix.byX[a].Center.X < ix.byX[b].Center.X
	})
	for _, fr := range ix.byX {
		if r := reachX(fr, rt.eps); r > ix.maxReach {
			ix.maxReach = r
		}
	}
	rt.locate[off] = ix
}

// Locate maps a location observed at time offset t to the frequent region
// it belongs to: first by bounding-box containment (ties to the lowest
// region index, matching scan order), then — to tolerate query noise — the
// nearest region whose center lies within Eps. The boolean is false when no
// region at that offset matches.
//
// The scan is bounded: regions are indexed by center X per offset, so only
// those whose horizontal reach can cover p are examined, instead of every
// region at the offset.
func (rt *RegionTable) Locate(t int, p geom.Point) (*FrequentRegion, bool) {
	ix := rt.locate[t]
	if ix == nil {
		return nil, false
	}
	lo := sort.Search(len(ix.byX), func(i int) bool {
		return ix.byX[i].Center.X >= p.X-ix.maxReach
	})
	var contain *FrequentRegion
	var best *FrequentRegion
	bestDist := rt.eps
	for i := lo; i < len(ix.byX); i++ {
		fr := ix.byX[i]
		if fr.Center.X-p.X > ix.maxReach {
			break
		}
		if fr.MBR.Contains(p) {
			if contain == nil || fr.Index < contain.Index {
				contain = fr
			}
			continue
		}
		if contain != nil {
			continue
		}
		if d := fr.Center.Dist(p); d < bestDist || (d == bestDist && (best == nil || fr.Index > best.Index)) {
			best, bestDist = fr, d
		}
	}
	if contain != nil {
		return contain, true
	}
	return best, best != nil
}

// UnmatchedPoint is a new observation no frequent region claimed during
// Absorb. Buffered per offset, enough of them in one dense spot mint a
// new region (§V-B dynamic data extended beyond the paper's fixed table).
type UnmatchedPoint struct {
	Offset int // time offset within the period
	Sub    int // global sub-trajectory index (visitor bit - 1)
	P      geom.Point
}

// AbsorbResult reports what AbsorbDetailed did with a batch.
type AbsorbResult struct {
	// Chains holds, per new sub-trajectory, the regions it visits in
	// ascending offset order — the transactions delta-Apriori consumes.
	Chains [][]RegionID
	// Unmatched are the points no region claimed, in (offset, sub) order.
	// Before incremental training these were dropped silently.
	Unmatched []UnmatchedPoint
}

// Absorb extends the table with newly arrived sub-trajectories (§V-B
// dynamic data): each new location is assigned to the frequent region it
// falls in (by Locate), widening every region's visitor bitmap and support
// accordingly. Locations no region claims are dropped; AbsorbDetailed
// reports them instead.
//
// groups must cover the same offsets as the original discovery, in
// ascending offset order, with one point per new sub-trajectory.
func (rt *RegionTable) Absorb(groups []trajectory.Group) error {
	_, err := rt.AbsorbDetailed(groups)
	return err
}

// AbsorbDetailed is Absorb plus the bookkeeping incremental training
// needs: the region chain of every new sub-trajectory and the points that
// matched no region.
func (rt *RegionTable) AbsorbDetailed(groups []trajectory.Group) (AbsorbResult, error) {
	var res AbsorbResult
	if len(groups) == 0 {
		return res, nil
	}
	added := len(groups[0].Points)
	for _, g := range groups {
		if len(g.Points) != added {
			return res, fmt.Errorf("pattern: Absorb group %d has %d points, want %d", g.Offset, len(g.Points), added)
		}
	}
	newN := rt.numSubs + added
	for _, fr := range rt.regions {
		fr.visitors = fr.visitors.Grown(newN)
	}
	res.Chains = make([][]RegionID, added)
	for _, g := range groups {
		for j, p := range g.Points {
			fr, ok := rt.Locate(g.Offset, p)
			if !ok {
				res.Unmatched = append(res.Unmatched, UnmatchedPoint{Offset: g.Offset, Sub: rt.numSubs + j, P: p})
				continue
			}
			pos := rt.numSubs + j + 1
			if !fr.visitors.Bit(pos) {
				fr.visitors.Set(pos)
				fr.Support++
				res.Chains[j] = append(res.Chains[j], fr.ID)
			}
		}
	}
	rt.numSubs = newN
	return res, nil
}

// ChainOf reconstructs the region chain of sub-trajectory j — the regions
// whose visitor bitmaps carry j's bit — in ascending (offset, index)
// order. Minted regions sit out of id order, so the result is sorted
// explicitly rather than by id.
func (rt *RegionTable) ChainOf(j int) []RegionID {
	var chain []*FrequentRegion
	for _, fr := range rt.regions {
		if fr.visitors.Bit(j + 1) {
			chain = append(chain, fr)
		}
	}
	sort.SliceStable(chain, func(a, b int) bool {
		if chain[a].Offset != chain[b].Offset {
			return chain[a].Offset < chain[b].Offset
		}
		return chain[a].Index < chain[b].Index
	})
	ids := make([]RegionID, len(chain))
	for i, fr := range chain {
		ids[i] = fr.ID
	}
	return ids
}

// ClearSub retires sub-trajectory j: its visitor bit leaves every region,
// shrinking supports. The bit position stays allocated — bitmap widths
// only grow — so callers track which positions are retired.
func (rt *RegionTable) ClearSub(j int) {
	for _, fr := range rt.regions {
		if fr.visitors.Bit(j + 1) {
			fr.visitors.Clear(j + 1)
			fr.Support--
		}
	}
}

// AppendRegion mints a frequent region discovered after the initial
// build, from buffered unmatched points that turned out to be dense. The
// new region takes the next dense id — appended, so ids are no longer
// globally sorted by offset — and the next ordinal index at its offset.
// visitorSubs lists the sub-trajectory indices whose points form the
// region (duplicates collapse). The offset's locate index is rebuilt so
// later points can land in the new region.
func (rt *RegionTable) AppendRegion(offset int, pts []geom.Point, visitorSubs []int) *FrequentRegion {
	visitors := bitkey.New(rt.numSubs)
	support := 0
	for _, j := range visitorSubs {
		if !visitors.Bit(j + 1) {
			visitors.Set(j + 1)
			support++
		}
	}
	fr := &FrequentRegion{
		ID:       RegionID(len(rt.regions)),
		Offset:   offset,
		Index:    len(rt.byOffset[offset]),
		Center:   geom.Centroid(pts),
		MBR:      geom.RectFromPoints(pts),
		Support:  support,
		visitors: visitors,
	}
	rt.regions = append(rt.regions, fr)
	rt.byOffset[offset] = append(rt.byOffset[offset], fr)
	rt.rebuildLocateAt(offset)
	return fr
}

// RegionKey returns the §V-A region key of a frequent region: an l_p-bit
// key with the single bit 2^id set (the paper's hash function).
func (rt *RegionTable) RegionKey(id RegionID) bitkey.Key {
	rt.Region(id) // bounds check
	return bitkey.FromPositions(len(rt.regions), int(id)+1)
}

// PremiseKey returns the OR of the region keys of ids, the premise key of a
// trajectory pattern whose premise visits those regions.
func (rt *RegionTable) PremiseKey(ids []RegionID) bitkey.Key {
	k := bitkey.New(len(rt.regions))
	for _, id := range ids {
		rt.Region(id) // bounds check
		k.Set(int(id) + 1)
	}
	return k
}
