package pattern

import (
	"math/rand"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// applyDelta folds a Delta into a rule map, checking its internal
// consistency: removals name live rules, additions are genuinely new
// (after removals apply), updates touch existing rules.
func applyDelta(t *testing.T, rules map[IdentityKey]Pattern, d Delta) {
	t.Helper()
	for _, key := range d.Removed {
		if _, ok := rules[key]; !ok {
			t.Fatalf("delta removed unknown rule %v", key)
		}
		delete(rules, key)
	}
	for _, p := range d.Added {
		key := PatternIdentity(p)
		if _, ok := rules[key]; ok {
			t.Fatalf("delta re-added live rule %v", p)
		}
		rules[key] = p
	}
	for _, p := range d.Updated {
		key := PatternIdentity(p)
		if _, ok := rules[key]; !ok {
			t.Fatalf("delta updated unknown rule %v", p)
		}
		rules[key] = p
	}
}

// wantBatch mines rt from scratch and returns the rules by identity.
func wantBatch(rt *RegionTable, cfg Config) map[IdentityKey]Pattern {
	want := make(map[IdentityKey]Pattern)
	for _, p := range Mine(rt, cfg) {
		want[PatternIdentity(p)] = p
	}
	return want
}

// checkEquivalent compares the miner's active rules (and the delta-folded
// shadow copy) against a from-scratch batch mine over the same table.
func checkEquivalent(t *testing.T, rt *RegionTable, cfg Config, m *IncrementalMiner, rules map[IdentityKey]Pattern) {
	t.Helper()
	want := wantBatch(rt, cfg)
	for _, got := range [2]map[IdentityKey]Pattern{activeByKey(m), rules} {
		if len(got) != len(want) {
			t.Fatalf("incremental has %d rules, batch %d", len(got), len(want))
		}
		for key, wp := range want {
			gp, ok := got[key]
			if !ok {
				t.Fatalf("batch rule %v missing from incremental set", wp)
			}
			if gp.Confidence != wp.Confidence || gp.Support != wp.Support {
				t.Fatalf("rule %v: incremental conf %g sup %d, batch conf %g sup %d",
					wp, gp.Confidence, gp.Support, wp.Confidence, wp.Support)
			}
		}
	}
}

func activeByKey(m *IncrementalMiner) map[IdentityKey]Pattern {
	out := make(map[IdentityKey]Pattern)
	for _, p := range m.ActiveRules() {
		out[PatternIdentity(p)] = p
	}
	return out
}

// seedMiner replays every live sub-trajectory's chain through the normal
// update path, as core.Model does when it lazily builds its miner.
func seedMiner(rt *RegionTable, cfg Config) (*IncrementalMiner, Delta) {
	m := NewIncrementalMiner(rt, cfg)
	var chains [][]RegionID
	for j := 0; j < rt.NumSubTrajectories(); j++ {
		if ch := rt.ChainOf(j); len(ch) > 0 {
			chains = append(chains, ch)
		}
	}
	return m, m.Update(chains, nil)
}

func TestIncrementalSeedMatchesBatchJane(t *testing.T) {
	rt := janeTable(t)
	cfg := Config{MinSupport: 4, MinConfidence: 0.3}
	m, d := seedMiner(rt, cfg)
	rules := make(map[IdentityKey]Pattern)
	applyDelta(t, rules, d)
	checkEquivalent(t, rt, cfg, m, rules)
	if len(rules) == 0 {
		t.Fatal("jane table seeded zero rules; test is vacuous")
	}
}

// randomGroups builds n sub-trajectories over P offsets: each offset has
// a handful of cluster anchors, and every sub either snaps (with jitter)
// to the anchor its lineage prefers or wanders off as noise. Returns one
// group per offset, the shape trajectory.Groups produces.
func randomGroups(rng *rand.Rand, n, P int) []trajectory.Group {
	anchors := make([][]geom.Point, P)
	for t := 0; t < P; t++ {
		k := 2 + rng.Intn(3)
		anchors[t] = make([]geom.Point, k)
		for c := range anchors[t] {
			anchors[t][c] = geom.Pt(rng.Float64()*9000, rng.Float64()*9000)
		}
	}
	groups := make([]trajectory.Group, P)
	for t := 0; t < P; t++ {
		groups[t] = trajectory.Group{Offset: t, Points: make([]geom.Point, n)}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.15 {
				// Noise: far outside any cluster's reach.
				groups[t].Points[j] = geom.Pt(20000+rng.Float64()*50000, 20000+rng.Float64()*50000)
				continue
			}
			a := anchors[t][(j+t*j)%len(anchors[t])]
			groups[t].Points[j] = geom.Pt(a.X+rng.Float64()*20-10, a.Y+rng.Float64()*20-10)
		}
	}
	return groups
}

// subset extracts the points of sub-trajectories [lo, hi) from groups.
func subset(groups []trajectory.Group, lo, hi int) []trajectory.Group {
	out := make([]trajectory.Group, len(groups))
	for i, g := range groups {
		out[i] = trajectory.Group{Offset: g.Offset, Points: g.Points[lo:hi]}
	}
	return out
}

// TestIncrementalMatchesBatchUnderChurn drives the miner through the full
// lifecycle — seed, absorb batches of new days, retire old days — and
// after every step compares its rule set against a from-scratch batch
// mine over the table's current bitmaps. Batch mining reads live supports
// and visitor bitmaps, so it is ground truth at any point, not just at
// build time.
func TestIncrementalMatchesBatchUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		const n, P, initial = 40, 12, 24
		all := randomGroups(rng, n, P)
		rt := DiscoverRegions(subset(all, 0, initial), 30, 4)
		if rt.Len() < 5 {
			t.Fatalf("seed %d: only %d regions; test is vacuous", seed, rt.Len())
		}
		cfg := Config{MinSupport: 4, MinConfidence: 0.3}
		m, d := seedMiner(rt, cfg)
		rules := make(map[IdentityKey]Pattern)
		applyDelta(t, rules, d)
		checkEquivalent(t, rt, cfg, m, rules)

		retired := 0
		for lo := initial; lo < n; lo += 4 {
			hi := lo + 4
			if hi > n {
				hi = n
			}
			res, err := rt.AbsorbDetailed(subset(all, lo, hi))
			if err != nil {
				t.Fatal(err)
			}
			// Retire the two oldest live days alongside each absorb, as a
			// sliding history window would.
			var gone [][]RegionID
			for k := 0; k < 2; k++ {
				if ch := rt.ChainOf(retired); len(ch) > 0 {
					gone = append(gone, ch)
				}
				rt.ClearSub(retired)
				retired++
			}
			applyDelta(t, rules, m.Update(res.Chains, gone))
			checkEquivalent(t, rt, cfg, m, rules)
		}
		if len(rules) == 0 {
			t.Fatalf("seed %d: churn left zero rules; test is vacuous", seed)
		}
	}
}

// TestAbsorbMintedMatchesBatch mints a region at the last offset (so
// appended ids keep the sorted-by-offset invariant batch mining assumes)
// and checks the restricted replay promotes exactly the rules a batch
// mine over the grown table finds.
func TestAbsorbMintedMatchesBatch(t *testing.T) {
	rt := janeTable(t)
	cfg := Config{MinSupport: 4, MinConfidence: 0.3}
	m, d := seedMiner(rt, cfg)
	rules := make(map[IdentityKey]Pattern)
	applyDelta(t, rules, d)

	// Six new days repeat the City lineage but end at a brand-new spot.
	newSpot := geom.Pt(7000, 7000)
	const days = 6
	groups := []trajectory.Group{
		{Offset: 0, Points: make([]geom.Point, days)},
		{Offset: 1, Points: make([]geom.Point, days)},
		{Offset: 2, Points: make([]geom.Point, days)},
	}
	for i := 0; i < days; i++ {
		groups[0].Points[i] = geom.Pt(100+float64(i%5), 100+float64((i*3)%7))
		groups[1].Points[i] = geom.Pt(2000+float64(i%5), 2000+float64((i*3)%7))
		groups[2].Points[i] = geom.Pt(newSpot.X+float64(i%5), newSpot.Y+float64((i*3)%7))
	}
	res, err := rt.AbsorbDetailed(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmatched) != days {
		t.Fatalf("unmatched = %d, want %d (all new-spot points)", len(res.Unmatched), days)
	}
	applyDelta(t, rules, m.Update(res.Chains, nil))

	// Mint the new region from the buffered points, then replay its
	// visitors' chains restricted to itemsets containing it.
	subs := make([]int, 0, days)
	pts := make([]geom.Point, 0, days)
	for _, u := range res.Unmatched {
		subs = append(subs, u.Sub)
		pts = append(pts, u.P)
	}
	fr := rt.AppendRegion(2, pts, subs)
	chains := make([][]RegionID, 0, days)
	for _, j := range subs {
		chains = append(chains, rt.ChainOf(j))
	}
	md := m.AbsorbMinted(fr.ID, chains)
	if len(md.Added) == 0 {
		t.Fatal("minted region promoted no rules; test is vacuous")
	}
	if len(md.Removed) != 0 || len(md.Updated) != 0 {
		t.Fatalf("minted replay must only add rules, got %d removed %d updated", len(md.Removed), len(md.Updated))
	}
	applyDelta(t, rules, md)
	checkEquivalent(t, rt, cfg, m, rules)
}
