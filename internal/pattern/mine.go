package pattern

import (
	"fmt"
	"sort"
	"strings"

	"hpm/internal/bitkey"
	"hpm/internal/parallel"
)

// Config controls the Apriori stage of pattern discovery. The DBSCAN stage
// is configured at DiscoverRegions time (Eps, MinPts); this struct covers
// rule derivation.
type Config struct {
	// MinSupport is the minimum number of sub-trajectories that must
	// exhibit a pattern. Values <= 0 default to DefaultMinSupport.
	MinSupport int
	// MinConfidence is the minimum rule confidence in [0,1]; the paper's
	// default is 0.3.
	MinConfidence float64
	// MaxLength caps the number of regions per pattern, consequence
	// included. Values <= 0 default to DefaultMaxLength; values above
	// MaxIdentityLen clamp to it so every itemset's identity fits a fixed
	// comparable key. The paper leaves pattern length unbounded in
	// principle; in practice Apriori over period-length transactions needs
	// a cap, and queries only ever match premises drawn from a short
	// recent-movement window.
	MaxLength int
	// PremiseSpan caps the offset distance between the first and the last
	// premise region. Negative means unlimited; 0 defaults to
	// DefaultPremiseSpan.
	PremiseSpan int
	// ConsequenceReach caps the offset gap between the last premise region
	// and the consequence, but only for patterns with two or more premise
	// regions. Single-premise patterns stay unconstrained — Backward Query
	// Processing depends on rules reaching arbitrarily far consequences,
	// while multi-premise refinement only ever helps Forward Query
	// Processing, whose horizon is the distant-time threshold. Negative
	// means unlimited; 0 defaults to DefaultConsequenceReach. Exact for
	// MaxLength <= 3 (the default); with longer patterns it additionally
	// prunes some candidates whose subsets fall outside the bound.
	ConsequenceReach int
	// CountUnpruned additionally enumerates the rules classic Apriori
	// rule generation would emit, filling Stats.UnprunedRules. The
	// enumeration costs a multiple of the mining itself, so it is off by
	// default and enabled by the pruning-effect ablation.
	CountUnpruned bool
	// Parallelism caps how many goroutines count candidate supports per
	// Apriori level; <= 1 mines serially. Any value produces identical
	// patterns in identical order — candidates are generated per join
	// position and merged in position order. Runtime-only: not part of a
	// model's persistent identity.
	Parallelism int `json:"-"`
}

// Defaults for Config fields left at their zero value.
const (
	DefaultMinSupport       = 2
	DefaultMaxLength        = 3
	DefaultPremiseSpan      = 3
	DefaultConsequenceReach = 60
)

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = DefaultMinSupport
	}
	if c.MaxLength <= 0 {
		c.MaxLength = DefaultMaxLength
	}
	if c.MaxLength > MaxIdentityLen {
		c.MaxLength = MaxIdentityLen
	}
	if c.PremiseSpan == 0 {
		c.PremiseSpan = DefaultPremiseSpan
	}
	if c.ConsequenceReach == 0 {
		c.ConsequenceReach = DefaultConsequenceReach
	}
	return c
}

// Pattern is a trajectory pattern (Definition 1): a premise of frequent
// regions with strictly increasing time offsets implying a single
// consequence region at a later offset, with a confidence.
type Pattern struct {
	Premise     []RegionID // ascending time offset (== ascending id until regions are minted)
	Consequence RegionID
	Confidence  float64
	Support     int // sub-trajectories exhibiting premise ∧ consequence
}

// String renders the pattern in the paper's notation, e.g.
// "R_0^0 ^ R_1^0 --0.50--> R_2^0" (region names require the table).
func (p Pattern) String() string {
	var sb strings.Builder
	for i, id := range p.Premise {
		if i > 0 {
			sb.WriteString(" ^ ")
		}
		fmt.Fprintf(&sb, "r%d", id)
	}
	fmt.Fprintf(&sb, " --%.2f--> r%d", p.Confidence, p.Consequence)
	return sb.String()
}

// Stats reports mining effort and the effect of the paper's pruning rules.
type Stats struct {
	FrequentItemsets int // frequent region sets of size >= 2
	Candidates       int // candidate itemsets whose support was counted
	Rules            int // patterns emitted (pruned rule generation)
	// UnprunedRules is how many rules classic Apriori rule generation
	// would emit from the same frequent itemsets: every non-empty
	// premise/consequence partition that clears MinConfidence, including
	// time-reversed rules and multi-region consequences. The paper reports
	// a 58% reduction from pruning; ReductionPct reproduces that number.
	// Only filled when Config.CountUnpruned is set.
	UnprunedRules int
}

// ReductionPct returns the percentage of rules eliminated by the pruning.
func (s Stats) ReductionPct() float64 {
	if s.UnprunedRules == 0 {
		return 0
	}
	return 100 * float64(s.UnprunedRules-s.Rules) / float64(s.UnprunedRules)
}

// itemset is a sorted set of region ids with its visitor bitmap and support.
type itemset struct {
	ids      []RegionID
	visitors bitkey.Key
	support  int
}

// itemsetKey packs sorted region ids into a compact map key (4 bytes per
// id, little endian). Ids are dense ints well below 2^32.
func itemsetKey(ids []RegionID) string {
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		v := uint32(id)
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// Mine derives trajectory patterns from the frequent regions in rt.
func Mine(rt *RegionTable, cfg Config) []Pattern {
	patterns, _ := MineWithStats(rt, cfg)
	return patterns
}

// MineWithStats is Mine plus effort statistics, including the unpruned rule
// count used by the pruning-effect ablation.
func MineWithStats(rt *RegionTable, cfg Config) ([]Pattern, Stats) {
	cfg = cfg.withDefaults()
	var stats Stats
	if rt.Len() == 0 || rt.NumSubTrajectories() == 0 {
		return nil, stats
	}

	// Level 1: frequent regions that clear MinSupport. DBSCAN already
	// enforces MinPts members, but MinSupport may be stricter.
	var level []itemset
	for _, fr := range rt.Regions() {
		if fr.Support >= cfg.MinSupport {
			level = append(level, itemset{
				ids:      []RegionID{fr.ID},
				visitors: fr.visitors,
				support:  fr.Support,
			})
		}
	}

	// supports indexes every frequent itemset found so far for confidence
	// computation and classic rule counting.
	supports := map[string]int{}
	for _, it := range level {
		supports[itemsetKey(it.ids)] = it.support
	}

	var patterns []Pattern
	var frequent []itemset // all frequent itemsets of size >= 2

	for k := 2; k <= cfg.MaxLength && len(level) > 0; k++ {
		next := joinLevel(rt, level, k, cfg, &stats)
		for _, it := range next {
			supports[itemsetKey(it.ids)] = it.support
			frequent = append(frequent, it)
			// Pruned rule generation: single consequence (the max-offset
			// region), monotone premise. Exactly one candidate rule per
			// frequent itemset.
			premise := it.ids[:len(it.ids)-1]
			premSup := supports[itemsetKey(premise)]
			conf := float64(it.support) / float64(premSup)
			if conf >= cfg.MinConfidence {
				p := Pattern{
					Premise:     append([]RegionID(nil), premise...),
					Consequence: it.ids[len(it.ids)-1],
					Confidence:  conf,
					Support:     it.support,
				}
				patterns = append(patterns, p)
			}
		}
		level = next
	}

	stats.FrequentItemsets = len(frequent)
	stats.Rules = len(patterns)
	if cfg.CountUnpruned {
		stats.UnprunedRules = countUnprunedRules(frequent, supports, cfg.MinConfidence)
	}
	return patterns, stats
}

// joinLevel performs the Apriori join+prune+count step producing the frequent
// k-itemsets from the frequent (k-1)-itemsets, honouring the paper's
// monotone-time constraint and the premise-span bound. With
// cfg.Parallelism > 1 the per-position join/count work fans across a
// bounded worker pool; results merge in join-position order, so the output
// is identical to the serial run.
func joinLevel(rt *RegionTable, level []itemset, k int, cfg Config, stats *Stats) []itemset {
	// Group the (k-1)-itemsets by their first k-2 ids; itemsets inside a
	// group join pairwise. The previous level is generated in ascending id
	// order, so groups are contiguous runs. groupEnd[i] is the end of i's
	// run.
	groupEnd := make([]int, len(level))
	for lo := 0; lo < len(level); {
		hi := lo + 1
		for hi < len(level) && samePrefix(level[lo].ids, level[hi].ids) {
			hi++
		}
		for i := lo; i < hi; i++ {
			groupEnd[i] = hi
		}
		lo = hi
	}

	// Index the previous level for the subset-pruning test. Workers only
	// read the map, which is safe concurrently.
	prev := make(map[string]bool, len(level))
	for _, it := range level {
		prev[itemsetKey(it.ids)] = true
	}

	perPos := make([][]itemset, len(level))
	counted := make([]int, len(level))
	parallel.For(len(level), parallel.Workers(cfg.Parallelism), func(i int) {
		perPos[i], counted[i] = joinAt(rt, level, i, groupEnd[i], k, cfg, prev)
	})

	var next []itemset
	for i := range perPos {
		next = append(next, perPos[i]...)
		stats.Candidates += counted[i]
	}
	return next
}

// joinAt generates and support-counts every candidate k-itemset whose join
// parent a is level[i], joining against level[i+1:hi) (a's prefix group).
// It returns the surviving frequent itemsets in join order plus how many
// candidates were counted.
func joinAt(rt *RegionTable, level []itemset, i, hi, k int, cfg Config, prev map[string]bool) (next []itemset, candidates int) {
	minSup := cfg.MinSupport
	a := level[i]
	lastA := a.ids[len(a.ids)-1]
	offLastA := rt.Region(lastA).Offset
	// The premise of every k-itemset joined from a is exactly a.ids; its
	// offset span is loop-invariant, so a too-wide a skips all joins at
	// once.
	if cfg.PremiseSpan >= 0 && k > 2 {
		if offLastA-rt.Region(a.ids[0]).Offset > cfg.PremiseSpan {
			return nil, 0
		}
	}
	for j := i + 1; j < hi; j++ {
		b := level[j]
		lastB := b.ids[len(b.ids)-1]
		offLastB := rt.Region(lastB).Offset
		// Monotone time: every region in a pattern occupies its own
		// offset; ids ascend with offsets, so only the new adjacent
		// pair needs the strictness check.
		if offLastB == offLastA {
			continue
		}
		// Multi-premise patterns only refine near-future queries;
		// cap how far their consequence reaches. The previous level
		// is sorted, so once one consequence is too far every later
		// one is as well.
		if cfg.ConsequenceReach >= 0 && k > 2 {
			if offLastB-offLastA > cfg.ConsequenceReach {
				break
			}
		}
		cand := make([]RegionID, 0, k)
		cand = append(cand, a.ids...)
		cand = append(cand, lastB)
		if !allSubsetsFrequent(cand, prev) {
			continue
		}
		candidates++
		visitors := a.visitors.And(b.visitors)
		sup := visitors.Size()
		if sup >= minSup {
			next = append(next, itemset{ids: cand, visitors: visitors, support: sup})
		}
	}
	return next, candidates
}

func samePrefix(a, b []RegionID) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori anti-monotonicity prune: every
// (k-1)-subset of cand must itself be frequent. The two join parents are
// frequent by construction; the remaining subsets are checked by lookup.
func allSubsetsFrequent(cand []RegionID, prev map[string]bool) bool {
	if len(cand) <= 2 {
		return true
	}
	sub := make([]RegionID, 0, len(cand)-1)
	for drop := 0; drop < len(cand)-2; drop++ {
		// Dropping the last or second-to-last id reproduces a join parent.
		sub = sub[:0]
		for i, id := range cand {
			if i != drop {
				sub = append(sub, id)
			}
		}
		if !prev[itemsetKey(sub)] {
			return false
		}
	}
	return true
}

// countUnprunedRules counts the rules classic Apriori rule generation would
// emit from the given frequent itemsets: every partition of each itemset
// into a non-empty premise and a non-empty consequence whose confidence
// clears minConf. All such subsets are themselves frequent (Apriori
// property) so their supports are available in the index.
func countUnprunedRules(frequent []itemset, supports map[string]int, minConf float64) int {
	count := 0
	var premise []RegionID
	for _, it := range frequent {
		k := len(it.ids)
		// Enumerate premise subsets by bitmask; mask bits select premise
		// members. Skip the empty and the full mask.
		for mask := 1; mask < (1<<k)-1; mask++ {
			premise = premise[:0]
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					premise = append(premise, it.ids[i])
				}
			}
			premSup, ok := supports[itemsetKey(premise)]
			if !ok {
				// The subset fell outside the bounded search (premise-span
				// or length caps); classic Apriori would have counted it,
				// but its support is unknown here, so skip conservatively.
				continue
			}
			if float64(it.support)/float64(premSup) >= minConf {
				count++
			}
		}
	}
	return count
}

// SortPatterns orders patterns deterministically: by consequence offset,
// then consequence id, then premise ids. Useful for stable output in tools
// and tests; Mine's output is already deterministic but not sorted this way.
func SortPatterns(rt *RegionTable, ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		ao, bo := rt.Region(a.Consequence).Offset, rt.Region(b.Consequence).Offset
		if ao != bo {
			return ao < bo
		}
		if a.Consequence != b.Consequence {
			return a.Consequence < b.Consequence
		}
		for k := 0; k < len(a.Premise) && k < len(b.Premise); k++ {
			if a.Premise[k] != b.Premise[k] {
				return a.Premise[k] < b.Premise[k]
			}
		}
		return len(a.Premise) < len(b.Premise)
	})
}
