package pattern

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hpm/internal/bitkey"
	"hpm/internal/geom"
)

// Binary serialization for the mined model state: the region table and the
// pattern list. The format is little-endian with uvarint integers and a
// per-section magic, so a truncated or mixed-up stream fails loudly instead
// of producing a silently wrong model.

const (
	regionTableMagic = "HPMR"
	patternsMagic    = "HPMP"
)

// sink wraps a writer with latched errors so serialization code can stay
// linear.
type sink struct {
	w   *bufio.Writer
	err error
}

func (s *sink) bytes(b []byte) {
	if s.err == nil {
		_, s.err = s.w.Write(b)
	}
}

func (s *sink) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	s.bytes(buf[:binary.PutUvarint(buf[:], v)])
}

func (s *sink) varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	s.bytes(buf[:binary.PutVarint(buf[:], v)])
}

func (s *sink) float(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	s.bytes(buf[:])
}

func (s *sink) key(k bitkey.Key) {
	b, err := k.MarshalBinary()
	if s.err == nil {
		s.err = err
	}
	s.uvarint(uint64(len(b)))
	s.bytes(b)
}

func (s *sink) flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// source wraps a reader with latched errors.
type source struct {
	r   *bufio.Reader
	err error
}

func (s *source) bytes(n int) []byte {
	if s.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.r, b); err != nil {
		s.err = err
		return nil
	}
	return b
}

func (s *source) uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(s.r)
	if err != nil {
		s.err = err
	}
	return v
}

func (s *source) varint() int64 {
	if s.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(s.r)
	if err != nil {
		s.err = err
	}
	return v
}

func (s *source) float() float64 {
	b := s.bytes(8)
	if s.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (s *source) key() bitkey.Key {
	n := s.uvarint()
	b := s.bytes(int(n))
	if s.err != nil {
		return bitkey.Key{}
	}
	var k bitkey.Key
	if err := k.UnmarshalBinary(b); err != nil {
		s.err = err
	}
	return k
}

func (s *source) magic(want string) {
	b := s.bytes(len(want))
	if s.err == nil && string(b) != want {
		s.err = fmt.Errorf("pattern: bad section magic %q, want %q", b, want)
	}
}

// WriteBinary serializes the region table, including the visitor bitmaps
// the miner needs for incremental updates after a reload.
func (rt *RegionTable) WriteBinary(w io.Writer) error {
	s := &sink{w: bufio.NewWriter(w)}
	s.bytes([]byte(regionTableMagic))
	s.float(rt.eps)
	s.uvarint(uint64(rt.numSubs))
	s.uvarint(uint64(len(rt.regions)))
	for _, fr := range rt.regions {
		s.uvarint(uint64(fr.Offset))
		s.uvarint(uint64(fr.Index))
		s.float(fr.Center.X)
		s.float(fr.Center.Y)
		s.float(fr.MBR.Min.X)
		s.float(fr.MBR.Min.Y)
		s.float(fr.MBR.Max.X)
		s.float(fr.MBR.Max.Y)
		s.uvarint(uint64(fr.Support))
		s.key(fr.visitors)
	}
	return s.flush()
}

// ReadRegionTable deserializes a region table written by WriteBinary.
func ReadRegionTable(r io.Reader) (*RegionTable, error) {
	s := &source{r: bufio.NewReader(r)}
	s.magic(regionTableMagic)
	rt := &RegionTable{byOffset: make(map[int][]*FrequentRegion)}
	rt.eps = s.float()
	rt.numSubs = int(s.uvarint())
	count := int(s.uvarint())
	if s.err != nil {
		return nil, s.err
	}
	if count < 0 || count > 1<<26 {
		return nil, fmt.Errorf("pattern: implausible region count %d", count)
	}
	for i := 0; i < count; i++ {
		fr := &FrequentRegion{ID: RegionID(i)}
		fr.Offset = int(s.uvarint())
		fr.Index = int(s.uvarint())
		fr.Center = geom.Pt(s.float(), s.float())
		fr.MBR = geom.Rect{
			Min: geom.Pt(s.float(), s.float()),
			Max: geom.Pt(s.float(), s.float()),
		}
		fr.Support = int(s.uvarint())
		fr.visitors = s.key()
		if s.err != nil {
			return nil, s.err
		}
		if fr.visitors.Len() != rt.numSubs {
			return nil, fmt.Errorf("pattern: region %d visitor length %d != %d subs", i, fr.visitors.Len(), rt.numSubs)
		}
		rt.regions = append(rt.regions, fr)
		rt.byOffset[fr.Offset] = append(rt.byOffset[fr.Offset], fr)
	}
	if s.err == nil {
		rt.buildLocateIndex()
	}
	return rt, s.err
}

// WritePatterns serializes a pattern list against a known region universe.
func WritePatterns(w io.Writer, patterns []Pattern) error {
	s := &sink{w: bufio.NewWriter(w)}
	s.bytes([]byte(patternsMagic))
	s.uvarint(uint64(len(patterns)))
	for _, p := range patterns {
		s.uvarint(uint64(len(p.Premise)))
		for _, id := range p.Premise {
			s.varint(int64(id))
		}
		s.varint(int64(p.Consequence))
		s.float(p.Confidence)
		s.uvarint(uint64(p.Support))
	}
	return s.flush()
}

// ReadPatterns deserializes a pattern list written by WritePatterns and
// validates every region id against rt.
func ReadPatterns(r io.Reader, rt *RegionTable) ([]Pattern, error) {
	s := &source{r: bufio.NewReader(r)}
	s.magic(patternsMagic)
	count := int(s.uvarint())
	if s.err != nil {
		return nil, s.err
	}
	if count < 0 || count > 1<<28 {
		return nil, fmt.Errorf("pattern: implausible pattern count %d", count)
	}
	checkID := func(id int64) (RegionID, error) {
		if id < 0 || int(id) >= rt.Len() {
			return 0, fmt.Errorf("pattern: region id %d out of %d", id, rt.Len())
		}
		return RegionID(id), nil
	}
	patterns := make([]Pattern, 0, count)
	for i := 0; i < count; i++ {
		var p Pattern
		premLen := int(s.uvarint())
		if s.err != nil {
			return nil, s.err
		}
		if premLen < 0 || premLen > 64 {
			return nil, fmt.Errorf("pattern: implausible premise length %d", premLen)
		}
		for j := 0; j < premLen; j++ {
			id, err := checkID(s.varint())
			if s.err != nil {
				return nil, s.err
			}
			if err != nil {
				return nil, err
			}
			p.Premise = append(p.Premise, id)
		}
		cons, err := checkID(s.varint())
		if s.err != nil {
			return nil, s.err
		}
		if err != nil {
			return nil, err
		}
		p.Consequence = cons
		p.Confidence = s.float()
		p.Support = int(s.uvarint())
		if s.err != nil {
			return nil, s.err
		}
		patterns = append(patterns, p)
	}
	return patterns, nil
}
