package pattern

import (
	"bytes"
	"testing"
)

func TestRegionTableRoundTrip(t *testing.T) {
	rt := janeTable(t)
	var buf bytes.Buffer
	if err := rt.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRegionTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rt.Len() {
		t.Fatalf("regions %d != %d", back.Len(), rt.Len())
	}
	if back.Eps() != rt.Eps() || back.NumSubTrajectories() != rt.NumSubTrajectories() {
		t.Errorf("metadata differs: eps %v/%v subs %d/%d",
			back.Eps(), rt.Eps(), back.NumSubTrajectories(), rt.NumSubTrajectories())
	}
	for i := 0; i < rt.Len(); i++ {
		a, b := rt.Region(RegionID(i)), back.Region(RegionID(i))
		if a.Offset != b.Offset || a.Index != b.Index || a.Support != b.Support {
			t.Errorf("region %d metadata differs: %+v vs %+v", i, a, b)
		}
		if a.Center != b.Center || a.MBR != b.MBR {
			t.Errorf("region %d geometry differs", i)
		}
		for j := 0; j < rt.NumSubTrajectories(); j++ {
			if a.Visits(j) != b.Visits(j) {
				t.Fatalf("region %d visitor %d differs", i, j)
			}
		}
	}
	// The per-offset index must be rebuilt.
	if len(back.AtOffset(1)) != len(rt.AtOffset(1)) {
		t.Error("byOffset index not rebuilt")
	}
}

func TestPatternsRoundTrip(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.2})
	if len(patterns) == 0 {
		t.Fatal("no patterns to serialize")
	}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatterns(&buf, rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(patterns) {
		t.Fatalf("patterns %d != %d", len(back), len(patterns))
	}
	for i := range patterns {
		if back[i].String() != patterns[i].String() {
			t.Errorf("pattern %d: %s != %s", i, back[i], patterns[i])
		}
		if back[i].Support != patterns[i].Support {
			t.Errorf("pattern %d support %d != %d", i, back[i].Support, patterns[i].Support)
		}
	}
	// Empty list round-trips too.
	buf.Reset()
	if err := WritePatterns(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if back, err = ReadPatterns(&buf, rt); err != nil || len(back) != 0 {
		t.Errorf("empty round trip: %v, %v", back, err)
	}
}

func TestReadRegionTableRejectsCorruption(t *testing.T) {
	rt := janeTable(t)
	var buf bytes.Buffer
	if err := rt.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("XXXX"), full[4:]...)
	if _, err := ReadRegionTable(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
	// Truncations at every section boundary-ish depth.
	for _, cut := range []int{0, 3, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadRegionTable(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadPatternsRejectsBadIDs(t *testing.T) {
	rt := janeTable(t) // 5 regions
	// A pattern referencing region 99 must fail validation on read.
	bogus := []Pattern{{Premise: []RegionID{99}, Consequence: 3, Confidence: 0.5}}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPatterns(&buf, rt); err == nil {
		t.Error("out-of-range premise id accepted")
	}
	bogus = []Pattern{{Premise: []RegionID{0}, Consequence: 42, Confidence: 0.5}}
	buf.Reset()
	if err := WritePatterns(&buf, bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPatterns(&buf, rt); err == nil {
		t.Error("out-of-range consequence id accepted")
	}
}

func TestReadPatternsRejectsCorruption(t *testing.T) {
	rt := janeTable(t)
	patterns := Mine(rt, Config{MinSupport: 2, MinConfidence: 0.3})
	var buf bytes.Buffer
	if err := WritePatterns(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadPatterns(bytes.NewReader(full[:len(full)/2]), rt); err == nil {
		t.Error("truncated pattern stream accepted")
	}
	bad := append([]byte("YYYY"), full[4:]...)
	if _, err := ReadPatterns(bytes.NewReader(bad), rt); err == nil {
		t.Error("wrong magic accepted")
	}
}
