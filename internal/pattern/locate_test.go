package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"hpm/internal/geom"
	"hpm/internal/trajectory"
)

// locateReference is the pre-index Locate: a full linear scan of the
// offset's regions, kept as the oracle the indexed implementation must
// match exactly.
func locateReference(rt *RegionTable, t int, p geom.Point) (*FrequentRegion, bool) {
	var best *FrequentRegion
	bestDist := rt.Eps()
	for _, fr := range rt.AtOffset(t) {
		if fr.MBR.Contains(p) {
			return fr, true
		}
		if d := fr.Center.Dist(p); d <= bestDist {
			best, bestDist = fr, d
		}
	}
	return best, best != nil
}

// clusteredGroups synthesizes groups whose points fall into several tight
// clusters per offset, so DBSCAN yields many regions per offset.
func clusteredGroups(rng *rand.Rand, offsets, clusters, perCluster int) []trajectory.Group {
	groups := make([]trajectory.Group, offsets)
	for t := range groups {
		g := trajectory.Group{Offset: t, Points: make([]geom.Point, clusters*perCluster)}
		for c := 0; c < clusters; c++ {
			cx, cy := rng.Float64()*10000, rng.Float64()*10000
			for m := 0; m < perCluster; m++ {
				g.Points[c*perCluster+m] = geom.Pt(cx+rng.Float64()*20-10, cy+rng.Float64()*20-10)
			}
		}
		groups[t] = g
	}
	return groups
}

func TestLocateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := clusteredGroups(rng, 12, 30, 6)
	rt := DiscoverRegions(groups, 30, 4)
	if rt.Len() == 0 {
		t.Fatal("no regions discovered")
	}
	checked, matched := 0, 0
	for q := 0; q < 5000; q++ {
		off := rng.Intn(12)
		var p geom.Point
		switch q % 3 {
		case 0: // uniform over the world: mostly misses
			p = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		case 1: // near a region center: containment or eps hits
			regions := rt.AtOffset(off)
			if len(regions) == 0 {
				continue
			}
			c := regions[rng.Intn(len(regions))].Center
			p = geom.Pt(c.X+rng.Float64()*80-40, c.Y+rng.Float64()*80-40)
		case 2: // exactly on a member-ish point: guaranteed containment
			regions := rt.AtOffset(off)
			if len(regions) == 0 {
				continue
			}
			mbr := regions[rng.Intn(len(regions))].MBR
			p = geom.Pt(mbr.Min.X+rng.Float64()*mbr.Width(), mbr.Min.Y+rng.Float64()*mbr.Height())
		}
		gotFR, gotOK := rt.Locate(off, p)
		wantFR, wantOK := locateReference(rt, off, p)
		if gotOK != wantOK || gotFR != wantFR {
			t.Fatalf("Locate(%d, %v) = %v,%v; reference %v,%v", off, p, gotFR, gotOK, wantFR, wantOK)
		}
		checked++
		if gotOK {
			matched++
		}
	}
	if matched == 0 || matched == checked {
		t.Fatalf("degenerate workload: %d/%d located", matched, checked)
	}
}

func TestLocateUnknownOffset(t *testing.T) {
	rt := DiscoverRegions(nil, 30, 4)
	if fr, ok := rt.Locate(5, geom.Pt(1, 2)); ok || fr != nil {
		t.Fatalf("empty table located %v", fr)
	}
}

// BenchmarkLocate compares the indexed Locate against the linear reference
// scan at growing regions-per-offset counts — the win the per-offset center
// index buys.
func BenchmarkLocate(b *testing.B) {
	for _, clusters := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(3))
		groups := clusteredGroups(rng, 4, clusters, 6)
		rt := DiscoverRegions(groups, 30, 4)
		queries := make([]geom.Point, 512)
		for i := range queries {
			queries[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		}
		b.Run(fmt.Sprintf("indexed/%dclusters", clusters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				rt.Locate(i%4, q)
			}
		})
		b.Run(fmt.Sprintf("scan/%dclusters", clusters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				locateReference(rt, i%4, q)
			}
		})
	}
}
