package hpm_test

import (
	"bytes"
	"fmt"

	"hpm"
)

// Train a model on a synthetic commuter dataset and ask where the object
// will be a few samples ahead.
func ExampleTrain() {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 42)
	spec.Period = 100
	spec.SubTrajectories = 30
	tr := hpm.GenerateDataset(spec)

	p, err := hpm.Train(tr, hpm.Config{Period: 100, SubTrajectories: 25})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	now := tr.Len() - 50
	recent, err := tr.Recent(now, 10)
	if err != nil {
		fmt.Println("recent:", err)
		return
	}
	preds, err := p.Predict(recent, now+20, 1)
	if err != nil {
		fmt.Println("predict:", err)
		return
	}
	fmt.Println(len(preds), preds[0].Source)
	// Output: 1 pattern
}

// A trained predictor round-trips through its binary serialization.
func ExamplePredictor_Save() {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetCow, 7)
	spec.Period = 60
	spec.SubTrajectories = 10
	tr := hpm.GenerateDataset(spec)
	p, err := hpm.Train(tr, hpm.Config{Period: 60})
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		fmt.Println("save:", err)
		return
	}
	back, err := hpm.Load(&buf)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	fmt.Println(back.NumPatterns() == p.NumPatterns())
	// Output: true
}

// Recover the pattern period from data when the behavioural cycle is
// unknown.
func ExampleDetectPeriod() {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 3)
	spec.Period = 75
	spec.SubTrajectories = 10
	tr := hpm.GenerateDataset(spec)

	period, err := hpm.DetectPeriod(tr, 20, 200)
	if err != nil {
		fmt.Println("detect:", err)
		return
	}
	fmt.Println(period)
	// Output: 75
}
