package hpm

import (
	"strings"
	"testing"
)

// trainedBike returns a small predictor over the Bike dataset.
func trainedBike(t testing.TB, cfg Config) (*Predictor, *Trajectory, DatasetSpec) {
	t.Helper()
	spec := DefaultDatasetSpec(DatasetBike, 5)
	spec.Period = 100
	spec.SubTrajectories = 40
	tr := GenerateDataset(spec)
	if cfg.Period == 0 {
		cfg.Period = spec.Period
	}
	if cfg.SubTrajectories == 0 {
		cfg.SubTrajectories = 30 // hold out the tail for queries
	}
	p, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, tr, spec
}

func TestTrainAndPredictPublicAPI(t *testing.T) {
	p, tr, spec := trainedBike(t, Config{})
	if p.NumPatterns() == 0 || p.NumRegions() == 0 {
		t.Fatalf("patterns=%d regions=%d", p.NumPatterns(), p.NumRegions())
	}
	if p.IndexBytes() <= 0 {
		t.Error("IndexBytes not positive")
	}
	if !p.Bounds().IsValid() {
		t.Error("invalid bounds")
	}

	// Query a held-out day.
	day := 35
	base := day * spec.Period
	recent, err := tr.Recent(base+20, 10)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := p.Predict(recent, base+40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predictions", len(preds))
	}
	truth := tr.At(base + 40)
	if e := preds[0].Location.Dist(truth); e > 2000 {
		t.Errorf("error %v implausible (source %v)", e, preds[0].Source)
	}
}

func TestTrainPoints(t *testing.T) {
	spec := DefaultDatasetSpec(DatasetCow, 9)
	spec.Period = 60
	spec.SubTrajectories = 20
	tr := GenerateDataset(spec)
	p, err := TrainPoints(tr.Points(), Config{Period: 60})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegions() == 0 {
		t.Error("no regions via TrainPoints")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(NewTrajectory(nil), Config{Period: 10}); err == nil {
		t.Error("empty trajectory accepted")
	}
	if _, err := TrainPoints(make([]Point, 100), Config{}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestReadTrajectoryCSVPublic(t *testing.T) {
	tr, err := ReadTrajectoryCSV(strings.NewReader("0,1,2\n1,3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.At(1) != Pt(3, 4) {
		t.Errorf("parsed %v", tr.Points())
	}
}

func TestPatternReductionRequiresFlag(t *testing.T) {
	pOff, _, _ := trainedBike(t, Config{})
	if pOff.PatternReduction() != 0 {
		t.Error("reduction reported without counting enabled")
	}
	pOn, _, _ := trainedBike(t, Config{CountUnprunedRules: true})
	if r := pOn.PatternReduction(); r <= 0 || r >= 100 {
		t.Errorf("reduction %v out of range", r)
	}
}

func TestWeightAndMotionOptions(t *testing.T) {
	for _, cfg := range []Config{
		{Weight: WeightQuadratic},
		{Weight: WeightExponential},
		{Motion: MotionLinear},
		{Motion: MotionNone},
		{MaxPatternLength: 2},
		{TimeRelaxation: 3, DistantThreshold: 30},
	} {
		p, tr, spec := trainedBike(t, cfg)
		base := 35 * spec.Period
		recent, err := tr.Recent(base+20, 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Predict(recent, base+30, 2); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

func TestModelAccessor(t *testing.T) {
	p, _, _ := trainedBike(t, Config{})
	m := p.Model()
	if m == nil || m.NumPatterns() != p.NumPatterns() {
		t.Error("Model() accessor inconsistent")
	}
}

func TestDistantQueryViaPublicAPI(t *testing.T) {
	p, tr, spec := trainedBike(t, Config{DistantThreshold: 30})
	base := 36 * spec.Period
	recent, err := tr.Recent(base+10, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon 60 >= threshold 30: BQP path.
	preds, err := p.Predict(recent, base+70, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("distant query returned %d predictions", len(preds))
	}
	if preds[0].Source != SourcePattern {
		t.Errorf("distant query source %v, want pattern", preds[0].Source)
	}
}

func TestExtendPublicAPI(t *testing.T) {
	spec := DefaultDatasetSpec(DatasetBike, 31)
	spec.Period = 80
	spec.SubTrajectories = 30
	tr := GenerateDataset(spec)
	pts := tr.Points()
	p, err := TrainPoints(pts[:20*spec.Period], Config{Period: spec.Period})
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumPatterns()
	res, err := p.Extend(pts[20*spec.Period : 28*spec.Period])
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPatterns() != before+res.NewPatterns-res.RetiredPatterns {
		t.Errorf("patterns %d != %d + %d - %d", p.NumPatterns(), before, res.NewPatterns, res.RetiredPatterns)
	}
	// Partial periods are rejected.
	if _, err := p.Extend(pts[:spec.Period+5]); err == nil {
		t.Error("partial-period extend accepted")
	}
	if _, err := p.Extend(nil); err == nil {
		t.Error("empty extend accepted")
	}
}

func TestDetectPeriodOnDataset(t *testing.T) {
	// The generated datasets have a known period; detection must recover
	// it on strongly patterned data.
	for _, k := range []Dataset{DatasetBike, DatasetCow} {
		spec := DefaultDatasetSpec(k, 17)
		spec.Period = 90
		spec.SubTrajectories = 12
		tr := GenerateDataset(spec)
		got, err := DetectPeriod(tr, 30, 200)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got < 88 || got > 92 {
			t.Errorf("%v: DetectPeriod = %d, want ~90", k, got)
		}
	}
}
