package hpm

import (
	"hpm/internal/datagen"
)

// Dataset identifies one of the paper's four synthetic evaluation datasets
// (§VII): movement traces with pattern strength ordered
// Bike > Cow > Car > Airplane.
type Dataset = datagen.Kind

// The four datasets.
const (
	DatasetBike     = datagen.Bike
	DatasetCow      = datagen.Cow
	DatasetCar      = datagen.Car
	DatasetAirplane = datagen.Airplane
)

// DatasetSpec describes a synthetic dataset to generate.
type DatasetSpec = datagen.Spec

// DefaultDatasetSpec returns the paper-default spec for a dataset:
// period 300, 200 sub-trajectories, extent [0,10000]².
func DefaultDatasetSpec(k Dataset, seed int64) DatasetSpec {
	return datagen.DefaultSpec(k, seed)
}

// GenerateDataset synthesizes a dataset trajectory: SubTrajectories
// consecutive periods, each following the dataset's seed route with the
// dataset's follow probability. Deterministic in the spec's Seed.
func GenerateDataset(spec DatasetSpec) *Trajectory {
	return datagen.Generate(spec)
}
