GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the fleet store (background retrains),
# the HTTP service, and the parallel training pipeline.
race:
	$(GO) test -race ./store/... ./serve/... ./internal/core/...

vet:
	$(GO) vet ./...

# Quick-mode benchmark per paper figure plus the micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem
