GO ?= go

.PHONY: build test race vet bench bench-query

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the lock-free query engine, the fleet
# store (background retrains), the HTTP service, and the parallel training
# pipeline.
race:
	$(GO) test -race ./internal/hpa/... ./store/... ./serve/... ./internal/core/...

vet:
	$(GO) vet ./...

# Quick-mode benchmark per paper figure plus the micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Query-path benchmarks only: FQP/BQP micro-benches with allocation counts
# plus the query-throughput experiment in quick mode. The full experiment
# (and BENCH_query_throughput.json) comes from:
#   go run ./cmd/hpmbench -experiment queries -json
bench-query:
	$(GO) test -bench='BenchmarkPredict(FQP|BQP)$$|BenchmarkQueryThroughput$$' -benchmem -run '^$$' .
