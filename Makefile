GO ?= go

.PHONY: build test race vet bench bench-query bench-ingest bench-eval bench-markov bench-retrain bench-fleet bench-recovery chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the lock-free query engine, the fleet
# store (background retrains, WAL/checkpoint durability, chaos tests),
# the HTTP service, the fault-injection helpers, and the parallel
# training pipeline.
race:
	$(GO) test -race ./internal/hpa/... ./internal/evalq/... ./internal/markov/... ./internal/spatial/... ./store/... ./serve/... ./internal/core/... ./internal/faultinject/...

# Crash-safety suite under the race detector: kill/restart recovery, torn
# WAL tails, injected WAL/snapshot/train faults, snapshot robustness, the
# degraded read-only state machine, and the HTTP admission/shedding layer.
chaos:
	$(GO) test -race -run 'Chaos|WAL|Train|Durable|Snapshot|Save|Load|NonFinite|Fail|Panic|Join|Shard|Remove|Valve|Delay|Checkpoint|Compat|Segment|Manifest|Orphan|Incremental|Compact' -count=1 ./store/... ./internal/faultinject/...
	$(GO) test -race -run 'Admission|Degraded|Subscriber' -count=1 ./serve/...

vet:
	$(GO) vet ./...

# Quick-mode benchmark per paper figure plus the micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Query-path benchmarks only: FQP/BQP micro-benches with allocation counts
# plus the query-throughput experiment in quick mode. The full experiment
# (and BENCH_query_throughput.json) comes from:
#   go run ./cmd/hpmbench -experiment queries -json
bench-query:
	$(GO) test -bench='BenchmarkPredict(FQP|BQP)$$|BenchmarkQueryThroughput$$' -benchmem -run '^$$' .

# Ingest-path benchmarks only: ObserveBatch under concurrent writers in
# sync/nosync/single-shard modes, with fsyncs-per-op reported. The full
# experiment (and BENCH_ingest.json) comes from:
#   go run ./cmd/hpmbench -experiment ingest -json
bench-ingest:
	$(GO) test -bench='BenchmarkObserveParallel' -benchmem -run '^$$' ./store/

# Online prequential accuracy: test-then-train replay of each dataset
# through a live store, hybrid pattern paths vs motion fallback per
# horizon. Regenerates BENCH_eval.json.
bench-eval:
	$(GO) run ./cmd/hpmbench -experiment eval -json

# Three-way ensemble accuracy: pattern vs markov vs motion per horizon,
# plus measured adaptive routing against the best single path, on every
# dataset. Regenerates BENCH_markov.json.
bench-markov:
	$(GO) run ./cmd/hpmbench -experiment markov -json

# Model-maintenance cost: full batch retrain vs incremental Extend as
# history grows, with the accuracy divergence between the two. Regenerates
# BENCH_retrain.json.
bench-retrain:
	$(GO) run ./cmd/hpmbench -experiment retrain -json

# Fleet-wide predictive queries: indexed vs brute-force range/kNN at
# 1k/10k/100k objects, the index==scan identity proof, SSE push
# throughput, and observe-path maintenance overhead. Regenerates
# BENCH_fleet_query.json.
bench-fleet:
	$(GO) run ./cmd/hpmbench -experiment fleetquery -json

# Persistence cost: incremental checkpoint pause and objects re-encoded
# vs dirty shards (O(dirty) vs O(fleet)), full-rewrite and clean no-op
# baselines, and recovery (Open) latency serial vs parallel at
# 1k/10k/100k objects. Regenerates BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/hpmbench -experiment recovery -json
