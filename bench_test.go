package hpm_test

// One benchmark per table/figure of the paper's evaluation (§VII), plus
// the ablations documented in DESIGN.md. Each figure benchmark runs its
// experiment in quick mode (shrunken sweeps, identical code paths); run
// cmd/hpmbench without -quick for the full paper-scale tables. The
// micro-benchmarks at the bottom time the individual operations the paper's
// cost arguments rest on (TPT search, RMF fitting, pattern mining).

import (
	"math/rand"
	"testing"

	"hpm"
	"hpm/internal/datagen"
	"hpm/internal/experiments"
	"hpm/internal/motion"
	"hpm/internal/trajectory"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	e, ok := experiments.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs := e.Run(opts)
		if len(figs) == 0 {
			b.Fatal("no figures")
		}
	}
}

// Figure 5: average error vs prediction length, HPM vs RMF.
func BenchmarkFig5PredictionLength(b *testing.B) { benchExperiment(b, "fig5") }

// Figure 6: average error vs number of training sub-trajectories.
func BenchmarkFig6SubTrajectories(b *testing.B) { benchExperiment(b, "fig6") }

// Figure 7: effect of DBSCAN Eps on pattern count and accuracy.
func BenchmarkFig7Eps(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: effect of DBSCAN MinPts on pattern count and accuracy.
func BenchmarkFig8MinPts(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: effect of minimum confidence on pattern count and accuracy.
func BenchmarkFig9MinConfidence(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: query response time, HPM vs RMF.
func BenchmarkFig10QueryCost(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11(a): TPT storage consumption.
func BenchmarkFig11aStorage(b *testing.B) { benchExperiment(b, "fig11a") }

// Figure 11(b): TPT search cost vs brute force.
func BenchmarkFig11bSearch(b *testing.B) { benchExperiment(b, "fig11b") }

// §IV claim: rule reduction from the paper's pruning (58% in the paper).
func BenchmarkPruningAblation(b *testing.B) { benchExperiment(b, "pruning") }

// Ablation: premise-similarity weight functions.
func BenchmarkWeightsAblation(b *testing.B) { benchExperiment(b, "weights") }

// Ablation: motion fallback choice.
func BenchmarkFallbackAblation(b *testing.B) { benchExperiment(b, "fallback") }

// Ablation: BQP premise penalty (Equation 5 vs 4).
func BenchmarkBQPPenaltyAblation(b *testing.B) { benchExperiment(b, "bqp-penalty") }

// Ablation: BQP time relaxation length.
func BenchmarkTimeRelaxationAblation(b *testing.B) { benchExperiment(b, "trelax") }

// Ablation: TPT ChooseLeaf Intersect step.
func BenchmarkChooseLeafAblation(b *testing.B) { benchExperiment(b, "tpt-chooseleaf") }

// Query throughput: concurrent mixed FQP/BQP/fallback queries and batch
// amortization against a live store.
func BenchmarkQueryThroughput(b *testing.B) { benchExperiment(b, "queries") }

// Ingest throughput: group-commit WAL under concurrent sync writers,
// shard contention, and fleet-batch amortization.
func BenchmarkIngestThroughput(b *testing.B) { benchExperiment(b, "ingest") }

// Fleet-wide predictive range/kNN queries: spatial index vs brute-force
// scan, SSE push throughput, and per-observe maintenance overhead.
func BenchmarkFleetQuery(b *testing.B) { benchExperiment(b, "fleetquery") }

// Recovery and checkpoint cost: parallel Open and incremental O(dirty)
// checkpoints vs full snapshot rewrites.
func BenchmarkRecovery(b *testing.B) { benchExperiment(b, "recovery") }

// --- micro-benchmarks -------------------------------------------------

// benchPredictor trains one moderate Bike model for query benches.
func benchPredictor(b *testing.B) (*hpm.Predictor, *hpm.Trajectory, hpm.DatasetSpec) {
	b.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 3)
	spec.Period = 150
	spec.SubTrajectories = 45
	tr := hpm.GenerateDataset(spec)
	p, err := hpm.Train(tr, hpm.Config{Period: spec.Period, SubTrajectories: 40})
	if err != nil {
		b.Fatal(err)
	}
	return p, tr, spec
}

// BenchmarkTrain measures end-to-end model construction: decomposition,
// DBSCAN, Apriori, key tables, TPT bulk load.
func BenchmarkTrain(b *testing.B) {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 3)
	spec.Period = 150
	spec.SubTrajectories = 40
	tr := hpm.GenerateDataset(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpm.Train(tr, hpm.Config{Period: spec.Period}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictFQP measures forward-query-path (near) predictions;
// allocations are reported because the query path is built to be
// allocation-lean (pooled scratch, memoized weights, heap-based top-k).
func BenchmarkPredictFQP(b *testing.B) {
	p, tr, spec := benchPredictor(b)
	rng := rand.New(rand.NewSource(1))
	queries := make([][]hpm.TimedPoint, 64)
	tqs := make([]int, 64)
	for i := range queries {
		day := 40 + rng.Intn(5)
		tc := day*spec.Period + 20 + rng.Intn(60)
		recent, err := tr.Recent(tc, 10)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = recent
		tqs[i] = tc + 20 // near: below the default distant threshold
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(queries)
		if _, err := p.Predict(queries[q], tqs[q], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBQP measures backward-query-path (distant) predictions.
func BenchmarkPredictBQP(b *testing.B) {
	p, tr, spec := benchPredictor(b)
	rng := rand.New(rand.NewSource(2))
	queries := make([][]hpm.TimedPoint, 64)
	tqs := make([]int, 64)
	for i := range queries {
		day := 40 + rng.Intn(5)
		tc := day*spec.Period + 20 + rng.Intn(40)
		recent, err := tr.Recent(tc, 10)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = recent
		tqs[i] = tc + 80 // beyond the default distant threshold of 60
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(queries)
		if _, err := p.Predict(queries[q], tqs[q], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMFFit measures one self-training RMF construction, the unit the
// paper's query-cost comparison charges per fallback.
func BenchmarkRMFFit(b *testing.B) {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetCar, 7)
	spec.Period = 150
	spec.SubTrajectories = 2
	tr := hpm.GenerateDataset(spec)
	recent := make([]trajectory.TimedPoint, 60)
	for i := range recent {
		recent[i] = trajectory.TimedPoint{T: i, Loc: tr.At(i)}
	}
	bounds := datagen.Extent
	cfg := motion.RMFConfig{Retrospect: 8, Window: 120, AutoRetrospect: true, Bounds: &bounds}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn := motion.NewRMF(cfg)
		if err := fn.Fit(recent); err != nil {
			b.Fatal(err)
		}
		if _, err := fn.Predict(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGeneration measures the synthetic data generator.
func BenchmarkDatasetGeneration(b *testing.B) {
	spec := hpm.DefaultDatasetSpec(hpm.DatasetAirplane, 11)
	spec.SubTrajectories = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hpm.GenerateDataset(spec)
	}
}
