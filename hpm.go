// Package hpm is a Go implementation of the Hybrid Prediction Model for
// moving objects (Jeung, Liu, Shen, Zhou — ICDE 2008).
//
// Given an object's movement history sampled at regular timestamps, hpm
// mines the object's periodic trajectory patterns (dense frequent regions
// per time-of-period offset, linked into association rules), indexes them
// in a Trajectory Pattern Tree, and answers predictive queries — "where
// will the object be at time tq?" — by combining the patterns with a
// Recursive Motion Function fitted to the object's recent movements:
//
//   - Near-future queries use Forward Query Processing: patterns whose
//     premise matches the recently visited regions and whose consequence
//     offset equals the query offset, ranked by premise similarity ×
//     confidence.
//   - Distant-future queries use Backward Query Processing: the premise
//     constraint is relaxed and patterns around the query time win,
//     because where the object usually is at 4 p.m. beats extrapolating
//     this morning's velocity.
//   - When no pattern qualifies, the motion function answers.
//
// # Quick start
//
//	tr := hpm.NewTrajectory(points)          // one location per timestamp
//	p, err := hpm.Train(tr, hpm.Config{Period: 300})
//	preds, err := p.Predict(recent, tq, 1)   // recent: last few TimedPoints
//
// See examples/ for complete programs and DESIGN.md for the system map.
package hpm

import (
	"fmt"
	"io"

	"hpm/internal/core"
	"hpm/internal/geom"
	"hpm/internal/hpa"
	"hpm/internal/motion"
	"hpm/internal/pattern"
	"hpm/internal/trajectory"
)

// Point is a location in the plane.
type Point = geom.Point

// Rect is an axis-aligned rectangle, used for world bounds.
type Rect = geom.Rect

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Trajectory is a movement history with one location per integer timestamp.
type Trajectory = trajectory.Trajectory

// TimedPoint is a location stamped with its absolute timestamp; queries
// supply the object's recent movements in this form.
type TimedPoint = trajectory.TimedPoint

// NewTrajectory wraps a location slice (one point per timestamp, starting
// at timestamp 0) as a Trajectory.
func NewTrajectory(points []Point) *Trajectory { return trajectory.New(points) }

// ReadTrajectoryCSV parses "t,x,y" rows into a Trajectory.
func ReadTrajectoryCSV(r io.Reader) (*Trajectory, error) { return trajectory.ReadCSV(r) }

// DetectPeriod estimates the pattern period T — the library's one required
// parameter — from the data itself, by scoring how well positions align
// with themselves at each candidate lag in [minPeriod, maxPeriod]. The
// trajectory must cover at least two maxPeriod cycles. Objects that repeat
// only some of the time (the paper's follow probability) are handled by
// scoring the best-aligned quartile of samples.
func DetectPeriod(tr *Trajectory, minPeriod, maxPeriod int) (int, error) {
	return trajectory.DetectPeriod(tr, minPeriod, maxPeriod)
}

// Prediction is one predicted location with its provenance: the ranking
// score Sp, the pattern confidence, and whether a trajectory pattern or the
// motion-function fallback produced it.
type Prediction = hpa.Prediction

// Source tells how a prediction was produced.
type Source = hpa.Source

// Prediction sources.
const (
	SourcePattern = hpa.SourcePattern
	SourceMotion  = hpa.SourceMotion
	SourceMarkov  = hpa.SourceMarkov
)

// Path tells which branch of the hybrid algorithm answered a query: FQP
// for near queries, BQP for distant ones, the Markov region-transition
// chain, or the motion-function fallback.
type Path = hpa.Path

// Answering paths.
const (
	PathForward  = hpa.PathForward
	PathBackward = hpa.PathBackward
	PathFallback = hpa.PathFallback
	PathMarkov   = hpa.PathMarkov
)

// Paths returns every answering path, in persisted-index order. Exporters
// and stats consumers iterate this registry instead of hand-enumerating
// path labels, so adding a path cannot silently desynchronize them.
func Paths() []Path { return hpa.Paths() }

// WeightFunc selects the premise-similarity weight function of §VI-A.
type WeightFunc = hpa.WeightFunc

// The four weight functions; the paper found linear and quadratic best.
const (
	WeightLinear      = hpa.WeightLinear
	WeightQuadratic   = hpa.WeightQuadratic
	WeightExponential = hpa.WeightExponential
	WeightFactorial   = hpa.WeightFactorial
)

// MotionKind selects the motion-function fallback model.
type MotionKind = core.MotionKind

// Available fallbacks.
const (
	MotionRMF        = core.MotionRMF
	MotionLinear     = core.MotionLinear
	MotionPolynomial = core.MotionPolynomial
	MotionNone       = core.MotionNone
)

// Config configures training and querying. Only Period is required; every
// other zero value takes the paper's experimental default (§VII-A):
// Eps 30, MinPts 4, minimum confidence 0.3, distant threshold d = 60,
// time relaxation tε = 2, linear weights, RMF fallback.
type Config struct {
	// Period is T, the number of timestamps after which patterns may
	// re-appear — "a day" of samples for commuter traffic, "a year" for
	// migration. Required.
	Period int

	// Eps and MinPts control DBSCAN frequent-region detection; they play
	// the role of the support threshold in frequent-itemset mining.
	Eps    float64
	MinPts int

	// MinSupport is the minimum number of sub-trajectories exhibiting a
	// pattern; MinConfidence is the association-rule confidence floor.
	MinSupport    int
	MinConfidence float64

	// MaxPatternLength caps regions per pattern (consequence included);
	// PremiseSpan caps the offset distance covered by a premise; and
	// ConsequenceReach caps how far beyond a multi-region premise its
	// consequence may lie (negative = unlimited). All three bound the
	// Apriori search.
	MaxPatternLength int
	PremiseSpan      int
	ConsequenceReach int

	// CountUnprunedRules additionally counts the rules classic Apriori
	// would generate, enabling PatternReduction at extra training cost.
	CountUnprunedRules bool

	// SubTrajectories caps how many leading periods are mined; <= 0 uses
	// the whole history.
	SubTrajectories int

	// RetainPeriods bounds the history that counts toward pattern
	// supports: when positive, Extend retires periods older than the
	// window, so the model tracks a sliding window of recent behavior.
	// 0 keeps history unbounded (the paper's setting).
	RetainPeriods int

	// DisableRegionDiscovery keeps the frequent-region set fixed during
	// Extend, exactly as the paper specifies: unmatched points are
	// counted but never mint new regions.
	DisableRegionDiscovery bool

	// DistantThreshold is d: queries at least this far ahead of the
	// current time use Backward Query Processing. TimeRelaxation is tε,
	// BQP's base window radius. Weight selects the premise weighting.
	DistantThreshold int
	TimeRelaxation   int
	Weight           WeightFunc

	// Motion selects the fallback predictor; Retrospect and MotionWindow
	// configure the RMF (recurrence depth f and fitting window).
	Motion       MotionKind
	Retrospect   int
	MotionWindow int

	// MarkovOrder is the maximum context length of the Markov
	// region-transition chain, the third answering path: 0 takes the
	// default (order 3), negative disables the chain. MarkovMinCount is
	// the observation floor a chain context needs before it may answer
	// (0 = default 2). The chain's sliding-window decay follows
	// RetainPeriods.
	MarkovOrder    int
	MarkovMinCount int

	// Bounds clamps motion-function output; nil derives bounds from the
	// training data with a 10% margin.
	Bounds *Rect

	// Parallelism caps the worker goroutines training may use: region
	// discovery (per-offset DBSCAN), Apriori support counting, bounds
	// derivation, and the index bulk-load sort all fan across it. 0
	// defaults to runtime.NumCPU(); 1 trains serially. Every value
	// produces a byte-identical model — parallel stages merge their
	// results in deterministic order — so the knob trades wall-clock time
	// only, never output.
	Parallelism int
}

func (c Config) toParams() core.Params {
	return core.Params{
		Period: c.Period,
		Eps:    c.Eps,
		MinPts: c.MinPts,
		Mining: pattern.Config{
			MinSupport:       c.MinSupport,
			MinConfidence:    c.MinConfidence,
			MaxLength:        c.MaxPatternLength,
			PremiseSpan:      c.PremiseSpan,
			CountUnpruned:    c.CountUnprunedRules,
			ConsequenceReach: c.ConsequenceReach,
		},
		SubTrajectories:        c.SubTrajectories,
		HistoryWindow:          c.RetainPeriods,
		DisableRegionDiscovery: c.DisableRegionDiscovery,
		DistantThreshold:       c.DistantThreshold,
		TimeRelaxation:         c.TimeRelaxation,
		Weight:                 c.Weight,
		MarkovOrder:            c.MarkovOrder,
		MarkovMinCount:         c.MarkovMinCount,
		Motion:                 c.Motion,
		RMF: motion.RMFConfig{
			Retrospect: c.Retrospect,
			Window:     c.MotionWindow,
			Bounds:     c.Bounds,
		},
		Bounds:      c.Bounds,
		Parallelism: c.Parallelism,
	}
}

// Predictor is a trained Hybrid Prediction Model.
type Predictor struct {
	model *core.Model
}

// Train mines the trajectory's patterns and builds a ready predictor. The
// trajectory must span at least one full period.
func Train(tr *Trajectory, cfg Config) (*Predictor, error) {
	m, err := core.Train(tr, cfg.toParams())
	if err != nil {
		return nil, err
	}
	return &Predictor{model: m}, nil
}

// TrainPoints is Train over a raw location slice.
func TrainPoints(points []Point, cfg Config) (*Predictor, error) {
	return Train(NewTrajectory(points), cfg)
}

// Predict estimates the object's location at absolute time tq from its
// recent movements, returning up to k predictions ranked by probability.
// A prediction's Source tells whether a trajectory pattern or the motion
// function produced it.
func (p *Predictor) Predict(recent []TimedPoint, tq, k int) ([]Prediction, error) {
	return p.model.Predict(recent, tq, k)
}

// ExtendResult reports what an incremental Extend changed.
type ExtendResult = core.ExtendResult

// Extend absorbs newly accumulated movement without retraining (§V-B
// dynamic data, extended): points must cover whole periods (len divisible
// by Period). The new days are assigned to the existing frequent regions,
// and only the patterns whose support they touch are re-evaluated — newly
// qualifying patterns insert into the live index, demoted ones retire,
// changed confidences rewrite in place, so update cost tracks the new
// data rather than the full history. Points matching no region buffer
// toward minting new frequent regions (see
// Config.DisableRegionDiscovery), and Config.RetainPeriods bounds the
// history that counts toward supports.
func (p *Predictor) Extend(points []Point) (ExtendResult, error) {
	period := p.model.Params().Period
	tr := NewTrajectory(points)
	if tr.Len() == 0 || tr.Len()%period != 0 {
		return ExtendResult{}, fmt.Errorf("hpm: Extend needs whole periods: %d points, period %d", tr.Len(), period)
	}
	subs, err := tr.Decompose(period)
	if err != nil {
		return ExtendResult{}, err
	}
	return p.model.Extend(subs)
}

// PredictRange estimates the object's whole future trajectory over the
// timestamp range [from, to] (inclusive), one prediction per timestamp.
// Near timestamps use Forward Query Processing, distant ones Backward
// Query Processing, and the motion function fills gaps — fitted once for
// the whole range.
func (p *Predictor) PredictRange(recent []TimedPoint, from, to int) ([]Prediction, error) {
	return p.model.PredictRange(recent, from, to)
}

// PredictBatch answers one query per entry of tqs from the same recent
// window, returning up to k ranked predictions per time in input order.
// The recent movements are encoded once and the motion fallback, when any
// time needs it, is fitted once and shared — so a batch of m queries costs
// one premise encoding and at most one model construction instead of m of
// each. Times nothing can answer yield a nil entry. Safe for concurrent
// use alongside other queries.
func (p *Predictor) PredictBatch(recent []TimedPoint, tqs []int, k int) ([][]Prediction, error) {
	return p.model.PredictBatch(recent, tqs, k)
}

// PredictFallback answers a query with the motion-function fallback alone,
// bypassing the pattern paths — the baseline the paper's accuracy figures
// compare against, exposed so callers can shadow-score the RMF online.
func (p *Predictor) PredictFallback(recent []TimedPoint, tq int) ([]Prediction, error) {
	return p.model.PredictFallback(recent, tq)
}

// PredictMarkov answers a query from the Markov region-transition chain
// alone, bypassing the pattern paths and falling through to the motion
// function when the chain declines — exposed so callers can shadow-score
// the chain online the way PredictFallback shadow-scores the RMF.
func (p *Predictor) PredictMarkov(recent []TimedPoint, tq int) ([]Prediction, error) {
	return p.model.PredictMarkov(recent, tq)
}

// MarkovObserve folds one acknowledged observation at absolute time t
// into the Markov chain. A no-op when the chain is disabled.
func (p *Predictor) MarkovObserve(t int, pt Point) { p.model.MarkovObserve(t, pt) }

// IsDistant reports whether a query at time tq, issued when the object's
// current time is tc, dispatches to Backward Query Processing
// (Definition 2: tq - tc >= the distant-time threshold d).
func (p *Predictor) IsDistant(tc, tq int) bool {
	return p.model.Engine().IsDistant(tc, tq)
}

// Save serializes the trained predictor to a versioned binary stream:
// parameters, world bounds, the frequent-region table (with visitor
// bitmaps, so Extend keeps working after a reload) and the pattern list.
// The index is rebuilt on Load.
func (p *Predictor) Save(w io.Writer) error { return p.model.Save(w) }

// Load deserializes a predictor written by Save and rebuilds its index.
func Load(r io.Reader) (*Predictor, error) {
	m, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Predictor{model: m}, nil
}

// Explanation unpacks the trajectory pattern behind a prediction.
type Explanation = core.Explanation

// RegionInfo describes one frequent region in an Explanation.
type RegionInfo = core.RegionInfo

// Explain returns the rule behind a pattern prediction — the frequent
// regions its premise expects, the consequence region, and the confidence.
// The boolean is false for motion-function predictions.
func (p *Predictor) Explain(pred Prediction) (Explanation, bool) {
	return p.model.Explain(pred)
}

// QueryStats counts what the predictor did: queries answered, by which
// query processor (forward, backward, motion fallback), and index nodes
// touched.
type QueryStats = hpa.QueryStats

// QueryStats returns the accumulated query counters.
func (p *Predictor) QueryStats() QueryStats { return p.model.QueryStats() }

// NumPatterns returns how many trajectory patterns were mined.
func (p *Predictor) NumPatterns() int { return p.model.NumPatterns() }

// NumRegions returns how many frequent regions were discovered.
func (p *Predictor) NumRegions() int { return p.model.NumRegions() }

// PatternReduction returns the percentage of rules eliminated by the
// pruning (requires Config.CountUnprunedRules; 0 otherwise) relative to
// classic Apriori rule generation.
func (p *Predictor) PatternReduction() float64 {
	return p.model.MiningStats().ReductionPct()
}

// IndexBytes returns the packed storage footprint of the Trajectory
// Pattern Tree.
func (p *Predictor) IndexBytes() int { return p.model.TreeStats().StorageBytes }

// Bounds returns the world extent motion-function output is clamped to.
func (p *Predictor) Bounds() Rect { return p.model.Bounds() }

// Model exposes the underlying core model for advanced use (region tables,
// pattern inspection, the raw query engine).
func (p *Predictor) Model() *core.Model { return p.model }
