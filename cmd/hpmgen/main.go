// Command hpmgen generates the paper's synthetic evaluation datasets as
// "t,x,y" CSV, ready for cmd/hpmquery or any external tool.
//
// Usage:
//
//	hpmgen -dataset Bike -days 200 -out bike.csv
//	hpmgen -dataset Airplane -seed 7 -period 300
package main

import (
	"flag"
	"fmt"
	"os"

	"hpm/internal/datagen"
)

func main() {
	var (
		name   = flag.String("dataset", "Bike", "dataset kind: Bike, Cow, Car or Airplane")
		seed   = flag.Int64("seed", 1, "PRNG seed")
		period = flag.Int("period", datagen.DefaultPeriod, "samples per sub-trajectory (T)")
		days   = flag.Int("days", datagen.DefaultSubTrajectories, "number of sub-trajectories")
		follow = flag.Float64("follow", 0, "pattern-follow probability f (0 = dataset default)")
		noise  = flag.Float64("noise", 0, "per-sample Gaussian noise (0 = dataset default)")
		out    = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	kind, err := datagen.ParseKind(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmgen:", err)
		os.Exit(2)
	}
	spec := datagen.Spec{
		Kind:            kind,
		Period:          *period,
		SubTrajectories: *days,
		FollowProb:      *follow,
		Noise:           *noise,
		Seed:            *seed,
	}
	tr := datagen.Generate(spec)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpmgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# dataset=%s seed=%d period=%d days=%d\n", kind, *seed, *period, *days)
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "hpmgen:", err)
		os.Exit(1)
	}
}
