// Command hpmbench regenerates the paper's evaluation figures (§VII) and
// the ablation studies documented in DESIGN.md, printing each figure as an
// aligned text table.
//
// Usage:
//
//	hpmbench -list
//	hpmbench -experiment fig5
//	hpmbench -experiment all -quick
//	hpmbench -experiment fig7 -seed 7 -out results.txt
//	hpmbench -experiment all -svg figures/
//	hpmbench -experiment scaling -json
//
// With -json, each experiment additionally writes BENCH_<name>.json — a
// machine-readable {experiment, params, series} record, with the run's
// GOMAXPROCS captured so throughput numbers can be interpreted. A few
// experiments publish their artifact under a better-known label (the
// queries experiment writes BENCH_query_throughput.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hpm/internal/experiments"
	"hpm/internal/svgplot"
)

func main() {
	var (
		name    = flag.String("experiment", "", "experiment to run (see -list), or \"all\"")
		quick   = flag.Bool("quick", false, "shrink sweeps and workloads for a fast smoke run")
		seed    = flag.Int64("seed", 1, "PRNG seed for data generation and query sampling")
		list    = flag.Bool("list", false, "list available experiments and exit")
		out     = flag.String("out", "", "write tables to this file instead of stdout")
		svg     = flag.String("svg", "", "also render each figure as an SVG into this directory")
		jsonOut = flag.Bool("json", false, "also write BENCH_<experiment>.json per experiment")
	)
	flag.Parse()

	if *list || *name == "" {
		fmt.Println("Available experiments:")
		for _, n := range experiments.Names() {
			e, _ := experiments.Get(n)
			fmt.Printf("  %-16s %s\n", n, e.Description)
		}
		if *name == "" && !*list {
			fmt.Println("\nrun with -experiment <name> or -experiment all")
			os.Exit(2)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	names := []string{*name}
	if *name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		e, ok := experiments.Get(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "hpmbench: unknown experiment %q (use -list)\n", n)
			os.Exit(2)
		}
		start := time.Now()
		figs := e.Run(opts)
		fmt.Fprintf(w, "== %s: %s (completed in %v)\n", e.Name, e.Description, time.Since(start).Round(time.Millisecond))
		for _, f := range figs {
			f.WriteTable(w)
			fmt.Fprintln(w)
			if *svg != "" {
				if err := writeSVG(*svg, f); err != nil {
					fmt.Fprintln(os.Stderr, "hpmbench:", err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut {
			if err := writeJSON(e.OutputName(), opts, figs); err != nil {
				fmt.Fprintln(os.Stderr, "hpmbench:", err)
				os.Exit(1)
			}
		}
	}
}

// benchReport is the machine-readable form of one experiment run. Params
// records what shaped the numbers — the sweep configuration plus the host
// parallelism, without which timing series cannot be compared across runs.
type benchReport struct {
	Experiment string        `json:"experiment"`
	Params     benchParams   `json:"params"`
	Series     []benchSeries `json:"series"`
}

type benchParams struct {
	Seed       int64 `json:"seed"`
	Quick      bool  `json:"quick"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	NumCPU     int   `json:"numcpu"`
}

type benchSeries struct {
	Figure string    `json:"figure"`
	Title  string    `json:"title"`
	XLabel string    `json:"xlabel"`
	YLabel string    `json:"ylabel"`
	Name   string    `json:"name"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
}

// writeJSON flattens the experiment's figures into BENCH_<name>.json.
func writeJSON(name string, opts experiments.Options, figs []experiments.Figure) error {
	rep := benchReport{
		Experiment: name,
		Params: benchParams{
			Seed:       opts.Seed,
			Quick:      opts.Quick,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Series: []benchSeries{},
	}
	for _, f := range figs {
		for _, s := range f.Series {
			rep.Series = append(rep.Series, benchSeries{
				Figure: f.ID,
				Title:  f.Title,
				XLabel: f.XLabel,
				YLabel: f.YLabel,
				Name:   s.Name,
				X:      s.X,
				Y:      s.Y,
			})
		}
	}
	f, err := os.Create("BENCH_" + name + ".json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// writeSVG renders one figure into dir/<id>.svg. Pattern-count sweeps span
// orders of magnitude on x, so those get a logarithmic axis.
func writeSVG(dir string, fig experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	chart := svgplot.Chart{
		Title:  fig.Title,
		XLabel: fig.XLabel,
		YLabel: fig.YLabel,
		LogX:   strings.Contains(fig.XLabel, "number of patterns"),
	}
	for _, s := range fig.Series {
		chart.Series = append(chart.Series, svgplot.Series{Name: s.Name, X: s.X, Y: s.Y})
	}
	f, err := os.Create(filepath.Join(dir, fig.ID+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return svgplot.Render(chart, f)
}
